(* Tests for lib/store: the shared on-disk outcome store.

   The load-bearing properties:

   - the record format is torn-write safe: [Segment.scan] yields only
     complete CRC-valid records, so a reader can never observe a
     half-written or corrupt payload, no matter where a writer (or the
     machine) died;
   - open-time repair truncates exactly the invalid tail — every valid
     record survives a crashed writer;
   - two handles on one directory behave like one store: appends by one
     are found by the other without any coordination (refresh-on-miss),
     and an in-flight append is simply invisible until it completes;
   - rotation and compaction preserve the live entry set, and duplicate
     (superseded) records are dropped latest-wins. *)

open Ftagg
open Helpers

let dir_counter = ref 0

let fresh_dir () =
  incr dir_counter;
  let d =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "ftagg-store-%d-%d" (Unix.getpid ()) !dir_counter)
  in
  (* a stale directory from a killed earlier run must not leak state in *)
  if Sys.file_exists d then
    Array.iter (fun f -> Sys.remove (Filename.concat d f)) (Sys.readdir d)
  else Unix.mkdir d 0o755;
  d

let rm_rf d =
  if Sys.file_exists d then begin
    Array.iter (fun f -> Sys.remove (Filename.concat d f)) (Sys.readdir d);
    Unix.rmdir d
  end

let with_store ?rotate_bytes f =
  let d = fresh_dir () in
  let t = Result.get_ok (Store.open_ ?rotate_bytes ~dir:d ()) in
  Fun.protect
    ~finally:(fun () ->
      Store.close t;
      rm_rf d)
    (fun () -> f d t)

let outcome i =
  Bench_io.Obj [ ("value", Bench_io.Int i); ("tag", Bench_io.String "test") ]

let digest i = Printf.sprintf "%016x" (0xabc000 + i)

let append_raw dir idx bytes =
  let path = Filename.concat dir (Printf.sprintf "seg-%06d.log" idx) in
  let fd = Unix.openfile path [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_APPEND ] 0o644 in
  let rec go off =
    if off < String.length bytes then
      go (off + Unix.write_substring fd bytes off (String.length bytes - off))
  in
  go 0;
  Unix.close fd

let payload_of d o =
  Bench_io.to_string ~indent:false
    (Bench_io.Obj [ ("digest", Bench_io.String d); ("outcome", o) ])

(* --- the segment codec --- *)

let test_segment_scan_roundtrip () =
  let records = [ "alpha"; ""; String.make 300 'z'; "{\"k\": 1}" ] in
  let chunk = String.concat "" (List.map Segment.encode records) in
  let got, consumed = Segment.scan chunk in
  check_true "all records recovered" (got = records);
  check_int "everything consumed" (String.length chunk) consumed

let test_segment_scan_stops_at_torn_tail () =
  let whole = Segment.encode "first" ^ Segment.encode "second" in
  (* every strict prefix must yield only complete records and never a
     mangled payload *)
  for cut = 0 to String.length whole - 1 do
    let got, consumed = Segment.scan (String.sub whole 0 cut) in
    check_true "consumed stays on record boundaries"
      (consumed = 0 || consumed = String.length (Segment.encode "first"));
    List.iter (fun p -> check_true "payload is intact" (p = "first" || p = "second")) got
  done;
  let got, _ = Segment.scan whole in
  check_true "the full chunk yields both" (got = [ "first"; "second" ])

let test_segment_scan_rejects_corruption () =
  let good = Segment.encode "payload" in
  (* flip one payload byte: the CRC no longer matches, nothing is consumed *)
  let bad = Bytes.of_string good in
  Bytes.set bad (Segment.header_len + 2) 'X';
  let got, consumed = Segment.scan (Bytes.to_string bad) in
  check_true "corrupt record is not yielded" (got = []);
  check_int "corrupt record is not consumed" 0 consumed;
  (* an absurd length prefix is corruption, not a huge pending record *)
  let huge = Bytes.make 8 '\xff' in
  let got, consumed = Segment.scan (Bytes.to_string huge ^ good) in
  check_true "absurd length yields nothing" (got = []);
  check_int "absurd length consumes nothing" 0 consumed

(* --- store basics --- *)

let test_store_roundtrip_and_reopen () =
  let d = fresh_dir () in
  Fun.protect ~finally:(fun () -> rm_rf d) @@ fun () ->
  let t = Result.get_ok (Store.open_ ~dir:d ()) in
  for i = 1 to 5 do
    Store.add t (digest i) (outcome i)
  done;
  check_int "five entries" 5 (Store.entries t);
  check_true "lookup answers" (Store.find t (digest 3) = Some (outcome 3));
  check_true "missing digest misses" (Store.find t "ffffffffffffffff" = None);
  Store.add t (digest 3) (outcome 99);
  check_int "re-adding a digest is a no-op" 5 (Store.entries t);
  check_true "original outcome kept" (Store.find t (digest 3) = Some (outcome 3));
  let s = Store.stats t in
  check_int "appends counted" 5 s.Store.s_appends;
  check_int "hits counted" 2 s.Store.s_hits;
  check_int "misses counted" 1 s.Store.s_misses;
  Store.close t;
  (* a fresh handle finds everything on disk *)
  let t2 = Result.get_ok (Store.open_ ~dir:d ()) in
  check_int "reopen sees all entries" 5 (Store.entries t2);
  check_true "reopen finds" (Store.find t2 (digest 5) = Some (outcome 5));
  check_int "reopen repaired nothing" 0 (Store.stats t2).Store.s_truncations;
  Store.close t2

let test_store_two_handles_share () =
  let d = fresh_dir () in
  Fun.protect ~finally:(fun () -> rm_rf d) @@ fun () ->
  let a = Result.get_ok (Store.open_ ~dir:d ()) in
  let b = Result.get_ok (Store.open_ ~dir:d ()) in
  Store.add a (digest 1) (outcome 1);
  (* b's index is stale; the miss path refreshes and finds the record *)
  check_true "the other handle sees the append" (Store.find b (digest 1) = Some (outcome 1));
  Store.add b (digest 2) (outcome 2);
  check_true "and symmetrically" (Store.find a (digest 2) = Some (outcome 2));
  check_true "add dedupes across handles" (Store.mem a (digest 1));
  Store.add b (digest 1) (outcome 1);
  check_int "no duplicate append" 1 (Store.stats a).Store.s_appends;
  Store.close a;
  Store.close b

(* --- crash safety --- *)

let test_store_torn_tail_repaired_on_open () =
  let d = fresh_dir () in
  Fun.protect ~finally:(fun () -> rm_rf d) @@ fun () ->
  let t = Result.get_ok (Store.open_ ~dir:d ()) in
  Store.add t (digest 1) (outcome 1);
  Store.add t (digest 2) (outcome 2);
  Store.close t;
  (* a writer died mid-append: half a record sits at the tail *)
  let torn = Segment.encode (payload_of (digest 3) (outcome 3)) in
  append_raw d 1 (String.sub torn 0 (String.length torn - 4));
  let t2 = Result.get_ok (Store.open_ ~dir:d ()) in
  check_int "torn tail cut" 1 (Store.stats t2).Store.s_truncations;
  check_int "valid records all survive" 2 (Store.entries t2);
  check_true "torn record is gone" (Store.find t2 (digest 3) = None);
  (* the truncated segment accepts appends again *)
  Store.add t2 (digest 3) (outcome 3);
  check_true "store is writable after repair" (Store.find t2 (digest 3) = Some (outcome 3));
  Store.close t2

let test_reader_never_sees_partial_append () =
  let d = fresh_dir () in
  Fun.protect ~finally:(fun () -> rm_rf d) @@ fun () ->
  let writer = Result.get_ok (Store.open_ ~dir:d ()) in
  Store.add writer (digest 1) (outcome 1);
  let reader = Result.get_ok (Store.open_ ~dir:d ()) in
  check_int "reader starts in sync" 1 (Store.entries reader);
  (* another process is mid-append: its record is half on disk.  The
     reader must not consume it — at any split point. *)
  let record = Segment.encode (payload_of (digest 2) (outcome 2)) in
  let half = String.length record / 2 in
  append_raw d 1 (String.sub record 0 half);
  Store.refresh reader;
  check_int "half a record is invisible" 1 (Store.entries reader);
  check_true "and not findable" (Store.find reader (digest 2) = None);
  (* every entry the reader does hold decodes to what was written *)
  Store.fold
    (fun dg o () -> check_true "no corrupt entry surfaced" (dg = digest 1 && o = outcome 1))
    reader ();
  (* the append completes: the reader picks the record up whole *)
  append_raw d 1 (String.sub record half (String.length record - half));
  Store.refresh reader;
  check_int "completed record is visible" 2 (Store.entries reader);
  check_true "with the right payload" (Store.find reader (digest 2) = Some (outcome 2));
  Store.close writer;
  Store.close reader

let test_store_foreign_file_poisons_nothing () =
  let d = fresh_dir () in
  Fun.protect ~finally:(fun () -> rm_rf d) @@ fun () ->
  let t = Result.get_ok (Store.open_ ~dir:d ()) in
  Store.add t (digest 1) (outcome 1);
  Store.close t;
  (* a file with the segment naming convention but alien content: it is
     ignored (wrong magic), not parsed and not truncated *)
  append_raw d 7 "this is not a segment file at all\n";
  let t2 = Result.get_ok (Store.open_ ~dir:d ()) in
  check_int "real entries still load" 1 (Store.entries t2);
  check_int "alien bytes untouched by repair" 34
    (Option.value
       (match Unix.stat (Filename.concat d "seg-000007.log") with
       | exception Unix.Unix_error _ -> None
       | st -> Some st.Unix.st_size)
       ~default:0);
  Store.close t2

(* --- rotation and compaction --- *)

let test_store_rotation () =
  with_store ~rotate_bytes:1024 @@ fun _d t ->
  (* fat outcomes push the active segment over the 1 KiB floor fast *)
  let fat i =
    Bench_io.Obj [ ("value", Bench_io.Int i); ("pad", Bench_io.String (String.make 200 'p')) ]
  in
  for i = 1 to 20 do
    Store.add t (digest i) (fat i)
  done;
  check_true "rotation produced several segments" (Store.segments t > 1);
  check_true "rotations counted" ((Store.stats t).Store.s_rotations > 0);
  for i = 1 to 20 do
    check_true "every entry readable across segments" (Store.find t (digest i) = Some (fat i))
  done

let test_store_compaction_drops_superseded () =
  let d = fresh_dir () in
  Fun.protect ~finally:(fun () -> rm_rf d) @@ fun () ->
  (* craft a segment holding superseded duplicates — what two racing
     writers (each passing its [mem] check before the other's append
     landed) leave behind *)
  let buf = Buffer.create 256 in
  Buffer.add_string buf Segment.magic;
  Buffer.add_string buf (Segment.encode (payload_of (digest 1) (outcome 1)));
  Buffer.add_string buf (Segment.encode (payload_of (digest 2) (outcome 2)));
  Buffer.add_string buf (Segment.encode (payload_of (digest 1) (outcome 10)));
  append_raw d 1 (Buffer.contents buf);
  let t = Result.get_ok (Store.open_ ~dir:d ()) in
  let reader = Result.get_ok (Store.open_ ~dir:d ()) in
  check_int "two live entries" 2 (Store.entries t);
  let kept, dropped = Store.compact t in
  check_int "live set kept" 2 kept;
  check_int "superseded record dropped" 1 dropped;
  check_int "one segment remains" 1 (Store.segments t);
  check_true "latest wins" (Store.find t (digest 1) = Some (outcome 10));
  check_true "the other entry survives" (Store.find t (digest 2) = Some (outcome 2));
  (* a reader holding the pre-compaction view keeps working: its old
     segment vanished, the compacted one holds every live entry *)
  Store.refresh reader;
  check_int "reader survives compaction" 2 (Store.entries reader);
  check_true "reader sees the live set" (Store.find reader (digest 2) = Some (outcome 2));
  (* appends continue after compaction *)
  Store.add t (digest 3) (outcome 3);
  check_true "writable after compaction" (Store.find t (digest 3) = Some (outcome 3));
  Store.close t;
  Store.close reader

let suite =
  [
    Alcotest.test_case "segment: encode/scan roundtrip" `Quick test_segment_scan_roundtrip;
    Alcotest.test_case "segment: scan stops at a torn tail (every cut)" `Quick
      test_segment_scan_stops_at_torn_tail;
    Alcotest.test_case "segment: corrupt records are not consumed" `Quick
      test_segment_scan_rejects_corruption;
    Alcotest.test_case "store: roundtrip, dedupe, reopen" `Quick test_store_roundtrip_and_reopen;
    Alcotest.test_case "store: two handles share one directory" `Quick
      test_store_two_handles_share;
    Alcotest.test_case "store: torn tail repaired on open" `Quick
      test_store_torn_tail_repaired_on_open;
    Alcotest.test_case "store: reader never sees a partial append" `Quick
      test_reader_never_sees_partial_append;
    Alcotest.test_case "store: foreign file is ignored, not parsed" `Quick
      test_store_foreign_file_poisons_nothing;
    Alcotest.test_case "store: rotation spreads entries over segments" `Quick
      test_store_rotation;
    Alcotest.test_case "store: compaction drops superseded records" `Quick
      test_store_compaction_drops_superseded;
  ]
