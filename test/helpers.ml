(* Shared builders for the test suites. *)

open Ftagg

(* Alias: inside [open QCheck] scopes, [Gen] means QCheck.Gen, so the
   topology generators go by [Topo] there. *)
module Topo = Gen

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_true msg b = Alcotest.(check bool) msg true b

(* A deterministic input assignment: node i holds i + 1 (so every sum is
   sensitive to exactly which nodes were included). *)
let default_inputs n = Array.init n (fun i -> i + 1)

let total inputs = Array.fold_left ( + ) 0 inputs

let string_contains ~needle haystack =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
  go 0

let params_of ?(c = 2) ?(t = 0) ?caaf graph ~inputs =
  Params.make ~c ~t ?caaf ~graph ~inputs ()

(* The topology sweep used across integration tests: every family at a
   smallish size. *)
let sweep_graphs =
  lazy
    (List.map
       (fun (name, fam) -> (name, Gen.build fam ~n:30 ~seed:11))
       (Gen.all_families ~seed:11))

(* A composite correctness check on a finished pair run, per Table 2. *)
type pair_expect = {
  e_name : string;
  e_correct_required : bool;  (* AGG must be correct-or-abort *)
  e_no_abort : bool;  (* AGG must not abort *)
  e_veri : bool option;  (* Some true / Some false = required verdict *)
}

let scenario_of (o : Run.pair_outcome) ~t =
  if o.Run.edge_failures <= t then `At_most_t
  else if not o.Run.lfc then `Over_t_no_lfc
  else `Over_t_lfc

let check_pair_guarantees (o : Run.pair_outcome) ~t =
  (match scenario_of o ~t with
  | `At_most_t ->
    (* Scenario 1: correct result, no abort, VERI true. *)
    check_true "scenario1: AGG must not abort"
      (match o.Run.verdict.Pair.result with Agg.Value _ -> true | Agg.Aborted -> false);
    check_true "scenario1: result must be correct" o.Run.common.Run.correct;
    check_true "scenario1: VERI must output true" o.Run.verdict.Pair.veri_ok
  | `Over_t_no_lfc ->
    (* Scenario 2: correct result or abort; VERI unconstrained. *)
    check_true "scenario2: AGG must be correct or aborted" o.Run.common.Run.correct
  | `Over_t_lfc ->
    (* Scenario 3: VERI must output false. *)
    check_true "scenario3: VERI must output false" (not o.Run.verdict.Pair.veri_ok));
  ()
