(* Tests for lib/service: the long-lived aggregation service.

   The load-bearing properties:

   - admission is bounded and fair: a full queue rejects with a
     structured backpressure reason, tenants rotate, priorities order
     within a tenant;
   - the digest is a sound cache key: envelope fields (tenant, priority,
     deadline) never enter it, everything that affects the computation
     does, and a duplicate submission is served without re-simulation;
   - checkpoints round-trip the whole service: a restart re-seeds the
     cache, keeps ids unique, and drains the restored backlog;
   - the protocol responses are byte-identical with telemetry globally
     disabled (the obs kill switch changes exports, never answers);
   - a chaos campaign routed through the service sees the same planted
     violations as the in-process path, plus the service's backpressure. *)

open Ftagg
open Helpers
module Job = Service.Job
module Squeue = Service.Queue
module Cache = Service.Cache
module Reconfig = Service.Reconfig
module Scheduler = Service.Scheduler
module Checkpoint = Service.Checkpoint
module Server = Service.Server

(* A small, fast, failure-free job: a 4x4 grid SUM under Algorithm 1. *)
let spec ?(tenant = "default") ?(n = 16) ?(seed = 7) ?(priority = Job.Normal) ?(generation = 0)
    ?deadline () =
  {
    Job.tenant;
    family = Topo.Grid;
    n;
    topo_seed = seed;
    inputs = default_inputs n;
    c = 2;
    t = 2;
    caaf = "sum";
    protocol = Job.Tradeoff { b = 63; f = 1 };
    failures = Job.Generated { mode = "none"; budget = 0 };
    seed;
    generation;
    deadline;
    priority;
  }

let settings ?(queue = 8) ?(cache = 8) ?(batch = 2) ?(every = 0) () =
  {
    Reconfig.default with
    Reconfig.queue_capacity = queue;
    cache_capacity = cache;
    tick_batch = batch;
    checkpoint_every = every;
  }

(* --- admission queue --- *)

let test_queue_fairness () =
  let q = Squeue.create ~capacity:10 in
  let put tenant x = Result.get_ok (Squeue.submit q ~tenant ~priority:1 x) in
  put "a" 1;
  put "a" 2;
  put "a" 3;
  put "b" 4;
  check_true "tenants in first-seen order" (Squeue.tenants q = [ "a"; "b" ]);
  let pops = List.init 4 (fun _ -> Option.get (Squeue.pop q)) in
  Alcotest.(check (list (pair string int)))
    "round-robin: b's single job is not starved"
    [ ("a", 1); ("b", 4); ("a", 2); ("a", 3) ]
    pops;
  check_true "drained" (Squeue.pop q = None)

let test_queue_priority () =
  let q = Squeue.create ~capacity:10 in
  let put priority x = Result.get_ok (Squeue.submit q ~tenant:"t" ~priority x) in
  put 1 1;
  put 1 2;
  put 0 3;
  put 2 4;
  let order = List.init 4 (fun _ -> snd (Option.get (Squeue.pop q))) in
  Alcotest.(check (list int)) "priority first, FIFO within" [ 3; 1; 2; 4 ] order

let test_queue_backpressure () =
  let q = Squeue.create ~capacity:2 in
  ignore (Squeue.submit q ~tenant:"a" ~priority:1 1);
  ignore (Squeue.submit q ~tenant:"b" ~priority:1 2);
  (match Squeue.submit q ~tenant:"c" ~priority:1 3 with
  | Ok () -> Alcotest.fail "expected rejection"
  | Error (Squeue.Queue_full { depth; capacity } as r) ->
    check_int "depth reported" 2 depth;
    check_int "capacity reported" 2 capacity;
    check_true "machine tag" (Squeue.reject_reason r = "queue_full"));
  let zero = Squeue.create ~capacity:0 in
  check_true "capacity 0 rejects everything"
    (Result.is_error (Squeue.submit zero ~tenant:"a" ~priority:0 1));
  Alcotest.check_raises "negative capacity rejected"
    (Invalid_argument "Queue.create: capacity must be >= 0") (fun () ->
      ignore (Squeue.create ~capacity:(-1)))

let test_queue_snapshot_and_remove () =
  let q = Squeue.create ~capacity:10 in
  List.iter
    (fun (tenant, x) -> ignore (Squeue.submit q ~tenant ~priority:1 x))
    [ ("a", 1); ("a", 2); ("b", 3) ];
  let snap = Squeue.to_list q in
  Alcotest.(check (list int)) "snapshot is pop order" [ 1; 3; 2 ] snap;
  check_int "snapshot does not consume" 3 (Squeue.length q);
  let removed = Squeue.remove q (fun x -> x = 3) in
  Alcotest.(check (list int)) "removed the match" [ 3 ] removed;
  check_int "two left" 2 (Squeue.length q);
  (* shrinking below depth keeps admitted jobs, gates new ones *)
  Squeue.set_capacity q 1;
  check_int "shrink keeps admitted jobs" 2 (Squeue.length q);
  check_true "but gates new submissions"
    (Result.is_error (Squeue.submit q ~tenant:"a" ~priority:1 9))

(* --- result cache --- *)

let test_cache_lru () =
  let r = Registry.create () in
  let c = Cache.create ~registry:r ~capacity:2 () in
  Cache.add c "a" 1;
  Cache.add c "b" 2;
  check_true "hit a" (Cache.find c "a" = Some 1);
  Cache.add c "x" 3 (* b is now LRU -> evicted *);
  check_true "a survived (recently used)" (Cache.find c "a" = Some 1);
  check_true "b evicted" (Cache.find c "b" = None);
  let s = Cache.stats c in
  check_int "hits" 2 s.Cache.hits;
  check_int "misses" 1 s.Cache.misses;
  check_int "evictions" 1 s.Cache.evictions;
  check_int "entries" 2 s.Cache.entries;
  (* plain stats are mirrored into the registry *)
  check_int "registry hits" 2 (Registry.counter r "service_cache_hits_total");
  check_int "registry misses" 1 (Registry.counter r "service_cache_misses_total");
  check_int "registry evictions" 1 (Registry.counter r "service_cache_evictions_total");
  (* live shrink evicts down *)
  Cache.set_capacity c 1;
  check_int "shrink evicts to capacity" 1 (Cache.length c)

let test_cache_disabled () =
  let c = Cache.create ~capacity:0 () in
  Cache.add c "a" 1;
  check_true "capacity 0 stores nothing" (Cache.find c "a" = None);
  check_int "still counts the miss" 1 (Cache.stats c).Cache.misses

(* --- job digests and wire form --- *)

let test_job_digest () =
  let base = spec () in
  check_int "digest is 16 hex chars" 16 (String.length (Job.digest base));
  check_true "digest is deterministic" (Job.digest base = Job.digest (spec ()));
  (* envelope fields are excluded: same question, same cache entry *)
  check_true "tenant excluded" (Job.digest base = Job.digest (spec ~tenant:"other" ()));
  check_true "priority excluded" (Job.digest base = Job.digest (spec ~priority:Job.High ()));
  check_true "deadline excluded" (Job.digest base = Job.digest (spec ~deadline:5 ()));
  (* everything computational is included *)
  check_true "n included" (Job.digest base <> Job.digest (spec ~n:25 ()));
  check_true "seed included" (Job.digest base <> Job.digest (spec ~seed:8 ()));
  check_true "inputs included"
    (Job.digest base <> Job.digest { base with Job.inputs = Array.make 16 1 });
  check_true "protocol included"
    (Job.digest base <> Job.digest { base with Job.protocol = Job.Brute });
  check_true "caaf included" (Job.digest base <> Job.digest { base with Job.caaf = "max" });
  (* the generation lives in the cache key, not the digest *)
  check_true "generation excluded from the digest"
    (Job.digest base = Job.digest (spec ~generation:3 ()))

let test_job_cache_key () =
  let base = spec () in
  check_true "generation 0 keys on the bare digest" (Job.cache_key base = Job.digest base);
  let g2 = spec ~generation:2 () in
  check_true "later generation suffixes the digest"
    (Job.cache_key g2 = Job.digest g2 ^ "@g2");
  check_true "distinct generations never share a key"
    (Job.cache_key (spec ~generation:1 ()) <> Job.cache_key g2);
  match Job.of_json ~settings:Reconfig.default (Job.to_json g2) with
  | Error e -> Alcotest.fail e
  | Ok s' ->
    check_int "generation survives the wire" 2 s'.Job.generation;
    check_true "cache key stable across the wire" (Job.cache_key g2 = Job.cache_key s')

(* A job admitted under generation g must miss — not hit — an outcome
   cached under generation g-1 with the identical spec digest: the
   topology may have churned between the two admissions. *)
let test_scheduler_generation_invalidation () =
  let t = Scheduler.create ~settings:(settings ~batch:1 ()) () in
  let run s =
    ignore (Result.get_ok (Scheduler.submit t s));
    match Scheduler.tick t () with
    | [ c ] -> c
    | cs -> Alcotest.fail (Printf.sprintf "expected 1 completion, got %d" (List.length cs))
  in
  let c0 = run (spec ()) in
  check_true "generation 0 executes" (not c0.Scheduler.cached);
  let c0' = run (spec ~tenant:"other" ()) in
  check_true "same generation, same digest: cache hit" c0'.Scheduler.cached;
  let c1 = run (spec ~generation:1 ()) in
  check_true "same digest one generation later: miss, not a stale hit"
    (not c1.Scheduler.cached);
  check_true "completion records the generation-keyed digest"
    (c1.Scheduler.digest = Job.digest (spec ()) ^ "@g1");
  let c1' = run (spec ~generation:1 ~tenant:"other" ()) in
  check_true "repeat within generation 1 hits its own entry" c1'.Scheduler.cached;
  let s = Scheduler.cache_stats t in
  check_int "two hits" 2 s.Cache.hits;
  check_int "two misses" 2 s.Cache.misses

let test_job_json_roundtrip () =
  let s = spec ~tenant:"acme" ~priority:Job.High ~deadline:4 () in
  (match Job.of_json ~settings:Reconfig.default (Job.to_json s) with
  | Error e -> Alcotest.fail e
  | Ok s' ->
    check_true "spec round-trips" (s = s');
    check_true "digest stable across the wire" (Job.digest s = Job.digest s'));
  let explicit = { s with Job.failures = Job.Explicit [ (3, 10); (5, 2) ] } in
  (match Job.of_json ~settings:Reconfig.default (Job.to_json explicit) with
  | Error e -> Alcotest.fail e
  | Ok s' -> check_true "explicit schedule round-trips" (explicit = s'));
  let o =
    {
      Job.value = Some 42;
      correct = true;
      cc = 100;
      rounds = 50;
      flooding_rounds = 10;
      via = "pair interval 1";
      violation = None;
    }
  in
  match Job.outcome_of_json (Job.outcome_to_json o) with
  | Error e -> Alcotest.fail e
  | Ok o' -> check_true "outcome round-trips" (o = o')

let test_job_of_json_defaults_and_errors () =
  let parse s =
    match Bench_io.of_string s with
    | Ok j -> Job.of_json ~settings:(settings ()) j
    | Error e -> Error e
  in
  (match parse {|{"family":"grid","n":25,"seed":7}|} with
  | Error e -> Alcotest.fail e
  | Ok s ->
    check_true "tenant defaulted" (s.Job.tenant = "default");
    check_true "b/f defaulted from settings" (s.Job.protocol = Job.Tradeoff { b = 63; f = 8 });
    check_int "inputs drawn from the seed" 25 (Array.length s.Job.inputs));
  check_true "unknown family rejected"
    (Result.is_error (parse {|{"family":"moebius","n":25,"seed":7}|}));
  check_true "unknown caaf rejected"
    (Result.is_error (parse {|{"family":"grid","n":25,"seed":7,"caaf":"median"}|}));
  check_true "non-positive n rejected" (Result.is_error (parse {|{"family":"grid","n":0}|}))

(* --- scheduler --- *)

let test_scheduler_cache_hit () =
  let t = Scheduler.create ~settings:(settings ~batch:1 ()) () in
  let id1 = Result.get_ok (Scheduler.submit t (spec ())) in
  let id2 = Result.get_ok (Scheduler.submit t (spec ~tenant:"other" ()))
  and _ = check_true "ids are fresh" true in
  check_true "distinct ids" (id1 <> id2);
  (match Scheduler.tick t () with
  | [ c ] ->
    check_true "first executes" (not c.Scheduler.cached);
    check_true "outcome correct"
      (match c.Scheduler.outcome with Ok o -> o.Job.correct | Error _ -> false)
  | cs -> Alcotest.fail (Printf.sprintf "expected 1 completion, got %d" (List.length cs)));
  (match Scheduler.tick t () with
  | [ c ] ->
    check_true "duplicate from another tenant is a cache hit" c.Scheduler.cached;
    check_true "same digest" (Job.digest (spec ()) = c.Scheduler.digest)
  | _ -> Alcotest.fail "expected 1 completion");
  let s = Scheduler.cache_stats t in
  check_int "one hit" 1 s.Cache.hits;
  check_int "one miss" 1 s.Cache.misses;
  (* same-batch duplicates: one execution, the rest served from it *)
  let t2 = Scheduler.create ~settings:(settings ~batch:4 ()) () in
  ignore (Scheduler.submit t2 (spec ()));
  ignore (Scheduler.submit t2 (spec ~tenant:"b" ()));
  ignore (Scheduler.submit t2 (spec ~tenant:"c" ()));
  let cs = Scheduler.tick t2 () in
  check_int "all three complete in one tick" 3 (List.length cs);
  check_int "exactly one executed" 1
    (List.length (List.filter (fun c -> not c.Scheduler.cached) cs));
  check_true "all agree on the value"
    (List.for_all
       (fun c ->
         match c.Scheduler.outcome with
         | Ok o -> o.Job.value = Some (total (default_inputs 16))
         | Error _ -> false)
       cs)

let test_scheduler_cancel_and_deadline () =
  let t = Scheduler.create ~settings:(settings ~batch:4 ()) () in
  let id1 = Result.get_ok (Scheduler.submit t (spec ())) in
  let id2 = Result.get_ok (Scheduler.submit t (spec ~seed:8 ())) in
  check_true "cancel a queued job" (Scheduler.cancel t id2);
  check_true "cancel is idempotent-false" (not (Scheduler.cancel t id2));
  check_true "unknown id" (not (Scheduler.cancel t "j999"));
  let cs = Scheduler.drain t in
  check_int "only the uncancelled job ran" 1 (List.length cs);
  check_true "and it is id1" ((List.hd cs).Scheduler.id = id1);
  check_true "completed job cannot be cancelled" (not (Scheduler.cancel t id1));
  (* a job whose queue wait exceeds its deadline expires instead of running *)
  let t2 = Scheduler.create ~settings:(settings ~batch:1 ()) () in
  ignore (Scheduler.submit t2 (spec ()));
  let expiring = Result.get_ok (Scheduler.submit t2 (spec ~seed:9 ~deadline:0 ())) in
  ignore (Scheduler.tick t2 ()) (* runs the first job; the deadline-0 job now waited 1 > 0 *);
  match Scheduler.tick t2 () with
  | [ c ] ->
    check_true "expired job is the one with the deadline" (c.Scheduler.id = expiring);
    check_true "expired, not executed"
      (match c.Scheduler.outcome with Error e -> String.length e > 0 | Ok _ -> false)
  | _ -> Alcotest.fail "expected the expired completion"

let test_scheduler_reconfig () =
  let t = Scheduler.create ~settings:(settings ~queue:1 ~cache:8 ()) () in
  ignore (Scheduler.submit t (spec ()));
  check_true "full at capacity 1" (Result.is_error (Scheduler.submit t (spec ~seed:8 ())));
  let patch = { Reconfig.empty with Reconfig.p_queue_capacity = Some 4; p_default_b = Some 126 } in
  let s' = Scheduler.reconfig t patch in
  check_int "queue capacity patched" 4 s'.Reconfig.queue_capacity;
  check_int "default_b patched" 126 s'.Reconfig.default_b;
  check_true "admission reopened" (Result.is_ok (Scheduler.submit t (spec ~seed:8 ())));
  (* defaults resolve at admission: a job parsed after the patch gets the
     new b, so its digest differs from the same request parsed before *)
  let parse st =
    match Bench_io.of_string {|{"family":"grid","n":16,"seed":7}|} with
    | Ok j -> Result.get_ok (Job.of_json ~settings:st j)
    | Error e -> Alcotest.fail e
  in
  let before = parse (settings ()) and after = parse s' in
  check_true "patched default changes new digests" (Job.digest before <> Job.digest after);
  ignore (Scheduler.drain t)

let test_scheduler_checkpoint_restore () =
  let path = Filename.temp_file "ftagg-service" ".ckpt.json" in
  let st = settings ~batch:1 ~every:1 () in
  let t = Scheduler.create ~checkpoint_path:path ~settings:st () in
  ignore (Scheduler.submit t (spec ()));
  ignore (Scheduler.submit t (spec ~seed:8 ()));
  ignore (Scheduler.submit t (spec ~seed:9 ~tenant:"b" ()));
  ignore (Scheduler.tick t ()) (* one completion -> auto-checkpoint (every = 1) *);
  let state = Result.get_ok (Checkpoint.load ~path) in
  check_int "backlog checkpointed" 2 (List.length state.Checkpoint.s_pending);
  check_int "completion checkpointed" 1 (List.length state.Checkpoint.s_completed);
  (* restart *)
  let t' = Scheduler.restore ~checkpoint_path:path ~settings:st state in
  check_int "backlog restored" 2 (Scheduler.depth t');
  check_int "completions restored" 1 (Scheduler.completed_count t');
  (* a post-restart duplicate of the completed job hits the re-seeded cache *)
  let dup = Result.get_ok (Scheduler.submit t' (spec ())) in
  check_true "ids never collide across the restart" (not (String.equal dup "j1"));
  let cs = Scheduler.drain t' in
  check_int "backlog + duplicate drained" 3 (List.length cs);
  let dup_c = List.find (fun c -> c.Scheduler.id = dup) cs in
  check_true "duplicate served from the restored cache" dup_c.Scheduler.cached;
  check_true "every drained job succeeded"
    (List.for_all (fun c -> Result.is_ok c.Scheduler.outcome) cs);
  Sys.remove path

(* --- checkpoint codec --- *)

let test_checkpoint_codec () =
  let state =
    {
      Checkpoint.s_next_id = 7;
      s_tick = 3;
      s_pending = [ ("j5", spec ()); ("j6", spec ~seed:8 ~priority:Job.Low ()) ];
      s_completed =
        [
          {
            Checkpoint.d_id = "j1";
            d_tenant = "a";
            d_digest = "0123456789abcdef";
            d_cached = false;
            d_outcome =
              Ok
                {
                  Job.value = Some 3;
                  correct = true;
                  cc = 9;
                  rounds = 5;
                  flooding_rounds = 1;
                  via = "x";
                  violation = None;
                };
          };
          {
            Checkpoint.d_id = "j2";
            d_tenant = "b";
            d_digest = "fedcba9876543210";
            d_cached = true;
            d_outcome = Error "deadline exceeded";
          };
        ];
    }
  in
  (match Checkpoint.of_json (Checkpoint.to_json state) with
  | Error e -> Alcotest.fail e
  | Ok state' -> check_true "state round-trips" (state = state'));
  match Checkpoint.of_json (Bench_io.Obj [ ("version", Bench_io.Int 999) ]) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown version must be rejected"

let test_checkpoint_atomic_save () =
  let path = Filename.temp_file "ftagg-atomic" ".ckpt.json" in
  Checkpoint.save ~path { Checkpoint.empty with Checkpoint.s_next_id = 5 };
  check_true "no tmp residue after a save" (not (Sys.file_exists (path ^ ".tmp")));
  (match Checkpoint.load ~path with
  | Ok s -> check_int "saved state loads back" 5 s.Checkpoint.s_next_id
  | Error e -> Alcotest.fail e);
  (* A stale [.tmp] left by a writer that crashed mid-write must neither
     be loaded nor block the next save. *)
  let oc = open_out (path ^ ".tmp") in
  output_string oc "{ torn";
  close_out oc;
  Checkpoint.save ~path { Checkpoint.empty with Checkpoint.s_next_id = 6 };
  check_true "stale tmp replaced, not kept" (not (Sys.file_exists (path ^ ".tmp")));
  (match Checkpoint.load ~path with
  | Ok s -> check_int "the newest complete state wins" 6 s.Checkpoint.s_next_id
  | Error e -> Alcotest.fail e);
  Sys.remove path

let test_checkpoint_torn_file_refused () =
  let path = Filename.temp_file "ftagg-torn" ".ckpt.json" in
  Checkpoint.save ~path { Checkpoint.empty with Checkpoint.s_next_id = 9 };
  (* Simulate a crash mid-write of a non-atomic writer: truncate the
     file to half its bytes. *)
  let full =
    let ic = open_in_bin path in
    let len = in_channel_length ic in
    let s = really_input_string ic len in
    close_in ic;
    s
  in
  let oc = open_out_bin path in
  output_string oc (String.sub full 0 (String.length full / 2));
  close_out oc;
  (match Checkpoint.load ~path with
  | Ok _ -> Alcotest.fail "a torn checkpoint must not load"
  | Error e ->
    check_true "the error says torn/corrupt, naming the file"
      (string_contains ~needle:"torn or corrupt" e && string_contains ~needle:path e));
  (* The server must not brick on it: start empty, keep the reason. *)
  let t =
    Server.create { Server.settings = settings (); checkpoint_path = Some path; store_dir = None; name = "test" }
  in
  (match Server.restore_error t with
  | Some e -> check_true "restore error surfaced" (string_contains ~needle:"torn or corrupt" e)
  | None -> Alcotest.fail "restore_error must be set for a torn checkpoint");
  check_true "the server still answers"
    (match Bench_io.of_string (Server.handle t {|{"op":"status"}|}) with
    | Ok json -> Bench_io.member "ok" json = Some (Bench_io.Bool true)
    | Error _ -> false);
  Sys.remove path

(* --- server protocol --- *)

let server ?checkpoint_path ?store_dir ?(st = settings ()) () =
  Server.create { Server.settings = st; checkpoint_path; store_dir; name = "test" }

let test_server_protocol () =
  let t = server () in
  let get path line =
    match Bench_io.of_string (Server.handle t line) with
    | Ok json -> Bench_io.member path json
    | Error e -> Alcotest.fail e
  in
  check_true "submit acks queued"
    (get "status" {|{"op":"submit","job":{"family":"grid","n":16,"seed":7}}|}
    = Some (Bench_io.String "queued"));
  check_true "malformed line is an error response, not a crash"
    (get "ok" "{nope" = Some (Bench_io.Bool false));
  check_true "unknown op is an error response"
    (get "ok" {|{"op":"florble"}|} = Some (Bench_io.Bool false));
  check_true "missing op is an error response"
    (get "ok" {|{"x":1}|} = Some (Bench_io.Bool false));
  check_true "bad job is an error response"
    (get "ok" {|{"op":"submit","job":{"family":"moebius"}}|} = Some (Bench_io.Bool false));
  check_true "drain completes the backlog"
    (get "depth" {|{"op":"drain"}|} = Some (Bench_io.Int 0));
  check_true "status reports the completion"
    (get "completed" {|{"op":"status"}|} = Some (Bench_io.Int 1));
  check_true "get finds it"
    (get "found" {|{"op":"get","id":"j1"}|} = Some (Bench_io.Bool true));
  check_true "get on unknown id"
    (get "found" {|{"op":"get","id":"j99"}|} = Some (Bench_io.Bool false));
  check_true "reconfig echoes touched fields"
    (get "applied" {|{"op":"reconfig","set":{"cache_capacity":2}}|}
    = Some (Bench_io.List [ Bench_io.String "cache_capacity" ]));
  check_true "bad patch rejected whole"
    (get "ok" {|{"op":"reconfig","set":{"cache_capacity":2,"warp":9}}|}
    = Some (Bench_io.Bool false));
  check_true "checkpoint without a path is an error"
    (get "ok" {|{"op":"checkpoint"}|} = Some (Bench_io.Bool false));
  check_true "metrics carries a prometheus dump"
    (match get "prometheus" {|{"op":"metrics"}|} with
    | Some (Bench_io.String s) -> String.length s > 0
    | _ -> false);
  check_true "shutdown flips the flag"
    (get "ok" {|{"op":"shutdown"}|} = Some (Bench_io.Bool true));
  check_true "shutdown requested" (Server.shutdown_requested t)

let test_server_backpressure_response () =
  let t = server ~st:(settings ~queue:1 ()) () in
  let submit = {|{"op":"submit","job":{"family":"grid","n":16,"seed":7}}|} in
  ignore (Server.handle t submit);
  match Bench_io.of_string (Server.handle t {|{"op":"submit","job":{"family":"grid","n":16,"seed":8}}|}) with
  | Error e -> Alcotest.fail e
  | Ok json ->
    check_true "refused" (Bench_io.member "ok" json = Some (Bench_io.Bool false));
    check_true "backpressure error"
      (Bench_io.member "error" json = Some (Bench_io.String "backpressure"));
    check_true "machine-readable reason"
      (Bench_io.member "reason" json = Some (Bench_io.String "queue_full"))

let test_server_obs_off_identity () =
  (* The kill switch disables every registry/span/event path.  Responses
     must not change: they are built from scheduler state, never from
     telemetry.  ([metrics] is excepted — it *is* telemetry.) *)
  let script =
    [
      {|{"op":"submit","job":{"family":"grid","n":16,"seed":7}}|};
      {|{"op":"submit","job":{"family":"grid","n":16,"seed":7,"tenant":"b"}}|};
      {|{"op":"tick"}|};
      {|{"op":"drain"}|};
      {|{"op":"status"}|};
      {|{"op":"cancel","id":"j1"}|};
    ]
  in
  let run_script () = List.map (Server.handle (server ())) script in
  let with_obs = run_script () in
  Registry.set_enabled false;
  let without_obs = Fun.protect ~finally:(fun () -> Registry.set_enabled true) run_script in
  Alcotest.(check (list string)) "responses byte-identical with telemetry off" with_obs without_obs

(* --- sweep: the non-abandoning variant --- *)

let test_map_results () =
  let f x = if x mod 3 = 0 then failwith (Printf.sprintf "boom %d" x) else x * 10 in
  let results = Sweep.map_results ~domains:2 f [ 1; 2; 3; 4; 5; 6 ] in
  check_int "all six jobs report" 6 (List.length results);
  List.iteri
    (fun i r ->
      let x = i + 1 in
      match r with
      | Ok v ->
        check_true "non-multiples succeed in order" (x mod 3 <> 0);
        check_int "value" (x * 10) v
      | Error (Failure msg) ->
        check_true "multiples of 3 fail" (x mod 3 = 0);
        check_true "their own exception" (msg = Printf.sprintf "boom %d" x)
      | Error e -> Alcotest.fail (Printexc.to_string e))
    results;
  (* [map] keeps its fail-fast contract *)
  match Sweep.map ~domains:2 (fun x -> if x = 2 then failwith "x" else x) [ 1; 2; 3 ] with
  | exception Sweep.Job_failed (i, _) -> check_int "index of the failure" 1 i
  | _ -> Alcotest.fail "expected Job_failed"

(* --- chaos campaigns through the service --- *)

let campaign_config =
  {
    Campaign.default_config with
    Campaign.trials = 6;
    seed = 99;
    bit_cap = Some 40 (* planted: every executed trial must violate *);
    max_n = 14;
    log = ignore;
  }

let test_campaign_via_service () =
  let sched = Scheduler.create ~settings:(settings ~queue:4 ~cache:4 ()) () in
  let outcome =
    Campaign.run { campaign_config with Campaign.via = Some (Service.Chaos_gate.via sched) }
  in
  check_int "nothing rejected at this capacity" 0 outcome.Campaign.o_rejected_trials;
  check_int "planted cap violates every trial" 6 outcome.Campaign.o_violating_trials;
  check_true "the service actually ran them" (Scheduler.completed_count sched >= 6);
  check_true "under the chaos tenant"
    (Registry.counter (Scheduler.registry sched)
       ~labels:[ ("tenant", "chaos") ]
       "service_jobs_completed_total"
    >= 6)

let test_campaign_via_service_backpressure () =
  (* queue capacity 0: the service refuses every trial; the campaign
     counts them as rejected and reports no violations. *)
  let sched = Scheduler.create ~settings:(settings ~queue:0 ()) () in
  let outcome =
    Campaign.run { campaign_config with Campaign.via = Some (Service.Chaos_gate.via sched) }
  in
  check_int "every trial rejected" 6 outcome.Campaign.o_rejected_trials;
  check_int "no violations observed" 0 outcome.Campaign.o_violating_trials;
  check_true "no incidents" (outcome.Campaign.o_incidents = []);
  check_int "nothing completed" 0 (Scheduler.completed_count sched)

let test_campaign_via_service_cancellation () =
  let sched = Scheduler.create ~settings:(settings ~queue:4 ()) () in
  let outcome =
    Campaign.run
      {
        campaign_config with
        Campaign.via = Some (Service.Chaos_gate.via ~cancel_every:2 sched);
      }
  in
  check_int "every second trial cancelled" 3 outcome.Campaign.o_rejected_trials;
  check_int "the rest still violate" 3 outcome.Campaign.o_violating_trials

(* --- golden digest vectors ---

   The digest is the cross-process cache key: the store files, the
   fleet's ring placement and the client's idempotent resubmit all
   assume every build of every fleet member hashes a job to the same
   hex string.  These vectors pin the digest byte-exact, so any change
   to the canonical serialization (field order, separators, the FNV
   constants) fails loudly instead of silently splitting the fleet's
   caches. *)

let test_job_digest_golden () =
  let vectors =
    [
      (spec (), "711832b693b6182d");
      (spec ~n:25 ~seed:3 (), "6b57e64ed4fe9fa5");
      ({ (spec ()) with Job.caaf = "max"; protocol = Job.Brute }, "d88d0e3b6b1a7869");
      ( { (spec ~n:9 ()) with Job.failures = Job.Explicit [ (1, 4); (2, 0) ] },
        "364c1ad699197b83" );
    ]
  in
  List.iteri
    (fun i (s, expect) ->
      Alcotest.(check string)
        (Printf.sprintf "vector %d pinned" (i + 1))
        expect (Job.digest s))
    vectors

(* --- the shared store as an L2 behind the LRU --- *)

let store_dir_counter = ref 0

let with_store_dir f =
  incr store_dir_counter;
  let d =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "ftagg-svc-store-%d-%d" (Unix.getpid ()) !store_dir_counter)
  in
  Fun.protect
    ~finally:(fun () ->
      if Sys.file_exists d then begin
        Array.iter (fun x -> Sys.remove (Filename.concat d x)) (Sys.readdir d);
        Unix.rmdir d
      end)
    (fun () -> f d)

let open_store d = Result.get_ok (Store.open_ ~dir:d ())

let test_scheduler_store_l2 () =
  with_store_dir @@ fun d ->
  let store_a = open_store d in
  let a = Scheduler.create ~store:store_a ~settings:(settings ~batch:1 ()) () in
  ignore (Result.get_ok (Scheduler.submit a (spec ())));
  (match Scheduler.tick a () with
  | [ c ] -> check_true "first execution is not cached" (not c.Scheduler.cached)
  | _ -> Alcotest.fail "expected one completion");
  check_int "execution appended to the store" 1 (Store.entries store_a);
  (* a second scheduler — fresh (empty) L1, same directory: the same job
     completes from the store, no re-simulation *)
  let store_b = open_store d in
  let b = Scheduler.create ~store:store_b ~settings:(settings ~batch:1 ()) () in
  ignore (Result.get_ok (Scheduler.submit b (spec ())));
  (match Scheduler.tick b () with
  | [ c ] ->
    check_true "L2 hit completes as cached" c.Scheduler.cached;
    check_true "outcome intact across the disk round-trip"
      (match c.Scheduler.outcome with Ok o -> o.Job.correct | Error _ -> false)
  | _ -> Alcotest.fail "expected one completion");
  let st = Option.get (Scheduler.store_stats b) in
  check_true "store hit counted" (st.Store.s_hits >= 1);
  check_int "no duplicate append from the L2 hit" 1 (Store.entries store_b);
  (* the hit was promoted into L1: another duplicate stays off the store *)
  ignore (Result.get_ok (Scheduler.submit b (spec ~tenant:"other" ())));
  (match Scheduler.tick b () with
  | [ c ] -> check_true "promoted hit serves from L1" c.Scheduler.cached
  | _ -> Alcotest.fail "expected one completion");
  check_int "L1 hit does not touch the store again" st.Store.s_hits
    (Option.get (Scheduler.store_stats b)).Store.s_hits;
  Store.close store_a;
  Store.close store_b

(* Satellite: resuming from a checkpoint against an already-populated
   store must not duplicate store entries and must not move any cache or
   store counter — restore is bookkeeping, not traffic. *)
let test_restore_with_populated_store () =
  with_store_dir @@ fun d ->
  let ckpt = Filename.temp_file "ftagg-store-resume" ".ckpt.json" in
  Fun.protect ~finally:(fun () -> if Sys.file_exists ckpt then Sys.remove ckpt) @@ fun () ->
  let store_a = open_store d in
  let a =
    Scheduler.create ~checkpoint_path:ckpt ~store:store_a ~settings:(settings ~batch:2 ()) ()
  in
  ignore (Result.get_ok (Scheduler.submit a (spec ())));
  ignore (Result.get_ok (Scheduler.submit a (spec ~seed:8 ())));
  ignore (Scheduler.drain a);
  ignore (Scheduler.checkpoint_now a);
  check_int "both executions on disk" 2 (Store.entries store_a);
  (* resume against the populated store *)
  let state = Result.get_ok (Checkpoint.load ~path:ckpt) in
  let store_b = open_store d in
  let b =
    Scheduler.restore ~checkpoint_path:ckpt ~store:store_b
      ~settings:(settings ~batch:2 ()) state
  in
  let st = Option.get (Scheduler.store_stats b) in
  check_int "restore appends nothing" 0 st.Store.s_appends;
  check_int "restore reads count no hits" 0 st.Store.s_hits;
  check_int "restore reads count no misses" 0 st.Store.s_misses;
  check_int "no duplicate entries" 2 (Store.entries store_b);
  let cs = Scheduler.cache_stats b in
  check_int "restore flips no cache hits" 0 cs.Cache.hits;
  check_int "restore flips no cache misses" 0 cs.Cache.misses;
  (* the restored digests still answer as cached on resubmission *)
  ignore (Result.get_ok (Scheduler.submit b (spec ())));
  (match Scheduler.tick b () with
  | [ c ] -> check_true "resubmission after resume is cached" c.Scheduler.cached
  | _ -> Alcotest.fail "expected one completion");
  Store.close store_a;
  Store.close store_b

let suite =
  [
    Alcotest.test_case "queue: per-tenant fairness" `Quick test_queue_fairness;
    Alcotest.test_case "queue: priority within tenant" `Quick test_queue_priority;
    Alcotest.test_case "queue: bounded with backpressure" `Quick test_queue_backpressure;
    Alcotest.test_case "queue: snapshot, remove, live resize" `Quick test_queue_snapshot_and_remove;
    Alcotest.test_case "cache: LRU + mirrored counters" `Quick test_cache_lru;
    Alcotest.test_case "cache: capacity 0 disables" `Quick test_cache_disabled;
    Alcotest.test_case "job: digest soundness" `Quick test_job_digest;
    Alcotest.test_case "job: generation-keyed cache key" `Quick test_job_cache_key;
    Alcotest.test_case "scheduler: new generation misses stale cache" `Quick
      test_scheduler_generation_invalidation;
    Alcotest.test_case "job: wire round-trip" `Quick test_job_json_roundtrip;
    Alcotest.test_case "job: defaults and validation" `Quick test_job_of_json_defaults_and_errors;
    Alcotest.test_case "job: golden digest vectors" `Quick test_job_digest_golden;
    Alcotest.test_case "scheduler: store is an L2 behind the LRU" `Quick test_scheduler_store_l2;
    Alcotest.test_case "scheduler: resume against a populated store" `Quick
      test_restore_with_populated_store;
    Alcotest.test_case "scheduler: duplicate = cache hit" `Quick test_scheduler_cache_hit;
    Alcotest.test_case "scheduler: cancel + deadline" `Quick test_scheduler_cancel_and_deadline;
    Alcotest.test_case "scheduler: live reconfig" `Quick test_scheduler_reconfig;
    Alcotest.test_case "scheduler: checkpoint + restore" `Quick test_scheduler_checkpoint_restore;
    Alcotest.test_case "checkpoint: codec + versioning" `Quick test_checkpoint_codec;
    Alcotest.test_case "checkpoint: atomic save leaves no tmp" `Quick test_checkpoint_atomic_save;
    Alcotest.test_case "checkpoint: torn file refused, server survives" `Quick
      test_checkpoint_torn_file_refused;
    Alcotest.test_case "server: protocol surface" `Quick test_server_protocol;
    Alcotest.test_case "server: backpressure response" `Quick test_server_backpressure_response;
    Alcotest.test_case "server: obs-off byte identity" `Quick test_server_obs_off_identity;
    Alcotest.test_case "sweep: map_results never abandons" `Quick test_map_results;
    Alcotest.test_case "campaign via service" `Quick test_campaign_via_service;
    Alcotest.test_case "campaign via service: backpressure" `Quick
      test_campaign_via_service_backpressure;
    Alcotest.test_case "campaign via service: cancellation" `Quick
      test_campaign_via_service_cancellation;
  ]
