(* VERI (§5) and the AGG+VERI pair: Theorems 6–7 and the Table 2
   guarantee matrix. *)

open Ftagg
open Helpers

let run_pair ?(c = 2) ~t graph ~failures ~seed =
  let n = Graph.n graph in
  let params = params_of ~c ~t graph ~inputs:(default_inputs n) in
  (Run.pair ~graph ~failures ~params ~seed (), params)

let test_theorem6_time_bound () =
  List.iter
    (fun (name, g) ->
      let n = Graph.n g in
      let o, params = run_pair ~t:2 g ~failures:(Failure.none ~n) ~seed:1 in
      (* the pair runs 12cd+7 rounds = (7cd+4 AGG) + (5cd+3 VERI) *)
      check_int (name ^ ": pair duration") ((12 * Params.cd params) + 7) o.Run.common.Run.rounds)
    (Lazy.force sweep_graphs)

let test_theorem6_bit_budget () =
  (* VERI's per-node bits stay within (5t+7)(3logN+10) plus one overflow
     symbol.  We bound the pair total by the sum of both budgets. *)
  List.iter
    (fun (name, g) ->
      let n = Graph.n g in
      List.iter
        (fun t ->
          let failures =
            Failure.random g ~rng:(Prng.create (t + 3)) ~budget:(2 * t) ~max_round:400
          in
          let params = params_of ~t g ~inputs:(default_inputs n) in
          let o = Run.pair ~graph:g ~failures ~params ~seed:t () in
          let budget =
            Params.agg_bit_budget params + Params.veri_bit_budget params
            + Message.bits params Message.Agg_abort
            + Message.bits params Message.Veri_overflow
          in
          for u = 0 to n - 1 do
            check_true
              (Printf.sprintf "%s t=%d node %d within combined budget" name t u)
              (Metrics.bits_sent o.Run.common.Run.metrics u <= budget)
          done)
        [ 0; 2; 5 ])
    (Lazy.force sweep_graphs)

let test_theorem7_true_under_t_failures () =
  (* Theorem 7's hypothesis counts the model's edge failures, which
     include edges of nodes disconnected from the root — so the guard
     below uses the model count, not just the injected crashes. *)
  let checked = ref 0 in
  List.iter
    (fun (name, g) ->
      List.iter
        (fun seed ->
          let t = 4 in
          let failures =
            Failure.random g ~rng:(Prng.create (seed * 13)) ~budget:t ~max_round:300
          in
          let o, _ = run_pair ~t g ~failures ~seed in
          if o.Run.edge_failures <= t then begin
            incr checked;
            check_true (name ^ ": VERI true with <= t failures") o.Run.verdict.Pair.veri_ok
          end)
        [ 1; 2; 3; 4 ])
    (Lazy.force sweep_graphs);
  check_true "guard kept enough cases" (!checked >= 15)

let test_theorem7_false_under_lfc () =
  (* A chain of t failures on a ring's tree arm, with live descendants
     kept connected around the ring: VERI must output false. *)
  let g = Gen.ring 30 in
  let t = 5 in
  let failures = Failure.chain ~n:30 ~first:1 ~len:t ~round:70 in
  let o, _ = run_pair ~t g ~failures ~seed:2 in
  check_true "ground truth has LFC" o.Run.lfc;
  check_true "VERI outputs false" (not o.Run.verdict.Pair.veri_ok)

let test_theorem7_long_chain_catches_bad_agg () =
  (* Chain of 2t+1 failures: the witnesses' ancestor windows overflow and
     AGG may undercount; VERI must still output false so Algorithm 1
     never accepts the bad value. *)
  let g = Gen.ring 30 in
  let t = 5 in
  let failures = Failure.chain ~n:30 ~first:1 ~len:((2 * t) + 1) ~round:70 in
  let o, _ = run_pair ~t g ~failures ~seed:3 in
  check_true "LFC present" o.Run.lfc;
  check_true "VERI catches it" (not o.Run.verdict.Pair.veri_ok)

let test_table2_never_violated_random () =
  (* Random adversaries across families: every run must land in an
     allowed Table 2 cell. *)
  List.iter
    (fun (name, g) ->
      List.iter
        (fun seed ->
          let t = 3 in
          let budget = seed mod 12 in
          let failures =
            Failure.random g ~rng:(Prng.create (seed * 7)) ~budget ~max_round:400
          in
          let o, _ = run_pair ~t g ~failures ~seed in
          ignore name;
          check_pair_guarantees o ~t)
        [ 1; 2; 3; 4; 5; 6; 7; 8; 9; 10 ])
    (Lazy.force sweep_graphs)

let test_table2_never_violated_bursts () =
  (* Concentrated bursts at varied phases of the execution. *)
  let g = Gen.grid 36 in
  let params = params_of ~t:3 g ~inputs:(default_inputs 36) in
  let dur = Pair.duration params in
  List.iter
    (fun frac ->
      List.iter
        (fun seed ->
          let round = max 1 (dur * frac / 10) in
          let failures = Failure.burst g ~rng:(Prng.create seed) ~budget:8 ~round in
          let o = Run.pair ~graph:g ~failures ~params ~seed () in
          check_pair_guarantees o ~t:3)
        [ 1; 2; 3 ])
    [ 1; 3; 5; 7; 9 ]

let test_veri_failed_parent_detection () =
  (* Killing an internal node between AGG's end and VERI's start makes it
     a failed parent; with witnesses alive VERI still answers true when
     no LFC can exist (single failure, t=1... a single failed internal
     node with live descendants IS an LFC for t=1, so use t=3). *)
  let g = Gen.ring 20 in
  let params = params_of ~t:3 g ~inputs:(default_inputs 20) in
  let agg_end = Agg.duration params in
  let failures = Failure.kill_nodes ~n:20 ~nodes:[ 4 ] ~round:(agg_end + 2) in
  let o = Run.pair ~graph:g ~failures ~params ~seed:5 () in
  (* node 4 died after AGG: the result is the exact total and VERI, with a
     1-chain < t, answers true *)
  check_true "no LFC" (not o.Run.lfc);
  check_true "verdict true" o.Run.verdict.Pair.veri_ok;
  check_true "correct" o.Run.common.Run.correct

let test_veri_overflow_forces_false () =
  (* t = 0 gives VERI a 7·(3logN+10)-bit budget; a massive kill between
     AGG and VERI floods enough failed_parent/failed_child traffic that
     some node overflows or a chain is claimed — either way the verdict
     must be false, and per-node bits stay capped. *)
  let fired = ref 0 in
  List.iter
    (fun seed ->
      let n = 49 in
      let g = Gen.grid n in
      let params = params_of ~t:0 g ~inputs:(default_inputs n) in
      let agg_end = Agg.duration params in
      let failures =
        Failure.burst g ~rng:(Prng.create seed) ~budget:24 ~round:(agg_end + 2)
      in
      let o = Run.pair ~graph:g ~failures ~params ~seed () in
      if not o.Run.verdict.Pair.veri_ok then incr fired;
      let cap =
        Params.agg_bit_budget params + Params.veri_bit_budget params
        + Message.bits params Message.Agg_abort
        + Message.bits params Message.Veri_overflow
      in
      for u = 0 to n - 1 do
        check_true "bits capped" (Metrics.bits_sent o.Run.common.Run.metrics u <= cap)
      done)
    [ 1; 2; 3; 4 ];
  check_true "verdict false under post-AGG massacre" (!fired >= 3)

let qcheck_tests =
  let open QCheck in
  [
    Test.make ~name:"Table 2 guarantees on random graphs and adversaries" ~count:60
      (quad (int_range 10 36) (int_range 1 5) (int_range 0 14) small_int)
      (fun (n, t, budget, seed) ->
        let g = Topo.random_connected ~n ~p:0.1 ~seed in
        let failures =
          Failure.random g ~rng:(Prng.create (seed + 5)) ~budget ~max_round:500
        in
        let params = params_of ~t g ~inputs:(default_inputs n) in
        let o = Run.pair ~graph:g ~failures ~params ~seed () in
        match scenario_of o ~t with
        | `At_most_t ->
          o.Run.common.Run.correct && o.Run.verdict.Pair.veri_ok
          && (match o.Run.verdict.Pair.result with
             | Agg.Value _ -> true
             | Agg.Aborted -> false)
        | `Over_t_no_lfc -> o.Run.common.Run.correct
        | `Over_t_lfc -> not o.Run.verdict.Pair.veri_ok);
    Test.make ~name:"pair CC stays within the combined theorem budgets" ~count:40
      (triple (int_range 10 30) (int_range 0 5) small_int)
      (fun (n, t, seed) ->
        let g = Topo.random_connected ~n ~p:0.12 ~seed in
        let failures =
          Failure.random g ~rng:(Prng.create (seed + 9)) ~budget:(3 * t) ~max_round:400
        in
        let params = params_of ~t g ~inputs:(default_inputs n) in
        let o = Run.pair ~graph:g ~failures ~params ~seed () in
        let budget =
          Params.agg_bit_budget params + Params.veri_bit_budget params
          + Message.bits params Message.Agg_abort
          + Message.bits params Message.Veri_overflow
        in
        Metrics.cc o.Run.common.Run.metrics <= budget);
  ]

let suite =
  List.map
    (fun (n, f) -> Alcotest.test_case n `Quick f)
    [
      ("veri: Theorem 6 time bound", test_theorem6_time_bound);
      ("veri: Theorem 6 bit budget", test_theorem6_bit_budget);
      ("veri: Theorem 7 true under <= t failures", test_theorem7_true_under_t_failures);
      ("veri: Theorem 7 false under LFC", test_theorem7_false_under_lfc);
      ("veri: long chain caught", test_theorem7_long_chain_catches_bad_agg);
      ("pair: Table 2 random adversaries", test_table2_never_violated_random);
      ("pair: Table 2 bursts", test_table2_never_violated_bursts);
      ("veri: failed parent after AGG", test_veri_failed_parent_detection);
      ("veri: overflow/mass-failure forces false", test_veri_overflow_forces_false);
    ]
  @ List.map QCheck_alcotest.to_alcotest qcheck_tests
