(* Tests for lib/transport: the socket front door.

   The load-bearing properties:

   - framing is bounded and self-healing: an oversized line costs one
     structured error, never the connection, and a half-written line at
     disconnect cannot poison any later connection (framer state is
     per-connection);
   - identity comes from the handshake, not the request body: on an
     authenticated listener a bad token is refused before it can touch
     the scheduler, and the handshake tenant overrides whatever tenant a
     submit claims;
   - one select loop multiplexes concurrent clients onto one scheduler:
     interleaved sessions from two connections share the result cache
     (the second asker of a question gets a cache hit) while keeping
     per-tenant attribution;
   - timeouts and shutdown are orderly: idle connections are closed with
     a structured error, and drain finishes the backlog and writes the
     final checkpoint. *)

open Ftagg
open Helpers
module Frame = Transport.Frame
module Auth = Transport.Auth
module Session = Transport.Session
module Listener = Transport.Listener
module Server = Service.Server
module Reconfig = Service.Reconfig
module Scheduler = Service.Scheduler
module Client = Transport.Client
module Handoff = Transport.Handoff

let settings ?(queue = 8) ?(cache = 8) ?(batch = 4) () =
  {
    Reconfig.default with
    Reconfig.queue_capacity = queue;
    cache_capacity = cache;
    tick_batch = batch;
    checkpoint_every = 0;
  }

let make_server ?checkpoint_path ?(name = "transport-test") () =
  Server.create { Server.settings = settings (); checkpoint_path; store_dir = None; name }

let submit_line ?(tenant = "spoof") ~seed () =
  Printf.sprintf
    {|{"op":"submit","job":{"family":"grid","n":16,"seed":%d,"tenant":"%s","failures":"none"}}|}
    seed tenant

let ok_of response =
  match Bench_io.of_string response with
  | Ok json -> Bench_io.member "ok" json = Some (Bench_io.Bool true)
  | Error _ -> false

let field key response =
  match Bench_io.of_string response with
  | Ok json -> (
    match Bench_io.member key json with Some (Bench_io.String s) -> Some s | _ -> None)
  | Error _ -> None

(* --- framing --- *)

let test_frame_split_across_feeds () =
  let f = Frame.create ~max_line:64 in
  check_true "no line yet" (Frame.feed_string f "ab" = []);
  check_int "one byte pending" 2 (Frame.pending f);
  (match Frame.feed_string f "c\nde\nf" with
  | [ Frame.Line "abc"; Frame.Line "de" ] -> ()
  | _ -> Alcotest.fail "expected [abc; de]");
  check_int "partial line buffered" 1 (Frame.pending f);
  match Frame.feed_string f "\n" with
  | [ Frame.Line "f" ] -> ()
  | _ -> Alcotest.fail "expected [f]"

let test_frame_crlf () =
  let f = Frame.create ~max_line:64 in
  match Frame.feed_string f "hello\r\nworld\n" with
  | [ Frame.Line "hello"; Frame.Line "world" ] -> ()
  | _ -> Alcotest.fail "CR must be stripped"

let test_frame_oversized_recovers () =
  let f = Frame.create ~max_line:8 in
  let items = Frame.feed_string f (String.make 12 'x') in
  check_true "no item until the newline" (items = []);
  check_true "discarding" (Frame.discarding f);
  (match Frame.feed_string f "yy\nok\n" with
  | [ Frame.Oversized 14; Frame.Line "ok" ] -> ()
  | _ -> Alcotest.fail "expected [Oversized 14; Line ok]");
  check_true "clean after recovery" (not (Frame.discarding f));
  check_int "nothing pending" 0 (Frame.pending f)

let test_frame_exact_bound () =
  let f = Frame.create ~max_line:8 in
  match Frame.feed_string f "12345678\n123456789\n" with
  | [ Frame.Line "12345678"; Frame.Oversized 9 ] -> ()
  | _ -> Alcotest.fail "bound is inclusive on the payload"

(* Property: framing is split-invariant.  However a byte stream is
   chunked — mid-line, mid-CRLF-delimiter, mid-oversized-discard — the
   reassembled item sequence and the leftover state equal the one-shot
   parse.  [max_line] is kept tiny (8) so random streams regularly cross
   the oversized path, and the alphabet is newline-heavy so delimiters
   land inside chunks often. *)
let qcheck_tests =
  let open QCheck in
  let raw_stream =
    string_gen_of_size Gen.(0 -- 60) Gen.(oneofl [ '\n'; '\n'; '\r'; 'a'; 'b'; 'x' ])
  in
  let split_at cuts raw =
    let n = String.length raw in
    let cuts =
      List.sort_uniq compare (List.filter (fun c -> c > 0 && c < n) (List.map (fun c -> if n = 0 then 0 else c mod n) cuts))
    in
    if n = 0 then []
    else
      let rec go start = function
        | [] -> [ String.sub raw start (n - start) ]
        | c :: rest -> String.sub raw start (c - start) :: go c rest
      in
      go 0 cuts
  in
  [
    Test.make ~name:"frame: chunked feed equals one-shot feed" ~count:1000
      (pair (set_print String.escaped raw_stream) (small_list small_nat))
      (fun (raw, cuts) ->
        let one_f = Frame.create ~max_line:8 in
        let one = Frame.feed_string one_f raw in
        let many_f = Frame.create ~max_line:8 in
        let many = List.concat_map (Frame.feed_string many_f) (split_at cuts raw) in
        one = many
        && Frame.pending one_f = Frame.pending many_f
        && Frame.discarding one_f = Frame.discarding many_f);
  ]

(* --- auth table --- *)

let auth_json = {|{"alpha-sekrit": "alpha", "alpha-backup": "alpha", "beta-sekrit": "beta"}|}

let test_auth_lookup () =
  let table =
    Result.get_ok (Auth.of_json (Result.get_ok (Bench_io.of_string auth_json)))
  in
  check_int "three tokens" 3 (Auth.size table);
  check_true "tenants sorted" (Auth.tenants table = [ "alpha"; "beta" ]);
  check_true "token resolves" (Auth.tenant_of_token table "beta-sekrit" = Some "beta");
  check_true "second token, same tenant" (Auth.tenant_of_token table "alpha-backup" = Some "alpha");
  check_true "unknown token" (Auth.tenant_of_token table "nope" = None)

let test_auth_nested_and_errors () =
  let parse s = Auth.of_json (Result.get_ok (Bench_io.of_string s)) in
  check_true "nested tokens key"
    (match parse {|{"tokens": {"t1": "a"}}|} with
    | Ok table -> Auth.tenant_of_token table "t1" = Some "a"
    | Error _ -> false);
  check_true "duplicate token rejected"
    (Result.is_error (parse {|{"t1": "a", "t1": "b"}|}));
  check_true "non-string tenant rejected" (Result.is_error (parse {|{"t1": 3}|}));
  check_true "empty tenant rejected" (Result.is_error (parse {|{"t1": ""}|}));
  check_true "array rejected" (Result.is_error (parse {|[1, 2]|}))

let test_auth_load_missing_file () =
  check_true "missing file is an error"
    (Result.is_error (Auth.load ~path:"/nonexistent/ftagg-auth.json"))

(* --- sessions (socket-free) --- *)

let session ?(auth = Session.Open) server =
  Session.create
    {
      Session.auth;
      registry = Obs.registry (Server.obs server);
      handle = (fun ~tenant line -> Server.handle_as ?tenant server line);
    }

let tokens_table () =
  Result.get_ok (Auth.of_json (Result.get_ok (Bench_io.of_string auth_json)))

let test_session_open_passthrough () =
  let server = make_server () in
  let s = session server in
  check_true "not yet authenticated" (not (Session.authenticated s));
  let reply = Session.on_line s {|{"op":"status"}|} in
  check_true "status answered" (match reply.Session.response with Some r -> ok_of r | None -> false);
  check_true "kept open" (not reply.Session.close);
  check_true "authenticated without hello" (Session.authenticated s);
  check_true "no tenant bound" (Session.tenant s = None)

let test_session_open_hello_binds_tenant () =
  let server = make_server () in
  let s = session server in
  let reply = Session.on_line s {|{"op":"hello","tenant":"carol"}|} in
  check_true "hello ok" (match reply.Session.response with Some r -> ok_of r | None -> false);
  check_true "tenant bound" (Session.tenant s = Some "carol");
  let reply = Session.on_line s {|{"op":"hello","tenant":"dave"}|} in
  check_true "second hello refused"
    (match reply.Session.response with
    | Some r -> field "error" r = Some "already_identified"
    | None -> false);
  check_true "still carol" (Session.tenant s = Some "carol")

let test_session_tokens_requires_hello () =
  let server = make_server () in
  let s = session ~auth:(Session.Tokens (tokens_table ())) server in
  let reply = Session.on_line s {|{"op":"status"}|} in
  check_true "refused" (match reply.Session.response with
    | Some r -> field "error" r = Some "auth_required"
    | None -> false);
  check_true "closed" reply.Session.close

let test_session_tokens_bad_token () =
  Registry.set_enabled true;
  let server = make_server () in
  let registry = Obs.registry (Server.obs server) in
  let before = Registry.counter registry "transport_connections_refused_total" in
  let s = session ~auth:(Session.Tokens (tokens_table ())) server in
  let reply = Session.on_line s {|{"op":"hello","token":"nope"}|} in
  check_true "bad token" (match reply.Session.response with
    | Some r -> field "error" r = Some "bad_token"
    | None -> false);
  check_true "closed" reply.Session.close;
  check_int "refusal counted" (before + 1)
    (Registry.counter registry "transport_connections_refused_total")

let test_session_tokens_good_token () =
  let server = make_server () in
  let s = session ~auth:(Session.Tokens (tokens_table ())) server in
  let reply = Session.on_line s {|{"op":"hello","token":"beta-sekrit"}|} in
  check_true "hello ok" (match reply.Session.response with Some r -> ok_of r | None -> false);
  check_true "tenant from the table" (Session.tenant s = Some "beta")

let test_session_stamps_tenant_over_spoof () =
  let server = make_server () in
  let s = session server in
  ignore (Session.on_line s {|{"op":"hello","tenant":"alice"}|});
  let reply = Session.on_line s (submit_line ~tenant:"mallory" ~seed:3 ()) in
  check_true "submit accepted" (match reply.Session.response with Some r -> ok_of r | None -> false);
  let completions = Scheduler.drain (Server.scheduler server) in
  check_int "one completion" 1 (List.length completions);
  check_true "handshake tenant won"
    ((List.hd completions).Scheduler.tenant = "alice")

let test_session_shutdown_is_connection_scoped () =
  let server = make_server () in
  let s = session server in
  let reply = Session.on_line s {|{"op":"shutdown"}|} in
  check_true "connection_scoped error"
    (match reply.Session.response with
    | Some r -> field "error" r = Some "connection_scoped"
    | None -> false);
  check_true "closes the connection" reply.Session.close;
  check_true "server still up" (not (Server.shutdown_requested server))

let test_session_oversized_reply () =
  let server = make_server () in
  let s = session server in
  let reply = Session.on_oversized s ~seen:99999 in
  check_true "line_too_long"
    (match reply.Session.response with
    | Some r -> field "error" r = Some "line_too_long" && not (ok_of r)
    | None -> false);
  check_true "connection survives" (not reply.Session.close)

(* --- the listener, driven deterministically through [poll] --- *)

let sock_counter = ref 0

let fresh_sock_path () =
  incr sock_counter;
  Filename.concat (Filename.get_temp_dir_name ())
    (Printf.sprintf "ftagg-test-%d-%d.sock" (Unix.getpid ()) !sock_counter)

let with_listener ?auth ?now ?(idle_timeout = 0.) ?(max_line = 65536) ?(max_conns = 16)
    ?checkpoint_path f =
  Registry.set_enabled true;
  let path = fresh_sock_path () in
  let server = make_server ?checkpoint_path () in
  let cfg =
    Listener.config ?auth ?now ~idle_timeout ~max_line ~max_conns (Listener.Unix_sock path)
  in
  let t = Result.get_ok (Listener.create cfg server) in
  Fun.protect
    ~finally:(fun () ->
      Listener.drain t;
      if Sys.file_exists path then Sys.remove path)
    (fun () -> f t server path)

(* A raw test client: a blocking-connect unix socket plus a client-side
   framer so multi-line reads are handled uniformly. *)
type test_client = { fd : Unix.file_descr; frame : Frame.t; mutable inbox : string list }

let client_connect path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX path);
  { fd; frame = Frame.create ~max_line:1_000_000; inbox = [] }

let client_send c s =
  let b = s ^ "\n" in
  ignore (Unix.write_substring c.fd b 0 (String.length b))

let client_send_raw c s = ignore (Unix.write_substring c.fd s 0 (String.length s))
let client_close c = try Unix.close c.fd with Unix.Unix_error (_, _, _) -> ()

(* Pump the event loop until the client has a response line (bounded, so
   a bug fails the test instead of hanging it). *)
let client_recv t c =
  let rec go tries =
    if tries = 0 then Alcotest.fail "no response within the retry budget"
    else
      match c.inbox with
      | line :: rest ->
        c.inbox <- rest;
        line
      | [] ->
        ignore (Listener.poll t);
        (match Unix.select [ c.fd ] [] [] 0.01 with
        | [ _ ], _, _ -> (
          let buf = Bytes.create 4096 in
          match Unix.read c.fd buf 0 4096 with
          | 0 -> Alcotest.fail "server closed the connection while a reply was expected"
          | n ->
            let lines =
              List.filter_map
                (function Frame.Line l -> Some l | Frame.Oversized _ -> None)
                (Frame.feed c.frame buf ~off:0 ~len:n)
            in
            c.inbox <- c.inbox @ lines
        )
        | _ -> ());
        go (tries - 1)
  in
  go 500

(* Like [client_recv] but expects the server to close: returns the lines
   that arrived before EOF. *)
let client_recv_until_eof t c =
  let rec go tries acc =
    if tries = 0 then Alcotest.fail "connection not closed within the retry budget"
    else begin
      ignore (Listener.poll t);
      match Unix.select [ c.fd ] [] [] 0.01 with
      | [ _ ], _, _ -> (
        let buf = Bytes.create 4096 in
        match Unix.read c.fd buf 0 4096 with
        | 0 -> acc
        | n ->
          let lines =
            List.filter_map
              (function Frame.Line l -> Some l | Frame.Oversized _ -> None)
              (Frame.feed c.frame buf ~off:0 ~len:n)
          in
          go (tries - 1) (acc @ lines))
      | _ -> go (tries - 1) acc
    end
  in
  go 500 []

let test_listener_two_concurrent_clients () =
  with_listener ~auth:(Session.Tokens (tokens_table ())) (fun t server path ->
      let a = client_connect path and b = client_connect path in
      (* Interleaved handshakes. *)
      client_send a {|{"op":"hello","token":"alpha-sekrit"}|};
      client_send b {|{"op":"hello","token":"beta-sekrit"}|};
      check_true "a hello" (ok_of (client_recv t a));
      check_true "b hello" (ok_of (client_recv t b));
      check_int "two connections" 2 (Listener.connections t);
      (* The same question from both tenants, spoofed tenants in the
         body; interleaved submits then drains. *)
      client_send a (submit_line ~tenant:"mallory" ~seed:7 ());
      client_send b (submit_line ~tenant:"mallory" ~seed:7 ());
      check_true "a submit queued" (ok_of (client_recv t a));
      check_true "b submit queued" (ok_of (client_recv t b));
      client_send a {|{"op":"drain"}|};
      let a_drain = client_recv t a in
      client_send b {|{"op":"drain"}|};
      let b_drain = client_recv t b in
      check_true "a drain ok" (ok_of a_drain);
      check_true "b drain ok" (ok_of b_drain);
      (* One execution, one cache hit, and the handshake tenants — never
         "mallory" — own the completions.  The first drain ran both jobs
         (batch 4), so it carries both completions. *)
      let completions = a_drain ^ b_drain in
      check_true "cache hit across clients"
        (string_contains ~needle:{|"cached": true|} completions);
      check_true "one real execution"
        (string_contains ~needle:{|"cached": false|} completions);
      check_true "tenant alpha attributed"
        (string_contains ~needle:{|"tenant": "alpha"|} completions);
      check_true "tenant beta attributed"
        (string_contains ~needle:{|"tenant": "beta"|} completions);
      check_true "spoofed tenant nowhere"
        (not (string_contains ~needle:"mallory" completions));
      (* Both clients still live; metrics flow through the service op. *)
      client_send a {|{"op":"metrics"}|};
      let metrics = client_recv t a in
      check_true "transport counters exposed via the metrics op"
        (string_contains ~needle:"transport_connections_accepted_total" metrics);
      client_close a;
      client_close b;
      check_int "cache saw one hit" 1 (Scheduler.cache_stats (Server.scheduler server)).Service.Cache.hits)

let test_listener_half_written_line_dies_with_conn () =
  with_listener (fun t _server path ->
      let a = client_connect path in
      client_send_raw a {|{"op":"status"|};
      (* partial line, no newline *)
      while Listener.poll t > 0 do () done;
      client_close a;
      while Listener.poll t > 0 do () done;
      check_int "connection reaped" 0 (Listener.connections t);
      (* A fresh connection starts with a fresh framer: the torn bytes
         are gone, not prepended to the next client's first request. *)
      let b = client_connect path in
      client_send b {|{"op":"status"}|};
      check_true "next connection unaffected" (ok_of (client_recv t b));
      client_close b)

let test_listener_oversized_line () =
  with_listener ~max_line:64 (fun t _server path ->
      let a = client_connect path in
      client_send a (String.make 200 'x');
      let response = client_recv t a in
      check_true "structured error" (field "error" response = Some "line_too_long");
      check_true "not ok" (not (ok_of response));
      (* The same connection keeps working. *)
      client_send a {|{"op":"status"}|};
      check_true "connection survives an oversized line" (ok_of (client_recv t a));
      client_close a)

let test_listener_idle_timeout () =
  let clock = ref 1000. in
  with_listener ~now:(fun () -> !clock) ~idle_timeout:30. (fun t server path ->
      let a = client_connect path in
      client_send a {|{"op":"status"}|};
      check_true "alive" (ok_of (client_recv t a));
      clock := !clock +. 10.;
      ignore (Listener.poll t);
      check_int "still connected within the timeout" 1 (Listener.connections t);
      clock := !clock +. 31.;
      let lines = client_recv_until_eof t a in
      check_true "idle_timeout error before close"
        (List.exists (fun l -> field "error" l = Some "idle_timeout") lines);
      check_int "connection closed" 0 (Listener.connections t);
      check_int "timeout counted" 1
        (Registry.counter (Obs.registry (Server.obs server)) "transport_idle_timeouts_total");
      client_close a)

let test_listener_max_conns () =
  with_listener ~max_conns:1 (fun t _server path ->
      let a = client_connect path in
      client_send a {|{"op":"status"}|};
      check_true "first connection served" (ok_of (client_recv t a));
      let b = client_connect path in
      let lines = client_recv_until_eof t b in
      check_true "second connection told server_busy"
        (List.exists (fun l -> field "error" l = Some "server_busy") lines);
      client_close a;
      client_close b)

let test_listener_drain_checkpoints () =
  let ckpt = Filename.temp_file "ftagg-test-ckpt" ".json" in
  Sys.remove ckpt;
  with_listener ~checkpoint_path:ckpt (fun t server path ->
      let a = client_connect path in
      client_send a (submit_line ~seed:5 ());
      check_true "queued" (ok_of (client_recv t a));
      (* No drain op: the queued job must be finished by the listener's
         graceful drain, and the checkpoint written. *)
      Listener.drain t;
      check_int "backlog executed" 1 (Scheduler.completed_count (Server.scheduler server));
      check_true "final checkpoint written" (Sys.file_exists ckpt);
      check_true "socket file removed" (not (Sys.file_exists path));
      client_close a);
  if Sys.file_exists ckpt then Sys.remove ckpt

let test_listener_tcp_ephemeral_port () =
  Registry.set_enabled true;
  let server = make_server () in
  let cfg = Listener.config (Listener.Tcp ("127.0.0.1", 0)) in
  let t = Result.get_ok (Listener.create cfg server) in
  Fun.protect
    ~finally:(fun () -> Listener.drain t)
    (fun () ->
      let port = Option.get (Listener.port t) in
      check_true "ephemeral port bound" (port > 0);
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
      let c = { fd; frame = Frame.create ~max_line:1_000_000; inbox = [] } in
      client_send c {|{"op":"status"}|};
      check_true "status over tcp" (ok_of (client_recv t c));
      client_close c)

(* --- SIGPIPE is a per-connection event, not process death --- *)

let test_sigpipe_ignored () =
  with_listener (fun _t _server _path ->
      (* [Listener.create] installed the ignore handler.  Writing to a
         peer-closed socket must therefore raise EPIPE on that
         descriptor — with SIGPIPE at its default disposition the write
         below would kill the whole test runner instead. *)
      let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.close b;
      (match Unix.write_substring a "x" 0 1 with
      | _ -> Alcotest.fail "write to a closed peer must fail"
      | exception Unix.Unix_error (Unix.EPIPE, _, _) -> ());
      Unix.close a)

(* --- retry/backoff policy --- *)

let test_backoff_schedule_deterministic () =
  let r = Client.retry ~attempts:6 ~backoff_ms:50 ~max_backoff_ms:400 ~seed:42 () in
  let s1 = Client.backoff_schedule r in
  let s2 = Client.backoff_schedule r in
  check_int "attempts - 1 delays" 5 (List.length s1);
  check_true "same seed, same schedule" (s1 = s2);
  check_true "different seed, different jitter"
    (s1 <> Client.backoff_schedule { r with Client.seed = 43 });
  List.iteri
    (fun k d ->
      let base = Float.min 400. (50. *. (2. ** float_of_int k)) in
      check_true "delay inside the jitter window [base/2, base]"
        (d >= (0.5 *. base) -. 1e-9 && d <= base +. 1e-9))
    s1;
  (* the cap binds: the last delays stop growing *)
  check_true "growth capped at max_backoff_ms" (List.nth s1 4 <= 400.);
  (* clamping: a degenerate policy still yields a sane schedule *)
  let tight = Client.retry ~attempts:0 ~backoff_ms:(-5) () in
  check_int "attempts clamped to 1" 1 tight.Client.attempts;
  check_true "no delays for a single attempt" (Client.backoff_schedule tight = [])

(* --- the handoff wire protocol, socket-free --- *)

let test_handoff_protocol_codec () =
  check_true "request round-trips"
    (Handoff.parse_request (Handoff.takeover_request Handoff.Rebind) = Ok Handoff.Rebind);
  check_true "mode defaults to fd"
    (Handoff.parse_request {|{"op":"takeover","version":1}|} = Ok Handoff.Fd_pass);
  (match Handoff.parse_request {|{"op":"takeover","version":99,"mode":"fd"}|} with
  | Error (`Refuse ("version_mismatch", _)) -> ()
  | _ -> Alcotest.fail "future version must be refused, not guessed at");
  (match Handoff.parse_request {|{"op":"takeover","version":1,"mode":"warp"}|} with
  | Error (`Refuse ("bad_request", _)) -> ()
  | _ -> Alcotest.fail "unknown mode must be refused");
  (match Handoff.parse_request "{nope" with
  | Error (`Refuse ("bad_request", _)) -> ()
  | _ -> Alcotest.fail "unparseable control line must be refused");
  let reply =
    { Handoff.r_address = "unix:/tmp/x.sock"; r_checkpoint = Some "/tmp/x.ckpt"; r_fd_follows = true }
  in
  (match Handoff.parse_reply (Handoff.reply_line reply) with
  | Ok r -> check_true "reply round-trips" (r = reply)
  | Error e -> Alcotest.fail e);
  (match Handoff.parse_reply (Handoff.reply_line { reply with Handoff.r_checkpoint = None }) with
  | Ok r -> check_true "null checkpoint round-trips" (r.Handoff.r_checkpoint = None)
  | Error e -> Alcotest.fail e);
  (match Handoff.parse_reply (Handoff.refusal ~error:"handoff_in_progress" ~detail:"busy") with
  | Error msg -> check_true "refusal names its error" (string_contains ~needle:"handoff_in_progress" msg)
  | Ok _ -> Alcotest.fail "a refusal must not parse as success");
  check_true "adopted ack recognised" (Handoff.parse_adopted Handoff.adopted_line);
  check_true "other ops are not an ack"
    (not (Handoff.parse_adopted {|{"op":"takeover","version":1}|}))

(* --- SIGUSR2 arm: drain-for-handoff without exiting --- *)

let test_handoff_arm_keeps_serving () =
  let ckpt = Filename.temp_file "ftagg-arm" ".ckpt.json" in
  Sys.remove ckpt;
  with_listener ~checkpoint_path:ckpt (fun t server path ->
      let a = client_connect path in
      client_send a (submit_line ~seed:11 ());
      check_true "queued" (ok_of (client_recv t a));
      (* what the SIGUSR2 handler does *)
      Listener.request_handoff t;
      ignore (Listener.poll t);
      check_true "stops accepting once armed" (not (Listener.accepting t));
      check_true "checkpoint written on arm" (Sys.file_exists ckpt);
      check_int "backlog finished on arm" 1 (Scheduler.completed_count (Server.scheduler server));
      check_int "arm counted" 1
        (Registry.counter (Obs.registry (Server.obs server)) "transport_handoff_arms_total");
      check_true "no takeover in flight yet" (not (Listener.handoff_in_progress t));
      check_true "not handed off" (not (Listener.handed_off t));
      (* armed is not drained: the open connection keeps being served *)
      client_send a {|{"op":"status"}|};
      check_true "existing connection still served" (ok_of (client_recv t a));
      client_close a);
  if Sys.file_exists ckpt then Sys.remove ckpt

(* --- live takeover, both ends driven from this one thread --- *)

(* Step the successor's takeover conversation, pumping the incumbent's
   poll loop between steps (bounded, so a protocol bug fails the test
   rather than hanging it). *)
let takeover_outcome ~pump tk =
  let rec go tries =
    if tries = 0 then Alcotest.fail "takeover did not complete within the retry budget"
    else
      match Handoff.Takeover.step tk with
      | `Ready o -> o
      | `Failed msg -> Alcotest.fail msg
      | `Pending ->
        pump ();
        go (tries - 1)
  in
  go 500

let takeover_failure ~pump tk =
  let rec go tries =
    if tries = 0 then Alcotest.fail "expected the takeover to fail"
    else
      match Handoff.Takeover.step tk with
      | `Ready _ -> Alcotest.fail "takeover unexpectedly succeeded"
      | `Failed msg -> msg
      | `Pending ->
        pump ();
        go (tries - 1)
  in
  go 500

let wait_for ~pump msg pred =
  let rec go tries =
    if tries = 0 then Alcotest.fail msg
    else if not (pred ()) then begin
      pump ();
      go (tries - 1)
    end
  in
  go 500

let test_handoff_fd_pass_end_to_end () =
  Registry.set_enabled true;
  let path = fresh_sock_path () in
  let ctl = path ^ ".ctl" in
  let ckpt = Filename.temp_file "ftagg-ho" ".ckpt.json" in
  Sys.remove ckpt;
  let auth () = Session.Tokens (tokens_table ()) in
  let incumbent_server = make_server ~checkpoint_path:ckpt () in
  let t1 =
    Result.get_ok
      (Listener.create (Listener.config ~auth:(auth ()) (Listener.Unix_sock path)) incumbent_server)
  in
  let live = ref [ t1 ] in
  let pump () = List.iter (fun l -> ignore (Listener.poll l)) !live in
  let retry = Client.retry ~attempts:10 ~backoff_ms:1 ~max_backoff_ms:8 ~timeout_ms:4000 () in
  let s = Client.session ~token:"alpha-sekrit" ~retry ~pump (Listener.Unix_sock path) in
  let cleanup () =
    Client.sclose s;
    List.iter Listener.drain !live;
    List.iter (fun p -> if Sys.file_exists p then Sys.remove p) [ path; ctl; ckpt ]
  in
  Fun.protect ~finally:cleanup (fun () ->
      check_true "ctl path defaults to <sock>.ctl" (Listener.ctl_path t1 = Some ctl);
      (* Seed the cache: one executed job before the handoff, spoofing a
         tenant the token handshake must override. *)
      (match Client.srequest s (submit_line ~tenant:"mallory" ~seed:21 ()) with
      | Ok r -> check_true "pre-handoff submit" (ok_of r)
      | Error f -> Alcotest.fail (Client.failure_message f));
      (match Client.srequest s {|{"op":"drain"}|} with
      | Ok r ->
        check_true "executed, not cached" (string_contains ~needle:{|"cached": false|} r);
        check_true "token tenant stamped" (string_contains ~needle:{|"tenant": "alpha"|} r)
      | Error f -> Alcotest.fail (Client.failure_message f));
      (* The successor's side of the ctl conversation. *)
      let tk = Result.get_ok (Handoff.Takeover.start ~mode:Handoff.Fd_pass ~ctl ()) in
      let outcome = takeover_outcome ~pump tk in
      check_true "incumbent awaits the ack" (Listener.handoff_in_progress t1);
      check_true "address echoed" (outcome.Handoff.Takeover.address = "unix:" ^ path);
      check_true "checkpoint advertised" (outcome.Handoff.Takeover.checkpoint_path = Some ckpt);
      check_true "listening fd passed" (outcome.Handoff.Takeover.fd <> None);
      check_true "final checkpoint on disk" (Sys.file_exists ckpt);
      (* Bring the successor up on the passed descriptor, resuming from
         the advertised checkpoint. *)
      let successor_server = make_server ~checkpoint_path:ckpt () in
      check_true "checkpoint restored cleanly" (Server.restore_error successor_server = None);
      let t2 =
        Result.get_ok
          (Listener.create ?adopted_fd:outcome.Handoff.Takeover.fd
             (Listener.config ~auth:(auth ()) (Listener.Unix_sock path))
             successor_server)
      in
      live := [ t1; t2 ];
      Handoff.Takeover.confirm tk;
      wait_for ~pump "incumbent never saw the adopted ack" (fun () -> Listener.handed_off t1);
      (* The incumbent's exit path must leave the successor's files alone. *)
      Listener.drain t1;
      live := [ t2 ];
      check_true "socket file survives the incumbent's exit" (Sys.file_exists path);
      check_true "checkpoint survives the incumbent's exit" (Sys.file_exists ckpt);
      (* The same session object rides over: the goodbye/EPIPE is
         transient, the reconnect replays the token hello against the
         successor, and the resubmitted job is a cache hit off the
         restored checkpoint — resubmission is idempotent. *)
      (match Client.srequest s (submit_line ~tenant:"mallory" ~seed:21 ()) with
      | Ok r -> check_true "post-handoff submit" (ok_of r)
      | Error f -> Alcotest.fail (Client.failure_message f));
      (match Client.srequest s {|{"op":"drain"}|} with
      | Ok r ->
        check_true "served from the restored cache" (string_contains ~needle:{|"cached": true|} r);
        check_true "token tenant stamped post-handoff"
          (string_contains ~needle:{|"tenant": "alpha"|} r);
        check_true "spoofed tenant never sticks" (not (string_contains ~needle:"mallory" r))
      | Error f -> Alcotest.fail (Client.failure_message f));
      check_true "session healed at least once" (Client.reconnects s >= 1);
      check_int "one completed handoff counted" 1
        (Registry.counter (Obs.registry (Server.obs incumbent_server)) "transport_handoffs_total"))

let test_handoff_rebind_tcp () =
  Registry.set_enabled true;
  let ctl = fresh_sock_path () in
  let ckpt = Filename.temp_file "ftagg-rebind" ".ckpt.json" in
  Sys.remove ckpt;
  let t1 =
    Result.get_ok
      (Listener.create
         (Listener.config ~ctl (Listener.Tcp ("127.0.0.1", 0)))
         (make_server ~checkpoint_path:ckpt ()))
  in
  let live = ref [ t1 ] in
  let pump () = List.iter (fun l -> ignore (Listener.poll l)) !live in
  let port = Option.get (Listener.port t1) in
  let retry = Client.retry ~attempts:10 ~backoff_ms:1 ~max_backoff_ms:8 ~timeout_ms:4000 () in
  let s = Client.session ~retry ~pump (Listener.Tcp ("127.0.0.1", port)) in
  let cleanup () =
    Client.sclose s;
    List.iter Listener.drain !live;
    List.iter (fun p -> if Sys.file_exists p then Sys.remove p) [ ctl; ckpt ]
  in
  Fun.protect ~finally:cleanup (fun () ->
      (match Client.srequest s (submit_line ~seed:33 ()) with
      | Ok r -> check_true "pre-handoff submit" (ok_of r)
      | Error f -> Alcotest.fail (Client.failure_message f));
      (match Client.srequest s {|{"op":"drain"}|} with
      | Ok r -> check_true "executed, not cached" (string_contains ~needle:{|"cached": false|} r)
      | Error f -> Alcotest.fail (Client.failure_message f));
      let tk = Result.get_ok (Handoff.Takeover.start ~mode:Handoff.Rebind ~ctl ()) in
      let outcome = takeover_outcome ~pump tk in
      check_true "no fd rides a rebind" (outcome.Handoff.Takeover.fd = None);
      (* The reply resolved the ephemeral port for the successor. *)
      check_true "ephemeral port resolved in the address"
        (outcome.Handoff.Takeover.address = Printf.sprintf "tcp:127.0.0.1:%d" port);
      (* The incumbent released the address before replying: the
         successor binds it fresh. *)
      let address = Result.get_ok (Listener.address_of_string outcome.Handoff.Takeover.address) in
      let t2 =
        Result.get_ok
          (Listener.create (Listener.config ~ctl address) (make_server ~checkpoint_path:ckpt ()))
      in
      live := [ t1; t2 ];
      Handoff.Takeover.confirm tk;
      wait_for ~pump "incumbent never saw the adopted ack" (fun () -> Listener.handed_off t1);
      Listener.drain t1;
      live := [ t2 ];
      (* The session rides the unbind/rebind gap on its retry policy. *)
      (match Client.srequest s (submit_line ~seed:33 ()) with
      | Ok r -> check_true "post-handoff submit" (ok_of r)
      | Error f -> Alcotest.fail (Client.failure_message f));
      match Client.srequest s {|{"op":"drain"}|} with
      | Ok r -> check_true "cache warm across the rebind" (string_contains ~needle:{|"cached": true|} r)
      | Error f -> Alcotest.fail (Client.failure_message f))

let test_handoff_double_refused_and_crash_resumes () =
  Registry.set_enabled true;
  let path = fresh_sock_path () in
  let ctl = path ^ ".ctl" in
  let server = make_server () in
  let t1 = Result.get_ok (Listener.create (Listener.config (Listener.Unix_sock path)) server) in
  let pump () = ignore (Listener.poll t1) in
  let cleanup () =
    Listener.drain t1;
    List.iter (fun p -> if Sys.file_exists p then Sys.remove p) [ path; ctl ]
  in
  Fun.protect ~finally:cleanup (fun () ->
      let tk_a = Result.get_ok (Handoff.Takeover.start ~mode:Handoff.Fd_pass ~ctl ()) in
      let outcome_a = takeover_outcome ~pump tk_a in
      check_true "first takeover got the fd" (outcome_a.Handoff.Takeover.fd <> None);
      check_true "incumbent mid-takeover" (Listener.handoff_in_progress t1);
      (* A second successor while the first is mid-takeover: refused. *)
      let tk_b = Result.get_ok (Handoff.Takeover.start ~ctl ()) in
      let msg = takeover_failure ~pump tk_b in
      check_true "second takeover refused with handoff_in_progress"
        (string_contains ~needle:"handoff_in_progress" msg);
      Handoff.Takeover.abort tk_b;
      check_int "refusal counted" 1
        (Registry.counter (Obs.registry (Server.obs server)) "transport_handoff_refused_total");
      (* The first successor crashes before acking (its ctl connection
         closes, its copy of the fd with it): the incumbent aborts the
         handoff and resumes accepting on its own descriptor. *)
      Handoff.Takeover.abort tk_a;
      wait_for ~pump "incumbent never aborted the takeover" (fun () ->
          not (Listener.handoff_in_progress t1));
      check_true "incumbent accepting again" (Listener.accepting t1);
      check_true "abort counted"
        (Registry.counter (Obs.registry (Server.obs server)) "transport_handoff_aborts_total" >= 1);
      (* And it actually serves: a fresh client gets answered. *)
      let c = client_connect path in
      client_send c {|{"op":"status"}|};
      check_true "resumed incumbent serves new connections" (ok_of (client_recv t1 c));
      client_close c;
      check_true "still not handed off" (not (Listener.handed_off t1)))

(* The session's retry loop against a full server restart (stop, vanish,
   come back) — the non-handoff way a connection dies. *)
let test_session_rides_server_restart () =
  Registry.set_enabled true;
  let path = fresh_sock_path () in
  let mk () =
    Result.get_ok
      (Listener.create
         (Listener.config ~auth:(Session.Tokens (tokens_table ())) (Listener.Unix_sock path))
         (make_server ()))
  in
  let t1 = mk () in
  let live = ref [ t1 ] in
  let pump () = List.iter (fun l -> ignore (Listener.poll l)) !live in
  let retry = Client.retry ~attempts:12 ~backoff_ms:1 ~max_backoff_ms:8 ~timeout_ms:4000 () in
  let s = Client.session ~token:"beta-sekrit" ~retry ~pump (Listener.Unix_sock path) in
  let cleanup () =
    Client.sclose s;
    List.iter Listener.drain !live;
    if Sys.file_exists path then Sys.remove path;
    if Sys.file_exists (path ^ ".ctl") then Sys.remove (path ^ ".ctl")
  in
  Fun.protect ~finally:cleanup (fun () ->
      (match Client.srequest s {|{"op":"status"}|} with
      | Ok r -> check_true "first request served" (ok_of r)
      | Error f -> Alcotest.fail (Client.failure_message f));
      (* Hard restart: the listener goes away entirely, then a new one
         binds the same path.  The session must reconnect, re-hello, and
         keep its token-derived identity. *)
      Listener.drain t1;
      let t2 = mk () in
      live := [ t2 ];
      (match Client.srequest s (submit_line ~tenant:"mallory" ~seed:44 ()) with
      | Ok r -> check_true "resubmitted after the restart" (ok_of r)
      | Error f -> Alcotest.fail (Client.failure_message f));
      (match Client.srequest s {|{"op":"drain"}|} with
      | Ok r ->
        check_true "token tenant survives the restart"
          (string_contains ~needle:{|"tenant": "beta"|} r)
      | Error f -> Alcotest.fail (Client.failure_message f));
      check_true "the session counted its reconnect" (Client.reconnects s >= 1);
      check_true "attempts were spent riding the gap" (Client.attempts_used s >= 3);
      (* a wrong token is permanent: no retry storm, an immediate refusal *)
      let bad =
        Client.session ~token:"nope"
          ~retry:(Client.retry ~attempts:5 ~backoff_ms:1 ~timeout_ms:4000 ())
          ~pump (Listener.Unix_sock path)
      in
      (match Client.srequest bad {|{"op":"status"}|} with
      | Error (Client.Refused line) ->
        check_true "refusal carries the server's line" (field "error" line = Some "bad_token")
      | Error (Client.Exhausted _) -> Alcotest.fail "bad token must not be retried"
      | Ok _ -> Alcotest.fail "bad token must not be accepted");
      check_int "exactly one attempt for a refusal" 1 (Client.attempts_used bad);
      Client.sclose bad)

let test_address_parsing () =
  check_true "unix ok"
    (Listener.address_of_string "unix:/tmp/x.sock" = Ok (Listener.Unix_sock "/tmp/x.sock"));
  check_true "tcp ok"
    (Listener.address_of_string "tcp:127.0.0.1:8125" = Ok (Listener.Tcp ("127.0.0.1", 8125)));
  check_true "tcp empty host defaults to loopback"
    (Listener.address_of_string "tcp::9000" = Ok (Listener.Tcp ("127.0.0.1", 9000)));
  check_true "bad scheme" (Result.is_error (Listener.address_of_string "udp:1.2.3.4:53"));
  check_true "bad port" (Result.is_error (Listener.address_of_string "tcp:host:notaport"));
  check_true "no scheme" (Result.is_error (Listener.address_of_string "/tmp/x.sock"));
  check_true "round trip"
    (Listener.address_to_string (Listener.Tcp ("h", 1)) = "tcp:h:1")

let suite =
  [
    Alcotest.test_case "frame: lines split across feeds" `Quick test_frame_split_across_feeds;
    Alcotest.test_case "frame: CRLF stripped" `Quick test_frame_crlf;
    Alcotest.test_case "frame: oversized line discarded, then recovers" `Quick
      test_frame_oversized_recovers;
    Alcotest.test_case "frame: bound is inclusive" `Quick test_frame_exact_bound;
    Alcotest.test_case "auth: token lookup" `Quick test_auth_lookup;
    Alcotest.test_case "auth: nested form and malformed tables" `Quick
      test_auth_nested_and_errors;
    Alcotest.test_case "auth: missing file is an error" `Quick test_auth_load_missing_file;
    Alcotest.test_case "session: open mode passes through without hello" `Quick
      test_session_open_passthrough;
    Alcotest.test_case "session: open-mode hello binds a tenant once" `Quick
      test_session_open_hello_binds_tenant;
    Alcotest.test_case "session: token mode requires hello first" `Quick
      test_session_tokens_requires_hello;
    Alcotest.test_case "session: bad token refused and counted" `Quick
      test_session_tokens_bad_token;
    Alcotest.test_case "session: good token binds the table's tenant" `Quick
      test_session_tokens_good_token;
    Alcotest.test_case "session: handshake tenant overrides submit's" `Quick
      test_session_stamps_tenant_over_spoof;
    Alcotest.test_case "session: shutdown is connection-scoped" `Quick
      test_session_shutdown_is_connection_scoped;
    Alcotest.test_case "session: oversized line gets a structured error" `Quick
      test_session_oversized_reply;
    Alcotest.test_case "listener: two concurrent clients, cache hit across them" `Quick
      test_listener_two_concurrent_clients;
    Alcotest.test_case "listener: half-written line dies with its connection" `Quick
      test_listener_half_written_line_dies_with_conn;
    Alcotest.test_case "listener: oversized line over a real socket" `Quick
      test_listener_oversized_line;
    Alcotest.test_case "listener: idle timeout fires on the injected clock" `Quick
      test_listener_idle_timeout;
    Alcotest.test_case "listener: connection limit answers server_busy" `Quick
      test_listener_max_conns;
    Alcotest.test_case "listener: drain finishes the backlog and checkpoints" `Quick
      test_listener_drain_checkpoints;
    Alcotest.test_case "listener: tcp on an ephemeral port" `Quick
      test_listener_tcp_ephemeral_port;
    Alcotest.test_case "address parsing" `Quick test_address_parsing;
    Alcotest.test_case "sigpipe: peer loss is EPIPE, not process death" `Quick
      test_sigpipe_ignored;
    Alcotest.test_case "client: backoff schedule is seeded and capped" `Quick
      test_backoff_schedule_deterministic;
    Alcotest.test_case "handoff: wire protocol codec" `Quick test_handoff_protocol_codec;
    Alcotest.test_case "handoff: USR2 arm drains without exiting" `Quick
      test_handoff_arm_keeps_serving;
    Alcotest.test_case "handoff: fd-pass takeover end to end" `Quick
      test_handoff_fd_pass_end_to_end;
    Alcotest.test_case "handoff: rebind takeover over tcp" `Quick test_handoff_rebind_tcp;
    Alcotest.test_case "handoff: double takeover refused, successor crash resumes" `Quick
      test_handoff_double_refused_and_crash_resumes;
    Alcotest.test_case "client: session rides a server restart" `Quick
      test_session_rides_server_restart;
  ]
  @ List.map QCheck_alcotest.to_alcotest qcheck_tests
