(* Tests for ftagg_obs: the metric registry, span collector, exporters,
   and the engine/protocol wiring.  The two load-bearing properties:

   - attaching a sink never changes what a run computes (obs on/off give
     byte-identical metrics and results);
   - per-phase bit attribution is exhaustive (phase totals sum exactly
     to [Metrics.total_bits], "(none)" bucket included). *)

open Ftagg
open Helpers

(* --- Registry --- *)

let test_registry_counters () =
  let r = Registry.create () in
  check_int "absent counter reads 0" 0 (Registry.counter r "nope");
  Registry.incr r "hits" 1;
  Registry.incr r "hits" 4;
  check_int "counter accumulates" 5 (Registry.counter r "hits");
  Registry.incr r ~labels:[ ("b", "2"); ("a", "1") ] "hits" 7;
  check_int "label order canonicalized" 7
    (Registry.counter r ~labels:[ ("a", "1"); ("b", "2") ] "hits");
  check_int "unlabelled series untouched" 5 (Registry.counter r "hits");
  Alcotest.check_raises "negative increment rejected"
    (Invalid_argument "Registry.incr: negative increment") (fun () ->
      Registry.incr r "hits" (-1))

let test_registry_kinds () =
  let r = Registry.create () in
  Registry.incr r "x" 1;
  Alcotest.check_raises "kind mismatch"
    (Invalid_argument "Registry: x already registered as a counter") (fun () ->
      Registry.set_gauge r "x" 1.0)

let test_registry_histogram () =
  let r = Registry.create () in
  List.iter (fun v -> Registry.observe r "lat" v) [ 0.5; 1.0; 3.0; 900.0 ];
  match Registry.series r with
  | [ ("lat", [], Registry.Histogram h) ] ->
    check_int "count" 4 h.Registry.h_count;
    check_true "sum" (abs_float (h.Registry.h_sum -. 904.5) < 1e-9);
    check_true "min" (h.Registry.h_min = 0.5);
    check_true "max" (h.Registry.h_max = 900.0);
    (* log2 buckets: 0.5 and 1.0 land in the <=1 bucket, 3.0 in (2,4],
       900 in (512,1024]. *)
    check_true "buckets"
      (h.Registry.h_buckets = [ (1.0, 2); (4.0, 1); (1024.0, 1) ])
  | _ -> Alcotest.fail "expected exactly one histogram series"

let test_registry_merge () =
  let a = Registry.create () and b = Registry.create () in
  Registry.incr a "c" 2;
  Registry.incr b "c" 3;
  Registry.incr b ~labels:[ ("p", "x") ] "c" 10;
  Registry.set_gauge a "g" 1.0;
  Registry.set_gauge b "g" 9.0;
  Registry.observe a "h" 3.0;
  Registry.observe b "h" 5.0;
  Registry.merge_into ~into:a b;
  check_int "counters add" 5 (Registry.counter a "c");
  check_int "new series copied" 10 (Registry.counter a ~labels:[ ("p", "x") ] "c");
  (match Registry.series a with
  | series -> (
    match List.find_opt (fun (n, _, _) -> n = "g") series with
    | Some (_, _, Registry.Gauge g) -> check_true "gauge last-write-wins" (g = 9.0)
    | _ -> Alcotest.fail "gauge series missing"));
  match List.find_opt (fun (n, _, _) -> n = "h") (Registry.series a) with
  | Some (_, _, Registry.Histogram h) ->
    check_int "hist counts add" 2 h.Registry.h_count;
    check_true "hist sum adds" (abs_float (h.Registry.h_sum -. 8.0) < 1e-9)
  | _ -> Alcotest.fail "histogram series missing"

(* Deep-copy on merge: mutating the source afterwards must not leak into
   the destination. *)
let test_registry_merge_copies () =
  let a = Registry.create () and b = Registry.create () in
  Registry.incr b "c" 1;
  Registry.observe b "h" 2.0;
  Registry.merge_into ~into:a b;
  Registry.incr b "c" 100;
  Registry.observe b "h" 4.0;
  check_int "counter copied, not aliased" 1 (Registry.counter a "c");
  match List.find_opt (fun (n, _, _) -> n = "h") (Registry.series a) with
  | Some (_, _, Registry.Histogram h) -> check_int "hist copied" 1 h.Registry.h_count
  | _ -> Alcotest.fail "histogram series missing"

(* Parallel sweep aggregation must not depend on the domain count: same
   jobs, same merged registry, whether serial or fanned out. *)
let test_sweep_obs_deterministic () =
  let job reg seed =
    Registry.incr reg "jobs" 1;
    Registry.incr reg ~labels:[ ("seed", string_of_int seed) ] "seen" seed;
    Registry.observe reg "load" (float_of_int seed);
    seed * 2
  in
  let run domains =
    let into = Registry.create () in
    let ys = Sweep_obs.map ~domains ~into job [ 1; 2; 3; 4; 5; 6; 7 ] in
    (ys, Registry.series into)
  in
  let ys1, r1 = run 1 in
  let ys4, r4 = run 4 in
  check_true "results in input order" (ys1 = [ 2; 4; 6; 8; 10; 12; 14 ]);
  check_true "results domain-independent" (ys1 = ys4);
  check_true "merged registry domain-independent" (r1 = r4);
  check_true "all jobs counted"
    (List.exists (fun (n, l, v) -> n = "jobs" && l = [] && v = Registry.Counter 7) r1)

(* --- Span collector --- *)

let test_span_phase_chain () =
  let t = Span.create () in
  Span.with_ambient t (fun () ->
      Span.set_round t 1;
      Span.enter ~node:3 "exec#1";
      Span.phase ~node:3 "agg/tree";
      Span.charge t ~node:3 10;
      Span.phase ~node:3 "agg/tree";
      (* same-name: no-op *)
      Span.set_round t 5;
      Span.phase ~node:3 "agg/flood";
      (* replaces the phase span, stays nested under exec#1 *)
      Span.charge t ~node:3 7;
      check_true "innermost is the phase" (Span.current_phase t ~node:3 = Some "agg/flood");
      Span.set_round t 9;
      Span.exit_named ~node:3 "exec#1");
  match Span.spans t with
  | [ exec; tree; flood ] ->
    check_true "exec name" (exec.Span.sp_name = "exec#1");
    check_int "exec depth" 0 exec.Span.sp_depth;
    check_int "exec closes last" 9 exec.Span.sp_end_round;
    check_true "tree is a phase" tree.Span.sp_phase;
    check_int "tree bits" 10 tree.Span.sp_bits;
    check_int "tree closed by flood" 5 tree.Span.sp_end_round;
    check_int "flood same depth as tree" tree.Span.sp_depth flood.Span.sp_depth;
    check_int "flood bits" 7 flood.Span.sp_bits;
    check_int "flood closed by exit of parent" 9 flood.Span.sp_end_round
  | spans -> Alcotest.fail (Printf.sprintf "expected 3 spans, got %d" (List.length spans))

let test_span_stray_exit_ignored () =
  let t = Span.create () in
  Span.with_ambient t (fun () ->
      Span.set_round t 1;
      Span.enter ~node:0 "outer";
      Span.phase ~node:0 "p";
      Span.exit_named ~node:0 "never-opened";
      check_true "stack untouched by stray exit" (Span.current_phase t ~node:0 = Some "p");
      Span.set_round t 4;
      Span.close_all t);
  check_true "close_all closes everything"
    (List.for_all (fun s -> s.Span.sp_end_round = 4) (Span.spans t))

let test_span_noop_without_ambient () =
  check_true "not active outside with_ambient" (not (Span.active ()));
  (* These must be silent no-ops, not crashes. *)
  Span.enter ~node:0 "x";
  Span.phase ~node:0 "y";
  Span.exit_named ~node:0 "x"

(* --- The kill switch --- *)

let test_disabled_is_inert () =
  Registry.set_enabled false;
  Fun.protect
    ~finally:(fun () -> Registry.set_enabled true)
    (fun () ->
      let r = Registry.create () in
      Registry.incr r "c" 5;
      Registry.observe r "h" 1.0;
      check_int "counter not written" 0 (Registry.counter r "c");
      check_true "no series materialized" (Registry.series r = []);
      let t = Span.create () in
      Span.with_ambient t (fun () ->
          check_true "spans inactive when disabled" (not (Span.active ()));
          Span.enter ~node:0 "x");
      check_true "no spans recorded" (Span.spans t = []))

(* --- Engine wiring --- *)

let small_tradeoff ?obs () =
  let n = 36 in
  let g = Gen.grid n in
  let inputs = default_inputs n in
  let params = params_of g ~inputs in
  let b = 42 and f = 4 in
  let failures =
    Failure.random g ~rng:(Prng.create 7) ~budget:f ~max_round:(b * params.Params.d)
  in
  Run.tradeoff ?obs ~graph:g ~failures ~params ~b ~f ~seed:3 ()

(* Attaching a sink must be observationally invisible: same value, same
   metrics, same round count. *)
let test_obs_does_not_perturb_run () =
  let plain = small_tradeoff () in
  let obs = Obs.create () in
  let traced = small_tradeoff ~obs () in
  check_int "same value"
    (Run.value_exn plain.Run.result)
    (Run.value_exn traced.Run.result);
  check_int "same cc" (Metrics.cc plain.Run.common.Run.metrics)
    (Metrics.cc traced.Run.common.Run.metrics);
  check_int "same total bits"
    (Metrics.total_bits plain.Run.common.Run.metrics)
    (Metrics.total_bits traced.Run.common.Run.metrics);
  check_int "same rounds" plain.Run.common.Run.rounds traced.Run.common.Run.rounds

(* The exhaustiveness invariant behind `ftagg trace` and bench e18. *)
let test_phase_bits_sum_to_total () =
  let obs = Obs.create () in
  let o = small_tradeoff ~obs () in
  let per_phase = Obs.phase_bits obs in
  check_true "at least 3 phases attributed" (List.length per_phase >= 3);
  let sum = List.fold_left (fun acc (_, b) -> acc + b) 0 per_phase in
  check_int "phase bits sum to Metrics.total_bits"
    (Metrics.total_bits o.Run.common.Run.metrics)
    sum;
  check_int "rounds counter matches engine" o.Run.common.Run.rounds
    (Registry.counter (Obs.registry obs) "ftagg_rounds_total")

(* --- Exporters --- *)

let test_jsonl_parses () =
  let obs = Obs.create ~name:"jsonl-test" () in
  ignore (small_tradeoff ~obs ());
  let lines =
    List.filter (fun l -> l <> "") (String.split_on_char '\n' (Export.jsonl obs))
  in
  check_true "has header + events + spans" (List.length lines > 10);
  List.iter
    (fun line ->
      match Bench_io.of_string line with
      | Ok _ -> ()
      | Error e -> Alcotest.fail (Printf.sprintf "unparseable JSONL line (%s): %s" e line))
    lines;
  match Bench_io.of_string (List.hd lines) with
  | Ok j ->
    check_true "header carries the run name"
      (Option.bind (Bench_io.member "name" j) Bench_io.to_string_v = Some "jsonl-test")
  | Error e -> Alcotest.fail e

let test_chrome_trace_parses () =
  let obs = Obs.create () in
  ignore (small_tradeoff ~obs ());
  let rendered = Bench_io.to_string (Export.chrome_trace obs) in
  match Bench_io.of_string rendered with
  | Error e -> Alcotest.fail (Printf.sprintf "chrome trace does not re-parse: %s" e)
  | Ok json ->
    let events =
      match Bench_io.member "traceEvents" json with
      | Some l -> Option.value (Bench_io.to_list l) ~default:[]
      | None -> []
    in
    let complete =
      List.filter
        (fun ev -> Bench_io.member "ph" ev = Some (Bench_io.String "X"))
        events
    in
    check_true "has span events" (complete <> []);
    let distinct_names =
      List.sort_uniq compare
        (List.filter_map
           (fun ev -> Option.bind (Bench_io.member "name" ev) Bench_io.to_string_v)
           complete)
    in
    check_true "at least 3 distinct phases" (List.length distinct_names >= 3);
    (* Every X event must carry the fields Perfetto needs. *)
    List.iter
      (fun ev ->
        List.iter
          (fun k ->
            if Bench_io.member k ev = None then
              Alcotest.fail (Printf.sprintf "X event missing %S" k))
          [ "pid"; "tid"; "ts"; "dur"; "name"; "cat" ])
      complete

(* Hostile label values: backslashes, quotes and newlines must come out
   escaped per the exposition format, and a raw newline must never split
   a metric line (it would corrupt every series after it). *)
let test_prometheus_hostile_labels () =
  Registry.set_enabled true;
  let r = Registry.create () in
  Registry.incr r ~labels:[ ("path", "C:\\temp\"dir\nnext") ] "requests" 1;
  let text = Export.prometheus r in
  let has needle =
    let rec go i =
      i + String.length needle <= String.length text
      && (String.sub text i (String.length needle) = needle || go (i + 1))
    in
    go 0
  in
  (* pinned byte-exact: backslash doubles, the quote and the newline
     each become a two-byte escape *)
  check_true "hostile value escaped exactly"
    (has "requests{path=\"C:\\\\temp\\\"dir\\nnext\"} 1");
  let metric_lines =
    List.filter
      (fun l -> String.length l >= 9 && String.sub l 0 9 = "requests{")
      (String.split_on_char '\n' text)
  in
  (match metric_lines with
  | [ l ] ->
    check_true "the series survives as one whole line"
      (String.sub l (String.length l - 2) 2 = " 1")
  | ls -> Alcotest.fail (Printf.sprintf "expected 1 metric line, got %d" (List.length ls)));
  (* a benign value passes through untouched *)
  Registry.incr r ~labels:[ ("t", "plain-value_1") ] "benign" 2;
  let text = Export.prometheus r in
  let has needle =
    let rec go i =
      i + String.length needle <= String.length text
      && (String.sub text i (String.length needle) = needle || go (i + 1))
    in
    go 0
  in
  check_true "benign value unescaped" (has "benign{t=\"plain-value_1\"} 2")

let test_prometheus_dump () =
  let r = Registry.create () in
  Registry.incr r ~labels:[ ("phase", "agg/tree") ] "bits" 12;
  Registry.observe r "sizes" 3.0;
  Registry.set_gauge r "temp" 1.5;
  let text = Export.prometheus r in
  let has needle =
    let rec go i =
      i + String.length needle <= String.length text
      && (String.sub text i (String.length needle) = needle || go (i + 1))
    in
    go 0
  in
  check_true "counter line" (has "bits{phase=\"agg/tree\"} 12");
  check_true "type annotation" (has "# TYPE bits counter");
  check_true "cumulative +Inf bucket" (has "sizes_bucket{le=\"+Inf\"} 1");
  check_true "histogram count" (has "sizes_count 1");
  check_true "gauge" (has "temp 1.5")

(* --- percentile extraction from log2 histograms --- *)

let hist_of values =
  let r = Registry.create () in
  List.iter (fun v -> Registry.observe r "h" v) values;
  match Registry.histogram r "h" with
  | Some h -> h
  | None -> Alcotest.fail "histogram series missing"

(* Golden vectors: observations 1, 2, 4, 8 land exactly on the upper
   edges of the first four log2 buckets, so linear interpolation inside
   a bucket must return the edge itself at each quartile — any
   off-by-one in the cumulative walk or the bucket lower bound shifts
   these. *)
let test_percentile_golden () =
  let h = hist_of [ 1.0; 2.0; 4.0; 8.0 ] in
  let check_p name p expect =
    check_true name (abs_float (Registry.percentile h p -. expect) < 1e-9)
  in
  check_p "p25 = first bucket edge" 25.0 1.0;
  check_p "p50 = second bucket edge" 50.0 2.0;
  check_p "p75 = third bucket edge" 75.0 4.0;
  check_p "p100 is the exact max" 100.0 8.0;
  check_p "p0 is the exact min" 0.0 1.0;
  (* mid-bucket interpolation: rank 1.5 sits halfway through (1,2] *)
  check_p "p37.5 interpolates inside the bucket" 37.5 1.5

let test_percentile_degenerate () =
  let h = hist_of [ 5.0; 5.0; 5.0 ] in
  List.iter
    (fun p ->
      check_true
        (Printf.sprintf "all-equal observations: p%g clamps to the value" p)
        (Registry.percentile h p = 5.0))
    [ 0.0; 50.0; 90.0; 99.0; 100.0 ];
  let empty =
    let r = Registry.create () in
    Registry.observe r "other" 1.0;
    { (hist_of [ 1.0 ]) with Registry.h_count = 0 }
  in
  Alcotest.check_raises "empty histogram rejected"
    (Invalid_argument "Registry.percentile: empty histogram") (fun () ->
      ignore (Registry.percentile empty 50.0));
  Alcotest.check_raises "p out of range rejected"
    (Invalid_argument "Registry.percentile: p out of range") (fun () ->
      ignore (Registry.percentile (hist_of [ 1.0 ]) 101.0))

let test_histogram_lookup () =
  let r = Registry.create () in
  check_true "absent series" (Registry.histogram r "nope" = None);
  Registry.incr r "c" 1;
  check_true "counter is not a histogram" (Registry.histogram r "c" = None);
  Registry.observe r ~labels:[ ("k", "v") ] "h" 2.0;
  check_true "labels must match" (Registry.histogram r "h" = None);
  match Registry.histogram r ~labels:[ ("k", "v") ] "h" with
  | Some h -> check_int "labelled series found" 1 h.Registry.h_count
  | None -> Alcotest.fail "labelled histogram missing"

(* --- Bench_io round trip (satellite: JSON string escaping) --- *)

let qcheck_tests =
  let open QCheck in
  (* Strings with control characters, quotes and backslashes — the bytes
     the writer must escape for the reader (and any JSON parser) to get
     the same string back. *)
  let nasty_string =
    string_gen_of_size Gen.(0 -- 30) (Gen.char_range '\000' '\127')
  in
  let rec shrinkable_json depth =
    let open Gen in
    if depth = 0 then
      oneof
        [
          map (fun s -> Bench_io.String s) (string_size ~gen:(char_range '\000' '\127') (0 -- 20));
          map (fun i -> Bench_io.Int i) int;
          map (fun b -> Bench_io.Bool b) bool;
          return Bench_io.Null;
          (* Keep generated floats finite: NaN/inf serialize as null by
             design, so they don't round-trip as floats. *)
          map (fun f -> Bench_io.Float f) (float_bound_inclusive 1e9);
        ]
    else
      oneof
        [
          shrinkable_json 0;
          map (fun l -> Bench_io.List l) (list_size (0 -- 4) (shrinkable_json (depth - 1)));
          map
            (fun kvs -> Bench_io.Obj kvs)
            (list_size (0 -- 4)
               (pair (string_size ~gen:(char_range '\000' '\127') (0 -- 8))
                  (shrinkable_json (depth - 1))));
        ]
  in
  [
    Test.make ~name:"percentile: p90 <= p95 <= p99 <= p100, all inside [min, max]" ~count:300
      (list_of_size Gen.(1 -- 40) (float_bound_inclusive 1e6))
      (fun values ->
        let values = List.map (fun v -> Float.abs v +. 0.001) values in
        let h = hist_of values in
        let p90 = Registry.percentile h 90.0
        and p95 = Registry.percentile h 95.0
        and p99 = Registry.percentile h 99.0
        and p100 = Registry.percentile h 100.0 in
        p90 <= p95 && p95 <= p99 && p99 <= p100
        && h.Registry.h_min <= p90
        && p100 = h.Registry.h_max);
    Test.make ~name:"Bench_io: strings with control chars round-trip" ~count:500 nasty_string
      (fun s ->
        match Bench_io.of_string (Bench_io.to_string (Bench_io.String s)) with
        | Ok (Bench_io.String s') -> s' = s
        | _ -> false);
    Test.make ~name:"Bench_io: writer/reader round trip on nested json" ~count:200
      (make (shrinkable_json 3))
      (fun j ->
        match Bench_io.of_string (Bench_io.to_string j) with
        | Ok j' -> j' = j
        | Error _ -> false);
    Test.make ~name:"Bench_io: indented output parses back equal" ~count:100
      (make (shrinkable_json 2))
      (fun j ->
        match Bench_io.of_string (Bench_io.to_string ~indent:true j) with
        | Ok j' -> j' = j
        | Error _ -> false);
  ]

let suite =
  List.map
    (fun (n, f) -> Alcotest.test_case n `Quick f)
    [
      ("registry: counters + labels", test_registry_counters);
      ("registry: kind mismatch", test_registry_kinds);
      ("registry: histogram buckets", test_registry_histogram);
      ("registry: merge", test_registry_merge);
      ("registry: merge deep-copies", test_registry_merge_copies);
      ("sweep_obs: domain-count independent", test_sweep_obs_deterministic);
      ("span: phase chain + nesting", test_span_phase_chain);
      ("span: stray exit ignored", test_span_stray_exit_ignored);
      ("span: no-op without ambient", test_span_noop_without_ambient);
      ("kill switch: everything inert", test_disabled_is_inert);
      ("engine: obs does not perturb the run", test_obs_does_not_perturb_run);
      ("engine: phase bits sum to total_bits", test_phase_bits_sum_to_total);
      ("export: jsonl parses line by line", test_jsonl_parses);
      ("export: chrome trace parses, >=3 phases", test_chrome_trace_parses);
      ("export: prometheus text", test_prometheus_dump);
      ("export: hostile label values escaped", test_prometheus_hostile_labels);
      ("percentile: golden vectors at bucket edges", test_percentile_golden);
      ("percentile: degenerate histograms", test_percentile_degenerate);
      ("registry: histogram lookup by name + labels", test_histogram_lookup);
    ]
  @ List.map QCheck_alcotest.to_alcotest qcheck_tests
