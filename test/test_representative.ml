(* Differential validation of §4.3: the root's selected partial sums must
   form a representative set — pairwise-disjoint included-input sets that
   cover every node still alive (and connected) at the end — and each
   partial sum's arithmetic must match an independent schedule-driven
   recomputation of what it aggregated. *)

open Ftagg
open Helpers

let validate ?expect_cover (o : Run.pair_outcome) =
  match o.Run.verdict.Pair.result with
  | Agg.Aborted -> ()
  | Agg.Value _ ->
    let root = o.Run.trace.Checker.agg_nodes.(Graph.root) in
    let selected = Agg.selected_sources root in
    let r =
      Checker.representative_set o.Run.trace ~selected ~end_round:o.Run.common.Run.rounds
    in
    check_true "partial-sum arithmetic matches the schedule recomputation"
      r.Checker.psums_match;
    (* Disjointness and coverage are exactly §4.3's claim; they are
       guaranteed whenever VERI accepts (no LFC, Theorem 5's machinery). *)
    if Option.value expect_cover ~default:o.Run.verdict.Pair.veri_ok then begin
      check_true "no double counting" r.Checker.disjoint;
      check_true "covers every alive node" r.Checker.covers_alive
    end

let test_representative_failure_free () =
  List.iter
    (fun (name, g) ->
      let n = Graph.n g in
      let params = params_of ~t:3 g ~inputs:(default_inputs n) in
      let o = Run.pair ~graph:g ~failures:(Failure.none ~n) ~params ~seed:1 () in
      ignore name;
      validate ~expect_cover:true o)
    (Lazy.force sweep_graphs)

let test_representative_random_failures () =
  List.iter
    (fun (name, g) ->
      List.iter
        (fun seed ->
          let n = Graph.n g in
          let params = params_of ~t:4 g ~inputs:(default_inputs n) in
          let failures =
            Failure.random g ~rng:(Prng.create (seed * 19)) ~budget:4 ~max_round:300
          in
          let o = Run.pair ~graph:g ~failures ~params ~seed () in
          ignore name;
          validate o)
        [ 1; 2; 3 ])
    (Lazy.force sweep_graphs)

let test_representative_spec_phase_kills () =
  (* the Figure 3 regime: deaths at the start of speculative flooding
     force blocked sums to be recovered by descendants — the selected set
     must still be disjoint and covering *)
  let n = 36 in
  let g = Gen.grid n in
  let params = params_of ~t:5 g ~inputs:(default_inputs n) in
  let cd = Params.cd params in
  List.iter
    (fun seed ->
      let failures =
        Failure.burst g ~rng:(Prng.create seed) ~budget:5 ~round:((4 * cd) + 3)
      in
      let o = Run.pair ~graph:g ~failures ~params ~seed () in
      validate o)
    [ 1; 2; 3; 4; 5 ]

let test_included_inputs_failure_free () =
  (* without failures the root's own partial sum includes everyone *)
  let n = 25 in
  let g = Gen.grid n in
  let params = params_of ~t:2 g ~inputs:(default_inputs n) in
  let o = Run.agg ~graph:g ~failures:(Failure.none ~n) ~params ~seed:2 () in
  let included = Checker.included_inputs o.Run.trace ~source:Graph.root in
  check_int "root includes all" n (List.length included)

let test_included_inputs_cut_subtree () =
  (* killing node 1 of a path before its action excludes its whole
     subtree from the root's partial sum *)
  let n = 8 in
  let g = Gen.path n in
  let params = params_of ~t:2 g ~inputs:(default_inputs n) in
  let cd = Params.cd params in
  let failures = Failure.kill_nodes ~n ~nodes:[ 1 ] ~round:((2 * cd) + 3) in
  let o = Run.agg ~graph:g ~failures ~params ~seed:3 () in
  let included = Checker.included_inputs o.Run.trace ~source:Graph.root in
  check_true "only the root remains" (included = [ 0 ])

let qcheck_tests =
  let open QCheck in
  [
    Test.make ~name:"representative set holds whenever VERI accepts" ~count:40
      (triple (int_range 12 36) (int_range 1 5) small_int)
      (fun (n, t, seed) ->
        let g = Topo.random_connected ~n ~p:0.1 ~seed in
        let params = params_of ~t g ~inputs:(default_inputs n) in
        let failures =
          Failure.random g ~rng:(Prng.create (seed + 3)) ~budget:(2 * t) ~max_round:400
        in
        let o = Run.pair ~graph:g ~failures ~params ~seed () in
        match o.Run.verdict.Pair.result with
        | Agg.Aborted -> true
        | Agg.Value _ ->
          let selected = Agg.selected_sources o.Run.trace.Checker.agg_nodes.(Graph.root) in
          let r =
            Checker.representative_set o.Run.trace ~selected
              ~end_round:o.Run.common.Run.rounds
          in
          r.Checker.psums_match
          && ((not o.Run.verdict.Pair.veri_ok)
             || (r.Checker.disjoint && r.Checker.covers_alive)));
  ]

let suite =
  List.map
    (fun (n, f) -> Alcotest.test_case n `Quick f)
    [
      ("representative: failure-free", test_representative_failure_free);
      ("representative: random failures", test_representative_random_failures);
      ("representative: spec-phase kills", test_representative_spec_phase_kills);
      ("included: failure-free", test_included_inputs_failure_free);
      ("included: cut subtree", test_included_inputs_cut_subtree);
    ]
  @ List.map QCheck_alcotest.to_alcotest qcheck_tests
