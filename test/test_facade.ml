(* The public facade: the Network high-level API, plus the presentation
   helpers (Chart, Graph.to_dot, Failure.pp) and the worst-case sweep. *)

open Ftagg
open Helpers

let test_network_sum_failure_free () =
  let net = Network.create Gen.Grid ~n:25 ~seed:1 () in
  let inputs = Array.init 25 (fun i -> i) in
  let r = Network.sum net ~inputs ~b:50 ~f:3 in
  check_int "sum exact" (total inputs) (Network.value_exn r);
  check_true "correct" r.Network.correct;
  check_true "cc positive" (r.Network.cc > 0);
  check_true "within budget" (r.Network.flooding_rounds <= 50)

let test_network_aggregate_caaf () =
  let net = Network.create Gen.Ring ~n:20 ~seed:2 () in
  let inputs = Array.init 20 (fun i -> i + 5) in
  let r = Network.aggregate net ~caaf:Instances.max_ ~inputs ~b:50 ~f:2 in
  check_int "max" 24 (Network.value_exn r)

let test_network_with_failures () =
  let net = Network.create Gen.Grid ~n:36 ~seed:3 () in
  let inputs = Array.make 36 7 in
  let failures = Network.random_failures net ~budget:5 ~seed:9 in
  let r = Network.sum net ~inputs ~failures ~b:63 ~f:5 in
  check_true "correct under failures" r.Network.correct

let test_network_unknown_f () =
  let net = Network.create Gen.Grid ~n:25 ~seed:4 () in
  let inputs = Array.make 25 2 in
  let r = Network.aggregate_unknown_f net ~inputs in
  check_int "unknown-f exact" 50 (Network.value_exn r);
  check_true "correct" r.Network.correct

let test_network_select_median () =
  let net = Network.create Gen.Grid ~n:25 ~seed:5 () in
  let inputs = Array.init 25 (fun i -> (i * 31) mod 97) in
  let sel = Network.select net ~inputs ~b:50 ~f:2 ~k:7 in
  check_int "k=7" (Selection.kth_smallest (Array.to_list inputs) 7) sel.Selection.value;
  let med = Network.median net ~inputs ~b:50 ~f:2 in
  check_int "median" (Selection.kth_smallest (Array.to_list inputs) 13) med.Selection.value

let test_network_diameter () =
  let net = Network.create Gen.Path ~n:10 ~seed:6 () in
  check_int "path diameter" 9 (Network.diameter net);
  check_int "n" 10 (Network.n net)

let test_chart_bars () =
  let s = Chart.bars ~width:10 ~title:"t" [ ("a", 10.0); ("bb", 5.0) ] in
  check_true "title" (String.sub s 0 1 = "t");
  check_true "two lines + title"
    (List.length (String.split_on_char '\n' (String.trim s)) = 3);
  (* the max bar is full width: contains 10 block glyphs = 30 bytes *)
  check_true "scales to max" (String.length s > 30)

let test_chart_bars_zero () =
  let s = Chart.bars [ ("x", 0.0) ] in
  check_true "no crash on zeros" (String.length s > 0)

let test_chart_log_bars () =
  let s = Chart.log_bars ~width:20 [ ("small", 2.0); ("big", 1024.0) ] in
  check_true "renders" (String.length s > 0)

let test_chart_spark () =
  check_true "empty" (Chart.spark [] = "");
  let s = Chart.spark [ 1.0; 2.0; 3.0; 4.0 ] in
  (* 4 glyphs x 3 bytes *)
  check_int "four glyphs" 12 (String.length s);
  let flat = Chart.spark [ 5.0; 5.0 ] in
  check_int "flat series renders lowest glyph twice" 6 (String.length flat)

(* tiny substring check to avoid a string-library dependency *)
let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let test_graph_to_dot () =
  let g = Gen.path 3 in
  let dot = Graph.to_dot ~name:"p3" g in
  check_true "header" (String.length dot > 10 && String.sub dot 0 8 = "graph p3");
  check_true "edge present" (contains dot "0 -- 1");
  check_true "root styled" (contains dot "doublecircle")

let test_failure_pp () =
  let t = Failure.of_list ~n:5 [ (2, 7); (4, 9) ] in
  let s = Format.asprintf "%a" Failure.pp t in
  check_true "mentions 2@7" (String.length s >= 7);
  let none = Format.asprintf "%a" Failure.pp (Failure.none ~n:3) in
  check_true "none rendering" (none = "(none)")

let test_worstcase_sweep_small () =
  let land_ = Worstcase.sweep_tradeoff ~n:20 ~f:4 ~b:63 ~seed:1 () in
  check_true "has cells" (List.length land_.Worstcase.cells > 20);
  check_true "worst is max"
    (List.for_all
       (fun c -> c.Worstcase.cc <= land_.Worstcase.worst.Worstcase.cc)
       land_.Worstcase.cells);
  check_true "Theorem 1 across the landscape"
    (List.for_all (fun c -> c.Worstcase.correct) land_.Worstcase.cells)

let test_worstcase_adversary_names () =
  List.iter
    (fun adv -> check_true "nonempty name" (Worstcase.adversary_name adv <> ""))
    (Worstcase.default_adversaries ~seed:1)

let suite =
  List.map
    (fun (n, f) -> Alcotest.test_case n `Quick f)
    [
      ("network: sum", test_network_sum_failure_free);
      ("network: caaf", test_network_aggregate_caaf);
      ("network: failures", test_network_with_failures);
      ("network: unknown f", test_network_unknown_f);
      ("network: select/median", test_network_select_median);
      ("network: diameter", test_network_diameter);
      ("chart: bars", test_chart_bars);
      ("chart: zeros", test_chart_bars_zero);
      ("chart: log bars", test_chart_log_bars);
      ("chart: spark", test_chart_spark);
      ("graph: to_dot", test_graph_to_dot);
      ("failure: pp", test_failure_pp);
      ("worstcase: sweep", test_worstcase_sweep_small);
      ("worstcase: names", test_worstcase_adversary_names);
    ]
