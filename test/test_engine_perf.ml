(* Differential check of the CSR engine hot path against the list-based
   reference engine (the executable specification kept as
   Engine.run_reference), plus determinism of the multicore sweep
   runner.  The perf claim in bench `perf` rests on these being
   observationally identical. *)

open Ftagg
open Helpers

(* Drive the same protocol through both engines and insist on identical
   metrics (per-node bits AND messages) and identical final states under
   a projection chosen per protocol. *)
let both ?loss ~graph ~failures ~max_rounds ~seed ~project proto =
  let s_ref, m_ref = Engine.run_reference ?loss ~graph ~failures ~max_rounds ~seed proto in
  let s_new, m_new = Engine.run ?loss ~graph ~failures ~max_rounds ~seed proto in
  check_int "rounds" (Metrics.rounds m_ref) (Metrics.rounds m_new);
  check_int "cc" (Metrics.cc m_ref) (Metrics.cc m_new);
  Array.iteri
    (fun u _ ->
      check_int (Printf.sprintf "bits@%d" u) (Metrics.bits_sent m_ref u) (Metrics.bits_sent m_new u);
      check_int (Printf.sprintf "msgs@%d" u) (Metrics.msgs_sent m_ref u) (Metrics.msgs_sent m_new u))
    s_ref;
  Array.iteri
    (fun u st -> check_true (Printf.sprintf "state@%d" u) (project st = project s_new.(u)))
    s_ref

let agg_proto params =
  {
    Engine.name = "agg";
    init = (fun u ~rng:_ -> Agg.create params ~me:u);
    step = (fun ~round ~me:_ ~state ~inbox -> (state, Agg.step state ~rr:round ~inbox));
    msg_bits = Message.bits params;
    root_done = (fun _ -> false);
  }

let agg_project st = (Agg.level st, Agg.parent st, Agg.psum st, Agg.max_level st, Agg.aborted st)

let families =
  [ ("grid", Gen.Grid); ("ring", Gen.Ring); ("caterpillar", Gen.Caterpillar); ("random", Gen.Random 0.12) ]

let seeds = [ 1; 2; 3; 4; 5 ]

let test_agg_equivalence () =
  List.iter
    (fun (name, fam) ->
      let g = Gen.build fam ~n:36 ~seed:3 in
      let inputs = default_inputs 36 in
      let params = params_of g ~inputs in
      List.iter
        (fun seed ->
          let failures =
            Failure.random g ~rng:(Prng.create (seed * 13)) ~budget:6 ~max_round:200
          in
          Alcotest.(check unit)
            (Printf.sprintf "agg %s seed %d" name seed)
            ()
            (both ~graph:g ~failures ~max_rounds:(Agg.duration params) ~seed
               ~project:agg_project (agg_proto params)))
        seeds)
    families

let test_tradeoff_equivalence () =
  List.iter
    (fun (name, fam) ->
      let g = Gen.build fam ~n:30 ~seed:7 in
      let inputs = default_inputs 30 in
      let params = params_of g ~inputs in
      let b = 63 and f = 4 in
      let proto =
        {
          Engine.name = "tradeoff";
          init = (fun u ~rng -> Tradeoff.create ~strategy:Tradeoff.Sampled params ~b ~f ~me:u ~rng);
          step =
            (fun ~round ~me:_ ~state ~inbox -> (state, Tradeoff.step state ~round ~inbox));
          msg_bits = Message.msg_bits params;
          root_done = Tradeoff.root_done;
        }
      in
      List.iter
        (fun seed ->
          let failures =
            Failure.random g ~rng:(Prng.create (seed + 29)) ~budget:f ~max_round:300
          in
          both ~graph:g ~failures ~max_rounds:(Tradeoff.max_rounds params ~b) ~seed
            ~project:(fun _ -> ())
            proto;
          (* root_done-halting runs must also agree on the result itself *)
          let o1 = Run.tradeoff ~graph:g ~failures ~params ~b ~f ~seed () in
          check_true
            (Printf.sprintf "tradeoff %s seed %d correct" name seed)
            o1.Run.common.Run.correct)
        seeds)
    families

let test_pair_equivalence () =
  let g = Gen.grid 25 in
  let params = params_of ~t:2 g ~inputs:(default_inputs 25) in
  let proto =
    {
      Engine.name = "pair";
      init = (fun u ~rng:_ -> Pair.create params ~me:u);
      step = (fun ~round ~me:_ ~state ~inbox -> (state, Pair.step state ~rr:round ~inbox));
      msg_bits = Message.bits params;
      root_done = (fun _ -> false);
    }
  in
  List.iter
    (fun seed ->
      let failures = Failure.random g ~rng:(Prng.create (seed * 5)) ~budget:4 ~max_round:250 in
      both ~graph:g ~failures ~max_rounds:(Pair.duration params) ~seed
        ~project:(fun st -> agg_project (Pair.agg st))
        proto)
    seeds

(* Under message loss both engines must consume the loss PRNG stream in
   the same order, so states and metrics stay identical draw for draw. *)
let test_lossy_equivalence () =
  let g = Gen.grid 25 in
  let params = params_of g ~inputs:(default_inputs 25) in
  List.iter
    (fun loss ->
      List.iter
        (fun seed ->
          let failures = Failure.random g ~rng:(Prng.create seed) ~budget:4 ~max_round:200 in
          both ~loss ~graph:g ~failures ~max_rounds:(Agg.duration params) ~seed
            ~project:agg_project (agg_proto params))
        seeds)
    [ 0.05; 0.3 ]

(* A crashed node's slot must clear even when the fast path skips work. *)
let test_crash_equivalence () =
  let g = Gen.ring 20 in
  let params = params_of g ~inputs:(default_inputs 20) in
  let failures = Failure.chain ~n:20 ~first:5 ~len:4 ~round:7 in
  List.iter
    (fun seed ->
      both ~graph:g ~failures ~max_rounds:(Agg.duration params) ~seed ~project:agg_project
        (agg_proto params))
    seeds

let test_sweep_matches_list_map () =
  let xs = List.init 37 (fun i -> i) in
  let f x = (x * x) + 1 in
  Alcotest.(check (list int)) "map ≡ List.map" (List.map f xs) (Sweep.map f xs);
  Alcotest.(check (list int)) "empty" [] (Sweep.map f []);
  Alcotest.(check (list int)) "singleton" [ f 9 ] (Sweep.map f [ 9 ])

(* The result order must be the input order whatever the pool size, and
   real simulation sweeps must be bit-identical across pool sizes. *)
let test_sweep_determinism () =
  let g = Gen.grid 25 in
  let params = params_of g ~inputs:(default_inputs 25) in
  let job s =
    let failures = Failure.random g ~rng:(Prng.create s) ~budget:4 ~max_round:200 in
    let o = Run.agg ~graph:g ~failures ~params ~seed:s () in
    (Metrics.cc o.Run.common.Run.metrics, o.Run.common.Run.rounds, o.Run.common.Run.correct)
  in
  let seeds = List.init 12 (fun i -> i + 1) in
  let serial = Sweep.map ~domains:1 job seeds in
  let parallel = Sweep.map ~domains:4 job seeds in
  check_true "1 domain ≡ 4 domains" (serial = parallel);
  check_true "matches direct map" (List.map job seeds = serial)

let test_sweep_errors () =
  (match Sweep.map ~domains:0 (fun x -> x) [ 1 ] with
  | _ -> Alcotest.fail "domains:0 should raise"
  | exception Invalid_argument _ -> ());
  match Sweep.map ~domains:3 (fun x -> if x = 5 then failwith "boom" else x) (List.init 10 Fun.id) with
  | _ -> Alcotest.fail "failing job should raise"
  | exception Sweep.Job_failed (i, Failure _) -> check_int "failing job index" 5 i

(* The failure report must carry the index AND the payload of the first
   failing job (by index, not by wall clock), even with several failures
   in flight. *)
let test_sweep_error_payload () =
  let job x = if x mod 2 = 1 then failwith (Printf.sprintf "boom%d" x) else x in
  match Sweep.map ~domains:4 job (List.init 12 Fun.id) with
  | _ -> Alcotest.fail "failing jobs should raise"
  | exception Sweep.Job_failed (i, Failure msg) ->
    check_int "first failing index" 1 i;
    check_true "payload of the first failing job" (msg = "boom1")

(* domains:1 must run every job in the calling domain (no spawns), with
   the same results and the same error protocol as the parallel path. *)
let test_sweep_sequential_path () =
  let log = ref [] in
  let f x =
    log := x :: !log;
    x * 2
  in
  Alcotest.(check (list int))
    "results in input order"
    (List.map (fun x -> x * 2) [ 5; 1; 4 ])
    (Sweep.map ~domains:1 f [ 5; 1; 4 ]);
  Alcotest.(check (list int)) "jobs ran in input order" [ 5; 1; 4 ] (List.rev !log);
  match Sweep.map ~domains:1 (fun x -> if x = 2 then raise Exit else x) [ 0; 1; 2; 3 ] with
  | _ -> Alcotest.fail "failing job should raise"
  | exception Sweep.Job_failed (i, Exit) -> check_int "sequential failure index" 2 i

(* Fewer jobs than domains: the pool must not over-spawn or deadlock, and
   results still match List.map. *)
let test_sweep_fewer_jobs_than_domains () =
  let f x = x + 100 in
  Alcotest.(check (list int)) "n=3 < domains=8" (List.map f [ 7; 8; 9 ]) (Sweep.map ~domains:8 f [ 7; 8; 9 ]);
  Alcotest.(check (list int)) "n=1 < domains=8" [ f 42 ] (Sweep.map ~domains:8 f [ 42 ]);
  match Sweep.map ~domains:8 (fun _ -> failwith "solo") [ 0 ] with
  | _ -> Alcotest.fail "failing job should raise"
  | exception Sweep.Job_failed (i, Failure msg) ->
    check_int "index with tiny input" 0 i;
    check_true "payload with tiny input" (msg = "solo")

let suite =
  [
    Alcotest.test_case "engine: AGG equivalence (4 families x 5 seeds)" `Quick
      test_agg_equivalence;
    Alcotest.test_case "engine: tradeoff equivalence" `Quick test_tradeoff_equivalence;
    Alcotest.test_case "engine: pair equivalence" `Quick test_pair_equivalence;
    Alcotest.test_case "engine: lossy equivalence" `Quick test_lossy_equivalence;
    Alcotest.test_case "engine: crash-schedule equivalence" `Quick test_crash_equivalence;
    Alcotest.test_case "sweep: matches List.map" `Quick test_sweep_matches_list_map;
    Alcotest.test_case "sweep: deterministic across pool sizes" `Quick test_sweep_determinism;
    Alcotest.test_case "sweep: error reporting" `Quick test_sweep_errors;
    Alcotest.test_case "sweep: first failure index and payload" `Quick test_sweep_error_payload;
    Alcotest.test_case "sweep: domains:1 sequential path" `Quick test_sweep_sequential_path;
    Alcotest.test_case "sweep: fewer jobs than domains" `Quick test_sweep_fewer_jobs_than_domains;
  ]
