(* Unit and property tests for ftagg_graph: Graph, Gen, Path. *)

open Ftagg
open Helpers

(* The list view via the streaming fold — the [Graph.edges] list path is
   deprecated. *)
let edge_list g = List.rev (Graph.fold_edges (fun u v acc -> (u, v) :: acc) g [])

let test_of_edges_basic () =
  let g = Graph.of_edges ~n:4 [ (0, 1); (1, 2); (2, 3) ] in
  check_int "n" 4 (Graph.n g);
  check_int "edges" 3 (Graph.num_edges g);
  check_true "has 0-1" (Graph.has_edge g 0 1);
  check_true "symmetric" (Graph.has_edge g 1 0);
  check_true "no 0-2" (not (Graph.has_edge g 0 2));
  check_int "deg 1" 2 (Graph.degree g 1)

let test_of_edges_dedup () =
  let g = Graph.of_edges ~n:3 [ (0, 1); (1, 0); (0, 1) ] in
  check_int "duplicate edges collapse" 1 (Graph.num_edges g)

let test_of_edges_rejects () =
  Alcotest.check_raises "self loop" (Invalid_argument "Graph.of_edges: self-loop")
    (fun () -> ignore (Graph.of_edges ~n:3 [ (1, 1) ]));
  Alcotest.check_raises "out of range"
    (Invalid_argument "Graph.of_edges: endpoint out of range") (fun () ->
      ignore (Graph.of_edges ~n:3 [ (0, 3) ]))

let test_remove_nodes () =
  let g = Graph.of_edges ~n:4 [ (0, 1); (1, 2); (2, 3) ] in
  let g' = Graph.remove_nodes g [ 1 ] in
  check_true "removed not mem" (not (Graph.mem g' 1));
  check_int "edges after removal" 1 (Graph.num_edges g');
  check_true "neighbors exclude removed" (Graph.neighbors g' 0 = []);
  (* the original graph is untouched *)
  check_int "original intact" 3 (Graph.num_edges g)

let test_neighbors_sorted () =
  let g = Graph.of_edges ~n:5 [ (2, 4); (2, 0); (2, 3); (2, 1) ] in
  check_true "sorted adjacency" (Graph.neighbors g 2 = [ 0; 1; 3; 4 ])

let test_bfs_path () =
  let g = Gen.path 6 in
  let dist = Path.bfs g 0 in
  Array.iteri (fun i d -> check_int (Printf.sprintf "dist to %d" i) i d) dist

let test_bfs_unreachable () =
  let g = Graph.of_edges ~n:4 [ (0, 1); (2, 3) ] in
  let dist = Path.bfs g 0 in
  check_true "unreachable is max_int" (dist.(2) = max_int && dist.(3) = max_int)

let test_diameter_families () =
  check_true "path diameter" (Path.diameter (Gen.path 10) = Some 9);
  check_true "ring diameter" (Path.diameter (Gen.ring 10) = Some 5);
  check_true "star diameter" (Path.diameter (Gen.star 10) = Some 2);
  check_true "complete diameter" (Path.diameter (Gen.complete 10) = Some 1)

let test_diameter_disconnected () =
  let g = Graph.of_edges ~n:4 [ (0, 1); (2, 3) ] in
  check_true "disconnected diameter" (Path.diameter g = None);
  check_true "not connected" (not (Path.is_connected g))

let test_component_of () =
  let g = Graph.of_edges ~n:5 [ (0, 1); (1, 2); (3, 4) ] in
  check_true "component of 0" (Path.component_of g 0 = [ 0; 1; 2 ]);
  check_true "component of 3" (Path.component_of g 3 = [ 3; 4 ]);
  check_true "root reach" (Path.reachable_from_root g = [ 0; 1; 2 ])

let test_grid_structure () =
  let g = Gen.grid 9 in
  (* 3x3 grid: corner degrees 2, center degree 4 *)
  check_int "corner degree" 2 (Graph.degree g 0);
  check_int "center degree" 4 (Graph.degree g 4);
  check_true "diameter 4" (Path.diameter g = Some 4)

let test_binary_tree_structure () =
  let g = Gen.binary_tree 7 in
  check_int "root degree" 2 (Graph.degree g 0);
  check_int "edges" 6 (Graph.num_edges g);
  check_true "leaf degree" (Graph.degree g 6 = 1)

let test_caterpillar_connected_with_leaves () =
  let g = Gen.caterpillar 20 in
  check_true "connected" (Path.is_connected g);
  check_int "n" 20 (Graph.n g);
  check_int "tree edge count" 19 (Graph.num_edges g)

let test_lollipop_shape () =
  let g = Gen.lollipop 20 in
  check_true "connected" (Path.is_connected g);
  (* the clique half has k(k-1)/2 edges, so way more than a tree *)
  check_true "dense half" (Graph.num_edges g > 30)

let test_all_families_connected () =
  List.iter
    (fun (name, fam) ->
      List.iter
        (fun n ->
          let g = Gen.build fam ~n ~seed:5 in
          check_true (Printf.sprintf "%s n=%d connected" name n) (Path.is_connected g);
          check_int (Printf.sprintf "%s n=%d size" name n) n (Graph.n g))
        [ 12; 17; 40 ])
    (Gen.all_families ~seed:5)

let test_random_connected_seeded () =
  let a = Gen.random_connected ~n:30 ~p:0.1 ~seed:3 in
  let b = Gen.random_connected ~n:30 ~p:0.1 ~seed:3 in
  check_true "same seed, same graph" (edge_list a = edge_list b);
  let c = Gen.random_connected ~n:30 ~p:0.1 ~seed:4 in
  check_true "different seed, different graph" (edge_list a <> edge_list c)

let qcheck_tests =
  let open QCheck in
  [
    Test.make ~name:"generated graphs are connected with sane diameter" ~count:60
      (pair (int_range 12 60) small_int)
      (fun (n, seed) ->
        List.for_all
          (fun (_, fam) ->
            let g = Topo.build fam ~n ~seed in
            Path.is_connected g
            && match Path.diameter g with Some d -> d >= 1 && d < n | None -> false)
          (Topo.all_families ~seed));
    Test.make ~name:"bfs distances satisfy triangle inequality along edges" ~count:40
      (pair (int_range 5 40) small_int)
      (fun (n, seed) ->
        let g = Topo.random_connected ~n ~p:0.1 ~seed in
        let dist = Path.bfs g 0 in
        List.for_all (fun (u, v) -> abs (dist.(u) - dist.(v)) <= 1) (edge_list g));
    Test.make ~name:"removing nodes never adds reachability" ~count:40
      (pair (int_range 6 40) small_int)
      (fun (n, seed) ->
        let g = Topo.random_connected ~n ~p:0.08 ~seed in
        let removed = [ 1 + (seed mod (n - 1)); 1 + ((seed * 7) mod (n - 1)) ] in
        let g' = Graph.remove_nodes g removed in
        let before = Path.reachable_from_root g in
        let after = Path.reachable_from_root g' in
        List.for_all (fun u -> List.mem u before) after);
  ]

let suite =
  List.map
    (fun (n, f) -> Alcotest.test_case n `Quick f)
    [
      ("graph: of_edges", test_of_edges_basic);
      ("graph: dedup", test_of_edges_dedup);
      ("graph: rejects bad edges", test_of_edges_rejects);
      ("graph: remove_nodes", test_remove_nodes);
      ("graph: neighbors sorted", test_neighbors_sorted);
      ("path: bfs on path", test_bfs_path);
      ("path: bfs unreachable", test_bfs_unreachable);
      ("path: diameters of families", test_diameter_families);
      ("path: disconnected", test_diameter_disconnected);
      ("path: components", test_component_of);
      ("gen: grid structure", test_grid_structure);
      ("gen: binary tree structure", test_binary_tree_structure);
      ("gen: caterpillar", test_caterpillar_connected_with_leaves);
      ("gen: lollipop", test_lollipop_shape);
      ("gen: all families connected", test_all_families_connected);
      ("gen: random seeded", test_random_connected_seeded);
    ]
  @ List.map QCheck_alcotest.to_alcotest qcheck_tests
