(* Tests for the extension layer: trace recording, the approximate
   baselines (push-sum gossip, synopsis diffusion), the cut simulation,
   derived statistics, and the extra generators/adversaries. *)

open Ftagg
open Helpers

(* --- Trace --- *)

let test_trace_records_broadcasts () =
  let g = Gen.path 4 in
  let tr = Trace.create () in
  let proto =
    {
      Engine.name = "beeper";
      init = (fun _ ~rng:_ -> ());
      step =
        (fun ~round ~me ~state:() ~inbox:_ ->
          ((), if me = 0 && round <= 2 then [ round ] else []));
      msg_bits = (fun _ -> 1);
      root_done = (fun _ -> false);
    }
  in
  let _ =
    Engine.run ~observer:(Trace.observer tr) ~graph:g ~failures:(Failure.none ~n:4)
      ~max_rounds:5 ~seed:0 proto
  in
  check_int "two events (silent dropped)" 2 (Trace.length tr);
  check_true "root's rounds" (Trace.rounds_active tr ~node:0 = [ 1; 2 ]);
  check_true "others silent" (Trace.broadcasts_of tr ~node:2 = [])

let test_trace_keep_silent () =
  let g = Gen.path 3 in
  let tr = Trace.create ~keep_silent:true () in
  let proto =
    {
      Engine.name = "silent";
      init = (fun _ ~rng:_ -> ());
      step = (fun ~round:_ ~me:_ ~state:() ~inbox:_ -> ((), ([] : int list)));
      msg_bits = (fun _ -> 1);
      root_done = (fun _ -> false);
    }
  in
  let _ =
    Engine.run ~observer:(Trace.observer tr) ~graph:g ~failures:(Failure.none ~n:3)
      ~max_rounds:2 ~seed:0 proto
  in
  check_int "3 nodes x 2 rounds" 6 (Trace.length tr)

let test_trace_pp () =
  let tr = Trace.create () in
  Trace.observer tr ~round:1 ~node:0 [ 42 ];
  let s = Format.asprintf "%a" (Trace.pp ~pp_msg:Format.pp_print_int) tr in
  check_true "renders" (String.length s > 5)

(* --- Gossip --- *)

(* The unified runner answers with a [Backend.outcome]; these helpers
   project the estimate fields the assertions care about. *)
let gossip ~graph ~failures ~inputs ~rounds ~seed =
  let params = Params.make ~graph ~inputs () in
  Gossip.run ~graph ~failures ~params ~rounds ~seed ()

let rel_err o =
  match o.Backend.result with
  | Backend.Estimate { relative_error; _ } -> relative_error
  | Backend.Exact _ -> invalid_arg "rel_err"

let test_gossip_converges_failure_free () =
  let n = 25 in
  let g = Gen.grid n in
  let inputs = Array.init n (fun i -> i + 1) in
  let o = gossip ~graph:g ~failures:(Failure.none ~n) ~inputs ~rounds:300 ~seed:1 in
  check_true
    (Printf.sprintf "estimate %.2f near %d" (Backend.estimate_of o) (total inputs))
    (rel_err o < 0.01)

let test_gossip_more_rounds_more_accuracy () =
  let n = 25 in
  let g = Gen.grid n in
  let inputs = Array.init n (fun i -> i + 1) in
  let err rounds =
    rel_err (gossip ~graph:g ~failures:(Failure.none ~n) ~inputs ~rounds ~seed:1)
  in
  check_true "error shrinks with rounds" (err 200 <= err 20 +. 1e-9)

let test_gossip_cc_linear_in_rounds () =
  let n = 16 in
  let g = Gen.grid n in
  let inputs = Array.make n 1 in
  let cc rounds =
    let o = gossip ~graph:g ~failures:(Failure.none ~n) ~inputs ~rounds ~seed:1 in
    Metrics.cc o.Backend.common.Backend.metrics
  in
  check_int "exact metering" (50 * (5 + 64)) (cc 50)

let test_gossip_degrades_under_failures () =
  (* mass destruction: killing nodes mid-run biases the estimate; the
     zero-error protocols would still be interval-correct *)
  let n = 25 in
  let g = Gen.grid n in
  let inputs = Array.make n 10 in
  let failures = Failure.kill_nodes ~n ~nodes:[ 5; 6; 7; 12 ] ~round:30 in
  let o = gossip ~graph:g ~failures ~inputs ~rounds:300 ~seed:2 in
  (* dead nodes took in-flight mass with them: the estimate is not exact
     and (generically) even below the survivors' total *)
  check_true "estimate is only approximate" (rel_err o > 0.001)

(* --- Synopsis diffusion --- *)

let test_synopsis_count_reasonable () =
  let n = 100 in
  let g = Gen.grid n in
  let params_d = match Path.diameter g with Some d -> d | None -> 0 in
  let o =
    Synopsis.run_count ~graph:g ~failures:(Failure.none ~n) ~k:32
      ~rounds:(params_d + 2) ~seed:1
  in
  check_true
    (Printf.sprintf "count estimate %.1f vs %d" o.Synopsis.estimate n)
    (o.Synopsis.relative_error < 0.8)

let test_synopsis_sum_reasonable () =
  let n = 36 in
  let g = Gen.grid n in
  let inputs = Array.make n 20 in
  let d = match Path.diameter g with Some d -> d | None -> 0 in
  let o =
    Synopsis.run_sum ~graph:g ~failures:(Failure.none ~n) ~inputs ~k:32 ~rounds:(d + 2)
      ~seed:2
  in
  check_true
    (Printf.sprintf "sum estimate %.1f vs %d" o.Synopsis.estimate (total inputs))
    (o.Synopsis.relative_error < 0.8)

let test_synopsis_duplicate_insensitive () =
  (* running twice as many rounds merges the same synopses again and must
     not change the estimate — the ODI property *)
  let n = 49 in
  let g = Gen.grid n in
  let short =
    Synopsis.run_count ~graph:g ~failures:(Failure.none ~n) ~k:16 ~rounds:15 ~seed:3
  in
  let long =
    Synopsis.run_count ~graph:g ~failures:(Failure.none ~n) ~k:16 ~rounds:60 ~seed:3
  in
  check_true "ODI: more merging, same answer" (short.Synopsis.estimate = long.Synopsis.estimate)

let test_synopsis_survives_failures () =
  (* multipath robustness: killing a few nodes after the first rounds on
     a well-connected graph leaves the estimate unchanged *)
  let n = 49 in
  let g = Gen.grid n in
  let clean =
    Synopsis.run_count ~graph:g ~failures:(Failure.none ~n) ~k:16 ~rounds:30 ~seed:4
  in
  let failures = Failure.kill_nodes ~n ~nodes:[ 10; 20; 30 ] ~round:15 in
  let faulty = Synopsis.run_count ~graph:g ~failures ~k:16 ~rounds:30 ~seed:4 in
  check_true "same estimate despite crashes"
    (clean.Synopsis.estimate = faulty.Synopsis.estimate)

(* --- Cut simulation --- *)

let test_cut_partition_structure () =
  let g = Gen.path 10 in
  let cut = Cut_sim.halves g in
  check_int "one cut edge on a path" 1 cut.Cut_sim.cut_edges;
  check_true "alice boundary" (cut.Cut_sim.boundary_alice = [ 4 ]);
  check_true "bob boundary" (cut.Cut_sim.boundary_bob = [ 5 ])

let test_cut_requires_root_on_alice () =
  let g = Gen.path 4 in
  Alcotest.check_raises "root side"
    (Invalid_argument "Cut_sim.partition: root must be on Alice's side") (fun () ->
      ignore (Cut_sim.partition g ~alice:(fun u -> u > 1)))

let test_cut_transcript_bounded_by_total () =
  let n = 30 in
  let g = Gen.path n in
  let params = params_of g ~inputs:(default_inputs n) in
  let cut = Cut_sim.halves g in
  let tr =
    Cut_sim.sum_transcript ~graph:g ~failures:(Failure.none ~n) ~params ~b:63 ~f:2 ~seed:1
      ~cut
  in
  check_true "transcript positive" (tr.Cut_sim.total_bits > 0);
  (* only 2 boundary nodes contribute, so transcript <= 2 * CC *)
  check_true "transcript <= 2 x CC" (tr.Cut_sim.total_bits <= 2 * tr.Cut_sim.protocol_cc)

let test_cut_narrow_vs_wide () =
  (* the same protocol run across a 1-edge cut vs a wide cut: the
     narrow-cut transcript is no larger *)
  let n = 36 in
  let g = Gen.grid n in
  let params = params_of g ~inputs:(default_inputs n) in
  let wide = Cut_sim.halves g in
  let narrow = Cut_sim.partition g ~alice:(fun u -> u < n - 1) in
  let t_of cut =
    (Cut_sim.sum_transcript ~graph:g ~failures:(Failure.none ~n) ~params ~b:63 ~f:2 ~seed:2
       ~cut)
      .Cut_sim.total_bits
  in
  check_true "narrow cut cheaper or equal"
    (t_of narrow <= t_of wide)

(* --- Derived statistics --- *)

let test_derived_exact_failure_free () =
  let n = 36 in
  let g = Gen.grid n in
  let rng = Prng.create 5 in
  let inputs = Params.random_inputs ~rng ~n ~max_input:30 in
  let params = params_of g ~inputs in
  let o = Derived.summary ~graph:g ~failures:(Failure.none ~n) ~params ~b:63 ~f:2 ~seed:1 in
  let fn = float_of_int n in
  let mean = float_of_int (total inputs) /. fn in
  let var =
    Array.fold_left (fun acc x -> acc +. ((float_of_int x -. mean) ** 2.0)) 0.0 inputs /. fn
  in
  check_int "population" n o.Derived.population;
  check_true "average exact" (Float.abs (o.Derived.average -. mean) < 1e-9);
  check_true "variance exact" (Float.abs (o.Derived.variance -. var) < 1e-6);
  check_int "range exact"
    (Array.fold_left max 0 inputs - Array.fold_left min max_int inputs)
    o.Derived.range

let test_derived_under_failures_sane () =
  let n = 36 in
  let g = Gen.grid n in
  let inputs = Array.make n 10 in
  let params = params_of g ~inputs in
  let failures = Failure.random g ~rng:(Prng.create 9) ~budget:4 ~max_round:4000 in
  let o = Derived.summary ~graph:g ~failures ~params ~b:63 ~f:4 ~seed:2 in
  (* constant inputs: whatever population is counted, the average is 10 *)
  check_true "average still 10" (Float.abs (o.Derived.average -. 10.0) < 1e-9);
  check_true "variance ~0" (o.Derived.variance < 1e-9);
  check_true "population within [survivors, n]" (o.Derived.population <= n)

(* --- New generators / adversaries --- *)

let test_hypercube () =
  let g = Gen.hypercube 4 in
  check_int "16 nodes" 16 (Graph.n g);
  check_int "degree 4" 4 (Graph.degree g 0);
  check_true "diameter = dims" (Path.diameter g = Some 4)

let test_torus_diameter_small () =
  let g = Gen.torus 36 in
  check_true "connected" (Path.is_connected g);
  let grid_d = match Path.diameter (Gen.grid 36) with Some d -> d | None -> 99 in
  let torus_d = match Path.diameter g with Some d -> d | None -> 99 in
  check_true "torus shrinks the diameter" (torus_d < grid_d)

let test_two_tier () =
  let g = Gen.two_tier ~clusters:4 ~cluster_size:5 in
  check_int "size" 25 (Graph.n g);
  check_true "connected" (Path.is_connected g);
  check_int "root degree = clusters" 4 (Graph.degree g 0);
  (* a dead head leaves its cluster reachable via the member detour *)
  let head1 = 1 + (1 * 6) in
  let survivors = Path.reachable_from_root (Graph.remove_nodes g [ head1 ]) in
  check_true "detour keeps most of the cluster" (List.length survivors >= 20)

let test_random_regular_shape () =
  let g = Gen.random_regular ~n:40 ~degree:4 ~seed:3 in
  check_true "connected" (Path.is_connected g);
  check_true "low diameter (expander-ish)"
    (match Path.diameter g with Some d -> d <= 8 | None -> false)

let test_high_degree_adversary () =
  let g = Gen.star 12 in
  (* the hub is the root, so the adversary must pick leaves *)
  let t = Failure.high_degree g ~budget:3 ~round:5 in
  check_int "3 leaves" 3 (List.length (Failure.crashed_nodes t));
  let g = Gen.two_tier ~clusters:3 ~cluster_size:4 in
  let t = Failure.high_degree g ~budget:20 ~round:5 in
  (* cluster heads have the highest degree among non-roots *)
  check_true "kills a head" (List.exists (fun u -> List.mem u [ 1; 6; 11 ]) (Failure.crashed_nodes t))

let test_per_interval_adversary () =
  let g = Gen.grid 49 in
  let t =
    Failure.per_interval g ~rng:(Prng.create 7) ~budget:16 ~interval_len:100 ~intervals:4
  in
  check_true "within budget" (Failure.edge_failures g t <= 16);
  (* each of the four windows gets at least one crash *)
  List.iteri
    (fun i () ->
      let first = (i * 100) + 1 and last = (i + 1) * 100 in
      check_true
        (Printf.sprintf "window %d hit" i)
        (Failure.edge_failures_in_window g t ~first ~last > 0))
    [ (); (); (); () ]

let test_tradeoff_correct_under_new_adversaries () =
  let n = 49 in
  let g = Gen.grid n in
  let params = params_of g ~inputs:(default_inputs n) in
  let b = 84 in
  let interval_len = 19 * Params.cd params in
  List.iter
    (fun (name, failures) ->
      let o = Run.tradeoff ~graph:g ~failures ~params ~b ~f:12 ~seed:5 () in
      check_true (name ^ ": correct") o.Run.common.Run.correct)
    [
      ("high-degree", Failure.high_degree g ~budget:12 ~round:50);
      ( "per-interval",
        Failure.per_interval g ~rng:(Prng.create 11) ~budget:12 ~interval_len
          ~intervals:(Tradeoff.intervals params ~b) );
    ]

let test_approximate_baselines_across_families () =
  (* gossip and synopsis must at least run and stay finite on every
     topology family *)
  List.iter
    (fun (name, g) ->
      let n = Graph.n g in
      let inputs = Array.make n 5 in
      let d = match Path.diameter g with Some d -> d | None -> 1 in
      let go = gossip ~graph:g ~failures:(Failure.none ~n) ~inputs ~rounds:(20 * d) ~seed:1 in
      check_true (name ^ ": gossip finite") (Float.is_finite (Backend.estimate_of go));
      let sy = Synopsis.run_count ~graph:g ~failures:(Failure.none ~n) ~k:16 ~rounds:(d + 2) ~seed:1 in
      check_true (name ^ ": synopsis positive") (sy.Synopsis.estimate > 0.0))
    (Lazy.force sweep_graphs)

let qcheck_tests =
  let open QCheck in
  [
    Test.make ~name:"gossip conserves mass without failures" ~count:20
      (pair (int_range 9 36) small_int)
      (fun (n, seed) ->
        let g = Topo.grid n in
        let inputs = Array.init n (fun i -> i) in
        let o =
          gossip ~graph:g ~failures:(Failure.none ~n) ~inputs ~rounds:250 ~seed
        in
        rel_err o < 0.05);
    Test.make ~name:"synopsis count estimate within a small factor" ~count:20
      (pair (int_range 20 120) small_int)
      (fun (n, seed) ->
        let g = Topo.grid n in
        let d = match Path.diameter g with Some d -> d | None -> 0 in
        let o =
          Synopsis.run_count ~graph:g ~failures:(Failure.none ~n) ~k:24 ~rounds:(d + 2)
            ~seed
        in
        o.Synopsis.estimate > float_of_int n /. 3.0
        && o.Synopsis.estimate < float_of_int n *. 3.0);
    Test.make ~name:"per_interval stays within budget" ~count:40
      (triple (int_range 10 40) (int_range 1 15) small_int)
      (fun (n, budget, seed) ->
        let g = Topo.random_connected ~n ~p:0.1 ~seed in
        let t =
          Failure.per_interval g ~rng:(Prng.create seed) ~budget ~interval_len:50
            ~intervals:5
        in
        Failure.edge_failures g t <= budget);
  ]

let suite =
  List.map
    (fun (n, f) -> Alcotest.test_case n `Quick f)
    [
      ("trace: records broadcasts", test_trace_records_broadcasts);
      ("trace: keep silent", test_trace_keep_silent);
      ("trace: pp", test_trace_pp);
      ("gossip: converges", test_gossip_converges_failure_free);
      ("gossip: accuracy vs rounds", test_gossip_more_rounds_more_accuracy);
      ("gossip: CC metering", test_gossip_cc_linear_in_rounds);
      ("gossip: degrades under failures", test_gossip_degrades_under_failures);
      ("synopsis: count", test_synopsis_count_reasonable);
      ("synopsis: sum", test_synopsis_sum_reasonable);
      ("synopsis: duplicate insensitive", test_synopsis_duplicate_insensitive);
      ("synopsis: survives failures", test_synopsis_survives_failures);
      ("cut: partition structure", test_cut_partition_structure);
      ("cut: root side", test_cut_requires_root_on_alice);
      ("cut: transcript bounded", test_cut_transcript_bounded_by_total);
      ("cut: narrow vs wide", test_cut_narrow_vs_wide);
      ("derived: exact failure-free", test_derived_exact_failure_free);
      ("derived: sane under failures", test_derived_under_failures_sane);
      ("gen: hypercube", test_hypercube);
      ("gen: torus", test_torus_diameter_small);
      ("gen: two-tier", test_two_tier);
      ("gen: random regular", test_random_regular_shape);
      ("failure: high degree", test_high_degree_adversary);
      ("failure: per interval", test_per_interval_adversary);
      ("tradeoff: new adversaries", test_tradeoff_correct_under_new_adversaries);
      ("approx: all families", test_approximate_baselines_across_families);
    ]
  @ List.map QCheck_alcotest.to_alcotest qcheck_tests
