(* The ground-truth checker itself: correctness sets, critical-failure
   windows, LFC detection. *)

open Ftagg
open Helpers

let test_correctness_sets_failure_free () =
  let g = Gen.path 5 in
  let inputs = default_inputs 5 in
  let base, optional =
    Checker.correctness_sets ~graph:g ~failures:(Failure.none ~n:5) ~end_round:100 ~inputs
  in
  check_int "all in base" 5 (List.length base);
  check_int "none optional" 0 (List.length optional)

let test_correctness_sets_crash () =
  let g = Gen.path 5 in
  let inputs = default_inputs 5 in
  let failures = Failure.of_list ~n:5 [ (4, 50) ] in
  let base, optional =
    Checker.correctness_sets ~graph:g ~failures ~end_round:100 ~inputs
  in
  check_int "4 in base" 4 (List.length base);
  check_true "node 4's input optional" (optional = [ 5 ])

let test_correctness_sets_disconnection () =
  (* killing node 2 of a path also disconnects 3 and 4 *)
  let g = Gen.path 5 in
  let inputs = default_inputs 5 in
  let failures = Failure.of_list ~n:5 [ (2, 50) ] in
  let base, optional =
    Checker.correctness_sets ~graph:g ~failures ~end_round:100 ~inputs
  in
  check_true "base is 0,1" (List.sort compare base = [ 1; 2 ]);
  check_int "three optional" 3 (List.length optional)

let test_correctness_sets_before_crash () =
  (* a crash after end_round does not count *)
  let g = Gen.path 5 in
  let inputs = default_inputs 5 in
  let failures = Failure.of_list ~n:5 [ (2, 500) ] in
  let base, _ = Checker.correctness_sets ~graph:g ~failures ~end_round:100 ~inputs in
  check_int "still all alive" 5 (List.length base)

let test_result_correct_bounds () =
  let g = Gen.path 4 in
  let inputs = default_inputs 4 in
  let params = params_of g ~inputs in
  let failures = Failure.of_list ~n:4 [ (3, 10) ] in
  (* base = {1,2,3}, optional = {4}: valid sums are 6..10 *)
  List.iter
    (fun (v, ok) ->
      check_bool (Printf.sprintf "sum %d" v) ok
        (Checker.result_correct ~graph:g ~failures ~end_round:50 ~params v))
    [ (5, false); (6, true); (8, true); (10, true); (11, false) ]

(* Build an agg trace by running AGG for real. *)
let trace_of g ~t ~failures ~seed =
  let n = Graph.n g in
  let params = params_of ~t g ~inputs:(default_inputs n) in
  let o = Run.agg ~graph:g ~failures ~params ~seed () in
  (o.Run.trace, params)

let test_critical_failure_window () =
  let g = Gen.path 8 in
  let params = params_of ~t:2 g ~inputs:(default_inputs 8) in
  let cd = Params.cd params in
  (* node 3 at level 3: ack at phase round 6, action at 3cd+2-3 *)
  let in_window = (2 * 3) + 5 in
  let tr, _ = trace_of g ~t:2 ~failures:(Failure.of_list ~n:8 [ (3, in_window) ]) ~seed:1 in
  check_true "critical" (List.mem 3 (Checker.critical_failures tr));
  (* before the ack: not critical *)
  let tr, _ = trace_of g ~t:2 ~failures:(Failure.of_list ~n:8 [ (3, 2) ]) ~seed:2 in
  check_true "too early" (not (List.mem 3 (Checker.critical_failures tr)));
  (* after the action round: not critical *)
  let tr, _ =
    trace_of g ~t:2 ~failures:(Failure.of_list ~n:8 [ (3, (3 * cd) + 2) ]) ~seed:3
  in
  check_true "too late" (not (List.mem 3 (Checker.critical_failures tr)))

let test_lfc_requires_live_descendant () =
  (* chain at the end of a path: descendants all dead/disconnected => no LFC *)
  let g = Gen.path 12 in
  let tr, params = trace_of g ~t:3 ~failures:(Failure.chain ~n:12 ~first:1 ~len:3 ~round:60) ~seed:4 in
  check_true "path chain disconnects: no LFC"
    (not (Checker.has_lfc tr ~veri_end:(Agg.duration params + 100)))

let test_lfc_on_ring () =
  let g = Gen.ring 20 in
  let tr, params = trace_of g ~t:3 ~failures:(Failure.chain ~n:20 ~first:1 ~len:3 ~round:60) ~seed:5 in
  check_true "ring chain: LFC" (Checker.has_lfc tr ~veri_end:(Agg.duration params + 100))

let test_lfc_short_chain_is_not_lfc () =
  let g = Gen.ring 20 in
  let tr, params = trace_of g ~t:4 ~failures:(Failure.chain ~n:20 ~first:1 ~len:3 ~round:60) ~seed:6 in
  check_true "chain 3 < t=4: no LFC"
    (not (Checker.has_lfc tr ~veri_end:(Agg.duration params + 100)))

let test_lfc_late_failures_ignored () =
  (* nodes failing after AGG's end cannot form an LFC *)
  let g = Gen.ring 20 in
  let params = params_of ~t:3 g ~inputs:(default_inputs 20) in
  let late = Agg.duration params + 5 in
  let tr, _ = trace_of g ~t:3 ~failures:(Failure.chain ~n:20 ~first:1 ~len:3 ~round:late) ~seed:7 in
  check_true "late chain: no LFC" (not (Checker.has_lfc tr ~veri_end:(late + 100)))

let test_lfc_fragment_cut () =
  (* A visible critical failure between the chain and its descendants
     breaks "same fragment": kill nodes 1..3 in the critical window so
     node 1's criticality is visible, then an LFC of tail 3 exists only
     if 4+ is a local descendant within the same fragment.  We instead
     check: a chain whose member is itself a visible critical failure
     still yields an LFC when the tail's edge is intact (the cut is
     above, not below, the tail). *)
  let g = Gen.ring 20 in
  let params = params_of ~t:2 g ~inputs:(default_inputs 20) in
  let cd = Params.cd params in
  let tr, _ =
    trace_of g ~t:2
      ~failures:(Failure.chain ~n:20 ~first:1 ~len:2 ~round:((2 * cd) + 4))
      ~seed:8
  in
  check_true "critical chain is an LFC"
    (Checker.has_lfc tr ~veri_end:(Agg.duration params + 100))

let suite =
  List.map
    (fun (n, f) -> Alcotest.test_case n `Quick f)
    [
      ("checker: sets failure-free", test_correctness_sets_failure_free);
      ("checker: sets crash", test_correctness_sets_crash);
      ("checker: sets disconnection", test_correctness_sets_disconnection);
      ("checker: crash after end", test_correctness_sets_before_crash);
      ("checker: result bounds", test_result_correct_bounds);
      ("checker: critical window", test_critical_failure_window);
      ("checker: LFC needs live descendant", test_lfc_requires_live_descendant);
      ("checker: LFC on ring", test_lfc_on_ring);
      ("checker: short chain not LFC", test_lfc_short_chain_is_not_lfc);
      ("checker: late failures not LFC", test_lfc_late_failures_ignored);
      ("checker: critical chain LFC", test_lfc_fragment_cut);
    ]
