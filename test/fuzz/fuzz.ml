(* Extended randomized campaign — a heavier hammer than `dune runtest`.

   Every trial draws a random topology, parameters and adversary, runs an
   AGG+VERI pair and a full Algorithm 1 execution, and checks every
   guarantee the paper states plus the structural §4.3 representative-set
   property.  Run with a trial count (default 200):

     dune exec test/fuzz/fuzz.exe -- 2000

   Exits non-zero and prints a reproducer line on the first violation. *)

open Ftagg

type violation = {
  what : string;
  repro : string;
}

exception Violation of violation

let check ~repro what ok = if not ok then raise (Violation { what; repro })

let families = [| Gen.Path; Gen.Ring; Gen.Grid; Gen.Star; Gen.Binary_tree;
                  Gen.Complete; Gen.Random 0.05; Gen.Random 0.15; Gen.Caterpillar;
                  Gen.Lollipop; Gen.Torus; Gen.Random_regular 4 |]

let adversary rng graph ~budget ~window =
  let n = Graph.n graph in
  match Prng.int rng 5 with
  | 0 -> Failure.none ~n
  | 1 -> Failure.random graph ~rng ~budget ~max_round:window
  | 2 -> Failure.burst graph ~rng ~budget ~round:(1 + Prng.int rng window)
  | 3 ->
    Failure.chain ~n ~first:1
      ~len:(1 + Prng.int rng (max 1 (min budget (n - 3))))
      ~round:(1 + Prng.int rng window)
  | _ -> Failure.high_degree graph ~budget ~round:(1 + Prng.int rng window)

let trial rng i =
  let fam = families.(Prng.int rng (Array.length families)) in
  let n = 10 + Prng.int rng 40 in
  let n = if fam = Gen.Torus then max n 12 else n in
  let seed = Prng.int rng 1_000_000 in
  let graph = Gen.build fam ~n ~seed in
  let t = Prng.int rng 6 in
  let inputs = Array.init n (fun k -> (k * 7 mod 50) + 1) in
  let params = Params.make ~c:2 ~t ~graph ~inputs () in
  let budget = Prng.int rng 14 in
  let pair_window = Pair.duration params in
  let failures = adversary rng graph ~budget ~window:pair_window in
  let repro =
    Printf.sprintf "trial %d: family=%s n=%d seed=%d t=%d budget=%d failures=[%s]" i
      (Gen.family_name fam) n seed t budget
      (Format.asprintf "%a" Failure.pp failures)
  in
  (* --- the pair: Table 2 + budgets + representative set --- *)
  let o = Run.pair ~graph ~failures ~params ~seed () in
  let cap =
    Params.agg_bit_budget params + Params.veri_bit_budget params
    + Message.bits params Message.Agg_abort
    + Message.bits params Message.Veri_overflow
  in
  check ~repro "pair CC within combined budgets" (Metrics.cc o.Run.common.Run.metrics <= cap);
  (if o.Run.edge_failures <= t then begin
     check ~repro "scenario1: no abort"
       (match o.Run.verdict.Pair.result with Agg.Value _ -> true | Agg.Aborted -> false);
     check ~repro "scenario1: correct" o.Run.common.Run.correct;
     check ~repro "scenario1: VERI true" o.Run.verdict.Pair.veri_ok
   end
   else if not o.Run.lfc then check ~repro "scenario2: correct-or-abort" o.Run.common.Run.correct
   else check ~repro "scenario3: VERI false" (not o.Run.verdict.Pair.veri_ok));
  (match o.Run.verdict.Pair.result with
  | Agg.Aborted -> ()
  | Agg.Value _ ->
    let selected = Agg.selected_sources o.Run.trace.Checker.agg_nodes.(Graph.root) in
    let r =
      Checker.representative_set o.Run.trace ~selected ~end_round:o.Run.common.Run.rounds
    in
    check ~repro "partial sums match schedule recomputation" r.Checker.psums_match;
    if o.Run.verdict.Pair.veri_ok then begin
      check ~repro "representative: disjoint" r.Checker.disjoint;
      check ~repro "representative: covers survivors" r.Checker.covers_alive
    end);
  (* --- Algorithm 1: Theorem 1 end to end --- *)
  let b = 63 + (21 * Prng.int rng 6) in
  let f = max budget 1 in
  let failures2 =
    adversary rng graph ~budget ~window:(b * params.Params.d)
  in
  let o2 = Run.tradeoff ~graph ~failures:failures2 ~params ~b ~f ~seed:(seed + 1) () in
  check ~repro "Theorem 1: correct" o2.Run.common.Run.correct;
  check ~repro "Theorem 1: TC <= b" (o2.Run.common.Run.flooding_rounds <= b)

let () =
  let trials =
    match Sys.argv with
    | [| _; k |] -> int_of_string k
    | _ -> 200
  in
  let rng = Prng.create 20260704 in
  (try
     for i = 1 to trials do
       trial rng i;
       if i mod 100 = 0 then Printf.printf "… %d/%d trials clean\n%!" i trials
     done
   with Violation v ->
     Printf.eprintf "VIOLATION: %s\n  %s\n" v.what v.repro;
     exit 1);
  Printf.printf "fuzz: %d trials, every guarantee held\n" trials
