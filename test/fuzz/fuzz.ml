(* Extended randomized campaign — a heavier hammer than `dune runtest`.

   Every trial draws a random topology, parameters and adversary
   (oblivious schedules and adaptive, traffic-watching ones alike), runs
   a watchdog-instrumented AGG+VERI pair plus a full Algorithm 1
   execution, and checks every guarantee the paper states while the run
   executes (Table 2, bit budgets, activation discipline, §4.3
   representative sets, Theorem 1).  Run with a trial count (default
   200):

     dune exec test/fuzz/fuzz.exe -- 2000

   A violating trial does not stop the scan: the scenario is shrunk to a
   minimal reproducer (crashes dropped and delayed, the system size
   reduced) and recorded; scanning continues so one bug cannot mask
   another.  At the end every distinct violated invariant is reported
   with its minimized scenario, and the exit status is non-zero if there
   was any. *)

open Ftagg

let families = [| Gen.Path; Gen.Ring; Gen.Grid; Gen.Star; Gen.Binary_tree;
                  Gen.Complete; Gen.Random 0.05; Gen.Random 0.15; Gen.Caterpillar;
                  Gen.Lollipop; Gen.Torus; Gen.Random_regular 4 |]

(* The library's oblivious/adaptive mix, plus the chain schedule (the
   paper's long-failure-chain construction) the library set omits. *)
let chain_adversary =
  Adversary.Oblivious
    ( "oblivious:chain",
      fun g ~rng ~budget ~window ->
        let n = Graph.n g in
        Failure.chain ~n ~first:1
          ~len:(1 + Prng.int rng (max 1 (min budget (n - 3))))
          ~round:(1 + Prng.int rng window) )

let adversaries = Array.of_list (chain_adversary :: Adversary.all)

type found = {
  mutable incidents : (string * Incident.t) list;  (* distinct, newest first *)
  mutable violating_trials : int;
}

let record found ~adversary ~trial (sc : Incident.scenario) (v : Engine.violation) =
  found.violating_trials <- found.violating_trials + 1;
  if not (List.mem_assoc v.Engine.invariant found.incidents) then begin
    Printf.printf "trial %d: NEW violation %s at round %d — shrinking…\n%!" trial
      v.Engine.invariant v.Engine.at_round;
    let inc = Campaign.to_incident ~adversary sc v in
    found.incidents <- (v.Engine.invariant, inc) :: found.incidents
  end

let trial rng found i =
  let fam = families.(Prng.int rng (Array.length families)) in
  let n = 10 + Prng.int rng 40 in
  let n = if fam = Gen.Torus then max n 12 else n in
  let topo_seed = Prng.int rng 1_000_000 in
  let t = Prng.int rng 6 in
  let budget = Prng.int rng 14 in
  let run_seed = Prng.int rng 1_000_000 in
  let sc =
    {
      Incident.family = fam;
      n;
      topo_seed;
      run_seed;
      c = 2;
      t;
      inputs = Array.init n (fun k -> (k * 7 mod 50) + 1);
      schedule = [];
      faults = Engine.no_faults;
      kind = Incident.Pair_run;
      bit_cap = None;
    }
  in
  let graph = Campaign.graph_of sc in
  let params = Campaign.params_of sc graph in
  (* --- the pair, under a live watchdog: Table 2, bit budgets,
     activation discipline, representative sets --- *)
  let adversary = adversaries.(Prng.int rng (Array.length adversaries)) in
  let base, online =
    Adversary.instantiate adversary graph ~rng ~budget ~window:(Pair.duration params)
  in
  let sc = { sc with Incident.schedule = Failure.to_list base } in
  let report = Campaign.run_pair ?online sc in
  (match report.Campaign.violation with
  | None -> ()
  | Some v -> record found ~adversary:(Adversary.name adversary) ~trial:i report.Campaign.scenario v);
  (* --- Algorithm 1: Theorem 1 end to end (oblivious schedules — the
     tradeoff path goes through the hot engine) --- *)
  let b = 63 + (21 * Prng.int rng 6) in
  let f = max budget 1 in
  let adversary2 =
    adversaries.(Prng.int rng (Array.length adversaries))
  in
  let base2, _online2 =
    Adversary.instantiate adversary2 graph ~rng ~budget ~window:(b * params.Params.d)
  in
  let sc2 =
    {
      sc with
      Incident.schedule = Failure.to_list base2;
      run_seed = run_seed + 1;
      kind = Incident.Tradeoff_run { b; f };
    }
  in
  match Campaign.check sc2 with
  | None -> ()
  | Some v -> record found ~adversary:(Adversary.name adversary2) ~trial:i sc2 v

let () =
  let trials =
    match Sys.argv with
    | [| _; k |] -> int_of_string k
    | _ -> 200
  in
  let rng = Prng.create 20260704 in
  let found = { incidents = []; violating_trials = 0 } in
  for i = 1 to trials do
    trial rng found i;
    if i mod 100 = 0 then Printf.printf "… %d/%d trials scanned\n%!" i trials
  done;
  match found.incidents with
  | [] -> Printf.printf "fuzz: %d trials, every guarantee held\n" trials
  | incidents ->
    Printf.eprintf "fuzz: %d trials, %d violating, %d distinct invariant(s) broken:\n" trials
      found.violating_trials (List.length incidents);
    List.iter
      (fun (invariant, (inc : Incident.t)) ->
        Format.eprintf "  %s at round %d (found by %s)@\n    minimized: %a@\n    detail: %s@\n"
          invariant inc.Incident.violation.Engine.at_round inc.Incident.adversary
          Incident.pp_scenario inc.Incident.scenario inc.Incident.violation.Engine.detail)
      (List.rev incidents);
    exit 1
