(* AGG (§4): Theorems 3–5 exercised on concrete and randomized runs. *)

open Ftagg
open Helpers

let run_agg ?(c = 2) ?t ?caaf graph ~failures ~seed =
  let n = Graph.n graph in
  let inputs = default_inputs n in
  let t = Option.value t ~default:3 in
  let params = params_of ~c ~t ?caaf graph ~inputs in
  (Run.agg ~graph ~failures ~params ~seed (), params)

let test_failure_free_exact () =
  List.iter
    (fun (name, g) ->
      let n = Graph.n g in
      let o, _ = run_agg g ~failures:(Failure.none ~n) ~seed:1 in
      match o.Run.result with
      | Agg.Value v -> check_int (name ^ ": exact sum") (total (default_inputs n)) v
      | Agg.Aborted -> Alcotest.fail (name ^ ": aborted without failures"))
    (Lazy.force sweep_graphs)

let test_failure_free_all_caafs () =
  let g = Gen.grid 25 in
  let inputs = Array.init 25 (fun i -> (i mod 2) * (i + 3) mod 97) in
  List.iter
    (fun (caaf : Caaf.t) ->
      let params = params_of ~t:2 ~caaf g ~inputs in
      let o = Run.agg ~graph:g ~failures:(Failure.none ~n:25) ~params ~seed:2 () in
      match o.Run.result with
      | Agg.Value v ->
        check_int
          (caaf.Caaf.name ^ ": matches reference fold")
          (Caaf.aggregate caaf (Array.to_list inputs))
          v
      | Agg.Aborted -> Alcotest.fail (caaf.Caaf.name ^ ": aborted"))
    Instances.all

let test_theorem3_time_bound () =
  (* TC of AGG is 7cd+4 rounds <= 11c flooding rounds. *)
  List.iter
    (fun (name, g) ->
      let n = Graph.n g in
      let o, params = run_agg g ~failures:(Failure.none ~n) ~seed:3 in
      let c = params.Params.c in
      check_true (name ^ ": rounds = 7cd+4")
        (o.Run.common.Run.rounds = (7 * Params.cd params) + 4);
      check_true (name ^ ": <= 11c flooding rounds") (o.Run.common.Run.flooding_rounds <= 11 * c))
    (Lazy.force sweep_graphs)

let test_theorem3_bit_budget () =
  (* No node ever exceeds the (11t+14)(logN+5) threshold by more than the
     final abort symbol, under any of our adversaries. *)
  List.iter
    (fun (name, g) ->
      let n = Graph.n g in
      List.iter
        (fun t ->
          let rng = Prng.create (t + 7) in
          let failures = Failure.random g ~rng ~budget:(2 * t) ~max_round:200 in
          let inputs = default_inputs n in
          let params = params_of ~t g ~inputs in
          let o = Run.agg ~graph:g ~failures ~params ~seed:t () in
          let budget = Params.agg_bit_budget params in
          let abort_width = Message.bits params Message.Agg_abort in
          for u = 0 to n - 1 do
            check_true
              (Printf.sprintf "%s t=%d node %d within budget" name t u)
              (Metrics.bits_sent o.Run.common.Run.metrics u <= budget + abort_width)
          done)
        [ 0; 1; 4 ])
    (Lazy.force sweep_graphs)

let test_theorem4_tolerates_t_failures () =
  (* With at most t edge failures AGG never aborts and is correct. *)
  let seeds = [ 1; 2; 3; 4; 5; 6; 7; 8 ] in
  List.iter
    (fun (name, g) ->
      let n = Graph.n g in
      List.iter
        (fun seed ->
          let t = 5 in
          let rng = Prng.create (seed * 31) in
          let failures = Failure.random g ~rng ~budget:t ~max_round:250 in
          let inputs = default_inputs n in
          let params = params_of ~t g ~inputs in
          let o = Run.agg ~graph:g ~failures ~params ~seed () in
          (* Theorem 4's hypothesis is on the model's edge-failure count,
             which also charges the edges of disconnected nodes. *)
          let ef =
            Checker.model_edge_failures ~graph:g ~failures ~round:o.Run.common.Run.rounds
          in
          if ef <= t then begin
            check_true (name ^ ": no abort with <= t failures")
              (match o.Run.result with Agg.Value _ -> true | Agg.Aborted -> false);
            check_true (name ^ ": correct with <= t failures") o.Run.common.Run.correct
          end)
        seeds)
    (Lazy.force sweep_graphs)

let test_theorem5_no_lfc_correct_or_abort () =
  (* Kill whole subtrees (no live local descendants => no LFC): AGG must
     stay correct or abort even when failures exceed t. *)
  let g = Gen.ring 24 in
  let n = 24 in
  (* On a ring's BFS tree, the deepest nodes are around the antipode.
     Killing a contiguous arc ending at the antipode leaves no live
     descendants below it. *)
  let failures = Failure.kill_nodes ~n ~nodes:[ 9; 10; 11; 12 ] ~round:60 in
  let o, params = run_agg g ~t:1 ~failures ~seed:4 in
  let trace = o.Run.trace in
  let lfc = Checker.has_lfc trace ~veri_end:(Agg.duration params) in
  if not lfc then
    check_true "no-LFC run is correct or aborted" o.Run.common.Run.correct

let test_critical_failure_detection () =
  (* A node killed between ack and action must be flagged as a critical
     failure by the ground-truth checker, and its parent floods it. *)
  let g = Gen.path 8 in
  let n = 8 in
  let params = params_of ~t:2 g ~inputs:(default_inputs n) in
  let cd = Params.cd params in
  (* node 3 (level 3) acks at round 6; its action is at 3cd+2-3; kill in
     between *)
  let failures = Failure.kill_nodes ~n ~nodes:[ 3 ] ~round:(cd + 5) in
  let o = Run.agg ~graph:g ~failures ~params ~seed:5 () in
  let crits = Checker.critical_failures o.Run.trace in
  check_true "checker flags node 3" (List.mem 3 crits);
  (* the parent (node 2) floods the critical failure, so the root sees it *)
  check_true "root saw the critical failure"
    (List.mem 3 (Agg.crit_seen o.Run.trace.Checker.agg_nodes.(0)))

let test_blocked_psum_recovered_by_speculation () =
  (* Figure 3's point: node B dies right before it would flood, its
     children's speculative floods save the day. *)
  let g = Gen.ring 20 in
  let n = 20 in
  let params = params_of ~t:4 g ~inputs:(default_inputs n) in
  let cd = Params.cd params in
  (* kill node 2 just at the start of the speculative flooding phase: its
     psum (covering the whole arm 2..10ish) is blocked and lost *)
  let failures = Failure.kill_nodes ~n ~nodes:[ 2 ] ~round:((4 * cd) + 3) in
  let o = Run.agg ~graph:g ~failures ~params ~seed:6 () in
  check_true "speculation recovers the arm" o.Run.common.Run.correct;
  match o.Run.result with
  | Agg.Value v ->
    (* everything except possibly node 2's own input must be included *)
    check_true "only the dead node may be missing" (v >= total (default_inputs n) - 3)
  | Agg.Aborted -> Alcotest.fail "unexpected abort"

(* Shared scenario for the §4.3 ablation: a clean aggregation, then node 1
   dies at the start of the speculative-flooding phase, before forwarding
   the root's flood; its child (node 2) therefore speculatively floods the
   whole arm's partial sum, which overlaps the root's full partial sum. *)
let overlap_scenario () =
  let g = Gen.ring 20 in
  let n = 20 in
  let params = params_of ~t:4 g ~inputs:(default_inputs n) in
  let cd = Params.cd params in
  let failures = Failure.kill_nodes ~n ~nodes:[ 1 ] ~round:((4 * cd) + 3) in
  (g, n, params, failures)

let test_ablation_no_witnesses_double_counts () =
  (* Without the witness/domination analysis the root sums both its own
     full partial sum and node 2's overlapping arm. *)
  let g, n, params, failures = overlap_scenario () in
  let o = Run.agg ~ablation:Agg.No_witnesses ~graph:g ~failures ~params ~seed:7 () in
  (match o.Run.result with
  | Agg.Value v -> check_true "ablated AGG double counts" (v > total (default_inputs n))
  | Agg.Aborted -> Alcotest.fail "unexpected abort");
  (* The full protocol labels the overlapping sum dominated and stays
     exact on the identical schedule. *)
  let o = Run.agg ~graph:g ~failures ~params ~seed:7 () in
  match o.Run.result with
  | Agg.Value v -> check_int "full protocol stays exact" (total (default_inputs n)) v
  | Agg.Aborted -> Alcotest.fail "unexpected abort"

let test_ablation_no_speculation_loses_inputs () =
  (* The wait-and-see variant: node 1 dies mid-aggregation (blocking the
     arm's partial sum from the root), then node 2 is killed just before
     its delayed flood.  Node 3 has by then heard a forwarded flood from
     its parent (around the ring), so under wait-and-see nobody floods
     the blocked arm, and the live inputs of nodes 3..10 are lost.  The
     full protocol floods speculatively at phase round level+1 and stays
     correct. *)
  let g = Gen.ring 20 in
  let n = 20 in
  let inputs = default_inputs n in
  let params = params_of ~t:4 g ~inputs in
  let cd = Params.cd params in
  let spec_base = (4 * cd) + 2 in
  let failures =
    Failure.of_list ~n [ (1, (2 * cd) + 1 + 9); (2, spec_base + 2 + 1 + cd - 1) ]
  in
  let check_correct (o : Run.agg_outcome) =
    match o.Run.result with
    | Agg.Value v ->
      Checker.result_correct ~graph:g ~failures ~end_round:o.Run.common.Run.rounds ~params v
    | Agg.Aborted -> true
  in
  let ablated = Run.agg ~ablation:Agg.No_speculation ~graph:g ~failures ~params ~seed:8 () in
  check_true "wait-and-see loses live inputs" (not (check_correct ablated));
  let full = Run.agg ~graph:g ~failures ~params ~seed:8 () in
  check_true "full protocol correct on the same schedule" (check_correct full)

let test_abort_under_overwhelming_failures () =
  (* t = 0 gives a tiny byte budget; a massive mid-run burst triggers the
     flooding cascade that crosses it, and the abort symbol must reach the
     root (or the run must still be correct). *)
  let aborted = ref 0 in
  List.iter
    (fun seed ->
      let n = 36 in
      let g = Gen.grid n in
      let params = params_of ~t:0 g ~inputs:(default_inputs n) in
      let cd = Params.cd params in
      let failures =
        Failure.burst g ~rng:(Prng.create seed) ~budget:20 ~round:((2 * cd) + 5)
      in
      let o = Run.agg ~graph:g ~failures ~params ~seed () in
      (match o.Run.result with
      | Agg.Aborted -> incr aborted
      | Agg.Value _ -> ());
      (* either way, every node's bits stay within threshold + symbol *)
      let cap = Params.agg_bit_budget params + Message.bits params Message.Agg_abort in
      for u = 0 to n - 1 do
        check_true "bits capped" (Metrics.bits_sent o.Run.common.Run.metrics u <= cap)
      done)
    [ 1; 2; 3; 4; 5; 6 ];
  check_true "the abort path fired at least once" (!aborted >= 1)

let test_tradeoff_recovers_from_aborting_interval () =
  (* same burst inside Algorithm 1: the pair aborts or is rejected, and
     the protocol still ends with a correct value *)
  let n = 36 in
  let g = Gen.grid n in
  let params = params_of g ~inputs:(default_inputs n) in
  let cd = Params.cd params in
  List.iter
    (fun seed ->
      let failures =
        Failure.burst g ~rng:(Prng.create seed) ~budget:20 ~round:((2 * cd) + 5)
      in
      (* declare a tiny f so the per-interval t is small *)
      let o = Run.tradeoff ~graph:g ~failures ~params ~b:168 ~f:1 ~seed () in
      check_true "correct despite aborting interval" o.Run.common.Run.correct)
    [ 1; 2; 3 ]

let qcheck_tests =
  let open QCheck in
  [
    Test.make ~name:"Theorem 4: <= t edge failures => no abort and correct (random graphs)"
      ~count:40
      (triple (int_range 10 40) (int_range 0 6) small_int)
      (fun (n, t, seed) ->
        let g = Topo.random_connected ~n ~p:0.1 ~seed in
        let failures =
          Failure.random g ~rng:(Prng.create (seed + 1)) ~budget:t ~max_round:300
        in
        let params = params_of ~t g ~inputs:(default_inputs n) in
        let o = Run.agg ~graph:g ~failures ~params ~seed () in
        let ef =
          Checker.model_edge_failures ~graph:g ~failures ~round:o.Run.common.Run.rounds
        in
        ef > t
        ||
        match o.Run.result with
        | Agg.Value _ -> o.Run.common.Run.correct
        | Agg.Aborted -> false);
    Test.make
      ~name:"Theorem 5: no LFC => correct or abort (adversarial bursts, random graphs)"
      ~count:40
      (triple (int_range 10 36) (int_range 2 5) small_int)
      (fun (n, t, seed) ->
        let g = Topo.random_connected ~n ~p:0.08 ~seed in
        let params = params_of ~t g ~inputs:(default_inputs n) in
        let failures =
          Failure.burst g
            ~rng:(Prng.create (seed + 2))
            ~budget:(3 * t)
            ~round:(1 + (seed mod (Agg.duration params)))
        in
        let o = Run.agg ~graph:g ~failures ~params ~seed () in
        let lfc = Checker.has_lfc o.Run.trace ~veri_end:(Agg.duration params) in
        lfc
        ||
        match o.Run.result with
        | Agg.Value _ -> o.Run.common.Run.correct
        | Agg.Aborted -> true);
  ]

let suite =
  List.map
    (fun (n, f) -> Alcotest.test_case n `Quick f)
    [
      ("agg: failure-free exact on every family", test_failure_free_exact);
      ("agg: all CAAF instances", test_failure_free_all_caafs);
      ("agg: Theorem 3 time bound", test_theorem3_time_bound);
      ("agg: Theorem 3 bit budget", test_theorem3_bit_budget);
      ("agg: Theorem 4 tolerance", test_theorem4_tolerates_t_failures);
      ("agg: Theorem 5 no-LFC", test_theorem5_no_lfc_correct_or_abort);
      ("agg: critical failure detection", test_critical_failure_detection);
      ("agg: speculation recovers blocked sums", test_blocked_psum_recovered_by_speculation);
      ("agg: ablation no-witnesses double counts", test_ablation_no_witnesses_double_counts);
      ("agg: ablation no-speculation loses inputs", test_ablation_no_speculation_loses_inputs);
      ("agg: abort path under overwhelming failures", test_abort_under_overwhelming_failures);
      ("agg: Algorithm 1 recovers from aborts", test_tradeoff_recovers_from_aborting_interval);
    ]
  @ List.map QCheck_alcotest.to_alcotest qcheck_tests
