(* Tests for lib/fleet: consistent-hash routing and the fan-out client.

   The load-bearing properties:

   - the ring is deterministic from (endpoints, vnodes, seed) — every
     fleet member computes the same placement with no coordination —
     and spreads keys over all members;
   - the router's preference list starts at the owner, walks distinct
     ring successors, and pushes down endpoints to the back without
     ever dropping them;
   - the fan-out client completes a workload across several live
     servers, reports per-endpoint attribution, and when an endpoint is
     dead its jobs fail over to ring successors — with zero failed
     requests as long as one member survives;
   - a fleet sharing one store directory reuses each other's
     executions: a workload replayed against a fresh server on the same
     store comes back entirely from cache. *)

open Ftagg
open Helpers
module Listener = Transport.Listener
module Server = Service.Server
module Reconfig = Service.Reconfig

let settings () =
  {
    Reconfig.default with
    Reconfig.queue_capacity = 64;
    cache_capacity = 64;
    tick_batch = 8;
    checkpoint_every = 0;
  }

let sock_counter = ref 0

let fresh_sock_path () =
  incr sock_counter;
  Filename.concat (Filename.get_temp_dir_name ())
    (Printf.sprintf "ftagg-fleet-%d-%d.sock" (Unix.getpid ()) !sock_counter)

let dir_counter = ref 0

let fresh_store_dir () =
  incr dir_counter;
  Filename.concat (Filename.get_temp_dir_name ())
    (Printf.sprintf "ftagg-fleet-store-%d-%d" (Unix.getpid ()) !dir_counter)

let rm_rf d =
  if Sys.file_exists d then begin
    Array.iter (fun f -> Sys.remove (Filename.concat d f)) (Sys.readdir d);
    Unix.rmdir d
  end

(* a small, fast job as submit-payload JSON, distinct per seed *)
let job ?(n = 16) seed =
  Result.get_ok
    (Bench_io.of_string
       (Printf.sprintf
          {|{"family":"grid","n":%d,"seed":%d,"tenant":"fleet","failures":"none"}|} n seed))

let retry = Transport.Client.retry ~attempts:2 ~backoff_ms:1 ~max_backoff_ms:2 ()

(* --- the ring --- *)

let test_ring_deterministic () =
  let eps = [ "unix:/a"; "unix:/b"; "unix:/c" ] in
  let r1 = Ring.create ~vnodes:64 ~seed:5 eps in
  let r2 = Ring.create ~vnodes:64 ~seed:5 eps in
  let keys = List.init 200 (fun i -> Printf.sprintf "%016x" (i * 7919)) in
  List.iter
    (fun k -> check_true "same triple, same owner" (Ring.owner r1 k = Ring.owner r2 k))
    keys;
  let r3 = Ring.create ~vnodes:64 ~seed:6 eps in
  check_true "a different seed moves at least one key"
    (List.exists (fun k -> Ring.owner r1 k <> Ring.owner r3 k) keys);
  check_true "members kept in first-occurrence order, deduped"
    (Ring.members (Ring.create [ "b"; "a"; "b" ]) = [ "b"; "a" ])

let test_ring_distribution () =
  let eps = [ "e1"; "e2"; "e3"; "e4" ] in
  let r = Ring.create eps in
  let counts = Hashtbl.create 4 in
  for i = 0 to 999 do
    let owner = Ring.owner r (Printf.sprintf "%016x" (i * 104729)) in
    Hashtbl.replace counts owner (1 + Option.value (Hashtbl.find_opt counts owner) ~default:0)
  done;
  List.iter
    (fun e ->
      let n = Option.value (Hashtbl.find_opt counts e) ~default:0 in
      check_true (Printf.sprintf "%s owns a nontrivial share (%d)" e n) (n > 50))
    eps

let test_ring_successors () =
  let eps = [ "e1"; "e2"; "e3" ] in
  let r = Ring.create eps in
  let key = "deadbeefcafef00d" in
  let succ = Ring.successors r key 3 in
  check_int "three distinct endpoints" 3 (List.length (List.sort_uniq compare succ));
  check_true "starts at the owner" (List.hd succ = Ring.owner r key);
  check_true "asking for more than exist caps at the fleet"
    (List.length (Ring.successors r key 10) = 3);
  Alcotest.check_raises "empty ring rejected" (Invalid_argument "Ring.create: no endpoints")
    (fun () -> ignore (Ring.create []))

(* --- the router --- *)

let test_router_failover_order () =
  let r = Ring.create [ "e1"; "e2"; "e3" ] in
  let router = Router.create r in
  let key = "0123456789abcdef" in
  let pref = Router.route router key in
  check_int "full preference list" 3 (List.length pref);
  check_true "route_up is the head" (Router.route_up router key = Some (List.hd pref));
  Router.mark_down router (List.hd pref);
  let pref2 = Router.route router key in
  check_true "down endpoint pushed to the back, not dropped"
    (List.length pref2 = 3 && List.nth pref2 2 = List.hd pref);
  check_true "route_up skips it" (Router.route_up router key = Some (List.hd pref2));
  check_int "one failover counted" 1 (Router.failovers router);
  Router.mark_down router (List.hd pref);
  check_int "re-marking the same endpoint counts once" 1 (Router.failovers router);
  List.iter (Router.mark_down router) (Router.endpoints router);
  check_true "all down: no route" (Router.route_up router key = None);
  Router.mark_up router "e2";
  check_true "mark_up restores routing" (Router.route_up router key = Some "e2")

(* --- the fan-out client, end to end --- *)

let with_fleet ?(count = 2) ?store_dir f =
  Registry.set_enabled true;
  let members =
    List.init count (fun i ->
        let path = fresh_sock_path () in
        let server =
          Server.create
            {
              Server.settings = settings ();
              checkpoint_path = None;
              store_dir;
              name = Printf.sprintf "fleet-%d" i;
            }
        in
        let t =
          Result.get_ok
            (Listener.create (Listener.config (Listener.Unix_sock path)) server)
        in
        (path, t))
  in
  let pump () = List.iter (fun (_, t) -> ignore (Listener.poll t)) members in
  Fun.protect
    ~finally:(fun () ->
      List.iter
        (fun (path, t) ->
          Listener.drain t;
          if Sys.file_exists path then Sys.remove path)
        members)
    (fun () -> f (List.map (fun (path, _) -> "unix:" ^ path) members) pump)

let test_fleet_completes_across_members () =
  with_fleet ~count:2 @@ fun endpoints pump ->
  let jobs = List.init 8 (fun i -> job (100 + i)) in
  let report = Result.get_ok (Fleet.run ~retry ~pump ~endpoints ~jobs ()) in
  check_int "every job answered" 8 report.Fleet.r_completed;
  check_int "none failed" 0 report.Fleet.r_failed;
  check_int "none errored" 0 report.Fleet.r_errors;
  check_int "one routing round" 1 report.Fleet.r_rounds;
  check_int "no failovers" 0 report.Fleet.r_failovers;
  check_int "attribution adds up" 8
    (List.fold_left (fun a (_, n) -> a + n) 0 report.Fleet.r_per_endpoint);
  check_int "completions in input order, one per job" 8 (List.length report.Fleet.r_completions);
  List.iteri
    (fun i (idx, item) ->
      check_int "index order" i idx;
      check_true "each completion has an outcome" (Bench_io.member "outcome" item <> None))
    report.Fleet.r_completions;
  (* the same workload again: every member answers from its cache *)
  let warm = Result.get_ok (Fleet.run ~retry ~pump ~endpoints ~jobs ()) in
  check_int "warm run all cached" 8 warm.Fleet.r_cached;
  check_true "warm cache hits visible in the merged report" (warm.Fleet.r_cache_hits >= 8)

let test_fleet_fails_over_dead_endpoint () =
  with_fleet ~count:2 @@ fun endpoints pump ->
  (* a third member that was never started: jobs routed to it must fail
     over to ring successors, not fail *)
  let dead = "unix:" ^ fresh_sock_path () in
  let endpoints = endpoints @ [ dead ] in
  let jobs = List.init 12 (fun i -> job (500 + i)) in
  let report = Result.get_ok (Fleet.run ~retry ~pump ~endpoints ~jobs ()) in
  check_int "every job answered despite the dead member" 12 report.Fleet.r_completed;
  check_int "zero failed" 0 report.Fleet.r_failed;
  check_true "the dead endpoint answered nothing"
    (not (List.mem_assoc dead report.Fleet.r_per_endpoint));
  (* with 64 vnodes over 3 members, 12 keys hit the dead one with
     overwhelming probability — so failover must have happened *)
  check_true "failover rounds ran" (report.Fleet.r_rounds > 1);
  check_true "failovers counted" (report.Fleet.r_failovers > 0)

let test_fleet_bad_job_is_refused_not_failed_over () =
  with_fleet ~count:1 @@ fun endpoints pump ->
  let bad = Result.get_ok (Bench_io.of_string {|{"family":"nope","n":16,"seed":1}|}) in
  let jobs = [ job 900; bad; job 901 ] in
  let report = Result.get_ok (Fleet.run ~retry ~pump ~endpoints ~jobs ()) in
  check_int "good jobs complete" 2 report.Fleet.r_completed;
  check_int "bad job is an error, not a retry loop" 1 report.Fleet.r_errors;
  check_int "one round suffices" 1 report.Fleet.r_rounds

let test_fleet_shared_store_warms_fresh_member () =
  let store_dir = fresh_store_dir () in
  Fun.protect ~finally:(fun () -> rm_rf store_dir) @@ fun () ->
  let jobs = List.init 6 (fun i -> job (700 + i)) in
  (* first fleet executes everything and appends to the shared store *)
  (with_fleet ~count:2 ~store_dir @@ fun endpoints pump ->
   let report = Result.get_ok (Fleet.run ~retry ~pump ~endpoints ~jobs ()) in
   check_int "cold run completes" 6 report.Fleet.r_completed;
   check_int "cold run executed, not cached" 0 report.Fleet.r_cached);
  (* a brand-new member on the same store: empty L1, warm L2 *)
  with_fleet ~count:1 ~store_dir @@ fun endpoints pump ->
  let report = Result.get_ok (Fleet.run ~retry ~pump ~endpoints ~jobs ()) in
  check_int "fresh member completes the replay" 6 report.Fleet.r_completed;
  check_int "entirely from the shared store" 6 report.Fleet.r_cached

let test_probe () =
  with_fleet ~count:1 @@ fun endpoints _pump ->
  let live = Result.get_ok (Listener.address_of_string (List.hd endpoints)) in
  check_true "probe finds the live listener" (Transport.Client.probe live);
  check_true "probe fails on a dead address"
    (not (Transport.Client.probe (Listener.Unix_sock (fresh_sock_path ()))))

let suite =
  [
    Alcotest.test_case "ring: deterministic placement" `Quick test_ring_deterministic;
    Alcotest.test_case "ring: keys spread over all members" `Quick test_ring_distribution;
    Alcotest.test_case "ring: distinct successors from the owner" `Quick test_ring_successors;
    Alcotest.test_case "router: failover preference order" `Quick test_router_failover_order;
    Alcotest.test_case "fleet: workload completes across members" `Quick
      test_fleet_completes_across_members;
    Alcotest.test_case "fleet: dead endpoint fails over, zero failed" `Quick
      test_fleet_fails_over_dead_endpoint;
    Alcotest.test_case "fleet: bad job refused up front" `Quick
      test_fleet_bad_job_is_refused_not_failed_over;
    Alcotest.test_case "fleet: shared store warms a fresh member" `Quick
      test_fleet_shared_store_warms_fresh_member;
    Alcotest.test_case "client: probe liveness check" `Quick test_probe;
  ]
