(* The backend interface (lib/proto/backend.ml): registry dispatch,
   differential pins of Run.exec against hand-driven runs, the unified
   Gossip.run against its deprecated legacy entry point, flow-updating's
   convergence and crash recovery, and the chaos harness (exec_chaos,
   campaigns over non-default backends, Backend_run incidents). *)

open Ftagg
open Helpers

(* --- registry --- *)

let test_registry () =
  let names = List.map fst Run.backends in
  List.iter
    (fun bk -> check_true (bk ^ " registered") (List.mem bk names))
    [ "agg"; "flood"; "folklore"; "pushsum"; "flowupdating"; "flowupdating-avg" ];
  List.iter
    (fun (bk, backend) -> check_true (bk ^ " keyed by its own name") (Backend.name backend = bk))
    Run.backends;
  check_true "lookup is case-insensitive"
    (match Run.backend_of_string "PushSum" with
    | Some b -> Backend.name b = "pushsum"
    | None -> false);
  check_true "unknown name rejected" (Run.backend_of_string "raft" = None);
  check_true "agg is exact" (Backend.exact (Option.get (Run.backend_of_string "agg")));
  check_true "pushsum is approximate"
    (not (Backend.exact (Option.get (Run.backend_of_string "pushsum"))))

(* --- Run.exec vs driving the backend by hand: identical outcomes --- *)

let test_exec_differential () =
  let n = 25 in
  let g = Gen.grid n in
  let inputs = default_inputs n in
  let params = Params.make ~c:2 ~t:2 ~graph:g ~inputs () in
  let failures = Failure.kill_nodes ~n ~nodes:[ 7; 13 ] ~round:9 in
  let b = 20 and f = 3 and seed = 5 in
  List.iter
    (fun (bk, backend) ->
      let via_exec = Run.exec ~backend ~graph:g ~failures ~params ~b ~f ~seed () in
      let by_hand =
        let module B = (val backend : Backend.S) in
        let states, metrics =
          Engine.run ~graph:g ~failures
            ~max_rounds:(B.max_rounds ~params ~b ~f)
            ~seed
            (B.protocol ~graph:g ~params ~b ~f)
        in
        B.finish ~graph:g ~failures ~params ~b ~f ~states ~metrics
      in
      check_true (bk ^ ": same result") (via_exec.Backend.result = by_hand.Backend.result);
      check_true (bk ^ ": same evidence") (via_exec.Backend.evidence = by_hand.Backend.evidence);
      check_true (bk ^ ": same correctness")
        (via_exec.Backend.common.Backend.correct = by_hand.Backend.common.Backend.correct);
      check_int (bk ^ ": same rounds") by_hand.Backend.common.Backend.rounds
        via_exec.Backend.common.Backend.rounds;
      check_int (bk ^ ": same CC")
        (Metrics.cc by_hand.Backend.common.Backend.metrics)
        (Metrics.cc via_exec.Backend.common.Backend.metrics))
    Run.backends

(* exec_chaos with every knob at its default is observationally the
   plain exec. *)
let test_exec_chaos_defaults_match_exec () =
  let n = 16 in
  let g = Gen.grid n in
  let params = Params.make ~graph:g ~inputs:(default_inputs n) () in
  let failures = Failure.none ~n in
  List.iter
    (fun (bk, backend) ->
      let plain = Run.exec ~backend ~graph:g ~failures ~params ~b:12 ~f:2 ~seed:3 () in
      let chaos = Run.exec_chaos ~backend ~graph:g ~failures ~params ~b:12 ~f:2 ~seed:3 () in
      check_true (bk ^ ": no violation") (chaos.Backend.c_violation = None);
      check_true (bk ^ ": completed") chaos.Backend.c_completed;
      check_true (bk ^ ": same result")
        (chaos.Backend.c_outcome.Backend.result = plain.Backend.result);
      check_int (bk ^ ": same CC")
        (Metrics.cc plain.Backend.common.Backend.metrics)
        (Metrics.cc chaos.Backend.c_outcome.Backend.common.Backend.metrics))
    Run.backends

(* every backend honours a planted bit cap *)
let test_exec_chaos_bit_cap_fires () =
  let n = 16 in
  let g = Gen.grid n in
  let params = Params.make ~graph:g ~inputs:(default_inputs n) () in
  let failures = Failure.none ~n in
  List.iter
    (fun (bk, backend) ->
      let c =
        Run.exec_chaos ~bit_cap:3 ~backend ~graph:g ~failures ~params ~b:12 ~f:2 ~seed:3 ()
      in
      match c.Backend.c_violation with
      | Some v ->
        check_true (bk ^ ": bit_budget invariant") (v.Engine.invariant = "bit_budget");
        check_true (bk ^ ": not completed") (not c.Backend.c_completed)
      | None -> Alcotest.failf "%s: a 3-bit cap did not fire" bk)
    Run.backends

(* --- the unified Gossip.run against the deprecated legacy record --- *)

let test_gossip_legacy_pin () =
  let n = 25 in
  let g = Gen.grid n in
  let inputs = default_inputs n in
  let params = Params.make ~graph:g ~inputs () in
  let failures = Failure.kill_nodes ~n ~nodes:[ 6; 12 ] ~round:20 in
  let o = Gossip.run ~graph:g ~failures ~params ~rounds:150 ~seed:4 () in
  let l =
    (Gossip.run_legacy [@alert "-deprecated"]) ~graph:g ~failures ~inputs ~rounds:150 ~seed:4
  in
  (match o.Backend.result with
  | Backend.Estimate { value; relative_error } ->
    check_true "same estimate" (value = l.Gossip.estimate);
    check_true "same relative error" (relative_error = l.Gossip.relative_error)
  | Backend.Exact _ -> Alcotest.fail "push-sum answered Exact");
  check_int "same CC" l.Gossip.cc (Metrics.cc o.Backend.common.Backend.metrics);
  check_int "same rounds" l.Gossip.rounds o.Backend.common.Backend.rounds

(* --- flow updating --- *)

let test_flow_updating_converges () =
  let n = 36 in
  let g = Gen.grid n in
  let inputs = default_inputs n in
  let params = Params.make ~graph:g ~inputs () in
  let o = Flow_updating.run ~graph:g ~failures:(Failure.none ~n) ~params ~rounds:400 ~seed:1 () in
  (match o.Backend.result with
  | Backend.Estimate { value; relative_error } ->
    check_true
      (Printf.sprintf "estimate %.3f near %d" value (total inputs))
      (relative_error < 1e-6)
  | Backend.Exact _ -> Alcotest.fail "flow updating answered Exact");
  check_true "correct under the interval checker" o.Backend.common.Backend.correct

(* At the fixed point the flow identity e_i = v_i − ΣF_i holds exactly
   and the estimates sum back to the total: nothing leaked. *)
let test_flow_updating_mass_conservation () =
  let n = 36 in
  let g = Gen.grid n in
  let inputs = default_inputs n in
  let params = Params.make ~graph:g ~inputs () in
  let states, _ =
    Flow_updating.run_states ~graph:g ~failures:(Failure.none ~n) ~params ~rounds:400 ~seed:1 ()
  in
  Array.iteri
    (fun u st ->
      let e = Flow_updating.node_estimate st in
      check_true
        (Printf.sprintf "node %d flow identity" u)
        (Float.abs (e -. (float_of_int inputs.(u) -. Flow_updating.node_net_flow st)) < 1e-9))
    states;
  let sum_est = Array.fold_left (fun acc st -> acc +. Flow_updating.node_estimate st) 0.0 states in
  check_true
    (Printf.sprintf "estimates sum to the total (%.6f vs %d)" sum_est (total inputs))
    (Float.abs (sum_est -. float_of_int (total inputs)) < 1e-4)

(* The contrast the backend exists for: under the same crash schedule,
   flow-updating's reset flows recover the routed mass while push-sum's
   destroyed mass leaves a permanent bias. *)
let test_flow_updating_crash_recovery_beats_pushsum () =
  let n = 36 in
  let g = Gen.grid n in
  let inputs = Array.make n 10 in
  let params = Params.make ~graph:g ~inputs () in
  let failures = Failure.kill_nodes ~n ~nodes:[ 5; 6; 7 ] ~round:5 in
  let rel o =
    match o.Backend.result with
    | Backend.Estimate { relative_error; _ } -> relative_error
    | Backend.Exact _ -> Alcotest.fail "expected an estimate"
  in
  let fu = rel (Flow_updating.run ~graph:g ~failures ~params ~rounds:400 ~seed:1 ()) in
  let ps = rel (Gossip.run ~graph:g ~failures ~params ~rounds:400 ~seed:1 ()) in
  check_true "some crash recovery kicked in" (fu < 0.01);
  check_true
    (Printf.sprintf "flow-updating %.4g strictly beats push-sum %.4g" fu ps)
    (fu < ps);
  (* dead links were actually declared: the crashed nodes' neighbours
     reset their flows *)
  let states, _ = Flow_updating.run_states ~graph:g ~failures ~params ~rounds:400 ~seed:1 () in
  let dead = Array.fold_left (fun acc st -> acc + Flow_updating.dead_links st) 0 states in
  check_true "dead links declared" (dead > 0)

(* avg backend reports the average, sum backend n times it *)
let test_flow_updating_modes_consistent () =
  let n = 16 in
  let g = Gen.grid n in
  let params = Params.make ~graph:g ~inputs:(default_inputs n) () in
  let failures = Failure.none ~n in
  let est backend =
    Backend.estimate_of (Run.exec ~backend ~graph:g ~failures ~params ~b:25 ~f:0 ~seed:2 ())
  in
  let s = est Flow_updating.backend and a = est Flow_updating.avg_backend in
  check_true "sum = n x avg" (Float.abs (s -. (float_of_int n *. a)) < 1e-6)

(* --- campaigns over a non-default backend --- *)

let test_campaign_backend_smoke () =
  let config =
    {
      Campaign.default_config with
      Campaign.trials = 3;
      seed = 11;
      max_n = 12;
      log = ignore;
      backend = "pushsum";
    }
  in
  let o = Campaign.run config in
  check_int "all trials ran" 3 o.Campaign.o_trials;
  check_int "none rejected" 0 o.Campaign.o_rejected_trials

let test_campaign_unknown_backend_rejected () =
  let config =
    { Campaign.default_config with Campaign.trials = 1; log = ignore; backend = "paxos" }
  in
  check_true "fails fast"
    (match Campaign.run config with
    | exception Invalid_argument _ -> true
    | _ -> false)

(* a planted cap fires identically through the campaign's backend path *)
let test_campaign_backend_planted_cap () =
  let config =
    {
      Campaign.default_config with
      Campaign.trials = 2;
      seed = 11;
      max_n = 12;
      bit_cap = Some 8;
      log = ignore;
      backend = "flowupdating";
    }
  in
  let o = Campaign.run config in
  check_true "planted cap caught" (o.Campaign.o_violating_trials > 0);
  List.iter
    (fun ((inc : Incident.t), _) ->
      check_true "bit_budget invariant" (inc.Incident.violation.Engine.invariant = "bit_budget");
      match inc.Incident.scenario.Incident.kind with
      | Incident.Backend_run { backend; _ } -> check_true "backend kind" (backend = "flowupdating")
      | _ -> Alcotest.fail "expected a Backend_run scenario")
    o.Campaign.o_incidents

(* --- Backend_run incidents roundtrip through JSON --- *)

let test_incident_backend_roundtrip () =
  let scenario =
    {
      Incident.family = Gen.Grid;
      n = 9;
      topo_seed = 3;
      run_seed = 4;
      c = 2;
      t = 1;
      inputs = Array.init 9 (fun i -> i);
      schedule = [ (2, 5) ];
      faults = Engine.no_faults;
      kind = Incident.Backend_run { backend = "pushsum"; b = 7; f = 2 };
      bit_cap = Some 12;
    }
  in
  let inc =
    {
      Incident.adversary = "test";
      scenario;
      violation = { Engine.at_round = 5; invariant = "bit_budget"; detail = "x" };
      shrink = None;
    }
  in
  match Incident.of_json (Incident.to_json inc) with
  | Error e -> Alcotest.fail e
  | Ok back ->
    check_true "kind survives"
      (back.Incident.scenario.Incident.kind
      = Incident.Backend_run { backend = "pushsum"; b = 7; f = 2 });
    check_true "everything survives" (back = inc)

let suite =
  [
    Alcotest.test_case "registry: names, lookup, exactness" `Quick test_registry;
    Alcotest.test_case "exec == hand-driven run, every backend" `Quick test_exec_differential;
    Alcotest.test_case "exec_chaos defaults == exec, every backend" `Quick
      test_exec_chaos_defaults_match_exec;
    Alcotest.test_case "planted bit cap fires, every backend" `Quick test_exec_chaos_bit_cap_fires;
    Alcotest.test_case "gossip unified run == legacy record" `Quick test_gossip_legacy_pin;
    Alcotest.test_case "flow updating converges failure-free" `Quick test_flow_updating_converges;
    Alcotest.test_case "flow updating conserves mass at the fixed point" `Quick
      test_flow_updating_mass_conservation;
    Alcotest.test_case "flow updating recovers from crashes, push-sum cannot" `Quick
      test_flow_updating_crash_recovery_beats_pushsum;
    Alcotest.test_case "flow updating sum/avg modes consistent" `Quick
      test_flow_updating_modes_consistent;
    Alcotest.test_case "campaign runs a non-default backend" `Quick test_campaign_backend_smoke;
    Alcotest.test_case "campaign rejects an unknown backend" `Quick
      test_campaign_unknown_backend_rejected;
    Alcotest.test_case "campaign catches a planted cap via Backend_run" `Quick
      test_campaign_backend_planted_cap;
    Alcotest.test_case "Backend_run incident JSON roundtrip" `Quick
      test_incident_backend_roundtrip;
  ]
