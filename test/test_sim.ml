(* Tests for ftagg_sim: Failure schedules, Metrics, and the Engine's
   delivery/crash semantics. *)

open Ftagg
open Helpers

(* --- Failure schedules --- *)

let test_failure_none () =
  let t = Failure.none ~n:5 in
  check_true "no crashes" (Failure.crashed_nodes t = []);
  check_int "edge failures 0" 0 (Failure.edge_failures (Gen.path 5) t)

let test_failure_of_list () =
  let t = Failure.of_list ~n:5 [ (2, 10); (3, 4) ] in
  check_int "crash round 2" 10 (Failure.crash_round t 2);
  check_true "alive before" (Failure.is_alive t ~node:2 ~round:9);
  check_true "dead at crash round" (not (Failure.is_alive t ~node:2 ~round:10));
  check_true "crashed_by" (Failure.crashed_by t ~round:5 = [ 3 ])

let test_failure_rejects_root () =
  Alcotest.check_raises "root cannot crash"
    (Invalid_argument "Failure.of_list: node out of range or root") (fun () ->
      ignore (Failure.of_list ~n:5 [ (0, 1) ]))

let test_failure_earliest_round_wins () =
  let t = Failure.of_list ~n:5 [ (2, 10); (2, 4) ] in
  check_int "min round kept" 4 (Failure.crash_round t 2)

let test_edge_failures_counting () =
  let g = Gen.star 6 in
  (* killing one leaf of a star fails exactly 1 edge *)
  let t = Failure.of_list ~n:6 [ (3, 1) ] in
  check_int "one leaf" 1 (Failure.edge_failures g t);
  (* two leaves: 2 edges *)
  let t = Failure.of_list ~n:6 [ (3, 1); (4, 2) ] in
  check_int "two leaves" 2 (Failure.edge_failures g t)

let test_edge_failures_window () =
  let g = Gen.path 6 in
  let t = Failure.of_list ~n:6 [ (2, 5); (4, 50) ] in
  check_int "early window" 2 (Failure.edge_failures_in_window g t ~first:1 ~last:10);
  check_int "late window" 2 (Failure.edge_failures_in_window g t ~first:11 ~last:100);
  check_int "whole window" 4 (Failure.edge_failures_in_window g t ~first:1 ~last:100)

let test_random_respects_budget () =
  List.iter
    (fun (name, g) ->
      List.iter
        (fun budget ->
          let t = Failure.random g ~rng:(Prng.create 3) ~budget ~max_round:50 in
          let ef = Failure.edge_failures g t in
          check_true
            (Printf.sprintf "%s budget %d: got %d" name budget ef)
            (ef <= budget))
        [ 0; 1; 3; 8 ])
    (Lazy.force sweep_graphs)

let test_burst_single_round () =
  let g = Gen.grid 25 in
  let t = Failure.burst g ~rng:(Prng.create 4) ~budget:6 ~round:17 in
  List.iter
    (fun u -> check_int "burst round" 17 (Failure.crash_round t u))
    (Failure.crashed_nodes t)

let test_chain_schedule () =
  let t = Failure.chain ~n:10 ~first:2 ~len:3 ~round:9 in
  check_true "chain nodes" (Failure.crashed_nodes t = [ 2; 3; 4 ]);
  check_int "chain round" 9 (Failure.crash_round t 3)

let test_neighborhood_excludes_root () =
  let g = Gen.star 8 in
  let t = Failure.neighborhood g ~center:3 ~round:5 in
  (* 3's neighbourhood is {0 (root), 3}; the root must survive *)
  check_true "root survives" (Failure.crash_round t 0 = Failure.never);
  check_true "center dies" (Failure.crash_round t 3 = 5)

let test_shift () =
  let t = Failure.of_list ~n:4 [ (1, 10); (2, 3) ] in
  let s = Failure.shift t ~by:5 in
  check_int "shifted" 5 (Failure.crash_round s 1);
  check_int "clamped at 1" 1 (Failure.crash_round s 2);
  check_true "never stays never" (Failure.crash_round s 3 = Failure.never)

(* --- Metrics --- *)

let test_metrics_accounting () =
  let m = Metrics.create 3 in
  Metrics.charge m ~node:0 ~bits:10;
  Metrics.charge m ~node:0 ~bits:5;
  Metrics.charge m ~node:1 ~bits:7;
  Metrics.charge m ~node:2 ~bits:0;
  check_int "bits node 0" 15 (Metrics.bits_sent m 0);
  check_int "msgs node 0" 2 (Metrics.msgs_sent m 0);
  check_int "zero-bit send not a message" 0 (Metrics.msgs_sent m 2);
  check_int "cc is max" 15 (Metrics.cc m);
  check_int "total" 22 (Metrics.total_bits m)

let test_metrics_merge () =
  let a = Metrics.create 2 and b = Metrics.create 2 in
  Metrics.charge a ~node:0 ~bits:3;
  Metrics.note_round a 10;
  Metrics.charge b ~node:0 ~bits:4;
  Metrics.note_round b 7;
  Metrics.merge_into a b;
  check_int "merged bits" 7 (Metrics.bits_sent a 0);
  check_int "merged rounds add" 17 (Metrics.rounds a)

(* Sequential composition: the merged accounting of two sub-runs must
   read exactly as if one run had done both — per-node bits, message
   counts, rounds, and the derived cc/total. *)
let test_metrics_merge_sequential () =
  let a = Metrics.create 3 and b = Metrics.create 3 in
  Metrics.charge a ~node:0 ~bits:10;
  Metrics.charge a ~node:1 ~bits:2;
  Metrics.note_round a 5;
  Metrics.charge b ~node:1 ~bits:9;
  Metrics.charge b ~node:2 ~bits:4;
  Metrics.charge b ~node:1 ~bits:1;
  Metrics.note_round b 3;
  Metrics.merge_into a b;
  check_int "node 0 bits" 10 (Metrics.bits_sent a 0);
  check_int "node 1 bits accumulate" 12 (Metrics.bits_sent a 1);
  check_int "node 2 bits" 4 (Metrics.bits_sent a 2);
  check_int "node 1 msgs accumulate" 3 (Metrics.msgs_sent a 1);
  check_int "rounds add" 8 (Metrics.rounds a);
  check_int "cc recomputed over merged bits" 12 (Metrics.cc a);
  check_int "total is sum of both runs" 26 (Metrics.total_bits a)

(* --- Trace recorder --- *)

let test_trace_keep_silent () =
  let record keep_silent =
    let tr = Trace.create ~keep_silent () in
    Trace.observer tr ~round:1 ~node:0 [ "a" ];
    Trace.observer tr ~round:1 ~node:1 [];
    Trace.observer tr ~round:2 ~node:0 [];
    Trace.observer tr ~round:2 ~node:1 [ "b"; "c" ];
    tr
  in
  let noisy = record true and quiet = record false in
  check_int "keep_silent:true records every callback" 4 (Trace.length noisy);
  check_int "default drops silent rounds" 2 (Trace.length quiet);
  check_true "silent events kept verbatim"
    (List.exists (fun e -> e.Trace.payloads = []) (Trace.events noisy));
  check_true "no silent events in the quiet trace"
    (List.for_all (fun e -> e.Trace.payloads <> []) (Trace.events quiet))

let test_trace_per_node_views () =
  let tr = Trace.create ~keep_silent:true () in
  Trace.observer tr ~round:1 ~node:0 [ "x" ];
  Trace.observer tr ~round:2 ~node:1 [ "y" ];
  Trace.observer tr ~round:3 ~node:0 [];
  Trace.observer tr ~round:4 ~node:0 [ "z"; "w" ];
  let mine = Trace.broadcasts_of tr ~node:0 in
  check_int "broadcasts_of filters by node" 3 (List.length mine);
  check_true "broadcasts_of chronological"
    (List.map (fun e -> e.Trace.round) mine = [ 1; 3; 4 ]);
  check_true "rounds_active skips silent rounds"
    (Trace.rounds_active tr ~node:0 = [ 1; 4 ]);
  check_true "rounds_active other node" (Trace.rounds_active tr ~node:1 = [ 2 ])

(* --- Engine semantics --- *)

(* A probe protocol: every node broadcasts its id each round and records
   everything it hears as (round, sender) pairs. *)
type probe = { mutable heard : (int * int) list }

let probe_protocol ~n:_ ~bits =
  {
    Engine.name = "probe";
    init = (fun _ ~rng:_ -> { heard = [] });
    step =
      (fun ~round ~me ~state ~inbox ->
        List.iter (fun (s, _) -> state.heard <- (round, s) :: state.heard) inbox;
        (state, [ me ]));
    msg_bits = (fun _ -> bits);
    root_done = (fun _ -> false);
  }

let test_engine_delivery_next_round () =
  let g = Gen.path 3 in
  let states, _ =
    Engine.run ~graph:g ~failures:(Failure.none ~n:3) ~max_rounds:3 ~seed:0
      (probe_protocol ~n:3 ~bits:1)
  in
  (* node 1 hears node 0 and 2 starting at round 2 *)
  check_true "nothing in round 1" (not (List.mem (1, 0) states.(1).heard));
  check_true "delivery at round 2" (List.mem (2, 0) states.(1).heard);
  check_true "both neighbors" (List.mem (2, 2) states.(1).heard);
  (* non-neighbors never deliver *)
  check_true "no skip-hop delivery" (not (List.exists (fun (_, s) -> s = 2) states.(0).heard))

let test_engine_crash_stops_sending () =
  let g = Gen.path 3 in
  let failures = Failure.of_list ~n:3 [ (2, 2) ] in
  let states, _ =
    Engine.run ~graph:g ~failures ~max_rounds:5 ~seed:0 (probe_protocol ~n:3 ~bits:1)
  in
  (* node 2 sent in round 1 (delivered round 2) but not afterwards *)
  check_true "in-flight message delivered" (List.mem (2, 2) states.(1).heard);
  check_true "no post-crash sends"
    (not (List.exists (fun (r, s) -> s = 2 && r > 2) states.(1).heard))

let test_engine_crashed_receive_nothing () =
  let g = Gen.path 3 in
  let failures = Failure.of_list ~n:3 [ (2, 1) ] in
  let states, _ =
    Engine.run ~graph:g ~failures ~max_rounds:4 ~seed:0 (probe_protocol ~n:3 ~bits:1)
  in
  check_true "crashed node never stepped" (states.(2).heard = [])

let test_engine_bit_metering () =
  let g = Gen.ring 4 in
  let _, m =
    Engine.run ~graph:g ~failures:(Failure.none ~n:4) ~max_rounds:5 ~seed:0
      (probe_protocol ~n:4 ~bits:3)
  in
  (* every node sends 3 bits x 5 rounds *)
  check_int "metering" 15 (Metrics.bits_sent m 0);
  check_int "cc" 15 (Metrics.cc m);
  check_int "rounds" 5 (Metrics.rounds m)

let test_engine_root_done_halts () =
  let g = Gen.path 4 in
  let proto =
    {
      Engine.name = "halt3";
      init = (fun _ ~rng:_ -> ref 0);
      step = (fun ~round ~me:_ ~state ~inbox:_ -> state := round; (state, []));
      msg_bits = (fun _ -> 0);
      root_done = (fun s -> !s >= 3);
    }
  in
  let _, m = Engine.run ~graph:g ~failures:(Failure.none ~n:4) ~max_rounds:100 ~seed:0 proto in
  check_int "halted at 3" 3 (Metrics.rounds m)

let test_engine_per_node_rng_deterministic () =
  let g = Gen.path 3 in
  let proto seedcell =
    {
      Engine.name = "rng";
      init = (fun u ~rng -> seedcell.(u) <- Prng.int rng 1000000; ());
      step = (fun ~round:_ ~me:_ ~state ~inbox:_ -> (state, []));
      msg_bits = (fun _ -> 0);
      root_done = (fun _ -> false);
    }
  in
  let a = Array.make 3 0 and b = Array.make 3 0 and c = Array.make 3 0 in
  ignore (Engine.run ~graph:g ~failures:(Failure.none ~n:3) ~max_rounds:1 ~seed:5 (proto a));
  ignore (Engine.run ~graph:g ~failures:(Failure.none ~n:3) ~max_rounds:1 ~seed:5 (proto b));
  ignore (Engine.run ~graph:g ~failures:(Failure.none ~n:3) ~max_rounds:1 ~seed:6 (proto c));
  check_true "same seed same coins" (a = b);
  check_true "different seed different coins" (a <> c);
  check_true "nodes get distinct streams" (a.(0) <> a.(1) || a.(1) <> a.(2))

let qcheck_tests =
  let open QCheck in
  [
    Test.make ~name:"random failure schedules stay within budget on random graphs"
      ~count:60
      (triple (int_range 5 40) (int_range 0 15) small_int)
      (fun (n, budget, seed) ->
        let g = Topo.random_connected ~n ~p:0.1 ~seed in
        let t = Failure.random g ~rng:(Prng.create (seed + 1)) ~budget ~max_round:30 in
        Failure.edge_failures g t <= budget);
    Test.make ~name:"shift then shift composes" ~count:100
      (pair (int_range 1 20) (int_range 1 20))
      (fun (a, b) ->
        let t = Failure.of_list ~n:3 [ (1, 50) ] in
        let one = Failure.shift (Failure.shift t ~by:a) ~by:b in
        let two = Failure.shift t ~by:(a + b) in
        Failure.crash_round one 1 = Failure.crash_round two 1);
  ]

let suite =
  List.map
    (fun (n, f) -> Alcotest.test_case n `Quick f)
    [
      ("failure: none", test_failure_none);
      ("failure: of_list", test_failure_of_list);
      ("failure: root protected", test_failure_rejects_root);
      ("failure: earliest round wins", test_failure_earliest_round_wins);
      ("failure: edge counting", test_edge_failures_counting);
      ("failure: edge window", test_edge_failures_window);
      ("failure: random budget", test_random_respects_budget);
      ("failure: burst", test_burst_single_round);
      ("failure: chain", test_chain_schedule);
      ("failure: neighborhood excludes root", test_neighborhood_excludes_root);
      ("failure: shift", test_shift);
      ("metrics: accounting", test_metrics_accounting);
      ("metrics: merge", test_metrics_merge);
      ("metrics: merge = sequential composition", test_metrics_merge_sequential);
      ("trace: keep_silent on/off", test_trace_keep_silent);
      ("trace: per-node views", test_trace_per_node_views);
      ("engine: delivery next round", test_engine_delivery_next_round);
      ("engine: crash stops sending", test_engine_crash_stops_sending);
      ("engine: crashed nodes inert", test_engine_crashed_receive_nothing);
      ("engine: bit metering", test_engine_bit_metering);
      ("engine: root_done halts", test_engine_root_done_halts);
      ("engine: per-node rng", test_engine_per_node_rng_deterministic);
    ]
  @ List.map QCheck_alcotest.to_alcotest qcheck_tests
