(* The chaos subsystem: differential equivalence of the instrumented
   engine against the production hot path when every knob is off,
   deterministic fault-injection semantics, online-adversary mechanics,
   watchdog precision (a planted bit-budget violation must fire at the
   exact round the bottleneck node crosses the cap), the shrinker, and
   the incident JSON round trip. *)

open Ftagg
open Helpers

(* ---------- chaos-off differential: run_chaos ≡ run ---------- *)

let pair_proto params =
  {
    Engine.name = "pair";
    init = (fun u ~rng:_ -> Pair.create params ~me:u);
    step = (fun ~round ~me:_ ~state ~inbox -> (state, Pair.step state ~rr:round ~inbox));
    msg_bits = Message.bits params;
    root_done = (fun _ -> false);
  }

let agg_project st = (Agg.level st, Agg.parent st, Agg.psum st, Agg.max_level st, Agg.aborted st)

(* With no faults, no online adversary and no watchdog, run_chaos must be
   observationally identical to the hot path: same metrics, same states,
   same PRNG streams.  Also with only [loss] set, it must match
   [Engine.run ?loss] draw for draw. *)
let both ?faults ?loss ~graph ~failures ~max_rounds ~seed proto =
  let s_run, m_run = Engine.run ?loss ~graph ~failures ~max_rounds ~seed proto in
  let r = Engine.run_chaos ?faults ~graph ~failures ~max_rounds ~seed proto in
  let s_chaos = r.Engine.c_states and m_chaos = r.Engine.c_metrics in
  check_int "rounds" (Metrics.rounds m_run) (Metrics.rounds m_chaos);
  check_int "cc" (Metrics.cc m_run) (Metrics.cc m_chaos);
  Array.iteri
    (fun u _ ->
      check_int (Printf.sprintf "bits@%d" u) (Metrics.bits_sent m_run u)
        (Metrics.bits_sent m_chaos u);
      check_int (Printf.sprintf "msgs@%d" u) (Metrics.msgs_sent m_run u)
        (Metrics.msgs_sent m_chaos u))
    s_run;
  Array.iteri
    (fun u st ->
      check_true
        (Printf.sprintf "state@%d" u)
        (agg_project (Pair.agg st) = agg_project (Pair.agg s_chaos.(u))))
    s_run;
  check_true "no violation" (r.Engine.c_violation = None)

let test_chaos_off_differential () =
  List.iter
    (fun (name, fam) ->
      let g = Gen.build fam ~n:30 ~seed:5 in
      let params = params_of ~t:2 g ~inputs:(default_inputs 30) in
      List.iter
        (fun seed ->
          let failures = Failure.random g ~rng:(Prng.create (seed * 11)) ~budget:5 ~max_round:250 in
          Alcotest.(check unit)
            (Printf.sprintf "chaos-off %s seed %d" name seed)
            ()
            (both ~graph:g ~failures ~max_rounds:(Pair.duration params) ~seed (pair_proto params)))
        [ 1; 2; 3 ])
    [ ("grid", Gen.Grid); ("ring", Gen.Ring); ("caterpillar", Gen.Caterpillar) ]

let test_loss_only_differential () =
  let g = Gen.grid 25 in
  let params = params_of g ~inputs:(default_inputs 25) in
  List.iter
    (fun loss ->
      List.iter
        (fun seed ->
          let failures = Failure.random g ~rng:(Prng.create seed) ~budget:4 ~max_round:200 in
          both
            ~faults:{ Engine.loss; dup = 0.0; delay = 0.0 }
            ~loss ~graph:g ~failures ~max_rounds:(Pair.duration params) ~seed (pair_proto params))
        [ 1; 2; 3 ])
    [ 0.05; 0.3 ]

(* ---------- fault-injection semantics on a beacon protocol ---------- *)

(* Node [b] broadcasts one unit payload every round; everyone else counts
   arrivals.  Every delivery fact below is exact with probability-1
   faults. *)
let beacon_proto b =
  {
    Engine.name = "beacon";
    init = (fun _ ~rng:_ -> 0);
    step =
      (fun ~round:_ ~me ~state ~inbox ->
        if me = b then (state, [ () ]) else (state + List.length inbox, []));
    msg_bits = (fun () -> 1);
    root_done = (fun _ -> false);
  }

let beacon ?faults ?online ~n ~b ~failures ~rounds () =
  Engine.run_chaos ?faults ?online ~graph:(Gen.path n) ~failures ~max_rounds:rounds ~seed:7
    (beacon_proto b)

let test_fault_semantics () =
  let rounds = 10 in
  let none = Failure.none ~n:2 in
  (* baseline: broadcasts of rounds 1..9 arrive in rounds 2..10 *)
  let r = beacon ~n:2 ~b:0 ~failures:none ~rounds () in
  check_int "no faults" (rounds - 1) r.Engine.c_states.(1);
  (* dup = 1: every delivery doubled *)
  let r =
    beacon ~faults:{ Engine.loss = 0.0; dup = 1.0; delay = 0.0 } ~n:2 ~b:0 ~failures:none ~rounds ()
  in
  check_int "dup=1 doubles" (2 * (rounds - 1)) r.Engine.c_states.(1);
  (* delay = 1: every delivery lands one round later (rounds 3..10) *)
  let r =
    beacon ~faults:{ Engine.loss = 0.0; dup = 0.0; delay = 1.0 } ~n:2 ~b:0 ~failures:none ~rounds ()
  in
  check_int "delay=1 shifts by one" (rounds - 2) r.Engine.c_states.(1);
  (* loss = 1: silence *)
  let r =
    beacon ~faults:{ Engine.loss = 1.0; dup = 0.0; delay = 0.0 } ~n:2 ~b:0 ~failures:none ~rounds ()
  in
  check_int "loss=1 silences" 0 r.Engine.c_states.(1)

(* A delayed message is in flight: the sender's crash must not revoke it
   (crash means stop, not message loss — and in-flight means in flight). *)
let test_delay_survives_sender_crash () =
  let failures = Failure.of_list ~n:3 [ (1, 3) ] in
  let r =
    beacon
      ~faults:{ Engine.loss = 0.0; dup = 0.0; delay = 1.0 }
      ~n:3 ~b:1 ~failures ~rounds:6 ()
  in
  (* node 1 broadcasts in rounds 1 and 2 only (crashes at 3); both
     deliveries are delayed to rounds 3 and 4 — the round-2 broadcast
     arrives after its sender died *)
  check_int "both delayed deliveries arrive" 2 r.Engine.c_states.(2);
  check_int "other neighbour too" 2 r.Engine.c_states.(0)

(* ---------- online adversary mechanics ---------- *)

let test_online_crash_timing () =
  (* crash node 1 after round 2: its round-2 broadcast is still delivered,
     round-3 and later broadcasts never happen *)
  let online report = if report.Engine.rr_round = 2 then [ 1 ] else [] in
  let r = beacon ~online ~n:3 ~b:1 ~failures:(Failure.none ~n:3) ~rounds:8 () in
  check_int "broadcasts of rounds 1-2 delivered" 2 r.Engine.c_states.(2);
  check_true "schedule materialized" (Failure.to_list r.Engine.c_schedule = [ (1, 3) ])

let test_online_cannot_crash_root () =
  let online _ = [ 0 ] in
  let r = beacon ~online ~n:3 ~b:0 ~failures:(Failure.none ~n:3) ~rounds:8 () in
  check_true "root survives" (Failure.to_list r.Engine.c_schedule = []);
  check_int "root kept broadcasting" 7 r.Engine.c_states.(1)

let base_scenario ~family ~n ~t =
  {
    Incident.family;
    n;
    topo_seed = 9;
    run_seed = 4;
    c = 2;
    t;
    inputs = Array.init n (fun k -> (k * 7 mod 50) + 1);
    schedule = [];
    faults = Engine.no_faults;
    kind = Incident.Pair_run;
    bit_cap = None;
  }

let test_adaptive_budget_respected () =
  List.iter
    (fun adversary ->
      List.iter
        (fun budget ->
          let sc = base_scenario ~family:Gen.Grid ~n:16 ~t:3 in
          let graph = Campaign.graph_of sc in
          let params = Campaign.params_of sc graph in
          let base, online =
            Adversary.instantiate adversary graph ~rng:(Prng.create 42) ~budget
              ~window:(Pair.duration params)
          in
          check_true "adaptive base schedule empty" (Failure.to_list base = []);
          let report = Campaign.run_pair ?online sc in
          let materialized = Failure.of_list ~n:16 report.Campaign.scenario.Incident.schedule in
          let cost = Failure.edge_failures graph materialized in
          check_true
            (Printf.sprintf "%s budget %d: cost %d" (Adversary.name adversary) budget cost)
            (cost <= budget))
        [ 0; 3; 7 ])
    Adversary.adaptive_all

(* Replaying the materialized schedule obliviously must reproduce the
   adaptive run bit for bit — the property that makes incidents
   deterministic artifacts. *)
let test_materialized_replay () =
  let sc = base_scenario ~family:Gen.Caterpillar ~n:18 ~t:2 in
  let graph = Campaign.graph_of sc in
  let params = Campaign.params_of sc graph in
  let _, online =
    Adversary.instantiate (Adversary.Adaptive Adversary.Top_talkers) graph ~rng:(Prng.create 3)
      ~budget:6 ~window:(Pair.duration params)
  in
  let live = Campaign.run_pair ?online sc in
  check_true "adaptive adversary crashed someone" (live.Campaign.scenario.Incident.schedule <> []);
  let replayed = Campaign.run_pair live.Campaign.scenario in
  check_int "cc" live.Campaign.cc replayed.Campaign.cc;
  check_int "rounds" live.Campaign.rounds replayed.Campaign.rounds;
  check_true "verdict" (live.Campaign.verdict = replayed.Campaign.verdict);
  check_true "violation" (live.Campaign.violation = replayed.Campaign.violation);
  check_true "schedule unchanged"
    (live.Campaign.scenario.Incident.schedule = replayed.Campaign.scenario.Incident.schedule)

(* ---------- watchdog ---------- *)

(* Clean and dirty-but-within-the-model runs must stay silent: the
   watchdog checks guarantees, and under crash-only adversaries the
   theorems hold. *)
let test_watchdog_quiet_on_lawful_runs () =
  List.iter
    (fun (family, n) ->
      List.iter
        (fun budget ->
          let sc = base_scenario ~family ~n ~t:4 in
          let graph = Campaign.graph_of sc in
          let failures =
            Failure.random graph ~rng:(Prng.create (budget * 31)) ~budget ~max_round:60
          in
          let sc = { sc with Incident.schedule = Failure.to_list failures } in
          let report = Campaign.run_pair sc in
          check_true
            (Printf.sprintf "quiet: %s budget %d" (Incident.family_to_string family) budget)
            (report.Campaign.violation = None))
        [ 2; 9 ])
    [ (Gen.Grid, 16); (Gen.Ring, 14); (Gen.Star, 12) ]

(* Plant a violation by lowering the cap below the real bottleneck's
   total, and insist the watchdog fires at the exact round the
   bottleneck crosses it. *)
let test_planted_bit_cap_fires_at_correct_round () =
  let sc = base_scenario ~family:Gen.Star ~n:8 ~t:0 in
  let graph = Campaign.graph_of sc in
  let params = Campaign.params_of sc graph in
  let proto = pair_proto params in
  let duration = Pair.duration params in
  let failures = Failure.none ~n:8 in
  let _, m = Engine.run ~graph ~failures ~max_rounds:duration ~seed:sc.Incident.run_seed proto in
  let cap = Metrics.cc m / 2 in
  check_true "cap is planted below the real bottleneck" (cap < Metrics.cc m);
  (* ground truth: replay with an observer and find the first round some
     node's cumulative bits exceed the cap *)
  let cum = Array.make 8 0 in
  let expected = ref max_int in
  let observer ~round ~node out =
    cum.(node) <- cum.(node) + List.fold_left (fun a msg -> a + Message.bits params msg) 0 out;
    if cum.(node) > cap && round < !expected then expected := round
  in
  let _ = Engine.run ~observer ~graph ~failures ~max_rounds:duration ~seed:sc.Incident.run_seed proto in
  check_true "the cap is crossed mid-run" (!expected < duration);
  let report = Campaign.run_pair { sc with Incident.bit_cap = Some cap } in
  match report.Campaign.violation with
  | None -> Alcotest.fail "planted violation not caught"
  | Some v ->
    check_true "invariant" (v.Engine.invariant = "bit_budget");
    check_int "caught at the first crossing round" !expected v.Engine.at_round;
    check_int "run halted there" !expected report.Campaign.rounds

(* ---------- shrinking ---------- *)

let test_shrink_minimizes_planted_violation () =
  let sc = base_scenario ~family:Gen.Star ~n:12 ~t:1 in
  let sc = { sc with Incident.bit_cap = Some 50; schedule = [ (3, 40); (5, 60); (7, 80) ] } in
  match Campaign.check sc with
  | None -> Alcotest.fail "planted scenario does not violate"
  | Some v ->
    check_true "bit budget violated" (v.Engine.invariant = "bit_budget");
    let shrunk, v', stats = Campaign.shrink sc v in
    check_true "same invariant after shrinking" (v'.Engine.invariant = "bit_budget");
    check_true "irrelevant crashes dropped" (shrunk.Incident.schedule = []);
    check_true "system no larger" (shrunk.Incident.n <= sc.Incident.n);
    check_int "stats: original crash count" 3 stats.Incident.s_from_crashes;
    check_int "stats: original size" 12 stats.Incident.s_from_n;
    check_true "oracle runs were spent" (stats.Incident.s_tries > 0);
    (* the minimized scenario is still a standalone reproducer *)
    (match Campaign.check shrunk with
    | Some v'' -> check_true "shrunk scenario reproduces" (v''.Engine.invariant = "bit_budget")
    | None -> Alcotest.fail "shrunk scenario lost the violation")

(* ---------- campaign + incident + replay, end to end ---------- *)

let test_campaign_end_to_end () =
  let dir = Filename.concat (Filename.get_temp_dir_name ()) "ftagg-chaos-test" in
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let outcome =
    Campaign.run
      {
        Campaign.trials = 6;
        seed = 99;
        out_dir = Some dir;
        bit_cap = Some 40;
        max_n = 14;
        log = ignore;
        obs = None;
        via = None;
        backend = "agg";
      }
  in
  check_true "planted cap violates every trial" (outcome.Campaign.o_violating_trials = 6);
  match outcome.Campaign.o_incidents with
  | [ (inc, Some path) ] ->
    check_true "bit budget incident" (inc.Incident.violation.Engine.invariant = "bit_budget");
    check_true "shrunken" (inc.Incident.shrink <> None);
    check_true "incident file written" (Sys.file_exists path);
    (match Incident.load ~path with
    | Error e -> Alcotest.fail e
    | Ok loaded -> (
      check_true "round trip: scenario" (loaded.Incident.scenario = inc.Incident.scenario);
      check_true "round trip: violation" (loaded.Incident.violation = inc.Incident.violation);
      match Campaign.replay loaded with
      | Some v -> check_true "replay reproduces" (v.Engine.invariant = "bit_budget")
      | None -> Alcotest.fail "replay did not reproduce"))
  | incidents ->
    Alcotest.fail (Printf.sprintf "expected exactly one saved incident, got %d" (List.length incidents))

(* ---------- incident serialization ---------- *)

let test_family_codec () =
  List.iter
    (fun f ->
      check_true
        (Incident.family_to_string f)
        (Incident.family_of_string (Incident.family_to_string f) = Some f))
    [ Gen.Path; Gen.Ring; Gen.Grid; Gen.Star; Gen.Binary_tree; Gen.Complete; Gen.Random 0.05;
      Gen.Random 0.15; Gen.Caterpillar; Gen.Lollipop; Gen.Torus; Gen.Random_regular 4 ]

let test_incident_json_round_trip () =
  let inc =
    {
      Incident.adversary = "adaptive:first_speakers";
      scenario =
        {
          Incident.family = Gen.Random 0.15;
          n = 17;
          topo_seed = 123;
          run_seed = 456;
          c = 2;
          t = 3;
          inputs = Array.init 17 (fun k -> k + 1);
          schedule = [ (2, 5); (9, 31) ];
          faults = { Engine.loss = 0.01; dup = 0.25; delay = 0.5 };
          kind = Incident.Tradeoff_run { b = 84; f = 6 };
          bit_cap = Some 512;
        };
      violation = { Engine.at_round = 77; invariant = "theorem1_time"; detail = "too slow" };
      shrink = Some { Incident.s_tries = 41; s_from_crashes = 9; s_from_n = 40 };
    }
  in
  let text = Bench_io.to_string (Incident.to_json inc) in
  match Bench_io.of_string text with
  | Error e -> Alcotest.fail e
  | Ok j -> (
    match Incident.of_json j with
    | Error e -> Alcotest.fail e
    | Ok inc' ->
      check_true "adversary" (inc'.Incident.adversary = inc.Incident.adversary);
      check_true "scenario" (inc'.Incident.scenario = inc.Incident.scenario);
      check_true "violation" (inc'.Incident.violation = inc.Incident.violation);
      check_true "shrink stats" (inc'.Incident.shrink = inc.Incident.shrink))

let suite =
  [
    Alcotest.test_case "chaos-off ≡ hot path (3 families x 3 seeds)" `Quick
      test_chaos_off_differential;
    Alcotest.test_case "loss-only ≡ hot path with ?loss" `Quick test_loss_only_differential;
    Alcotest.test_case "fault semantics: dup/delay/loss at p=1" `Quick test_fault_semantics;
    Alcotest.test_case "delayed delivery survives sender crash" `Quick
      test_delay_survives_sender_crash;
    Alcotest.test_case "online: crash lands at round r+1" `Quick test_online_crash_timing;
    Alcotest.test_case "online: root is untouchable" `Quick test_online_cannot_crash_root;
    Alcotest.test_case "adaptive adversaries respect the edge budget" `Quick
      test_adaptive_budget_respected;
    Alcotest.test_case "materialized schedule replays bit for bit" `Quick test_materialized_replay;
    Alcotest.test_case "watchdog quiet on lawful runs" `Quick test_watchdog_quiet_on_lawful_runs;
    Alcotest.test_case "planted bit cap caught at the exact round" `Quick
      test_planted_bit_cap_fires_at_correct_round;
    Alcotest.test_case "shrinker drops irrelevant crashes" `Quick
      test_shrink_minimizes_planted_violation;
    Alcotest.test_case "campaign → incident → JSON → replay" `Quick test_campaign_end_to_end;
    Alcotest.test_case "family codec round trip" `Quick test_family_codec;
    Alcotest.test_case "incident JSON round trip" `Quick test_incident_json_round_trip;
  ]
