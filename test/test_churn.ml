(* Tests for lib/churn: topology generations (Membership), churn
   schedules (Schedule) and the scenario runner (Scenario).  The
   load-bearing properties:

   - memberships are pure functions of (family, n, seed) and the event
     history — equal seeds evolve identically, and the generation-keyed
     digest changes on every advance;
   - schedule draws never depend on the backend, so equal seeds subject
     every backend to the same joins and crashes;
   - the scenario matrix is replay-deterministic end to end: identical
     seeds produce identical percentile reports. *)

open Ftagg
open Helpers

let edge_list g = List.rev (Graph.fold_edges (fun u v acc -> (u, v) :: acc) g [])

(* --- membership --- *)

let test_membership_base () =
  let m = Membership.create ~family:Topo.Grid ~n:16 ~seed:7 in
  let base = Topo.build Topo.Grid ~n:16 ~seed:7 in
  check_int "generation 0" 0 (Membership.generation m);
  check_int "base size" 16 (Membership.total_n m);
  check_true "generation 0 is exactly the base graph"
    (edge_list (Membership.graph m) = edge_list base);
  check_int "nobody retired" 0 (List.length (Membership.retired m));
  check_int "everyone live" 16 (List.length (Membership.live m));
  check_true "retirement schedule is empty"
    (Failure.to_list (Membership.retirement m) = [])

let test_membership_joins_and_leaves () =
  let m = Membership.create ~family:Topo.Grid ~n:16 ~seed:7 in
  let m, node = Membership.join m in
  check_int "join takes the next fresh id" 16 node;
  check_int "id space grew" 17 (Membership.total_n m);
  check_int "generation bumped" 1 (Membership.generation m);
  let g = Membership.graph m in
  check_int "joined node has 2 attachment edges" 2 (Graph.degree g node);
  check_true "attachment targets are live base nodes"
    (List.for_all (fun v -> v < 16) (Graph.neighbors g node));
  let m = Membership.leave m ~node:5 in
  check_true "left node is retired" (Membership.retired m = [ 5 ]);
  check_true "left node stays in the graph" (Graph.mem (Membership.graph m) 5);
  check_true "left node is not live" (not (List.mem 5 (Membership.live m)));
  check_true "retirement crashes it at round 1"
    (Failure.to_list (Membership.retirement m) = [ (5, 1) ]);
  Alcotest.check_raises "the root never leaves"
    (Invalid_argument "Membership.leave: the root never leaves") (fun () ->
      ignore (Membership.leave m ~node:Graph.root));
  Alcotest.check_raises "double retirement rejected"
    (Invalid_argument "Membership.leave: node already retired") (fun () ->
      ignore (Membership.leave m ~node:5))

let test_membership_determinism () =
  let evolve () =
    let m = ref (Membership.create ~family:Topo.Grid ~n:16 ~seed:3) in
    for _ = 1 to 4 do
      m := Membership.advance !m ~joins:2 ~leaves:1
    done;
    !m
  in
  let a = evolve () and b = evolve () in
  check_true "equal seeds evolve identically" (Membership.key a = Membership.key b);
  check_true "graphs identical" (edge_list (Membership.graph a) = edge_list (Membership.graph b));
  check_true "live sets identical" (Membership.live a = Membership.live b);
  let c = Membership.advance (Membership.create ~family:Topo.Grid ~n:16 ~seed:4) ~joins:2 ~leaves:1 in
  check_true "different seeds diverge" (Membership.key a <> Membership.key c)

let test_membership_key_invalidation () =
  let m = Membership.create ~family:Topo.Grid ~n:16 ~seed:7 in
  let keys = ref [ Membership.key m ] in
  let m1 = Membership.advance m ~joins:1 ~leaves:0 in
  keys := Membership.key m1 :: !keys;
  (* an advance with zero effective events still bumps the generation
     and must still change the key — staleness is about admission time,
     not graph shape *)
  let m2 = Membership.advance m1 ~joins:0 ~leaves:0 in
  keys := Membership.key m2 :: !keys;
  check_int "all keys distinct" 3 (List.length (List.sort_uniq compare !keys));
  check_true "key carries the generation prefix"
    (String.length (Membership.key m2) > 3 && String.sub (Membership.key m2) 0 3 = "g2:")

let test_merge_failures () =
  let a = Failure.of_list ~n:4 [ (1, 5); (2, 3) ] in
  let b = Failure.of_list ~n:4 [ (1, 2); (3, 7) ] in
  let merged = Failure.crash_rounds (Membership.merge_failures a b) in
  check_int "earlier round wins" 2 merged.(1);
  check_int "a-only entry kept" 3 merged.(2);
  check_int "b-only entry kept" 7 merged.(3);
  check_true "unmentioned node never crashes" (merged.(0) = Failure.never);
  Alcotest.check_raises "size mismatch rejected"
    (Invalid_argument "Membership.merge_failures: schedules over different node counts")
    (fun () -> ignore (Membership.merge_failures a (Failure.none ~n:5)))

(* --- schedules --- *)

let test_schedule_names () =
  check_int "four schedules" 4 (List.length Schedule.all);
  List.iter
    (fun s ->
      match Schedule.of_name (Schedule.name s) with
      | Some s' -> check_true ("name round-trips: " ^ Schedule.name s) (Schedule.kind s' = Schedule.kind s)
      | None -> Alcotest.fail ("of_name failed on " ^ Schedule.name s))
    Schedule.all;
  check_true "dashes accepted" (Schedule.of_name "clear-skies" <> None);
  check_true "unknown rejected" (Schedule.of_name "sunny" = None)

let test_schedule_clear_skies () =
  let g = Topo.build Topo.Grid ~n:16 ~seed:7 in
  for gen = 0 to 4 do
    check_true "clear skies never churns"
      (Schedule.churn Schedule.clear_skies ~generation:gen ~seed:7 = (0, 0));
    let failures, online =
      Schedule.failures Schedule.clear_skies ~graph:g ~generation:gen ~seed:7 ~budget:4 ~window:30
    in
    check_true "clear skies never crashes" (Failure.to_list failures = []);
    check_true "no online adversary" (online = None)
  done

let test_schedule_determinism () =
  let g = Topo.build Topo.Grid ~n:16 ~seed:7 in
  List.iter
    (fun s ->
      for gen = 0 to 3 do
        check_true
          (Printf.sprintf "%s churn deterministic at g%d" (Schedule.name s) gen)
          (Schedule.churn s ~generation:gen ~seed:5 = Schedule.churn s ~generation:gen ~seed:5);
        let f1, _ = Schedule.failures s ~graph:g ~generation:gen ~seed:5 ~budget:4 ~window:30 in
        let f2, _ = Schedule.failures s ~graph:g ~generation:gen ~seed:5 ~budget:4 ~window:30 in
        check_true
          (Printf.sprintf "%s crash draw deterministic at g%d" (Schedule.name s) gen)
          (Failure.to_list f1 = Failure.to_list f2)
      done)
    Schedule.all;
  (* steady churn must actually churn, and burst must actually burst *)
  let some_churn =
    List.exists
      (fun gen -> Schedule.churn Schedule.steady_churn ~generation:gen ~seed:5 <> (0, 0))
      [ 1; 2; 3; 4 ]
  in
  check_true "steady churn churns" some_churn;
  let some_burst =
    List.exists
      (fun gen ->
        let f, _ =
          Schedule.failures Schedule.burst_failure ~graph:g ~generation:gen ~seed:5 ~budget:4
            ~window:30
        in
        Failure.to_list f <> [])
      [ 0; 1; 2; 3; 4 ]
  in
  check_true "burst failure bursts" some_burst

(* --- scenario runner --- *)

let small_spec =
  {
    Scenario.default with
    Scenario.n = 16;
    backends = [ "agg"; "flowupdating" ];
    schedules = [ Schedule.clear_skies; Schedule.steady_churn ];
    generations = 2;
    runs_per_generation = 2;
    seed = 11;
  }

let test_scenario_matrix () =
  let registry = Registry.create () in
  let reports = Scenario.run ~registry small_spec in
  check_int "one report per cell" 4 (List.length reports);
  List.iter
    (fun (r : Scenario.report) ->
      check_int (r.Scenario.r_schedule ^ ": all runs accounted") 4 r.Scenario.r_runs;
      if r.Scenario.r_schedule = "clear_skies" then begin
        check_int (r.Scenario.r_backend ^ ": clear skies completes everything") 4
          r.Scenario.r_completed;
        check_int (r.Scenario.r_backend ^ ": clear skies never crashes") 0 r.Scenario.r_crashes
      end;
      if r.Scenario.r_completed > 0 then begin
        let p = r.Scenario.r_latency in
        check_true (r.Scenario.r_backend ^ ": percentiles ordered")
          (p.Scenario.p90 <= p.Scenario.p95
          && p.Scenario.p95 <= p.Scenario.p99
          && p.Scenario.p99 <= p.Scenario.p100);
        check_true (r.Scenario.r_backend ^ ": node bandwidth measured")
          (Float.is_finite r.Scenario.r_p95_node_bits)
      end)
    reports;
  (* the histograms really land in the supplied registry *)
  check_true "latency histogram in the registry"
    (Registry.histogram registry
       ~labels:[ ("schedule", "clear_skies"); ("backend", "agg") ]
       "scenario_latency_rounds"
    <> None);
  (* agg is exact: under clear skies its worst relative error is 0 *)
  let agg_clear =
    List.find
      (fun (r : Scenario.report) ->
        r.Scenario.r_schedule = "clear_skies" && r.Scenario.r_backend = "agg")
      reports
  in
  check_true "exact backend, clear skies: zero error" (agg_clear.Scenario.r_max_rel_err = 0.0)

let test_scenario_determinism () =
  let a = Scenario.run small_spec and b = Scenario.run small_spec in
  check_true "equal seeds give identical reports" (a = b);
  let c = Scenario.run { small_spec with Scenario.seed = 12 } in
  check_true "different seed, same shape" (List.length c = List.length a)

let test_scenario_json_and_table () =
  let reports = Scenario.run small_spec in
  let json = Bench_io.List (List.map Scenario.report_to_json reports) in
  (match Bench_io.of_string (Bench_io.to_string json) with
  | Ok j -> check_true "report JSON round-trips" (j = json)
  | Error e -> Alcotest.fail e);
  let rendered = Table.render (Scenario.table reports) in
  check_true "table mentions every schedule"
    (List.for_all
       (fun (r : Scenario.report) -> string_contains ~needle:r.Scenario.r_schedule rendered)
       reports);
  check_true "table has the percentile columns" (string_contains ~needle:"lat p95" rendered)

let test_scenario_bad_input () =
  Alcotest.check_raises "unknown backend"
    (Invalid_argument "Scenario.run: unknown backend \"warp\"") (fun () ->
      ignore (Scenario.run { small_spec with Scenario.backends = [ "warp" ] }));
  Alcotest.check_raises "empty schedule list"
    (Invalid_argument "Scenario.run: empty backend or schedule list") (fun () ->
      ignore (Scenario.run { small_spec with Scenario.schedules = [] }))

let suite =
  [
    Alcotest.test_case "membership: generation 0 is the base graph" `Quick test_membership_base;
    Alcotest.test_case "membership: joins attach, leaves retire" `Quick
      test_membership_joins_and_leaves;
    Alcotest.test_case "membership: seeded evolution is deterministic" `Quick
      test_membership_determinism;
    Alcotest.test_case "membership: every advance changes the key" `Quick
      test_membership_key_invalidation;
    Alcotest.test_case "membership: merge_failures takes the earlier crash" `Quick
      test_merge_failures;
    Alcotest.test_case "schedule: names round-trip" `Quick test_schedule_names;
    Alcotest.test_case "schedule: clear skies is truly clear" `Quick test_schedule_clear_skies;
    Alcotest.test_case "schedule: draws are seed-deterministic" `Quick test_schedule_determinism;
    Alcotest.test_case "scenario: matrix shape + completion + percentiles" `Quick
      test_scenario_matrix;
    Alcotest.test_case "scenario: replay determinism" `Quick test_scenario_determinism;
    Alcotest.test_case "scenario: JSON + table rendering" `Quick test_scenario_json_and_table;
    Alcotest.test_case "scenario: bad input rejected" `Quick test_scenario_bad_input;
  ]
