(* Deep structural tests: the flooding-schedule invariant behind §4.2's
   "in that round" check, run determinism, the packed-pair CAAF, message
   rendering, and a moderate-scale stress run. *)

open Ftagg
open Helpers

(* --- The first-receipt invariant --------------------------------------

   The soundness of AGG's speculative-flooding trigger rests on: a
   flooded partial sum first reaches a level-l node no earlier than phase
   round l+1.  We check it empirically: record every broadcast with a
   trace, reconstruct per-node receipt rounds, and compare with the tree
   levels AGG assigned. *)

let test_spec_flood_receipt_invariant () =
  List.iter
    (fun seed ->
      let n = 36 in
      let g = Gen.grid n in
      let params = params_of ~t:3 g ~inputs:(default_inputs n) in
      let cd = Params.cd params in
      let failures =
        Failure.random g ~rng:(Prng.create (seed * 5)) ~budget:4 ~max_round:150
      in
      let trace = Trace.create () in
      let proto =
        {
          Engine.name = "agg-traced";
          init = (fun u ~rng:_ -> Agg.create params ~me:u);
          step =
            (fun ~round ~me:_ ~state ~inbox ->
              let inbox =
                List.filter_map
                  (fun (s, m) ->
                    if m.Message.exec = 0 then Some (s, m.Message.body) else None)
                  inbox
              in
              let out = Agg.step state ~rr:round ~inbox in
              (state, List.map (fun body -> Message.{ exec = 0; body }) out));
          msg_bits = Message.msg_bits params;
          root_done = (fun _ -> false);
        }
      in
      let states, _ =
        Engine.run ~observer:(Trace.observer trace) ~graph:g ~failures
          ~max_rounds:(Agg.duration params) ~seed proto
      in
      (* first receipt of any Flooded_psum per node = 1 + the earliest
         round in which some graph neighbour broadcast one *)
      let first_receipt = Array.make n max_int in
      List.iter
        (fun e ->
          let has_psum =
            List.exists
              (fun m ->
                match m.Message.body with Message.Flooded_psum _ -> true | _ -> false)
              e.Trace.payloads
          in
          if has_psum then
            List.iter
              (fun v ->
                if e.Trace.round + 1 < first_receipt.(v) then
                  first_receipt.(v) <- e.Trace.round + 1)
              (Graph.neighbors g e.Trace.node))
        (Trace.events trace);
      let spec_base = (4 * cd) + 2 in
      Array.iteri
        (fun u fr ->
          if u <> Graph.root && fr <> max_int && Agg.activated states.(u) then begin
            let l = Agg.level states.(u) in
            check_true
              (Printf.sprintf "seed %d node %d (level %d): first psum at phase round %d"
                 seed u l (fr - spec_base))
              (fr - spec_base >= l + 1)
          end)
        first_receipt)
    [ 1; 2; 3 ]

(* --- Determinism ----------------------------------------------------- *)

let test_run_determinism () =
  let n = 36 in
  let g = Gen.grid n in
  let params = params_of g ~inputs:(default_inputs n) in
  let failures = Failure.random g ~rng:(Prng.create 4) ~budget:6 ~max_round:600 in
  let run () = Run.tradeoff ~graph:g ~failures ~params ~b:63 ~f:6 ~seed:11 () in
  let a = run () and b = run () in
  check_int "same value" (Run.value_exn a.Run.result) (Run.value_exn b.Run.result);
  check_int "same cc" (Metrics.cc a.Run.common.Run.metrics) (Metrics.cc b.Run.common.Run.metrics);
  check_int "same rounds" a.Run.common.Run.rounds b.Run.common.Run.rounds;
  (* different protocol seed may legitimately pick different intervals
     but must stay correct *)
  let c = Run.tradeoff ~graph:g ~failures ~params ~b:63 ~f:6 ~seed:12 () in
  check_true "other seed still correct" c.Run.common.Run.correct

let test_pair_determinism_across_metrics () =
  let n = 30 in
  let g = Gen.ring n in
  let params = params_of ~t:4 g ~inputs:(default_inputs n) in
  let failures = Failure.chain ~n ~first:1 ~len:4 ~round:70 in
  let a = Run.pair ~graph:g ~failures ~params ~seed:7 () in
  let b = Run.pair ~graph:g ~failures ~params ~seed:7 () in
  List.iter
    (fun u ->
      check_int
        (Printf.sprintf "node %d bits identical" u)
        (Metrics.bits_sent a.Run.common.Run.metrics u)
        (Metrics.bits_sent b.Run.common.Run.metrics u))
    (List.init n Fun.id)

(* --- Packed-pair CAAF: AVERAGE in one execution ----------------------- *)

let test_packed2_roundtrip () =
  let v = Instances.pack2 ~bits:10 123 45 in
  let a, b = Instances.unpack2 ~bits:10 v in
  check_int "a" 123 a;
  check_int "b" 45 b

let test_packed2_rejects () =
  Alcotest.check_raises "component too wide"
    (Invalid_argument "Instances.pack2: component out of range") (fun () ->
      ignore (Instances.pack2 ~bits:4 16 0));
  Alcotest.check_raises "min identity rejected"
    (Invalid_argument "Instances.pack2: component out of range") (fun () ->
      ignore (Instances.packed2 ~bits:10 Instances.sum Instances.min_))

let test_packed2_average_single_run () =
  (* one Algorithm 1 execution computing (SUM, COUNT) at once *)
  let n = 25 in
  let g = Gen.grid n in
  let bits = 12 in
  let caaf = Instances.packed2 ~bits Instances.sum Instances.count in
  let raw = Array.init n (fun i -> (i mod 9) + 1) in
  let inputs = Array.map (fun x -> Instances.pack2 ~bits x 1) raw in
  let params = Params.make ~c:2 ~caaf ~graph:g ~inputs () in
  let o = Run.tradeoff ~graph:g ~failures:(Failure.none ~n) ~params ~b:63 ~f:2 ~seed:1 () in
  let sum, count = Instances.unpack2 ~bits (Run.value_exn o.Run.result) in
  check_int "packed sum" (total raw) sum;
  check_int "packed count" n count

let test_packed2_laws () =
  let caaf = Instances.packed2 ~bits:8 Instances.max_ Instances.sum in
  let x = Instances.pack2 ~bits:8 3 10
  and y = Instances.pack2 ~bits:8 7 20
  and z = Instances.pack2 ~bits:8 5 30 in
  check_int "commutes" (caaf.Caaf.combine x y) (caaf.Caaf.combine y x);
  check_int "associates"
    (caaf.Caaf.combine (caaf.Caaf.combine x y) z)
    (caaf.Caaf.combine x (caaf.Caaf.combine y z));
  let m, s = Instances.unpack2 ~bits:8 (Caaf.aggregate caaf [ x; y; z ]) in
  check_int "max component" 7 m;
  check_int "sum component" 60 s

(* --- Message rendering ------------------------------------------------ *)

let test_message_pp () =
  let cases =
    [
      (Message.Flooded_psum { source = 3; psum = 42 }, "psum(3:42)");
      (Message.Agg_abort, "abort");
      (Message.Failed_parent { node = 7; depth = 2 }, "fp(7,x2)");
      (Message.Ack { parent = 0 }, "ack(0)");
    ]
  in
  List.iter
    (fun (body, want) ->
      check_true want (Format.asprintf "%a" Message.pp_body body = want))
    cases;
  check_true "tagged"
    (Format.asprintf "%a" Message.pp Message.{ exec = 2; body = Message.Bf_init } = "2:bf")

(* --- Moderate-scale stress run ---------------------------------------- *)

let test_stress_larger_network () =
  let n = 225 in
  let g = Gen.grid n in
  let inputs = Array.init n (fun i -> (i mod 13) + 1) in
  let params = params_of g ~inputs in
  let failures =
    Failure.random g ~rng:(Prng.create 21) ~budget:20
      ~max_round:(63 * params.Params.d)
  in
  let o = Run.tradeoff ~graph:g ~failures ~params ~b:63 ~f:20 ~seed:9 () in
  check_true "large grid correct" o.Run.common.Run.correct;
  check_true "large grid within budget" (o.Run.common.Run.flooding_rounds <= 63);
  (* brute force on the same instance for cross-validation of the
     correctness interval *)
  let ob = Run.brute_force ~graph:g ~failures ~params ~seed:9 () in
  check_true "brute correct too" ob.Run.common.Run.correct;
  check_true "tradeoff CC beats brute force"
    (Metrics.cc o.Run.common.Run.metrics < Metrics.cc ob.Run.common.Run.metrics)

let suite =
  List.map
    (fun (n, f) -> Alcotest.test_case n `Quick f)
    [
      ("invariant: psum first receipt >= level+1", test_spec_flood_receipt_invariant);
      ("determinism: tradeoff runs", test_run_determinism);
      ("determinism: per-node bits", test_pair_determinism_across_metrics);
      ("packed2: roundtrip", test_packed2_roundtrip);
      ("packed2: rejects", test_packed2_rejects);
      ("packed2: average in one run", test_packed2_average_single_run);
      ("packed2: laws", test_packed2_laws);
      ("message: pp", test_message_pp);
      ("stress: 225-node grid", test_stress_larger_network);
    ]
