let () =
  Alcotest.run "ftagg"
    [
      ("util", Test_util.suite);
      ("graph", Test_graph.suite);
      ("sim", Test_sim.suite);
      ("caaf", Test_caaf.suite);
      ("proto-units", Test_proto_units.suite);
      ("agg", Test_agg.suite);
      ("veri", Test_veri.suite);
      ("protocols", Test_protocols.suite);
      ("checker", Test_checker.suite);
      ("selection", Test_selection.suite);
      ("twoparty", Test_twoparty.suite);
      ("extensions", Test_extensions.suite);
      ("backend", Test_backend.suite);
      ("facade", Test_facade.suite);
      ("deep", Test_deep.suite);
      ("representative", Test_representative.suite);
      ("cross", Test_cross.suite);
      ("engine-perf", Test_engine_perf.suite);
      ("chaos", Test_chaos.suite);
      ("churn", Test_churn.suite);
      ("obs", Test_obs.suite);
      ("service", Test_service.suite);
      ("transport", Test_transport.suite);
      ("store", Test_store.suite);
      ("fleet", Test_fleet.suite);
      ("scale", Test_scale.suite);
    ]
