(* End-to-end protocol tests: brute force, folklore, naive TAG,
   Algorithm 1 (Theorem 1), and the unknown-f doubling protocol. *)

open Ftagg
open Helpers

(* --- Brute force --- *)

let test_brute_force_exact_failure_free () =
  List.iter
    (fun (name, g) ->
      let n = Graph.n g in
      let params = params_of g ~inputs:(default_inputs n) in
      let o = Run.brute_force ~graph:g ~failures:(Failure.none ~n) ~params ~seed:1 () in
      check_int (name ^ ": exact") (total (default_inputs n)) (Run.value_exn o.Run.result))
    (Lazy.force sweep_graphs)

let test_brute_force_always_correct () =
  List.iter
    (fun (name, g) ->
      List.iter
        (fun seed ->
          let n = Graph.n g in
          let params = params_of g ~inputs:(default_inputs n) in
          let failures =
            Failure.random g ~rng:(Prng.create seed) ~budget:(n / 2) ~max_round:50
          in
          let o = Run.brute_force ~graph:g ~failures ~params ~seed () in
          check_true (name ^ ": correct under heavy failures") o.Run.common.Run.correct)
        [ 1; 2; 3; 4; 5 ])
    (Lazy.force sweep_graphs)

let test_brute_force_cc_order_n_log_n () =
  (* CC grows like N log N: every node forwards every value. *)
  let cc_of n =
    let g = Gen.grid n in
    let params = params_of g ~inputs:(default_inputs n) in
    let o = Run.brute_force ~graph:g ~failures:(Failure.none ~n) ~params ~seed:1 () in
    Metrics.cc o.Run.common.Run.metrics
  in
  let c25 = cc_of 25 and c100 = cc_of 100 in
  check_true "superlinear growth" (c100 > 3 * c25);
  check_true "within N log N scale" (c100 < 100 * 10 * 30)

(* --- Folklore and naive TAG --- *)

let test_folklore_exact_failure_free () =
  List.iter
    (fun (name, g) ->
      let n = Graph.n g in
      let params = params_of g ~inputs:(default_inputs n) in
      let o =
        Run.folklore ~graph:g ~failures:(Failure.none ~n) ~params
          ~mode:(Folklore.Retry 3) ~seed:1 ()
      in
      (match o.Run.f_result with
      | Folklore.Value v -> check_int (name ^ ": exact") (total (default_inputs n)) v
      | Folklore.No_clean_epoch -> Alcotest.fail (name ^ ": dirty without failures"));
      check_int (name ^ ": one epoch suffices") 1 o.Run.epochs)
    (Lazy.force sweep_graphs)

let test_folklore_retries_until_clean () =
  (* One node dies mid-epoch-1: the root must detect the dirty epoch and
     succeed on a retry. *)
  let g = Gen.grid 25 in
  let params = params_of g ~inputs:(default_inputs 25) in
  let epoch = Folklore.epoch_duration params in
  (* kill node 5 during epoch 1's aggregation but after its ack *)
  let failures = Failure.kill_nodes ~n:25 ~nodes:[ 5 ] ~round:(epoch - Params.cd params) in
  let o = Run.folklore ~graph:g ~failures ~params ~mode:(Folklore.Retry 4) ~seed:2 () in
  check_true "took more than one epoch" (o.Run.epochs > 1);
  (match o.Run.f_result with
  | Folklore.Value _ -> ()
  | Folklore.No_clean_epoch -> Alcotest.fail "never clean");
  check_true "correct" o.Run.common.Run.correct

let test_folklore_correct_random () =
  List.iter
    (fun seed ->
      let g = Gen.grid 36 in
      let params = params_of g ~inputs:(default_inputs 36) in
      let f = 6 in
      let mode = Folklore.Retry (f + 1) in
      let failures =
        Failure.random g ~rng:(Prng.create seed) ~budget:f
          ~max_round:(Folklore.duration params mode)
      in
      let o = Run.folklore ~graph:g ~failures ~params ~mode ~seed () in
      check_true "folklore correct" o.Run.common.Run.correct)
    [ 1; 2; 3; 4; 5; 6; 7; 8 ]

let test_naive_tag_breaks_under_failures () =
  (* The motivating baseline: killing an internal node mid-aggregation
     silently loses its whole subtree. *)
  let g = Gen.path 12 in
  let params = params_of g ~inputs:(default_inputs 12) in
  let cd = Params.cd params in
  (* node 1 dies after acking, before its aggregation action *)
  let failures = Failure.kill_nodes ~n:12 ~nodes:[ 1 ] ~round:((2 * cd) + 3) in
  let o = Run.folklore ~graph:g ~failures ~params ~mode:Folklore.Naive ~seed:3 () in
  match o.Run.f_result with
  | Folklore.Value v ->
    (* nodes 2..11 are disconnected (path), so "correct" would allow the
       loss; the point is the naive protocol cannot tell anything
       happened — on a ring where the subtree stays alive it is plainly
       wrong: *)
    check_int "path: subtree lost" 1 v;
    let g = Gen.ring 12 in
    let params = params_of g ~inputs:(default_inputs 12) in
    let cd = Params.cd params in
    let failures = Failure.kill_nodes ~n:12 ~nodes:[ 1 ] ~round:((2 * cd) + 3) in
    let o = Run.folklore ~graph:g ~failures ~params ~mode:Folklore.Naive ~seed:3 () in
    (match o.Run.f_result with
    | Folklore.Value v -> check_true "ring: naive TAG is incorrect" (not
        (Checker.result_correct ~graph:g ~failures ~end_round:o.Run.common.Run.rounds ~params v))
    | Folklore.No_clean_epoch -> Alcotest.fail "naive mode always outputs")
  | Folklore.No_clean_epoch -> Alcotest.fail "naive mode always outputs"

(* --- Algorithm 1 (Theorem 1) --- *)

let tradeoff_on g ~b ~f ~seed =
  let n = Graph.n g in
  let params = params_of g ~inputs:(default_inputs n) in
  let failures =
    Failure.random g ~rng:(Prng.create (seed * 3)) ~budget:f ~max_round:(b * params.Params.d)
  in
  Run.tradeoff ~graph:g ~failures ~params ~b ~f ~seed ()

let test_tradeoff_requires_b_21c () =
  let g = Gen.grid 16 in
  let params = params_of g ~inputs:(default_inputs 16) in
  Alcotest.check_raises "b >= 21c" (Invalid_argument "Tradeoff: need b >= 21c") (fun () ->
      ignore (Run.tradeoff ~graph:g ~failures:(Failure.none ~n:16) ~params ~b:41 ~f:1 ~seed:1 ()))

let test_tradeoff_exact_failure_free () =
  List.iter
    (fun (name, g) ->
      let n = Graph.n g in
      let params = params_of g ~inputs:(default_inputs n) in
      let o = Run.tradeoff ~graph:g ~failures:(Failure.none ~n) ~params ~b:63 ~f:4 ~seed:1 () in
      check_int (name ^ ": exact") (total (default_inputs n)) (Run.value_exn o.Run.result);
      check_true (name ^ ": accepted via a pair")
        (match o.Run.how with Tradeoff.Via_pair _ -> true | Tradeoff.Via_brute_force -> false))
    (Lazy.force sweep_graphs)

let test_theorem1_always_correct () =
  List.iter
    (fun (name, g) ->
      List.iter
        (fun seed ->
          let o = tradeoff_on g ~b:63 ~f:6 ~seed in
          check_true (name ^ ": Theorem 1 correctness") o.Run.common.Run.correct)
        [ 1; 2; 3; 4; 5 ])
    (Lazy.force sweep_graphs)

let test_theorem1_time_bound () =
  List.iter
    (fun (name, g) ->
      let o = tradeoff_on g ~b:63 ~f:6 ~seed:2 in
      check_true (name ^ ": TC <= b flooding rounds") (o.Run.common.Run.flooding_rounds <= 63))
    (Lazy.force sweep_graphs)

let test_tradeoff_interval_arithmetic () =
  let g = Gen.grid 64 in
  let params = params_of g ~inputs:(default_inputs 64) in
  check_int "x at b=21c" 1 (Tradeoff.intervals params ~b:42);
  check_int "x at b=40c" 2 (Tradeoff.intervals params ~b:80);
  check_int "t = 2f/x" 16 (Tradeoff.pair_t params ~b:42 ~f:8);
  check_int "t halves with x" 8 (Tradeoff.pair_t params ~b:80 ~f:8)

let test_tradeoff_survives_concentrated_burst () =
  (* All failures land in one early interval; the protocol must still
     output a correct value (possibly via a later interval or the
     brute-force fallback). *)
  let g = Gen.grid 49 in
  let params = params_of g ~inputs:(default_inputs 49) in
  List.iter
    (fun seed ->
      let failures = Failure.burst g ~rng:(Prng.create seed) ~budget:12 ~round:40 in
      let o = Run.tradeoff ~graph:g ~failures ~params ~b:120 ~f:12 ~seed () in
      check_true "correct under burst" o.Run.common.Run.correct)
    [ 1; 2; 3; 4; 5 ]

let test_tradeoff_lfc_never_accepted () =
  (* A chain failure forcing an LFC in interval 1: VERI must reject it and
     the run must still end correctly. *)
  let g = Gen.ring 30 in
  let params = params_of g ~inputs:(default_inputs 30) in
  let failures = Failure.chain ~n:30 ~first:1 ~len:8 ~round:70 in
  let o = Run.tradeoff ~graph:g ~failures ~params ~b:63 ~f:4 ~seed:4 () in
  check_true "correct despite LFC" o.Run.common.Run.correct

let test_folklore_worst_case_epochs () =
  (* one fresh crash per epoch: the folklore protocol pays one epoch per
     failure — its O(f) TC worst case *)
  let n = 25 in
  let g = Gen.grid n in
  let params = params_of g ~inputs:(default_inputs n) in
  let epoch = Folklore.epoch_duration params in
  let cd = Params.cd params in
  let crashes = 3 in
  (* node k+1 dies during epoch k+1's aggregation window (after its ack) *)
  let failures =
    Failure.of_list ~n
      (List.init crashes (fun k -> (k + 1, (k * epoch) + (2 * cd) + 10)))
  in
  let o = Run.folklore ~graph:g ~failures ~params ~mode:(Folklore.Retry (crashes + 2)) ~seed:4 () in
  check_true "paid one epoch per crash" (o.Run.epochs >= crashes);
  check_true "still correct" o.Run.common.Run.correct

(* --- Sequential (derandomized) strategy --- *)

let test_sequential_strategy_correct () =
  let g = Gen.grid 49 in
  let params = params_of g ~inputs:(default_inputs 49) in
  List.iter
    (fun seed ->
      let failures =
        Failure.random g ~rng:(Prng.create seed) ~budget:8
          ~max_round:(84 * params.Params.d)
      in
      let o =
        Run.tradeoff_with ~strategy:Tradeoff.Sequential ~graph:g ~failures ~params ~b:84
          ~f:8 ~seed ()
      in
      check_true "sequential correct" o.Run.common.Run.correct;
      check_true "sequential within budget" (o.Run.common.Run.flooding_rounds <= 84))
    [ 1; 2; 3 ]

let test_sequential_pays_for_dirty_intervals () =
  (* an LFC chain in interval 1 forces the sequential scan to burn that
     interval; the failure-free tail still succeeds *)
  let n = 64 in
  let w = 8 in
  let g = Gen.grid n in
  let params = params_of g ~inputs:(default_inputs n) in
  let b = 764 in
  let f = 50 in
  let t = Tradeoff.pair_t params ~b ~f in
  let kill_round = (2 * Params.cd params) + 5 in
  let failures =
    Failure.of_list ~n (List.init t (fun r -> (((r + 1) * w) + 1, kill_round)))
  in
  let seq =
    Run.tradeoff_with ~strategy:Tradeoff.Sequential ~graph:g ~failures ~params ~b ~f
      ~seed:1 ()
  in
  check_true "still correct" seq.Run.common.Run.correct;
  (match seq.Run.how with
  | Tradeoff.Via_pair y -> check_true "skipped the dirty interval" (y >= 2)
  | Tradeoff.Via_brute_force -> ());
  (* a clean schedule accepts at interval 1 *)
  let clean =
    Run.tradeoff_with ~strategy:Tradeoff.Sequential ~graph:g
      ~failures:(Failure.none ~n) ~params ~b ~f ~seed:1 ()
  in
  check_true "clean accepts immediately"
    (match clean.Run.how with Tradeoff.Via_pair 1 -> true | _ -> false)

(* --- Unknown f --- *)

let test_unknown_f_exact_failure_free () =
  let g = Gen.grid 36 in
  let params = params_of g ~inputs:(default_inputs 36) in
  let o = Run.unknown_f ~graph:g ~failures:(Failure.none ~n:36) ~params ~seed:1 () in
  check_int "exact" (total (default_inputs 36)) (Run.value_exn o.Run.result);
  check_true "accepted in slot 0"
    (match o.Run.how with Unknown_f.Via_slot 0 -> true | _ -> false)

let test_unknown_f_correct_random () =
  List.iter
    (fun seed ->
      let g = Gen.grid 36 in
      let params = params_of g ~inputs:(default_inputs 36) in
      let failures =
        Failure.random g ~rng:(Prng.create seed) ~budget:8
          ~max_round:(Unknown_f.max_rounds params)
      in
      let o = Run.unknown_f ~graph:g ~failures ~params ~seed () in
      check_true "unknown-f correct" o.Run.common.Run.correct)
    [ 1; 2; 3; 4; 5; 6 ]

let test_unknown_f_early_termination () =
  (* With few actual failures the protocol stops in an early slot, so its
     CC tracks the actual failure count, not a worst-case bound. *)
  let g = Gen.grid 64 in
  let params = params_of g ~inputs:(default_inputs 64) in
  let few = Failure.random g ~rng:(Prng.create 2) ~budget:2 ~max_round:100 in
  let o_few = Run.unknown_f ~graph:g ~failures:few ~params ~seed:2 () in
  let many = Failure.burst g ~rng:(Prng.create 3) ~budget:24 ~round:60 in
  let o_many = Run.unknown_f ~graph:g ~failures:many ~params ~seed:3 () in
  let slot = function Unknown_f.Via_slot gx -> gx | Unknown_f.Via_brute_force -> 99 in
  check_true "few failures end in an early slot" (slot o_few.Run.how <= 2);
  check_true "more failures need later slots or fallback"
    (slot o_many.Run.how >= slot o_few.Run.how);
  check_true "both correct" (o_few.Run.common.Run.correct && o_many.Run.common.Run.correct)

let qcheck_tests =
  let open QCheck in
  [
    Test.make ~name:"Theorem 1: Algorithm 1 always correct (random graphs+adversaries)"
      ~count:30
      (quad (int_range 12 36) (int_range 0 10) (int_range 63 130) small_int)
      (fun (n, f, b, seed) ->
        let g = Topo.random_connected ~n ~p:0.1 ~seed in
        let params = params_of g ~inputs:(default_inputs n) in
        let failures =
          Failure.random g ~rng:(Prng.create (seed + 11)) ~budget:f
            ~max_round:(b * params.Params.d)
        in
        let o = Run.tradeoff ~graph:g ~failures ~params ~b ~f ~seed () in
        o.Run.common.Run.correct && o.Run.common.Run.flooding_rounds <= b);
    Test.make ~name:"brute force: always correct under arbitrary crash schedules" ~count:30
      (triple (int_range 8 30) (int_range 0 20) small_int)
      (fun (n, budget, seed) ->
        let g = Topo.random_connected ~n ~p:0.15 ~seed in
        let params = params_of g ~inputs:(default_inputs n) in
        let failures =
          Failure.random g ~rng:(Prng.create (seed + 1)) ~budget ~max_round:80
        in
        let o = Run.brute_force ~graph:g ~failures ~params ~seed () in
        o.Run.common.Run.correct);
    Test.make ~name:"folklore: correct whenever it reports a value" ~count:30
      (triple (int_range 8 30) (int_range 0 8) small_int)
      (fun (n, f, seed) ->
        let g = Topo.random_connected ~n ~p:0.15 ~seed in
        let params = params_of g ~inputs:(default_inputs n) in
        let mode = Folklore.Retry (f + 1) in
        let failures =
          Failure.random g ~rng:(Prng.create (seed + 2)) ~budget:f
            ~max_round:(Folklore.duration params mode)
        in
        let o = Run.folklore ~graph:g ~failures ~params ~mode ~seed () in
        o.Run.common.Run.correct);
  ]

let suite =
  List.map
    (fun (n, f) -> Alcotest.test_case n `Quick f)
    [
      ("brute: exact failure-free", test_brute_force_exact_failure_free);
      ("brute: always correct", test_brute_force_always_correct);
      ("brute: CC scale", test_brute_force_cc_order_n_log_n);
      ("folklore: exact failure-free", test_folklore_exact_failure_free);
      ("folklore: retries until clean", test_folklore_retries_until_clean);
      ("folklore: correct random", test_folklore_correct_random);
      ("naive TAG: breaks under failures", test_naive_tag_breaks_under_failures);
      ("folklore: worst-case epochs", test_folklore_worst_case_epochs);
      ("tradeoff: b >= 21c", test_tradeoff_requires_b_21c);
      ("tradeoff: exact failure-free", test_tradeoff_exact_failure_free);
      ("tradeoff: Theorem 1 correctness", test_theorem1_always_correct);
      ("tradeoff: Theorem 1 time bound", test_theorem1_time_bound);
      ("tradeoff: interval arithmetic", test_tradeoff_interval_arithmetic);
      ("tradeoff: concentrated burst", test_tradeoff_survives_concentrated_burst);
      ("tradeoff: LFC never accepted", test_tradeoff_lfc_never_accepted);
      ("sequential: correct", test_sequential_strategy_correct);
      ("sequential: dirty interval skipped", test_sequential_pays_for_dirty_intervals);
      ("unknown-f: exact failure-free", test_unknown_f_exact_failure_free);
      ("unknown-f: correct random", test_unknown_f_correct_random);
      ("unknown-f: early termination", test_unknown_f_early_termination);
    ]
  @ List.map QCheck_alcotest.to_alcotest qcheck_tests
