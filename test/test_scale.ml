(* lib/scale: streaming CSR graphs, the partitioned executor, pooling and
   memory metering.

   The load-bearing suite is the differential pin: the executor must be
   byte-identical to Engine.run — same results, same per-node bit/msg
   accounting, same round counts — on the same topology/seed/failures,
   for every domain count. *)

open Ftagg
open Helpers

let seed = 11

(* ---------------------------------------------------------------- *)
(* Bigraph                                                           *)
(* ---------------------------------------------------------------- *)

let test_bigraph_matches_csr () =
  List.iter
    (fun (name, fam) ->
      List.iter
        (fun n ->
          let g = Topo.build fam ~n ~seed in
          let bg = Bigraph.of_iter ~n (Topo.iter_edges fam ~n ~seed) in
          check_true
            (Printf.sprintf "%s n=%d: streamed CSR = materialised CSR" name n)
            (Bigraph.equal_csr bg (Graph.csr g));
          check_int (Printf.sprintf "%s n=%d: edge count" name n) (Graph.num_edges g)
            (Bigraph.num_edges bg))
        [ 12; 40 ])
    (Topo.all_families ~seed)

let test_bigraph_of_graph () =
  let g = Topo.build Topo.Grid ~n:30 ~seed in
  let bg = Bigraph.of_graph g in
  check_true "of_graph = csr" (Bigraph.equal_csr bg (Graph.csr g));
  (* removed nodes get empty rows, like Graph.csr *)
  let g' = Graph.remove_nodes g [ 7 ] in
  let bg' = Bigraph.of_graph g' in
  check_int "removed node row empty" 0 (Bigraph.degree bg' 7);
  check_true "of_graph respects removal" (Bigraph.equal_csr bg' (Graph.csr g'))

let test_bigraph_roundtrip () =
  let g = Topo.build Topo.Torus ~n:25 ~seed in
  let back = Bigraph.to_graph (Bigraph.of_graph g) in
  let edges gr = List.rev (Graph.fold_edges (fun u v acc -> (u, v) :: acc) gr []) in
  check_true "to_graph round-trips edges" (edges g = edges back)

let test_bigraph_dedup_and_rejects () =
  let bg = Bigraph.of_iter ~n:3 (fun emit -> emit 0 1; emit 1 0; emit 0 1; emit 1 2) in
  check_int "duplicates collapse" 2 (Bigraph.num_edges bg);
  Alcotest.check_raises "self-loop" (Invalid_argument "Bigraph.of_iter: self-loop") (fun () ->
      ignore (Bigraph.of_iter ~n:3 (fun emit -> emit 1 1)));
  Alcotest.check_raises "out of range"
    (Invalid_argument "Bigraph.of_iter: endpoint out of range") (fun () ->
      ignore (Bigraph.of_iter ~n:3 (fun emit -> emit 0 3)))

let test_degree_histogram () =
  let bg = Bigraph.of_graph (Topo.star 10) in
  check_true "star histogram" (Bigraph.degree_histogram bg = [ (1, 9); (9, 1) ])

let test_validate_specs () =
  List.iter
    (fun spec ->
      let bg = Bigraph.build spec ~n:300 ~seed in
      match Bigraph.validate ~spec bg with
      | Ok () -> ()
      | Error e -> Alcotest.failf "%s invalid: %s" (Bigraph.spec_name spec) e)
    [ Bigraph.Grid; Bigraph.Torus; Bigraph.Random_regular 4; Bigraph.Pref_attach 2 ]

let test_validate_disconnected () =
  let bg = Bigraph.of_iter ~n:4 (fun emit -> emit 0 1) in
  match Bigraph.validate bg with
  | Ok () -> Alcotest.fail "disconnected graph validated"
  | Error e -> check_true "mentions disconnection" (string_contains ~needle:"disconnected" e)

let test_pref_attach_shape () =
  let m = 2 in
  let bg = Bigraph.build (Bigraph.Pref_attach m) ~n:500 ~seed in
  check_int "n" 500 (Bigraph.n bg);
  check_true "connected" (Bigraph.connected bg);
  check_true "root is a hub" (Bigraph.degree bg Graph.root >= m);
  let min_deg = ref max_int in
  for u = 0 to 499 do
    min_deg := min !min_deg (Bigraph.degree bg u)
  done;
  check_true "min degree >= 1" (!min_deg >= 1);
  (* determinism *)
  let bg' = Bigraph.build (Bigraph.Pref_attach m) ~n:500 ~seed in
  check_true "same seed, same graph" (Bigraph.equal_csr bg (Graph.csr (Bigraph.to_graph bg')))

let test_pseudo_diameter () =
  List.iter
    (fun (name, g) ->
      let exact = match Path.diameter g with Some d -> d | None -> assert false in
      check_int (name ^ " pseudo-diameter exact") exact
        (Bigraph.pseudo_diameter (Bigraph.of_graph g)))
    [ ("path", Topo.path 50); ("grid", Topo.grid 49); ("star", Topo.star 20);
      ("binary_tree", Topo.binary_tree 31) ]

(* ---------------------------------------------------------------- *)
(* Pool and Mem                                                      *)
(* ---------------------------------------------------------------- *)

let test_pool_cycle () =
  let reg = Registry.create () in
  let p = Scale_pool.create ~registry:reg ~name:"t" ~slot_bytes:64 ~slots:2 () in
  let a = Scale_pool.acquire p in
  let b = Scale_pool.acquire p in
  check_int "in_use" 2 (Scale_pool.in_use p);
  check_int "high water" 2 (Scale_pool.high_water p);
  (try
     ignore (Scale_pool.acquire p);
     Alcotest.fail "exhausted pool acquired"
   with Scale_pool.Exhausted _ -> ());
  Scale_pool.release p a;
  Scale_pool.release p b;
  check_int "in_use back to 0" 0 (Scale_pool.in_use p);
  check_int "acquires" 2 (Scale_pool.acquires p);
  check_int "releases" 2 (Scale_pool.releases p);
  check_int "acquire counter" 2
    (Registry.counter reg ~labels:[ ("pool", "t") ] "scale_pool_acquires_total");
  check_true "in_use gauge 0"
    (Registry.gauge reg ~labels:[ ("pool", "t") ] "scale_pool_in_use" = Some 0.0);
  Alcotest.check_raises "foreign buffer"
    (Invalid_argument "Pool.release: buffer not from this pool") (fun () ->
      Scale_pool.release p (Bytes.create 7))

let test_mem_meter () =
  check_true "live bytes positive" (Scale_mem.live_bytes () > 0);
  (match Scale_mem.peak_rss_kb () with
  | Some kb -> check_true "peak rss positive" (kb > 0)
  | None -> ());
  let m = Scale_mem.create ~limit_bytes:1 ~check_every:1 ~n:10 () in
  (try
     Scale_mem.check m ~round:1;
     Alcotest.fail "ceiling not enforced"
   with Scale_mem.Ceiling_exceeded { limit_bytes; live_bytes; round } ->
     check_int "limit" 1 limit_bytes;
     check_int "round" 1 round;
     check_true "live > limit" (live_bytes > limit_bytes));
  check_true "peak recorded" (Scale_mem.peak_live_bytes m > 0);
  (* off-cadence rounds are not sampled *)
  let m2 = Scale_mem.create ~limit_bytes:1 ~check_every:64 ~n:10 () in
  Scale_mem.check m2 ~round:63

(* ---------------------------------------------------------------- *)
(* Executor: differential pin vs Engine.run                          *)
(* ---------------------------------------------------------------- *)

let check_pin name ~graph ~failures ~params ~domains =
  let out = Run.agg ~graph ~failures ~params ~seed () in
  let bg = Bigraph.of_graph graph in
  let scale = Scale_run.agg ~domains ~graph:bg ~failures ~params ~seed () in
  check_true (name ^ ": result") (out.Run.result = scale.Scale_run.result);
  check_int (name ^ ": rounds") out.Run.common.Run.rounds scale.Scale_run.rounds;
  check_int (name ^ ": cc") (Metrics.cc out.Run.common.Run.metrics)
    (Metrics.cc scale.Scale_run.metrics);
  for u = 0 to Graph.n graph - 1 do
    check_int
      (Printf.sprintf "%s: bits(%d)" name u)
      (Metrics.bits_sent out.Run.common.Run.metrics u)
      (Metrics.bits_sent scale.Scale_run.metrics u);
    check_int
      (Printf.sprintf "%s: msgs(%d)" name u)
      (Metrics.msgs_sent out.Run.common.Run.metrics u)
      (Metrics.msgs_sent scale.Scale_run.metrics u)
  done

let test_differential_pin () =
  List.iter
    (fun (fname, fam) ->
      let n = 24 in
      let graph = Topo.build fam ~n ~seed in
      let params = params_of ~t:1 graph ~inputs:(default_inputs n) in
      List.iter
        (fun domains ->
          let name = Printf.sprintf "%s d=%d" fname domains in
          check_pin name ~graph ~failures:(Failure.none ~n) ~params ~domains;
          check_pin (name ^ " +crash") ~graph
            ~failures:(Failure.kill_nodes ~n ~nodes:[ n - 1; n / 2 ] ~round:3)
            ~params ~domains)
        [ 1; 2; 4 ])
    [ ("grid", Topo.Grid); ("torus", Topo.Torus); ("regular", Topo.Random_regular 4) ]

let test_pin_across_seeds () =
  let n = 30 in
  let graph = Topo.build (Topo.Random 0.08) ~n ~seed:3 in
  let params = params_of ~t:1 graph ~inputs:(default_inputs n) in
  List.iter
    (fun s ->
      let out = Run.agg ~graph ~failures:(Failure.none ~n) ~params ~seed:s () in
      let scale =
        Scale_run.agg ~domains:3 ~graph:(Bigraph.of_graph graph) ~failures:(Failure.none ~n)
          ~params ~seed:s ()
      in
      check_true (Printf.sprintf "seed %d result" s) (out.Run.result = scale.Scale_run.result);
      check_int
        (Printf.sprintf "seed %d total bits" s)
        (Metrics.total_bits out.Run.common.Run.metrics)
        (Metrics.total_bits scale.Scale_run.metrics))
    [ 1; 2; 5; 42 ]

let test_scale_run_correct () =
  let n = 200 in
  let bg = Bigraph.build (Bigraph.Random_regular 4) ~n ~seed in
  let inputs = default_inputs n in
  let params = Scale_run.params ~graph:bg ~inputs () in
  let out = Scale_run.agg ~domains:2 ~graph:bg ~failures:(Failure.none ~n) ~params ~seed () in
  check_true "failure-free AGG computes the sum"
    (out.Scale_run.result = Agg.Value (Scale_run.expected_sum params))

let test_partitions_cover () =
  let parts = Scale_executor.partitions ~n:10 ~domains:3 in
  check_true "partition bounds" (parts = [| (0, 3); (3, 6); (6, 10) |]);
  let parts = Scale_executor.partitions ~n:5 ~domains:8 in
  let covered = Array.make 5 0 in
  Array.iter
    (fun (lo, hi) ->
      for u = lo to hi - 1 do
        covered.(u) <- covered.(u) + 1
      done)
    parts;
  Array.iteri (fun u c -> check_int (Printf.sprintf "node %d owned once" u) 1 c) covered

let test_frontier_edges () =
  let bg = Bigraph.of_graph (Topo.path 10) in
  check_int "path split in two" 1 (Scale_executor.frontier_edges bg ~domains:2);
  check_int "one partition, no frontier" 0 (Scale_executor.frontier_edges bg ~domains:1)

let test_executor_counters () =
  let reg = Registry.create () in
  let n = 60 in
  let bg = Bigraph.build Bigraph.Grid ~n ~seed in
  let inputs = default_inputs n in
  let params = Scale_run.params ~graph:bg ~inputs () in
  let meter = Scale_mem.create ~registry:reg ~n () in
  let out =
    Scale_run.agg ~domains:2 ~registry:reg ~meter ~graph:bg ~failures:(Failure.none ~n) ~params
      ~seed ()
  in
  check_int "rounds counter" out.Scale_run.rounds (Registry.counter reg "scale_rounds_total");
  check_true "domains gauge" (Registry.gauge reg "scale_domains" = Some 2.0);
  check_true "live bytes gauge"
    (match Registry.gauge reg "scale_live_bytes" with Some b -> b > 0.0 | None -> false);
  check_true "pool returned"
    (Registry.gauge reg ~labels:[ ("pool", "executor") ] "scale_pool_in_use" = Some 0.0);
  check_true "minor words gauge present"
    (Registry.gauge reg "scale_minor_words_per_round" <> None)

(* A trivial counting protocol for executor-mechanics tests: every node
   broadcasts its id every round. *)
let chatty_protocol ?(raise_at = -1) ?(raise_me = -1) () =
  {
    Engine.name = "chatty";
    init = (fun u ~rng:_ -> u);
    step =
      (fun ~round ~me ~state ~inbox:_ ->
        if round = raise_at && me = raise_me then failwith "boom";
        (state, [ me ]));
    msg_bits = (fun _ -> 8);
    root_done = (fun _ -> false);
  }

let test_torn_barrier () =
  let n = 40 in
  let bg = Bigraph.of_graph (Topo.ring n) in
  let pool = Scale_pool.create ~slot_bytes:n ~slots:2 () in
  (try
     ignore
       (Scale_executor.run ~domains:2 ~pool ~graph:bg ~failures:(Failure.none ~n) ~max_rounds:10
          ~seed
          (chatty_protocol ~raise_at:3 ~raise_me:(n - 1) ()));
     Alcotest.fail "partition failure not propagated"
   with Scale_executor.Partition_failed { round; partition; exn } ->
     check_int "failed at round" 3 round;
     check_int "failing partition" 1 partition;
     check_true "original exn" (exn = Failure "boom"));
  (* clean abort: pool slots came back, and the executor is reusable *)
  check_int "pool released after abort" 0 (Scale_pool.in_use pool);
  let states, metrics =
    Scale_executor.run ~domains:2 ~pool ~graph:bg ~failures:(Failure.none ~n) ~max_rounds:5 ~seed
      (chatty_protocol ())
  in
  check_int "reusable pool" 0 (Scale_pool.in_use pool);
  check_int "rounds" 5 (Metrics.rounds metrics);
  check_int "states intact" n (Array.length states)

let test_ceiling_aborts_run () =
  let n = 40 in
  let bg = Bigraph.of_graph (Topo.ring n) in
  let pool = Scale_pool.create ~slot_bytes:n ~slots:2 () in
  let meter = Scale_mem.create ~limit_bytes:1 ~check_every:2 ~n () in
  (try
     ignore
       (Scale_executor.run ~domains:2 ~pool ~meter ~graph:bg ~failures:(Failure.none ~n)
          ~max_rounds:10 ~seed (chatty_protocol ()));
     Alcotest.fail "ceiling not enforced"
   with Scale_mem.Ceiling_exceeded { round; _ } -> check_int "tripped at first sample" 2 round);
  check_int "pool released after ceiling abort" 0 (Scale_pool.in_use pool)

let qcheck_tests =
  let open QCheck in
  [
    Test.make ~name:"partition boundaries never change outcomes" ~count:30
      (triple (int_range 8 60) (int_range 0 1000) (int_range 2 5))
      (fun (n, s, domains) ->
        let graph = Topo.build (Topo.Random 0.1) ~n ~seed:s in
        let params = Params.make ~c:2 ~t:1 ~graph ~inputs:(Array.make n 1) () in
        let bg = Bigraph.of_graph graph in
        let failures = Failure.none ~n in
        let base = Scale_run.agg ~domains:1 ~graph:bg ~failures ~params ~seed:s () in
        let split = Scale_run.agg ~domains ~graph:bg ~failures ~params ~seed:s () in
        base.Scale_run.result = split.Scale_run.result
        && base.Scale_run.rounds = split.Scale_run.rounds
        && Metrics.cc base.Scale_run.metrics = Metrics.cc split.Scale_run.metrics
        && Metrics.total_bits base.Scale_run.metrics
           = Metrics.total_bits split.Scale_run.metrics);
    Test.make ~name:"streamed CSR equals materialised CSR on random graphs" ~count:40
      (pair (int_range 5 80) (int_range 0 1000))
      (fun (n, s) ->
        let fam = Topo.Random 0.1 in
        Bigraph.equal_csr
          (Bigraph.of_iter ~n (Topo.iter_edges fam ~n ~seed:s))
          (Graph.csr (Topo.build fam ~n ~seed:s)));
  ]

let suite =
  List.map
    (fun (n, f) -> Alcotest.test_case n `Quick f)
    [
      ("bigraph: streamed = materialised CSR", test_bigraph_matches_csr);
      ("bigraph: of_graph", test_bigraph_of_graph);
      ("bigraph: to_graph round-trip", test_bigraph_roundtrip);
      ("bigraph: dedup and rejects", test_bigraph_dedup_and_rejects);
      ("bigraph: degree histogram", test_degree_histogram);
      ("bigraph: validate specs", test_validate_specs);
      ("bigraph: validate disconnected", test_validate_disconnected);
      ("bigraph: pref_attach shape", test_pref_attach_shape);
      ("bigraph: pseudo-diameter", test_pseudo_diameter);
      ("pool: acquire/release cycle", test_pool_cycle);
      ("mem: meter and ceiling", test_mem_meter);
      ("executor: differential pin vs Engine.run", test_differential_pin);
      ("executor: pin across seeds", test_pin_across_seeds);
      ("executor: scale AGG correct", test_scale_run_correct);
      ("executor: partitions cover", test_partitions_cover);
      ("executor: frontier edges", test_frontier_edges);
      ("executor: registry counters", test_executor_counters);
      ("executor: torn barrier aborts cleanly", test_torn_barrier);
      ("executor: memory ceiling aborts run", test_ceiling_aborts_run);
    ]
  @ List.map QCheck_alcotest.to_alcotest qcheck_tests
