(* Cross-protocol consistency and remaining edge cases. *)

open Ftagg
open Helpers

let test_all_protocols_agree_failure_free () =
  (* on a failure-free instance every protocol must return the exact
     aggregate, for every CAAF it can carry *)
  let n = 30 in
  let g = Gen.grid n in
  List.iter
    (fun (caaf : Caaf.t) ->
      let inputs =
        if caaf.Caaf.name = "or" || caaf.Caaf.name = "and" then
          Array.init n (fun i -> i mod 2)
        else Array.init n (fun i -> (i mod 11) + 1)
      in
      let params = Params.make ~c:2 ~t:2 ~caaf ~graph:g ~inputs () in
      let want = Caaf.aggregate caaf (Array.to_list inputs) in
      let failures = Failure.none ~n in
      let tr = Run.tradeoff ~graph:g ~failures ~params ~b:63 ~f:2 ~seed:1 () in
      let bf = Run.brute_force ~graph:g ~failures ~params ~seed:1 () in
      let fo = Run.folklore ~graph:g ~failures ~params ~mode:(Folklore.Retry 2) ~seed:1 () in
      let uf = Run.unknown_f ~graph:g ~failures ~params ~seed:1 () in
      check_int (caaf.Caaf.name ^ ": tradeoff") want (Run.value_exn tr.Run.result);
      check_int (caaf.Caaf.name ^ ": brute") want (Run.value_exn bf.Run.result);
      (match fo.Run.f_result with
      | Folklore.Value v -> check_int (caaf.Caaf.name ^ ": folklore") want v
      | Folklore.No_clean_epoch -> Alcotest.fail "folklore dirty without failures");
      check_int (caaf.Caaf.name ^ ": unknown-f") want (Run.value_exn uf.Run.result))
    [ Instances.sum; Instances.count; Instances.max_; Instances.bool_or; Instances.gcd ]

let test_pair_on_hypercube_and_two_tier () =
  List.iter
    (fun (name, g) ->
      let n = Graph.n g in
      let params = params_of ~t:3 g ~inputs:(default_inputs n) in
      let clean = Run.pair ~graph:g ~failures:(Failure.none ~n) ~params ~seed:1 () in
      (match clean.Run.verdict.Pair.result with
      | Agg.Value v -> check_int (name ^ ": exact") (total (default_inputs n)) v
      | Agg.Aborted -> Alcotest.fail (name ^ ": aborted"));
      List.iter
        (fun seed ->
          let failures =
            Failure.random g ~rng:(Prng.create (seed * 23)) ~budget:3 ~max_round:300
          in
          let o = Run.pair ~graph:g ~failures ~params ~seed () in
          check_pair_guarantees o ~t:3)
        [ 1; 2; 3 ])
    [ ("hypercube", Gen.hypercube 5); ("two_tier", Gen.two_tier ~clusters:5 ~cluster_size:5) ]

let test_engine_loss_validation () =
  let g = Gen.path 3 in
  let proto =
    {
      Engine.name = "noop";
      init = (fun _ ~rng:_ -> ());
      step = (fun ~round:_ ~me:_ ~state:() ~inbox:_ -> ((), ([] : int list)));
      msg_bits = (fun _ -> 0);
      root_done = (fun _ -> false);
    }
  in
  Alcotest.check_raises "loss >= 1 rejected"
    (Invalid_argument "Engine.run: loss must be in [0, 1)") (fun () ->
      ignore (Engine.run ~loss:1.0 ~graph:g ~failures:(Failure.none ~n:3) ~max_rounds:1 ~seed:0 proto))

let test_engine_loss_zero_identical () =
  (* loss = 0 must leave runs bit-for-bit identical to the default *)
  let n = 25 in
  let g = Gen.grid n in
  let params = params_of ~t:2 g ~inputs:(default_inputs n) in
  let mk () =
    {
      Engine.name = "pair";
      init = (fun u ~rng:_ -> Pair.create params ~me:u);
      step =
        (fun ~round ~me:_ ~state ~inbox ->
          let inbox =
            List.filter_map
              (fun (s, m) -> if m.Message.exec = 0 then Some (s, m.Message.body) else None)
              inbox
          in
          let out = Pair.step state ~rr:round ~inbox in
          (state, List.map (fun body -> Message.{ exec = 0; body }) out));
      msg_bits = Message.msg_bits params;
      root_done = (fun _ -> false);
    }
  in
  let dur = Pair.duration params in
  let _, m0 =
    Engine.run ~graph:g ~failures:(Failure.none ~n) ~max_rounds:dur ~seed:1 (mk ())
  in
  let _, m1 =
    Engine.run ~loss:0.0 ~graph:g ~failures:(Failure.none ~n) ~max_rounds:dur ~seed:1 (mk ())
  in
  for u = 0 to n - 1 do
    check_int "identical bits" (Metrics.bits_sent m0 u) (Metrics.bits_sent m1 u)
  done

let test_tradeoff_rejects_aborted_pair_result () =
  (* Algorithm 1 accepts only (no abort && VERI true); an LFC-chain in the
     first interval must never surface a wrong value *)
  let n = 30 in
  let g = Gen.ring n in
  let params = params_of g ~inputs:(default_inputs n) in
  List.iter
    (fun len ->
      let failures = Failure.chain ~n ~first:1 ~len ~round:70 in
      let o = Run.tradeoff ~graph:g ~failures ~params ~b:84 ~f:4 ~seed:3 () in
      check_true (Printf.sprintf "chain %d: correct" len) o.Run.common.Run.correct)
    [ 2; 4; 8; 12 ]

let test_network_report_consistency () =
  (* the facade's report fields must agree with the underlying run *)
  let net = Network.create Gen.Grid ~n:25 ~seed:8 () in
  let inputs = Array.make 25 4 in
  let r = Network.sum net ~inputs ~b:63 ~f:2 in
  check_true "rounds vs flooding rounds"
    (r.Network.flooding_rounds = (r.Network.rounds + Network.diameter net - 1) / Network.diameter net);
  check_int "value" 100 (Network.value_exn r)

let suite =
  List.map
    (fun (n, f) -> Alcotest.test_case n `Quick f)
    [
      ("cross: protocols agree failure-free", test_all_protocols_agree_failure_free);
      ("cross: hypercube and two-tier", test_pair_on_hypercube_and_two_tier);
      ("engine: loss validation", test_engine_loss_validation);
      ("engine: loss 0 identical", test_engine_loss_zero_identical);
      ("cross: LFC chains never surface wrong values", test_tradeoff_rejects_aborted_pair_result);
      ("cross: facade report consistency", test_network_report_consistency);
    ]
