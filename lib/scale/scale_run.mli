(** AGG on a [Bigraph] through the partitioned executor — the high-level
    entry point the CLI ([ftagg run --scale]), the bench (e23) and the
    tests share.

    [Params] are constructed without ever materialising the graph:
    {!params} derives the diameter from {!Bigraph.pseudo_diameter}
    (exact all-pairs BFS being infeasible at 10^6 nodes).  For
    differential pins, pass the {e same} [Params.t] to [Run.agg] and to
    {!agg} — the executor is then byte-identical to [Engine.run]. *)

type outcome = {
  result : Ftagg_proto.Agg.result;
  metrics : Ftagg_sim.Metrics.t;
  rounds : int;
  states : Ftagg_proto.Agg.node array;
      (** per-node final protocol states, for differential comparison *)
}

val params :
  ?c:int -> ?t:int -> graph:Bigraph.t -> inputs:int array -> unit -> Ftagg_proto.Params.t
(** Defaults: [c = 2], [t = 1].  [d] is the pseudo-diameter;
    [max_input] is the max input (at least 1); [caaf] is SUM.  Raises on
    an input-length mismatch or a negative input. *)

val protocol :
  Ftagg_proto.Params.t ->
  (Ftagg_proto.Agg.node, Ftagg_proto.Message.body) Ftagg_sim.Engine.protocol
(** The same AGG automaton wrapping [Run.agg] uses ([Run]'s
    single-execution protocol: raw bodies, [Message.bits] accounting,
    fixed [Agg.duration] rounds). *)

val agg :
  ?domains:int ->
  ?meter:Mem.t ->
  ?pool:Pool.t ->
  ?registry:Ftagg_obs.Registry.t ->
  graph:Bigraph.t ->
  failures:Ftagg_sim.Failure.t ->
  params:Ftagg_proto.Params.t ->
  seed:int ->
  unit ->
  outcome
(** One AGG execution of [Agg.duration params] rounds on the executor. *)

val expected_sum : Ftagg_proto.Params.t -> int
(** The failure-free ground truth ([SUM] of the inputs) — the scale
    substitute for the [Checker]'s model-level correctness predicate,
    valid when no failures are scheduled. *)
