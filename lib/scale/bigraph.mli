(** Streaming million-node graphs: a packed CSR over Bigarray-backed int
    arrays, built from a single pass over an edge emission.

    The materialised {!Ftagg_graph.Graph} costs one [Set.Make(Int)] node
    per edge endpoint (~hundreds of bytes/edge with boxing) — fine at
    10^3 nodes, hopeless at 10^6.  A [Bigraph.t] stores the same
    adjacency as two flat off-heap int arrays (~16 bytes/directed edge),
    so a 1M-node, 4M-edge topology is ~130 MB instead of many GB, and
    the GC never scans it.

    Construction streams: {!of_iter} consumes the same [emit u v]
    emission that [Gen.iter_edges] produces (one edge source for both
    the small-graph and the scale path), buffering endpoints in fixed
    8 MB chunks, then counting, prefix-summing, filling, sorting and
    deduplicating each row in place.  Rows end up sorted ascending with
    self-loops and duplicates dropped — exactly the
    {!Ftagg_graph.Graph.Csr} row discipline, so an executor walking a
    [Bigraph] sees the same neighbour order (and hence produces the same
    PRNG streams and inboxes) as [Engine.run] walking
    [Graph.csr (Graph.of_iter ...)] of the same emission; {!equal_csr}
    checks that equivalence and the differential tests pin it. *)

type ints = (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t

type t = private {
  n : int;  (** node count *)
  m : int;  (** undirected edge count after dedup *)
  offsets : ints;  (** [n + 1] entries *)
  targets : ints;  (** [2m] entries; row [u] sorted ascending *)
}
(** Exposed for hot loops; treat the arrays as read-only. *)

val of_iter : n:int -> ((int -> int -> unit) -> unit) -> t
(** [of_iter ~n iter] builds the CSR from [iter emit].  Duplicate edges
    collapse; self-loops and out-of-range endpoints raise
    [Invalid_argument] (matching [Graph.of_iter]). *)

val of_graph : Ftagg_graph.Graph.t -> t
(** Snapshot a materialised graph (its present subgraph, like
    [Graph.csr]).  For differential tests and small-graph interop. *)

val to_graph : t -> Ftagg_graph.Graph.t
(** Materialise (small graphs only — costs what [Graph.t] costs). *)

val n : t -> int
val num_edges : t -> int
val degree : t -> int -> int
val iter_neighbors : t -> int -> (int -> unit) -> unit

val equal_csr : t -> Ftagg_graph.Graph.Csr.t -> bool
(** Row-exact equality with a materialised CSR snapshot. *)

(** {2 Scale topologies} *)

type spec =
  | Grid
  | Torus
  | Random_regular of int
  | Pref_attach of int
      (** Barabási–Albert preferential attachment: each new node links to
          [m] existing nodes sampled proportionally to degree (repeated
          sampling may collapse, so degrees are approximately [m]+).
          Heavy-tailed degrees — the hub-and-spoke contrast to the
          bounded-degree families.  Needs [n >= m + 2]. *)

val spec_name : spec -> string

val spec_of_family : Ftagg_graph.Gen.family -> spec option
(** The scale counterpart of a [Gen] family, when one exists (grid,
    torus, random-regular). *)

val iter_spec : spec -> n:int -> seed:int -> (int -> int -> unit) -> unit
(** The edge emission: grid/torus/random-regular delegate to
    [Gen.iter_edges] (same seed ⇒ same edges as the materialised
    generators); preferential attachment is native here. *)

val build : spec -> n:int -> seed:int -> t
(** [of_iter ~n (iter_spec spec ~n ~seed)]. *)

(** {2 Validation and structure} *)

val degree_histogram : t -> (int * int) list
(** [(degree, node_count)] pairs, ascending by degree. *)

val validate : ?spec:spec -> t -> (unit, string) result
(** Structural soundness: every row strictly ascending (no self-loops or
    duplicates), adjacency symmetric, graph connected from the root; with
    [?spec], additionally that the degree histogram fits the family's
    envelope (grid/torus within [1..4] resp. [2..4], random-regular
    within [2..k+2], preferential attachment minimum ≥ 1). *)

val connected : t -> bool

val pseudo_diameter : t -> int
(** Double-sweep BFS lower bound on the diameter (exact on trees, and on
    the generators above empirically tight): BFS from the root, then BFS
    again from the farthest node found.  At least 1.  The scale
    substitute for [Params.make]'s exact all-pairs computation, which is
    infeasible at 10^6 nodes. *)
