module Graph = Ftagg_graph.Graph
module Gen = Ftagg_graph.Gen
module Prng = Ftagg_util.Prng

type ints = (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t

type t = {
  n : int;
  m : int;
  offsets : ints;
  targets : ints;
}

let make_ints len : ints = Bigarray.Array1.create Bigarray.int Bigarray.c_layout len
let get = Bigarray.Array1.unsafe_get
let set = Bigarray.Array1.unsafe_set

(* ------------------------------------------------------------------ *)
(* Row sorting: in-place quicksort with an insertion-sort tail.  Rows  *)
(* are usually tiny (bounded-degree topologies) but can reach n on     *)
(* dense test graphs, so plain insertion sort is not enough.           *)
(* ------------------------------------------------------------------ *)

let insertion_sort a lo hi =
  for i = lo + 1 to hi - 1 do
    let x = get a i in
    let j = ref (i - 1) in
    while !j >= lo && get a !j > x do
      set a (!j + 1) (get a !j);
      decr j
    done;
    set a (!j + 1) x
  done

let rec sort_range a lo hi =
  let len = hi - lo in
  if len > 1 then
    if len <= 24 then insertion_sort a lo hi
    else begin
      let x = get a lo and y = get a (lo + (len / 2)) and z = get a (hi - 1) in
      let pivot = max (min x y) (min (max x y) z) in
      let i = ref lo and j = ref (hi - 1) in
      while !i <= !j do
        while get a !i < pivot do
          incr i
        done;
        while get a !j > pivot do
          decr j
        done;
        if !i <= !j then begin
          let tmp = get a !i in
          set a !i (get a !j);
          set a !j tmp;
          incr i;
          decr j
        end
      done;
      sort_range a lo (!j + 1);
      sort_range a !i hi
    end

(* ------------------------------------------------------------------ *)
(* Streaming build                                                     *)
(* ------------------------------------------------------------------ *)

(* 2^20 ints = 8 MB per chunk.  Even, so (u, v) pairs never straddle a
   chunk boundary. *)
let chunk_words = 1 lsl 20

let of_iter ~n iter =
  if n <= 0 then invalid_arg "Bigraph.of_iter: n must be positive";
  (* Pass 1: stream endpoint pairs into fixed-size chunks. *)
  let full = ref [] in
  let cur = ref (make_ints chunk_words) in
  let len = ref 0 in
  let push x =
    if !len = chunk_words then begin
      full := !cur :: !full;
      cur := make_ints chunk_words;
      len := 0
    end;
    set !cur !len x;
    incr len
  in
  iter (fun u v ->
      if u < 0 || u >= n || v < 0 || v >= n then
        invalid_arg "Bigraph.of_iter: endpoint out of range";
      if u = v then invalid_arg "Bigraph.of_iter: self-loop";
      push u;
      push v);
  let iter_pairs f =
    let scan chunk l =
      let i = ref 0 in
      while !i < l do
        f (get chunk !i) (get chunk (!i + 1));
        i := !i + 2
      done
    in
    List.iter (fun c -> scan c chunk_words) (List.rev !full);
    scan !cur !len
  in
  (* Pass 2: degree count, prefix sums, fill (reusing the degree array as
     per-row cursors). *)
  let deg = make_ints n in
  Bigarray.Array1.fill deg 0;
  iter_pairs (fun u v ->
      set deg u (get deg u + 1);
      set deg v (get deg v + 1));
  let offsets = make_ints (n + 1) in
  set offsets 0 0;
  for u = 0 to n - 1 do
    set offsets (u + 1) (get offsets u + get deg u)
  done;
  let targets = make_ints (get offsets n) in
  for u = 0 to n - 1 do
    set deg u (get offsets u)
  done;
  iter_pairs (fun u v ->
      set targets (get deg u) v;
      set deg u (get deg u + 1);
      set targets (get deg v) u;
      set deg v (get deg v + 1));
  (* Pass 3: sort every row, then compact duplicates in place.  The write
     cursor never overtakes the read cursor, so one array suffices; old
     row bounds are carried in [row_start] because [offsets.(u)] is
     rewritten as soon as row u is compacted. *)
  for u = 0 to n - 1 do
    sort_range targets (get offsets u) (get offsets (u + 1))
  done;
  let w = ref 0 in
  let row_start = ref 0 in
  for u = 0 to n - 1 do
    let lo = !row_start and hi = get offsets (u + 1) in
    row_start := hi;
    set offsets u !w;
    let prev = ref (-1) in
    for i = lo to hi - 1 do
      let v = get targets i in
      if v <> !prev then begin
        set targets !w v;
        prev := v;
        incr w
      end
    done
  done;
  set offsets n !w;
  let targets = Bigarray.Array1.sub targets 0 !w in
  { n; m = !w / 2; offsets; targets }

let of_graph g =
  let csr = Graph.csr g in
  let n = csr.Graph.Csr.nodes in
  let offs = csr.Graph.Csr.offsets and tgts = csr.Graph.Csr.targets in
  let offsets = make_ints (n + 1) in
  for i = 0 to n do
    set offsets i offs.(i)
  done;
  let total = offs.(n) in
  let targets = make_ints total in
  for i = 0 to total - 1 do
    set targets i tgts.(i)
  done;
  { n; m = total / 2; offsets; targets }

let n t = t.n
let num_edges t = t.m
let degree t u = get t.offsets (u + 1) - get t.offsets u

let iter_neighbors t u f =
  for i = get t.offsets u to get t.offsets (u + 1) - 1 do
    f (get t.targets i)
  done

let to_graph t =
  Graph.of_iter ~n:t.n (fun emit ->
      for u = 0 to t.n - 1 do
        iter_neighbors t u (fun v -> if v > u then emit u v)
      done)

let equal_csr t csr =
  let offs = csr.Graph.Csr.offsets and tgts = csr.Graph.Csr.targets in
  t.n = csr.Graph.Csr.nodes
  && Array.length offs = t.n + 1
  && (let ok = ref true in
      for i = 0 to t.n do
        if get t.offsets i <> offs.(i) then ok := false
      done;
      !ok)
  && Array.length tgts = Bigarray.Array1.dim t.targets
  && (let ok = ref true in
      for i = 0 to Array.length tgts - 1 do
        if get t.targets i <> tgts.(i) then ok := false
      done;
      !ok)

(* ------------------------------------------------------------------ *)
(* Scale topologies                                                    *)
(* ------------------------------------------------------------------ *)

type spec =
  | Grid
  | Torus
  | Random_regular of int
  | Pref_attach of int

let spec_name = function
  | Grid -> "grid"
  | Torus -> "torus"
  | Random_regular k -> Printf.sprintf "random_regular(%d)" k
  | Pref_attach m -> Printf.sprintf "pref_attach(%d)" m

let spec_of_family = function
  | Gen.Grid -> Some Grid
  | Gen.Torus -> Some Torus
  | Gen.Random_regular k -> Some (Random_regular k)
  | _ -> None

let iter_pref_attach ~n ~m ~seed emit =
  if m < 1 then invalid_arg "Bigraph.pref_attach: need m >= 1";
  if n < m + 2 then invalid_arg "Bigraph.pref_attach: need n >= m + 2";
  let rng = Prng.create seed in
  (* Endpoint multiset: every emitted edge pushes both endpoints, so a
     uniform slot draw samples nodes proportionally to degree. *)
  let ends = Array.make (2 * (m + ((n - m - 1) * m))) 0 in
  let fill = ref 0 in
  let add u v =
    emit u v;
    ends.(!fill) <- u;
    ends.(!fill + 1) <- v;
    fill := !fill + 2
  in
  (* Seed star on nodes 0..m keeps the root a natural hub. *)
  for i = 1 to m do
    add 0 i
  done;
  for u = m + 1 to n - 1 do
    for _j = 1 to m do
      (* Resample a few times to avoid a self-edge (u enters [ends] with
         its first link); repeated targets are allowed — the CSR dedups,
         so effective degree can be < m. *)
      let rec pick tries =
        let v = ends.(Prng.int rng !fill) in
        if v <> u then v else if tries >= 20 then u - 1 else pick (tries + 1)
      in
      add u (pick 0)
    done
  done

let iter_spec spec ~n ~seed emit =
  match spec with
  | Grid -> Gen.iter_edges Gen.Grid ~n ~seed emit
  | Torus -> Gen.iter_edges Gen.Torus ~n ~seed emit
  | Random_regular k -> Gen.iter_edges (Gen.Random_regular k) ~n ~seed emit
  | Pref_attach m -> iter_pref_attach ~n ~m ~seed emit

let build spec ~n ~seed = of_iter ~n (iter_spec spec ~n ~seed)

(* ------------------------------------------------------------------ *)
(* Validation and structure                                            *)
(* ------------------------------------------------------------------ *)

let degree_histogram t =
  let tbl = Hashtbl.create 16 in
  for u = 0 to t.n - 1 do
    let d = degree t u in
    Hashtbl.replace tbl d (1 + Option.value ~default:0 (Hashtbl.find_opt tbl d))
  done;
  Hashtbl.fold (fun d c acc -> (d, c) :: acc) tbl [] |> List.sort compare

let has_edge t u v =
  (* binary search in row u *)
  let lo = ref (get t.offsets u) and hi = ref (get t.offsets (u + 1)) in
  let found = ref false in
  while (not !found) && !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    let x = get t.targets mid in
    if x = v then found := true else if x < v then lo := mid + 1 else hi := mid
  done;
  !found

(* BFS over the CSR with flat scratch; returns (farthest node, its
   distance, visited count).  [dist] must have length n. *)
let bfs t src dist =
  Bigarray.Array1.fill dist (-1);
  let queue = make_ints t.n in
  set queue 0 src;
  set dist src 0;
  let head = ref 0 and tail = ref 1 in
  let far = ref src and ecc = ref 0 in
  while !head < !tail do
    let u = get queue !head in
    incr head;
    let du = get dist u in
    if du > !ecc then begin
      ecc := du;
      far := u
    end;
    for i = get t.offsets u to get t.offsets (u + 1) - 1 do
      let v = get t.targets i in
      if get dist v < 0 then begin
        set dist v (du + 1);
        set queue !tail v;
        incr tail
      end
    done
  done;
  (!far, !ecc, !tail)

let connected t =
  let dist = make_ints t.n in
  let _, _, visited = bfs t Graph.root dist in
  visited = t.n

let pseudo_diameter t =
  let dist = make_ints t.n in
  let far, _, _ = bfs t Graph.root dist in
  let _, ecc, _ = bfs t far dist in
  max ecc 1

let validate ?spec t =
  let exception Bad of string in
  let bad fmt = Printf.ksprintf (fun s -> raise (Bad s)) fmt in
  try
    for u = 0 to t.n - 1 do
      let lo = get t.offsets u and hi = get t.offsets (u + 1) in
      if lo > hi then bad "node %d: negative row" u;
      for i = lo to hi - 1 do
        let v = get t.targets i in
        if v < 0 || v >= t.n then bad "node %d: target %d out of range" u v;
        if v = u then bad "node %d: self-loop" u;
        if i > lo && v <= get t.targets (i - 1) then bad "node %d: row not strictly ascending" u;
        if not (has_edge t v u) then bad "edge %d-%d not symmetric" u v
      done
    done;
    if not (connected t) then bad "graph is disconnected from the root";
    (match spec with
    | None -> ()
    | Some s ->
      let min_deg = ref max_int and max_deg = ref 0 in
      for u = 0 to t.n - 1 do
        let d = degree t u in
        if d < !min_deg then min_deg := d;
        if d > !max_deg then max_deg := d
      done;
      let envelope name lo hi =
        if !min_deg < lo then bad "%s: min degree %d < %d" name !min_deg lo;
        match hi with
        | Some h when !max_deg > h -> bad "%s: max degree %d > %d" name !max_deg h
        | _ -> ()
      in
      match s with
      | Grid -> envelope "grid" 1 (Some 4)
      | Torus -> envelope "torus" 2 (Some 4)
      | Random_regular k -> envelope "random_regular" 2 (Some (k + 2))
      | Pref_attach _ -> envelope "pref_attach" 1 None);
    Ok ()
  with Bad msg -> Error msg
