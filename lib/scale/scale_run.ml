module Engine = Ftagg_sim.Engine
module Metrics = Ftagg_sim.Metrics
module Graph = Ftagg_graph.Graph
module Params = Ftagg_proto.Params
module Agg = Ftagg_proto.Agg
module Message = Ftagg_proto.Message

type outcome = {
  result : Agg.result;
  metrics : Metrics.t;
  rounds : int;
  states : Agg.node array;
}

let params ?(c = 2) ?(t = 1) ~graph ~inputs () =
  let n = Bigraph.n graph in
  if Array.length inputs <> n then invalid_arg "Scale_run.params: inputs length mismatch";
  Array.iter (fun x -> if x < 0 then invalid_arg "Scale_run.params: negative input") inputs;
  let d = Bigraph.pseudo_diameter graph in
  let max_input = Array.fold_left max 1 inputs in
  { Params.n; d; c; t; max_input; caaf = Ftagg_caaf.Instances.sum; inputs }

let protocol p =
  {
    Engine.name = "agg";
    init = (fun u ~rng:_ -> Agg.create p ~me:u);
    step = (fun ~round ~me:_ ~state ~inbox -> (state, Agg.step state ~rr:round ~inbox));
    msg_bits = Message.bits p;
    root_done = (fun _ -> false);
  }

let agg ?domains ?meter ?pool ?registry ~graph ~failures ~params ~seed () =
  let states, metrics =
    Executor.run ?domains ?meter ?pool ?registry ~graph ~failures
      ~max_rounds:(Agg.duration params) ~seed (protocol params)
  in
  {
    result = Agg.root_result states.(Graph.root);
    metrics;
    rounds = Metrics.rounds metrics;
    states;
  }

let expected_sum p = Array.fold_left ( + ) 0 p.Params.inputs
