(** Memory metering for scale runs.

    A meter samples the live major-heap size every [check_every] rounds
    (at the round barrier, so it never races the worker domains), tracks
    the peak, publishes gauges through [lib/obs], and — when a ceiling is
    configured — raises {!Ceiling_exceeded} instead of letting the
    process OOM.  The exception propagates through the executor's normal
    abort path (workers stopped and joined, pool slots released), so a
    run that hits the ceiling fails cleanly.

    Gauges (published when a registry is attached and telemetry is
    enabled): [scale_live_bytes], [scale_bytes_per_node],
    [scale_peak_live_bytes], and after {!finish} also
    [scale_peak_rss_kb] (Linux only).

    The live figure is [Gc.quick_stat] major-heap words — cheap (no heap
    walk) and a slight undercount (minor heap and malloc'd bigarrays are
    not included), which is the right bias for a sampling ceiling; the
    OS-level [peak_rss_kb] complements it for reporting. *)

type t

exception
  Ceiling_exceeded of {
    limit_bytes : int;
    live_bytes : int;
    round : int;  (** the round whose barrier tripped the check *)
  }

val create : ?registry:Ftagg_obs.Registry.t -> ?limit_bytes:int -> ?check_every:int -> n:int -> unit -> t
(** [check_every] defaults to 32 (rounds between samples); [n] is the
    node count behind the bytes/node gauge. *)

val live_bytes : unit -> int
(** Current major-heap size in bytes ([Gc.quick_stat] words × word
    size). *)

val peak_rss_kb : unit -> int option
(** The process's peak resident set size ([VmHWM] from
    [/proc/self/status]); [None] off Linux. *)

val check : t -> round:int -> unit
(** Sample if [round] is a multiple of [check_every]: update the peak,
    publish gauges, raise {!Ceiling_exceeded} past the limit.  Call from
    the coordinator at the round barrier. *)

val finish : t -> unit
(** Force a final sample (without the ceiling check — the run is over)
    and publish the peak gauges including [scale_peak_rss_kb]. *)

val peak_live_bytes : t -> int
(** Highest live-byte sample seen so far. *)
