(** Multi-domain partitioned round executor.

    Runs an {!Ftagg_sim.Engine.protocol} over a {!Bigraph} CSR with the
    node range split into [domains] contiguous partitions, one OCaml
    domain each.  The synchronous model's round boundary is the one true
    barrier: within a round each partition writes only its own slots of
    the states / next-broadcast arrays and reads anything from the
    previous round's (immutable-for-the-round) double buffers, so the
    only synchronisation is a generation-counted barrier per round.

    {b Differential pin}: with the same [seed], [failures] and topology,
    [run] produces byte-identical states and metrics to [Engine.run] on
    the materialised graph, for every domain count — the per-node PRNG
    streams are split in the same order, inboxes are assembled by the
    same [Engine.deliver] walk over the same (ascending) CSR rows, and
    bits are charged by the same [Engine.sum_bits].  Message loss is the
    one [Engine.run] feature {e not} offered: per-edge loss draws consume
    a shared PRNG stream in global node order, which no partitioning can
    reproduce; the paper's model is lossless anyway.

    Failure schedules apply as in [Engine.run] (crash = stop, not message
    loss).  Torn barriers abort cleanly: an exception in any partition is
    captured, every other partition finishes its round, workers are
    stopped and joined, pool slots are released, and
    {!Partition_failed} is raised on the caller — no deadlock, no leaked
    domain. *)

exception
  Partition_failed of {
    round : int;
    partition : int;
    exn : exn;  (** what the partition raised *)
  }

val partitions : n:int -> domains:int -> (int * int) array
(** The contiguous split: partition [k] owns nodes
    [\[k·n/D, (k+1)·n/D)]. *)

val frontier_edges : Bigraph.t -> domains:int -> int
(** Edges whose endpoints live in different partitions — the traffic
    crossing domain boundaries each round. *)

val run :
  ?domains:int ->
  ?meter:Mem.t ->
  ?pool:Pool.t ->
  ?registry:Ftagg_obs.Registry.t ->
  graph:Bigraph.t ->
  failures:Ftagg_sim.Failure.t ->
  max_rounds:int ->
  seed:int ->
  ('state, 'msg) Ftagg_sim.Engine.protocol ->
  'state array * Ftagg_sim.Metrics.t
(** Execute.  [domains] defaults to 1 (still the scale data path: CSR
    walk, pooled traffic bitmaps).  [meter] is checked at the round
    barrier; its ceiling aborts via {!Mem.Ceiling_exceeded}.  [pool]
    (default: a private 2-slot pool) must offer slots of at least
    [Bigraph.n graph] bytes; the two traffic bitmaps are acquired from it
    at start and always released.  [registry] receives
    [scale_rounds_total], [scale_domains], [scale_frontier_edges] and
    [scale_minor_words_per_round] (coordinator-domain minor allocation
    per executed round — the allocation-regression canary). *)
