module Registry = Ftagg_obs.Registry

type t = {
  registry : Registry.t option;
  limit_bytes : int option;
  check_every : int;
  n : int;
  mutable peak_live : int;
}

exception
  Ceiling_exceeded of {
    limit_bytes : int;
    live_bytes : int;
    round : int;
  }

let word_bytes = Sys.word_size / 8

let live_bytes () = (Gc.quick_stat ()).Gc.heap_words * word_bytes

let peak_rss_kb () =
  match open_in "/proc/self/status" with
  | exception Sys_error _ -> None
  | ic ->
    let prefix = "VmHWM:" in
    let rec scan () =
      match input_line ic with
      | exception End_of_file -> None
      | line ->
        if
          String.length line >= String.length prefix
          && String.sub line 0 (String.length prefix) = prefix
        then
          (* "VmHWM:   123456 kB" *)
          String.sub line (String.length prefix) (String.length line - String.length prefix)
          |> String.split_on_char ' '
          |> List.find_map int_of_string_opt
        else scan ()
    in
    Fun.protect ~finally:(fun () -> close_in_noerr ic) scan

let create ?registry ?limit_bytes ?(check_every = 32) ~n () =
  (match limit_bytes with
  | Some l when l <= 0 -> invalid_arg "Mem.create: limit_bytes must be positive"
  | _ -> ());
  if check_every < 1 then invalid_arg "Mem.create: check_every must be >= 1";
  if n < 1 then invalid_arg "Mem.create: n must be >= 1";
  { registry; limit_bytes; check_every; n; peak_live = 0 }

let publish t live =
  match t.registry with
  | None -> ()
  | Some reg ->
    Registry.set_gauge reg "scale_live_bytes" (float_of_int live);
    Registry.set_gauge reg "scale_bytes_per_node" (float_of_int live /. float_of_int t.n);
    Registry.set_gauge reg "scale_peak_live_bytes" (float_of_int t.peak_live)

let sample t ~round ~enforce =
  let live = live_bytes () in
  if live > t.peak_live then t.peak_live <- live;
  publish t live;
  if enforce then
    match t.limit_bytes with
    | Some limit when live > limit ->
      raise (Ceiling_exceeded { limit_bytes = limit; live_bytes = live; round })
    | _ -> ()

let check t ~round = if round mod t.check_every = 0 then sample t ~round ~enforce:true

let finish t =
  sample t ~round:0 ~enforce:false;
  match (t.registry, peak_rss_kb ()) with
  | Some reg, Some kb -> Registry.set_gauge reg "scale_peak_rss_kb" (float_of_int kb)
  | _ -> ()

let peak_live_bytes t = t.peak_live
