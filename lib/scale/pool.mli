(** Fixed-slot [Bytes] pool.

    The scale executor's per-round scratch (the two traffic bitmaps) is
    pooled rather than allocated per run so that (a) steady-state rounds
    allocate nothing beyond the inbox cells the protocol API requires and
    (b) the acquire/release counters expose any allocation regression to
    CI: a healthy run acquires exactly its scratch at start, releases it
    at the end, and [in_use] returns to zero.

    Counters and gauges (labelled [pool=<name>], published to the
    registry when one is attached and telemetry is enabled):
    [scale_pool_acquires_total], [scale_pool_releases_total],
    [scale_pool_in_use], [scale_pool_high_water].

    Thread-safety: acquire/release are mutex-protected; registry updates
    happen under the pool lock, so attach a registry only when all
    acquirers run on one domain (the executor acquires from the
    coordinator only). *)

type t

exception Exhausted of string
(** Raised by {!acquire} when every slot is in use — the pool never
    grows; sizing is the caller's contract. *)

val create :
  ?registry:Ftagg_obs.Registry.t -> ?name:string -> slot_bytes:int -> slots:int -> unit -> t
(** [create ~slot_bytes ~slots ()] allocates [slots] buffers of
    [slot_bytes] bytes up front.  [name] (default ["scale"]) labels the
    telemetry series. *)

val acquire : t -> Bytes.t
(** Take a free slot (contents unspecified).  Raises {!Exhausted} when
    none is free. *)

val release : t -> Bytes.t -> unit
(** Return a slot.  Raises [Invalid_argument] on a buffer of the wrong
    length (not from this pool) or when nothing is outstanding. *)

val slot_bytes : t -> int
val slots : t -> int
val in_use : t -> int
val high_water : t -> int
val acquires : t -> int
val releases : t -> int
