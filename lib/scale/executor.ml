module Engine = Ftagg_sim.Engine
module Metrics = Ftagg_sim.Metrics
module Failure = Ftagg_sim.Failure
module Graph = Ftagg_graph.Graph
module Prng = Ftagg_util.Prng
module Registry = Ftagg_obs.Registry

exception
  Partition_failed of {
    round : int;
    partition : int;
    exn : exn;
  }

let partitions ~n ~domains = Array.init domains (fun k -> (k * n / domains, (k + 1) * n / domains))

let frontier_edges bg ~domains =
  let n = Bigraph.n bg in
  let owner = Bytes.create n in
  Array.iteri
    (fun k (lo, hi) -> if hi > lo then Bytes.fill owner lo (hi - lo) (Char.chr k))
    (partitions ~n ~domains);
  let count = ref 0 in
  for u = 0 to n - 1 do
    Bigraph.iter_neighbors bg u (fun v ->
        if v > u && Bytes.get owner u <> Bytes.get owner v then incr count)
  done;
  !count

(* Everything the worker domains share with the coordinator.  Within a
   round, partition k writes only indices [lo_k, hi_k) of [states],
   [nextflight], [next_out] and the metrics' per-node slots, and reads
   arbitrary indices of the previous round's [inflight] / [cur_out];
   the mutex-protected barrier orders one round's writes before the next
   round's reads, so the run is data-race-free. *)
type 'm shared = {
  lock : Mutex.t;
  cond : Condition.t;
  mutable gen : int;  (** barrier generation; bumping it releases workers *)
  mutable round : int;
  mutable pending : int;
  mutable stop : bool;
  mutable failed : (int * int * exn) option;  (** partition, round, exn *)
  mutable inflight : 'm list array;
  mutable nextflight : 'm list array;
  mutable cur_out : Bytes.t;  (** byte u <> 0 iff inflight.(u) <> [] *)
  mutable next_out : Bytes.t;
  mutable had_traffic : bool;
  mutable traffic_next : bool;
}

let run ?(domains = 1) ?meter ?pool ?registry ~graph ~failures ~max_rounds ~seed proto =
  if domains < 1 || domains > 64 then invalid_arg "Executor.run: need 1 <= domains <= 64";
  let n = Bigraph.n graph in
  let offsets = graph.Bigraph.offsets and targets = graph.Bigraph.targets in
  let bget = Bigarray.Array1.unsafe_get in
  let crash = Failure.crash_rounds failures in
  if Array.length crash <> n then invalid_arg "Executor.run: failure schedule size mismatch";
  (* PRNG discipline mirrors Engine.run exactly: split the (unused here —
     loss is unsupported) loss stream first, then one per-node stream in
     ascending node order. *)
  let rng = Prng.create seed in
  let _loss_rng = Prng.split rng in
  let states = Array.init n (fun u -> proto.Engine.init u ~rng:(Prng.split rng)) in
  let metrics = Metrics.create n in
  let pool =
    match pool with
    | Some p ->
      if Pool.slot_bytes p < n then invalid_arg "Executor.run: pool slots smaller than n";
      p
    | None -> Pool.create ?registry ~name:"executor" ~slot_bytes:n ~slots:2 ()
  in
  let cur_out = Pool.acquire pool in
  let next_out = Pool.acquire pool in
  Bytes.fill cur_out 0 n '\000';
  Bytes.fill next_out 0 n '\000';
  let sh =
    {
      lock = Mutex.create ();
      cond = Condition.create ();
      gen = 0;
      round = 0;
      pending = 0;
      stop = false;
      failed = None;
      inflight = Array.make n [];
      nextflight = Array.make n [];
      cur_out;
      next_out;
      had_traffic = false;
      traffic_next = false;
    }
  in
  (* One partition, one round: the same walk as Engine.run's loss-free
     path — inbox built front-to-back by scanning CSR neighbours
     backwards, empty-broadcast fast path, per-node metrics slots. *)
  let step_range (lo, hi) r =
    let inflight = sh.inflight and nextflight = sh.nextflight in
    let cur = sh.cur_out and nxt = sh.next_out in
    let had_traffic = sh.had_traffic in
    let traffic = ref false in
    for u = lo to hi - 1 do
      if Array.unsafe_get crash u > r then begin
        let inbox =
          if not had_traffic then []
          else begin
            let lo_i = bget offsets u and hi_i = bget offsets (u + 1) in
            let acc = ref [] in
            for i = hi_i - 1 downto lo_i do
              let v = bget targets i in
              if Bytes.unsafe_get cur v <> '\000' then
                acc := Engine.deliver v (Array.unsafe_get inflight v) !acc
            done;
            !acc
          end
        in
        let state', out = proto.Engine.step ~round:r ~me:u ~state:states.(u) ~inbox in
        states.(u) <- state';
        Array.unsafe_set nextflight u out;
        match out with
        | [] -> Bytes.unsafe_set nxt u '\000'
        | _ ->
          Bytes.unsafe_set nxt u '\001';
          traffic := true;
          let bits = Engine.sum_bits proto.Engine.msg_bits 0 out in
          Metrics.charge metrics ~node:u ~bits
      end
      else begin
        Array.unsafe_set nextflight u [];
        Bytes.unsafe_set nxt u '\000'
      end
    done;
    !traffic
  in
  let parts = partitions ~n ~domains in
  let worker p range () =
    let my_gen = ref 0 in
    let running = ref true in
    while !running do
      Mutex.lock sh.lock;
      while sh.gen = !my_gen && not sh.stop do
        Condition.wait sh.cond sh.lock
      done;
      if sh.stop then begin
        Mutex.unlock sh.lock;
        running := false
      end
      else begin
        my_gen := sh.gen;
        let r = sh.round in
        Mutex.unlock sh.lock;
        let outcome = try Ok (step_range range r) with e -> Error e in
        Mutex.lock sh.lock;
        (match outcome with
        | Ok traffic -> if traffic then sh.traffic_next <- true
        | Error e -> if sh.failed = None then sh.failed <- Some (p, r, e));
        sh.pending <- sh.pending - 1;
        if sh.pending = 0 then Condition.broadcast sh.cond;
        Mutex.unlock sh.lock
      end
    done
  in
  let workers = Array.init (domains - 1) (fun i -> Domain.spawn (worker (i + 1) parts.(i + 1))) in
  let cleanup () =
    Mutex.lock sh.lock;
    sh.stop <- true;
    Condition.broadcast sh.cond;
    Mutex.unlock sh.lock;
    Array.iter Domain.join workers;
    Pool.release pool sh.cur_out;
    Pool.release pool sh.next_out
  in
  let minor0 = Gc.minor_words () in
  let round = ref 1 in
  let halted = ref false in
  Fun.protect ~finally:cleanup (fun () ->
      while (not !halted) && !round <= max_rounds do
        let r = !round in
        Metrics.note_round metrics r;
        (* Dispatch: publish the round and release the workers. *)
        Mutex.lock sh.lock;
        sh.round <- r;
        sh.traffic_next <- false;
        sh.pending <- domains - 1;
        sh.gen <- sh.gen + 1;
        Condition.broadcast sh.cond;
        Mutex.unlock sh.lock;
        (* Partition 0 runs on the coordinator. *)
        let own = try Ok (step_range parts.(0) r) with e -> Error e in
        (* Barrier: wait for every worker's round. *)
        Mutex.lock sh.lock;
        while sh.pending > 0 do
          Condition.wait sh.cond sh.lock
        done;
        (match own with
        | Ok traffic -> if traffic then sh.traffic_next <- true
        | Error e -> if sh.failed = None then sh.failed <- Some (0, r, e));
        let failed = sh.failed and traffic = sh.traffic_next in
        Mutex.unlock sh.lock;
        (match failed with
        | Some (partition, fr, e) -> raise (Partition_failed { round = fr; partition; exn = e })
        | None -> ());
        (* Swap the double buffers — every slot was written this round. *)
        let fl = sh.inflight in
        sh.inflight <- sh.nextflight;
        sh.nextflight <- fl;
        let b = sh.cur_out in
        sh.cur_out <- sh.next_out;
        sh.next_out <- b;
        sh.had_traffic <- traffic;
        (match meter with Some m -> Mem.check m ~round:r | None -> ());
        if proto.Engine.root_done states.(Graph.root) then halted := true;
        incr round
      done);
  let executed = Metrics.rounds metrics in
  (match registry with
  | Some reg when Registry.enabled () ->
    Registry.incr reg "scale_rounds_total" executed;
    Registry.set_gauge reg "scale_domains" (float_of_int domains);
    Registry.set_gauge reg "scale_frontier_edges" (float_of_int (frontier_edges graph ~domains));
    if executed > 0 then
      Registry.set_gauge reg "scale_minor_words_per_round"
        ((Gc.minor_words () -. minor0) /. float_of_int executed)
  | _ -> ());
  (match meter with Some m -> Mem.finish m | None -> ());
  (states, metrics)
