module Registry = Ftagg_obs.Registry

type t = {
  name : string;
  slot_bytes : int;
  capacity : int;
  lock : Mutex.t;
  mutable free : Bytes.t list;
  mutable in_use : int;
  mutable high_water : int;
  mutable acquires : int;
  mutable releases : int;
  registry : Registry.t option;
}

exception Exhausted of string

let create ?registry ?(name = "scale") ~slot_bytes ~slots () =
  if slot_bytes < 0 then invalid_arg "Pool.create: slot_bytes must be >= 0";
  if slots < 1 then invalid_arg "Pool.create: need slots >= 1";
  {
    name;
    slot_bytes;
    capacity = slots;
    lock = Mutex.create ();
    free = List.init slots (fun _ -> Bytes.create slot_bytes);
    in_use = 0;
    high_water = 0;
    acquires = 0;
    releases = 0;
    registry;
  }

let publish t =
  match t.registry with
  | None -> ()
  | Some reg ->
    let labels = [ ("pool", t.name) ] in
    Registry.set_gauge reg ~labels "scale_pool_in_use" (float_of_int t.in_use);
    Registry.set_gauge reg ~labels "scale_pool_high_water" (float_of_int t.high_water)

let count t metric =
  match t.registry with
  | None -> ()
  | Some reg -> Registry.incr reg ~labels:[ ("pool", t.name) ] metric 1

let acquire t =
  Mutex.lock t.lock;
  match t.free with
  | [] ->
    Mutex.unlock t.lock;
    raise (Exhausted (Printf.sprintf "Pool %s: all %d slots in use" t.name t.capacity))
  | b :: rest ->
    t.free <- rest;
    t.in_use <- t.in_use + 1;
    t.acquires <- t.acquires + 1;
    if t.in_use > t.high_water then t.high_water <- t.in_use;
    count t "scale_pool_acquires_total";
    publish t;
    Mutex.unlock t.lock;
    b

let release t b =
  Mutex.lock t.lock;
  let fail msg =
    Mutex.unlock t.lock;
    invalid_arg msg
  in
  if Bytes.length b <> t.slot_bytes then fail "Pool.release: buffer not from this pool";
  if t.in_use = 0 then fail "Pool.release: nothing outstanding";
  t.free <- b :: t.free;
  t.in_use <- t.in_use - 1;
  t.releases <- t.releases + 1;
  count t "scale_pool_releases_total";
  publish t;
  Mutex.unlock t.lock

let slot_bytes t = t.slot_bytes
let slots t = t.capacity
let in_use t = t.in_use
let high_water t = t.high_water
let acquires t = t.acquires
let releases t = t.releases
