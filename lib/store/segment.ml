(* The on-disk record format shared by every segment file: a fixed
   8-byte magic header, then length-prefixed CRC-checked records.

       +--------+--------+----------------+
       | len u32| crc u32| payload (len B)|
       +--------+--------+----------------+
       (both integers little-endian; crc is CRC-32/IEEE of the payload)

   The codec is deliberately dumb: it knows nothing about digests or
   outcomes, only how to frame a payload so that a reader can tell a
   complete record from a torn one.  [scan] is the whole safety story —
   it consumes valid records and stops at the first byte that cannot be
   part of one, so a reader never surfaces a corrupt or half-written
   payload no matter where a crashed writer stopped. *)

let magic = "FTAGSEG1"
let header_len = String.length magic

(* A length prefix beyond this is treated as corruption, not a record:
   it bounds how much a reader will ever try to buffer for one entry. *)
let max_payload = 1 lsl 26

(* ---- CRC-32 (IEEE 802.3, reflected, poly 0xEDB88320) ---- *)

let crc_table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 = 1 then 0xEDB88320 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

let crc32 s =
  let table = Lazy.force crc_table in
  let crc = ref 0xFFFFFFFF in
  String.iter
    (fun ch -> crc := table.((!crc lxor Char.code ch) land 0xff) lxor (!crc lsr 8))
    s;
  !crc lxor 0xFFFFFFFF land 0xFFFFFFFF

(* ---- framing ---- *)

let put_u32le b off v =
  Bytes.set b off (Char.chr (v land 0xff));
  Bytes.set b (off + 1) (Char.chr ((v lsr 8) land 0xff));
  Bytes.set b (off + 2) (Char.chr ((v lsr 16) land 0xff));
  Bytes.set b (off + 3) (Char.chr ((v lsr 24) land 0xff))

let get_u32le s off =
  Char.code s.[off]
  lor (Char.code s.[off + 1] lsl 8)
  lor (Char.code s.[off + 2] lsl 16)
  lor (Char.code s.[off + 3] lsl 24)

let encode payload =
  let len = String.length payload in
  if len > max_payload then invalid_arg "Segment.encode: payload too large";
  let b = Bytes.create (8 + len) in
  put_u32le b 0 len;
  put_u32le b 4 (crc32 payload);
  Bytes.blit_string payload 0 b 8 len;
  Bytes.unsafe_to_string b

(* Parse as many complete, CRC-valid records as [chunk] holds, starting
   at [off].  Returns the payloads in order and the offset just past the
   last valid record — anything beyond it is a torn tail (a crashed or
   still-writing writer) and is left untouched for a later read to
   complete or a writer-open to truncate. *)
let scan ?(off = 0) chunk =
  let n = String.length chunk in
  let payloads = ref [] in
  let p = ref off in
  let stop = ref false in
  while not !stop do
    if !p + 8 > n then stop := true
    else begin
      let len = get_u32le chunk !p in
      let crc = get_u32le chunk (!p + 4) in
      if len > max_payload || !p + 8 + len > n then stop := true
      else
        let payload = String.sub chunk (!p + 8) len in
        if crc32 payload <> crc then stop := true
        else begin
          payloads := payload :: !payloads;
          p := !p + 8 + len
        end
    end
  done;
  (List.rev !payloads, !p)
