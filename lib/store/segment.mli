(** The append-only segment record format: a fixed magic header followed
    by length-prefixed CRC-32-checked records.  {!scan} is the torn-write
    guarantee — it yields only complete records whose checksum matches,
    so a reader can never observe a corrupt or half-written payload. *)

val magic : string
(** First bytes of every segment file ("FTAGSEG1" — the version is part
    of the magic, so a format change is a different file kind, not a
    parse ambiguity). *)

val header_len : int

val max_payload : int
(** Length prefixes above this are treated as corruption. *)

val crc32 : string -> int
(** CRC-32/IEEE of a string, as a non-negative int in [0, 2^32). *)

val encode : string -> string
(** [encode payload] frames one record: length, checksum, payload.
    @raise Invalid_argument if the payload exceeds {!max_payload}. *)

val scan : ?off:int -> string -> string list * int
(** [scan ?off chunk] parses complete valid records from [chunk] starting
    at [off] and returns them with the offset just past the last one.
    Trailing bytes that do not form a complete valid record — a torn
    write, an in-flight append, or garbage — are not consumed. *)
