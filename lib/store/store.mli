(** A shared on-disk digest→outcome store over append-only segment
    files, safe for many processes on one directory.

    Appends serialize through an advisory [Unix.lockf] writer lock and
    land as one contiguous record in the active segment; readers take no
    lock and tolerate a concurrently-growing tail ({!refresh} consumes
    only complete CRC-valid records — see {!Segment}).  {!open_} repairs
    torn tails left by crashed writers by truncating to the last valid
    record; rotation caps segment size; {!compact} rewrites the
    latest-wins live set into a single fresh segment.

    Values are {!Ftagg_runner.Bench_io.json} documents keyed by the job
    content digest: because digests are content-addressed, concurrent
    writers can only ever disagree about a key by writing identical
    outcomes, so last-wins merging is sound by construction. *)

type t

type stats = {
  s_hits : int;
  s_misses : int;
  s_appends : int;
  s_rotations : int;
  s_compactions : int;
  s_truncations : int;  (** torn tails cut at {!open_} *)
  s_entries : int;
  s_segments : int;
}

val open_ :
  ?registry:Ftagg_obs.Registry.t ->
  ?rotate_bytes:int ->
  dir:string ->
  unit ->
  (t, string) result
(** Open (creating the directory if needed), repair torn tails under the
    writer lock, and load the index.  [rotate_bytes] (default 4 MiB,
    floor 1 KiB) is the segment size past which the next append starts a
    fresh segment.  [registry] mirrors the plain counters as
    [store_*_total] metrics plus a [store_entries] gauge. *)

val add : t -> string -> Ftagg_runner.Bench_io.json -> unit
(** [add t digest outcome] appends one record under the writer lock.
    A digest already present (here or on disk) is a no-op — entries are
    content-addressed, so re-appending could only duplicate. *)

val find : t -> string -> Ftagg_runner.Bench_io.json option
(** Lock-free lookup; on an index miss the segment tails are re-scanned
    once ({!refresh}) before answering, so records appended by other
    processes are found without any coordination. *)

val mem : t -> string -> bool
(** {!find} without touching the hit/miss counters. *)

val refresh : t -> unit
(** Consume any records other processes appended since the last look
    (and discover rotated or compacted segments). *)

val compact : t -> int * int
(** Rewrite the live entries into one fresh segment, drop superseded
    records and unlink the old files; returns [(kept, dropped)].  Runs
    under the writer lock; concurrent readers keep working throughout
    (they drop vanished segments on their next refresh). *)

val entries : t -> int
val fold : (string -> Ftagg_runner.Bench_io.json -> 'a -> 'a) -> t -> 'a -> 'a
val segments : t -> int
val dir : t -> string
val stats : t -> stats
val close : t -> unit
