(* A shared on-disk digest→outcome store: one directory of append-only
   segment files, usable by many server processes at once.

   Writers serialize appends through an advisory [Unix.lockf] lock on a
   dedicated lock file; each append is a single [write] to the active
   segment opened with O_APPEND, so a record is laid down contiguously.
   Readers take no lock at all: they remember, per segment, the offset
   just past the last valid record they consumed and re-scan only the
   tail on [refresh].  A record that is mid-write when a reader looks is
   simply not consumed yet (length/CRC cannot both check out), so the
   reader picks it up whole on a later refresh — that is the
   "tolerate a concurrently-growing tail" contract.

   Crash recovery: [open_] walks every segment under the writer lock and
   truncates any torn tail back to the last valid record.  Only invalid
   bytes are ever cut, and no reader has consumed past a valid record,
   so repair never moves a segment below any reader's position.

   Rotation starts a fresh segment once the active one crosses
   [rotate_bytes]; compaction rewrites the live (latest-wins) entries
   into a single new higher-numbered segment and unlinks the old files.
   Readers that still remember an unlinked segment drop it on the next
   refresh — every entry it held is also in the compacted segment. *)

module Bench_io = Ftagg_runner.Bench_io
module Registry = Ftagg_obs.Registry

type seg = {
  seg_idx : int;
  seg_path : string;
  mutable seg_off : int;  (* just past the last valid record consumed *)
  mutable seg_bad : bool;  (* wrong magic: never read again *)
}

type t = {
  dir : string;
  rotate_bytes : int;
  lock_fd : Unix.file_descr;
  index : (string, Bench_io.json) Hashtbl.t;
  mutable segs : seg list;  (* ascending seg_idx *)
  registry : Registry.t option;
  mutable hits : int;
  mutable misses : int;
  mutable appends : int;
  mutable rotations : int;
  mutable compactions : int;
  mutable truncations : int;
}

type stats = {
  s_hits : int;
  s_misses : int;
  s_appends : int;
  s_rotations : int;
  s_compactions : int;
  s_truncations : int;
  s_entries : int;
  s_segments : int;
}

let count t name k =
  match t.registry with None -> () | Some r -> Registry.incr r name k

let set_entries_gauge t =
  match t.registry with
  | None -> ()
  | Some r -> Registry.set_gauge r "store_entries" (float_of_int (Hashtbl.length t.index))

(* ---- paths ---- *)

let seg_name idx = Printf.sprintf "seg-%06d.log" idx
let seg_path dir idx = Filename.concat dir (seg_name idx)

let seg_idx_of_name name =
  if String.length name = 14 && String.sub name 0 4 = "seg-" && Filename.check_suffix name ".log"
  then int_of_string_opt (String.sub name 4 6)
  else None

let list_seg_indices dir =
  match Sys.readdir dir with
  | exception Sys_error _ -> []
  | names ->
    Array.to_list names |> List.filter_map seg_idx_of_name |> List.sort_uniq compare

(* ---- low-level file helpers ---- *)

let read_from path off =
  match Unix.openfile path [ Unix.O_RDONLY ] 0 with
  | exception Unix.Unix_error (_, _, _) -> None
  | fd ->
    Fun.protect
      ~finally:(fun () -> try Unix.close fd with Unix.Unix_error (_, _, _) -> ())
      (fun () ->
        match Unix.lseek fd off Unix.SEEK_SET with
        | exception Unix.Unix_error (_, _, _) -> None
        | _ ->
          let buf = Buffer.create 4096 in
          let chunk = Bytes.create 65536 in
          let rec go () =
            match Unix.read fd chunk 0 (Bytes.length chunk) with
            | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
            | exception Unix.Unix_error (_, _, _) -> None
            | 0 -> Some (Buffer.contents buf)
            | n ->
              Buffer.add_subbytes buf chunk 0 n;
              go ()
          in
          go ())

let append_bytes path data =
  let fd = Unix.openfile path [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_APPEND ] 0o644 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error (_, _, _) -> ())
    (fun () ->
      let len = String.length data in
      let rec go off =
        if off < len then go (off + Unix.write_substring fd data off (len - off))
      in
      go 0)

let file_size path = match Unix.stat path with
  | exception Unix.Unix_error (_, _, _) -> None
  | st -> Some st.Unix.st_size

(* ---- the advisory writer lock ---- *)

let with_lock t f =
  ignore (Unix.lseek t.lock_fd 0 Unix.SEEK_SET);
  Unix.lockf t.lock_fd Unix.F_LOCK 0;
  Fun.protect
    ~finally:(fun () ->
      ignore (Unix.lseek t.lock_fd 0 Unix.SEEK_SET);
      try Unix.lockf t.lock_fd Unix.F_ULOCK 0 with Unix.Unix_error (_, _, _) -> ())
    f

(* ---- payload codec: one record = one {digest, outcome} object ---- *)

let payload_of digest json =
  Bench_io.to_string ~indent:false
    (Bench_io.Obj [ ("digest", Bench_io.String digest); ("outcome", json) ])

let decode_payload payload =
  match Bench_io.of_string payload with
  | Error _ -> None
  | Ok json -> (
    match (Bench_io.member "digest" json, Bench_io.member "outcome" json) with
    | Some (Bench_io.String d), Some o -> Some (d, o)
    | _ -> None)

(* ---- lock-free reading ---- *)

(* Consume whatever new valid records grew past [seg.seg_off].  A magic
   mismatch poisons the segment (it is not ours); a file that vanished
   (compaction elsewhere) drops it from the reader's view. *)
let ingest t seg =
  if not seg.seg_bad then
    match read_from seg.seg_path seg.seg_off with
    | None -> t.segs <- List.filter (fun s -> s != seg) t.segs
    | Some chunk ->
      let chunk, base =
        if seg.seg_off = 0 then
          if String.length chunk < Segment.header_len then ("", 0)
          else if String.sub chunk 0 Segment.header_len <> Segment.magic then begin
            seg.seg_bad <- true;
            ("", 0)
          end
          else (chunk, Segment.header_len)
        else (chunk, 0)
      in
      if chunk <> "" then begin
        let payloads, consumed = Segment.scan ~off:base chunk in
        List.iter
          (fun p ->
            match decode_payload p with
            | Some (digest, outcome) -> Hashtbl.replace t.index digest outcome
            | None -> ())
          payloads;
        seg.seg_off <- seg.seg_off + consumed
      end

let refresh t =
  let known = List.map (fun s -> s.seg_idx) t.segs in
  let fresh =
    List.filter_map
      (fun idx ->
        if List.mem idx known then None
        else Some { seg_idx = idx; seg_path = seg_path t.dir idx; seg_off = 0; seg_bad = false })
      (list_seg_indices t.dir)
  in
  t.segs <- List.sort (fun a b -> compare a.seg_idx b.seg_idx) (t.segs @ fresh);
  List.iter (ingest t) t.segs;
  set_entries_gauge t

let find_opt_no_stats t digest =
  match Hashtbl.find_opt t.index digest with
  | Some _ as v -> v
  | None ->
    refresh t;
    Hashtbl.find_opt t.index digest

let find t digest =
  match find_opt_no_stats t digest with
  | Some _ as v ->
    t.hits <- t.hits + 1;
    count t "store_hits_total" 1;
    v
  | None ->
    t.misses <- t.misses + 1;
    count t "store_misses_total" 1;
    None

let mem t digest = find_opt_no_stats t digest <> None
let entries t = Hashtbl.length t.index
let fold f t acc = Hashtbl.fold f t.index acc
let dir t = t.dir
let segments t = List.length (List.filter (fun s -> not s.seg_bad) t.segs)

(* ---- writing ---- *)

let create_segment t idx =
  let path = seg_path t.dir idx in
  append_bytes path Segment.magic;
  let seg = { seg_idx = idx; seg_path = path; seg_off = Segment.header_len; seg_bad = false } in
  t.segs <- t.segs @ [ seg ];
  seg

(* The segment the next record goes to, rotating first when the current
   one has crossed the threshold.  Caller holds the lock: sizes cannot
   move under us, and two writers cannot both create the same file. *)
let active_segment t =
  let indices = list_seg_indices t.dir in
  match List.rev indices with
  | [] ->
    if t.segs <> [] then t.segs <- [];  (* all unlinked behind our back *)
    create_segment t 1
  | last :: _ -> (
    let size = Option.value (file_size (seg_path t.dir last)) ~default:0 in
    if size >= t.rotate_bytes then begin
      t.rotations <- t.rotations + 1;
      count t "store_rotations_total" 1;
      create_segment t (last + 1)
    end
    else
      match List.find_opt (fun s -> s.seg_idx = last) t.segs with
      | Some seg -> seg
      | None ->
        let seg =
          { seg_idx = last; seg_path = seg_path t.dir last; seg_off = 0; seg_bad = false }
        in
        t.segs <- List.sort (fun a b -> compare a.seg_idx b.seg_idx) (seg :: t.segs);
        seg)

let add t digest json =
  if not (mem t digest) then begin
    let record = Segment.encode (payload_of digest json) in
    with_lock t (fun () ->
        let seg = active_segment t in
        append_bytes seg.seg_path record);
    Hashtbl.replace t.index digest json;
    t.appends <- t.appends + 1;
    count t "store_appends_total" 1;
    set_entries_gauge t
  end

(* ---- open-time repair ---- *)

(* Truncate every segment's torn tail back to its last valid record.
   Runs under the writer lock, so an in-flight append either completed
   before we looked (its record is valid and kept) or has not started. *)
let repair t =
  with_lock t (fun () ->
      List.iter
        (fun idx ->
          let path = seg_path t.dir idx in
          match read_from path 0 with
          | None -> ()
          | Some contents ->
            let size = String.length contents in
            if size < Segment.header_len
               || String.sub contents 0 Segment.header_len <> Segment.magic
            then ()  (* not ours (or an empty mid-creation file): leave it *)
            else
              let _, valid_end = Segment.scan ~off:Segment.header_len contents in
              if valid_end < size then begin
                let fd = Unix.openfile path [ Unix.O_WRONLY ] 0o644 in
                Fun.protect
                  ~finally:(fun () ->
                    try Unix.close fd with Unix.Unix_error (_, _, _) -> ())
                  (fun () -> Unix.ftruncate fd valid_end);
                t.truncations <- t.truncations + 1;
                count t "store_truncations_total" 1
              end)
        (list_seg_indices t.dir))

(* ---- compaction ---- *)

let compact t =
  with_lock t (fun () ->
      (* Full fresh scan (not the cached index): compaction must observe
         exactly what is on disk at this instant. *)
      let live = Hashtbl.create 64 in
      let order = ref [] in
      let total = ref 0 in
      let indices = list_seg_indices t.dir in
      List.iter
        (fun idx ->
          match read_from (seg_path t.dir idx) 0 with
          | None -> ()
          | Some contents ->
            if String.length contents >= Segment.header_len
               && String.sub contents 0 Segment.header_len = Segment.magic
            then
              let payloads, _ = Segment.scan ~off:Segment.header_len contents in
              List.iter
                (fun p ->
                  match decode_payload p with
                  | None -> ()
                  | Some (digest, outcome) ->
                    incr total;
                    if not (Hashtbl.mem live digest) then order := digest :: !order;
                    Hashtbl.replace live digest outcome)
                payloads)
        indices;
      let kept = Hashtbl.length live in
      let dropped = !total - kept in
      let next = (match List.rev indices with [] -> 0 | last :: _ -> last) + 1 in
      let final = seg_path t.dir next in
      let tmp = final ^ ".tmp" in
      let buf = Buffer.create 4096 in
      Buffer.add_string buf Segment.magic;
      List.iter
        (fun digest ->
          Buffer.add_string buf
            (Segment.encode (payload_of digest (Hashtbl.find live digest))))
        (List.rev !order);
      let fd = Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error (_, _, _) -> ())
        (fun () ->
          let data = Buffer.contents buf in
          let len = String.length data in
          let rec go off =
            if off < len then go (off + Unix.write_substring fd data off (len - off))
          in
          go 0;
          Unix.fsync fd);
      Sys.rename tmp final;
      (* The new segment holds every live entry: the old files are now
         redundant for any reader, current or future. *)
      List.iter
        (fun idx -> try Sys.remove (seg_path t.dir idx) with Sys_error _ -> ())
        indices;
      t.segs <-
        [ { seg_idx = next; seg_path = final; seg_off = Segment.header_len; seg_bad = false } ];
      Hashtbl.reset t.index;
      Hashtbl.iter (fun d o -> Hashtbl.replace t.index d o) live;
      (match List.hd t.segs with
      | seg -> (
        match file_size final with Some sz -> seg.seg_off <- sz | None -> ()));
      t.compactions <- t.compactions + 1;
      count t "store_compactions_total" 1;
      set_entries_gauge t;
      (kept, dropped))

(* ---- lifecycle ---- *)

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let open_ ?registry ?(rotate_bytes = 4 * 1024 * 1024) ~dir () =
  match
    mkdir_p dir;
    if not (Sys.is_directory dir) then failwith (dir ^ " exists and is not a directory");
    Unix.openfile (Filename.concat dir "lock") [ Unix.O_RDWR; Unix.O_CREAT ] 0o644
  with
  | exception Unix.Unix_error (e, fn, arg) ->
    Printf.ksprintf Result.error "store %s: %s(%s): %s" dir (Unix.error_message e) fn arg
  | exception Failure msg -> Error msg
  | exception Sys_error msg -> Error msg
  | lock_fd ->
    let t =
      {
        dir;
        rotate_bytes = max 1024 rotate_bytes;
        lock_fd;
        index = Hashtbl.create 256;
        segs = [];
        registry;
        hits = 0;
        misses = 0;
        appends = 0;
        rotations = 0;
        compactions = 0;
        truncations = 0;
      }
    in
    repair t;
    refresh t;
    Ok t

let close t = try Unix.close t.lock_fd with Unix.Unix_error (_, _, _) -> ()

let stats t =
  {
    s_hits = t.hits;
    s_misses = t.misses;
    s_appends = t.appends;
    s_rotations = t.rotations;
    s_compactions = t.compactions;
    s_truncations = t.truncations;
    s_entries = Hashtbl.length t.index;
    s_segments = segments t;
  }
