(** Metric registry: named counters, gauges and histograms with labelled
    series.

    A registry is a flat table of time series.  A series is identified by a
    metric name plus a (possibly empty) list of [(key, value)] labels —
    labels are canonicalized (sorted by key) so the caller's order never
    matters.  Three metric kinds:

    - {b counters}: monotone integer totals ([incr]);
    - {b gauges}: last-written float values ([set_gauge]);
    - {b histograms}: float observations bucketed on a log2 scale
      ([observe]) — bucket [i] holds observations in [(2^(i-1), 2^i]]
      (bucket 0 holds everything ≤ 1), which fits bit counts and
      latencies whose interesting structure spans orders of magnitude.

    Instrumentation cost when telemetry is off: every mutator checks the
    global {!enabled} flag first and returns — one atomic load, no
    allocation, no hashing.  The flag is process-wide ({!set_enabled});
    per-run opt-in is the [?obs] argument of the engine entry points.

    Thread-safety: a registry is {e not} synchronized.  The intended
    multicore pattern is one private registry per domain, merged
    afterwards ({!merge_into}, [Sweep_obs.map]); merging is deterministic
    in merge order, matching [Sweep]'s results-in-input-order contract. *)

type t

val set_enabled : bool -> unit
(** Process-wide kill switch for all telemetry (default: enabled).
    When disabled, registry mutators, [Span] operations and [Obs] hooks
    are no-ops. *)

val enabled : unit -> bool

val create : unit -> t

(** {2 Mutators}

    All mutators create the series on first use.  Re-using one series
    name with two different metric kinds raises [Invalid_argument]. *)

val incr : t -> ?labels:(string * string) list -> string -> int -> unit
(** [incr t name k] adds [k] to the counter.  [k] must be ≥ 0. *)

val set_gauge : t -> ?labels:(string * string) list -> string -> float -> unit

val observe : t -> ?labels:(string * string) list -> string -> float -> unit
(** Record one observation into the histogram series. *)

(** {2 Reading} *)

type hist = {
  h_count : int;
  h_sum : float;
  h_min : float;  (** meaningless when [h_count = 0] *)
  h_max : float;
  h_buckets : (float * int) list;
      (** [(upper_bound, count)] per {e non-empty} bucket, ascending;
          bounds are powers of two (non-cumulative counts). *)
}

type value =
  | Counter of int
  | Gauge of float
  | Histogram of hist

val percentile : hist -> float -> float
(** [percentile h p] estimates the [p]-th percentile ([0 <= p <= 100])
    from the log2 buckets: the bucket containing the target rank
    [p/100 · h_count] is found and the estimate interpolated linearly
    between its bounds, clamped into [\[h_min, h_max\]].  A rank landing
    exactly on a bucket boundary reports the bucket's upper bound, so
    power-of-two observations are recovered exactly; [p = 0] is [h_min]
    and [p = 100] is [h_max].  Monotone in [p] by construction
    (p90 ≤ p95 ≤ p99 ≤ p100 — pinned by a qcheck property in
    [test/test_obs.ml]).  Raises [Invalid_argument] on an empty
    histogram or [p] outside [\[0, 100\]]. *)

val counter : t -> ?labels:(string * string) list -> string -> int
(** Counter value; [0] when the series does not exist. *)

val histogram : t -> ?labels:(string * string) list -> string -> hist option
(** Histogram snapshot; [None] when the series does not exist (or is not
    a histogram).  The read side of {!observe} — feed it to
    {!percentile} for the latency/bandwidth curves the scenario runner
    reports. *)

val gauge : t -> ?labels:(string * string) list -> string -> float option
(** Gauge value; [None] when the series does not exist (or is not a
    gauge). *)

val series : t -> (string * (string * string) list * value) list
(** Every series, sorted by (name, labels): the deterministic dump the
    exporters and [ftagg stats] render. *)

val counter_series : t -> string -> ((string * string) list * int) list
(** All counter series under one metric name, sorted by labels. *)

val merge_into : into:t -> t -> unit
(** Fold a registry into [into]: counters and histograms add, gauges take
    the merged-in value (last write wins, so merging in input order keeps
    the result deterministic).  Kind mismatches raise [Invalid_argument]. *)
