type span = {
  sp_node : int;
  sp_name : string;
  sp_phase : bool;
  sp_start_round : int;
  mutable sp_end_round : int;
  sp_start_wall : float;
  mutable sp_end_wall : float;
  mutable sp_bits : int;
  sp_depth : int;
}

type t = {
  mutable round : int;
  stacks : (int, span list) Hashtbl.t;  (* node -> open spans, innermost first *)
  mutable rev_all : span list;  (* every span ever opened, newest first *)
}

let create () = { round = 0; stacks = Hashtbl.create 32; rev_all = [] }

let set_round t r = t.round <- r

let stack t node = Option.value (Hashtbl.find_opt t.stacks node) ~default:[]

let open_span t ~node ~name ~is_phase rest =
  let sp =
    {
      sp_node = node;
      sp_name = name;
      sp_phase = is_phase;
      sp_start_round = t.round;
      sp_end_round = -1;
      sp_start_wall = Unix.gettimeofday ();
      sp_end_wall = 0.0;
      sp_bits = 0;
      sp_depth = List.length rest;
    }
  in
  Hashtbl.replace t.stacks node (sp :: rest);
  t.rev_all <- sp :: t.rev_all;
  sp

let close t sp =
  sp.sp_end_round <- t.round;
  sp.sp_end_wall <- Unix.gettimeofday ()

let charge t ~node bits =
  match stack t node with [] -> () | sp :: _ -> sp.sp_bits <- sp.sp_bits + bits

let current_phase t ~node =
  match stack t node with [] -> None | sp :: _ -> Some sp.sp_name

let close_all t =
  Hashtbl.iter (fun _ spans -> List.iter (close t) spans) t.stacks;
  Hashtbl.reset t.stacks

let spans t = List.rev t.rev_all

(* ---- ambient collector ------------------------------------------------ *)

let ambient_key : t option Domain.DLS.key = Domain.DLS.new_key (fun () -> None)

let with_ambient t f =
  let prev = Domain.DLS.get ambient_key in
  Domain.DLS.set ambient_key (Some t);
  Fun.protect ~finally:(fun () -> Domain.DLS.set ambient_key prev) f

let get_ambient () =
  match Domain.DLS.get ambient_key with
  | Some t when Registry.enabled () -> Some t
  | _ -> None

let active () = match get_ambient () with Some _ -> true | None -> false

let enter ~node name =
  match get_ambient () with
  | None -> ()
  | Some t -> ignore (open_span t ~node ~name ~is_phase:false (stack t node))

let exit_named ~node name =
  match get_ambient () with
  | None -> ()
  | Some t ->
    (* Only unwind if the named span is actually open: a stray exit must
       not tear down unrelated spans. *)
    let st = stack t node in
    if List.exists (fun sp -> sp.sp_name = name) st then begin
      let rec pop = function
        | [] -> []
        | sp :: rest ->
          close t sp;
          if sp.sp_name = name then rest else pop rest
      in
      Hashtbl.replace t.stacks node (pop st)
    end

let phase ~node name =
  match get_ambient () with
  | None -> ()
  | Some t -> (
    match stack t node with
    | sp :: _ when sp.sp_phase && sp.sp_name = name -> ()
    | sp :: rest when sp.sp_phase ->
      close t sp;
      ignore (open_span t ~node ~name ~is_phase:true rest)
    | st -> ignore (open_span t ~node ~name ~is_phase:true st))
