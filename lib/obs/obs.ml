module Bench_io = Ftagg_runner.Bench_io

type event = {
  ev_kind : string;
  ev_round : int;
  ev_node : int;
  ev_fields : (string * Bench_io.json) list;
}

type t = {
  obs_name : string;
  obs_registry : Registry.t;
  obs_spans : Span.t;
  mutable rev_events : event list;
}

let create ?(name = "run") ?registry () =
  let registry = match registry with Some r -> r | None -> Registry.create () in
  { obs_name = name; obs_registry = registry; obs_spans = Span.create (); rev_events = [] }

let name t = t.obs_name
let registry t = t.obs_registry
let spans t = t.obs_spans
let events t = List.rev t.rev_events

let event t ~kind ?(round = -1) ?(node = -1) fields =
  if Registry.enabled () then
    t.rev_events <- { ev_kind = kind; ev_round = round; ev_node = node; ev_fields = fields }
                    :: t.rev_events

let on_round t r =
  if Registry.enabled () then begin
    Span.set_round t.obs_spans r;
    Registry.incr t.obs_registry "ftagg_rounds_total" 1
  end

(* The fallback label for bits charged while the sender has no open span
   (e.g. a protocol without Span annotations, or the teardown round of a
   Tradeoff interval).  Keeping them in a visible bucket is what makes
   "per-phase totals sum to Metrics.total_bits" an invariant rather than
   an approximation. *)
let no_phase = "(none)"

let on_broadcast t ~round ~node ~msgs ~bits =
  if Registry.enabled () then begin
    let phase = Option.value (Span.current_phase t.obs_spans ~node) ~default:no_phase in
    let labels = [ ("phase", phase) ] in
    Registry.incr t.obs_registry ~labels "ftagg_bits_total" bits;
    Registry.incr t.obs_registry ~labels "ftagg_broadcasts_total" 1;
    Registry.observe t.obs_registry ~labels "ftagg_broadcast_bits" (float_of_int bits);
    Span.charge t.obs_spans ~node bits;
    event t ~kind:"broadcast" ~round ~node
      [ ("phase", Bench_io.String phase); ("msgs", Bench_io.Int msgs);
        ("bits", Bench_io.Int bits) ]
  end

let on_violation t ~round ~invariant ~detail =
  if Registry.enabled () then begin
    Registry.incr t.obs_registry ~labels:[ ("invariant", invariant) ]
      "ftagg_violations_total" 1;
    event t ~kind:"violation" ~round
      [ ("invariant", Bench_io.String invariant); ("detail", Bench_io.String detail) ]
  end

let finish t = Span.close_all t.obs_spans

let phase_bits t =
  List.map
    (fun (labels, v) ->
      let phase = match List.assoc_opt "phase" labels with Some p -> p | None -> no_phase in
      (phase, v))
    (Registry.counter_series t.obs_registry "ftagg_bits_total")
  |> List.sort compare
