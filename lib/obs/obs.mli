(** The per-run telemetry sink the engine feeds.

    An [Obs.t] bundles the three collectors a run produces:

    - a {!Registry} of counters/gauges/histograms
      ([ftagg_bits_total{phase=...}], [ftagg_broadcasts_total{phase=...}],
      [ftagg_broadcast_bits{phase=...}] histogram, [ftagg_rounds_total],
      [ftagg_violations_total{invariant=...}]);
    - a {!Span} collector (protocol phases, interval executions);
    - an ordered event stream (broadcasts, violations, chaos shrink
      progress, anything via {!event}) for the JSONL export.

    Pass it to [Engine.run ~obs] / [Engine.run_chaos ~obs]; render it with
    {!Export}.  Every hook is a no-op while telemetry is globally
    disabled ([Registry.set_enabled false]).

    One sink is normally one run (round numbers restart per run, and the
    Chrome export assumes a single timeline), but sharing a registry
    across runs — e.g. one fresh [Obs.t] per seed over a common registry,
    or [Sweep_obs.map]'s per-job registries — is the intended way to
    aggregate. *)

type event = {
  ev_kind : string;
  ev_round : int;  (** [-1] when not tied to a round *)
  ev_node : int;  (** [-1] when not tied to a node *)
  ev_fields : (string * Ftagg_runner.Bench_io.json) list;
}

type t

val create : ?name:string -> ?registry:Registry.t -> unit -> t
(** Fresh sink.  [name] (default ["run"]) labels the exports;
    [registry] lets several sinks share one registry for aggregation. *)

val name : t -> string
val registry : t -> Registry.t
val spans : t -> Span.t
val events : t -> event list
(** Events in emission order. *)

val event :
  t -> kind:string -> ?round:int -> ?node:int ->
  (string * Ftagg_runner.Bench_io.json) list -> unit
(** Append a custom event to the stream. *)

(** {2 Engine hooks} *)

val on_round : t -> int -> unit
(** Round [r] is starting: publishes it to the span collector and bumps
    [ftagg_rounds_total]. *)

val on_broadcast : t -> round:int -> node:int -> msgs:int -> bits:int -> unit
(** A node broadcast [msgs] logical payloads totalling [bits] bits.
    Attributes the bits to the sender's innermost open span — the phase
    label ["(none)"] collects bits sent outside any span, so per-phase
    totals always sum to [Metrics.total_bits]. *)

val on_violation : t -> round:int -> invariant:string -> detail:string -> unit
(** A watchdog invariant fired (chaos runs). *)

val finish : t -> unit
(** End of run: closes any spans still open. *)

(** {2 Derived views} *)

val phase_bits : t -> (string * int) list
(** Per-phase bit totals from the registry
    ([ftagg_bits_total{phase=...}]), sorted by phase name. *)
