module Bench_io = Ftagg_runner.Bench_io
open Bench_io

(* ---- JSONL ------------------------------------------------------------ *)

let json_of_event (e : Obs.event) =
  let base = [ ("kind", String e.ev_kind) ] in
  let base = if e.ev_round >= 0 then base @ [ ("round", Int e.ev_round) ] else base in
  let base = if e.ev_node >= 0 then base @ [ ("node", Int e.ev_node) ] else base in
  Obj (base @ e.ev_fields)

let json_of_span (sp : Span.span) =
  Obj
    [
      ("kind", String "span");
      ("node", Int sp.Span.sp_node);
      ("name", String sp.Span.sp_name);
      ("round_start", Int sp.Span.sp_start_round);
      ("round_end", Int sp.Span.sp_end_round);
      ("wall_s", Float (sp.Span.sp_end_wall -. sp.Span.sp_start_wall));
      ("bits", Int sp.Span.sp_bits);
      ("depth", Int sp.Span.sp_depth);
    ]

let jsonl obs =
  let buf = Buffer.create 4096 in
  let line j =
    Buffer.add_string buf (to_string ~indent:false j);
    Buffer.add_char buf '\n'
  in
  line (Obj [ ("kind", String "run"); ("name", String (Obs.name obs)) ]);
  List.iter (fun e -> line (json_of_event e)) (Obs.events obs);
  List.iter (fun sp -> line (json_of_span sp)) (Span.spans (Obs.spans obs));
  Buffer.contents buf

(* ---- Chrome trace_event ---------------------------------------------- *)

(* Synthetic clock: 1 round = 1 ms = 1000 trace microseconds.  Rounds,
   not wall-clock, so the trace is deterministic and phases line up
   across nodes. *)
let us_of_round r = float_of_int ((r - 1) * 1000)

let chrome_trace obs =
  let spans = Span.spans (Obs.spans obs) in
  let phases =
    List.sort_uniq compare (List.map (fun sp -> sp.Span.sp_name) spans)
  in
  let tid_of name =
    let rec idx i = function
      | [] -> 0
      | p :: tl -> if p = name then i else idx (i + 1) tl
    in
    idx 1 phases
  in
  let nodes = List.sort_uniq compare (List.map (fun sp -> sp.Span.sp_node) spans) in
  let meta =
    List.concat_map
      (fun node ->
        let tids =
          List.sort_uniq compare
            (List.filter_map
               (fun sp -> if sp.Span.sp_node = node then Some (tid_of sp.Span.sp_name) else None)
               spans)
        in
        Obj
          [
            ("name", String "process_name"); ("ph", String "M"); ("pid", Int node);
            ("tid", Int 0);
            ("args", Obj [ ("name", String (Printf.sprintf "node %d" node)) ]);
          ]
        :: List.map
             (fun tid ->
               Obj
                 [
                   ("name", String "thread_name"); ("ph", String "M"); ("pid", Int node);
                   ("tid", Int tid);
                   ("args", Obj [ ("name", String (List.nth phases (tid - 1))) ]);
                 ])
             tids)
      nodes
  in
  let events =
    List.map
      (fun sp ->
        let end_round =
          if sp.Span.sp_end_round < 0 then sp.Span.sp_start_round else sp.Span.sp_end_round
        in
        let dur = max 1 (end_round - sp.Span.sp_start_round) * 1000 in
        Obj
          [
            ("name", String sp.Span.sp_name);
            ("cat", String (if sp.Span.sp_phase then "phase" else "span"));
            ("ph", String "X");
            ("pid", Int sp.Span.sp_node);
            ("tid", Int (tid_of sp.Span.sp_name));
            ("ts", Float (us_of_round sp.Span.sp_start_round));
            ("dur", Int dur);
            ( "args",
              Obj
                [
                  ("round_start", Int sp.Span.sp_start_round);
                  ("round_end", Int end_round);
                  ("bits", Int sp.Span.sp_bits);
                  ("wall_s", Float (sp.Span.sp_end_wall -. sp.Span.sp_start_wall));
                ] );
          ])
      spans
  in
  Obj
    [
      ("traceEvents", List (meta @ events));
      ("displayTimeUnit", String "ms");
      ("otherData", Obj [ ("name", String (Obs.name obs)); ("clock", String "1 round = 1ms") ]);
    ]

(* ---- Prometheus text -------------------------------------------------- *)

let escape_label_value s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '"' -> Buffer.add_string buf "\\\""
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let render_labels = function
  | [] -> ""
  | labels ->
    "{"
    ^ String.concat ","
        (List.map (fun (k, v) -> Printf.sprintf "%s=\"%s\"" k (escape_label_value v)) labels)
    ^ "}"

let float_str v =
  if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
  else Printf.sprintf "%g" v

let prometheus registry =
  let buf = Buffer.create 4096 in
  let last_typed = ref "" in
  let type_line name kind =
    if !last_typed <> name then begin
      Buffer.add_string buf (Printf.sprintf "# TYPE %s %s\n" name kind);
      last_typed := name
    end
  in
  List.iter
    (fun (name, labels, value) ->
      match (value : Registry.value) with
      | Registry.Counter c ->
        type_line name "counter";
        Buffer.add_string buf (Printf.sprintf "%s%s %d\n" name (render_labels labels) c)
      | Registry.Gauge g ->
        type_line name "gauge";
        Buffer.add_string buf (Printf.sprintf "%s%s %s\n" name (render_labels labels) (float_str g))
      | Registry.Histogram h ->
        type_line name "histogram";
        let cum = ref 0 in
        List.iter
          (fun (bound, count) ->
            cum := !cum + count;
            let le = if bound = infinity then "+Inf" else float_str bound in
            Buffer.add_string buf
              (Printf.sprintf "%s_bucket%s %d\n" name
                 (render_labels (labels @ [ ("le", le) ]))
                 !cum))
          h.Registry.h_buckets;
        if not (List.exists (fun (b, _) -> b = infinity) h.Registry.h_buckets) then
          Buffer.add_string buf
            (Printf.sprintf "%s_bucket%s %d\n" name
               (render_labels (labels @ [ ("le", "+Inf") ]))
               !cum);
        Buffer.add_string buf
          (Printf.sprintf "%s_sum%s %s\n" name (render_labels labels)
             (float_str h.Registry.h_sum));
        Buffer.add_string buf
          (Printf.sprintf "%s_count%s %d\n" name (render_labels labels) h.Registry.h_count))
    (Registry.series registry);
  Buffer.contents buf

(* ---- files ------------------------------------------------------------ *)

let write_text path text =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc text)

let write_jsonl ~path obs = write_text path (jsonl obs)
let write_chrome_trace ~path obs = Bench_io.write_file ~path (chrome_trace obs)
let write_prometheus ~path registry = write_text path (prometheus registry)
