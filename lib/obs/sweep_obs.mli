(** Telemetry-carrying parallel sweeps.

    [Sweep.map] runs jobs on a domain pool; registries are unsynchronized,
    so jobs must not share one.  [map] gives every job a {e private}
    fresh registry, then folds the per-job registries into [into] in
    {b input order} — deterministic regardless of which domain ran which
    job or in what order they finished, matching [Sweep]'s
    results-in-input-order contract (counter/histogram merges commute;
    gauges are last-write-wins in input order).

    Lives here rather than in [Ftagg_runner.Sweep] because the runner
    library sits below the observability layer in the dependency order
    ([Bench_io] is the JSON backend of {!Export}). *)

val map :
  ?domains:int -> into:Registry.t -> (Registry.t -> 'a -> 'b) -> 'a list -> 'b list
(** [map ~into f xs] — like [Sweep.map], but each [f] call receives the
    job's private registry; all registries are merged into [into] after
    the pool drains.  Results come back in input order. *)

val map_seeds :
  ?domains:int -> into:Registry.t -> seeds:int list -> (Registry.t -> int -> 'a) -> 'a list
(** Per-seed convenience wrapper over {!map}. *)
