module Sweep = Ftagg_runner.Sweep

let map ?domains ~into f xs =
  let jobs =
    Sweep.map ?domains
      (fun x ->
        let reg = Registry.create () in
        let y = f reg x in
        (y, reg))
      xs
  in
  List.iter (fun (_, reg) -> Registry.merge_into ~into reg) jobs;
  List.map fst jobs

let map_seeds ?domains ~into ~seeds f = map ?domains ~into f seeds
