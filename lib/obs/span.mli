(** Nested protocol-phase spans, timed in rounds and wall-clock.

    A span is an interval of a run attributed to one node: a protocol
    phase ([agg/flood], [veri/lfc]), a Tradeoff interval execution
    ([tradeoff/interval#k]), or anything a protocol cares to mark.  Spans
    nest per node (a phase span inside an interval span) and carry a bit
    total: the engine charges every broadcast's bits to the sender's
    innermost open span, so exported traces show where the bits went.

    {b Ambient collector.}  Protocol [step] functions have no channel to
    an observability sink — threading one through every state record
    would contaminate the whole protocol layer.  Instead the engine
    installs the run's collector in domain-local storage for the
    duration of the run ({!with_ambient}); the protocol-facing operations
    ({!enter}, {!exit_named}, {!phase}) target that ambient collector and
    are no-ops when none is installed or telemetry is globally disabled
    ({!Registry.set_enabled}).  Domain-local (not global mutable) state
    keeps concurrent [Sweep] domains from seeing each other's runs.

    Rounds are {e global} engine rounds: the engine publishes the
    current round via {!set_round} once per round, so spans opened by
    protocols running in execution-relative time (Tradeoff's staggered
    Pair executions) still report honest global timestamps. *)

type span = {
  sp_node : int;
  sp_name : string;
  sp_phase : bool;  (** opened by {!phase} (auto-closed by the next phase) *)
  sp_start_round : int;
  mutable sp_end_round : int;  (** [-1] while open *)
  sp_start_wall : float;
  mutable sp_end_wall : float;
  mutable sp_bits : int;  (** bits charged while this span was innermost *)
  sp_depth : int;  (** nesting depth at open time, 0 = outermost *)
}

type t
(** A collector: per-node stacks of open spans plus the closed log. *)

val create : unit -> t

(** {2 Collector-facing (engine, exporters)} *)

val with_ambient : t -> (unit -> 'a) -> 'a
(** Install [t] as this domain's ambient collector for the call
    (restoring the previous one afterwards, exceptions included). *)

val set_round : t -> int -> unit
(** Publish the global round; spans opened/closed after this call are
    stamped with it. *)

val charge : t -> node:int -> int -> unit
(** Attribute bits to [node]'s innermost open span (no-op when none). *)

val current_phase : t -> node:int -> string option
(** Name of [node]'s innermost open span, if any. *)

val close_all : t -> unit
(** Close every open span at the current round (end of run). *)

val spans : t -> span list
(** All spans in creation order; open ones have [sp_end_round = -1]. *)

(** {2 Protocol-facing (ambient)}

    All of these are no-ops unless a collector is ambient {e and}
    telemetry is enabled, so un-instrumented runs pay one domain-local
    read per call site. *)

val active : unit -> bool
(** Cheap guard for instrumentation blocks that do more than one call. *)

val enter : node:int -> string -> unit
(** Open a nested span. *)

val exit_named : node:int -> string -> unit
(** Close [node]'s open spans innermost-first up to and including the
    one called [name] (no-op if no such span is open). *)

val phase : node:int -> string -> unit
(** Switch [node]'s current {e phase}: if the innermost open span is a
    phase span with this name, do nothing; if it is a phase span with
    another name, close it and open the new one; otherwise open a new
    nested phase span.  Phase spans form a per-node chain that needs no
    explicit closes — ideal for round-window phases like [agg/flood]. *)
