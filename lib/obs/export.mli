(** Render a telemetry sink to the three export formats.

    - {b JSONL}: one JSON object per line — a [run] header, then the
      event stream in order, then one [span] record per span.  The
      append-friendly format for piping and [grep]/[jq].
    - {b Chrome [trace_event]}: a single JSON object loadable in
      Perfetto / [chrome://tracing].  One "process" per node, one
      "thread" per phase name; spans become complete ([ph = "X"])
      events on a synthetic clock of 1 round = 1 ms (wall-clock and bit
      totals ride along in [args]).  The round clock, not wall-clock,
      keeps traces deterministic and visually aligned across nodes.
    - {b Prometheus text}: the registry as
      [# TYPE]-annotated counter/gauge/histogram lines, cumulative
      [_bucket{le="..."}] series included.

    All JSON goes through {!Ftagg_runner.Bench_io}, so every export is
    parseable by the in-repo reader (CI checks this). *)

val jsonl : Obs.t -> string

val chrome_trace : Obs.t -> Ftagg_runner.Bench_io.json
(** The [{"traceEvents": [...], ...}] object. *)

val prometheus : Registry.t -> string

val write_jsonl : path:string -> Obs.t -> unit
val write_chrome_trace : path:string -> Obs.t -> unit
(** Write the Chrome trace (indented, Perfetto-loadable) to [path]. *)

val write_prometheus : path:string -> Registry.t -> unit
(** Write {!prometheus} to [path] — what [ftagg serve --prom] and the
    chaos campaign's [campaign.prom] use. *)
