let enabled_flag = Atomic.make true
let set_enabled b = Atomic.set enabled_flag b
let enabled () = Atomic.get enabled_flag

(* Log2-scaled buckets: slot i holds observations in (2^(i-1), 2^i],
   slot 0 holds v <= 1, the last slot is the overflow (+Inf).  2^38 ~ 3e11
   comfortably covers bit totals and microsecond latencies. *)
let n_buckets = 40

type hist_acc = {
  mutable hc_count : int;
  mutable hc_sum : float;
  mutable hc_min : float;
  mutable hc_max : float;
  hc_buckets : int array;
}

type cell =
  | C_counter of { mutable c : int }
  | C_gauge of { mutable g : float }
  | C_hist of hist_acc

type t = { tbl : (string * (string * string) list, cell) Hashtbl.t }

let create () = { tbl = Hashtbl.create 64 }

let canon labels = List.sort compare labels

let kind_name = function
  | C_counter _ -> "counter"
  | C_gauge _ -> "gauge"
  | C_hist _ -> "histogram"

let find_or_add t name labels fresh check =
  let key = (name, canon labels) in
  match Hashtbl.find_opt t.tbl key with
  | Some cell ->
    if not (check cell) then
      invalid_arg
        (Printf.sprintf "Registry: %s already registered as a %s" name (kind_name cell));
    cell
  | None ->
    let cell = fresh () in
    Hashtbl.add t.tbl key cell;
    cell

let incr t ?(labels = []) name k =
  if enabled () then begin
    if k < 0 then invalid_arg "Registry.incr: negative increment";
    match
      find_or_add t name labels
        (fun () -> C_counter { c = 0 })
        (function C_counter _ -> true | _ -> false)
    with
    | C_counter cell -> cell.c <- cell.c + k
    | _ -> assert false
  end

let set_gauge t ?(labels = []) name v =
  if enabled () then
    match
      find_or_add t name labels
        (fun () -> C_gauge { g = v })
        (function C_gauge _ -> true | _ -> false)
    with
    | C_gauge cell -> cell.g <- v
    | _ -> assert false

let slot v =
  if v <= 1.0 then 0
  else
    let rec up i bound = if v <= bound || i = n_buckets - 1 then i else up (i + 1) (bound *. 2.0) in
    up 1 2.0

let fresh_hist () =
  C_hist
    { hc_count = 0; hc_sum = 0.0; hc_min = infinity; hc_max = neg_infinity;
      hc_buckets = Array.make n_buckets 0 }

let observe t ?(labels = []) name v =
  if enabled () then
    match find_or_add t name labels fresh_hist (function C_hist _ -> true | _ -> false) with
    | C_hist h ->
      h.hc_count <- h.hc_count + 1;
      h.hc_sum <- h.hc_sum +. v;
      if v < h.hc_min then h.hc_min <- v;
      if v > h.hc_max then h.hc_max <- v;
      let i = slot v in
      h.hc_buckets.(i) <- h.hc_buckets.(i) + 1
    | _ -> assert false

type hist = {
  h_count : int;
  h_sum : float;
  h_min : float;
  h_max : float;
  h_buckets : (float * int) list;
}

type value =
  | Counter of int
  | Gauge of float
  | Histogram of hist

let bound_of_slot i = if i = n_buckets - 1 then infinity else ldexp 1.0 i

let snapshot_cell = function
  | C_counter { c } -> Counter c
  | C_gauge { g } -> Gauge g
  | C_hist h ->
    let buckets = ref [] in
    for i = n_buckets - 1 downto 0 do
      if h.hc_buckets.(i) > 0 then buckets := (bound_of_slot i, h.hc_buckets.(i)) :: !buckets
    done;
    Histogram
      { h_count = h.hc_count; h_sum = h.hc_sum; h_min = h.hc_min; h_max = h.hc_max;
        h_buckets = !buckets }

(* Percentile estimation straight off the log2 buckets: find the bucket
   holding the target rank, then interpolate linearly inside it.  A rank
   landing exactly on a bucket's cumulative count pins the estimate to
   that bucket's upper bound, so power-of-two observations report
   themselves exactly.  The overflow bucket and both tails are clamped to
   the recorded [h_min, h_max], which keeps estimates inside the observed
   range and makes [percentile h 100.0 = h_max]. *)
let percentile (h : hist) p =
  if h.h_count = 0 then invalid_arg "Registry.percentile: empty histogram";
  if p < 0.0 || p > 100.0 || Float.is_nan p then invalid_arg "Registry.percentile: p out of range";
  let clamp v = Float.max h.h_min (Float.min h.h_max v) in
  let rank = p /. 100.0 *. float_of_int h.h_count in
  if rank <= 0.0 then h.h_min
  else
    let rec walk cum = function
      | [] -> h.h_max
      | (upper, count) :: rest ->
        let cum' = cum +. float_of_int count in
        if rank <= cum' then begin
          let lower = if upper <= 1.0 then 0.0 else upper /. 2.0 in
          let upper = if Float.is_finite upper then upper else h.h_max in
          let lower = Float.min lower upper in
          clamp (lower +. ((rank -. cum) /. float_of_int count *. (upper -. lower)))
        end
        else walk cum' rest
    in
    walk 0.0 h.h_buckets

let histogram t ?(labels = []) name =
  match Hashtbl.find_opt t.tbl (name, canon labels) with
  | Some (C_hist _ as cell) -> (
    match snapshot_cell cell with Histogram h -> Some h | _ -> None)
  | Some _ | None -> None

let counter t ?(labels = []) name =
  match Hashtbl.find_opt t.tbl (name, canon labels) with
  | Some (C_counter { c }) -> c
  | Some _ | None -> 0

let gauge t ?(labels = []) name =
  match Hashtbl.find_opt t.tbl (name, canon labels) with
  | Some (C_gauge { g }) -> Some g
  | Some _ | None -> None

let series t =
  Hashtbl.fold (fun (name, labels) cell acc -> (name, labels, snapshot_cell cell) :: acc) t.tbl []
  |> List.sort (fun (n1, l1, _) (n2, l2, _) -> compare (n1, l1) (n2, l2))

let counter_series t name =
  List.filter_map
    (fun (n, labels, v) ->
      match v with Counter c when n = name -> Some (labels, c) | _ -> None)
    (series t)

let merge_into ~into src =
  (* Per-key combination is commutative for counters and histograms and
     last-write-wins for gauges, so merging registries in input order
     makes the result deterministic regardless of Hashtbl iteration
     order (keys are unique within one registry). *)
  Hashtbl.iter
    (fun (name, labels) cell ->
      match Hashtbl.find_opt into.tbl (name, labels) with
      | None ->
        let copy =
          match cell with
          | C_counter { c } -> C_counter { c }
          | C_gauge { g } -> C_gauge { g }
          | C_hist h ->
            C_hist
              { hc_count = h.hc_count; hc_sum = h.hc_sum; hc_min = h.hc_min;
                hc_max = h.hc_max; hc_buckets = Array.copy h.hc_buckets }
        in
        Hashtbl.add into.tbl (name, labels) copy
      | Some (C_counter dst) -> (
        match cell with
        | C_counter { c } -> dst.c <- dst.c + c
        | _ -> invalid_arg (Printf.sprintf "Registry.merge_into: %s kind mismatch" name))
      | Some (C_gauge dst) -> (
        match cell with
        | C_gauge { g } -> dst.g <- g
        | _ -> invalid_arg (Printf.sprintf "Registry.merge_into: %s kind mismatch" name))
      | Some (C_hist dst) -> (
        match cell with
        | C_hist h ->
          dst.hc_count <- dst.hc_count + h.hc_count;
          dst.hc_sum <- dst.hc_sum +. h.hc_sum;
          if h.hc_min < dst.hc_min then dst.hc_min <- h.hc_min;
          if h.hc_max > dst.hc_max then dst.hc_max <- h.hc_max;
          Array.iteri (fun i c -> dst.hc_buckets.(i) <- dst.hc_buckets.(i) + c) h.hc_buckets
        | _ -> invalid_arg (Printf.sprintf "Registry.merge_into: %s kind mismatch" name)))
    src.tbl
