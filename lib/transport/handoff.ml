module Bench_io = Ftagg_runner.Bench_io

let version = 1

type mode = Fd_pass | Rebind

let mode_to_string = function Fd_pass -> "fd" | Rebind -> "rebind"

let mode_of_string = function
  | "fd" -> Some Fd_pass
  | "rebind" -> Some Rebind
  | _ -> None

let line json = Bench_io.to_string ~indent:false json

let str_member key json =
  match Bench_io.member key json with Some (Bench_io.String s) -> Some s | _ -> None

let int_member key json = Option.bind (Bench_io.member key json) Bench_io.to_int

let takeover_request mode =
  line
    (Bench_io.Obj
       [
         ("op", Bench_io.String "takeover");
         ("version", Bench_io.Int version);
         ("mode", Bench_io.String (mode_to_string mode));
       ])

let adopted_line =
  line (Bench_io.Obj [ ("op", Bench_io.String "adopted"); ("version", Bench_io.Int version) ])

let refusal ~error ~detail =
  line
    (Bench_io.Obj
       [
         ("ok", Bench_io.Bool false);
         ("op", Bench_io.String "takeover");
         ("error", Bench_io.String error);
         ("detail", Bench_io.String detail);
       ])

type reply = { r_address : string; r_checkpoint : string option; r_fd_follows : bool }

let reply_line r =
  line
    (Bench_io.Obj
       [
         ("ok", Bench_io.Bool true);
         ("op", Bench_io.String "takeover");
         ("version", Bench_io.Int version);
         ("address", Bench_io.String r.r_address);
         ( "checkpoint",
           match r.r_checkpoint with Some p -> Bench_io.String p | None -> Bench_io.Null );
         ("fd_follows", Bench_io.Bool r.r_fd_follows);
       ])

let parse_reply s =
  match Bench_io.of_string s with
  | Error e -> Error (Printf.sprintf "takeover reply does not parse: %s" e)
  | Ok json -> (
    match Bench_io.member "ok" json with
    | Some (Bench_io.Bool false) ->
      let error = Option.value (str_member "error" json) ~default:"refused" in
      let detail = Option.value (str_member "detail" json) ~default:"" in
      Error (Printf.sprintf "takeover refused: %s%s" error
           (if detail = "" then "" else " (" ^ detail ^ ")"))
    | Some (Bench_io.Bool true) -> (
      match int_member "version" json with
      | Some v when v <> version ->
        Error (Printf.sprintf "takeover reply version %d (expected %d)" v version)
      | _ -> (
        match str_member "address" json with
        | None -> Error "takeover reply without an address"
        | Some r_address ->
          let r_checkpoint = str_member "checkpoint" json in
          let r_fd_follows =
            match Option.bind (Bench_io.member "fd_follows" json) Bench_io.to_bool with
            | Some b -> b
            | None -> false
          in
          Ok { r_address; r_checkpoint; r_fd_follows }))
    | _ -> Error "takeover reply without an ok field")

let parse_request s =
  match Bench_io.of_string s with
  | Error e -> Error (`Refuse ("bad_request", Printf.sprintf "unparseable control line: %s" e))
  | Ok json -> (
    match str_member "op" json with
    | Some "takeover" -> (
      match int_member "version" json with
      | Some v when v <> version ->
        Error
          (`Refuse
             ( "version_mismatch",
               Printf.sprintf "control protocol version %d (this server speaks %d)" v version ))
      | None -> Error (`Refuse ("version_mismatch", "takeover request without a version"))
      | Some _ -> (
        match mode_of_string (Option.value (str_member "mode" json) ~default:"fd") with
        | Some mode -> Ok mode
        | None -> Error (`Refuse ("bad_request", "mode must be \"fd\" or \"rebind\""))))
    | Some other -> Error (`Refuse ("bad_request", Printf.sprintf "unknown control op %S" other))
    | None -> Error (`Refuse ("bad_request", "control line without an op")))

let parse_adopted s =
  match Bench_io.of_string s with
  | Error _ -> false
  | Ok json -> str_member "op" json = Some "adopted" && int_member "version" json = Some version

(* ------------------------------------------------------------------ *)
(* Successor side                                                      *)
(* ------------------------------------------------------------------ *)

module Takeover = struct
  type outcome = {
    address : string;
    checkpoint_path : string option;
    fd : Unix.file_descr option;
  }

  type state =
    | Awaiting_reply
    | Awaiting_fd of reply
    | Ready of outcome
    | Failed of string
    | Closed

  type t = {
    fd : Unix.file_descr;
    frame : Frame.t;
    mode : mode;
    mutable state : state;
    mutable got_fd : Unix.file_descr option;
        (* a descriptor can ride in on the same recvmsg as reply bytes,
           so it is captured eagerly whatever state we are in *)
  }

  let start ?(mode = Fd_pass) ~ctl () =
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    match
      Unix.connect fd (Unix.ADDR_UNIX ctl);
      let req = takeover_request mode ^ "\n" in
      ignore (Unix.write_substring fd req 0 (String.length req));
      Unix.set_nonblock fd
    with
    | () ->
      Ok { fd; frame = Frame.create ~max_line:65536; mode; state = Awaiting_reply; got_fd = None }
    | exception Unix.Unix_error (e, fn, _) ->
      (try Unix.close fd with Unix.Unix_error (_, _, _) -> ());
      Error (Printf.sprintf "takeover: %s: %s(%s)" ctl (Unix.error_message e) fn)

  let read_buf = Bytes.create 4096

  let fail t msg =
    t.state <- Failed msg;
    `Failed msg

  (* One nonblocking read; returns the completed lines (empty on EAGAIN)
     and stashes a received descriptor into [got_fd].  Every read goes
     through [recv_with_fd]: a plain [read] would make the kernel drop —
     and close — an SCM_RIGHTS descriptor attached to the bytes. *)
  let read_lines t =
    match Fd_passing.recv_with_fd ~sock:t.fd read_buf with
    | Error "EAGAIN" -> Ok []
    | Error msg -> Error msg
    | Ok (0, _) -> Error "incumbent closed the control connection"
    | Ok (n, fd_opt) ->
      (match fd_opt with Some fd -> t.got_fd <- Some fd | None -> ());
      Ok
        (List.filter_map
           (function Frame.Line l -> Some l | Frame.Oversized _ -> None)
           (Frame.feed t.frame read_buf ~off:0 ~len:n))

  let rec step t =
    match t.state with
    | Ready o -> `Ready o
    | Failed msg -> `Failed msg
    | Closed -> `Failed "takeover already closed"
    | Awaiting_reply -> (
      match read_lines t with
      | Error msg -> fail t msg
      | Ok [] -> `Pending
      | Ok (line :: _) -> (
        match parse_reply line with
        | Error msg -> fail t msg
        | Ok reply ->
          if reply.r_fd_follows then begin
            t.state <- Awaiting_fd reply;
            step t
          end
          else begin
            t.state <-
              Ready
                {
                  address = reply.r_address;
                  checkpoint_path = reply.r_checkpoint;
                  fd = None;
                };
            step t
          end))
    | Awaiting_fd reply -> (
      match t.got_fd with
      | Some listen_fd ->
        t.got_fd <- None;
        t.state <-
          Ready
            {
              address = reply.r_address;
              checkpoint_path = reply.r_checkpoint;
              fd = Some listen_fd;
            };
        step t
      | None -> (
        match read_lines t with
        | Error msg -> fail t msg
        | Ok _ -> if t.got_fd = None then `Pending else step t))

  let close_ctl t =
    (try Unix.close t.fd with Unix.Unix_error (_, _, _) -> ());
    t.state <- Closed

  let confirm t =
    (match t.state with
    | Ready _ ->
      let ack = adopted_line ^ "\n" in
      (* The socket is nonblocking, but a one-line write into an empty
         buffer cannot meaningfully short-write; EAGAIN here means the
         incumbent is gone, which [close] below settles either way. *)
      (try ignore (Unix.write_substring t.fd ack 0 (String.length ack))
       with Unix.Unix_error (_, _, _) -> ())
    | _ -> ());
    close_ctl t

  let abort t =
    (* Closing an fd we received but will not use matters: it is a live
       dup of the incumbent's listener. *)
    (match t.state with
    | Ready { fd = Some listen_fd; _ } -> (
      try Unix.close listen_fd with Unix.Unix_error (_, _, _) -> ())
    | _ -> ());
    (match t.got_fd with
    | Some fd ->
      t.got_fd <- None;
      (try Unix.close fd with Unix.Unix_error (_, _, _) -> ())
    | None -> ());
    close_ctl t

  let run ?mode ?(timeout = 30.) ?(sleep = Unix.sleepf) ~ctl () =
    match start ?mode ~ctl () with
    | Error e -> Error e
    | Ok t ->
      let deadline = Unix.gettimeofday () +. timeout in
      let rec loop () =
        match step t with
        | `Ready outcome -> Ok (t, outcome)
        | `Failed msg ->
          abort t;
          Error msg
        | `Pending ->
          if Unix.gettimeofday () > deadline then begin
            abort t;
            Error (Printf.sprintf "takeover timed out after %.0fs" timeout)
          end
          else begin
            sleep 0.01;
            loop ()
          end
      in
      loop ()
end
