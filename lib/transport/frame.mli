(** Incremental line framing for the socket transport.

    A framer turns an arbitrary byte stream into protocol lines: feed it
    whatever [read] returned and get back every line completed so far.
    Framing rules match the stdin serve loop — one request per
    ['\n']-terminated line, an optional trailing ['\r'] stripped (so
    [nc]/telnet clients work), blank lines skipped by the caller.

    The one thing a socket framer must add over [input_line] is a bound:
    a client that never sends a newline must not grow the buffer without
    limit.  Once a line exceeds [max_line] bytes the framer emits
    {!Oversized} {e once} and discards bytes until the next newline, after
    which framing resumes cleanly — an oversized request costs the client
    one error response, not the connection, and never poisons the next
    line. *)

type t

type item =
  | Line of string  (** a complete line, newline (and any ['\r']) stripped *)
  | Oversized of int
      (** a line crossed the [max_line] bound; the payload is the number
          of bytes seen before discarding began *)

val create : max_line:int -> t
(** [max_line] must be positive; it bounds the {e payload} length, the
    terminator excluded. *)

val feed : t -> bytes -> off:int -> len:int -> item list
(** Consume [len] bytes at [off]; returns the items completed by this
    chunk, in stream order. *)

val feed_string : t -> string -> item list

val pending : t -> int
(** Bytes buffered of the current partial line (0 right after a
    newline); discarded oversized bytes are not counted. *)

val discarding : t -> bool
(** The framer is skipping to the next newline after an oversized line. *)
