type t = {
  max_line : int;
  buf : Buffer.t;
  mutable over : int;  (* bytes seen of the oversized line, 0 = not discarding *)
}

type item = Line of string | Oversized of int

let create ~max_line =
  if max_line <= 0 then invalid_arg "Frame.create: max_line must be positive";
  { max_line; buf = Buffer.create 256; over = 0 }

let pending t = Buffer.length t.buf
let discarding t = t.over > 0

let strip_cr s =
  let n = String.length s in
  if n > 0 && s.[n - 1] = '\r' then String.sub s 0 (n - 1) else s

let feed t bytes ~off ~len =
  if off < 0 || len < 0 || off + len > Bytes.length bytes then
    invalid_arg "Frame.feed: bad slice";
  let items = ref [] in
  for i = off to off + len - 1 do
    let c = Bytes.get bytes i in
    if t.over > 0 then
      (* Discard mode: count until the newline that ends the bad line. *)
      if c = '\n' then begin
        items := Oversized t.over :: !items;
        t.over <- 0
      end
      else t.over <- t.over + 1
    else if c = '\n' then begin
      items := Line (strip_cr (Buffer.contents t.buf)) :: !items;
      Buffer.clear t.buf
    end
    else begin
      Buffer.add_char t.buf c;
      if Buffer.length t.buf > t.max_line then begin
        (* The bound is crossed mid-line: switch to discard mode carrying
           the count of what we already buffered. *)
        t.over <- Buffer.length t.buf;
        Buffer.clear t.buf
      end
    end
  done;
  List.rev !items

let feed_string t s = feed t (Bytes.unsafe_of_string s) ~off:0 ~len:(String.length s)
