(** Per-connection protocol state for the socket transport.

    A session wraps the service's [handle] step with the two things a
    shared socket front door adds over the single-client stdin loop:

    - {b identity}: the first request on an authenticated listener must
      be [{"op":"hello","token":"..."}]; the token resolves to a tenant
      in the static {!Auth.table} and a bad or missing token closes the
      connection ({e refused}).  On an open listener (no [--auth-file])
      the handshake is optional — [{"op":"hello","tenant":"x"}] binds a
      tenant, and a session that skips it behaves exactly like the stdin
      loop (requests pass through untouched).
    - {b stamping}: once a tenant is bound, it is stamped onto every
      [submit] (overriding whatever the job object claimed), so one
      client cannot enqueue work under another tenant's name.

    Two ops change meaning on a shared transport: [shutdown] scopes to
    the {e connection} (a tenant must not stop the service for everyone
    — stopping the process is SIGTERM's job), and [hello] is answered
    here without reaching the service.  Everything else is delegated
    verbatim to [handle].

    Sessions are socket-free — the listener feeds them framed lines, and
    the tests drive them directly. *)

type auth_mode =
  | Open  (** no token table; [hello] is optional and names the tenant *)
  | Tokens of Auth.table
      (** [hello] is mandatory and must carry a known token *)

type config = {
  auth : auth_mode;
  registry : Ftagg_obs.Registry.t;
      (** receives the [transport_*] counters; share the server's
          registry so the [metrics] op exposes them *)
  handle : tenant:string option -> string -> string;
      (** the service step, normally [Server.handle_as] partially
          applied *)
}

type t

type reply = {
  response : string option;  (** one response line to send, if any *)
  close : bool;  (** close the connection after flushing [response] *)
}

val create : config -> t
(** One session per accepted connection. *)

val on_line : t -> string -> reply
(** Process one complete, non-empty request line. *)

val on_oversized : t -> seen:int -> reply
(** A request line crossed the framer's bound: answer a structured
    [line_too_long] error (the connection survives — the framer already
    discarded the bad line). *)

val tenant : t -> string option
(** The bound tenant, once the handshake happened. *)

val authenticated : t -> bool
(** The session got past the handshake (always true on an [Open]
    listener once any line was processed). *)
