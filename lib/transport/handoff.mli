(** The zero-downtime handoff protocol: wire format shared by the
    incumbent ({!Listener}) and the successor ({!Takeover}).

    Every server with a control socket listens on a {e versioned} unix
    control socket next to its data listener (by convention
    [<listen-path>.ctl]).  A successor process connects to it and runs:

    {v
      successor -> incumbent   {"op":"takeover","version":1,"mode":"fd"}
      incumbent: pause accepting, close client connections with a
                 structured goodbye, finish the admitted backlog,
                 write the final checkpoint
      incumbent -> successor   {"ok":true,"op":"takeover","version":1,
                                "address":"unix:/run/a.sock",
                                "checkpoint":"a.ckpt.json",
                                "fd_follows":true}
      incumbent -> successor   [the listening fd, via SCM_RIGHTS]
      successor: resume from the checkpoint (cache re-seeded), adopt
                 the fd, start serving
      successor -> incumbent   {"op":"adopted","version":1}
      incumbent: exit 0 without touching the socket path
    v}

    [mode = "rebind"] is the TCP-friendly fallback: instead of passing
    the fd the incumbent closes its listener (unlinking a unix path)
    before replying, and the successor binds the address itself; clients
    ride over the gap on {!Client} retry/backoff.

    Failure matrix (see DESIGN §12): a second takeover request while one
    is in flight is refused with [handoff_in_progress]; a successor that
    dies mid-takeover (control connection EOF before [adopted]) makes
    the incumbent resume — re-accepting on its kept fd in [fd] mode,
    re-binding in [rebind] mode. *)

val version : int
(** Control-protocol version; both sides refuse a mismatch. *)

type mode = Fd_pass | Rebind

val mode_to_string : mode -> string
val mode_of_string : string -> mode option

(** {2 Wire format} (single-line JSON, shared by both sides) *)

val takeover_request : mode -> string
val adopted_line : string

val refusal : error:string -> detail:string -> string
(** An [{"ok":false,"op":"takeover","error":...}] line. *)

type reply = {
  r_address : string;  (** the data listener's address string *)
  r_checkpoint : string option;  (** checkpoint the successor resumes from *)
  r_fd_follows : bool;  (** an SCM_RIGHTS descriptor follows this line *)
}

val reply_line : reply -> string
val parse_reply : string -> (reply, string) result

val parse_request : string -> (mode, [ `Refuse of string * string ]) result
(** Decode a takeover request; [`Refuse (error, detail)] carries the
    structured refusal to send back ([version_mismatch], [bad_request]). *)

val parse_adopted : string -> bool
(** Is this line a well-formed [adopted] ack (matching version)? *)

(** {2 The successor side} *)

module Takeover : sig
  type outcome = {
    address : string;  (** parseable by [Listener.address_of_string] *)
    checkpoint_path : string option;
    fd : Unix.file_descr option;  (** [Some] iff the fd-pass path ran *)
  }

  type t

  val start : ?mode:mode -> ctl:string -> unit -> (t, string) result
  (** Connect to the incumbent's control socket and send the takeover
      request.  The connection is nonblocking: drive it with {!step}. *)

  val step : t -> [ `Pending | `Ready of outcome | `Failed of string ]
  (** One poll: [`Pending] until the reply (and fd, in [fd] mode) has
      arrived.  [`Ready] is returned on every call thereafter; the
      caller builds its listener, then calls {!confirm}. *)

  val confirm : t -> unit
  (** Send the [adopted] ack and close the control connection — the
      incumbent exits.  Call only after the successor listener is
      actually serving. *)

  val abort : t -> unit
  (** Close the control connection without acking — the incumbent
      resumes.  Safe at any point; used on successor-side failure. *)

  val run :
    ?mode:mode -> ?timeout:float -> ?sleep:(float -> unit) -> ctl:string -> unit ->
    (t * outcome, string) result
  (** Blocking convenience for the CLI: {!start} then {!step} until
      ready, sleeping [sleep] (default [Unix.sleepf 0.01]) between
      polls, giving up after [timeout] seconds (default 30). *)
end
