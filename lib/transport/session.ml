module Bench_io = Ftagg_runner.Bench_io
module Registry = Ftagg_obs.Registry

type auth_mode = Open | Tokens of Auth.table

type config = {
  auth : auth_mode;
  registry : Registry.t;
  handle : tenant:string option -> string -> string;
}

type state =
  | Hello_pending  (* nothing processed yet *)
  | Ready of string option  (* bound tenant; [None] = open mode, no hello *)

type t = { config : config; mutable state : state }

type reply = { response : string option; close : bool }

let create config = { config; state = Hello_pending }

let tenant t = match t.state with Ready (Some tenant) -> Some tenant | _ -> None
let authenticated t = match t.state with Ready _ -> true | Hello_pending -> false

let incr t name = Registry.incr t.config.registry name 1

let line json = Bench_io.to_string ~indent:false json

let err ~error fields =
  line
    (Bench_io.Obj
       ([ ("ok", Bench_io.Bool false); ("op", Bench_io.String "transport");
          ("error", Bench_io.String error) ]
       @ fields))

let hello_ok tenant =
  line
    (Bench_io.Obj
       [ ("ok", Bench_io.Bool true); ("op", Bench_io.String "hello");
         ("tenant", Bench_io.String tenant) ])

let refuse t ~error detail =
  incr t "transport_connections_refused_total";
  { response = Some (err ~error [ ("detail", Bench_io.String detail) ]); close = true }

let str_member key json =
  match Bench_io.member key json with Some (Bench_io.String s) -> Some s | _ -> None

(* The handshake line.  Only reached while [Hello_pending]. *)
let on_hello t json =
  match t.config.auth with
  | Tokens table -> (
    match str_member "token" json with
    | None -> refuse t ~error:"auth_required" "hello must carry a token on this listener"
    | Some token -> (
      match Auth.tenant_of_token table token with
      | None -> refuse t ~error:"bad_token" "unknown token"
      | Some tenant ->
        t.state <- Ready (Some tenant);
        { response = Some (hello_ok tenant); close = false }))
  | Open ->
    let tenant = Option.value (str_member "tenant" json) ~default:"default" in
    t.state <- Ready (Some tenant);
    { response = Some (hello_ok tenant); close = false }

let delegate t line_text =
  { response = Some (t.config.handle ~tenant:(tenant t) line_text); close = false }

let on_line t line_text =
  incr t "transport_requests_total";
  let parsed = Bench_io.of_string line_text in
  (match parsed with
  | Error _ -> incr t "transport_malformed_lines_total"
  | Ok _ -> ());
  let op = match parsed with Ok json -> str_member "op" json | Error _ -> None in
  match (t.state, op) with
  | Hello_pending, Some "hello" -> on_hello t (Result.get_ok parsed)
  | Hello_pending, _ -> (
    match t.config.auth with
    | Tokens _ ->
      (* First line must identify the client; anything else is refused
         before it can touch the scheduler. *)
      refuse t ~error:"auth_required" "first request must be {\"op\":\"hello\",\"token\":...}"
    | Open ->
      (* No handshake on an open listener: behave like the stdin loop. *)
      t.state <- Ready None;
      (match op with
      | Some "shutdown" ->
        { response = Some (err ~error:"connection_scoped"
              [ ("detail", Bench_io.String "shutdown over a socket closes only this connection") ]);
          close = true }
      | _ -> delegate t line_text))
  | Ready _, Some "hello" ->
    { response =
        Some (err ~error:"already_identified"
            [ ("detail", Bench_io.String "hello must be the first request") ]);
      close = false }
  | Ready _, Some "shutdown" ->
    (* A shared listener must not let one tenant stop the service for the
       others: shutdown degrades to a connection goodbye. *)
    { response = Some (err ~error:"connection_scoped"
          [ ("detail", Bench_io.String "shutdown over a socket closes only this connection") ]);
      close = true }
  | Ready _, _ -> delegate t line_text

let on_oversized t ~seen =
  incr t "transport_oversized_lines_total";
  { response = Some (err ~error:"line_too_long" [ ("bytes", Bench_io.Int seen) ]); close = false }
