module Bench_io = Ftagg_runner.Bench_io

type table = (string, string) Hashtbl.t

let of_json json =
  let obj =
    match Bench_io.member "tokens" json with
    | Some (Bench_io.Obj fields) -> Ok fields
    | Some _ -> Error "\"tokens\" must be an object"
    | None -> (
      match json with
      | Bench_io.Obj fields -> Ok fields
      | _ -> Error "auth file must be a JSON object of token -> tenant")
  in
  match obj with
  | Error _ as e -> e
  | Ok fields ->
    let tbl = Hashtbl.create (List.length fields) in
    let rec add = function
      | [] -> Ok tbl
      | (token, value) :: rest -> (
        if token = "" then Error "empty token"
        else if Hashtbl.mem tbl token then Printf.ksprintf Result.error "duplicate token %S" token
        else
          match value with
          | Bench_io.String tenant when tenant <> "" ->
            Hashtbl.add tbl token tenant;
            add rest
          | _ -> Printf.ksprintf Result.error "token %S: tenant must be a non-empty string" token)
    in
    add fields

let load ~path =
  match Bench_io.read_file ~path with
  | exception Sys_error e -> Error e
  | Error e -> Printf.ksprintf Result.error "%s: %s" path e
  | Ok json -> (
    match of_json json with
    | Error e -> Printf.ksprintf Result.error "%s: %s" path e
    | Ok t -> Ok t)

let tenant_of_token t token = Hashtbl.find_opt t token
let size t = Hashtbl.length t

let tenants t =
  List.sort_uniq compare (Hashtbl.fold (fun _ tenant acc -> tenant :: acc) t [])
