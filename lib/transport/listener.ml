module Server = Ftagg_service.Server
module Scheduler = Ftagg_service.Scheduler
module Obs = Ftagg_obs.Obs
module Registry = Ftagg_obs.Registry
module Bench_io = Ftagg_runner.Bench_io

type address = Unix_sock of string | Tcp of string * int

let address_of_string s =
  match String.index_opt s ':' with
  | None -> Error "expected unix:PATH or tcp:HOST:PORT"
  | Some i -> (
    let scheme = String.sub s 0 i in
    let rest = String.sub s (i + 1) (String.length s - i - 1) in
    match scheme with
    | "unix" -> if rest = "" then Error "unix: needs a path" else Ok (Unix_sock rest)
    | "tcp" -> (
      match String.rindex_opt rest ':' with
      | None -> Error "tcp: needs HOST:PORT"
      | Some j -> (
        let host = String.sub rest 0 j in
        let port_s = String.sub rest (j + 1) (String.length rest - j - 1) in
        match int_of_string_opt port_s with
        | Some port when port >= 0 && port < 65536 ->
          Ok (Tcp ((if host = "" then "127.0.0.1" else host), port))
        | _ -> Printf.ksprintf Result.error "bad port %S" port_s))
    | other -> Printf.ksprintf Result.error "unknown scheme %S (use unix: or tcp:)" other)

let address_to_string = function
  | Unix_sock path -> "unix:" ^ path
  | Tcp (host, port) -> Printf.sprintf "tcp:%s:%d" host port

type config = {
  address : address;
  auth : Session.auth_mode;
  max_line : int;
  idle_timeout : float;
  max_conns : int;
  now : unit -> float;
}

let config ?(auth = Session.Open) ?(max_line = 65536) ?(idle_timeout = 300.) ?(max_conns = 64)
    ?(now = Unix.gettimeofday) address =
  { address; auth; max_line; idle_timeout; max_conns; now }

type conn = {
  fd : Unix.file_descr;
  frame : Frame.t;
  session : Session.t;
  out : Buffer.t;
  mutable out_off : int;  (* bytes of [out] already written *)
  mutable last_active : float;
  mutable closing : bool;  (* close once [out] is flushed *)
}

type t = {
  cfg : config;
  server : Server.t;
  listen_fd : Unix.file_descr;
  registry : Registry.t;
  mutable conns : conn list;
  mutable stop_requested : bool;
  mutable drained : bool;
  bound_port : int option;
}

let bump t name = Registry.incr t.registry name 1
let add t name k = Registry.incr t.registry name k

let set_open_gauge t =
  Registry.set_gauge t.registry "transport_open_connections" (float_of_int (List.length t.conns))

let create cfg server =
  let mk_listen () =
    match cfg.address with
    | Unix_sock path ->
      if Sys.file_exists path then
        if (Unix.stat path).Unix.st_kind = Unix.S_SOCK then Unix.unlink path
        else Printf.ksprintf failwith "%s exists and is not a socket" path;
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.bind fd (Unix.ADDR_UNIX path);
      (fd, None)
    | Tcp (host, port) ->
      let addr =
        try Unix.inet_addr_of_string host
        with Failure _ -> (
          match Unix.gethostbyname host with
          | exception Not_found -> Printf.ksprintf failwith "unknown host %S" host
          | h -> h.Unix.h_addr_list.(0))
      in
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.setsockopt fd Unix.SO_REUSEADDR true;
      Unix.bind fd (Unix.ADDR_INET (addr, port));
      let bound =
        match Unix.getsockname fd with Unix.ADDR_INET (_, p) -> Some p | _ -> None
      in
      (fd, bound)
  in
  match mk_listen () with
  | exception Failure msg -> Error msg
  | exception Unix.Unix_error (e, fn, arg) ->
    Printf.ksprintf Result.error "%s: %s(%s): %s" (address_to_string cfg.address)
      (Unix.error_message e) fn arg
  | listen_fd, bound_port ->
    Unix.listen listen_fd 64;
    Unix.set_nonblock listen_fd;
    let registry = Obs.registry (Server.obs server) in
    Ok
      {
        cfg; server; listen_fd; registry; conns = []; stop_requested = false; drained = false;
        bound_port;
      }

let connections t = List.length t.conns
let port t = t.bound_port
let stop t = t.stop_requested <- true

(* ---- per-connection plumbing ---- *)

let enqueue conn line =
  Buffer.add_string conn.out line;
  Buffer.add_char conn.out '\n'

(* Flush as much of [conn.out] as the socket accepts; true = fully flushed. *)
let flush_conn t conn =
  let len = Buffer.length conn.out - conn.out_off in
  if len = 0 then true
  else
    match
      Unix.write_substring conn.fd (Buffer.contents conn.out) conn.out_off len
    with
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) -> false
    | exception Unix.Unix_error (_, _, _) ->
      (* Peer is gone (EPIPE, ECONNRESET, ...): drop what we could not say. *)
      conn.closing <- true;
      Buffer.clear conn.out;
      conn.out_off <- 0;
      true
    | n ->
      add t "transport_bytes_out_total" n;
      conn.out_off <- conn.out_off + n;
      if conn.out_off >= Buffer.length conn.out then begin
        Buffer.clear conn.out;
        conn.out_off <- 0;
        true
      end
      else false

let close_conn t conn =
  (try Unix.close conn.fd with Unix.Unix_error (_, _, _) -> ());
  t.conns <- List.filter (fun c -> c != conn) t.conns;
  set_open_gauge t

let apply_reply conn (reply : Session.reply) =
  (match reply.Session.response with Some r -> enqueue conn r | None -> ());
  if reply.Session.close then conn.closing <- true

let accepting t =
  (not t.stop_requested) && not t.drained

let accept_ready t =
  match Unix.accept t.listen_fd with
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) -> false
  | fd, _peer ->
    Unix.set_nonblock fd;
    let conn =
      {
        fd;
        frame = Frame.create ~max_line:t.cfg.max_line;
        session =
          Session.create
            {
              Session.auth = t.cfg.auth;
              registry = t.registry;
              handle = (fun ~tenant line -> Server.handle_as ?tenant t.server line);
            };
        out = Buffer.create 256;
        out_off = 0;
        last_active = t.cfg.now ();
        closing = false;
      }
    in
    if List.length t.conns >= t.cfg.max_conns then begin
      bump t "transport_connections_refused_total";
      enqueue conn
        (Bench_io.to_string ~indent:false
           (Bench_io.Obj
              [
                ("ok", Bench_io.Bool false); ("op", Bench_io.String "transport");
                ("error", Bench_io.String "server_busy");
                ("detail", Bench_io.String "connection limit reached");
              ]));
      conn.closing <- true;
      ignore (flush_conn t conn);
      (try Unix.close conn.fd with Unix.Unix_error (_, _, _) -> ())
    end
    else begin
      bump t "transport_connections_accepted_total";
      t.conns <- conn :: t.conns;
      set_open_gauge t
    end;
    true

let read_buf = Bytes.create 4096

let read_ready t conn =
  match Unix.read conn.fd read_buf 0 (Bytes.length read_buf) with
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) -> ()
  | exception Unix.Unix_error (_, _, _) -> close_conn t conn
  | 0 ->
    (* EOF: a half-written line dies with its connection — the framer is
       per-connection state, so the next client starts clean. *)
    close_conn t conn
  | n ->
    add t "transport_bytes_in_total" n;
    conn.last_active <- t.cfg.now ();
    let items = Frame.feed conn.frame read_buf ~off:0 ~len:n in
    List.iter
      (fun item ->
        if not conn.closing then
          match item with
          | Frame.Line l when String.trim l = "" -> ()
          | Frame.Line l -> apply_reply conn (Session.on_line conn.session l)
          | Frame.Oversized seen -> apply_reply conn (Session.on_oversized conn.session ~seen))
      items;
    ignore (flush_conn t conn)

let check_timeouts t =
  if t.cfg.idle_timeout > 0. then begin
    let now = t.cfg.now () in
    let expired =
      List.filter
        (fun c -> (not c.closing) && now -. c.last_active > t.cfg.idle_timeout)
        t.conns
    in
    List.iter
      (fun conn ->
        bump t "transport_idle_timeouts_total";
        enqueue conn
          (Bench_io.to_string ~indent:false
             (Bench_io.Obj
                [
                  ("ok", Bench_io.Bool false); ("op", Bench_io.String "transport");
                  ("error", Bench_io.String "idle_timeout");
                ]));
        conn.closing <- true;
        ignore (flush_conn t conn))
      expired;
    List.length expired
  end
  else 0

let reap_closed t =
  List.iter
    (fun conn -> if conn.closing && Buffer.length conn.out - conn.out_off = 0 then close_conn t conn)
    t.conns

let poll ?(timeout = 0.) t =
  let read_fds =
    (if accepting t then [ t.listen_fd ] else [])
    @ List.filter_map (fun c -> if c.closing then None else Some c.fd) t.conns
  in
  let write_fds =
    List.filter_map (fun c -> if Buffer.length c.out - c.out_off > 0 then Some c.fd else None) t.conns
  in
  match Unix.select read_fds write_fds [] timeout with
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> 0
  | readable, writable, _ ->
    let events = ref 0 in
    if List.mem t.listen_fd readable then begin
      let more = ref true in
      while !more do
        if accept_ready t then incr events else more := false
      done
    end;
    List.iter
      (fun conn ->
        if List.mem conn.fd readable then begin
          events := !events + 1;
          read_ready t conn
        end)
      t.conns;
    List.iter
      (fun conn ->
        if List.mem conn.fd writable then begin
          events := !events + 1;
          ignore (flush_conn t conn)
        end)
      t.conns;
    events := !events + check_timeouts t;
    reap_closed t;
    !events

(* ---- shutdown ---- *)

let drain t =
  if not t.drained then begin
    t.drained <- true;
    (* Best-effort flush of everything already queued, then hang up. *)
    List.iter
      (fun conn ->
        let rec flush_retries k =
          if k > 0 && not (flush_conn t conn) then begin
            ignore (Unix.select [] [ conn.fd ] [] 0.05);
            flush_retries (k - 1)
          end
        in
        flush_retries 20)
      t.conns;
    List.iter (fun conn -> close_conn t conn) t.conns;
    (try Unix.close t.listen_fd with Unix.Unix_error (_, _, _) -> ());
    (match t.cfg.address with
    | Unix_sock path -> ( try Unix.unlink path with Unix.Unix_error (_, _, _) -> ())
    | Tcp _ -> ());
    (* Finish the admitted backlog, then the final checkpoint: SIGTERM is
       a graceful drain, not an abort. *)
    ignore (Scheduler.drain (Server.scheduler t.server));
    Server.finish t.server
  end

let run t =
  let previous_term = Sys.signal Sys.sigterm (Sys.Signal_handle (fun _ -> stop t)) in
  let previous_int = Sys.signal Sys.sigint (Sys.Signal_handle (fun _ -> stop t)) in
  let previous_pipe = Sys.signal Sys.sigpipe Sys.Signal_ignore in
  let restore () =
    Sys.set_signal Sys.sigterm previous_term;
    Sys.set_signal Sys.sigint previous_int;
    Sys.set_signal Sys.sigpipe previous_pipe
  in
  Fun.protect ~finally:restore (fun () ->
      while not t.stop_requested do
        ignore (poll ~timeout:0.2 t)
      done;
      drain t;
      0)
