module Server = Ftagg_service.Server
module Scheduler = Ftagg_service.Scheduler
module Obs = Ftagg_obs.Obs
module Span = Ftagg_obs.Span
module Registry = Ftagg_obs.Registry
module Bench_io = Ftagg_runner.Bench_io

type address = Unix_sock of string | Tcp of string * int

let address_of_string s =
  match String.index_opt s ':' with
  | None -> Error "expected unix:PATH or tcp:HOST:PORT"
  | Some i -> (
    let scheme = String.sub s 0 i in
    let rest = String.sub s (i + 1) (String.length s - i - 1) in
    match scheme with
    | "unix" -> if rest = "" then Error "unix: needs a path" else Ok (Unix_sock rest)
    | "tcp" -> (
      match String.rindex_opt rest ':' with
      | None -> Error "tcp: needs HOST:PORT"
      | Some j -> (
        let host = String.sub rest 0 j in
        let port_s = String.sub rest (j + 1) (String.length rest - j - 1) in
        match int_of_string_opt port_s with
        | Some port when port >= 0 && port < 65536 ->
          Ok (Tcp ((if host = "" then "127.0.0.1" else host), port))
        | _ -> Printf.ksprintf Result.error "bad port %S" port_s))
    | other -> Printf.ksprintf Result.error "unknown scheme %S (use unix: or tcp:)" other)

let address_to_string = function
  | Unix_sock path -> "unix:" ^ path
  | Tcp (host, port) -> Printf.sprintf "tcp:%s:%d" host port

let default_ctl_path = function
  | Unix_sock path -> Some (path ^ ".ctl")
  | Tcp _ -> None

type config = {
  address : address;
  auth : Session.auth_mode;
  max_line : int;
  idle_timeout : float;
  max_conns : int;
  now : unit -> float;
  ctl : string option;
}

let config ?(auth = Session.Open) ?(max_line = 65536) ?(idle_timeout = 300.) ?(max_conns = 64)
    ?(now = Unix.gettimeofday) ?ctl address =
  let ctl = match ctl with Some _ as c -> c | None -> default_ctl_path address in
  { address; auth; max_line; idle_timeout; max_conns; now; ctl }

type conn = {
  fd : Unix.file_descr;
  frame : Frame.t;
  session : Session.t;
  out : Buffer.t;
  mutable out_off : int;  (* bytes of [out] already written *)
  mutable last_active : float;
  mutable closing : bool;  (* close once [out] is flushed *)
}

(* A control-socket connection: no session/auth (the ctl socket is a
   local, root-of-trust channel — filesystem permissions are the auth),
   just line framing for the takeover protocol. *)
type ctl_conn = { cfd : Unix.file_descr; cframe : Frame.t }

type handoff_phase =
  | H_idle
  | H_awaiting_ack of { hconn : ctl_conn; hmode : Handoff.mode; h_started : float }

type t = {
  cfg : config;
  server : Server.t;
  mutable listen_fd : Unix.file_descr;
  mutable listen_open : bool;  (* false once rebind-mode handoff closed it *)
  ctl_fd : Unix.file_descr option;
  mutable ctl_conns : ctl_conn list;
  mutable handoff : handoff_phase;
  mutable accept_paused : bool;  (* armed or handing off: connects queue *)
  mutable handoff_armed : bool;  (* set from the SIGUSR2 handler *)
  mutable handed_off : bool;  (* a successor adopted: exit hands-off *)
  registry : Registry.t;
  mutable conns : conn list;
  mutable stop_requested : bool;
  mutable drained : bool;
  bound_port : int option;
}

let bump t name = Registry.incr t.registry name 1
let add t name k = Registry.incr t.registry name k

let set_open_gauge t =
  Registry.set_gauge t.registry "transport_open_connections" (float_of_int (List.length t.conns))

let bind_listener address =
  match address with
  | Unix_sock path ->
    if Sys.file_exists path then
      if (Unix.stat path).Unix.st_kind = Unix.S_SOCK then Unix.unlink path
      else Printf.ksprintf failwith "%s exists and is not a socket" path;
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    Unix.bind fd (Unix.ADDR_UNIX path);
    (fd, None)
  | Tcp (host, port) ->
    let addr =
      try Unix.inet_addr_of_string host
      with Failure _ -> (
        match Unix.gethostbyname host with
        | exception Not_found -> Printf.ksprintf failwith "unknown host %S" host
        | h -> h.Unix.h_addr_list.(0))
    in
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    Unix.setsockopt fd Unix.SO_REUSEADDR true;
    Unix.bind fd (Unix.ADDR_INET (addr, port));
    let bound = match Unix.getsockname fd with Unix.ADDR_INET (_, p) -> Some p | _ -> None in
    (fd, bound)

let create ?adopted_fd cfg server =
  (* A client that disconnects mid-write must cost EPIPE on one
     connection, never SIGPIPE on the process — for [run] and for anyone
     driving [poll] by hand, so it is set here, not just in [run]. *)
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let mk_listen () =
    match adopted_fd with
    | Some fd ->
      (* Handoff adoption: the descriptor is already bound and listening
         (it shares the incumbent's open socket, accept backlog
         included), so binding — let alone unlinking the path — would be
         wrong.  Nonblocking status rides along on the shared open file
         description, but set it anyway for self-containedness. *)
      let bound =
        match cfg.address with
        | Tcp _ -> (
          match Unix.getsockname fd with Unix.ADDR_INET (_, p) -> Some p | _ -> None)
        | Unix_sock _ -> None
      in
      (fd, bound)
    | None ->
      let fd, bound = bind_listener cfg.address in
      Unix.listen fd 64;
      (fd, bound)
  in
  let mk_ctl () =
    match cfg.ctl with
    | None -> None
    | Some path ->
      if Sys.file_exists path then
        if (Unix.stat path).Unix.st_kind = Unix.S_SOCK then Unix.unlink path
        else Printf.ksprintf failwith "%s exists and is not a socket" path;
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.bind fd (Unix.ADDR_UNIX path);
      Unix.listen fd 8;
      Unix.set_nonblock fd;
      Some fd
  in
  match
    let listen_fd, bound_port = mk_listen () in
    Unix.set_nonblock listen_fd;
    let ctl_fd = mk_ctl () in
    (listen_fd, bound_port, ctl_fd)
  with
  | exception Failure msg -> Error msg
  | exception Unix.Unix_error (e, fn, arg) ->
    Printf.ksprintf Result.error "%s: %s(%s): %s" (address_to_string cfg.address)
      (Unix.error_message e) fn arg
  | listen_fd, bound_port, ctl_fd ->
    let registry = Obs.registry (Server.obs server) in
    Ok
      {
        cfg; server; listen_fd; listen_open = true; ctl_fd; ctl_conns = []; handoff = H_idle;
        accept_paused = false; handoff_armed = false; handed_off = false; registry; conns = [];
        stop_requested = false; drained = false; bound_port;
      }

let connections t = List.length t.conns
let port t = t.bound_port
let stop t = t.stop_requested <- true
let handed_off t = t.handed_off
let request_handoff t = t.handoff_armed <- true
let ctl_path t = t.cfg.ctl

let handoff_in_progress t =
  match t.handoff with H_idle -> false | H_awaiting_ack _ -> true

(* The address a successor should serve: the configured one, with an
   ephemeral TCP port resolved to what the kernel actually assigned. *)
let effective_address t =
  match (t.cfg.address, t.bound_port) with
  | Tcp (host, 0), Some p -> Tcp (host, p)
  | a, _ -> a

(* ---- per-connection plumbing ---- *)

let enqueue conn line =
  Buffer.add_string conn.out line;
  Buffer.add_char conn.out '\n'

(* Flush as much of [conn.out] as the socket accepts; true = fully flushed. *)
let flush_conn t conn =
  let len = Buffer.length conn.out - conn.out_off in
  if len = 0 then true
  else
    match
      Unix.write_substring conn.fd (Buffer.contents conn.out) conn.out_off len
    with
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) -> false
    | exception Unix.Unix_error (_, _, _) ->
      (* Peer is gone (EPIPE, ECONNRESET, ...): drop what we could not say. *)
      conn.closing <- true;
      Buffer.clear conn.out;
      conn.out_off <- 0;
      true
    | n ->
      add t "transport_bytes_out_total" n;
      conn.out_off <- conn.out_off + n;
      if conn.out_off >= Buffer.length conn.out then begin
        Buffer.clear conn.out;
        conn.out_off <- 0;
        true
      end
      else false

let close_conn t conn =
  (try Unix.close conn.fd with Unix.Unix_error (_, _, _) -> ());
  t.conns <- List.filter (fun c -> c != conn) t.conns;
  set_open_gauge t

let apply_reply conn (reply : Session.reply) =
  (match reply.Session.response with Some r -> enqueue conn r | None -> ());
  if reply.Session.close then conn.closing <- true

let accepting t =
  (not t.stop_requested) && (not t.drained) && (not t.accept_paused) && t.listen_open

let accept_ready t =
  match Unix.accept t.listen_fd with
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) -> false
  | fd, _peer ->
    Unix.set_nonblock fd;
    let conn =
      {
        fd;
        frame = Frame.create ~max_line:t.cfg.max_line;
        session =
          Session.create
            {
              Session.auth = t.cfg.auth;
              registry = t.registry;
              handle = (fun ~tenant line -> Server.handle_as ?tenant t.server line);
            };
        out = Buffer.create 256;
        out_off = 0;
        last_active = t.cfg.now ();
        closing = false;
      }
    in
    if List.length t.conns >= t.cfg.max_conns then begin
      bump t "transport_connections_refused_total";
      enqueue conn
        (Bench_io.to_string ~indent:false
           (Bench_io.Obj
              [
                ("ok", Bench_io.Bool false); ("op", Bench_io.String "transport");
                ("error", Bench_io.String "server_busy");
                ("detail", Bench_io.String "connection limit reached");
              ]));
      conn.closing <- true;
      ignore (flush_conn t conn);
      (try Unix.close conn.fd with Unix.Unix_error (_, _, _) -> ())
    end
    else begin
      bump t "transport_connections_accepted_total";
      t.conns <- conn :: t.conns;
      set_open_gauge t
    end;
    true

let read_buf = Bytes.create 4096

let read_ready t conn =
  match Unix.read conn.fd read_buf 0 (Bytes.length read_buf) with
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) -> ()
  | exception Unix.Unix_error (_, _, _) -> close_conn t conn
  | 0 ->
    (* EOF: a half-written line dies with its connection — the framer is
       per-connection state, so the next client starts clean. *)
    close_conn t conn
  | n ->
    add t "transport_bytes_in_total" n;
    conn.last_active <- t.cfg.now ();
    let items = Frame.feed conn.frame read_buf ~off:0 ~len:n in
    List.iter
      (fun item ->
        if not conn.closing then
          match item with
          | Frame.Line l when String.trim l = "" -> ()
          | Frame.Line l -> apply_reply conn (Session.on_line conn.session l)
          | Frame.Oversized seen -> apply_reply conn (Session.on_oversized conn.session ~seen))
      items;
    ignore (flush_conn t conn)

let check_timeouts t =
  if t.cfg.idle_timeout > 0. then begin
    let now = t.cfg.now () in
    let expired =
      List.filter
        (fun c -> (not c.closing) && now -. c.last_active > t.cfg.idle_timeout)
        t.conns
    in
    List.iter
      (fun conn ->
        bump t "transport_idle_timeouts_total";
        enqueue conn
          (Bench_io.to_string ~indent:false
             (Bench_io.Obj
                [
                  ("ok", Bench_io.Bool false); ("op", Bench_io.String "transport");
                  ("error", Bench_io.String "idle_timeout");
                ]));
        conn.closing <- true;
        ignore (flush_conn t conn))
      expired;
    List.length expired
  end
  else 0

let reap_closed t =
  List.iter
    (fun conn -> if conn.closing && Buffer.length conn.out - conn.out_off = 0 then close_conn t conn)
    t.conns

(* ---- the handoff path ---- *)

let ev t fields = Obs.event (Server.obs t.server) ~kind:"handoff" fields

(* Small bounded write for control-socket lines: the peer is a local
   cooperating process, so a couple of short retries cover any transient
   EAGAIN without risking an unbounded spin. *)
let write_all fd s =
  let len = String.length s in
  let rec go off tries =
    if off >= len then true
    else if tries <= 0 then false
    else
      match Unix.write_substring fd s off (len - off) with
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) ->
        ignore (Unix.select [] [ fd ] [] 0.05);
        go off (tries - 1)
      | exception Unix.Unix_error (_, _, _) -> false
      | n -> go (off + n) tries
  in
  go 0 50

let ctl_send cconn line = ignore (write_all cconn.cfd (line ^ "\n"))

let close_ctl_conn t cconn =
  (try Unix.close cconn.cfd with Unix.Unix_error (_, _, _) -> ());
  t.ctl_conns <- List.filter (fun c -> c != cconn) t.ctl_conns

(* Finish in-flight work and write the final checkpoint, under an
   observable span.  Both the SIGUSR2 arm and an incoming takeover run
   this; it is idempotent (draining an empty queue is free). *)
let drain_for_handoff t =
  let obs = Server.obs t.server in
  Span.with_ambient (Obs.spans obs) (fun () ->
      Span.enter ~node:(-1) "handoff/drain";
      let finished = List.length (Scheduler.drain (Server.scheduler t.server)) in
      Server.finish t.server;
      Span.exit_named ~node:(-1) "handoff/drain";
      finished)

(* SIGUSR2 arrived (or [request_handoff] was called): stop accepting —
   connects queue in the kernel backlog — finish the backlog and write
   the checkpoint, but keep serving open connections while waiting for a
   successor.  Distinct from SIGTERM, which drains {e and exits}. *)
let arm t =
  if (not t.accept_paused) && not t.drained then begin
    t.accept_paused <- true;
    bump t "transport_handoff_arms_total";
    let finished = drain_for_handoff t in
    ev t
      [
        ("phase", Bench_io.String "armed");
        ("finished", Bench_io.Int finished);
        ("connections", Bench_io.Int (List.length t.conns));
      ]
  end

let goodbye_line =
  Bench_io.to_string ~indent:false
    (Bench_io.Obj
       [
         ("ok", Bench_io.Bool false); ("op", Bench_io.String "transport");
         ("error", Bench_io.String "handing_off");
         ("detail", Bench_io.String "server is handing off; reconnect");
       ])

let say_goodbye t conn =
  enqueue conn goodbye_line;
  conn.closing <- true;
  let rec flush_retries k =
    if k > 0 && not (flush_conn t conn) then begin
      ignore (Unix.select [] [ conn.fd ] [] 0.05);
      flush_retries (k - 1)
    end
  in
  flush_retries 20;
  close_conn t conn

let begin_handoff t cconn mode =
  let started = t.cfg.now () in
  ev t [ ("phase", Bench_io.String "begin");
         ("mode", Bench_io.String (Handoff.mode_to_string mode)) ];
  t.accept_paused <- true;
  (* Connected clients get a structured goodbye, not a silent reset:
     their retry loop reconnects to the successor. *)
  List.iter (fun conn -> say_goodbye t conn) t.conns;
  let finished = drain_for_handoff t in
  ev t [ ("phase", Bench_io.String "drained"); ("finished", Bench_io.Int finished) ];
  let fd_follows = mode = Handoff.Fd_pass && Fd_passing.available && t.listen_open in
  (match mode with
  | Handoff.Fd_pass -> ()
  | Handoff.Rebind ->
    (* Release the address before the reply so the successor can bind
       the moment it reads it.  Clients ride the gap on retry/backoff. *)
    if t.listen_open then begin
      (try Unix.close t.listen_fd with Unix.Unix_error (_, _, _) -> ());
      t.listen_open <- false;
      match t.cfg.address with
      | Unix_sock path -> ( try Unix.unlink path with Unix.Unix_error (_, _, _) -> ())
      | Tcp _ -> ()
    end);
  let reply =
    {
      Handoff.r_address = address_to_string (effective_address t);
      r_checkpoint = Server.checkpoint_path t.server;
      r_fd_follows = fd_follows;
    }
  in
  ctl_send cconn (Handoff.reply_line reply);
  let sent =
    if not fd_follows then true
    else
      match Fd_passing.send_fd ~sock:cconn.cfd ~fd:t.listen_fd with
      | Ok () -> true
      | Error e ->
        ev t [ ("phase", Bench_io.String "fd_send_failed"); ("error", Bench_io.String e) ];
        false
  in
  if sent then t.handoff <- H_awaiting_ack { hconn = cconn; hmode = mode; h_started = started }
  else begin
    (* Could not hand the fd over: close the control connection (the
       successor sees EOF and gives up) and resume serving ourselves. *)
    bump t "transport_handoff_aborts_total";
    close_ctl_conn t cconn;
    t.accept_paused <- false
  end

let complete_handoff t hconn hmode h_started =
  t.handoff <- H_idle;
  t.handed_off <- true;
  t.stop_requested <- true;
  bump t "transport_handoffs_total";
  Registry.observe t.registry "transport_handoff_seconds" (t.cfg.now () -. h_started);
  ev t
    [
      ("phase", Bench_io.String "adopted");
      ("mode", Bench_io.String (Handoff.mode_to_string hmode));
    ];
  close_ctl_conn t hconn

(* The successor died mid-takeover (control EOF before [adopted]): take
   the listener back and resume.  In fd mode our descriptor never left;
   in rebind mode the address was released, so re-bind it. *)
let abort_handoff t hmode =
  t.handoff <- H_idle;
  bump t "transport_handoff_aborts_total";
  let resumed =
    match hmode with
    | Handoff.Fd_pass -> true
    | Handoff.Rebind -> (
      match bind_listener (effective_address t) with
      | exception Failure _ | exception Unix.Unix_error (_, _, _) -> false
      | fd, _ ->
        Unix.listen fd 64;
        Unix.set_nonblock fd;
        t.listen_fd <- fd;
        t.listen_open <- true;
        true)
  in
  if resumed then t.accept_paused <- false;
  ev t
    [
      ("phase", Bench_io.String "aborted");
      ("mode", Bench_io.String (Handoff.mode_to_string hmode));
      ("resumed", Bench_io.Bool resumed);
    ]

let refuse t cconn ~error ~detail =
  bump t "transport_handoff_refused_total";
  ctl_send cconn (Handoff.refusal ~error ~detail);
  close_ctl_conn t cconn

let handle_ctl_line t cconn line =
  if String.trim line = "" then ()
  else
    match t.handoff with
    | H_awaiting_ack { hconn; hmode; h_started } when hconn == cconn ->
      if Handoff.parse_adopted line then complete_handoff t hconn hmode h_started
    | H_awaiting_ack _ ->
      refuse t cconn ~error:"handoff_in_progress"
        ~detail:"another successor is mid-takeover; only one at a time"
    | H_idle -> (
      bump t "transport_handoff_requests_total";
      if t.stop_requested || t.drained then
        refuse t cconn ~error:"shutting_down" ~detail:"server is already stopping"
      else
        match Handoff.parse_request line with
        | Error (`Refuse (error, detail)) -> refuse t cconn ~error ~detail
        | Ok mode -> begin_handoff t cconn mode)

let ctl_accept_ready t ctl_fd =
  match Unix.accept ctl_fd with
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) -> false
  | fd, _peer ->
    Unix.set_nonblock fd;
    t.ctl_conns <- { cfd = fd; cframe = Frame.create ~max_line:4096 } :: t.ctl_conns;
    true

let ctl_read_ready t cconn =
  match Unix.read cconn.cfd read_buf 0 (Bytes.length read_buf) with
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) -> ()
  | exception Unix.Unix_error (_, _, _) | 0 ->
    (match t.handoff with
    | H_awaiting_ack { hconn; hmode; _ } when hconn == cconn ->
      close_ctl_conn t cconn;
      abort_handoff t hmode
    | _ -> close_ctl_conn t cconn)
  | n ->
    let items = Frame.feed cconn.cframe read_buf ~off:0 ~len:n in
    List.iter
      (fun item ->
        match item with
        | Frame.Line l -> handle_ctl_line t cconn l
        | Frame.Oversized _ ->
          refuse t cconn ~error:"bad_request" ~detail:"oversized control line")
      items

let poll ?(timeout = 0.) t =
  if t.handoff_armed then begin
    t.handoff_armed <- false;
    arm t
  end;
  let ctl_listen = match t.ctl_fd with Some fd -> [ fd ] | None -> [] in
  let read_fds =
    (if accepting t then [ t.listen_fd ] else [])
    @ ctl_listen
    @ List.map (fun c -> c.cfd) t.ctl_conns
    @ List.filter_map (fun c -> if c.closing then None else Some c.fd) t.conns
  in
  let write_fds =
    List.filter_map (fun c -> if Buffer.length c.out - c.out_off > 0 then Some c.fd else None) t.conns
  in
  match Unix.select read_fds write_fds [] timeout with
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> 0
  | readable, writable, _ ->
    let events = ref 0 in
    if t.listen_open && accepting t && List.mem t.listen_fd readable then begin
      let more = ref true in
      while !more do
        if accept_ready t then incr events else more := false
      done
    end;
    (match t.ctl_fd with
    | Some fd when List.mem fd readable ->
      let more = ref true in
      while !more do
        if ctl_accept_ready t fd then incr events else more := false
      done
    | _ -> ());
    List.iter
      (fun cconn ->
        if List.mem cconn.cfd readable then begin
          incr events;
          ctl_read_ready t cconn
        end)
      t.ctl_conns;
    List.iter
      (fun conn ->
        if List.mem conn.fd readable then begin
          events := !events + 1;
          read_ready t conn
        end)
      t.conns;
    List.iter
      (fun conn ->
        if List.mem conn.fd writable then begin
          events := !events + 1;
          ignore (flush_conn t conn)
        end)
      t.conns;
    events := !events + check_timeouts t;
    reap_closed t;
    !events

(* ---- shutdown ---- *)

let close_ctl t =
  List.iter (fun c -> try Unix.close c.cfd with Unix.Unix_error (_, _, _) -> ()) t.ctl_conns;
  t.ctl_conns <- [];
  match t.ctl_fd with
  | Some fd -> ( try Unix.close fd with Unix.Unix_error (_, _, _) -> ())
  | None -> ()

let drain t =
  if not t.drained then begin
    t.drained <- true;
    if t.handed_off then begin
      (* The successor owns everything now — the socket path (it may be
         serving on our very descriptor), the control-socket path (it has
         rebound it), and the checkpoint file (it resumed from it and
         will write its own).  Close our descriptors and get out of the
         way: no unlinks, no final checkpoint. *)
      List.iter (fun conn -> close_conn t conn) t.conns;
      if t.listen_open then begin
        (try Unix.close t.listen_fd with Unix.Unix_error (_, _, _) -> ());
        t.listen_open <- false
      end;
      close_ctl t
    end
    else begin
      (* Best-effort flush of everything already queued, then hang up. *)
      List.iter
        (fun conn ->
          let rec flush_retries k =
            if k > 0 && not (flush_conn t conn) then begin
              ignore (Unix.select [] [ conn.fd ] [] 0.05);
              flush_retries (k - 1)
            end
          in
          flush_retries 20)
        t.conns;
      List.iter (fun conn -> close_conn t conn) t.conns;
      if t.listen_open then begin
        (try Unix.close t.listen_fd with Unix.Unix_error (_, _, _) -> ());
        t.listen_open <- false;
        match t.cfg.address with
        | Unix_sock path -> ( try Unix.unlink path with Unix.Unix_error (_, _, _) -> ())
        | Tcp _ -> ()
      end;
      close_ctl t;
      (match t.cfg.ctl with
      | Some path -> ( try Unix.unlink path with Unix.Unix_error (_, _, _) -> ())
      | None -> ());
      (* Finish the admitted backlog, then the final checkpoint: SIGTERM is
         a graceful drain, not an abort. *)
      ignore (Scheduler.drain (Server.scheduler t.server));
      Server.finish t.server
    end
  end

let run t =
  let previous_term = Sys.signal Sys.sigterm (Sys.Signal_handle (fun _ -> stop t)) in
  let previous_int = Sys.signal Sys.sigint (Sys.Signal_handle (fun _ -> stop t)) in
  let previous_usr2 = Sys.signal Sys.sigusr2 (Sys.Signal_handle (fun _ -> request_handoff t)) in
  let previous_pipe = Sys.signal Sys.sigpipe Sys.Signal_ignore in
  let restore () =
    Sys.set_signal Sys.sigterm previous_term;
    Sys.set_signal Sys.sigint previous_int;
    Sys.set_signal Sys.sigusr2 previous_usr2;
    Sys.set_signal Sys.sigpipe previous_pipe
  in
  Fun.protect ~finally:restore (fun () ->
      while not t.stop_requested do
        ignore (poll ~timeout:0.2 t)
      done;
      drain t;
      0)
