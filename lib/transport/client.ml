module Bench_io = Ftagg_runner.Bench_io
module Prng = Ftagg_util.Prng

let connect_fd address =
  let sock () =
    match (address : Listener.address) with
    | Listener.Unix_sock path ->
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.connect fd (Unix.ADDR_UNIX path);
      fd
    | Listener.Tcp (host, port) ->
      let addr =
        try Unix.inet_addr_of_string host
        with Failure _ -> (
          match Unix.gethostbyname host with
          | exception Not_found -> Printf.ksprintf failwith "unknown host %S" host
          | h -> h.Unix.h_addr_list.(0))
      in
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.connect fd (Unix.ADDR_INET (addr, port));
      fd
  in
  match sock () with
  | exception Failure msg -> Error msg
  | exception Unix.Unix_error (e, _, _) ->
    Printf.ksprintf Result.error "%s: %s" (Listener.address_to_string address)
      (Unix.error_message e)
  | fd -> Ok fd

(* A health check is one connect and an immediate close: the listener
   accepts before any protocol exchange, so reachability alone answers
   "is something serving this address?" without burning a request. *)
let probe address =
  match connect_fd address with
  | Error _ -> false
  | Ok fd ->
    (try Unix.close fd with Unix.Unix_error _ -> ());
    true

(* ------------------------------------------------------------------ *)
(* The plain blocking client (one connection, no retry)                *)
(* ------------------------------------------------------------------ *)

type t = { fd : Unix.file_descr; ic : in_channel; oc : out_channel }

let connect address =
  Result.map
    (fun fd -> { fd; ic = Unix.in_channel_of_descr fd; oc = Unix.out_channel_of_descr fd })
    (connect_fd address)

let request t line =
  match
    output_string t.oc line;
    output_char t.oc '\n';
    flush t.oc;
    input_line t.ic
  with
  | exception End_of_file -> Error "connection closed by server"
  | exception Sys_error e -> Error e
  | response -> Ok response

let hello_line ?token ?tenant () =
  let fields =
    [ ("op", Bench_io.String "hello") ]
    @ (match token with Some tok -> [ ("token", Bench_io.String tok) ] | None -> [])
    @ match tenant with Some ten -> [ ("tenant", Bench_io.String ten) ] | None -> []
  in
  Bench_io.to_string ~indent:false (Bench_io.Obj fields)

let hello ?token ?tenant t = request t (hello_line ?token ?tenant ())

let close t =
  try Unix.close t.fd with Unix.Unix_error (_, _, _) -> ()

(* ------------------------------------------------------------------ *)
(* Retry policy                                                        *)
(* ------------------------------------------------------------------ *)

type retry = {
  attempts : int;
  backoff_ms : int;
  max_backoff_ms : int;
  timeout_ms : int;
  seed : int;
}

let retry ?(attempts = 5) ?(backoff_ms = 50) ?(max_backoff_ms = 2000) ?(timeout_ms = 5000)
    ?(seed = 1) () =
  {
    attempts = max 1 attempts;
    backoff_ms = max 1 backoff_ms;
    max_backoff_ms = max 1 max_backoff_ms;
    timeout_ms = max 1 timeout_ms;
    seed;
  }

(* Delay before retry [k+1] (k = 0-based index of the failed attempt):
   exponential with full deterministic jitter in [d/2, d).  Pure in the
   PRNG so the whole schedule is reproducible from [seed]. *)
let backoff_delay_ms r prng k =
  let expo = float_of_int r.backoff_ms *. (2. ** float_of_int k) in
  let capped = Float.min (float_of_int r.max_backoff_ms) expo in
  capped *. (0.5 +. Prng.float prng 0.5)

let backoff_schedule r =
  let prng = Prng.create r.seed in
  List.init (max 0 (r.attempts - 1)) (fun k -> backoff_delay_ms r prng k)

(* ------------------------------------------------------------------ *)
(* The resilient session                                               *)
(* ------------------------------------------------------------------ *)

type failure = Refused of string | Exhausted of string

let failure_message = function
  | Refused line -> Printf.sprintf "refused: %s" line
  | Exhausted msg -> Printf.sprintf "retries exhausted: %s" msg

type sconn = {
  sfd : Unix.file_descr;
  sframe : Frame.t;
  mutable s_extra : string list;  (* lines read past the one we awaited *)
}

type session = {
  s_address : Listener.address;
  s_token : string option;
  s_tenant : string option;
  s_retry : retry;
  s_prng : Prng.t;
  s_pump : unit -> unit;
  s_sleep : float -> unit;
  s_now : unit -> float;
  mutable s_conn : sconn option;
  mutable s_connected_once : bool;
  mutable s_reconnects : int;
  mutable s_attempts : int;
  mutable s_hello_response : string option;  (* last successful handshake *)
}

let session ?token ?tenant ?(retry = retry ()) ?(pump = fun () -> ()) ?(sleep = Unix.sleepf)
    ?(now = Unix.gettimeofday) address =
  {
    s_address = address;
    s_token = token;
    s_tenant = tenant;
    s_retry = retry;
    s_prng = Prng.create retry.seed;
    s_pump = pump;
    s_sleep = sleep;
    s_now = now;
    s_conn = None;
    s_connected_once = false;
    s_reconnects = 0;
    s_attempts = 0;
    s_hello_response = None;
  }

let reconnects s = s.s_reconnects
let attempts_used s = s.s_attempts

let drop_conn s =
  (match s.s_conn with
  | Some sc -> ( try Unix.close sc.sfd with Unix.Unix_error (_, _, _) -> ())
  | None -> ());
  s.s_conn <- None

let sclose = drop_conn

(* A connection-fate notice the server pushes on its own — the goodbye
   before a handoff, an idle timeout, the connection-limit refusal — is
   not a response to our request.  Treat it like a hangup: reconnect and
   resubmit, which the content-digest cache makes idempotent.  Every
   [Session] error line carries [op:"transport"], so the op alone does
   not identify a notice: [bad_token] or [line_too_long] are genuine
   (permanent) answers to what we sent, and only the fate errors below
   are transient. *)
let is_transport_notice line =
  match Bench_io.of_string line with
  | Error _ -> false
  | Ok json ->
    Bench_io.member "ok" json = Some (Bench_io.Bool false)
    && Bench_io.member "op" json = Some (Bench_io.String "transport")
    && (match Bench_io.member "error" json with
       | Some (Bench_io.String ("handing_off" | "idle_timeout" | "server_busy")) -> true
       | _ -> false)

let is_refusal line =
  match Bench_io.of_string line with
  | Error _ -> false
  | Ok json -> Bench_io.member "ok" json = Some (Bench_io.Bool false)

let session_buf = Bytes.create 4096

let send_line s sc ~deadline line =
  let data = line ^ "\n" in
  let len = String.length data in
  let rec go off =
    if off >= len then Ok ()
    else if s.s_now () > deadline then Error (`Transient "send timed out")
    else
      match Unix.write_substring sc.sfd data off (len - off) with
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) ->
        s.s_pump ();
        s.s_sleep 0.002;
        go off
      | exception Unix.Unix_error (_, _, _) -> Error (`Transient "connection lost while sending")
      | n -> go (off + n)
  in
  go 0

let recv_line s sc ~deadline =
  let rec loop () =
    match sc.s_extra with
    | line :: rest ->
      sc.s_extra <- rest;
      Ok line
    | [] ->
      if s.s_now () > deadline then Error (`Transient "response timed out")
      else begin
        s.s_pump ();
        match Unix.read sc.sfd session_buf 0 (Bytes.length session_buf) with
        | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) ->
          s.s_sleep 0.002;
          loop ()
        | exception Unix.Unix_error (_, _, _) -> Error (`Transient "connection lost")
        | 0 -> Error (`Transient "connection closed by server")
        | n ->
          sc.s_extra <-
            sc.s_extra
            @ List.filter_map
                (function Frame.Line l -> Some l | Frame.Oversized _ -> None)
                (Frame.feed sc.sframe session_buf ~off:0 ~len:n);
          loop ()
      end
  in
  loop ()

let exchange s sc ~deadline line =
  match send_line s sc ~deadline line with
  | Error _ as e -> e
  | Ok () -> (
    match recv_line s sc ~deadline with
    | Error _ as e -> e
    | Ok response ->
      if is_transport_notice response then Error (`Transient "server said goodbye")
      else Ok response)

(* (Re)connect and re-run the handshake.  A token-mode server demands
   [hello] as the first line of {e every} connection, so a session that
   rides through a handoff re-authenticates with the successor before
   resubmitting anything. *)
let ensure_conn s ~deadline =
  match s.s_conn with
  | Some sc -> Ok sc
  | None -> (
    match connect_fd s.s_address with
    | Error e -> Error (`Transient e)
    | Ok fd ->
      Unix.set_nonblock fd;
      let sc = { sfd = fd; sframe = Frame.create ~max_line:1048576; s_extra = [] } in
      s.s_conn <- Some sc;
      if s.s_connected_once then s.s_reconnects <- s.s_reconnects + 1;
      s.s_connected_once <- true;
      if s.s_token = None && s.s_tenant = None then Ok sc
      else
        match exchange s sc ~deadline (hello_line ?token:s.s_token ?tenant:s.s_tenant ()) with
        | Error _ as e -> e
        | Ok response ->
          if is_refusal response then Error (`Refused response)
          else begin
            s.s_hello_response <- Some response;
            Ok sc
          end)

let with_retries s f =
  let r = s.s_retry in
  let rec attempt k =
    s.s_attempts <- s.s_attempts + 1;
    let deadline = s.s_now () +. (float_of_int r.timeout_ms /. 1000.) in
    let result =
      match ensure_conn s ~deadline with Error e -> Error e | Ok sc -> f sc ~deadline
    in
    match result with
    | Ok v -> Ok v
    | Error (`Refused response) ->
      drop_conn s;
      Error (Refused response)
    | Error (`Transient msg) ->
      drop_conn s;
      if k + 1 >= r.attempts then Error (Exhausted msg)
      else begin
        let d = backoff_delay_ms r s.s_prng k /. 1000. in
        (* Sleep in slices, pumping between them, so an in-process
           listener driven by the same thread keeps making progress. *)
        let slices = 4 in
        for _ = 1 to slices do
          s.s_pump ();
          s.s_sleep (d /. float_of_int slices)
        done;
        attempt (k + 1)
      end
  in
  attempt 0

let srequest s line = with_retries s (fun sc ~deadline -> exchange s sc ~deadline line)

let shello s = with_retries s (fun _sc ~deadline:_ -> Ok s.s_hello_response)
