module Bench_io = Ftagg_runner.Bench_io

type t = { fd : Unix.file_descr; ic : in_channel; oc : out_channel }

let connect address =
  let sock () =
    match (address : Listener.address) with
    | Listener.Unix_sock path ->
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.connect fd (Unix.ADDR_UNIX path);
      fd
    | Listener.Tcp (host, port) ->
      let addr =
        try Unix.inet_addr_of_string host
        with Failure _ -> (
          match Unix.gethostbyname host with
          | exception Not_found -> Printf.ksprintf failwith "unknown host %S" host
          | h -> h.Unix.h_addr_list.(0))
      in
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.connect fd (Unix.ADDR_INET (addr, port));
      fd
  in
  match sock () with
  | exception Failure msg -> Error msg
  | exception Unix.Unix_error (e, _, _) ->
    Printf.ksprintf Result.error "%s: %s" (Listener.address_to_string address)
      (Unix.error_message e)
  | fd -> Ok { fd; ic = Unix.in_channel_of_descr fd; oc = Unix.out_channel_of_descr fd }

let request t line =
  match
    output_string t.oc line;
    output_char t.oc '\n';
    flush t.oc;
    input_line t.ic
  with
  | exception End_of_file -> Error "connection closed by server"
  | exception Sys_error e -> Error e
  | response -> Ok response

let hello ?token ?tenant t =
  let fields =
    [ ("op", Bench_io.String "hello") ]
    @ (match token with Some tok -> [ ("token", Bench_io.String tok) ] | None -> [])
    @ match tenant with Some ten -> [ ("tenant", Bench_io.String ten) ] | None -> []
  in
  request t (Bench_io.to_string ~indent:false (Bench_io.Obj fields))

let close t =
  try Unix.close t.fd with Unix.Unix_error (_, _, _) -> ()
