(** Static token table for the socket transport's [hello] handshake.

    The auth file is one JSON object mapping bearer token → tenant name:

    {v {"alpha-sekrit": "alpha", "beta-sekrit": "beta"} v}

    (or the same object nested under a ["tokens"] key, so the file can
    grow siblings later).  Several tokens may map to one tenant; tokens
    must be non-empty and unique.  The table is immutable once loaded —
    rotating tokens is a server restart, which the checkpoint makes
    cheap. *)

type table

val of_json : Ftagg_runner.Bench_io.json -> (table, string) result
val load : path:string -> (table, string) result
(** Read and parse the auth file; every failure is an [Error reason]
    (the CLI refuses to start on one — a half-loaded token table must
    not fail open). *)

val tenant_of_token : table -> string -> string option
val size : table -> int
(** Number of tokens. *)

val tenants : table -> string list
(** Distinct tenant names, sorted. *)
