(** A minimal blocking client for the socket transport — what
    [ftagg client --connect] (and the socket smoke in CI) speaks.

    The protocol is strict request/response lockstep: every non-empty
    line sent gets exactly one response line, so a blocking
    send-then-read loop is all a client needs.  [Error] from {!request}
    means the connection is gone (the server refused the handshake and
    hung up, or was stopped); protocol-level refusals come back as
    ordinary [{"ok": false, ...}] response lines. *)

type t

val connect : Listener.address -> (t, string) result

val hello : ?token:string -> ?tenant:string -> t -> (string, string) result
(** Send the handshake and return the response line.  [token] is for
    authenticated listeners, [tenant] for open ones. *)

val request : t -> string -> (string, string) result
(** Send one request line, read one response line. *)

val close : t -> unit
