(** Clients for the socket transport — what [ftagg client --connect]
    (and the socket smoke in CI) speaks.

    The protocol is strict request/response lockstep: every non-empty
    line sent gets exactly one response line.  Two client shapes live
    here:

    - the original {e blocking} client ({!connect}/{!request}): one
      connection, no retry — [Error] from {!request} means the
      connection is gone;
    - the {e resilient} {!session}: jittered-exponential retry/backoff
      with per-attempt timeouts and automatic reconnect + re-handshake,
      built for riding through a server restart or a live handoff.
      Resubmitting after a connection loss is safe because job identity
      is the FNV-1a content digest — a request that did execute before
      the connection died comes back as a cache hit, not a duplicate
      execution.

    The session treats three things as {e transient} (retry): connect
    failure, connection loss/timeout mid-exchange, and a connection-fate
    notice — an [{"ok":false,"op":"transport",...}] line whose error is
    [handing_off] (the handoff goodbye), [idle_timeout] or [server_busy];
    such a line announces the connection's fate and is never the answer
    to a request.  Other [ok:false] lines are genuine responses; in
    particular a handshake refusal (bad token) is {e permanent}:
    {!srequest} returns [Refused] without retrying. *)

type t

val probe : Listener.address -> bool
(** Cheap liveness check: can a connection be opened to [address] right
    now?  Connects and immediately closes — no handshake, no request —
    so it is safe against authenticated listeners and costs the server
    one accept.  What the fleet client uses to skip known-dead endpoints
    without spending a retry budget on them. *)

val connect : Listener.address -> (t, string) result

val hello : ?token:string -> ?tenant:string -> t -> (string, string) result
(** Send the handshake and return the response line.  [token] is for
    authenticated listeners, [tenant] for open ones. *)

val request : t -> string -> (string, string) result
(** Send one request line, read one response line. *)

val close : t -> unit

(** {2 Retry policy} *)

type retry = {
  attempts : int;  (** total tries per request, including the first
                       (default 5) *)
  backoff_ms : int;  (** base delay before the first retry (default 50) *)
  max_backoff_ms : int;  (** exponential growth cap (default 2000) *)
  timeout_ms : int;  (** per-attempt budget: connect + handshake +
                         request + response (default 5000) *)
  seed : int;  (** jitter PRNG seed — the whole backoff schedule is
                   deterministic given the seed (default 1) *)
}

val retry : ?attempts:int -> ?backoff_ms:int -> ?max_backoff_ms:int -> ?timeout_ms:int ->
  ?seed:int -> unit -> retry
(** Build a policy; every field is clamped to at least 1. *)

val backoff_schedule : retry -> float list
(** The exact delays (milliseconds) a fresh session with this policy
    would sleep between consecutive failed attempts: [attempts - 1]
    values, [min (max_backoff_ms, backoff_ms * 2^k) * (0.5 + 0.5u)] with
    [u] drawn from the seeded PRNG — pure, for tests asserting
    reproducibility. *)

(** {2 The resilient session} *)

type session

type failure =
  | Refused of string
      (** the server answered the handshake with [{"ok":false,...}] —
          permanent; the payload is that response line *)
  | Exhausted of string
      (** every attempt failed transiently; the payload is the last
          failure *)

val failure_message : failure -> string

val session : ?token:string -> ?tenant:string -> ?retry:retry -> ?pump:(unit -> unit) ->
  ?sleep:(float -> unit) -> ?now:(unit -> float) -> Listener.address -> session
(** A lazy session: nothing connects until the first {!srequest}.
    [token]/[tenant] are replayed in a fresh [hello] on {e every}
    (re)connect, so a session keeps its authenticated identity across a
    handoff.  [pump] is called while waiting (connect backoff, response
    polling) — in-process tests and benches pass the listener's
    [poll] so one thread can drive both ends; [sleep]/[now] are
    injectable for determinism. *)

val srequest : session -> string -> (string, failure) result
(** Send one request line, retrying per the policy; reconnects (and
    re-runs the handshake) whenever the connection is lost. *)

val shello : session -> (string option, failure) result
(** Force the connection (and handshake) now, with the same retry
    policy; returns the server's hello response line ([None] when the
    session has no token/tenant, so no handshake is sent). *)

val reconnects : session -> int
(** Connections established beyond the first — how many times the
    session healed. *)

val attempts_used : session -> int
(** Total attempts across all {!srequest} calls (≥ number of calls). *)

val sclose : session -> unit
