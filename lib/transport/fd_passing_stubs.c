/* SCM_RIGHTS file-descriptor passing over a unix-domain socket.
 *
 * The OCaml stdlib's Unix module exposes sendmsg/recvmsg only without
 * ancillary data, so the two syscalls the live-handoff path needs are
 * provided here as minimal stubs.  Error handling crosses the FFI as a
 * negative errno (the OCaml wrapper turns it into a result); success is
 * 0 for send and the received descriptor for recv.  On every supported
 * platform Unix.file_descr is an immediate int, which is what Int_val /
 * Val_int rely on below.
 */

#include <caml/memory.h>
#include <caml/mlvalues.h>

#include <errno.h>
#include <string.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <unistd.h>

CAMLprim value ftagg_sendmsg_fd(value vsock, value vfd)
{
  struct msghdr msg;
  struct iovec iov;
  char byte = 'F'; /* one payload byte so a zero-length read is an EOF */
  char cbuf[CMSG_SPACE(sizeof(int))];
  struct cmsghdr *cmsg;
  int fd = Int_val(vfd);
  ssize_t r;

  memset(&msg, 0, sizeof msg);
  memset(cbuf, 0, sizeof cbuf);
  iov.iov_base = &byte;
  iov.iov_len = 1;
  msg.msg_iov = &iov;
  msg.msg_iovlen = 1;
  msg.msg_control = cbuf;
  msg.msg_controllen = CMSG_SPACE(sizeof(int));
  cmsg = CMSG_FIRSTHDR(&msg);
  cmsg->cmsg_level = SOL_SOCKET;
  cmsg->cmsg_type = SCM_RIGHTS;
  cmsg->cmsg_len = CMSG_LEN(sizeof(int));
  memcpy(CMSG_DATA(cmsg), &fd, sizeof(int));

  do {
    r = sendmsg(Int_val(vsock), &msg, 0);
  } while (r < 0 && errno == EINTR);
  return Val_int(r < 0 ? -errno : 0);
}

CAMLprim value ftagg_recvmsg_fd(value vsock)
{
  struct msghdr msg;
  struct iovec iov;
  char byte = 0;
  char cbuf[CMSG_SPACE(sizeof(int))];
  struct cmsghdr *cmsg;
  ssize_t r;

  memset(&msg, 0, sizeof msg);
  iov.iov_base = &byte;
  iov.iov_len = 1;
  msg.msg_iov = &iov;
  msg.msg_iovlen = 1;
  msg.msg_control = cbuf;
  msg.msg_controllen = sizeof cbuf;

  do {
    r = recvmsg(Int_val(vsock), &msg, 0);
  } while (r < 0 && errno == EINTR);
  if (r < 0) return Val_int(-errno);
  if (r == 0) return Val_int(-ECONNRESET); /* peer closed before the fd */
  for (cmsg = CMSG_FIRSTHDR(&msg); cmsg != NULL; cmsg = CMSG_NXTHDR(&msg, cmsg)) {
    if (cmsg->cmsg_level == SOL_SOCKET && cmsg->cmsg_type == SCM_RIGHTS) {
      int fd;
      memcpy(&fd, CMSG_DATA(cmsg), sizeof(int));
      return Val_int(fd);
    }
  }
  return Val_int(-EBADMSG); /* a data byte arrived without its fd */
}

/* Read up to [vlen] payload bytes WITH a control buffer, storing a
 * received descriptor (or -1) into the int ref [vfdref].  A stream
 * reader that may be handed an fd mid-stream must use this for every
 * read: a plain read() makes the kernel gather and then destroy the
 * SCM_RIGHTS ancillary data, silently closing the passed descriptor.
 * Returns bytes read (0 = EOF) or a negative errno.
 */
CAMLprim value ftagg_recvmsg_buf(value vsock, value vbuf, value vlen, value vfdref)
{
  struct msghdr msg;
  struct iovec iov;
  char cbuf[CMSG_SPACE(sizeof(int))];
  struct cmsghdr *cmsg;
  ssize_t r;

  memset(&msg, 0, sizeof msg);
  iov.iov_base = Bytes_val(vbuf);
  iov.iov_len = Long_val(vlen);
  msg.msg_iov = &iov;
  msg.msg_iovlen = 1;
  msg.msg_control = cbuf;
  msg.msg_controllen = sizeof cbuf;

  do {
    r = recvmsg(Int_val(vsock), &msg, 0);
  } while (r < 0 && errno == EINTR);
  Store_field(vfdref, 0, Val_int(-1));
  if (r < 0) return Val_int(-errno);
  for (cmsg = CMSG_FIRSTHDR(&msg); cmsg != NULL; cmsg = CMSG_NXTHDR(&msg, cmsg)) {
    if (cmsg->cmsg_level == SOL_SOCKET && cmsg->cmsg_type == SCM_RIGHTS) {
      int fd;
      memcpy(&fd, CMSG_DATA(cmsg), sizeof(int));
      Store_field(vfdref, 0, Val_int(fd));
      break;
    }
  }
  return Val_int(r);
}
