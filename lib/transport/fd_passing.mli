(** SCM_RIGHTS file-descriptor passing — the mechanism behind the live
    listener handoff.

    A listening socket is kernel state: passing it to the successor
    process keeps the accept backlog intact, so connections that arrive
    {e during} the handoff are neither refused nor reset — they queue in
    the kernel and the successor accepts them.  Both calls require
    [sock] to be a unix-domain stream socket (the control socket); the
    descriptor being passed can be any kind, including a TCP listener.

    Errors come back as [Error errno_message] rather than exceptions so
    the handoff path can degrade to the unlink-and-rebind fallback
    without exception plumbing.  [EAGAIN]/[EWOULDBLOCK] on a nonblocking
    control socket is reported as [Error "EAGAIN"] — pollable callers
    treat it as "not yet". *)

val send_fd : sock:Unix.file_descr -> fd:Unix.file_descr -> (unit, string) result
(** Send [fd] (with one sentinel payload byte) over [sock].  The caller
    keeps its own copy of [fd]; the receiver gets an independent dup. *)

val recv_fd : sock:Unix.file_descr -> (Unix.file_descr, string) result
(** Receive one descriptor from [sock].  [Error "EAGAIN"] when [sock] is
    nonblocking and nothing has arrived yet. *)

val recv_with_fd : sock:Unix.file_descr -> Bytes.t -> (int * Unix.file_descr option, string) result
(** Read up to [Bytes.length buf] payload bytes into [buf], capturing a
    descriptor if one is attached to any of them; [Ok (0, _)] is EOF.
    A stream that {e may} carry an fd must be read exclusively through
    this: a plain [read] makes the kernel gather the SCM_RIGHTS payload
    and then destroy it, silently closing the passed descriptor. *)

val available : bool
(** Always [true] on this build (the stubs are compiled in); kept as an
    explicit capability flag so a future platform port can gate the
    fd-pass path to the rebind fallback without API changes. *)
