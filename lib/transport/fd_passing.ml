(* Thin wrappers over the sendmsg/recvmsg stubs.  The stubs speak
   negative errno; Unix.file_descr is an immediate int on every platform
   we build for, so the int<->descr casts below are the standard trick
   (the same representation the stdlib's own unix stubs rely on). *)

external sendmsg_fd : Unix.file_descr -> Unix.file_descr -> int = "ftagg_sendmsg_fd"
external recvmsg_fd : Unix.file_descr -> int = "ftagg_recvmsg_fd"
external recvmsg_buf : Unix.file_descr -> Bytes.t -> int -> int ref -> int = "ftagg_recvmsg_buf"

let available = true

(* Linux errno values we need to recognise by name; anything else is
   reported numerically (still actionable in a log line). *)
let errno_name = function
  | 11 -> "EAGAIN" (* EWOULDBLOCK shares the value on Linux *)
  | 32 -> "EPIPE"
  | 104 -> "ECONNRESET"
  | 74 -> "EBADMSG"
  | 9 -> "EBADF"
  | e -> Printf.sprintf "errno %d" e

let send_fd ~sock ~fd =
  match sendmsg_fd sock fd with
  | 0 -> Ok ()
  | neg -> Error (Printf.sprintf "sendmsg(SCM_RIGHTS): %s" (errno_name (-neg)))

let recv_fd ~sock =
  let r = recvmsg_fd sock in
  if r >= 0 then Ok (Obj.magic (r : int) : Unix.file_descr)
  else if -r = 11 then Error "EAGAIN"
  else Error (Printf.sprintf "recvmsg(SCM_RIGHTS): %s" (errno_name (-r)))

let recv_with_fd ~sock buf =
  let fdref = ref (-1) in
  let r = recvmsg_buf sock buf (Bytes.length buf) fdref in
  if r >= 0 then
    Ok (r, if !fdref >= 0 then Some (Obj.magic (!fdref : int) : Unix.file_descr) else None)
  else if -r = 11 then Error "EAGAIN"
  else Error (Printf.sprintf "recvmsg: %s" (errno_name (-r)))
