(** The socket front door: a single-threaded [select] event loop
    multiplexing many client connections onto one {!Ftagg_service.Server}.

    One loop owns everything — the listening socket, every connection's
    read framer and write buffer, and the only thread that ever touches
    the scheduler — so the service keeps the single-ownership discipline
    it had under stdin/stdout while serving many clients.  Each
    connection gets a {!Frame.t} (line framing with a byte bound) and a
    {!Session.t} (handshake, tenant stamping); completed request lines
    run through [Server.handle_as] synchronously, in arrival order
    across connections.

    The loop is {e pollable}: {!poll} runs exactly one select iteration
    (accept, read, dispatch, write, timeouts), so tests drive a real
    socket server deterministically from one thread, with a fake clock
    for the idle timeout.  {!run} is the production wrapper: poll until
    {!stop} or SIGTERM, then drain — stop accepting, flush every
    connection, finish the queued backlog ([Scheduler.drain]) and write
    the final checkpoint ([Server.finish]).

    Transport telemetry lands in the server's own registry (so the
    [metrics] op exposes it): [transport_connections_accepted_total],
    [transport_connections_refused_total], [transport_requests_total],
    [transport_malformed_lines_total], [transport_oversized_lines_total],
    [transport_idle_timeouts_total], [transport_bytes_total{dir=in|out}]
    and the [transport_open_connections] gauge. *)

type address =
  | Unix_sock of string  (** filesystem path *)
  | Tcp of string * int  (** host, port; port [0] binds an ephemeral port *)

val address_of_string : string -> (address, string) result
(** Parse [unix:PATH] or [tcp:HOST:PORT]. *)

val address_to_string : address -> string

type config = {
  address : address;
  auth : Session.auth_mode;
  max_line : int;  (** request-line byte bound (default 65536) *)
  idle_timeout : float;  (** seconds without traffic before a connection
                             is closed; [0.] disables (default 300) *)
  max_conns : int;  (** accepted connections beyond this are answered
                        with a [server_busy] error and closed (default 64) *)
  now : unit -> float;  (** the idle-timeout clock (default
                            [Unix.gettimeofday]; tests inject a fake) *)
}

val config : ?auth:Session.auth_mode -> ?max_line:int -> ?idle_timeout:float ->
  ?max_conns:int -> ?now:(unit -> float) -> address -> config

type t

val create : config -> Ftagg_service.Server.t -> (t, string) result
(** Bind and listen.  A stale Unix-socket file left by a dead server is
    replaced; any other existing file at the path is an error. *)

val poll : ?timeout:float -> t -> int
(** One event-loop iteration with the given select timeout (default
    [0.], i.e. non-blocking); returns the number of I/O events handled
    (accepts + readable/writable connections + timeouts), so callers can
    loop until quiescent. *)

val run : t -> int
(** Poll until {!stop} is called from a signal context, SIGTERM or
    SIGINT arrives, then drain gracefully and return the exit code (0).
    Installs (and restores) the SIGTERM/SIGINT handlers and ignores
    SIGPIPE for the duration. *)

val stop : t -> unit
(** Ask {!run} to begin the graceful drain; safe from a signal handler. *)

val drain : t -> unit
(** The shutdown path itself: stop accepting, flush and close every
    connection, run the queued backlog to completion and write the final
    checkpoint.  {!run} calls this; pollers driving the loop by hand can
    call it directly.  Idempotent. *)

val connections : t -> int
(** Currently open connections. *)

val port : t -> int option
(** The bound TCP port (useful after binding port [0]); [None] for a
    Unix socket. *)
