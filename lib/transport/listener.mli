(** The socket front door: a single-threaded [select] event loop
    multiplexing many client connections onto one {!Ftagg_service.Server}.

    One loop owns everything — the listening socket, every connection's
    read framer and write buffer, and the only thread that ever touches
    the scheduler — so the service keeps the single-ownership discipline
    it had under stdin/stdout while serving many clients.  Each
    connection gets a {!Frame.t} (line framing with a byte bound) and a
    {!Session.t} (handshake, tenant stamping); completed request lines
    run through [Server.handle_as] synchronously, in arrival order
    across connections.

    The loop is {e pollable}: {!poll} runs exactly one select iteration
    (accept, read, dispatch, write, timeouts), so tests drive a real
    socket server deterministically from one thread, with a fake clock
    for the idle timeout.  {!run} is the production wrapper: poll until
    {!stop} or SIGTERM, then drain — stop accepting, flush every
    connection, finish the queued backlog ([Scheduler.drain]) and write
    the final checkpoint ([Server.finish]).

    {b Zero-downtime handoff.}  Alongside the data listener the loop can
    serve a unix {e control socket} ([config.ctl], defaulting to
    [<path>.ctl] for unix addresses) speaking the versioned {!Handoff}
    protocol.  A successor's takeover request makes the incumbent pause
    accepting (connects queue in the kernel backlog), close clients with
    a structured [handing_off] goodbye, finish the in-flight backlog,
    write the final checkpoint, then either pass the live listening fd
    over SCM_RIGHTS ([fd] mode) or release the address for the successor
    to rebind ([rebind] mode — the TCP-friendly fallback).  Once the
    successor acks with [adopted], {!run} exits {e without} unlinking the
    socket paths or re-checkpointing — the successor owns them.  SIGUSR2
    (or {!request_handoff}) {e arms} the same drain — stop accepting,
    finish, checkpoint, keep serving open connections — without exiting,
    distinct from SIGTERM's drain-and-exit.  A second takeover while one
    is in flight is refused ([handoff_in_progress]); a successor that
    dies before acking makes the incumbent resume (re-accepting on its
    kept fd, or re-binding in rebind mode).

    Transport telemetry lands in the server's own registry (so the
    [metrics] op exposes it): [transport_connections_accepted_total],
    [transport_connections_refused_total], [transport_requests_total],
    [transport_malformed_lines_total], [transport_oversized_lines_total],
    [transport_idle_timeouts_total], [transport_bytes_total{dir=in|out}],
    the [transport_open_connections] gauge, and for the handoff path
    [transport_handoff_requests_total], [transport_handoff_refused_total],
    [transport_handoff_arms_total], [transport_handoffs_total],
    [transport_handoff_aborts_total] and the [transport_handoff_seconds]
    histogram. *)

type address =
  | Unix_sock of string  (** filesystem path *)
  | Tcp of string * int  (** host, port; port [0] binds an ephemeral port *)

val address_of_string : string -> (address, string) result
(** Parse [unix:PATH] or [tcp:HOST:PORT]. *)

val address_to_string : address -> string

val default_ctl_path : address -> string option
(** The conventional control-socket path: [Some (path ^ ".ctl")] for a
    unix address, [None] for TCP (pass [?ctl] explicitly to enable
    handoff on a TCP listener). *)

type config = {
  address : address;
  auth : Session.auth_mode;
  max_line : int;  (** request-line byte bound (default 65536) *)
  idle_timeout : float;  (** seconds without traffic before a connection
                             is closed; [0.] disables (default 300) *)
  max_conns : int;  (** accepted connections beyond this are answered
                        with a [server_busy] error and closed (default 64) *)
  now : unit -> float;  (** the idle-timeout clock (default
                            [Unix.gettimeofday]; tests inject a fake) *)
  ctl : string option;  (** handoff control-socket path; [None] disables
                            takeover (default {!default_ctl_path}) *)
}

val config : ?auth:Session.auth_mode -> ?max_line:int -> ?idle_timeout:float ->
  ?max_conns:int -> ?now:(unit -> float) -> ?ctl:string -> address -> config

type t

val create : ?adopted_fd:Unix.file_descr -> config -> Ftagg_service.Server.t -> (t, string) result
(** Bind and listen.  A stale Unix-socket file left by a dead server is
    replaced; any other existing file at the path is an error.  With
    [adopted_fd] (a handoff successor) the descriptor — already bound and
    listening, accept backlog intact — is used as-is and the address is
    not touched.  Also ignores SIGPIPE process-wide, so a client gone
    mid-write costs EPIPE on that connection, never the process — for
    {!run} and bare-{!poll} drivers alike. *)

val poll : ?timeout:float -> t -> int
(** One event-loop iteration with the given select timeout (default
    [0.], i.e. non-blocking); returns the number of I/O events handled
    (accepts + readable/writable connections + timeouts), so callers can
    loop until quiescent.  Also drives the control socket: takeover
    requests, the fd pass, and the successor's ack all happen inside
    [poll]. *)

val run : t -> int
(** Poll until {!stop} is called from a signal context, SIGTERM or
    SIGINT arrives, or a handoff completes; then drain gracefully and
    return the exit code (0).  Installs (and restores) the
    SIGTERM/SIGINT handlers, a SIGUSR2 handler that {!request_handoff}s,
    and ignores SIGPIPE for the duration. *)

val stop : t -> unit
(** Ask {!run} to begin the graceful drain; safe from a signal handler. *)

val request_handoff : t -> unit
(** Arm the handoff drain (what SIGUSR2 does): the next {!poll} stops
    accepting, finishes the backlog and writes the checkpoint, then
    keeps serving open connections while awaiting a successor.  Safe
    from a signal handler (it only sets a flag). *)

val drain : t -> unit
(** The shutdown path itself: stop accepting, flush and close every
    connection, run the queued backlog to completion and write the final
    checkpoint.  {!run} calls this; pollers driving the loop by hand can
    call it directly.  Idempotent.  After a completed handoff this only
    closes descriptors — the socket paths and checkpoint now belong to
    the successor. *)

val connections : t -> int
(** Currently open connections. *)

val port : t -> int option
(** The bound TCP port (useful after binding port [0]); [None] for a
    Unix socket. *)

val accepting : t -> bool
(** Is the loop currently accepting new data connections?  [false] once
    stopped, drained, armed for handoff, or mid-takeover. *)

val handed_off : t -> bool
(** Did a successor complete a takeover?  When [true], {!run} has
    returned (or will) and the exit path touches nothing the successor
    owns. *)

val handoff_in_progress : t -> bool
(** A takeover request has been served and the successor's [adopted] ack
    is still pending. *)

val ctl_path : t -> string option
(** The control-socket path this listener serves takeovers on. *)
