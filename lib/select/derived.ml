module Graph = Ftagg_graph.Graph
module Failure = Ftagg_sim.Failure
module Metrics = Ftagg_sim.Metrics
module Params = Ftagg_proto.Params
module Run = Ftagg_proto.Run
module Instances = Ftagg_caaf.Instances

type outcome = {
  average : float;
  variance : float;
  range : int;
  population : int;
  metrics : Metrics.t;
  rounds : int;
}

let summary ~graph ~failures ~params ~b ~f ~seed =
  let n = Graph.n graph in
  let metrics = Metrics.create n in
  let offset = ref 0 in
  let step = ref 0 in
  let component ~caaf ~inputs =
    incr step;
    let p = { params with Params.caaf; inputs; max_input = Array.fold_left max 1 inputs } in
    let o =
      Run.tradeoff ~graph
        ~failures:(Failure.shift failures ~by:!offset)
        ~params:p ~b ~f ~seed:(seed + !step) ()
    in
    offset := !offset + o.Run.common.Run.rounds;
    Metrics.merge_into metrics o.Run.common.Run.metrics;
    (Run.value_exn o.Run.result)
  in
  let inputs = params.Params.inputs in
  let sum = component ~caaf:Instances.sum ~inputs in
  let count = component ~caaf:Instances.count ~inputs:(Array.make n 1) in
  let sumsq = component ~caaf:Instances.sum ~inputs:(Array.map (fun x -> x * x) inputs) in
  let maxv = component ~caaf:Instances.max_ ~inputs in
  let minv = component ~caaf:Instances.min_ ~inputs in
  let count = max count 1 in
  let average = float_of_int sum /. float_of_int count in
  let variance =
    Float.max 0.0 ((float_of_int sumsq /. float_of_int count) -. (average *. average))
  in
  { average; variance; range = maxv - minv; population = count; metrics; rounds = !offset }
