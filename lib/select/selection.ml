module Bits = Ftagg_util.Bits
module Graph = Ftagg_graph.Graph
module Failure = Ftagg_sim.Failure
module Metrics = Ftagg_sim.Metrics
module Params = Ftagg_proto.Params
module Run = Ftagg_proto.Run
module Message = Ftagg_proto.Message

type outcome = {
  value : int;
  probes : int;
  metrics : Metrics.t;
  rounds : int;
}

(* One fault-tolerant COUNT of [{i : pred i}] via the tradeoff protocol.
   The threshold announcement is a flood of the probe value: every live
   node forwards it once, charged at the value's width (plus tag and id,
   matching Message's accounting) over c·d rounds. *)
let count_probe ~graph ~failures ~params ~b ~f ~seed ~offset pred =
  let n = Graph.n graph in
  let inputs = Array.init n (fun i -> if pred i then 1 else 0) in
  let probe_params =
    { params with Params.caaf = Ftagg_caaf.Instances.count; inputs; max_input = 1 }
  in
  let shifted = Failure.shift failures ~by:offset in
  let announce_rounds = Params.cd params in
  let announce_bits =
    5 + Params.id_bits params + Bits.bits_for_value params.Params.max_input
  in
  let o =
    Run.tradeoff ~graph ~failures:(Failure.shift shifted ~by:announce_rounds)
      ~params:probe_params ~b ~f ~seed ()
  in
  let metrics = o.Run.common.Run.metrics in
  (* Charge the announcement flood to every node alive when it happened. *)
  for u = 0 to n - 1 do
    if Failure.is_alive shifted ~node:u ~round:announce_rounds then
      Metrics.charge metrics ~node:u ~bits:announce_bits
  done;
  let total_rounds = Metrics.rounds metrics + announce_rounds in
  Metrics.note_round metrics total_rounds;
  ((Run.value_exn o.Run.result), metrics, total_rounds)

let select ~graph ~failures ~params ~b ~f ~k ~seed =
  if k < 1 then invalid_arg "Selection.select: k must be >= 1";
  let metrics = Metrics.create (Graph.n graph) in
  let probes = ref 0 in
  let offset = ref 0 in
  let probe v =
    incr probes;
    let count, m, rounds =
      count_probe ~graph ~failures ~params ~b ~f ~seed:(seed + !probes) ~offset:!offset
        (fun i -> params.Params.inputs.(i) <= v)
    in
    offset := !offset + rounds;
    Metrics.merge_into metrics m;
    count
  in
  (* Binary search for the smallest v with count_{<=v} >= k. *)
  let lo = ref 0 and hi = ref params.Params.max_input in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if probe mid >= k then hi := mid else lo := mid + 1
  done;
  { value = !lo; probes = !probes; metrics; rounds = !offset }

let median ~graph ~failures ~params ~b ~f ~seed =
  let m, metrics0, rounds0 =
    count_probe ~graph ~failures ~params ~b ~f ~seed ~offset:0 (fun _ -> true)
  in
  let k = max 1 ((m + 1) / 2) in
  let o =
    select ~graph ~failures:(Failure.shift failures ~by:rounds0) ~params ~b ~f ~k
      ~seed:(seed + 1)
  in
  Metrics.merge_into o.metrics metrics0;
  { o with probes = o.probes + 1; rounds = o.rounds + rounds0 }

let kth_smallest xs k =
  let a = Array.of_list xs in
  if k < 1 || k > Array.length a then invalid_arg "Selection.kth_smallest";
  Array.sort compare a;
  a.(k - 1)
