(** The churn scenario runner: schedules × backends → percentile curves.

    For every (churn schedule, protocol backend) pair the runner evolves
    one {!Membership} across [generations] topology generations, runs the
    backend [runs_per_generation] times per generation under the
    schedule's crash plan (retired nodes merged in as round-1 crashes),
    and reports the workload-matrix metrics of the flow-updating /
    gossip evaluation tradition:

    - {b completion}: a run completes when it ends without a watchdog
      violation and produces a usable answer — an exact value inside the
      checker's correctness interval, or a finite estimate.  Aborts,
      violations and non-finite estimates are incomplete.
    - {b latency-to-90/95/99/100%}: percentiles, over completed runs, of
      rounds until the run halted — extracted from a
      {!Ftagg_obs.Registry} log2 histogram via {!Registry.percentile}
      (so the numbers are bucket-interpolated, monotone in [p], and
      [p100] is exact).
    - {b p95 per-node bandwidth}: 95th percentile over every live
      node-run of the node's total broadcast bits.
    - {b worst relative error}: max over completed runs of the answer's
      relative error against the generation's ground truth (0 for exact
      backends by construction).

    Everything is deterministic from [spec.seed]: equal seeds produce
    identical join/crash schedules and identical percentile tables
    across runs and across backends (crash draws never depend on the
    backend).  Histograms land in the supplied (or a fresh) registry
    under [scenario_latency_rounds] / [scenario_node_bits] with
    [(schedule, backend)] labels, alongside [scenario_*_total] counters,
    so the existing exporters render the curves too. *)

module Schedule = Ftagg_chaos.Schedule

type spec = {
  family : Ftagg_graph.Gen.family;
  n : int;  (** base topology size (generation 0) *)
  c : int;
  backends : string list;  (** {!Ftagg_proto.Run.backends} names *)
  schedules : Schedule.t list;
  generations : int;
  runs_per_generation : int;
  budget : int;  (** per-run edge-failure budget handed to the schedule *)
  b : int;  (** TC budget in flooding rounds, as [Run.exec] *)
  f : int;
  seed : int;
}

val default : spec
(** 6×6 grid, agg + flowupdating, all four schedules, 5 generations of
    3 runs, budget 4, [b = 40], [f = 4], seed 1. *)

type percentiles = { p90 : float; p95 : float; p99 : float; p100 : float }

type report = {
  r_schedule : string;
  r_backend : string;
  r_runs : int;
  r_completed : int;
  r_latency : percentiles;
      (** rounds-to-halt percentiles over completed runs; all [nan] when
          nothing completed *)
  r_p95_node_bits : float;  (** [nan] when no live node ever ran *)
  r_max_rel_err : float;  (** [nan] when nothing completed *)
  r_joins : int;
  r_leaves : int;
  r_crashes : int;  (** materialized in-run crashes, retirements excluded *)
  r_violations : int;
  r_final_n : int;  (** id space after the last generation *)
}

val run :
  ?registry:Ftagg_obs.Registry.t ->
  ?on_violation:(Ftagg_chaos.Incident.t -> unit) ->
  spec ->
  report list
(** Execute the matrix, one report per (schedule, backend) in spec
    order.  Telemetry is force-enabled for the duration (the histograms
    are the metric source, not a side channel) and the previous
    kill-switch state restored after.  [on_violation] receives every
    watchdog violation packaged as a replayable {!Ftagg_chaos.Incident.t}
    (via {!Schedule.scenario_of_run}) — feed it to [Incident.save] or
    {!Ftagg_chaos.Shrink.minimize}.  Raises [Invalid_argument] on an
    unknown backend name or a non-positive matrix dimension. *)

val table : report list -> Ftagg_util.Table.t
(** The percentile table the CLI and bench print. *)

val report_to_json : report -> Ftagg_runner.Bench_io.json
(** One BENCH_engine.json / [--json] row; [nan] fields become [Null]. *)
