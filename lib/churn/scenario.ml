(* The churn scenario runner.  One membership evolution per (schedule,
   backend) pair — the evolution is a pure function of (schedule, seed),
   so every backend sees the same generations — and per generation a
   batch of chaos runs whose crash draws mix only (schedule, seed,
   generation, run index), never the backend: equal seeds face every
   backend with the same adversary, as bench E20 established for the
   static matrix. *)

module Prng = Ftagg_util.Prng
module Table = Ftagg_util.Table
module Graph = Ftagg_graph.Graph
module Gen = Ftagg_graph.Gen
module Failure = Ftagg_sim.Failure
module Metrics = Ftagg_sim.Metrics
module Params = Ftagg_proto.Params
module Backend = Ftagg_proto.Backend
module Run = Ftagg_proto.Run
module Agg = Ftagg_proto.Agg
module Registry = Ftagg_obs.Registry
module Incident = Ftagg_chaos.Incident
module Schedule = Ftagg_chaos.Schedule
module Bench_io = Ftagg_runner.Bench_io

type spec = {
  family : Gen.family;
  n : int;
  c : int;
  backends : string list;
  schedules : Schedule.t list;
  generations : int;
  runs_per_generation : int;
  budget : int;
  b : int;
  f : int;
  seed : int;
}

let default =
  {
    family = Gen.Grid;
    n = 36;
    c = 2;
    backends = [ "agg"; "flowupdating" ];
    schedules = Schedule.all;
    generations = 5;
    runs_per_generation = 3;
    budget = 4;
    b = 40;
    f = 4;
    seed = 1;
  }

type percentiles = { p90 : float; p95 : float; p99 : float; p100 : float }

type report = {
  r_schedule : string;
  r_backend : string;
  r_runs : int;
  r_completed : int;
  r_latency : percentiles;
  r_p95_node_bits : float;
  r_max_rel_err : float;
  r_joins : int;
  r_leaves : int;
  r_crashes : int;
  r_violations : int;
  r_final_n : int;
}

(* Per-run seed: FNV over (spec seed, schedule, generation, run index) —
   backend-independent by construction. *)
let run_seed ~seed ~schedule ~generation ~run =
  let h = ref 0xcbf29ce484222325L in
  let mix s =
    String.iter
      (fun c ->
        h := Int64.logxor !h (Int64.of_int (Char.code c));
        h := Int64.mul !h 0x100000001b3L)
      s
  in
  mix (string_of_int seed);
  mix schedule;
  mix (string_of_int generation);
  mix (string_of_int run);
  Int64.to_int !h land max_int

let inputs_for n = Array.init n (fun i -> 4 + (i mod 7))

let backend_module name =
  match Run.backend_of_string name with
  | Some b -> b
  | None -> invalid_arg (Printf.sprintf "Scenario.run: unknown backend %S" name)

(* The crash window shared by every backend of the matrix: the smallest
   round budget any of them runs for on this topology, so every drawn
   crash round is reachable by every backend. *)
let shared_window ~backends ~params ~b ~f =
  List.fold_left
    (fun acc bk ->
      let module B = (val (bk : Backend.t)) in
      min acc (B.max_rounds ~params ~b ~f))
    max_int backends

let completed (chaos : Backend.chaos) =
  match chaos.Backend.c_violation with
  | Some _ -> false
  | None -> (
    match chaos.Backend.c_outcome.Backend.result with
    | Backend.Exact (Agg.Value _) -> chaos.Backend.c_outcome.Backend.common.Backend.correct
    | Backend.Exact Agg.Aborted -> false
    | Backend.Estimate { value; _ } -> Float.is_finite value)

let run ?registry ?on_violation spec =
  if spec.generations <= 0 || spec.runs_per_generation <= 0 then
    invalid_arg "Scenario.run: non-positive matrix dimension";
  if spec.backends = [] || spec.schedules = [] then
    invalid_arg "Scenario.run: empty backend or schedule list";
  let backend_mods = List.map backend_module spec.backends in
  let registry = match registry with Some r -> r | None -> Registry.create () in
  let prev_enabled = Registry.enabled () in
  Registry.set_enabled true;
  Fun.protect ~finally:(fun () -> Registry.set_enabled prev_enabled) @@ fun () ->
  List.concat_map
    (fun sched ->
      let sname = Schedule.name sched in
      List.map2
        (fun bname backend ->
          let labels = [ ("schedule", sname); ("backend", bname) ] in
          let observe name v = Registry.observe registry ~labels name v in
          let count name k = Registry.incr registry ~labels name k in
          let membership = ref (Membership.create ~family:spec.family ~n:spec.n ~seed:spec.seed) in
          let runs = ref 0 and done_ = ref 0 and violations = ref 0 and crashes = ref 0 in
          let max_rel = ref nan in
          for g = 0 to spec.generations - 1 do
            let joins, leaves = Schedule.churn sched ~generation:g ~seed:spec.seed in
            if g > 0 then membership := Membership.advance !membership ~joins ~leaves;
            let graph = Membership.graph !membership in
            let total_n = Membership.total_n !membership in
            let inputs = inputs_for total_n in
            let truth = float_of_int (Array.fold_left ( + ) 0 inputs) in
            let params = Params.make ~c:spec.c ~graph ~inputs () in
            let window = shared_window ~backends:backend_mods ~params ~b:spec.b ~f:spec.f in
            let gone = Membership.retired !membership in
            let retire = Membership.retirement !membership in
            for r = 0 to spec.runs_per_generation - 1 do
              let seed = run_seed ~seed:spec.seed ~schedule:sname ~generation:g ~run:r in
              let planned, online =
                Schedule.failures sched ~graph ~generation:g ~seed ~budget:spec.budget ~window
              in
              let failures = Membership.merge_failures retire planned in
              let chaos =
                Backend.exec_chaos ?online ~backend ~graph ~failures ~params ~b:spec.b ~f:spec.f
                  ~seed ()
              in
              incr runs;
              count "scenario_runs_total" 1;
              crashes :=
                !crashes
                + List.length
                    (List.filter
                       (fun (u, _) -> not (List.mem u gone))
                       (Failure.to_list chaos.Backend.c_schedule));
              let metrics = chaos.Backend.c_outcome.Backend.common.Backend.metrics in
              List.iter
                (fun u -> observe "scenario_node_bits" (float_of_int (Metrics.bits_sent metrics u)))
                (Membership.live !membership);
              (match chaos.Backend.c_violation with
              | None -> ()
              | Some v ->
                incr violations;
                count "scenario_violations_total" 1;
                match on_violation with
                | None -> ()
                | Some report ->
                  let scenario =
                    Schedule.scenario_of_run ~family:spec.family ~n:total_n ~topo_seed:spec.seed
                      ~run_seed:seed ~c:spec.c ~t_param:0 ~inputs ~backend:bname ~b:spec.b
                      ~f:spec.f ~schedule:chaos.Backend.c_schedule
                  in
                  report
                    {
                      Incident.adversary = "schedule:" ^ sname;
                      scenario;
                      violation = v;
                      shrink = None;
                    });
              if completed chaos then begin
                incr done_;
                count "scenario_completed_total" 1;
                observe "scenario_latency_rounds"
                  (float_of_int chaos.Backend.c_outcome.Backend.common.Backend.rounds);
                let rel = Backend.relative_error chaos.Backend.c_outcome ~truth in
                if Float.is_nan !max_rel || rel > !max_rel then max_rel := rel
              end
            done
          done;
          let latency =
            match Registry.histogram registry ~labels "scenario_latency_rounds" with
            | Some h ->
              {
                p90 = Registry.percentile h 90.0;
                p95 = Registry.percentile h 95.0;
                p99 = Registry.percentile h 99.0;
                p100 = Registry.percentile h 100.0;
              }
            | None -> { p90 = nan; p95 = nan; p99 = nan; p100 = nan }
          in
          let p95_bits =
            match Registry.histogram registry ~labels "scenario_node_bits" with
            | Some h -> Registry.percentile h 95.0
            | None -> nan
          in
          {
            r_schedule = sname;
            r_backend = bname;
            r_runs = !runs;
            r_completed = !done_;
            r_latency = latency;
            r_p95_node_bits = p95_bits;
            r_max_rel_err = !max_rel;
            r_joins = Membership.joins !membership;
            r_leaves = List.length (Membership.retired !membership);
            r_crashes = !crashes;
            r_violations = !violations;
            r_final_n = Membership.total_n !membership;
          })
        spec.backends backend_mods)
    spec.schedules

let fmt v = if Float.is_nan v then "-" else Table.fmt_float v

let table reports =
  let t =
    Table.create
      ~title:"Scenario matrix — latency-to-p% completion (rounds) and p95 per-node bandwidth"
      [
        ("schedule", Table.Left);
        ("backend", Table.Left);
        ("done", Table.Right);
        ("lat p90", Table.Right);
        ("lat p95", Table.Right);
        ("lat p99", Table.Right);
        ("lat p100", Table.Right);
        ("p95 bits", Table.Right);
        ("max rel err", Table.Right);
        ("viol", Table.Right);
        ("final n", Table.Right);
      ]
  in
  List.iter
    (fun r ->
      Table.add_row t
        [
          r.r_schedule;
          r.r_backend;
          Printf.sprintf "%d/%d" r.r_completed r.r_runs;
          fmt r.r_latency.p90;
          fmt r.r_latency.p95;
          fmt r.r_latency.p99;
          fmt r.r_latency.p100;
          fmt r.r_p95_node_bits;
          (if Float.is_nan r.r_max_rel_err then "-" else Printf.sprintf "%.6f" r.r_max_rel_err);
          string_of_int r.r_violations;
          string_of_int r.r_final_n;
        ])
    reports;
  t

let q2 x = Float.round (x *. 1e2) /. 1e2
let q6 x = Float.round (x *. 1e6) /. 1e6
let num q v = if Float.is_nan v then Bench_io.Null else Bench_io.Float (q v)

let report_to_json r =
  Bench_io.(
    Obj
      [
        ("schedule", String r.r_schedule);
        ("backend", String r.r_backend);
        ("runs", Int r.r_runs);
        ("completed", Int r.r_completed);
        ("latency_p90", num q2 r.r_latency.p90);
        ("latency_p95", num q2 r.r_latency.p95);
        ("latency_p99", num q2 r.r_latency.p99);
        ("latency_p100", num q2 r.r_latency.p100);
        ("p95_node_bits", num q2 r.r_p95_node_bits);
        ("max_rel_err", num q6 r.r_max_rel_err);
        ("joins", Int r.r_joins);
        ("leaves", Int r.r_leaves);
        ("crashes", Int r.r_crashes);
        ("violations", Int r.r_violations);
        ("final_n", Int r.r_final_n);
      ])
