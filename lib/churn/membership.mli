(** Topology generations: a base graph evolving under joins and leaves.

    The paper's model fixes the node set before the first round; churn
    workloads need the set to {e evolve between runs}.  A membership
    value is a base topology (family, [n], seed) plus an event history —
    joins attach fresh nodes to live attachment points chosen by a
    seeded rule, leaves retire existing nodes — stamped with a
    {e generation} counter that bumps on every {!advance}.

    The evolved topology keeps retired nodes {e in} the graph (ids are
    never reused, the id space only grows): a retired node is modelled
    as crashed at round 1 of every subsequent run ({!retirement}), which
    stays inside the engine's crash-fault model — retirement never
    disconnects the topology or changes its diameter, it silently
    removes the node's traffic and its input from what survivors can
    see.  Joins, by contrast, genuinely grow the graph: a joining node
    gets edges to [2] (or as many as exist) distinct live nodes.

    Everything is a pure function of [(family, n, seed)] and the event
    history: equal seeds evolve identically, and {!key} — the
    {e generation-keyed digest} — changes whenever the membership does,
    which is what the service layer keys its result cache on so a
    generation-[g] job can never be served a stale generation-[(g−1)]
    outcome. *)

type t

val create : family:Ftagg_graph.Gen.family -> n:int -> seed:int -> t
(** Generation 0: exactly [Gen.build family ~n ~seed], no history. *)

val generation : t -> int

val graph : t -> Ftagg_graph.Graph.t
(** The current topology: base graph plus every joined node and its
    attachment edges.  Retired nodes are still present (see
    {!retirement}); the value is memoized per membership value. *)

val total_n : t -> int
(** Nodes ever part of the system — the current graph's id space. *)

val live : t -> int list
(** Node ids not yet retired, ascending.  The root is always live. *)

val retired : t -> int list
(** Retired node ids, ascending. *)

val joins : t -> int
(** Total nodes joined since generation 0. *)

val advance : t -> joins:int -> leaves:int -> t
(** One generation step: bump the generation counter, attach [joins]
    fresh nodes (each to [min 2 live] distinct live nodes picked by the
    membership's seeded rule), then retire [leaves] live non-root nodes
    (seeded uniform picks; silently fewer when not enough candidates
    remain).  Raises [Invalid_argument] on negative counts. *)

val join : t -> t * int
(** [advance ~joins:1 ~leaves:0], also returning the new node's id. *)

val leave : t -> node:int -> t
(** Retire one specific live node.  Raises [Invalid_argument] for the
    root, an unknown id, or an already-retired node. *)

val retirement : t -> Ftagg_sim.Failure.t
(** Every retired node as a round-1 crash over the current graph — merge
    it (via {!merge_failures}) with the per-run crash schedule so
    retired nodes never act. *)

val merge_failures : Ftagg_sim.Failure.t -> Ftagg_sim.Failure.t -> Ftagg_sim.Failure.t
(** Pointwise-earliest combination of two schedules over the same node
    count (a node crashes at the earlier of its two crash rounds).
    Raises [Invalid_argument] on mismatched sizes. *)

val key : t -> string
(** The generation-keyed digest: ["g<generation>:<16 hex>"] over the
    base recipe and the full event history.  Two memberships with equal
    keys have identical graphs and identical live sets; any [advance]
    (even one with zero effective events) changes the key, so a cache
    keyed on it can never serve a stale-generation outcome. *)

val pp : Format.formatter -> t -> unit
