(* Topology generations: a base recipe plus an ordered event history,
   with the evolved graph memoized per value.  Ids are append-only (a
   joined node gets the next fresh id, retirement never frees one), so
   an event history is a complete, replayable description and the
   digest below is a sound cache key. *)

module Prng = Ftagg_util.Prng
module Graph = Ftagg_graph.Graph
module Gen = Ftagg_graph.Gen
module Failure = Ftagg_sim.Failure
module Incident = Ftagg_chaos.Incident

type event = Join of { node : int; targets : int list } | Leave of int

type t = {
  family : Gen.family;
  base_n : int;
  seed : int;
  generation : int;
  events : event list;  (* reverse chronological *)
  graph : Graph.t lazy_t;
}

let joins t =
  List.fold_left (fun acc e -> match e with Join _ -> acc + 1 | Leave _ -> acc) 0 t.events

let total_n t = t.base_n + joins t

let retired t =
  List.sort compare (List.filter_map (function Leave u -> Some u | Join _ -> None) t.events)

let live t =
  let gone = retired t in
  List.filter (fun u -> not (List.mem u gone)) (List.init (total_n t) Fun.id)

let generation t = t.generation
let graph t = Lazy.force t.graph

let build_graph ~family ~base_n ~seed ~events =
  let n = base_n + List.fold_left (fun a e -> match e with Join _ -> a + 1 | _ -> a) 0 events in
  Graph.of_iter ~n (fun emit ->
      Gen.iter_edges family ~n:base_n ~seed emit;
      List.iter
        (function Join { node; targets } -> List.iter (fun v -> emit node v) targets | Leave _ -> ())
        events)

let with_events t ~generation events =
  let family = t.family and base_n = t.base_n and seed = t.seed in
  {
    t with
    generation;
    events;
    graph = lazy (build_graph ~family ~base_n ~seed ~events);
  }

let create ~family ~n ~seed =
  {
    family;
    base_n = n;
    seed;
    generation = 0;
    events = [];
    graph = lazy (build_graph ~family ~base_n:n ~seed ~events:[]);
  }

(* Seeded streams for join attachment and leave selection.  Keyed on the
   event's position in history (the fresh node id for joins, the event
   count for leaves) so inserting an event never reshuffles earlier
   decisions. *)
let event_rng t ~purpose ~k =
  let h = ref 0xcbf29ce484222325L in
  let mix s =
    String.iter
      (fun c ->
        h := Int64.logxor !h (Int64.of_int (Char.code c));
        h := Int64.mul !h 0x100000001b3L)
      s
  in
  mix (string_of_int t.seed);
  mix purpose;
  mix (string_of_int k);
  Prng.create (Int64.to_int !h)

let attach_targets t ~node =
  let candidates = Array.of_list (live t) in
  let g = event_rng t ~purpose:"join" ~k:node in
  Prng.shuffle g candidates;
  Array.to_list (Array.sub candidates 0 (min 2 (Array.length candidates)))

let join t =
  let node = total_n t in
  let targets = attach_targets t ~node in
  (with_events t ~generation:(t.generation + 1) (Join { node; targets } :: t.events), node)

let leave t ~node =
  if node = Graph.root then invalid_arg "Membership.leave: the root never leaves";
  if node < 0 || node >= total_n t then invalid_arg "Membership.leave: unknown node";
  if List.mem node (retired t) then invalid_arg "Membership.leave: node already retired";
  with_events t ~generation:(t.generation + 1) (Leave node :: t.events)

let advance t ~joins:j ~leaves =
  if j < 0 || leaves < 0 then invalid_arg "Membership.advance: negative event count";
  let t' = ref { t with generation = t.generation + 1 } in
  for _ = 1 to j do
    let node = total_n !t' in
    let targets = attach_targets !t' ~node in
    t' := with_events !t' ~generation:!t'.generation (Join { node; targets } :: !t'.events)
  done;
  for i = 1 to leaves do
    let candidates = Array.of_list (List.filter (fun u -> u <> Graph.root) (live !t')) in
    if Array.length candidates > 0 then begin
      let g = event_rng !t' ~purpose:"leave" ~k:(List.length !t'.events + i) in
      let node = candidates.(Prng.int g (Array.length candidates)) in
      t' := with_events !t' ~generation:!t'.generation (Leave node :: !t'.events)
    end
  done;
  !t'

let retirement t =
  Failure.of_list ~n:(total_n t) (List.map (fun u -> (u, 1)) (retired t))

let merge_failures a b =
  let ra = Failure.crash_rounds a and rb = Failure.crash_rounds b in
  if Array.length ra <> Array.length rb then
    invalid_arg "Membership.merge_failures: schedules over different node counts";
  Failure.of_crash_rounds (Array.init (Array.length ra) (fun i -> min ra.(i) rb.(i)))

let key t =
  let canonical =
    String.concat "|"
      (Incident.family_to_string t.family
      :: string_of_int t.base_n
      :: string_of_int t.seed
      :: List.rev_map
           (function
             | Join { node; targets } ->
               Printf.sprintf "j%d<%s" node (String.concat "," (List.map string_of_int targets))
             | Leave u -> Printf.sprintf "l%d" u)
           t.events)
  in
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h 0x100000001b3L)
    canonical;
  Printf.sprintf "g%d:%016Lx" t.generation !h

let pp ppf t =
  Format.fprintf ppf "generation %d: %d nodes (%d joined, %d retired)" t.generation (total_n t)
    (joins t)
    (List.length (retired t))
