module Bench_io = Ftagg_runner.Bench_io
module Obs = Ftagg_obs.Obs
module Export = Ftagg_obs.Export
module Registry = Ftagg_obs.Registry

type config = {
  settings : Reconfig.settings;
  checkpoint_path : string option;
  store_dir : string option;  (* shared on-disk outcome store (L2 cache) *)
  name : string;
}

let default_config =
  { settings = Reconfig.default; checkpoint_path = None; store_dir = None; name = "ftagg-serve" }

type t = {
  scheduler : Scheduler.t;
  config : config;
  obs : Obs.t;
  mutable shutdown : bool;
  mutable restored : int;  (* pending jobs recovered from the checkpoint *)
  restore_error : string option;  (* why the checkpoint was not restored *)
  store_error : string option;  (* why the store was not opened *)
}

let scheduler t = t.scheduler
let obs t = t.obs
let shutdown_requested t = t.shutdown
let checkpoint_path t = t.config.checkpoint_path
let restore_error t = t.restore_error
let store_error t = t.store_error
let store t = Scheduler.store t.scheduler

let create ?obs config =
  let obs = match obs with Some o -> o | None -> Obs.create ~name:config.name () in
  let restored_state, restore_error =
    match config.checkpoint_path with
    | Some path when Sys.file_exists path -> (
      match Checkpoint.load ~path with
      | Ok state -> (Some state, None)
      (* A corrupt checkpoint must not brick the server: start empty, but
         surface the reason so callers can warn (or, for a handoff
         successor, refuse to adopt). *)
      | Error e -> (None, Some e))
    | _ -> (None, None)
  in
  let store, store_error =
    match config.store_dir with
    | None -> (None, None)
    | Some dir -> (
      match Ftagg_store.Store.open_ ~registry:(Obs.registry obs) ~dir () with
      | Ok s -> (Some s, None)
      (* Same stance as a corrupt checkpoint: an unopenable store must
         not brick the server — run without the L2 and surface why. *)
      | Error e -> (None, Some e))
  in
  let scheduler =
    match restored_state with
    | Some state ->
      Scheduler.restore ~obs ?checkpoint_path:config.checkpoint_path ?store
        ~settings:config.settings state
    | None ->
      Scheduler.create ~obs ?checkpoint_path:config.checkpoint_path ?store
        ~settings:config.settings ()
  in
  {
    scheduler;
    config;
    obs;
    shutdown = false;
    restored =
      (match restored_state with
      | Some s -> List.length s.Checkpoint.s_pending
      | None -> 0);
    restore_error;
    store_error;
  }

let restored_backlog t = t.restored

(* ---- responses (always a single line) ---- *)

let line json = Bench_io.to_string ~indent:false json

let ok op fields = line (Bench_io.Obj (("ok", Bench_io.Bool true) :: ("op", Bench_io.String op) :: fields))

let err ?op error fields =
  let op_field = match op with Some o -> [ ("op", Bench_io.String o) ] | None -> [] in
  line
    (Bench_io.Obj
       ((("ok", Bench_io.Bool false) :: op_field) @ (("error", Bench_io.String error) :: fields)))

let completion_to_json (c : Scheduler.completion) =
  let base =
    [
      ("id", Bench_io.String c.Scheduler.id);
      ("tenant", Bench_io.String c.Scheduler.tenant);
      ("digest", Bench_io.String c.Scheduler.digest);
      ("cached", Bench_io.Bool c.Scheduler.cached);
    ]
  in
  match c.Scheduler.outcome with
  | Ok o -> Bench_io.Obj (base @ [ ("outcome", Job.outcome_to_json o) ])
  | Error e -> Bench_io.Obj (base @ [ ("failed", Bench_io.String e) ])

let depth_field t = ("depth", Bench_io.Int (Scheduler.depth t.scheduler))

let cache_json t =
  let s = Scheduler.cache_stats t.scheduler in
  Bench_io.Obj
    [
      ("hits", Bench_io.Int s.Cache.hits);
      ("misses", Bench_io.Int s.Cache.misses);
      ("evictions", Bench_io.Int s.Cache.evictions);
      ("entries", Bench_io.Int s.Cache.entries);
      ("capacity", Bench_io.Int s.Cache.s_capacity);
    ]

(* ---- request dispatch ---- *)

let handle_submit t json =
  match Bench_io.member "job" json with
  | None -> err ~op:"submit" "bad_request" [ ("detail", Bench_io.String "missing job object") ]
  | Some job_json -> (
    match Job.of_json ~settings:(Scheduler.settings t.scheduler) job_json with
    | Error reason -> err ~op:"submit" "bad_request" [ ("detail", Bench_io.String reason) ]
    | Ok spec -> (
      match Scheduler.submit t.scheduler spec with
      | Ok id ->
        ok "submit"
          [
            ("id", Bench_io.String id);
            ("digest", Bench_io.String (Job.digest spec));
            ("status", Bench_io.String "queued");
            depth_field t;
          ]
      | Error reject ->
        err ~op:"submit" "backpressure"
          [
            ("reason", Bench_io.String (Queue.reject_reason reject));
            ("detail", Bench_io.String (Queue.reject_detail reject));
            depth_field t;
          ]))

let handle_tick t json =
  let max =
    Option.bind (Bench_io.member "max" json) Bench_io.to_int
  in
  let completions = Scheduler.tick ?max t.scheduler () in
  ok "tick"
    [
      ("completed", Bench_io.List (List.map completion_to_json completions));
      depth_field t;
    ]

let handle_drain t =
  let completions = Scheduler.drain t.scheduler in
  ok "drain"
    [
      ("completed", Bench_io.List (List.map completion_to_json completions));
      depth_field t;
    ]

let handle_get t json =
  match Bench_io.member "id" json with
  | Some (Bench_io.String id) -> (
    match Scheduler.result t.scheduler id with
    | Some c -> ok "get" [ ("found", Bench_io.Bool true); ("completion", completion_to_json c) ]
    | None -> ok "get" [ ("found", Bench_io.Bool false); ("id", Bench_io.String id) ])
  | _ -> err ~op:"get" "bad_request" [ ("detail", Bench_io.String "missing string id") ]

let handle_cancel t json =
  match Bench_io.member "id" json with
  | Some (Bench_io.String id) ->
    ok "cancel" [ ("id", Bench_io.String id); ("cancelled", Bench_io.Bool (Scheduler.cancel t.scheduler id)); depth_field t ]
  | _ -> err ~op:"cancel" "bad_request" [ ("detail", Bench_io.String "missing string id") ]

let store_json t =
  match Scheduler.store_stats t.scheduler with
  | None -> []
  | Some s ->
    [
      ( "store",
        Bench_io.Obj
          [
            ("hits", Bench_io.Int s.Ftagg_store.Store.s_hits);
            ("misses", Bench_io.Int s.Ftagg_store.Store.s_misses);
            ("appends", Bench_io.Int s.Ftagg_store.Store.s_appends);
            ("entries", Bench_io.Int s.Ftagg_store.Store.s_entries);
            ("segments", Bench_io.Int s.Ftagg_store.Store.s_segments);
          ] );
    ]

let handle_status t =
  ok "status"
    ([
       depth_field t;
       ( "tenants",
         Bench_io.List (List.map (fun s -> Bench_io.String s) (Scheduler.tenants t.scheduler)) );
       ("completed", Bench_io.Int (Scheduler.completed_count t.scheduler));
       ("tick", Bench_io.Int (Scheduler.tick_count t.scheduler));
       ("restored", Bench_io.Int t.restored);
       ("cache", cache_json t);
     ]
    @ store_json t
    @ [ ("settings", Reconfig.settings_to_json (Scheduler.settings t.scheduler)) ])

let handle_reconfig t json =
  match Bench_io.member "set" json with
  | None -> err ~op:"reconfig" "bad_request" [ ("detail", Bench_io.String "missing set object") ]
  | Some patch_json -> (
    match Reconfig.of_json patch_json with
    | Error reason -> err ~op:"reconfig" "bad_request" [ ("detail", Bench_io.String reason) ]
    | Ok patch ->
      let settings = Scheduler.reconfig t.scheduler patch in
      ok "reconfig"
        [
          ("applied", Bench_io.List (List.map (fun s -> Bench_io.String s) (Reconfig.touched patch)));
          ("settings", Reconfig.settings_to_json settings);
        ])

let handle_checkpoint t =
  match Scheduler.checkpoint_now t.scheduler with
  | Some path ->
    ok "checkpoint"
      [
        ("path", Bench_io.String path);
        depth_field t;
        ("completed", Bench_io.Int (Scheduler.completed_count t.scheduler));
      ]
  | None ->
    err ~op:"checkpoint" "no_checkpoint_path"
      [ ("detail", Bench_io.String "server started without --checkpoint") ]

let handle_metrics t =
  ok "metrics" [ ("prometheus", Bench_io.String (Export.prometheus (Scheduler.registry t.scheduler))) ]

let handle_shutdown t json =
  let drain =
    match Option.bind (Bench_io.member "drain" json) Bench_io.to_bool with
    | Some b -> b
    | None -> false
  in
  let drained = if drain then List.length (Scheduler.drain t.scheduler) else 0 in
  t.shutdown <- true;
  ok "shutdown" [ ("drained", Bench_io.Int drained); depth_field t ]

let dispatch t json =
  match Bench_io.member "op" json with
  | Some (Bench_io.String op) -> (
    match op with
    | "submit" -> handle_submit t json
    | "tick" -> handle_tick t json
    | "drain" -> handle_drain t
    | "get" -> handle_get t json
    | "cancel" -> handle_cancel t json
    | "status" -> handle_status t
    | "reconfig" -> handle_reconfig t json
    | "checkpoint" -> handle_checkpoint t
    | "metrics" -> handle_metrics t
    | "shutdown" -> handle_shutdown t json
    | other -> err "unknown_op" [ ("op", Bench_io.String other) ])
  | _ -> err "bad_request" [ ("detail", Bench_io.String "missing op field") ]

(* Overwrite the job's claimed tenant with the connection's: on a shared
   transport the handshake, not the request body, is the identity.  Only
   [submit] carries a tenant; every other op passes through untouched. *)
let stamp_tenant tenant json =
  match (Bench_io.member "op" json, json) with
  | Some (Bench_io.String "submit"), Bench_io.Obj fields -> (
    match List.assoc_opt "job" fields with
    | Some (Bench_io.Obj job_fields) ->
      let job_fields =
        ("tenant", Bench_io.String tenant) :: List.remove_assoc "tenant" job_fields
      in
      Bench_io.Obj
        (List.map
           (fun (k, v) -> if k = "job" then (k, Bench_io.Obj job_fields) else (k, v))
           fields)
    | _ -> json (* a missing/malformed job object fails validation downstream *))
  | _ -> json

let handle_as ?tenant t line_text =
  match Bench_io.of_string line_text with
  | Error e -> err "parse" [ ("detail", Bench_io.String e) ]
  | Ok json ->
    let json = match tenant with Some ten -> stamp_tenant ten json | None -> json in
    dispatch t json

let handle t line_text = handle_as t line_text

let finish t =
  (* Final checkpoint so a plain EOF (or a kill between auto-checkpoints
     followed by a clean restart of the pipeline) loses nothing that was
     completed before the last response was written. *)
  ignore (Scheduler.checkpoint_now t.scheduler)

let serve t ic oc =
  let rec loop () =
    if t.shutdown then ()
    else
      match input_line ic with
      | exception End_of_file -> ()
      | line_text ->
        if String.trim line_text <> "" then begin
          output_string oc (handle t line_text);
          output_char oc '\n';
          flush oc
        end;
        loop ()
  in
  loop ();
  finish t;
  0
