(* Bounded admission queue with per-tenant round-robin fairness.

   Entries live in one FIFO list per tenant (held in arrival order; pop
   scans the tenant's list for its (priority, seq)-minimal entry, so
   higher priority wins and arrival order breaks ties).  Tenants take
   turns: a rotation list in first-seen order is walked from the front,
   the first tenant with work is served and moved to the back.  A tenant
   flooding the queue therefore delays its own jobs, not other tenants'. *)

type 'a entry = { e_priority : int; e_seq : int; e_item : 'a }

type 'a t = {
  mutable capacity : int;
  mutable length : int;
  mutable seq : int;
  buckets : (string, 'a entry list ref) Hashtbl.t;  (* per-tenant, arrival order *)
  mutable rotation : string list;  (* tenants, next-to-serve first *)
}

type reject = Queue_full of { depth : int; capacity : int }

let reject_reason (Queue_full _) = "queue_full"

let reject_detail (Queue_full { depth; capacity }) =
  Printf.sprintf "queue full: %d queued = capacity %d" depth capacity

let create ~capacity =
  if capacity < 0 then invalid_arg "Queue.create: capacity must be >= 0";
  { capacity; length = 0; seq = 0; buckets = Hashtbl.create 8; rotation = [] }

let length t = t.length
let is_empty t = t.length = 0
let capacity t = t.capacity

let set_capacity t capacity =
  (* Shrinking never drops already-admitted jobs; it only gates future
     submissions. *)
  if capacity < 0 then invalid_arg "Queue.set_capacity: capacity must be >= 0";
  t.capacity <- capacity

let submit t ~tenant ~priority item =
  if t.length >= t.capacity then Error (Queue_full { depth = t.length; capacity = t.capacity })
  else begin
    t.seq <- t.seq + 1;
    let entry = { e_priority = priority; e_seq = t.seq; e_item = item } in
    (match Hashtbl.find_opt t.buckets tenant with
    | Some bucket -> bucket := !bucket @ [ entry ]
    | None ->
      Hashtbl.replace t.buckets tenant (ref [ entry ]);
      t.rotation <- t.rotation @ [ tenant ]);
    t.length <- t.length + 1;
    Ok ()
  end

(* The (priority, seq)-minimal entry of a bucket, removed. *)
let take_best bucket =
  match !bucket with
  | [] -> None
  | first :: _ ->
    let best =
      List.fold_left
        (fun best e ->
          if (e.e_priority, e.e_seq) < (best.e_priority, best.e_seq) then e else best)
        first !bucket
    in
    bucket := List.filter (fun e -> e.e_seq <> best.e_seq) !bucket;
    Some best

let pop t =
  let rec go scanned = function
    | [] -> None
    | tenant :: rest -> (
      let bucket = Hashtbl.find t.buckets tenant in
      match take_best bucket with
      | Some e ->
        t.length <- t.length - 1;
        (* Served tenant goes to the back; tenants we skipped keep their
           place at the front. *)
        t.rotation <- List.rev_append scanned (rest @ [ tenant ]);
        Some (tenant, e.e_item)
      | None -> go (tenant :: scanned) rest)
  in
  go [] t.rotation

let remove t pred =
  let removed = ref [] in
  Hashtbl.iter
    (fun _ bucket ->
      let keep, drop = List.partition (fun e -> not (pred e.e_item)) !bucket in
      bucket := keep;
      removed := !removed @ List.map (fun e -> e.e_item) drop)
    t.buckets;
  t.length <- t.length - List.length !removed;
  !removed

let tenants t =
  List.filter (fun tenant -> !(Hashtbl.find t.buckets tenant) <> []) t.rotation

let to_list t =
  (* Snapshot in pop order without disturbing the live queue: copy the
     mutable state and pop the copy dry. *)
  let copy =
    {
      capacity = t.capacity;
      length = t.length;
      seq = t.seq;
      buckets = Hashtbl.copy t.buckets;
      rotation = t.rotation;
    }
  in
  Hashtbl.iter (fun tenant bucket -> Hashtbl.replace copy.buckets tenant (ref !bucket)) t.buckets;
  let rec drain acc = match pop copy with None -> List.rev acc | Some (_, x) -> drain (x :: acc) in
  drain []
