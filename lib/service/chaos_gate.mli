(** Run chaos-campaign trials {e through} the service.

    {!via} adapts a {!Scheduler.t} into the
    [Ftagg_chaos.Campaign.config.via] hook: each trial's scenario is
    submitted as a [Chaos_pair] job (tenant ["chaos"], high priority),
    driven to completion by ticking the scheduler, and its watched-pair
    report returned to the campaign.  Admission rejections (full queue)
    and deliberate cancellations return [None], which the campaign counts
    as rejected trials — so a campaign exercises the service's
    backpressure and cancellation paths under adversarial crashes, not
    just the happy path. *)

val spec_of_scenario : Ftagg_chaos.Incident.scenario -> Job.spec
(** The job a trial becomes.  The scenario's schedule is already
    materialized, so the job replays it obliviously (adaptive adversaries
    are replayed as their recorded decisions — the incident-replay
    contract). *)

val via :
  ?cancel_every:int ->
  Scheduler.t ->
  Ftagg_chaos.Incident.scenario ->
  Ftagg_chaos.Campaign.pair_report option
(** [via ~cancel_every sched] is the campaign hook.  When
    [cancel_every = k > 0], every k-th submitted trial is cancelled
    before dispatch (returns [None]).  Default [0] — never cancel. *)
