(** A service request: one aggregation computation, self-contained.

    A {!spec} carries everything needed to reproduce the run — topology
    recipe (family, [n], seed), inputs, protocol parameters and the
    failure adversary — plus service-side envelope fields (tenant,
    priority, deadline).  Specs are fully {e resolved} at admission: a
    submitted job that omitted [b] / [f] got them from the then-current
    {!Reconfig.settings}, so a spec means the same thing forever after,
    across checkpoints and reconfigurations.

    The {!digest} is the cache key: a 64-bit FNV-1a over the canonical
    form of every field that affects the computation.  Envelope fields
    (tenant, priority, deadline) are excluded, so identical questions
    from different tenants share one cache entry. *)

type priority = High | Normal | Low

val priority_to_string : priority -> string
val priority_of_string : string -> priority option

val priority_rank : priority -> int
(** [High] → 0, [Normal] → 1, [Low] → 2 — the admission queue's order. *)

type protocol =
  | Tradeoff of { b : int; f : int }  (** Algorithm 1 *)
  | Brute  (** brute-force baseline *)
  | Unknown_f  (** the doubling-trick protocol *)
  | Chaos_pair of { bit_cap : int option }
      (** a watchdog-watched AGG+VERI pair via {!Ftagg_chaos.Campaign.run_pair}
          — the campaign-through-the-service transport *)

type failure_spec =
  | Generated of { mode : string; budget : int }
      (** one of [none]/[random]/[burst]/[chain]/[neighborhood], derived
          deterministically from the job seed *)
  | Explicit of (int * int) list  (** materialized [(node, round)] crashes *)

type spec = {
  tenant : string;
  family : Ftagg_graph.Gen.family;
  n : int;
  topo_seed : int;
  inputs : int array;
  c : int;
  t : int;
  caaf : string;  (** aggregate name ([sum], [max], …) — validated at parse *)
  protocol : protocol;
  failures : failure_spec;
  seed : int;
  generation : int;
      (** topology generation the request was made under (see
          {!Ftagg_churn.Membership}); 0 for static-membership jobs *)
  deadline : int option;
      (** max scheduler ticks the job may wait in the queue; [None] waits
          forever *)
  priority : priority;
}

type outcome = {
  value : int option;  (** the root's answer; [None] on abort / halted run *)
  correct : bool;
  cc : int;
  rounds : int;
  flooding_rounds : int;
  via : string;  (** how the value was obtained (interval, fallback, …) *)
  violation : string option;  (** watchdog invariant, chaos-pair jobs only *)
}

type executed = {
  outcome : outcome;
  report : Ftagg_chaos.Campaign.pair_report option;
      (** full chaos report for [Chaos_pair] jobs — runtime-only, never
          serialized (checkpoint-restored cache entries carry [None]) *)
}

val caaf_of_name : string -> Ftagg_caaf.Caaf.t option

val digest : spec -> string
(** 16 hex chars, stable across processes and checkpoints.  Deliberately
    {e excludes} the generation — the digest identifies the computation;
    staleness is the cache key's business (see {!cache_key}). *)

val cache_key : spec -> string
(** What the result cache and the shared store are keyed on: the
    {!digest} alone at generation 0, ["<digest>@g<generation>"]
    otherwise.  A generation-[g] job can therefore never hit an outcome
    cached under generation [g - 1], even when the spec digests agree —
    the topology may have churned underneath it. *)

val to_json : spec -> Ftagg_runner.Bench_io.json
(** The resolved wire/checkpoint form; [of_json ∘ to_json] is the
    identity on specs. *)

val of_json :
  settings:Reconfig.settings -> Ftagg_runner.Bench_io.json -> (spec, string) result
(** Parse a job object, filling defaults ([tenant "default"], grid 36,
    [b]/[f] from [settings], random inputs from the seed, …).  Every
    validation failure is a [Error reason] — the server answers it as a
    bad request, never by dying. *)

val outcome_to_json : outcome -> Ftagg_runner.Bench_io.json
val outcome_of_json : Ftagg_runner.Bench_io.json -> (outcome, string) result

val execute : spec -> executed
(** Run the job: build the graph, derive parameters, materialize the
    adversary, drive the protocol.  Pure function of the spec — this is
    what makes the digest a sound cache key. *)
