(** Bounded admission queue with backpressure and per-tenant fairness.

    Admission is bounded: {!submit} on a full queue is rejected with a
    structured {!reject} reason (the server turns it into a backpressure
    response; nothing blocks).  Dispatch is fair: tenants are served
    round-robin in first-seen order, so one tenant's burst cannot starve
    another's single job.  Within a tenant, lower {e priority numbers}
    pop first ([0] = most urgent) and arrival order breaks ties.

    Not thread-safe — the scheduler owns the queue and serializes access
    (jobs run on domains; admission does not). *)

type 'a t

type reject = Queue_full of { depth : int; capacity : int }

val reject_reason : reject -> string
(** Machine-readable tag, ["queue_full"]. *)

val reject_detail : reject -> string
(** Human-readable sentence for logs and responses. *)

val create : capacity:int -> 'a t
(** [capacity = 0] rejects every submission.  Raises [Invalid_argument]
    on a negative capacity. *)

val submit : 'a t -> tenant:string -> priority:int -> 'a -> (unit, reject) result

val pop : 'a t -> (string * 'a) option
(** Next [(tenant, item)] under round-robin fairness, or [None] when
    empty. *)

val remove : 'a t -> ('a -> bool) -> 'a list
(** Remove (and return) every queued item matching the predicate — the
    cancellation path.  Order of the returned list is unspecified. *)

val length : 'a t -> int
val is_empty : 'a t -> bool
val capacity : 'a t -> int

val set_capacity : 'a t -> int -> unit
(** Live-resize (the {!Reconfig} path).  Shrinking below the current
    depth keeps already-admitted jobs and only gates new submissions. *)

val tenants : 'a t -> string list
(** Tenants with at least one queued job, in rotation order. *)

val to_list : 'a t -> 'a list
(** Snapshot of the queued items in pop order (the checkpoint view);
    does not disturb the queue. *)
