(* The campaign-through-the-service transport.

   [Ftagg_chaos.Campaign] normally executes each trial's watched pair
   in-process.  [via] instead turns the trial's scenario into a
   [Chaos_pair] job, pushes it through the scheduler's admission queue
   (so a full queue rejects the trial — backpressure under chaos), and
   optionally cancels every k-th trial before it runs to exercise the
   cancellation path.  Rejected and cancelled trials surface as the
   campaign's [o_rejected] count.

   Note the transport is oblivious: the scenario's schedule is
   materialized before submission, so an adaptive adversary's online
   decisions are not re-consulted inside the service.  That is the same
   contract as incident replay. *)

module Incident = Ftagg_chaos.Incident
module Campaign = Ftagg_chaos.Campaign

let spec_of_scenario (sc : Incident.scenario) =
  {
    Job.tenant = "chaos";
    family = sc.Incident.family;
    n = sc.Incident.n;
    topo_seed = sc.Incident.topo_seed;
    inputs = sc.Incident.inputs;
    c = sc.Incident.c;
    t = sc.Incident.t;
    caaf = "sum";
    protocol = Job.Chaos_pair { bit_cap = sc.Incident.bit_cap };
    failures = Job.Explicit sc.Incident.schedule;
    seed = sc.Incident.run_seed;
    generation = 0;
    deadline = None;
    priority = Job.High;
  }

let via ?(cancel_every = 0) scheduler =
  let trial = ref 0 in
  fun (sc : Incident.scenario) ->
    incr trial;
    match Scheduler.submit scheduler (spec_of_scenario sc) with
    | Error _ -> None (* backpressure: the service refused the trial *)
    | Ok id ->
      if cancel_every > 0 && !trial mod cancel_every = 0 && Scheduler.cancel scheduler id then
        None (* cancelled before dispatch: the trial never ran *)
      else begin
        (* Tick until this job surfaces; chaos jobs are High priority, so
           a handful of ticks bounds the wait even with a backlog. *)
        let rec await () =
          match Scheduler.result scheduler id with
          | Some completion -> completion
          | None ->
            ignore (Scheduler.tick scheduler ());
            await ()
        in
        let completion = await () in
        match completion.Scheduler.report with
        | Some report -> Some report
        | None ->
          (* A cache hit whose entry predates this process (restored from
             a checkpoint) has no report attached; re-run the oracle
             in-process — still deterministic, same scenario. *)
          Some (Campaign.run_pair sc)
      end
