(** The aggregation server: a line-based JSON request/response protocol
    over any channel pair (the CLI wires it to stdin/stdout, tests call
    {!handle} directly — no sockets anywhere, so the whole protocol is
    scriptable and deterministic).

    Every request is one JSON object on one line with an ["op"] field;
    every response is one line, [{"ok": true, ...}] or
    [{"ok": false, "error": ...}].  A malformed line gets an error
    {e response} — it never kills the server.  Ops:

    - [submit]: admit [{"op":"submit","job":{...}}] (see {!Job.of_json});
      answers with the job id and digest, or a [backpressure] error with
      the queue-full reason.
    - [tick] (optional ["max"]): run one dispatch round; answers with the
      completions.
    - [drain]: run the whole backlog.
    - [get] / [cancel]: by id.
    - [status]: depth, tenants, cache stats, settings, restored backlog.
    - [reconfig]: [{"op":"reconfig","set":{"default_b":126,...}}] — live
      patch via {!Reconfig}, applied at a job boundary.
    - [checkpoint]: force a snapshot now.
    - [metrics]: the Prometheus rendering of the service registry.
    - [shutdown] (optional ["drain"]: true): finish and exit the serve
      loop.

    Except for [metrics] (which {e is} telemetry), every response is
    byte-identical whether telemetry is globally enabled or not: response
    fields come from the scheduler's own state, never from the registry. *)

type config = {
  settings : Reconfig.settings;
  checkpoint_path : string option;
      (** enables resume-on-start (loaded when the file exists), periodic
          auto-checkpoints, the [checkpoint] op, and a final snapshot on
          exit *)
  store_dir : string option;
      (** directory of the shared on-disk outcome store; when set, the
          scheduler gains it as an L2 behind the LRU cache and every
          fresh execution is appended for other fleet members to reuse *)
  name : string;  (** labels the telemetry sink *)
}

val default_config : config

type t

val create : ?obs:Ftagg_obs.Obs.t -> config -> t
(** Build the server; when [config.checkpoint_path] names an existing,
    readable checkpoint, the scheduler resumes from it (a corrupt file is
    ignored rather than fatal). *)

val handle : t -> string -> string
(** One request line in, one response line out — the whole protocol,
    usable without any process machinery. *)

val handle_as : ?tenant:string -> t -> string -> string
(** {!handle} on behalf of an authenticated client: [tenant] (when
    given) is stamped over the [job.tenant] of every [submit] before
    dispatch, so a transport that binds identity at the connection (the
    socket listener's [hello] handshake) makes tenant spoofing through
    the request body impossible.  [handle] is [handle_as] with no
    tenant. *)

val serve : t -> in_channel -> out_channel -> int
(** Read requests until EOF or a [shutdown] op, writing one response line
    per request (blank lines are skipped); writes a final checkpoint when
    configured.  Returns the process exit code (0). *)

val scheduler : t -> Scheduler.t
val obs : t -> Ftagg_obs.Obs.t
val shutdown_requested : t -> bool

val restored_backlog : t -> int
(** Pending jobs recovered from the checkpoint at startup. *)

val checkpoint_path : t -> string option
(** The configured checkpoint path (what a handoff successor resumes
    from). *)

val restore_error : t -> string option
(** Why the startup checkpoint was {e not} restored ([Some] iff a file
    existed but was torn/corrupt/unreadable).  The server still starts —
    empty — but callers that need the state (the CLI's warning banner,
    [--takeover]) can refuse or report. *)

val store : t -> Ftagg_store.Store.t option
(** The shared outcome store, when [config.store_dir] was set and opened. *)

val store_error : t -> string option
(** Why the store was {e not} opened ([Some] iff [store_dir] was set but
    unopenable); the server runs without the L2 rather than bricking. *)

val finish : t -> unit
(** Write the final checkpoint (what {!serve} does on exit) — for
    embedders driving {!handle} themselves. *)
