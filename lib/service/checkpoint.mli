(** Durable service state: the queue backlog and completed results as a
    {!Ftagg_runner.Bench_io} JSON document.

    A checkpoint holds the pending jobs {e in pop order} (resolved specs,
    so they survive any later reconfiguration), every completed result,
    and the id / tick counters.  Restoring re-admits the backlog in order
    (the fairness rotation restarts from scratch — an accepted loss) and
    re-seeds the result cache from the completed entries, so a duplicate
    submitted after a restart is still a cache hit.

    The format is versioned; {!load} rejects a version it does not
    understand rather than guessing. *)

type done_entry = {
  d_id : string;
  d_tenant : string;
  d_digest : string;
  d_cached : bool;
  d_outcome : (Job.outcome, string) result;
}

type state = {
  s_next_id : int;  (** the server's id counter, so ids never collide *)
  s_tick : int;  (** scheduler tick counter (deadline bookkeeping) *)
  s_pending : (string * Job.spec) list;  (** [(id, spec)] in pop order *)
  s_completed : done_entry list;  (** completion order *)
}

val empty : state
val version : int

val to_json : state -> Ftagg_runner.Bench_io.json
val of_json : Ftagg_runner.Bench_io.json -> (state, string) result

val save : path:string -> state -> unit
val load : path:string -> (state, string) result
