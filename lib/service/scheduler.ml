(* The service's job engine: admission (bounded queue, per-tenant
   fairness), dispatch (cache lookup, then a Sweep batch over domains),
   bookkeeping (results table, telemetry, auto-checkpoint).

   Everything is driven by explicit [tick] calls from a single thread —
   only [Job.execute] runs on domains, and jobs are pure functions of
   their specs, so there is no shared mutable state to guard.  Settings
   are re-read at job boundaries (admission and tick), which is what
   makes [reconfig] safe to apply at any time. *)

module Registry = Ftagg_obs.Registry
module Obs = Ftagg_obs.Obs
module Sweep = Ftagg_runner.Sweep
module Bench_io = Ftagg_runner.Bench_io
module Campaign = Ftagg_chaos.Campaign
module Store = Ftagg_store.Store

type queued = { q_id : string; q_spec : Job.spec; q_enqueued : int }

type completion = {
  id : string;
  tenant : string;
  digest : string;
  cached : bool;
  outcome : (Job.outcome, string) result;
  report : Campaign.pair_report option;
}

type t = {
  mutable settings : Reconfig.settings;
  queue : queued Queue.t;
  cache : Job.executed Cache.t;
  results : (string, completion) Hashtbl.t;
  mutable completed_order : string list;  (* reverse completion order *)
  mutable next_id : int;
  mutable tick_count : int;
  mutable since_checkpoint : int;
  checkpoint_path : string option;
  store : Store.t option;  (* shared on-disk L2 behind the LRU cache *)
  obs : Obs.t option;
  registry : Registry.t;
}

let registry t = t.registry
let settings t = t.settings
let depth t = Queue.length t.queue
let tenants t = Queue.tenants t.queue
let completed_count t = List.length t.completed_order
let cache_stats t = Cache.stats t.cache
let tick_count t = t.tick_count

let count t ?labels name k = Registry.incr t.registry ?labels name k
let set_depth_gauge t = Registry.set_gauge t.registry "service_queue_depth" (float_of_int (depth t))

let create ?obs ?checkpoint_path ?store ~settings () =
  let registry =
    match obs with Some o -> Obs.registry o | None -> Registry.create ()
  in
  {
    settings;
    queue = Queue.create ~capacity:settings.Reconfig.queue_capacity;
    cache = Cache.create ~registry ~capacity:settings.Reconfig.cache_capacity ();
    results = Hashtbl.create 64;
    completed_order = [];
    next_id = 1;
    tick_count = 0;
    since_checkpoint = 0;
    checkpoint_path;
    store;
    obs;
    registry;
  }

let store t = t.store
let store_stats t = Option.map Store.stats t.store

(* L2 lookup: a digest another process (or a previous life) already
   resolved is served from the shared store and promoted into the LRU,
   so repeats stay off the disk. *)
let store_find t digest =
  match t.store with
  | None -> None
  | Some store -> (
    match Store.find store digest with
    | None -> None
    | Some json -> (
      match Job.outcome_of_json json with
      | Error _ -> None
      | Ok outcome ->
        let executed = { Job.outcome; report = None } in
        Cache.add t.cache digest executed;
        Some executed))

(* Completions flow into the store as they happen, making them visible
   to every other fleet member.  [Store.add] dedupes on digest. *)
let store_put t digest (executed : Job.executed) =
  match t.store with
  | None -> ()
  | Some store -> Store.add store digest (Job.outcome_to_json executed.Job.outcome)

let fresh_id t =
  let id = Printf.sprintf "j%d" t.next_id in
  t.next_id <- t.next_id + 1;
  id

let submit t (spec : Job.spec) =
  let id = fresh_id t in
  let entry = { q_id = id; q_spec = spec; q_enqueued = t.tick_count } in
  match
    Queue.submit t.queue ~tenant:spec.Job.tenant
      ~priority:(Job.priority_rank spec.Job.priority) entry
  with
  | Ok () ->
    count t ~labels:[ ("tenant", spec.Job.tenant) ] "service_jobs_submitted_total" 1;
    set_depth_gauge t;
    Ok id
  | Error reject ->
    count t "service_jobs_rejected_total" 1;
    set_depth_gauge t;
    Error reject

let cancel t id =
  match Queue.remove t.queue (fun q -> q.q_id = id) with
  | [] -> false
  | _ :: _ ->
    count t "service_jobs_cancelled_total" 1;
    set_depth_gauge t;
    true

let result t id = Hashtbl.find_opt t.results id

let record_completion t completion =
  Hashtbl.replace t.results completion.id completion;
  t.completed_order <- completion.id :: t.completed_order;
  t.since_checkpoint <- t.since_checkpoint + 1;
  count t ~labels:[ ("tenant", completion.tenant) ] "service_jobs_completed_total" 1;
  (match completion.outcome with
  | Ok o -> Registry.observe t.registry "service_job_rounds" (float_of_int o.Job.rounds)
  | Error _ -> count t "service_jobs_failed_total" 1);
  match t.obs with
  | None -> ()
  | Some obs ->
    Obs.event obs ~kind:"job_completed"
      [
        ("id", Bench_io.String completion.id);
        ("tenant", Bench_io.String completion.tenant);
        ("digest", Bench_io.String completion.digest);
        ("cached", Bench_io.Bool completion.cached);
        ( "outcome",
          match completion.outcome with
          | Ok o -> Job.outcome_to_json o
          | Error e -> Bench_io.String e );
      ]

(* ---- checkpointing ---- *)

let snapshot t =
  {
    Checkpoint.s_next_id = t.next_id;
    s_tick = t.tick_count;
    s_pending = List.map (fun q -> (q.q_id, q.q_spec)) (Queue.to_list t.queue);
    s_completed =
      List.rev_map
        (fun id ->
          let c = Hashtbl.find t.results id in
          {
            Checkpoint.d_id = c.id;
            d_tenant = c.tenant;
            d_digest = c.digest;
            d_cached = c.cached;
            d_outcome = c.outcome;
          })
        t.completed_order;
  }

let checkpoint_now t =
  match t.checkpoint_path with
  | None -> None
  | Some path ->
    Checkpoint.save ~path (snapshot t);
    t.since_checkpoint <- 0;
    count t "service_checkpoints_total" 1;
    Some path

let maybe_checkpoint t =
  let every = t.settings.Reconfig.checkpoint_every in
  if every > 0 && t.since_checkpoint >= every then ignore (checkpoint_now t)

let restore ?obs ?checkpoint_path ?store ~settings (state : Checkpoint.state) =
  let t = create ?obs ?checkpoint_path ?store ~settings () in
  t.next_id <- state.Checkpoint.s_next_id;
  t.tick_count <- state.Checkpoint.s_tick;
  (* Completed results re-seed the results table.  Without a store they
     also re-seed the cache; with one, re-seeding is deduplicated against
     it — a digest the store already holds is served from L2 on demand,
     and only genuinely new outcomes (completed after the store's last
     sight of this scheduler) are appended.  Either way no cache hit or
     miss counter moves: restore is bookkeeping, not lookups. *)
  List.iter
    (fun (d : Checkpoint.done_entry) ->
      let completion =
        {
          id = d.Checkpoint.d_id;
          tenant = d.Checkpoint.d_tenant;
          digest = d.Checkpoint.d_digest;
          cached = d.Checkpoint.d_cached;
          outcome = d.Checkpoint.d_outcome;
          report = None;
        }
      in
      Hashtbl.replace t.results completion.id completion;
      t.completed_order <- completion.id :: t.completed_order;
      match d.Checkpoint.d_outcome with
      | Ok o -> (
        let executed = { Job.outcome = o; report = None } in
        match t.store with
        | Some s when Store.mem s d.Checkpoint.d_digest -> ()
        | Some s ->
          Store.add s d.Checkpoint.d_digest (Job.outcome_to_json o);
          Cache.add t.cache d.Checkpoint.d_digest executed
        | None -> Cache.add t.cache d.Checkpoint.d_digest executed)
      | Error _ -> ())
    state.Checkpoint.s_completed;
  (* Re-admit the backlog in checkpoint (= pop) order.  Admission was
     already granted in the previous life, so bypass the capacity gate by
     widening it for the duration. *)
  let cap = Queue.capacity t.queue in
  Queue.set_capacity t.queue (max cap (List.length state.Checkpoint.s_pending + Queue.length t.queue));
  List.iter
    (fun (id, (spec : Job.spec)) ->
      let entry = { q_id = id; q_spec = spec; q_enqueued = t.tick_count } in
      match
        Queue.submit t.queue ~tenant:spec.Job.tenant
          ~priority:(Job.priority_rank spec.Job.priority) entry
      with
      | Ok () -> ()
      | Error _ -> assert false)
    state.Checkpoint.s_pending;
  Queue.set_capacity t.queue cap;
  t.since_checkpoint <- 0;
  set_depth_gauge t;
  t

(* ---- dispatch ---- *)

let expired t q =
  match q.q_spec.Job.deadline with
  | None -> false
  | Some deadline -> t.tick_count - q.q_enqueued > deadline

let tick ?max t () =
  t.tick_count <- t.tick_count + 1;
  let batch_size = match max with Some m -> m | None -> t.settings.Reconfig.tick_batch in
  (* Pop the batch, resolving expiries and cache hits inline; only true
     misses go to the domain pool. *)
  let rec take acc misses k =
    if k = 0 then (List.rev acc, List.rev misses)
    else
      match Queue.pop t.queue with
      | None -> (List.rev acc, List.rev misses)
      | Some (_, q) ->
        (* the generation-aware cache key, not the bare digest: a job
           admitted under generation g never hits a g-1 entry *)
        let digest = Job.cache_key q.q_spec in
        if expired t q then begin
          count t "service_jobs_expired_total" 1;
          let completion =
            {
              id = q.q_id;
              tenant = q.q_spec.Job.tenant;
              digest;
              cached = false;
              outcome =
                Error
                  (Printf.sprintf "deadline exceeded: waited %d ticks, deadline %d"
                     (t.tick_count - q.q_enqueued)
                     (Option.value q.q_spec.Job.deadline ~default:0));
              report = None;
            }
          in
          take (completion :: acc) misses (k - 1)
        end
        else
          let hit =
            match Cache.find t.cache digest with
            | Some _ as h -> h
            | None -> store_find t digest
          in
          match hit with
          | Some (executed : Job.executed) ->
            let completion =
              {
                id = q.q_id;
                tenant = q.q_spec.Job.tenant;
                digest;
                cached = true;
                outcome = Ok executed.Job.outcome;
                report = executed.Job.report;
              }
            in
            take (completion :: acc) misses (k - 1)
          | None -> take acc ((q, digest) :: misses) (k - 1)
  in
  let resolved, misses = take [] [] (Stdlib.max 1 batch_size) in
  (* In-batch dedup: when caching is on, one execution per distinct
     digest; co-batched duplicates are then served from the just-filled
     cache (so they register as hits and count no simulation). *)
  let unique =
    if Cache.capacity t.cache = 0 then misses
    else begin
      let seen = Hashtbl.create 8 in
      List.filter
        (fun (_, digest) ->
          if Hashtbl.mem seen digest then false
          else begin
            Hashtbl.add seen digest ();
            true
          end)
        misses
    end
  in
  let executed =
    Sweep.map_results ~domains:t.settings.Reconfig.domains
      (fun (q, _) -> Job.execute q.q_spec)
      unique
  in
  let own = Hashtbl.create 8 in
  let by_digest = Hashtbl.create 8 in
  List.iter2
    (fun (q, digest) result ->
      Hashtbl.replace own q.q_id result;
      Hashtbl.replace by_digest digest result;
      match result with
      | Ok e ->
        Cache.add t.cache digest e;
        store_put t digest e
      | Error _ -> ())
    unique executed;
  let miss_completions =
    List.map
      (fun (q, digest) ->
        let mk cached outcome report =
          { id = q.q_id; tenant = q.q_spec.Job.tenant; digest; cached; outcome; report }
        in
        match Hashtbl.find_opt own q.q_id with
        | Some (Ok (e : Job.executed)) -> mk false (Ok e.Job.outcome) e.Job.report
        | Some (Error exn) -> mk false (Error (Printexc.to_string exn)) None
        | None -> (
          (* co-batched duplicate: its representative ran above *)
          match Cache.find t.cache digest with
          | Some e -> mk true (Ok e.Job.outcome) e.Job.report
          | None -> (
            match Hashtbl.find_opt by_digest digest with
            | Some (Error exn) -> mk false (Error (Printexc.to_string exn)) None
            | _ -> mk false (Error "representative execution missing") None)))
      misses
  in
  let completions = resolved @ miss_completions in
  List.iter (record_completion t) completions;
  set_depth_gauge t;
  maybe_checkpoint t;
  completions

let drain t =
  let rec go acc =
    if Queue.is_empty t.queue then List.concat (List.rev acc)
    else go (tick t () :: acc)
  in
  go []

let reconfig t patch =
  let settings = Reconfig.apply patch t.settings in
  t.settings <- settings;
  Queue.set_capacity t.queue settings.Reconfig.queue_capacity;
  Cache.set_capacity t.cache settings.Reconfig.cache_capacity;
  count t "service_reconfigs_total" 1;
  (match t.obs with
  | None -> ()
  | Some obs ->
    Obs.event obs ~kind:"reconfig"
      [ ("touched", Bench_io.List (List.map (fun s -> Bench_io.String s) (Reconfig.touched patch))) ]);
  settings
