(** LRU result cache keyed by job digest.

    Identical requests (same graph recipe, inputs, parameters, protocol
    and seed — i.e. the same {!Job.digest}) are served from here without
    re-simulation.  Recency is bumped on every {!find} hit; {!add} evicts
    the least-recently-used entry when full.

    Hit/miss/eviction totals are kept as plain integers ({!stats} — the
    numbers server responses report, independent of whether telemetry is
    enabled) and, when a registry is attached, mirrored into the
    counters [service_cache_hits_total] / [service_cache_misses_total] /
    [service_cache_evictions_total] for the Prometheus / JSONL exports. *)

type 'a t

val create : ?registry:Ftagg_obs.Registry.t -> capacity:int -> unit -> 'a t
(** [capacity = 0] disables storage (every lookup is a miss and {!add} is
    a no-op).  Raises [Invalid_argument] on a negative capacity. *)

val find : 'a t -> string -> 'a option
(** Lookup by digest; counts a hit (and refreshes recency) or a miss. *)

val add : 'a t -> string -> 'a -> unit
(** Insert (or refresh) an entry, evicting the LRU entry if at capacity. *)

val length : 'a t -> int
val capacity : 'a t -> int

val set_capacity : 'a t -> int -> unit
(** Live-resize (the {!Reconfig} path); shrinking evicts LRU entries
    immediately. *)

type stats = { hits : int; misses : int; evictions : int; entries : int; s_capacity : int }

val stats : 'a t -> stats
