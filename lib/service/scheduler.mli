(** The service's job engine: admission, prioritized fair dispatch over
    the {!Ftagg_runner.Sweep} domain pool, result cache, cancellation,
    deadlines, checkpointing and live reconfiguration.

    The scheduler is {e tick-driven}: {!submit} only enqueues; each
    {!tick} pops up to a batch of jobs (per-tenant round-robin, priority
    within tenant), serves cache hits without re-simulation, runs the
    misses in parallel via {!Ftagg_runner.Sweep.map_results} (one job
    failure never abandons the batch), and records completions.  This
    makes the whole service deterministic and drivable from a line
    protocol or a test.

    Single ownership: all scheduler state is confined to the driving
    thread; only [Job.execute] (a pure function of the spec) runs on
    domains. *)

type completion = {
  id : string;
  tenant : string;
  digest : string;
      (** the job's {!Job.cache_key} — the bare spec digest at
          generation 0, [<digest>@g<generation>] otherwise *)
  cached : bool;  (** served from the result cache, no simulation ran *)
  outcome : (Job.outcome, string) result;
      (** [Error] for an expired deadline or a job that raised *)
  report : Ftagg_chaos.Campaign.pair_report option;
      (** chaos-pair evidence when available (never across a restart) *)
}

type t

val create :
  ?obs:Ftagg_obs.Obs.t ->
  ?checkpoint_path:string ->
  ?store:Ftagg_store.Store.t ->
  settings:Reconfig.settings ->
  unit ->
  t
(** [obs] supplies the telemetry sink: its registry receives the
    service metrics ([service_queue_depth] gauge, [service_job_rounds]
    histogram, [service_jobs_*_total] and [service_cache_*_total]
    counters) and its event stream one [job_completed] event per
    completion.  [checkpoint_path] enables auto-checkpointing every
    [settings.checkpoint_every] completions and {!checkpoint_now}.
    [store] plugs in the shared on-disk outcome store as an L2 behind
    the LRU cache: a cache miss consults it (and promotes a hit into the
    LRU, completing as [cached = true]) and every fresh execution is
    appended to it, visible to all other fleet members sharing the
    directory. *)

val restore :
  ?obs:Ftagg_obs.Obs.t ->
  ?checkpoint_path:string ->
  ?store:Ftagg_store.Store.t ->
  settings:Reconfig.settings ->
  Checkpoint.state ->
  t
(** Resume from a checkpoint: the backlog is re-admitted in order
    (bypassing the capacity gate — admission was already granted in the
    previous life) and completed results re-seed the cache, so
    post-restart duplicates still hit.  With a [store], re-seeding
    dedupes against it instead: digests the store already holds are
    served from L2 on demand (no duplicate entries are appended, and no
    hit/miss counter moves during restore). *)

val store : t -> Ftagg_store.Store.t option
val store_stats : t -> Ftagg_store.Store.stats option

val submit : t -> Job.spec -> (string, Queue.reject) result
(** Admit a job; returns its fresh id, or the backpressure reason when
    the queue is full. *)

val cancel : t -> string -> bool
(** Remove a still-queued job.  [false] if unknown, already running, or
    already completed — completions are never retracted. *)

val tick : ?max:int -> t -> unit -> completion list
(** Run one dispatch round of up to [max] jobs (default
    [settings.tick_batch]); returns the jobs that finished this tick, in
    dispatch order.  Deadlines are charged in ticks: a job whose wait
    exceeds its [deadline] completes with an [Error] instead of running.
    Co-batched duplicates are deduplicated (when caching is enabled):
    one representative executes, the rest are served from its fresh
    result as cache hits. *)

val drain : t -> completion list
(** Tick until the queue is empty — the graceful-shutdown path. *)

val result : t -> string -> completion option
val depth : t -> int
val tenants : t -> string list
val completed_count : t -> int
val cache_stats : t -> Cache.stats
val tick_count : t -> int
val settings : t -> Reconfig.settings
val registry : t -> Ftagg_obs.Registry.t

val reconfig : t -> Reconfig.patch -> Reconfig.settings
(** Apply a live patch at a job boundary: queue and cache capacities
    resize immediately, defaults affect future admissions.  Returns the
    new settings. *)

val snapshot : t -> Checkpoint.state

val checkpoint_now : t -> string option
(** Write a checkpoint if a path was configured; returns it. *)
