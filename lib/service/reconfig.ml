(* Live service reconfiguration: a plain settings record, a partial patch
   parsed from JSON, and a pure [apply].  The scheduler re-reads its
   settings at job boundaries only, so applying a patch never disturbs a
   job that is already executing. *)

module Bench_io = Ftagg_runner.Bench_io

type settings = {
  default_b : int;
  default_f : int;
  queue_capacity : int;
  cache_capacity : int;
  checkpoint_every : int;
  tick_batch : int;
  domains : int;
}

let default =
  {
    default_b = 63;
    default_f = 8;
    queue_capacity = 64;
    cache_capacity = 128;
    checkpoint_every = 8;
    tick_batch = 4;
    domains = 1;
  }

type patch = {
  p_default_b : int option;
  p_default_f : int option;
  p_queue_capacity : int option;
  p_cache_capacity : int option;
  p_checkpoint_every : int option;
  p_tick_batch : int option;
  p_domains : int option;
}

let empty =
  {
    p_default_b = None;
    p_default_f = None;
    p_queue_capacity = None;
    p_cache_capacity = None;
    p_checkpoint_every = None;
    p_tick_batch = None;
    p_domains = None;
  }

(* (json key, min legal value, getter, setter) — one row per patchable
   knob keeps parse/apply/describe in sync. *)
let fields =
  [
    ("default_b", 1, (fun p -> p.p_default_b), fun p v -> { p with p_default_b = Some v });
    ("default_f", 0, (fun p -> p.p_default_f), fun p v -> { p with p_default_f = Some v });
    ( "queue_capacity", 0,
      (fun p -> p.p_queue_capacity), fun p v -> { p with p_queue_capacity = Some v } );
    ( "cache_capacity", 0,
      (fun p -> p.p_cache_capacity), fun p v -> { p with p_cache_capacity = Some v } );
    ( "checkpoint_every", 0,
      (fun p -> p.p_checkpoint_every), fun p v -> { p with p_checkpoint_every = Some v } );
    ("tick_batch", 1, (fun p -> p.p_tick_batch), fun p v -> { p with p_tick_batch = Some v });
    ("domains", 1, (fun p -> p.p_domains), fun p v -> { p with p_domains = Some v });
  ]

let of_json json =
  match json with
  | Bench_io.Obj members ->
    let rec fold patch = function
      | [] -> Ok patch
      | (key, value) :: rest -> (
        match List.find_opt (fun (k, _, _, _) -> k = key) fields with
        | None -> Error (Printf.sprintf "reconfig: unknown setting %S" key)
        | Some (_, min_v, _, set) -> (
          match Bench_io.to_int value with
          | Some v when v >= min_v -> fold (set patch v) rest
          | Some v -> Error (Printf.sprintf "reconfig: %s = %d is below the minimum %d" key v min_v)
          | None -> Error (Printf.sprintf "reconfig: %s must be an integer" key)))
    in
    fold empty members
  | _ -> Error "reconfig: expected an object of settings"

let apply patch s =
  let pick o v = Option.value o ~default:v in
  {
    default_b = pick patch.p_default_b s.default_b;
    default_f = pick patch.p_default_f s.default_f;
    queue_capacity = pick patch.p_queue_capacity s.queue_capacity;
    cache_capacity = pick patch.p_cache_capacity s.cache_capacity;
    checkpoint_every = pick patch.p_checkpoint_every s.checkpoint_every;
    tick_batch = pick patch.p_tick_batch s.tick_batch;
    domains = pick patch.p_domains s.domains;
  }

let touched patch = List.filter_map (fun (k, _, get, _) -> Option.map (fun _ -> k) (get patch)) fields

let settings_to_json s =
  Bench_io.Obj
    [
      ("default_b", Bench_io.Int s.default_b);
      ("default_f", Bench_io.Int s.default_f);
      ("queue_capacity", Bench_io.Int s.queue_capacity);
      ("cache_capacity", Bench_io.Int s.cache_capacity);
      ("checkpoint_every", Bench_io.Int s.checkpoint_every);
      ("tick_batch", Bench_io.Int s.tick_batch);
      ("domains", Bench_io.Int s.domains);
    ]
