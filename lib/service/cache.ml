(* LRU result cache keyed by job digest.  Recency is a logical clock
   stamped on every hit; eviction scans for the oldest stamp — O(entries),
   which is fine at service cache sizes (hundreds) and keeps the structure
   a single hash table.

   Counters are kept twice on purpose: plain ints (returned by [stats],
   reported in server responses — these must not depend on whether
   telemetry is enabled) and mirrored into the optional
   [Ftagg_obs.Registry] for the Prometheus/JSONL exports. *)

module Registry = Ftagg_obs.Registry

type 'a t = {
  mutable capacity : int;
  table : (string, 'a entry) Hashtbl.t;
  mutable clock : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  registry : Registry.t option;
}

and 'a entry = { value : 'a; mutable stamp : int }

let create ?registry ~capacity () =
  if capacity < 0 then invalid_arg "Cache.create: capacity must be >= 0";
  { capacity; table = Hashtbl.create 64; clock = 0; hits = 0; misses = 0; evictions = 0; registry }

let count t name k =
  match t.registry with None -> () | Some r -> Registry.incr r name k

let tick t =
  t.clock <- t.clock + 1;
  t.clock

let find t digest =
  match Hashtbl.find_opt t.table digest with
  | Some e ->
    e.stamp <- tick t;
    t.hits <- t.hits + 1;
    count t "service_cache_hits_total" 1;
    Some e.value
  | None ->
    t.misses <- t.misses + 1;
    count t "service_cache_misses_total" 1;
    None

let evict_oldest t =
  let victim =
    Hashtbl.fold
      (fun digest e acc ->
        match acc with
        | Some (_, stamp) when stamp <= e.stamp -> acc
        | _ -> Some (digest, e.stamp))
      t.table None
  in
  match victim with
  | None -> ()
  | Some (digest, _) ->
    Hashtbl.remove t.table digest;
    t.evictions <- t.evictions + 1;
    count t "service_cache_evictions_total" 1

let add t digest value =
  if t.capacity > 0 then begin
    (match Hashtbl.find_opt t.table digest with
    | Some _ -> Hashtbl.remove t.table digest
    | None -> ());
    while Hashtbl.length t.table >= t.capacity do
      evict_oldest t
    done;
    Hashtbl.replace t.table digest { value; stamp = tick t }
  end

let length t = Hashtbl.length t.table
let capacity t = t.capacity

let set_capacity t capacity =
  if capacity < 0 then invalid_arg "Cache.set_capacity: capacity must be >= 0";
  t.capacity <- capacity;
  while Hashtbl.length t.table > capacity do
    evict_oldest t
  done

type stats = { hits : int; misses : int; evictions : int; entries : int; s_capacity : int }

let stats (t : 'a t) =
  {
    hits = t.hits;
    misses = t.misses;
    evictions = t.evictions;
    entries = Hashtbl.length t.table;
    s_capacity = t.capacity;
  }
