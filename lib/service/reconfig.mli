(** Live service reconfiguration.

    A running server holds a {!settings} record and re-reads it at {e job
    boundaries} only (admission and dispatch), never mid-execution, in the
    spirit of live-patchable stores: a patch lands without a restart and
    without disturbing in-flight work.

    A {!patch} is a partial update — only the fields present in the JSON
    are touched.  [default_b] / [default_f] fill in a job's omitted
    tradeoff budgets {e at admission}, so a patch affects jobs submitted
    after it, not the queued backlog (whose specs were resolved when they
    were admitted — that keeps digests, and therefore the cache, stable
    across reconfiguration). *)

type settings = {
  default_b : int;  (** time budget (flooding rounds) for jobs that omit [b] *)
  default_f : int;  (** edge-failure budget for jobs that omit [f] *)
  queue_capacity : int;  (** admission queue bound; [0] rejects everything *)
  cache_capacity : int;  (** LRU result-cache entries; [0] disables caching *)
  checkpoint_every : int;  (** completions between auto-checkpoints; [0] = off *)
  tick_batch : int;  (** jobs dispatched per scheduler tick (>= 1) *)
  domains : int;  (** sweep-pool width for a tick's batch (>= 1) *)
}

val default : settings
(** [b]=63, [f]=8, queue 64, cache 128, checkpoint every 8, batch 4,
    1 domain. *)

type patch = {
  p_default_b : int option;
  p_default_f : int option;
  p_queue_capacity : int option;
  p_cache_capacity : int option;
  p_checkpoint_every : int option;
  p_tick_batch : int option;
  p_domains : int option;
}

val empty : patch

val of_json : Ftagg_runner.Bench_io.json -> (patch, string) result
(** Parse [{"default_b": 126, ...}].  Unknown keys, non-integers and
    out-of-range values are errors (the patch is rejected whole). *)

val apply : patch -> settings -> settings

val touched : patch -> string list
(** Names of the fields the patch sets, in a fixed order — the server
    echoes them in its [reconfig] response. *)

val settings_to_json : settings -> Ftagg_runner.Bench_io.json
