module Bench_io = Ftagg_runner.Bench_io

let version = 1

type done_entry = {
  d_id : string;
  d_tenant : string;
  d_digest : string;
  d_cached : bool;
  d_outcome : (Job.outcome, string) result;
}

type state = {
  s_next_id : int;
  s_tick : int;
  s_pending : (string * Job.spec) list;
  s_completed : done_entry list;
}

let empty = { s_next_id = 1; s_tick = 0; s_pending = []; s_completed = [] }

let done_to_json d =
  Bench_io.Obj
    [
      ("id", Bench_io.String d.d_id);
      ("tenant", Bench_io.String d.d_tenant);
      ("digest", Bench_io.String d.d_digest);
      ("cached", Bench_io.Bool d.d_cached);
      ( "outcome",
        match d.d_outcome with Ok o -> Job.outcome_to_json o | Error _ -> Bench_io.Null );
      ("error", match d.d_outcome with Ok _ -> Bench_io.Null | Error e -> Bench_io.String e);
    ]

let to_json state =
  Bench_io.Obj
    [
      ("version", Bench_io.Int version);
      ("next_id", Bench_io.Int state.s_next_id);
      ("tick", Bench_io.Int state.s_tick);
      ( "pending",
        Bench_io.List
          (List.map
             (fun (id, spec) ->
               Bench_io.Obj [ ("id", Bench_io.String id); ("job", Job.to_json spec) ])
             state.s_pending) );
      ("completed", Bench_io.List (List.map done_to_json state.s_completed));
    ]

let ( let* ) = Result.bind

let req_int json key =
  match Option.bind (Bench_io.member key json) Bench_io.to_int with
  | Some i -> Ok i
  | None -> Error (Printf.sprintf "checkpoint: missing integer %s" key)

let req_string json key =
  match Bench_io.member key json with
  | Some (Bench_io.String s) -> Ok s
  | _ -> Error (Printf.sprintf "checkpoint: missing string %s" key)

let done_of_json json =
  let* d_id = req_string json "id" in
  let* d_tenant = req_string json "tenant" in
  let* d_digest = req_string json "digest" in
  let d_cached =
    match Option.bind (Bench_io.member "cached" json) Bench_io.to_bool with
    | Some b -> b
    | None -> false
  in
  let* d_outcome =
    match Bench_io.member "error" json with
    | Some (Bench_io.String e) -> Ok (Error e)
    | _ -> (
      match Bench_io.member "outcome" json with
      | Some o -> Result.map (fun o -> Ok o) (Job.outcome_of_json o)
      | None -> Error "checkpoint: completed entry has neither outcome nor error")
  in
  Ok { d_id; d_tenant; d_digest; d_cached; d_outcome }

(* Settings only matter for filling a job's omitted fields, and
   checkpointed specs are fully resolved, so any settings decode them
   identically; the defaults keep the signature self-contained. *)
let of_json json =
  let* v = req_int json "version" in
  let* () =
    if v = version then Ok ()
    else Error (Printf.sprintf "checkpoint: unsupported version %d (expected %d)" v version)
  in
  let* s_next_id = req_int json "next_id" in
  let* s_tick = req_int json "tick" in
  let* s_pending =
    match Bench_io.member "pending" json with
    | Some (Bench_io.List items) ->
      let rec conv acc = function
        | [] -> Ok (List.rev acc)
        | item :: rest ->
          let* id = req_string item "id" in
          let* spec =
            match Bench_io.member "job" item with
            | Some j -> Job.of_json ~settings:Reconfig.default j
            | None -> Error "checkpoint: pending entry without a job"
          in
          conv ((id, spec) :: acc) rest
      in
      conv [] items
    | _ -> Error "checkpoint: missing pending list"
  in
  let* s_completed =
    match Bench_io.member "completed" json with
    | Some (Bench_io.List items) ->
      let rec conv acc = function
        | [] -> Ok (List.rev acc)
        | item :: rest ->
          let* d = done_of_json item in
          conv (d :: acc) rest
      in
      conv [] items
    | _ -> Error "checkpoint: missing completed list"
  in
  Ok { s_next_id; s_tick; s_pending; s_completed }

(* Atomic save: write the whole document to [path].tmp, fsync, then
   rename over [path].  A crash at any point leaves either the previous
   complete checkpoint or a stray .tmp — never a torn file at [path], so
   [load] can treat a parse failure as corruption rather than bad luck. *)
let save ~path state =
  let tmp = path ^ ".tmp" in
  let oc = open_out tmp in
  (try
     output_string oc (Bench_io.to_string ~indent:true (to_json state));
     flush oc;
     Unix.fsync (Unix.descr_of_out_channel oc);
     close_out oc
   with e ->
     close_out_noerr oc;
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e);
  Sys.rename tmp path

let load ~path =
  match Bench_io.read_file ~path with
  | Error e ->
    Error
      (Printf.sprintf
         "checkpoint: %s is torn or corrupt (%s); refusing to resume from partial state" path e)
  | Ok json -> of_json json
