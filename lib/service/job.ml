module Graph = Ftagg_graph.Graph
module Gen = Ftagg_graph.Gen
module Prng = Ftagg_util.Prng
module Failure = Ftagg_sim.Failure
module Engine = Ftagg_sim.Engine
module Metrics = Ftagg_sim.Metrics
module Caaf = Ftagg_caaf.Caaf
module Instances = Ftagg_caaf.Instances
module Params = Ftagg_proto.Params
module Agg = Ftagg_proto.Agg
module Pair = Ftagg_proto.Pair
module Run = Ftagg_proto.Run
module Tradeoff = Ftagg_proto.Tradeoff
module Unknown_f = Ftagg_proto.Unknown_f
module Bench_io = Ftagg_runner.Bench_io
module Incident = Ftagg_chaos.Incident
module Campaign = Ftagg_chaos.Campaign

type priority = High | Normal | Low

let priority_to_string = function High -> "high" | Normal -> "normal" | Low -> "low"

let priority_of_string = function
  | "high" -> Some High
  | "normal" -> Some Normal
  | "low" -> Some Low
  | _ -> None

let priority_rank = function High -> 0 | Normal -> 1 | Low -> 2

type protocol =
  | Tradeoff of { b : int; f : int }
  | Brute
  | Unknown_f
  | Chaos_pair of { bit_cap : int option }

type failure_spec =
  | Generated of { mode : string; budget : int }
  | Explicit of (int * int) list

type spec = {
  tenant : string;
  family : Gen.family;
  n : int;
  topo_seed : int;
  inputs : int array;
  c : int;
  t : int;
  caaf : string;
  protocol : protocol;
  failures : failure_spec;
  seed : int;
  generation : int;
  deadline : int option;
  priority : priority;
}

type outcome = {
  value : int option;
  correct : bool;
  cc : int;
  rounds : int;
  flooding_rounds : int;
  via : string;
  violation : string option;
}

type executed = { outcome : outcome; report : Campaign.pair_report option }

let caaf_of_name name =
  match String.lowercase_ascii name with
  | "sum" -> Some Instances.sum
  | "count" -> Some Instances.count
  | "max" -> Some Instances.max_
  | "min" -> Some Instances.min_
  | "or" -> Some Instances.bool_or
  | "and" -> Some Instances.bool_and
  | "gcd" -> Some Instances.gcd
  | _ -> None

let failure_modes = [ "none"; "random"; "burst"; "chain"; "neighborhood" ]

(* ---- canonical digest ---- *)

let protocol_token = function
  | Tradeoff { b; f } -> Printf.sprintf "tradeoff:%d:%d" b f
  | Brute -> "brute"
  | Unknown_f -> "unknown_f"
  | Chaos_pair { bit_cap } ->
    Printf.sprintf "chaos_pair:%s" (match bit_cap with Some c -> string_of_int c | None -> "-")

let failures_token = function
  | Generated { mode; budget } -> Printf.sprintf "gen:%s:%d" mode budget
  | Explicit schedule ->
    "exp:" ^ String.concat "," (List.map (fun (u, r) -> Printf.sprintf "%d@%d" u r) schedule)

(* FNV-1a over the canonical request string.  Tenant, priority and
   deadline are deliberately excluded: they change who waits and for how
   long, not what is computed, so two tenants asking the same question
   share one cache entry. *)
let digest spec =
  let canonical =
    String.concat "|"
      [
        Incident.family_to_string spec.family;
        string_of_int spec.n;
        string_of_int spec.topo_seed;
        String.concat "," (Array.to_list (Array.map string_of_int spec.inputs));
        string_of_int spec.c;
        string_of_int spec.t;
        String.lowercase_ascii spec.caaf;
        protocol_token spec.protocol;
        failures_token spec.failures;
        string_of_int spec.seed;
      ]
  in
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun ch ->
      h := Int64.logxor !h (Int64.of_int (Char.code ch));
      h := Int64.mul !h 0x100000001b3L)
    canonical;
  Printf.sprintf "%016Lx" !h

(* The cache key adds the topology generation the digest deliberately
   leaves out: same question, later generation → different key, so a
   churned topology can never be answered from a stale entry. *)
let cache_key spec =
  if spec.generation = 0 then digest spec
  else Printf.sprintf "%s@g%d" (digest spec) spec.generation

(* ---- JSON codec ---- *)

let to_json spec =
  let base =
    [
      ("tenant", Bench_io.String spec.tenant);
      ("family", Bench_io.String (Incident.family_to_string spec.family));
      ("n", Bench_io.Int spec.n);
      ("topo_seed", Bench_io.Int spec.topo_seed);
      ("inputs", Bench_io.List (Array.to_list (Array.map (fun x -> Bench_io.Int x) spec.inputs)));
      ("c", Bench_io.Int spec.c);
      ("t", Bench_io.Int spec.t);
      ("caaf", Bench_io.String spec.caaf);
      ( "protocol",
        Bench_io.String
          (match spec.protocol with
          | Tradeoff _ -> "tradeoff"
          | Brute -> "brute"
          | Unknown_f -> "unknown-f"
          | Chaos_pair _ -> "chaos-pair") );
      ("seed", Bench_io.Int spec.seed);
      ("priority", Bench_io.String (priority_to_string spec.priority));
    ]
  in
  let protocol_fields =
    match spec.protocol with
    | Tradeoff { b; f } -> [ ("b", Bench_io.Int b); ("f", Bench_io.Int f) ]
    | Chaos_pair { bit_cap = Some cap } -> [ ("bit_cap", Bench_io.Int cap) ]
    | _ -> []
  in
  let failure_fields =
    match spec.failures with
    | Generated { mode; budget } ->
      [ ("failures", Bench_io.String mode); ("budget", Bench_io.Int budget) ]
    | Explicit schedule ->
      [
        ( "schedule",
          Bench_io.List
            (List.map (fun (u, r) -> Bench_io.List [ Bench_io.Int u; Bench_io.Int r ]) schedule) );
      ]
  in
  let deadline_fields =
    match spec.deadline with Some d -> [ ("deadline", Bench_io.Int d) ] | None -> []
  in
  let generation_fields =
    if spec.generation = 0 then [] else [ ("generation", Bench_io.Int spec.generation) ]
  in
  Bench_io.Obj (base @ protocol_fields @ failure_fields @ deadline_fields @ generation_fields)

let ( let* ) = Result.bind

let field_int json key default =
  match Bench_io.member key json with
  | None -> Ok default
  | Some v -> (
    match Bench_io.to_int v with
    | Some i -> Ok i
    | None -> Error (Printf.sprintf "job: %s must be an integer" key))

let field_string json key default =
  match Bench_io.member key json with
  | None -> Ok default
  | Some (Bench_io.String s) -> Ok s
  | Some _ -> Error (Printf.sprintf "job: %s must be a string" key)

let of_json ~(settings : Reconfig.settings) json =
  match json with
  | Bench_io.Obj _ ->
    let* tenant = field_string json "tenant" "default" in
    let* family_s = field_string json "family" "grid" in
    let* family =
      match Incident.family_of_string family_s with
      | Some f -> Ok f
      | None -> Error (Printf.sprintf "job: unknown topology family %S" family_s)
    in
    let* n = field_int json "n" 36 in
    let* () = if n >= 2 then Ok () else Error "job: n must be >= 2" in
    let* seed = field_int json "seed" 1 in
    let* topo_seed = field_int json "topo_seed" seed in
    let* f = field_int json "f" settings.Reconfig.default_f in
    let* b = field_int json "b" settings.Reconfig.default_b in
    let* c = field_int json "c" 2 in
    let* t = field_int json "t" (max 1 (2 * f)) in
    let* max_input = field_int json "max_input" 50 in
    let* inputs =
      match Bench_io.member "inputs" json with
      | None ->
        Ok (Params.random_inputs ~rng:(Prng.create (seed + 17)) ~n ~max_input)
      | Some (Bench_io.List items) ->
        let rec conv acc = function
          | [] -> Ok (Array.of_list (List.rev acc))
          | item :: rest -> (
            match Bench_io.to_int item with
            | Some i when i >= 0 -> conv (i :: acc) rest
            | _ -> Error "job: inputs must be non-negative integers")
        in
        let* arr = conv [] items in
        if Array.length arr = n then Ok arr
        else Error (Printf.sprintf "job: inputs has %d entries, expected n = %d" (Array.length arr) n)
      | Some _ -> Error "job: inputs must be an array"
    in
    let* caaf = field_string json "caaf" "sum" in
    let* () =
      match caaf_of_name caaf with
      | Some _ -> Ok ()
      | None -> Error (Printf.sprintf "job: unknown aggregate %S" caaf)
    in
    let* protocol_s = field_string json "protocol" "tradeoff" in
    let* bit_cap =
      match Bench_io.member "bit_cap" json with
      | None -> Ok None
      | Some v -> (
        match Bench_io.to_int v with
        | Some i -> Ok (Some i)
        | None -> Error "job: bit_cap must be an integer")
    in
    let* protocol =
      match String.lowercase_ascii protocol_s with
      | "tradeoff" -> Ok (Tradeoff { b; f })
      | "brute" -> Ok Brute
      | "unknown-f" | "unknown_f" -> Ok Unknown_f
      | "chaos-pair" | "chaos_pair" -> Ok (Chaos_pair { bit_cap })
      | other -> Error (Printf.sprintf "job: unknown protocol %S" other)
    in
    let* failures =
      match Bench_io.member "schedule" json with
      | Some (Bench_io.List items) ->
        let rec conv acc = function
          | [] -> Ok (Explicit (List.rev acc))
          | Bench_io.List [ u; r ] :: rest -> (
            match (Bench_io.to_int u, Bench_io.to_int r) with
            | Some u, Some r -> conv ((u, r) :: acc) rest
            | _ -> Error "job: schedule entries must be [node, round] integer pairs")
          | _ -> Error "job: schedule entries must be [node, round] integer pairs"
        in
        conv [] items
      | Some _ -> Error "job: schedule must be an array of [node, round] pairs"
      | None ->
        let* mode = field_string json "failures" "random" in
        let mode = String.lowercase_ascii mode in
        let* () =
          if List.mem mode failure_modes then Ok ()
          else Error (Printf.sprintf "job: unknown failure mode %S" mode)
        in
        let* budget = field_int json "budget" f in
        Ok (Generated { mode; budget })
    in
    let* deadline =
      match Bench_io.member "deadline" json with
      | None -> Ok None
      | Some v -> (
        match Bench_io.to_int v with
        | Some d when d >= 0 -> Ok (Some d)
        | _ -> Error "job: deadline must be a non-negative integer")
    in
    let* priority_s = field_string json "priority" "normal" in
    let* priority =
      match priority_of_string (String.lowercase_ascii priority_s) with
      | Some p -> Ok p
      | None -> Error (Printf.sprintf "job: unknown priority %S" priority_s)
    in
    let* generation = field_int json "generation" 0 in
    let* () =
      if generation >= 0 then Ok () else Error "job: generation must be non-negative"
    in
    Ok
      {
        tenant; family; n; topo_seed; inputs; c; t;
        caaf = String.lowercase_ascii caaf;
        protocol; failures; seed; generation; deadline; priority;
      }
  | _ -> Error "job: expected an object"

let outcome_to_json o =
  Bench_io.Obj
    [
      ("value", match o.value with Some v -> Bench_io.Int v | None -> Bench_io.Null);
      ("correct", Bench_io.Bool o.correct);
      ("cc", Bench_io.Int o.cc);
      ("rounds", Bench_io.Int o.rounds);
      ("flooding_rounds", Bench_io.Int o.flooding_rounds);
      ("via", Bench_io.String o.via);
      ("violation", match o.violation with Some v -> Bench_io.String v | None -> Bench_io.Null);
    ]

let outcome_of_json json =
  let* cc = field_int json "cc" 0 in
  let* rounds = field_int json "rounds" 0 in
  let* flooding_rounds = field_int json "flooding_rounds" 0 in
  let* via = field_string json "via" "" in
  let value =
    match Bench_io.member "value" json with Some v -> Bench_io.to_int v | None -> None
  in
  let violation =
    match Bench_io.member "violation" json with
    | Some (Bench_io.String s) -> Some s
    | _ -> None
  in
  let correct =
    match Bench_io.member "correct" json with
    | Some v -> Option.value (Bench_io.to_bool v) ~default:false
    | None -> false
  in
  Ok { value; correct; cc; rounds; flooding_rounds; via; violation }

(* ---- execution ---- *)

let materialize_failures spec graph ~window =
  match spec.failures with
  | Explicit schedule -> Failure.of_list ~n:spec.n schedule
  | Generated { mode; budget } -> (
    let rng = Prng.create (spec.seed + 3) in
    match mode with
    | "none" -> Failure.none ~n:spec.n
    | "random" -> Failure.random graph ~rng ~budget ~max_round:window
    | "burst" -> Failure.burst graph ~rng ~budget ~round:(max 1 (window / 3))
    | "chain" ->
      Failure.chain ~n:spec.n ~first:1 ~len:(max 0 (min budget (spec.n - 2)))
        ~round:(max 1 (window / 3))
    | "neighborhood" -> Failure.neighborhood graph ~center:(spec.n / 2) ~round:(max 1 (window / 3))
    | other -> failwith (Printf.sprintf "job: unknown failure mode %S" other))

let of_common (c : Run.common) ~value ~via ~violation =
  {
    value;
    correct = c.Run.correct;
    cc = Metrics.cc c.Run.metrics;
    rounds = c.Run.rounds;
    flooding_rounds = c.Run.flooding_rounds;
    via;
    violation;
  }

let execute spec =
  let graph = Gen.build spec.family ~n:spec.n ~seed:spec.topo_seed in
  let caaf = Option.get (caaf_of_name spec.caaf) in
  let params = Params.make ~c:spec.c ~t:spec.t ~caaf ~graph ~inputs:spec.inputs () in
  let d = params.Params.d in
  match spec.protocol with
  | Tradeoff { b; f } ->
    let failures = materialize_failures spec graph ~window:(b * d) in
    let o = Run.tradeoff ~graph ~failures ~params ~b ~f ~seed:spec.seed () in
    let via =
      match o.Run.how with
      | Tradeoff.Via_pair y -> Printf.sprintf "pair interval %d" y
      | Tradeoff.Via_brute_force -> "brute-force fallback"
    in
    {
      outcome =
        of_common o.Run.common ~value:(Some (Run.value_exn o.Run.result)) ~via ~violation:None;
      report = None;
    }
  | Brute ->
    let failures = materialize_failures spec graph ~window:(4 * d) in
    let o = Run.brute_force ~graph ~failures ~params ~seed:spec.seed () in
    {
      outcome =
        of_common o.Run.common
          ~value:(Some (Run.value_exn o.Run.result))
          ~via:"brute-force" ~violation:None;
      report = None;
    }
  | Unknown_f ->
    let failures = materialize_failures spec graph ~window:(63 * d) in
    let o = Run.unknown_f ~graph ~failures ~params ~seed:spec.seed () in
    let via =
      match o.Run.how with
      | Unknown_f.Via_slot g -> Printf.sprintf "slot %d" g
      | Unknown_f.Via_brute_force -> "brute-force fallback"
    in
    {
      outcome =
        of_common o.Run.common ~value:(Some (Run.value_exn o.Run.result)) ~via ~violation:None;
      report = None;
    }
  | Chaos_pair { bit_cap } ->
    (* A watched AGG+VERI pair through the chaos oracle: the service is
       the campaign's trial transport here (see [Chaos_gate]). *)
    let schedule =
      match spec.failures with
      | Explicit schedule -> schedule
      | Generated _ ->
        Failure.to_list (materialize_failures spec graph ~window:(Pair.duration params))
    in
    let scenario =
      {
        Incident.family = spec.family;
        n = spec.n;
        topo_seed = spec.topo_seed;
        run_seed = spec.seed;
        c = spec.c;
        t = spec.t;
        inputs = spec.inputs;
        schedule;
        faults = Engine.no_faults;
        kind = Incident.Pair_run;
        bit_cap;
      }
    in
    let report = Campaign.run_pair scenario in
    let value =
      match report.Campaign.verdict with
      | Some { Pair.result = Agg.Value v; _ } -> Some v
      | _ -> None
    in
    let outcome =
      {
        value;
        correct = report.Campaign.correct;
        cc = report.Campaign.cc;
        rounds = report.Campaign.rounds;
        flooding_rounds = (report.Campaign.rounds + d - 1) / d;
        via = "chaos pair";
        violation =
          Option.map (fun (v : Engine.violation) -> v.Engine.invariant) report.Campaign.violation;
      }
    in
    { outcome; report = Some report }
