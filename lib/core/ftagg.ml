(** Fault-tolerant aggregation with a near-optimal communication-time
    tradeoff — the public face of the library.

    This module re-exports every component under one roof and adds a
    small high-level API ({!Network}) for the common case: build a
    topology, pick inputs, choose a failure adversary, and ask the root
    for an aggregate within a time budget.

    Reproduces Zhao, Yu & Chen, {e Near-Optimal Communication-Time
    Tradeoff in Fault-Tolerant Computation of Aggregate Functions},
    PODC 2014. *)

(** {1 Substrates} *)

module Prng = Ftagg_util.Prng
module Bits = Ftagg_util.Bits
module Stats = Ftagg_util.Stats
module Table = Ftagg_util.Table
module Chart = Ftagg_util.Chart
module Graph = Ftagg_graph.Graph
module Gen = Ftagg_graph.Gen
module Path = Ftagg_graph.Path
module Engine = Ftagg_sim.Engine
module Failure = Ftagg_sim.Failure
module Metrics = Ftagg_sim.Metrics
module Trace = Ftagg_sim.Trace

(** {1 Observability (telemetry registry, spans, exporters)} *)

module Registry = Ftagg_obs.Registry
module Span = Ftagg_obs.Span
module Obs = Ftagg_obs.Obs
module Export = Ftagg_obs.Export
module Sweep_obs = Ftagg_obs.Sweep_obs

(** {1 Aggregate functions} *)

module Caaf = Ftagg_caaf.Caaf
module Instances = Ftagg_caaf.Instances

(** {1 Protocols (§4–§6)} *)

module Params = Ftagg_proto.Params
module Message = Ftagg_proto.Message
module Flood = Ftagg_proto.Flood
module Agg = Ftagg_proto.Agg
module Veri = Ftagg_proto.Veri
module Pair = Ftagg_proto.Pair
module Tradeoff = Ftagg_proto.Tradeoff
module Unknown_f = Ftagg_proto.Unknown_f
module Brute_force = Ftagg_proto.Brute_force
module Folklore = Ftagg_proto.Folklore
module Checker = Ftagg_proto.Checker
module Backend = Ftagg_proto.Backend
module Run = Ftagg_proto.Run

(** {1 Approximate-aggregation baselines (related work [8], [14])} *)

module Gossip = Ftagg_proto.Gossip
module Flow_updating = Ftagg_proto.Flow_updating
module Synopsis = Ftagg_proto.Synopsis

(** {1 Lower-bound structure} *)

module Cut_sim = Ftagg_proto.Cut_sim

(** {1 Empirical worst-case search (the FT0 landscape)} *)

module Worstcase = Ftagg_proto.Worstcase

(** {1 Chaos: adaptive adversaries, watchdogs, shrinking incident reports} *)

module Adversary = Ftagg_chaos.Adversary
module Watchdog = Ftagg_chaos.Watchdog
module Incident = Ftagg_chaos.Incident
module Shrink = Ftagg_chaos.Shrink
module Campaign = Ftagg_chaos.Campaign
module Schedule = Ftagg_chaos.Schedule

(** {1 Churn and elasticity (topology generations, scenario matrix)} *)

module Membership = Ftagg_churn.Membership
module Scenario = Ftagg_churn.Scenario

(** {1 Long-lived aggregation service (scheduling, caching, checkpoints)} *)

module Service = Ftagg_service

(** {1 Socket transport (Unix/TCP listener, line framing, token auth)} *)

module Transport = Ftagg_transport

(** {1 Shared on-disk outcome store (append-only segments, CRC records)} *)

module Store = Ftagg_store.Store
module Segment = Ftagg_store.Segment

(** {1 Sharded fleet (consistent-hash ring, routing, fan-out client)} *)

module Ring = Ftagg_fleet.Ring
module Router = Ftagg_fleet.Router
module Fleet = Ftagg_fleet.Fleet

(** {1 Massive scale (streaming CSR graphs, multi-domain executor)} *)

module Bigraph = Ftagg_scale.Bigraph
module Scale_pool = Ftagg_scale.Pool
module Scale_mem = Ftagg_scale.Mem
module Scale_executor = Ftagg_scale.Executor
module Scale_run = Ftagg_scale.Scale_run

(** {1 Derived queries} *)

module Selection = Ftagg_select.Selection
module Derived = Ftagg_select.Derived

(** {1 Multicore sweeps} *)

module Sweep = Ftagg_runner.Sweep
module Bench_io = Ftagg_runner.Bench_io

(** {1 Two-party lower-bound machinery (§7)} *)

module Channel = Ftagg_twoparty.Channel
module Cycle_promise = Ftagg_twoparty.Cycle_promise
module Unionsize = Ftagg_twoparty.Unionsize
module Equality = Ftagg_twoparty.Equality
module Sperner = Ftagg_twoparty.Sperner
module Bounds = Ftagg_twoparty.Bounds

(** {1 High-level API} *)

module Network = struct
  (** A ready-to-run system: topology plus model constants. *)
  type t = {
    graph : Graph.t;
    c : int;
    seed : int;
  }

  type report = {
    result : Agg.result;  (** the root's answer; [Aborted] if it gave up *)
    correct : bool;  (** checked against the ground-truth interval *)
    cc : int;  (** max bits broadcast by any single node *)
    rounds : int;
    flooding_rounds : int;
  }

  let value_exn r = Run.value_exn r.result

  let create ?(c = 2) ?(seed = 0) (family : Gen.family) ~n () =
    { graph = Gen.build family ~n ~seed; c; seed }

  let n t = Graph.n t.graph
  let graph t = t.graph

  let diameter t =
    match Path.diameter t.graph with Some d -> max d 1 | None -> assert false

  let no_failures t = Failure.none ~n:(n t)

  let random_failures ?(max_round = 1000) t ~budget ~seed =
    Failure.random t.graph ~rng:(Prng.create seed) ~budget ~max_round

  let params ?caaf t ~inputs = Params.make ~c:t.c ?caaf ~graph:t.graph ~inputs ()

  let report_of (c : Run.common) result =
    {
      result;
      correct = c.Run.correct;
      cc = Metrics.cc c.Run.metrics;
      rounds = c.Run.rounds;
      flooding_rounds = c.Run.flooding_rounds;
    }

  (** Fault-tolerant aggregation via Algorithm 1 under a TC budget of [b]
      flooding rounds and at most [f] edge failures. *)
  let aggregate ?caaf ?failures ?loss t ~inputs ~b ~f =
    let params = params ?caaf t ~inputs in
    let failures = Option.value failures ~default:(no_failures t) in
    let o = Run.tradeoff ?loss ~graph:t.graph ~failures ~params ~b ~f ~seed:t.seed () in
    report_of o.Run.common o.Run.result

  (** SUM with default settings. *)
  let sum ?failures ?loss t ~inputs ~b ~f = aggregate ?failures ?loss t ~inputs ~b ~f

  (** Aggregation when [f] is unknown: the doubling-trick protocol. *)
  let aggregate_unknown_f ?caaf ?failures ?loss t ~inputs =
    let params = params ?caaf t ~inputs in
    let failures = Option.value failures ~default:(no_failures t) in
    let o = Run.unknown_f ?loss ~graph:t.graph ~failures ~params ~seed:t.seed () in
    report_of o.Run.common o.Run.result

  (** The [k]-th smallest input, [1]-based. *)
  let select ?failures t ~inputs ~b ~f ~k =
    let params = params t ~inputs in
    let failures = Option.value failures ~default:(no_failures t) in
    Selection.select ~graph:t.graph ~failures ~params ~b ~f ~k ~seed:t.seed

  let median ?failures t ~inputs ~b ~f =
    let params = params t ~inputs in
    let failures = Option.value failures ~default:(no_failures t) in
    Selection.median ~graph:t.graph ~failures ~params ~b ~f ~seed:t.seed

  (* Deprecated pre-overhaul accessor (one release): [report.value] as a
     function now that the field holds an [Agg.result]. *)
  let value = value_exn
end
