(** Fault-tolerant aggregation with a near-optimal communication-time
    tradeoff — the public face of the library.

    This module re-exports every component under one roof and adds a
    small high-level API ({!Network}) for the common case: build a
    topology, pick inputs, choose a failure adversary, and ask the root
    for an aggregate within a time budget.

    Reproduces Zhao, Yu & Chen, {e Near-Optimal Communication-Time
    Tradeoff in Fault-Tolerant Computation of Aggregate Functions},
    PODC 2014. *)

(** {1 Substrates} *)

module Prng = Ftagg_util.Prng
module Bits = Ftagg_util.Bits
module Stats = Ftagg_util.Stats
module Table = Ftagg_util.Table
module Chart = Ftagg_util.Chart
module Graph = Ftagg_graph.Graph
module Gen = Ftagg_graph.Gen
module Path = Ftagg_graph.Path
module Engine = Ftagg_sim.Engine
module Failure = Ftagg_sim.Failure
module Metrics = Ftagg_sim.Metrics
module Trace = Ftagg_sim.Trace

(** {1 Observability (telemetry registry, spans, exporters)} *)

module Registry = Ftagg_obs.Registry
module Span = Ftagg_obs.Span
module Obs = Ftagg_obs.Obs
module Export = Ftagg_obs.Export
module Sweep_obs = Ftagg_obs.Sweep_obs

(** {1 Aggregate functions} *)

module Caaf = Ftagg_caaf.Caaf
module Instances = Ftagg_caaf.Instances

(** {1 Protocols (§4–§6)} *)

module Params = Ftagg_proto.Params
module Message = Ftagg_proto.Message
module Flood = Ftagg_proto.Flood
module Agg = Ftagg_proto.Agg
module Veri = Ftagg_proto.Veri
module Pair = Ftagg_proto.Pair
module Tradeoff = Ftagg_proto.Tradeoff
module Unknown_f = Ftagg_proto.Unknown_f
module Brute_force = Ftagg_proto.Brute_force
module Folklore = Ftagg_proto.Folklore
module Checker = Ftagg_proto.Checker
module Backend = Ftagg_proto.Backend
module Run = Ftagg_proto.Run

(** {1 Approximate-aggregation baselines (related work [8], [14])} *)

module Gossip = Ftagg_proto.Gossip
module Flow_updating = Ftagg_proto.Flow_updating
module Synopsis = Ftagg_proto.Synopsis

(** {1 Lower-bound structure} *)

module Cut_sim = Ftagg_proto.Cut_sim

(** {1 Empirical worst-case search (the FT0 landscape)} *)

module Worstcase = Ftagg_proto.Worstcase

(** {1 Chaos: adaptive adversaries, watchdogs, shrinking incident reports} *)

module Adversary = Ftagg_chaos.Adversary
module Watchdog = Ftagg_chaos.Watchdog
module Incident = Ftagg_chaos.Incident
module Shrink = Ftagg_chaos.Shrink
module Campaign = Ftagg_chaos.Campaign
module Schedule = Ftagg_chaos.Schedule

(** {1 Churn and elasticity (topology generations, scenario matrix)} *)

module Membership = Ftagg_churn.Membership
module Scenario = Ftagg_churn.Scenario

(** {1 Long-lived aggregation service (scheduling, caching, checkpoints)} *)

module Service = Ftagg_service

(** {1 Socket transport (Unix/TCP listener, line framing, token auth)} *)

module Transport = Ftagg_transport

(** {1 Shared on-disk outcome store (append-only segments, CRC records)} *)

module Store = Ftagg_store.Store
module Segment = Ftagg_store.Segment

(** {1 Sharded fleet (consistent-hash ring, routing, fan-out client)} *)

module Ring = Ftagg_fleet.Ring
module Router = Ftagg_fleet.Router
module Fleet = Ftagg_fleet.Fleet

(** {1 Massive scale (streaming CSR graphs, multi-domain executor)} *)

module Bigraph = Ftagg_scale.Bigraph
module Scale_pool = Ftagg_scale.Pool
module Scale_mem = Ftagg_scale.Mem
module Scale_executor = Ftagg_scale.Executor
module Scale_run = Ftagg_scale.Scale_run

(** {1 Derived queries} *)

module Selection = Ftagg_select.Selection
module Derived = Ftagg_select.Derived

(** {1 Multicore sweeps} *)

module Sweep = Ftagg_runner.Sweep
module Bench_io = Ftagg_runner.Bench_io

(** {1 Two-party lower-bound machinery (§7)} *)

module Channel = Ftagg_twoparty.Channel
module Cycle_promise = Ftagg_twoparty.Cycle_promise
module Unionsize = Ftagg_twoparty.Unionsize
module Equality = Ftagg_twoparty.Equality
module Sperner = Ftagg_twoparty.Sperner
module Bounds = Ftagg_twoparty.Bounds

(** {1 High-level API} *)

module Network : sig
  (** A ready-to-run system: topology plus model constants. *)
  type t = {
    graph : Graph.t;
    c : int;
    seed : int;
  }

  (** What a run tells you, in one record: the root's answer plus the
      cost and correctness accounting.  [result] is [Agg.Aborted] when
      the protocol gave up (the facade's protocols never do under the
      paper's model, but ablations and lossy runs can). *)
  type report = {
    result : Agg.result;  (** the root's answer; [Aborted] if it gave up *)
    correct : bool;  (** checked against the ground-truth interval *)
    cc : int;  (** max bits broadcast by any single node *)
    rounds : int;
    flooding_rounds : int;
  }

  val value_exn : report -> int
  (** The computed value; raises [Invalid_argument] on [Aborted]. *)

  val create : ?c:int -> ?seed:int -> Gen.family -> n:int -> unit -> t

  val n : t -> int
  val graph : t -> Graph.t
  val diameter : t -> int

  val no_failures : t -> Failure.t
  val random_failures : ?max_round:int -> t -> budget:int -> seed:int -> Failure.t

  val params : ?caaf:Caaf.t -> t -> inputs:int array -> Params.t

  val aggregate :
    ?caaf:Caaf.t -> ?failures:Failure.t -> ?loss:float -> t -> inputs:int array -> b:int -> f:int -> report
  (** Fault-tolerant aggregation via Algorithm 1 under a TC budget of [b]
      flooding rounds and at most [f] edge failures.  [loss] (default
      [0.]) is a per-edge delivery loss probability forwarded to the
      engine — non-zero loss leaves the paper's model. *)

  val sum :
    ?failures:Failure.t -> ?loss:float -> t -> inputs:int array -> b:int -> f:int -> report
  (** SUM with default settings. *)

  val aggregate_unknown_f :
    ?caaf:Caaf.t -> ?failures:Failure.t -> ?loss:float -> t -> inputs:int array -> report
  (** Aggregation when [f] is unknown: the doubling-trick protocol. *)

  val select :
    ?failures:Failure.t -> t -> inputs:int array -> b:int -> f:int -> k:int -> Selection.outcome
  (** The [k]-th smallest input, [1]-based. *)

  val median :
    ?failures:Failure.t -> t -> inputs:int array -> b:int -> f:int -> Selection.outcome

  val value : report -> int
  [@@ocaml.deprecated "use Network.value_exn (report.value is now report.result : Agg.result)"]
end
