(** A seeded, deterministic consistent-hash ring with virtual nodes.

    The same (endpoints, vnodes, seed) triple builds the same ring in
    every process — placement needs no coordination.  Keys are hashed
    with FNV-1a 64 (the job-digest construction), so the ring is stable
    across OCaml versions and heterogeneous fleet members. *)

type t

val create : ?vnodes:int -> ?seed:int -> string list -> t
(** [create endpoints] builds the ring ([vnodes] defaults to 64 points
    per endpoint; duplicates are dropped, first-occurrence order kept).
    @raise Invalid_argument on an empty endpoint list or [vnodes <= 0]. *)

val owner : t -> string -> string
(** The endpoint owning [key]: first ring point clockwise of its hash. *)

val successors : t -> string -> int -> string list
(** [successors t key k]: up to [k] distinct endpoints in ring order
    starting at the owner — the failover preference list for [key]. *)

val members : t -> string list
val vnodes : t -> int
val seed : t -> int
