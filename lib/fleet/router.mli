(** Digest→endpoint routing over a {!Ring} with client-side health
    marks: the owner first, ring successors as failover, down endpoints
    pushed to the back of the preference list. *)

type t

val create : Ring.t -> t
val ring : t -> Ring.t
val endpoints : t -> string list

val route : t -> string -> string list
(** Full preference list for a digest: owner, then successors; endpoints
    marked down are moved to the back (never dropped — a later round may
    mark them back up). *)

val route_up : t -> string -> string option
(** First endpoint of {!route} that is marked up, if any. *)

val mark_down : t -> string -> unit
val mark_up : t -> string -> unit
val up : t -> string -> bool
val up_endpoints : t -> string list

val failovers : t -> int
(** How many endpoints have ever been marked down. *)
