(** The fleet-aware client: consistent-hash fan-out of a job workload
    over N server endpoints, with failover to ring successors when an
    endpoint dies mid-run and one merged report at the end.

    Each endpoint is driven through {!Ftagg_transport.Client.session}
    (reconnects, jittered backoff, idempotent resubmit); without a
    [pump] every endpoint of a routing round runs on its own domain, so
    the fan-out is as parallel as the fleet is wide. *)

type report = {
  r_jobs : int;
  r_completed : int;  (** jobs that got a completion response *)
  r_failed : int;  (** jobs no endpoint ever answered *)
  r_errors : int;  (** completions whose outcome is an error, plus refusals *)
  r_cached : int;  (** completions served from a cache (L1 or store) *)
  r_rounds : int;  (** routing rounds (1 = no failover was needed) *)
  r_failovers : int;  (** jobs re-routed after an endpoint died *)
  r_reconnects : int;
  r_per_endpoint : (string * int) list;  (** completions per endpoint *)
  r_cache_hits : int;  (** summed over surviving endpoints *)
  r_cache_misses : int;
  r_completions : (int * Ftagg_runner.Bench_io.json) list;
      (** input job index → its completion object, in index order *)
}

val report_to_json : report -> Ftagg_runner.Bench_io.json

val run :
  ?vnodes:int ->
  ?ring_seed:int ->
  ?token:string ->
  ?tenant:string ->
  ?retry:Ftagg_transport.Client.retry ->
  ?pump:(unit -> unit) ->
  ?max_rounds:int ->
  endpoints:string list ->
  jobs:Ftagg_runner.Bench_io.json list ->
  unit ->
  (report, string) result
(** Fan [jobs] (job JSON objects, as in the [submit] op) out over
    [endpoints] (address strings, ["unix:PATH"] or ["tcp:HOST:PORT"]).
    Placement is by {!Ring} on the client-computed content digest, so
    every fleet member routes identically.  Endpoints whose session
    exhausts its retries are marked down and their unanswered jobs
    re-routed to ring successors, up to [max_rounds] rounds.  With
    [pump] the endpoints are driven sequentially on the calling thread
    (deterministic, for in-process listeners); without it each endpoint
    gets its own domain. *)
