(* A seeded consistent-hash ring with virtual nodes.

   Every endpoint contributes [vnodes] points on a 64-bit circle, placed
   by FNV-1a over "endpoint#replica#seed"; a key is routed to the first
   point clockwise of its own hash.  Determinism is the contract: the
   same (endpoints, vnodes, seed) triple builds the same ring in every
   process, so fleet clients agree on job placement without talking to
   each other — and virtual nodes smooth the load so one endpoint does
   not own a disproportionate arc. *)

type t = {
  points : (int64 * string) array;  (* sorted by hash, unsigned order *)
  members : string list;  (* in construction order, deduplicated *)
  vnodes : int;
  seed : int;
}

(* FNV-1a 64 — the same construction as the job digest, so ring placement
   is stable across OCaml versions and word sizes. *)
let fnv64 s =
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun ch ->
      h := Int64.logxor !h (Int64.of_int (Char.code ch));
      h := Int64.mul !h 0x100000001b3L)
    s;
  !h

let ucompare (a : int64) b = Int64.unsigned_compare a b

let create ?(vnodes = 64) ?(seed = 1) endpoints =
  if endpoints = [] then invalid_arg "Ring.create: no endpoints";
  if vnodes <= 0 then invalid_arg "Ring.create: vnodes must be positive";
  let members = List.sort_uniq compare endpoints in
  let members =
    (* keep first-occurrence order, not sorted order, for reporting *)
    List.filter (fun e -> List.mem e members) endpoints
    |> List.fold_left (fun acc e -> if List.mem e acc then acc else e :: acc) []
    |> List.rev
  in
  let points =
    List.concat_map
      (fun endpoint ->
        List.init vnodes (fun i ->
            (fnv64 (Printf.sprintf "%s#%d#%d" endpoint i seed), endpoint)))
      members
  in
  let points = Array.of_list points in
  Array.sort
    (fun (ha, ea) (hb, eb) ->
      let c = ucompare ha hb in
      if c <> 0 then c else compare ea eb)
    points;
  { points; members; vnodes; seed }

let members t = t.members
let vnodes t = t.vnodes
let seed t = t.seed

let key_hash t key = fnv64 (Printf.sprintf "%d|%s" t.seed key)

(* Index of the first point clockwise of [h] (wrapping). *)
let first_at_or_after t h =
  let n = Array.length t.points in
  let lo = ref 0 and hi = ref n in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    let ph, _ = t.points.(mid) in
    if ucompare ph h < 0 then lo := mid + 1 else hi := mid
  done;
  if !lo = n then 0 else !lo

let owner t key =
  let start = first_at_or_after t (key_hash t key) in
  snd t.points.(start)

(* Up to [k] distinct endpoints in ring order starting at the owner —
   the failover preference list for [key]. *)
let successors t key k =
  let n = Array.length t.points in
  let start = first_at_or_after t (key_hash t key) in
  let rec walk i found acc =
    if found >= k || i >= n then List.rev acc
    else
      let _, e = t.points.((start + i) mod n) in
      if List.mem e acc then walk (i + 1) found acc
      else walk (i + 1) (found + 1) (e :: acc)
  in
  walk 0 0 []
