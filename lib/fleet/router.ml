(* Digest → endpoint routing over the consistent-hash ring, with health
   marks.  [route] returns the full preference list (owner first, then
   ring successors) with endpoints currently marked down moved to the
   back — they still appear, because "down" is a client-side judgment
   that a later round may revise, but nothing is ever routed to them
   while an up endpoint remains. *)

type t = {
  ring : Ring.t;
  down : (string, unit) Hashtbl.t;
  mutable failovers : int;
}

let create ring = { ring; down = Hashtbl.create 4; failovers = 0 }

let ring t = t.ring
let endpoints t = Ring.members t.ring
let up t e = not (Hashtbl.mem t.down e)
let up_endpoints t = List.filter (up t) (endpoints t)

let mark_down t e =
  if not (Hashtbl.mem t.down e) then begin
    Hashtbl.replace t.down e ();
    t.failovers <- t.failovers + 1
  end

let mark_up t e = Hashtbl.remove t.down e
let failovers t = t.failovers

let route t digest =
  let prefs = Ring.successors t.ring digest (List.length (endpoints t)) in
  let alive, dead = List.partition (up t) prefs in
  alive @ dead

let route_up t digest =
  match List.filter (up t) (route t digest) with
  | [] -> None
  | e :: _ -> Some e
