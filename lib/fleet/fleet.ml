(* The fleet-aware client: fan a workload of job specs out over N server
   endpoints by consistent-hash routing on the content digest, drive
   every endpoint through the resilient session machinery (reconnects,
   jittered backoff, idempotent resubmit), fail jobs over to ring
   successors when an endpoint dies mid-run, and merge the per-endpoint
   outcomes and cache metrics into one report.

   Concurrency: with no [pump], each endpoint of a round is driven by
   its own domain (true parallel fan-out across server processes); with
   a [pump] callback the endpoints are driven sequentially on the
   calling thread, the pump keeping in-process listeners alive — the
   deterministic mode tests use.

   Placement keys on the digest computed client-side from default
   settings.  Servers recompute their own digest for caching; the client
   one only has to be deterministic, so every fleet member routes the
   same job the same way. *)

module Bench_io = Ftagg_runner.Bench_io
module Job = Ftagg_service.Job
module Reconfig = Ftagg_service.Reconfig
module Listener = Ftagg_transport.Listener
module Client = Ftagg_transport.Client

type report = {
  r_jobs : int;
  r_completed : int;  (* jobs that got a completion response *)
  r_failed : int;  (* jobs with no response from any endpoint *)
  r_errors : int;  (* completions whose outcome is an error *)
  r_cached : int;  (* completions served from a cache (L1 or store) *)
  r_rounds : int;  (* routing rounds (1 = no failover needed) *)
  r_failovers : int;  (* jobs re-routed after an endpoint died *)
  r_reconnects : int;
  r_per_endpoint : (string * int) list;  (* completions per endpoint *)
  r_cache_hits : int;  (* summed over surviving endpoints' status *)
  r_cache_misses : int;
  r_completions : (int * Bench_io.json) list;  (* job index -> completion *)
}

let report_to_json r =
  Bench_io.Obj
    [
      ("jobs", Bench_io.Int r.r_jobs);
      ("completed", Bench_io.Int r.r_completed);
      ("failed", Bench_io.Int r.r_failed);
      ("errors", Bench_io.Int r.r_errors);
      ("cached", Bench_io.Int r.r_cached);
      ("rounds", Bench_io.Int r.r_rounds);
      ("failovers", Bench_io.Int r.r_failovers);
      ("reconnects", Bench_io.Int r.r_reconnects);
      ( "per_endpoint",
        Bench_io.Obj (List.map (fun (e, n) -> (e, Bench_io.Int n)) r.r_per_endpoint) );
      ("cache_hits", Bench_io.Int r.r_cache_hits);
      ("cache_misses", Bench_io.Int r.r_cache_misses);
    ]

(* ---- one endpoint, one round ---- *)

type drive_result = {
  d_endpoint : string;
  d_completions : (int * Bench_io.json) list;
  d_leftover : int list;  (* job indices to fail over: endpoint died *)
  d_rejected : (int * string) list;  (* permanent refusals (bad job, auth) *)
  d_dead : bool;
  d_reconnects : int;
  d_cache_hits : int;
  d_cache_misses : int;
}

let obj_field json key = Bench_io.member key json

let submit_line job =
  Bench_io.to_string ~indent:false
    (Bench_io.Obj [ ("op", Bench_io.String "submit"); ("job", job) ])

let drain_line = {|{"op": "drain"}|}
let status_line = {|{"op": "status"}|}

(* How many submits ride between drains: keeps the fan-out below any
   sane queue capacity without a per-server configuration handshake. *)
let chunk = 16

let drive ?token ?tenant ~retry ?pump endpoint jobs =
  let dead = ref false in
  let completions = ref [] in
  let rejected = ref [] in
  let outstanding = Hashtbl.create 16 in  (* server job id -> our index *)
  let unsubmitted = ref jobs in
  let reconnects = ref 0 in
  let cache_hits = ref 0 and cache_misses = ref 0 in
  (match Listener.address_of_string endpoint with
  | Error e ->
    rejected := List.map (fun (idx, _, _) -> (idx, "bad endpoint: " ^ e)) jobs;
    unsubmitted := []
  | Ok address ->
    let s = Client.session ?token ?tenant ~retry ?pump address in
    let request line =
      match Client.srequest s line with
      | Ok response -> Some response
      | Error (Client.Refused _) | Error (Client.Exhausted _) ->
        dead := true;
        None
    in
    let collect_drain () =
      match request drain_line with
      | None -> ()
      | Some response -> (
        match Bench_io.of_string response with
        | Error _ -> ()
        | Ok json -> (
          match obj_field json "completed" with
          | Some (Bench_io.List items) ->
            List.iter
              (fun item ->
                match obj_field item "id" with
                | Some (Bench_io.String id) -> (
                  match Hashtbl.find_opt outstanding id with
                  | Some idx ->
                    Hashtbl.remove outstanding id;
                    completions := (idx, item) :: !completions
                  | None -> ())
                | _ -> ())
              items
          | _ -> ()))
    in
    let rec submit_one ?(retried = false) ((idx, job, _digest) as entry) =
      match request (submit_line job) with
      | None -> ()
      | Some response -> (
        match Bench_io.of_string response with
        | Error e -> rejected := (idx, "unparseable response: " ^ e) :: !rejected
        | Ok json -> (
          match (obj_field json "ok", obj_field json "id") with
          | Some (Bench_io.Bool true), Some (Bench_io.String id) ->
            Hashtbl.replace outstanding id idx
          | _ -> (
            match obj_field json "error" with
            | Some (Bench_io.String "backpressure") when not retried ->
              (* The queue is full: flush it and try once more. *)
              collect_drain ();
              if not !dead then submit_one ~retried:true entry
            | Some (Bench_io.String e) -> rejected := (idx, e) :: !rejected
            | _ -> rejected := (idx, "malformed response") :: !rejected)))
    in
    let rec pump_jobs n = function
      | [] -> unsubmitted := []
      | rest when !dead -> unsubmitted := rest
      | entry :: rest ->
        submit_one entry;
        if !dead then
          (* the endpoint died under this very submit: no id was ever
             registered, so the entry must ride the failover list too *)
          unsubmitted := entry :: rest
        else if n + 1 >= chunk then begin
          collect_drain ();
          pump_jobs 0 rest
        end
        else pump_jobs (n + 1) rest
    in
    pump_jobs 0 jobs;
    if not !dead then collect_drain ();
    (* One more drain picks up idempotent resubmits that landed after the
       first drain answered. *)
    if (not !dead) && Hashtbl.length outstanding > 0 then collect_drain ();
    if not !dead then begin
      match request status_line with
      | None -> ()
      | Some response -> (
        match Bench_io.of_string response with
        | Error _ -> ()
        | Ok json -> (
          match obj_field json "cache" with
          | Some cache ->
            let geti k =
              match Option.bind (obj_field cache k) Bench_io.to_int with
              | Some v -> v
              | None -> 0
            in
            cache_hits := geti "hits";
            cache_misses := geti "misses"
          | None -> ()))
    end;
    reconnects := Client.reconnects s;
    Client.sclose s);
  let leftover =
    List.filter_map
      (fun (idx, _, _) ->
        let answered = List.exists (fun (i, _) -> i = idx) !completions in
        let refused = List.exists (fun (i, _) -> i = idx) !rejected in
        if answered || refused then None else Some idx)
      !unsubmitted
    @ Hashtbl.fold (fun _ idx acc -> idx :: acc) outstanding []
  in
  {
    d_endpoint = endpoint;
    d_completions = !completions;
    d_leftover = List.sort_uniq compare leftover;
    d_rejected = !rejected;
    d_dead = !dead;
    d_reconnects = !reconnects;
    d_cache_hits = !cache_hits;
    d_cache_misses = !cache_misses;
  }

(* ---- the fan-out ---- *)

let run ?(vnodes = 64) ?(ring_seed = 1) ?token ?tenant ?(retry = Client.retry ()) ?pump
    ?(max_rounds = 4) ~endpoints ~jobs () =
  if endpoints = [] then Error "fleet: no endpoints"
  else begin
    let ring = Ring.create ~vnodes ~seed:ring_seed endpoints in
    let router = Router.create ring in
    let n_jobs = List.length jobs in
    let results : (int, Bench_io.json) Hashtbl.t = Hashtbl.create (max 16 n_jobs) in
    let refusals : (int, string) Hashtbl.t = Hashtbl.create 4 in
    let per_endpoint : (string, int) Hashtbl.t = Hashtbl.create 4 in
    let reconnects = ref 0 in
    let cache = Hashtbl.create 4 in  (* endpoint -> (hits, misses), last seen *)
    (* Jobs that fail client-side digest computation are refused up
       front: they could never route deterministically. *)
    let routable =
      List.concat
        (List.mapi
           (fun idx job ->
             match Job.of_json ~settings:Reconfig.default job with
             | Ok spec -> [ (idx, job, Job.digest spec) ]
             | Error e ->
               Hashtbl.replace refusals idx e;
               [])
           jobs)
    in
    let pending = ref routable in
    let rounds = ref 0 in
    let failovers = ref 0 in
    while !pending <> [] && Router.up_endpoints router <> [] && !rounds < max_rounds do
      incr rounds;
      if !rounds > 1 then begin
        failovers := !failovers + List.length !pending;
        (* A failover round means somebody just died: probe the rest
           before routing, so a successor that is also gone is skipped
           outright instead of burning a whole retry budget on it. *)
        List.iter
          (fun ep ->
            match Listener.address_of_string ep with
            | Ok address when not (Client.probe address) -> Router.mark_down router ep
            | _ -> ())
          (Router.up_endpoints router)
      end;
      (* Group this round's jobs by their first live routed endpoint. *)
      let groups : (string, (int * Bench_io.json * string) list ref) Hashtbl.t =
        Hashtbl.create 8
      in
      List.iter
        (fun ((_, _, digest) as entry) ->
          match Router.route_up router digest with
          | None -> ()
          | Some endpoint -> (
            match Hashtbl.find_opt groups endpoint with
            | Some l -> l := entry :: !l
            | None -> Hashtbl.add groups endpoint (ref [ entry ])))
        !pending;
      let assignments =
        Hashtbl.fold (fun endpoint l acc -> (endpoint, List.rev !l) :: acc) groups []
        |> List.sort compare
      in
      let drive_one (endpoint, group) = drive ?token ?tenant ~retry ?pump endpoint group in
      let round_results =
        match pump with
        | Some _ -> List.map drive_one assignments
        | None ->
          (* One domain per endpoint: the fan-out is as parallel as the
             fleet is wide. *)
          let handles =
            List.map (fun a -> Domain.spawn (fun () -> drive_one a)) assignments
          in
          List.map Domain.join handles
      in
      let still_pending = ref [] in
      List.iter
        (fun d ->
          List.iter
            (fun (idx, item) ->
              if not (Hashtbl.mem results idx) then begin
                Hashtbl.replace results idx item;
                Hashtbl.replace per_endpoint d.d_endpoint
                  (1 + Option.value (Hashtbl.find_opt per_endpoint d.d_endpoint) ~default:0)
              end)
            d.d_completions;
          List.iter (fun (idx, why) -> Hashtbl.replace refusals idx why) d.d_rejected;
          reconnects := !reconnects + d.d_reconnects;
          if d.d_dead then Router.mark_down router d.d_endpoint
          else Hashtbl.replace cache d.d_endpoint (d.d_cache_hits, d.d_cache_misses);
          List.iter
            (fun idx ->
              match List.find_opt (fun (i, _, _) -> i = idx) !pending with
              | Some entry -> still_pending := entry :: !still_pending
              | None -> ())
            d.d_leftover)
        round_results;
      pending :=
        List.filter
          (fun (idx, _, _) -> not (Hashtbl.mem results idx || Hashtbl.mem refusals idx))
          (List.rev !still_pending)
    done;
    let completions =
      List.sort compare (Hashtbl.fold (fun idx item acc -> (idx, item) :: acc) results [])
    in
    let cached, errors =
      List.fold_left
        (fun (c, e) (_, item) ->
          let c =
            match obj_field item "cached" with Some (Bench_io.Bool true) -> c + 1 | _ -> c
          in
          let e = match obj_field item "failed" with Some _ -> e + 1 | _ -> e in
          (c, e))
        (0, 0) completions
    in
    let cache_hits, cache_misses =
      Hashtbl.fold (fun _ (h, m) (ah, am) -> (ah + h, am + m)) cache (0, 0)
    in
    Ok
      {
        r_jobs = n_jobs;
        r_completed = List.length completions;
        r_failed = n_jobs - List.length completions;
        r_errors = errors + Hashtbl.length refusals;
        r_cached = cached;
        r_rounds = !rounds;
        r_failovers = !failovers;
        r_reconnects = !reconnects;
        r_per_endpoint =
          List.sort compare (Hashtbl.fold (fun e n acc -> (e, n) :: acc) per_endpoint []);
        r_cache_hits = cache_hits;
        r_cache_misses = cache_misses;
        r_completions = completions;
      }
  end
