module Gen = Ftagg_graph.Gen
module Engine = Ftagg_sim.Engine
module J = Ftagg_runner.Bench_io

type kind =
  | Pair_run
  | Tradeoff_run of { b : int; f : int }
  | Backend_run of { backend : string; b : int; f : int }

type scenario = {
  family : Gen.family;
  n : int;
  topo_seed : int;
  run_seed : int;
  c : int;
  t : int;
  inputs : int array;
  schedule : (int * int) list;
  faults : Engine.faults;
  kind : kind;
  bit_cap : int option;
}

type shrink_stats = {
  s_tries : int;
  s_from_crashes : int;
  s_from_n : int;
}

type t = {
  adversary : string;
  scenario : scenario;
  violation : Engine.violation;
  shrink : shrink_stats option;
}

(* ---- family codec (machine form; Gen.family_name is for humans) ---- *)

let family_to_string = function
  | Gen.Path -> "path"
  | Gen.Ring -> "ring"
  | Gen.Grid -> "grid"
  | Gen.Star -> "star"
  | Gen.Binary_tree -> "binary_tree"
  | Gen.Complete -> "complete"
  | Gen.Random p -> Printf.sprintf "random:%h" p
  | Gen.Caterpillar -> "caterpillar"
  | Gen.Lollipop -> "lollipop"
  | Gen.Torus -> "torus"
  | Gen.Random_regular k -> Printf.sprintf "random_regular:%d" k

let family_of_string s =
  match String.split_on_char ':' s with
  | [ "path" ] -> Some Gen.Path
  | [ "ring" ] -> Some Gen.Ring
  | [ "grid" ] -> Some Gen.Grid
  | [ "star" ] -> Some Gen.Star
  | [ "binary_tree" ] -> Some Gen.Binary_tree
  | [ "complete" ] -> Some Gen.Complete
  | [ "random"; p ] -> Option.map (fun p -> Gen.Random p) (float_of_string_opt p)
  | [ "caterpillar" ] -> Some Gen.Caterpillar
  | [ "lollipop" ] -> Some Gen.Lollipop
  | [ "torus" ] -> Some Gen.Torus
  | [ "random_regular"; k ] -> Option.map (fun k -> Gen.Random_regular k) (int_of_string_opt k)
  | _ -> None

(* ---- JSON encoding ---- *)

let scenario_to_json sc =
  J.Obj
    [
      ("family", J.String (family_to_string sc.family));
      ("n", J.Int sc.n);
      ("topo_seed", J.Int sc.topo_seed);
      ("run_seed", J.Int sc.run_seed);
      ("c", J.Int sc.c);
      ("t", J.Int sc.t);
      ("inputs", J.List (Array.to_list (Array.map (fun x -> J.Int x) sc.inputs)));
      ("schedule", J.List (List.map (fun (u, r) -> J.List [ J.Int u; J.Int r ]) sc.schedule));
      ( "faults",
        J.Obj
          [
            ("loss", J.Float sc.faults.Engine.loss);
            ("dup", J.Float sc.faults.Engine.dup);
            ("delay", J.Float sc.faults.Engine.delay);
          ] );
      ( "kind",
        match sc.kind with
        | Pair_run -> J.String "pair"
        | Tradeoff_run { b; f } ->
          J.Obj [ ("tradeoff", J.Bool true); ("b", J.Int b); ("f", J.Int f) ]
        | Backend_run { backend; b; f } ->
          J.Obj [ ("backend", J.String backend); ("b", J.Int b); ("f", J.Int f) ] );
      ("bit_cap", match sc.bit_cap with None -> J.Null | Some c -> J.Int c);
    ]

let to_json inc =
  J.Obj
    [
      ("version", J.Int 1);
      ("adversary", J.String inc.adversary);
      ( "violation",
        J.Obj
          [
            ("at_round", J.Int inc.violation.Engine.at_round);
            ("invariant", J.String inc.violation.Engine.invariant);
            ("detail", J.String inc.violation.Engine.detail);
          ] );
      ("scenario", scenario_to_json inc.scenario);
      ( "shrink",
        match inc.shrink with
        | None -> J.Null
        | Some s ->
          J.Obj
            [
              ("tries", J.Int s.s_tries);
              ("from_crashes", J.Int s.s_from_crashes);
              ("from_n", J.Int s.s_from_n);
            ] );
    ]

(* ---- JSON decoding ---- *)

exception Bad of string

let req field v = match v with Some v -> v | None -> raise (Bad field)
let get_int field j = req field (Option.bind (J.member field j) J.to_int)
let get_float field j = req field (Option.bind (J.member field j) J.to_float)
let get_string field j = req field (Option.bind (J.member field j) J.to_string_v)

let scenario_of_json j =
  let family = req "family" (family_of_string (get_string "family" j)) in
  let inputs =
    req "inputs" (Option.bind (J.member "inputs" j) J.to_list)
    |> List.map (fun x -> req "inputs" (J.to_int x))
    |> Array.of_list
  in
  let schedule =
    req "schedule" (Option.bind (J.member "schedule" j) J.to_list)
    |> List.map (fun entry ->
           match J.to_list entry with
           | Some [ u; r ] -> (req "schedule" (J.to_int u), req "schedule" (J.to_int r))
           | _ -> raise (Bad "schedule"))
  in
  let faults =
    match J.member "faults" j with
    | None -> Engine.no_faults
    | Some fj ->
      {
        Engine.loss = get_float "loss" fj;
        dup = get_float "dup" fj;
        delay = get_float "delay" fj;
      }
  in
  let kind =
    match req "kind" (J.member "kind" j) with
    | J.String "pair" -> Pair_run
    | J.Obj _ as kj -> (
      match Option.bind (J.member "backend" kj) J.to_string_v with
      | Some backend -> Backend_run { backend; b = get_int "b" kj; f = get_int "f" kj }
      | None -> Tradeoff_run { b = get_int "b" kj; f = get_int "f" kj })
    | _ -> raise (Bad "kind")
  in
  let bit_cap =
    match J.member "bit_cap" j with None | Some J.Null -> None | Some v -> Some (req "bit_cap" (J.to_int v))
  in
  {
    family;
    n = get_int "n" j;
    topo_seed = get_int "topo_seed" j;
    run_seed = get_int "run_seed" j;
    c = get_int "c" j;
    t = get_int "t" j;
    inputs;
    schedule;
    faults;
    kind;
    bit_cap;
  }

let of_json j =
  try
    let vj = req "violation" (J.member "violation" j) in
    Ok
      {
        adversary = get_string "adversary" j;
        scenario = scenario_of_json (req "scenario" (J.member "scenario" j));
        violation =
          {
            Engine.at_round = get_int "at_round" vj;
            invariant = get_string "invariant" vj;
            detail = get_string "detail" vj;
          };
        shrink =
          (match J.member "shrink" j with
          | None | Some J.Null -> None
          | Some sj ->
            Some
              {
                s_tries = get_int "tries" sj;
                s_from_crashes = get_int "from_crashes" sj;
                s_from_n = get_int "from_n" sj;
              });
      }
  with Bad field -> Error (Printf.sprintf "incident: missing or malformed field %S" field)

let save ~path inc = J.write_file ~path (to_json inc)

let load ~path =
  match J.read_file ~path with
  | Error e -> Error (Printf.sprintf "%s: %s" path e)
  | Ok j -> of_json j

let pp_scenario ppf sc =
  Format.fprintf ppf "%s n=%d topo_seed=%d run_seed=%d c=%d t=%d%s crashes=[%s]"
    (family_to_string sc.family) sc.n sc.topo_seed sc.run_seed sc.c sc.t
    (match sc.kind with
    | Pair_run -> ""
    | Tradeoff_run { b; f } -> Printf.sprintf " tradeoff(b=%d,f=%d)" b f
    | Backend_run { backend; b; f } -> Printf.sprintf " backend(%s,b=%d,f=%d)" backend b f)
    (String.concat "; " (List.map (fun (u, r) -> Printf.sprintf "%d@%d" u r) sc.schedule))
