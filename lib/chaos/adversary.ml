module Graph = Ftagg_graph.Graph
module Prng = Ftagg_util.Prng
module Failure = Ftagg_sim.Failure
module Engine = Ftagg_sim.Engine
module Metrics = Ftagg_sim.Metrics

type strategy =
  | Top_talkers
  | First_speakers
  | Random_online

type t =
  | Oblivious of string * (Graph.t -> rng:Prng.t -> budget:int -> window:int -> Failure.t)
  | Adaptive of strategy

let strategy_name = function
  | Top_talkers -> "adaptive:top_talkers"
  | First_speakers -> "adaptive:first_speakers"
  | Random_online -> "adaptive:random_online"

let name = function
  | Oblivious (n, _) -> n
  | Adaptive s -> strategy_name s

let none = Oblivious ("oblivious:none", fun g ~rng:_ ~budget:_ ~window:_ -> Failure.none ~n:(Graph.n g))

let random =
  Oblivious
    ("oblivious:random", fun g ~rng ~budget ~window -> Failure.random g ~rng ~budget ~max_round:window)

let burst =
  Oblivious
    ( "oblivious:burst",
      fun g ~rng ~budget ~window -> Failure.burst g ~rng ~budget ~round:(1 + Prng.int rng window) )

let high_degree =
  Oblivious
    ( "oblivious:high_degree",
      fun g ~rng ~budget ~window -> Failure.high_degree g ~budget ~round:(1 + Prng.int rng window) )

let oblivious_all = [ none; random; burst; high_degree ]
let adaptive_all = [ Adaptive Top_talkers; Adaptive First_speakers; Adaptive Random_online ]
let all = oblivious_all @ adaptive_all

(* Adding [u] to the crashed set fails exactly the edges to its
   not-yet-crashed neighbours (edges with an already-crashed endpoint are
   failed already). *)
let marginal_cost g crashed u =
  List.fold_left (fun k v -> if Hashtbl.mem crashed v then k else k + 1) 0 (Graph.neighbors g u)

let online_of_strategy strategy g ~rng ~budget =
  let n = Graph.n g in
  let crashed = Hashtbl.create 16 in
  let spent = ref 0 in
  (* Crash [u] iff it is live, non-root, and its marginal edge-failure cost
     fits the remaining budget; returns the nodes to report to the engine. *)
  let try_crash (report : Engine.round_report) u =
    if
      u = Graph.root || u < 0 || u >= n
      || Hashtbl.mem crashed u
      || report.Engine.rr_crash_rounds.(u) <= report.Engine.rr_round
    then []
    else begin
      let cost = marginal_cost g crashed u in
      if cost > 0 && !spent + cost <= budget then begin
        spent := !spent + cost;
        Hashtbl.replace crashed u ();
        [ u ]
      end
      else []
    end
  in
  match strategy with
  | Top_talkers ->
    fun report ->
      (* Kill the current bandwidth leader: the live non-root node with the
         most bits sent so far.  Early in the run this is the tree-
         construction frontier around the root — traffic-aware placement the
         oblivious generators cannot express. *)
      let best = ref (-1) and best_bits = ref 0 in
      for u = 1 to n - 1 do
        if (not (Hashtbl.mem crashed u)) && report.Engine.rr_crash_rounds.(u) > report.Engine.rr_round
        then begin
          let b = Metrics.bits_sent report.Engine.rr_metrics u in
          if b > !best_bits then begin
            best := u;
            best_bits := b
          end
        end
      done;
      if !best < 0 then [] else try_crash report !best
  | First_speakers ->
    fun report ->
      (* Kill the first node heard from this round — crashes chase the
         activation wavefront outward from the root. *)
      (match
         List.find_opt
           (fun u -> u <> Graph.root && not (Hashtbl.mem crashed u))
           report.Engine.rr_broadcasters
       with
      | None -> []
      | Some u -> try_crash report u)
  | Random_online ->
    fun report ->
      (* A paced random adversary that only strikes rounds with real
         traffic: with probability 1/3, kill a uniformly random
         broadcaster. *)
      let candidates =
        List.filter
          (fun u -> u <> Graph.root && not (Hashtbl.mem crashed u))
          report.Engine.rr_broadcasters
      in
      if candidates = [] || Prng.int rng 3 <> 0 then []
      else try_crash report (List.nth candidates (Prng.int rng (List.length candidates)))

let instantiate t g ~rng ~budget ~window =
  match t with
  | Oblivious (_, gen) -> (gen g ~rng ~budget ~window, None)
  | Adaptive s -> (Failure.none ~n:(Graph.n g), Some (online_of_strategy s g ~rng ~budget))
