(** Per-round invariant watchdogs for the engine's chaos hook.

    A watchdog turns the paper's guarantees into checks that run {e while
    the protocol executes}, via {!Ftagg_sim.Engine.run_chaos}'s [watch]
    hook, so a violation is pinned to the first round where it is
    observable instead of a post-hoc checker verdict:

    - {b bit budgets} — every round, every node's cumulative bit count
      stays under the combined Theorem 3/6 caps
      [(11t+14)(log N+5) + (5t+7)(3 log N+10)] (plus one trailing special
      symbol each);
    - {b activation discipline} — every round: levels lie in [0, cd]
      and below the round number, parents are physical neighbours,
      activated, and exactly one level up;
    - {b representative-set structure} — partial-sum arithmetic at the
      end of the AGG half, and disjointness / survivor coverage behind an
      accepting verdict at the final round (disjointness is only
      guaranteed when VERI accepts — scenario 3 exists precisely because
      AGG alone may double-count);
    - {b Table 2} — at the final round, the verdict obligations of the
      scenario the materialized schedule landed in. *)

val pair_bit_cap : Ftagg_proto.Params.t -> int
(** The default cap: AGG's abort budget plus VERI's overflow budget plus
    one [Agg_abort] and one [Veri_overflow] symbol (a node may cross a
    threshold by its final special-symbol flood). *)

val backend_bit_watch : bit_cap:int -> 'state Ftagg_sim.Engine.watch
(** Protocol-agnostic bit-budget watchdog (re-export of
    {!Ftagg_proto.Backend.bits_watch}): fires ["bit_budget"] the first
    round any node's cumulative bit count exceeds [bit_cap].  This is the
    cap every non-["agg"] backend runs under in a campaign; backends may
    compose their own invariants after it (see
    {!Ftagg_proto.Backend.S.watch}). *)

val pair_watch :
  ?bit_cap:int ->
  params:Ftagg_proto.Params.t ->
  graph:Ftagg_graph.Graph.t ->
  unit ->
  Ftagg_proto.Pair.node Ftagg_sim.Engine.watch
(** Watchdog for one AGG+VERI pair started at round 1 and run for
    [Pair.duration params] rounds.  [bit_cap] overrides the default cap —
    the planted-violation knob: pass something lower than
    {!pair_bit_cap} and the watchdog must fire at the exact round the
    bottleneck node crosses it (exercised by the chaos tests).  The
    returned closure is stateful (the AGG-end check runs once): build a
    fresh one per run. *)
