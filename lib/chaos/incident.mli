(** Structured, replayable incident reports.

    An incident captures everything needed to re-run a guarantee
    violation deterministically: the topology recipe (family, size,
    seed), parameters, inputs, the {e materialized} crash schedule (an
    adaptive adversary's decisions, replayed obliviously, reproduce the
    run — see {!Ftagg_sim.Engine.run_chaos}), the fault probabilities,
    and the violation the watchdog reported.  Incidents serialize to JSON
    via {!Ftagg_runner.Bench_io} and replay from the CLI
    ([ftagg_cli replay <incident.json>]). *)

type kind =
  | Pair_run  (** one AGG+VERI pair *)
  | Tradeoff_run of { b : int; f : int }  (** Algorithm 1 with budget [b] *)
  | Backend_run of { backend : string; b : int; f : int }
      (** any registered {!Ftagg_proto.Run.backends} entry, driven through
          {!Ftagg_proto.Run.exec_chaos} under its own watchdog *)

type scenario = {
  family : Ftagg_graph.Gen.family;
  n : int;
  topo_seed : int;  (** seed for {!Ftagg_graph.Gen.build} *)
  run_seed : int;  (** seed for the engine run *)
  c : int;
  t : int;
  inputs : int array;
  schedule : (int * int) list;  (** materialized [(node, crash round)] pairs *)
  faults : Ftagg_sim.Engine.faults;
  kind : kind;
  bit_cap : int option;
      (** watchdog bit-cap override (the planted-violation knob), if any *)
}
(** A self-contained, deterministic run recipe — the unit the shrinker
    minimizes. *)

type shrink_stats = {
  s_tries : int;  (** oracle runs the shrinker spent *)
  s_from_crashes : int;  (** crash count before shrinking *)
  s_from_n : int;  (** node count before shrinking *)
}

type t = {
  adversary : string;  (** {!Adversary.name} of the discovering adversary *)
  scenario : scenario;  (** minimized (unless [shrink = None]) *)
  violation : Ftagg_sim.Engine.violation;
  shrink : shrink_stats option;
}

val family_to_string : Ftagg_graph.Gen.family -> string
(** Machine-readable codec (e.g. ["random:0x1.9…p-4"], lossless via [%h])
    — {!Ftagg_graph.Gen.family_name} is the human form. *)

val family_of_string : string -> Ftagg_graph.Gen.family option

val to_json : t -> Ftagg_runner.Bench_io.json
val of_json : Ftagg_runner.Bench_io.json -> (t, string) result

val save : path:string -> t -> unit
val load : path:string -> (t, string) result

val pp_scenario : Format.formatter -> scenario -> unit
