module Engine = Ftagg_sim.Engine

type budget = {
  mutable tries : int;
  max_tries : int;
}

(* One oracle probe, under the try budget.  A scenario that raises (e.g.
   a family rejecting a shrunken [n]) simply does not reproduce the
   violation. *)
let still_fails budget ~oracle ~matches sc =
  if budget.tries >= budget.max_tries then false
  else begin
    budget.tries <- budget.tries + 1;
    match oracle sc with
    | Some v -> matches v
    | None -> false
    | exception _ -> false
  end

let without l lo hi = List.filteri (fun i _ -> i < lo || i >= hi) l

(* Classic ddmin over the crash list: try deleting aligned chunks, halving
   the chunk size whenever no deletion reproduces the violation. *)
let drop_crashes ?(note = ignore) fails sc0 =
  let sc = ref sc0 in
  let chunk = ref (max 1 ((List.length sc0.Incident.schedule + 1) / 2)) in
  let running = ref (sc0.Incident.schedule <> []) in
  while !running do
    let removed = ref false in
    let i = ref 0 in
    while !i * !chunk < List.length (!sc).Incident.schedule do
      let sched = (!sc).Incident.schedule in
      let lo = !i * !chunk in
      let hi = min (List.length sched) (lo + !chunk) in
      let cand = { !sc with Incident.schedule = without sched lo hi } in
      if fails cand then begin
        sc := cand;
        note cand;
        removed := true
        (* keep [i]: the next chunk has shifted into this position *)
      end
      else incr i
    done;
    if not !removed then begin
      if !chunk <= 1 then running := false else chunk := max 1 (!chunk / 2)
    end
    else if (!sc).Incident.schedule = [] then running := false
  done;
  !sc

(* Push each crash as late as it will go while the violation survives —
   "crash at round 2" in a report then means round 2 is load-bearing. *)
let delay_crashes ?(note = ignore) fails ~max_round sc0 =
  let sc = ref sc0 in
  let k = List.length sc0.Incident.schedule in
  for j = 0 to k - 1 do
    List.iter
      (fun step ->
        let continue_ = ref true in
        while !continue_ do
          let sched = (!sc).Incident.schedule in
          let u, r = List.nth sched j in
          if r + step > max_round then continue_ := false
          else begin
            let cand =
              {
                !sc with
                Incident.schedule = List.mapi (fun i e -> if i = j then (u, r + step) else e) sched;
              }
            in
            if fails cand then begin sc := cand; note cand end else continue_ := false
          end
        done)
      [ 64; 16; 4; 1 ]
  done;
  !sc

(* Try smaller systems: truncate the inputs and drop out-of-range crashes;
   the oracle rebuilds the topology, so a family that cannot shrink that
   far just fails the probe. *)
let shrink_n ?(note = ignore) fails sc0 =
  let candidate sc n' =
    if n' >= sc.Incident.n || n' < 2 then None
    else
      Some
        {
          sc with
          Incident.n = n';
          inputs = Array.sub sc.Incident.inputs 0 n';
          schedule = List.filter (fun (u, _) -> u < n') sc.Incident.schedule;
        }
  in
  let sc = ref sc0 in
  let progress = ref true in
  while !progress do
    progress := false;
    let n = (!sc).Incident.n in
    List.iter
      (fun n' ->
        if not !progress then
          match candidate !sc n' with
          | None -> ()
          | Some cand -> if fails cand then begin sc := cand; note cand; progress := true end)
      [ n / 2; 2 * n / 3; 3 * n / 4; n - 1 ]
  done;
  !sc

let minimize ?(max_tries = 300) ?on_progress ~oracle ~matches ~max_round sc0 =
  let budget = { tries = 0; max_tries } in
  let fails = still_fails budget ~oracle ~matches in
  (* [note] fires on every accepted (still-failing, smaller) candidate —
     the shrink-progress feed for telemetry sinks. *)
  let note sc =
    match on_progress with
    | None -> ()
    | Some f -> f ~tries:budget.tries (sc : Incident.scenario)
  in
  let stats sc =
    ( sc,
      {
        Incident.s_tries = budget.tries;
        s_from_crashes = List.length sc0.Incident.schedule;
        s_from_n = sc0.Incident.n;
      } )
  in
  (* The input must reproduce at all, or there is nothing to minimize. *)
  if not (fails sc0) then stats sc0
  else begin
    let sc = drop_crashes ~note fails sc0 in
    let sc = shrink_n ~note fails sc in
    let sc = drop_crashes ~note fails sc in
    let sc = delay_crashes ~note fails ~max_round sc in
    stats sc
  end
