(** Chaos campaigns: randomized runs under adversaries and watchdogs,
    with automatic shrinking of anything that violates a guarantee.

    The oracle at the centre, {!check}, executes a {!Incident.scenario}
    deterministically (pair runs through {!Ftagg_sim.Engine.run_chaos}
    with a {!Watchdog.pair_watch}; tradeoff runs through
    {!Ftagg_proto.Run.tradeoff} with Theorem 1 post-checks) and reports
    the first violation.  Everything else — the randomized campaign, the
    shrinker, CLI replay, the fuzzer — funnels through it, so a scenario
    file means the same thing everywhere. *)

val graph_of : Incident.scenario -> Ftagg_graph.Graph.t
val params_of : Incident.scenario -> Ftagg_graph.Graph.t -> Ftagg_proto.Params.t

val max_round_of : Incident.scenario -> int
(** The scenario's run duration — the shrinker's crash-delay bound. *)

type pair_report = {
  scenario : Incident.scenario;
      (** input scenario with the {e materialized} schedule: the oblivious
          part plus every crash the online adversary decided *)
  violation : Ftagg_sim.Engine.violation option;
  verdict : Ftagg_proto.Pair.verdict option;
      (** [None] when the watchdog halted the run before the pair finished *)
  correct : bool;
  lfc : bool;
  edge_failures : int;
  cc : int;
  rounds : int;
}

val run_pair :
  ?online:Ftagg_sim.Engine.online -> ?obs:Ftagg_obs.Obs.t -> Incident.scenario -> pair_report
(** One watched AGG+VERI pair.  [online] extends the scenario's schedule
    on the fly; replaying the returned materialized scenario without
    [online] reproduces the run exactly.  [obs] is forwarded to
    {!Ftagg_sim.Engine.run_chaos}, so the sink sees the run's broadcasts,
    phase spans and any watchdog violation. *)

type backend_report = {
  b_scenario : Incident.scenario;  (** with the materialized schedule *)
  b_violation : Ftagg_sim.Engine.violation option;
  b_outcome : Ftagg_proto.Backend.outcome;
      (** the backend's packaged outcome (packaged from truncated states
          when [b_violation] halted the run — the violation is
          authoritative then) *)
}

val run_backend :
  ?online:Ftagg_sim.Engine.online -> ?obs:Ftagg_obs.Obs.t -> Incident.scenario -> backend_report
(** One watched run of a registered backend.  The scenario's [kind] must
    be {!Incident.Backend_run} (raises [Invalid_argument] otherwise);
    the backend is resolved via {!Ftagg_proto.Run.backend_of_string} and
    driven through {!Ftagg_proto.Run.exec_chaos} under its own watchdog
    (which honours the scenario's planted [bit_cap]). *)

val check : Incident.scenario -> Ftagg_sim.Engine.violation option
(** The oracle: run the scenario, report its first violation. *)

val shrink :
  ?obs:Ftagg_obs.Obs.t ->
  Incident.scenario ->
  Ftagg_sim.Engine.violation ->
  Incident.scenario * Ftagg_sim.Engine.violation * Incident.shrink_stats
(** Minimize a violating scenario via {!Shrink.minimize}, preserving the
    violated invariant, and refresh the violation on the result.  [obs]
    receives one [shrink_step] event per accepted candidate. *)

val to_incident :
  ?obs:Ftagg_obs.Obs.t ->
  adversary:string ->
  Incident.scenario ->
  Ftagg_sim.Engine.violation ->
  Incident.t
(** [shrink] packaged as a saved-ready incident. *)

val replay : Incident.t -> Ftagg_sim.Engine.violation option
(** Re-run a loaded incident's scenario through {!check} — [Some _] means
    the violation still reproduces. *)

type config = {
  trials : int;
  seed : int;
  out_dir : string option;  (** where to write incident JSON, if anywhere *)
  bit_cap : int option;
      (** watchdog bit-cap override applied to every trial — lower it
          below {!Watchdog.pair_bit_cap} to plant a violation and watch
          the pipeline catch, shrink, and report it *)
  max_n : int;  (** largest system size drawn (smallest is 10) *)
  log : string -> unit;  (** progress sink (e.g. [print_endline]) *)
  obs : Ftagg_obs.Obs.t option;
      (** telemetry sink threaded through every trial run and shrink
          search: per-run broadcast/span feeds, [chaos_violation] /
          [shrink_step] events, [chaos_trials_total] /
          [chaos_incidents_total] / [chaos_shrink_steps_total] counters *)
  via : (Incident.scenario -> pair_report option) option;
      (** trial transport: when set, each trial's (materialized, hence
          oblivious) scenario is executed by this hook instead of
          {!run_pair} — e.g. [Ftagg_service.Chaos_gate.via] pushes it
          through the aggregation service's admission queue.  [None] from
          the hook means the transport refused the trial (backpressure or
          cancellation); it is counted in [o_rejected_trials] and skipped.
          The transport speaks pair scenarios, so it only applies when
          [backend = "agg"]. *)
  backend : string;
      (** which {!Ftagg_proto.Run.backends} entry the trials run
          (default ["agg"], the watched AGG+VERI pair).  Every random
          draw — topology, parameters, adversary, schedule — is
          backend-independent, so campaigns with equal seeds subject
          every backend to the {e same} adversary schedules.  Unknown
          names raise [Invalid_argument] before the first trial. *)
}

val default_config : config
(** 100 trials, seed 20260806, no output dir, no cap override, max_n 34,
    silent, no telemetry sink, no transport (trials run in-process),
    backend ["agg"]. *)

type outcome = {
  o_trials : int;
  o_rejected_trials : int;  (** trials the [via] transport refused *)
  o_violating_trials : int;  (** trials whose run reported any violation *)
  o_incidents : (Incident.t * string option) list;
      (** one shrunken incident per {e distinct} invariant, with its file
          path when [out_dir] was set *)
}

val run : config -> outcome
(** The campaign: each trial draws a topology family, size, parameters
    and an adversary (oblivious and adaptive mixed, random edge-failure
    budget), runs a watched pair, and shrinks the first scenario seen per
    violated invariant into an incident. *)
