module Graph = Ftagg_graph.Graph
module Engine = Ftagg_sim.Engine
module Metrics = Ftagg_sim.Metrics
module Failure = Ftagg_sim.Failure
module Params = Ftagg_proto.Params
module Message = Ftagg_proto.Message
module Agg = Ftagg_proto.Agg
module Pair = Ftagg_proto.Pair
module Checker = Ftagg_proto.Checker

let backend_bit_watch ~bit_cap = Ftagg_proto.Backend.bits_watch ~bit_cap

let pair_bit_cap params =
  Params.agg_bit_budget params + Params.veri_bit_budget params
  + Message.bits params Message.Agg_abort
  + Message.bits params Message.Veri_overflow

(* Per-node bit totals against the Theorem 3/6 budgets. *)
let check_bits ~cap ~n metrics =
  let rec go u =
    if u >= n then None
    else begin
      let b = Metrics.bits_sent metrics u in
      if b > cap then
        Some ("bit_budget", Printf.sprintf "node %d has sent %d bits, over the %d-bit cap" u b cap)
      else go (u + 1)
    end
  in
  go 0

(* Tree-construction sanity: levels stay in [0, cd] and are only assigned
   in a round after the parent's, parents are physical neighbours, and a
   child's level is exactly its parent's plus one.  These hold round by
   round even under duplication/delay faults (activation is latched on
   first receipt and the [sender_level + 1 <= cd] gate bounds levels). *)
let check_activation ~graph ~cd ~n ~round states =
  let rec go u =
    if u >= n then None
    else begin
      let a = Pair.agg states.(u) in
      if not (Agg.activated a) then go (u + 1)
      else begin
        let l = Agg.level a in
        let bad detail = Some ("activation_discipline", Printf.sprintf "node %d: %s" u detail) in
        if l < 0 || l > cd then bad (Printf.sprintf "level %d outside [0, cd=%d]" l cd)
        else if l >= round then
          bad (Printf.sprintf "level %d not below round %d (activated too early)" l round)
        else if u = Graph.root then if l <> 0 then bad "root level is not 0" else go (u + 1)
        else begin
          let p = Agg.parent a in
          if p < 0 || p >= n then bad "activated with no parent"
          else if not (List.mem p (Graph.neighbors graph u)) then
            bad (Printf.sprintf "parent %d is not a neighbour" p)
          else begin
            let pa = Pair.agg states.(p) in
            if not (Agg.activated pa) then bad (Printf.sprintf "parent %d never activated" p)
            else if Agg.level pa <> l - 1 then
              bad (Printf.sprintf "parent %d has level %d, expected %d" p (Agg.level pa) (l - 1))
            else go (u + 1)
          end
        end
      end
    end
  in
  go 0

let trace_of ~params ~graph (view : Pair.node Engine.view) =
  {
    Checker.agg_nodes = Array.map Pair.agg view.Engine.v_states;
    agg_start = 1;
    failures = Failure.of_crash_rounds view.Engine.v_crash_rounds;
    params;
    graph;
  }

let pair_watch ?bit_cap ~params ~graph () : Pair.node Engine.watch =
  let cap = match bit_cap with Some c -> c | None -> pair_bit_cap params in
  let cd = Params.cd params in
  let n = Graph.n graph in
  let agg_end = Agg.duration params in
  let pair_end = Pair.duration params in
  let psums_checked = ref false in
  fun view ->
    let round = view.Engine.v_round in
    let states = view.Engine.v_states in
    match check_bits ~cap ~n view.Engine.v_metrics with
    | Some v -> Some v
    | None -> (
      match check_activation ~graph ~cd ~n ~round states with
      | Some v -> Some v
      | None ->
        (* At the end of the AGG half: each selected partial sum must equal
           the fold of the inputs the crash schedule says it aggregated
           (§4.3) — the earliest round this is checkable. *)
        let psums_violation =
          if round >= agg_end && not !psums_checked then begin
            psums_checked := true;
            match Agg.root_result (Pair.agg states.(Graph.root)) with
            | Agg.Aborted -> None
            | Agg.Value _ ->
              let trace = trace_of ~params ~graph view in
              let selected = Agg.selected_sources (Pair.agg states.(Graph.root)) in
              let r = Checker.representative_set trace ~selected ~end_round:round in
              if not r.Checker.psums_match then
                Some
                  ( "representative_psums",
                    "a selected partial sum disagrees with the schedule recomputation" )
              else None
          end
          else None
        in
        (match psums_violation with
        | Some v -> Some v
        | None ->
          if round < pair_end then None
          else begin
            (* Final round: the root's verdict exists — check the Table 2
               row this schedule landed in, and the §4.3 representative-set
               structure behind an accepting verdict. *)
            let failures = Failure.of_crash_rounds view.Engine.v_crash_rounds in
            let verdict = Pair.root_verdict states.(Graph.root) in
            let trace = trace_of ~params ~graph view in
            let edge_failures = Checker.model_edge_failures ~graph ~failures ~round in
            let lfc = Checker.has_lfc trace ~veri_end:round in
            let correct =
              match verdict.Pair.result with
              | Agg.Aborted -> true
              | Agg.Value v -> Checker.result_correct ~graph ~failures ~end_round:round ~params v
            in
            let table2 =
              if edge_failures <= params.Params.t then begin
                if verdict.Pair.result = Agg.Aborted then
                  Some
                    ( "table2_s1_no_abort",
                      Printf.sprintf "AGG aborted with only %d <= t=%d edge failures"
                        edge_failures params.Params.t )
                else if not correct then
                  Some ("table2_s1_correct", "scenario 1 value outside the correctness interval")
                else if not verdict.Pair.veri_ok then
                  Some ("table2_s1_veri", "VERI rejected a scenario 1 run")
                else None
              end
              else if not lfc then begin
                if not correct then
                  Some
                    ( "table2_s2_correct",
                      "no long failure chain, yet the value is outside the correctness interval" )
                else None
              end
              else if verdict.Pair.veri_ok then
                Some ("table2_s3_veri", "VERI accepted a run containing a long failure chain")
              else None
            in
            match table2 with
            | Some v -> Some v
            | None -> (
              match verdict.Pair.result with
              | Agg.Aborted -> None
              | Agg.Value _ ->
                let selected = Agg.selected_sources (Pair.agg states.(Graph.root)) in
                let r = Checker.representative_set trace ~selected ~end_round:round in
                if not r.Checker.psums_match then
                  Some
                    ( "representative_psums",
                      "a selected partial sum disagrees with the schedule recomputation" )
                else if verdict.Pair.veri_ok && not r.Checker.disjoint then
                  Some ("representative_disjoint", "an accepted representative set double-counts a node")
                else if verdict.Pair.veri_ok && not r.Checker.covers_alive then
                  Some
                    ( "representative_covers",
                      "an accepted representative set misses a surviving node's input" )
                else None)
          end))
