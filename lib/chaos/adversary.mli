(** Crash adversaries, oblivious and adaptive, under one interface.

    The paper's adversary (§2) is {e oblivious}: the whole crash schedule
    is fixed before the protocol flips any coin, and every guarantee in
    Table 2 is stated against it.  This module packages those schedules
    together with {e adaptive} (online) adversaries that watch each
    round's traffic — who broadcast, per-node bit totals — before
    deciding whom to crash.  Both kinds respect the same edge-failure
    budget, so bench E17 can compare Table 2 cell outcomes for oblivious
    vs adaptive placement of the {e same} failure mass. *)

type strategy =
  | Top_talkers
      (** each round, crash the live node with the highest cumulative bit
          count — follows the traffic concentration around the root *)
  | First_speakers
      (** each round, crash the first node heard from — chases the
          activation wavefront *)
  | Random_online
      (** paced uniform choice among this round's broadcasters — random
          placement, but only where there is traffic *)

type t =
  | Oblivious of string * (Ftagg_graph.Graph.t -> rng:Ftagg_util.Prng.t -> budget:int -> window:int -> Ftagg_sim.Failure.t)
      (** a named schedule generator: the paper's model.  [window] bounds
          the crash rounds (callers pass the run duration). *)
  | Adaptive of strategy

val name : t -> string
(** Stable identifier, e.g. ["oblivious:burst"], ["adaptive:top_talkers"]
    — used in incident reports and bench tables. *)

val none : t
val random : t
val burst : t
val high_degree : t

val oblivious_all : t list
val adaptive_all : t list
val all : t list

val instantiate :
  t ->
  Ftagg_graph.Graph.t ->
  rng:Ftagg_util.Prng.t ->
  budget:int ->
  window:int ->
  Ftagg_sim.Failure.t * Ftagg_sim.Engine.online option
(** Turn the adversary into what {!Ftagg_sim.Engine.run_chaos} consumes:
    an oblivious base schedule plus an optional online callback.
    Oblivious adversaries return their schedule and no callback; adaptive
    ones return the empty schedule and a stateful callback that enforces
    the edge-failure [budget] itself (a crash's marginal cost is its
    edges to not-yet-crashed neighbours) and never touches the root.  The
    callback is single-run: instantiate afresh for every run. *)
