(** Delta-debugging shrinker for violating scenarios.

    Given a scenario whose oracle run reproduces a watchdog violation,
    [minimize] searches for a smaller scenario that still violates the
    {e same} invariant, in four passes:

    + {b drop crashes} — classic ddmin over the crash list (chunked
      deletion with halving granularity);
    + {b shrink N} — retry at [n/2], [2n/3], [3n/4], [n-1] nodes, with
      truncated inputs and out-of-range crashes dropped;
    + {b drop crashes} again on the smaller system;
    + {b delay crashes} — push each surviving crash as late as possible,
      so every remaining early round is load-bearing.

    The result is 1-minimal-ish, not globally minimal: each pass is
    greedy and the whole search is capped at [max_tries] oracle runs.
    Scenarios that raise (a family rejecting a tiny [n]) count as
    non-reproducing. *)

val minimize :
  ?max_tries:int ->
  ?on_progress:(tries:int -> Incident.scenario -> unit) ->
  oracle:(Incident.scenario -> Ftagg_sim.Engine.violation option) ->
  matches:(Ftagg_sim.Engine.violation -> bool) ->
  max_round:int ->
  Incident.scenario ->
  Incident.scenario * Incident.shrink_stats
(** [minimize ~oracle ~matches ~max_round sc] returns the shrunken
    scenario and the search statistics.  [matches] decides whether an
    oracle violation is "the same" (typically: same invariant name);
    [max_round] bounds how late a crash may be delayed (pass the run
    duration).  [max_tries] defaults to 300.  If [sc] does not reproduce
    under the oracle, it is returned unchanged.

    [on_progress] fires on every {e accepted} candidate — a smaller
    scenario that still reproduces — with the oracle-run count so far;
    the hook behind the campaign's shrink-progress telemetry. *)
