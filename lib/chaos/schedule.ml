(* Churn schedules: deterministic per-(schedule, seed, generation) plans
   of joins/leaves and in-run crash schedules.  The crash side rides the
   existing adversary machinery (Failure generators for the oblivious
   kinds, Adversary.instantiate for the adaptive one) so the failure
   mass stays comparable to the paper's edge-budget [f]. *)

module Prng = Ftagg_util.Prng
module Graph = Ftagg_graph.Graph
module Failure = Ftagg_sim.Failure
module Engine = Ftagg_sim.Engine

type kind = Clear_skies | Steady_churn | Burst_failure | Adversarial

type t = kind

let clear_skies = Clear_skies
let steady_churn = Steady_churn
let burst_failure = Burst_failure
let adversarial = Adversarial
let all = [ Clear_skies; Steady_churn; Burst_failure; Adversarial ]
let kind t = t

let name = function
  | Clear_skies -> "clear_skies"
  | Steady_churn -> "steady_churn"
  | Burst_failure -> "burst_failure"
  | Adversarial -> "adversarial"

let of_name s =
  match String.lowercase_ascii (String.map (fun c -> if c = '-' then '_' else c) s) with
  | "clear_skies" -> Some Clear_skies
  | "steady_churn" -> Some Steady_churn
  | "burst_failure" -> Some Burst_failure
  | "adversarial" -> Some Adversarial
  | _ -> None

(* One private stream per (schedule, seed, generation, purpose): churn
   decisions and crash draws must not share a stream, or adding a join
   would silently reshuffle the crash schedule of the same generation. *)
let rng t ~seed ~generation ~purpose =
  let h = ref 0xcbf29ce484222325L in
  let mix s =
    String.iter
      (fun c ->
        h := Int64.logxor !h (Int64.of_int (Char.code c));
        h := Int64.mul !h 0x100000001b3L)
      s
  in
  mix (name t);
  mix (string_of_int seed);
  mix (string_of_int generation);
  mix purpose;
  Prng.create (Int64.to_int !h)

(* Bursts land every third generation, starting at generation 2, so a
   five-generation scenario sees calm -> calm -> burst -> recovery ->
   calm. *)
let burst_at generation = generation > 0 && generation mod 3 = 2

let churn t ~generation ~seed =
  if generation = 0 then (0, 0)
  else
    let g = rng t ~seed ~generation ~purpose:"churn" in
    match t with
    | Clear_skies -> (0, 0)
    | Steady_churn ->
      let joins = 1 + Prng.int g 2 in
      let leaves = if Prng.int g 3 = 0 then 1 else 0 in
      (joins, leaves)
    | Burst_failure ->
      (* recovery joins in the generation after a burst *)
      if burst_at (generation - 1) then (1 + Prng.int g 2, 0) else (0, 0)
    | Adversarial -> (Prng.int g 2, 0)

let failures t ~graph ~generation ~seed ~budget ~window =
  let g = rng t ~seed ~generation ~purpose:"crash" in
  let n = Graph.n graph in
  let none = Failure.none ~n in
  match t with
  | Clear_skies -> (none, None)
  | Steady_churn -> (Failure.random graph ~rng:g ~budget:(max 1 (budget / 2)) ~max_round:window, None)
  | Burst_failure ->
    if burst_at generation then
      (Failure.burst graph ~rng:g ~budget ~round:(max 1 (window / 3)), None)
    else (none, None)
  | Adversarial ->
    let schedule, online =
      Adversary.instantiate (Adversary.Adaptive Adversary.Top_talkers) graph ~rng:g ~budget
        ~window
    in
    (schedule, online)

let scenario_of_run ~family ~n ~topo_seed ~run_seed ~c ~t_param ~inputs ~backend ~b ~f ~schedule =
  {
    Incident.family;
    n;
    topo_seed;
    run_seed;
    c;
    t = t_param;
    inputs = Array.copy inputs;
    schedule = Failure.to_list schedule;
    faults = Engine.no_faults;
    kind = Incident.Backend_run { backend; b; f };
    bit_cap = None;
  }
