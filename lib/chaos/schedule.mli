(** Churn schedules: joins, leaves and crashes over topology generations.

    The paper fixes the node set and lets an oblivious adversary crash
    nodes; the churn literature (flow updating, gossip aggregation)
    instead evaluates under {e membership churn} — nodes joining and
    leaving while the protocol runs — with percentile completion/latency
    as the headline metric.  A schedule packages one such workload shape:
    per topology {e generation} it decides how many nodes join and leave
    ({!churn}), and which in-run crash schedule the survivors face
    ({!failures}), re-using the {!Adversary} edge-budget machinery so a
    churn scenario's failure mass is comparable to the paper's [f].

    Everything is a pure function of [(schedule, seed, generation)]:
    equal seeds replay identical join/leave counts and identical crash
    schedules, which is what makes [ftagg scenarios --seed S]
    deterministic and lets {!scenario_of_run} hand a materialized run to
    the {!Shrink} minimizer as a regular incident. *)

type kind =
  | Clear_skies  (** no churn, no crashes — the completion baseline *)
  | Steady_churn
      (** a trickle every generation: 1–2 joins, occasional leaves,
          random crashes at half the edge budget *)
  | Burst_failure
      (** calm generations punctuated by a concentrated burst crash
          spending the whole budget at once, with recovery joins in the
          following generation *)
  | Adversarial
      (** steady joins plus an {e adaptive} traffic-watching adversary
          ({!Adversary.Top_talkers}) placing crashes online *)

type t

val clear_skies : t
val steady_churn : t
val burst_failure : t
val adversarial : t

val all : t list
(** The four kinds in fixed order — the bench E24 matrix rows. *)

val kind : t -> kind

val name : t -> string
(** Stable identifier (["clear_skies"], ["steady_churn"],
    ["burst_failure"], ["adversarial"]) — used in percentile tables,
    BENCH_engine.json rows and metric labels. *)

val of_name : string -> t option
(** Inverse of {!name} (case-insensitive; ["-"] accepted for ["_"]). *)

val churn : t -> generation:int -> seed:int -> int * int
(** [(joins, leaves)] applied when {e entering} the given generation.
    Generation 0 is the base topology: always [(0, 0)]. *)

val failures :
  t ->
  graph:Ftagg_graph.Graph.t ->
  generation:int ->
  seed:int ->
  budget:int ->
  window:int ->
  Ftagg_sim.Failure.t * Ftagg_sim.Engine.online option
(** The in-run crash schedule for one run of this generation: an
    oblivious schedule staying within the edge-failure [budget] with
    crash rounds in [\[1, window\]], plus (for {!Adversarial}) a fresh
    online adversary callback enforcing the same budget itself.  The
    draws depend only on [(schedule, seed, generation)] — never on the
    backend — so every backend faces the {e same} adversary under equal
    seeds, as in the E20 cross-protocol matrix.  The callback is
    single-run: call again for every run. *)

val scenario_of_run :
  family:Ftagg_graph.Gen.family ->
  n:int ->
  topo_seed:int ->
  run_seed:int ->
  c:int ->
  t_param:int ->
  inputs:int array ->
  backend:string ->
  b:int ->
  f:int ->
  schedule:Ftagg_sim.Failure.t ->
  Incident.scenario
(** Package one materialized run (the oblivious schedule plus every
    online decision, as {!Ftagg_sim.Engine.run_chaos} returns it) as a
    replayable {!Incident.scenario} with kind [Backend_run] — the unit
    {!Shrink.minimize} accepts and [ftagg replay] re-runs.  This is how a
    scenario-runner violation becomes a first-class incident. *)
