module Graph = Ftagg_graph.Graph
module Gen = Ftagg_graph.Gen
module Prng = Ftagg_util.Prng
module Engine = Ftagg_sim.Engine
module Failure = Ftagg_sim.Failure
module Metrics = Ftagg_sim.Metrics
module Params = Ftagg_proto.Params
module Message = Ftagg_proto.Message
module Agg = Ftagg_proto.Agg
module Pair = Ftagg_proto.Pair
module Run = Ftagg_proto.Run
module Backend = Ftagg_proto.Backend
module Obs = Ftagg_obs.Obs
module Bench_io = Ftagg_runner.Bench_io

let graph_of (sc : Incident.scenario) = Gen.build sc.Incident.family ~n:sc.Incident.n ~seed:sc.Incident.topo_seed

let params_of (sc : Incident.scenario) graph =
  Params.make ~c:sc.Incident.c ~t:sc.Incident.t ~graph ~inputs:sc.Incident.inputs ()

let backend_exn name =
  match Run.backend_of_string name with
  | Some b -> b
  | None -> invalid_arg (Printf.sprintf "Campaign: unknown backend %S" name)

let max_round_of (sc : Incident.scenario) =
  let graph = graph_of sc in
  let params = params_of sc graph in
  match sc.Incident.kind with
  | Incident.Pair_run -> Pair.duration params
  | Incident.Tradeoff_run { b; _ } -> b * params.Params.d
  | Incident.Backend_run { backend; b; f } ->
    let module B = (val backend_exn backend : Backend.S) in
    B.max_rounds ~params ~b ~f

type pair_report = {
  scenario : Incident.scenario;  (** with the materialized schedule *)
  violation : Engine.violation option;
  verdict : Pair.verdict option;
  correct : bool;
  lfc : bool;
  edge_failures : int;
  cc : int;
  rounds : int;
}

let pair_proto params =
  {
    Engine.name = "pair-chaos";
    init = (fun u ~rng:_ -> Pair.create params ~me:u);
    step = (fun ~round ~me:_ ~state ~inbox -> (state, Pair.step state ~rr:round ~inbox));
    msg_bits = Message.bits params;
    root_done = (fun _ -> false);
  }

let run_pair ?online ?obs (sc : Incident.scenario) =
  let graph = graph_of sc in
  let params = params_of sc graph in
  let failures = Failure.of_list ~n:sc.Incident.n sc.Incident.schedule in
  let duration = Pair.duration params in
  let watch = Watchdog.pair_watch ?bit_cap:sc.Incident.bit_cap ~params ~graph () in
  let res =
    Engine.run_chaos ?obs ~faults:sc.Incident.faults ?online ~watch ~graph ~failures
      ~max_rounds:duration ~seed:sc.Incident.run_seed (pair_proto params)
  in
  let states = res.Engine.c_states in
  let metrics = res.Engine.c_metrics in
  let failures = res.Engine.c_schedule in
  let rounds = Metrics.rounds metrics in
  (* No verdict (and trivial ground truth) when the watchdog halted the
     run before the pair finished — [violation] is authoritative then. *)
  let verdict = if rounds < duration then None else Some (Pair.root_verdict states.(Graph.root)) in
  let trace =
    { Ftagg_proto.Checker.agg_nodes = Array.map Pair.agg states; agg_start = 1; failures; params; graph }
  in
  let module Checker = Ftagg_proto.Checker in
  let lfc = Checker.has_lfc trace ~veri_end:duration in
  let edge_failures = Checker.model_edge_failures ~graph ~failures ~round:duration in
  let correct =
    match verdict with
    | None | Some { Pair.result = Agg.Aborted; _ } -> true
    | Some { Pair.result = Agg.Value v; _ } ->
      Checker.result_correct ~graph ~failures ~end_round:rounds ~params v
  in
  {
    scenario = { sc with Incident.schedule = Failure.to_list failures };
    violation = res.Engine.c_violation;
    verdict;
    correct;
    lfc;
    edge_failures;
    cc = Metrics.cc metrics;
    rounds;
  }

type backend_report = {
  b_scenario : Incident.scenario;  (** with the materialized schedule *)
  b_violation : Engine.violation option;
  b_outcome : Backend.outcome;
}

let run_backend ?online ?obs (sc : Incident.scenario) =
  let bname, b, f =
    match sc.Incident.kind with
    | Incident.Backend_run { backend; b; f } -> (backend, b, f)
    | _ -> invalid_arg "Campaign.run_backend: scenario kind is not Backend_run"
  in
  let backend = backend_exn bname in
  let graph = graph_of sc in
  let params = params_of sc graph in
  let failures = Failure.of_list ~n:sc.Incident.n sc.Incident.schedule in
  let ch =
    Run.exec_chaos ?obs ~faults:sc.Incident.faults ?online ?bit_cap:sc.Incident.bit_cap
      ~backend ~graph ~failures ~params ~b ~f ~seed:sc.Incident.run_seed ()
  in
  {
    b_scenario = { sc with Incident.schedule = Failure.to_list ch.Backend.c_schedule };
    b_violation = ch.Backend.c_violation;
    b_outcome = ch.Backend.c_outcome;
  }

let check_tradeoff (sc : Incident.scenario) ~b ~f =
  let graph = graph_of sc in
  let params = params_of sc graph in
  let failures = Failure.of_list ~n:sc.Incident.n sc.Incident.schedule in
  let o = Run.tradeoff ~graph ~failures ~params ~b ~f ~seed:sc.Incident.run_seed () in
  let rounds = o.Run.common.Run.rounds in
  if not o.Run.common.Run.correct then
    Some
      {
        Engine.at_round = rounds;
        invariant = "theorem1_correct";
        detail = "Algorithm 1 value outside the correctness interval";
      }
  else if o.Run.common.Run.flooding_rounds > b then
    Some
      {
        Engine.at_round = rounds;
        invariant = "theorem1_time";
        detail =
          Printf.sprintf "Algorithm 1 used %d flooding rounds, over the budget b=%d"
            o.Run.common.Run.flooding_rounds b;
      }
  else None

let check (sc : Incident.scenario) =
  match sc.Incident.kind with
  | Incident.Pair_run -> (run_pair sc).violation
  | Incident.Tradeoff_run { b; f } -> check_tradeoff sc ~b ~f
  | Incident.Backend_run _ -> (run_backend sc).b_violation

let shrink ?obs (sc : Incident.scenario) (v : Engine.violation) =
  (* Every accepted shrink step goes to the telemetry sink, so an
     incident's JSONL tail shows the search converging. *)
  let on_progress ~tries (sc' : Incident.scenario) =
    match obs with
    | None -> ()
    | Some o ->
      Ftagg_obs.Registry.incr (Obs.registry o) "chaos_shrink_steps_total" 1;
      Obs.event o ~kind:"shrink_step"
        [
          ("invariant", Bench_io.String v.Engine.invariant);
          ("tries", Bench_io.Int tries);
          ("crashes", Bench_io.Int (List.length sc'.Incident.schedule));
          ("n", Bench_io.Int sc'.Incident.n);
        ]
  in
  let shrunk, stats =
    Shrink.minimize ~on_progress ~oracle:check
      ~matches:(fun v' -> v'.Engine.invariant = v.Engine.invariant)
      ~max_round:(max_round_of sc) sc
  in
  (* Refresh the violation on the minimized scenario (the round usually
     moved); fall back to the original if the cap interfered. *)
  let v' = match check shrunk with Some v' -> v' | None -> v in
  (shrunk, v', stats)

let to_incident ?obs ~adversary (sc : Incident.scenario) (v : Engine.violation) =
  let shrunk, v', stats = shrink ?obs sc v in
  { Incident.adversary; scenario = shrunk; violation = v'; shrink = Some stats }

let replay (inc : Incident.t) = check inc.Incident.scenario

(* ---- randomized campaign ---- *)

type config = {
  trials : int;
  seed : int;
  out_dir : string option;
  bit_cap : int option;
  max_n : int;
  log : string -> unit;
  obs : Obs.t option;
  via : (Incident.scenario -> pair_report option) option;
  backend : string;
}

let default_config =
  {
    trials = 100;
    seed = 20260806;
    out_dir = None;
    bit_cap = None;
    max_n = 34;
    log = ignore;
    obs = None;
    via = None;
    backend = "agg";
  }

type outcome = {
  o_trials : int;
  o_rejected_trials : int;
  o_violating_trials : int;
  o_incidents : (Incident.t * string option) list;
}

let families =
  [| Gen.Path; Gen.Ring; Gen.Grid; Gen.Star; Gen.Binary_tree; Gen.Complete;
     Gen.Random 0.1; Gen.Caterpillar; Gen.Lollipop; Gen.Torus; Gen.Random_regular 4 |]

let adversaries = Array.of_list Adversary.all

let random_scenario rng ~bit_cap ~max_n =
  let family = families.(Prng.int rng (Array.length families)) in
  let n = 10 + Prng.int rng (max 1 (max_n - 9)) in
  let n = if family = Gen.Torus then max n 12 else n in
  {
    Incident.family;
    n;
    topo_seed = Prng.int rng 1_000_000;
    run_seed = Prng.int rng 1_000_000;
    c = 2;
    t = Prng.int rng 5;
    inputs = Array.init n (fun k -> (k * 7 mod 50) + 1);
    schedule = [];
    faults = Engine.no_faults;
    kind = Incident.Pair_run;
    bit_cap;
  }

let sanitize s =
  String.map (fun c -> match c with 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '-' -> c | _ -> '_') s

(* What the trial loop needs from any backend's run: the materialized
   scenario and the first violation. *)
type trial = {
  t_scenario : Incident.scenario;
  t_violation : Engine.violation option;
}

let run config =
  (* Fail fast on a typo'd backend, before burning trials. *)
  if config.backend <> "agg" then ignore (backend_exn config.backend);
  let rng = Prng.create config.seed in
  let seen = Hashtbl.create 8 in
  let incidents = ref [] in
  let violating = ref 0 in
  let rejected = ref 0 in
  for i = 1 to config.trials do
    let sc0 = random_scenario rng ~bit_cap:config.bit_cap ~max_n:config.max_n in
    let adversary = adversaries.(Prng.int rng (Array.length adversaries)) in
    let budget = Prng.int rng 14 in
    let graph = graph_of sc0 in
    let params = params_of sc0 graph in
    (* The adversary draws against the pair window regardless of backend,
       and every rng draw above is backend-independent: campaigns with
       equal seeds run the {e same} oblivious schedules on every backend
       (the `ftagg chaos --backend …` comparability contract). *)
    let base, online =
      Adversary.instantiate adversary graph ~rng ~budget ~window:(Pair.duration params)
    in
    let sc0 = { sc0 with Incident.schedule = Failure.to_list base } in
    let sc0 =
      if config.backend = "agg" then sc0
      else begin
        (* Round the pair window up to whole flooding rounds so the
           approximate backends run at least as long. *)
        let d = params.Params.d in
        let b = (Pair.duration params + d - 1) / d in
        { sc0 with Incident.kind = Incident.Backend_run { backend = config.backend; b; f = budget } }
      end
    in
    (match config.obs with
    | Some o -> Ftagg_obs.Registry.incr (Obs.registry o) "chaos_trials_total" 1
    | None -> ());
    (* With a [via] transport the trial runs wherever the hook says —
       e.g. through the aggregation service's admission queue.  A [None]
       answer means the transport refused (backpressure / cancellation);
       the trial is counted and skipped, never silently retried.  The
       transport speaks pair scenarios only, so it applies to the "agg"
       backend; other backends run in-process. *)
    let report =
      if config.backend <> "agg" then begin
        let r = run_backend ?online ?obs:config.obs sc0 in
        Some { t_scenario = r.b_scenario; t_violation = r.b_violation }
      end
      else
        match config.via with
        | None ->
          let r = run_pair ?online ?obs:config.obs sc0 in
          Some { t_scenario = r.scenario; t_violation = r.violation }
        | Some transport ->
          Option.map
            (fun (r : pair_report) -> { t_scenario = r.scenario; t_violation = r.violation })
            (transport sc0)
    in
    match report with
    | None ->
      incr rejected;
      config.log (Printf.sprintf "trial %d (%s): rejected by transport" i (Adversary.name adversary))
    | Some report ->
    (match report.t_violation with
    | None -> ()
    | Some v ->
      incr violating;
      config.log
        (Printf.sprintf "trial %d (%s): %s at round %d — shrinking" i (Adversary.name adversary)
           v.Engine.invariant v.Engine.at_round);
      (match config.obs with
      | Some o ->
        Obs.event o ~kind:"chaos_violation" ~round:v.Engine.at_round
          [
            ("trial", Bench_io.Int i);
            ("adversary", Bench_io.String (Adversary.name adversary));
            ("invariant", Bench_io.String v.Engine.invariant);
            ("detail", Bench_io.String v.Engine.detail);
          ]
      | None -> ());
      if not (Hashtbl.mem seen v.Engine.invariant) then begin
        Hashtbl.replace seen v.Engine.invariant ();
        let inc =
          to_incident ?obs:config.obs ~adversary:(Adversary.name adversary) report.t_scenario v
        in
        (match config.obs with
        | Some o ->
          Ftagg_obs.Registry.incr (Obs.registry o)
            ~labels:[ ("invariant", v.Engine.invariant) ]
            "chaos_incidents_total" 1
        | None -> ());
        let path =
          match config.out_dir with
          | None -> None
          | Some dir ->
            let path =
              Filename.concat dir
                (Printf.sprintf "incident-%s-trial%04d.json" (sanitize v.Engine.invariant) i)
            in
            Incident.save ~path inc;
            Some path
        in
        incidents := (inc, path) :: !incidents
      end);
    if i mod 25 = 0 then config.log (Printf.sprintf "… %d/%d trials" i config.trials)
  done;
  {
    o_trials = config.trials;
    o_rejected_trials = !rejected;
    o_violating_trials = !violating;
    o_incidents = List.rev !incidents;
  }
