type json =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of json list
  | Obj of (string * json) list

let escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let float_repr x =
  if Float.is_nan x then "null"
  else if Float.is_integer x && Float.abs x < 1e15 then Printf.sprintf "%.1f" x
  else if Float.abs x = Float.infinity then "null"
  else Printf.sprintf "%.12g" x

let rec emit buf ~indent ~level v =
  let pad l = if indent then Buffer.add_string buf (String.make (2 * l) ' ') in
  let nl () = if indent then Buffer.add_char buf '\n' in
  match v with
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float x -> Buffer.add_string buf (float_repr x)
  | String s ->
    Buffer.add_char buf '"';
    Buffer.add_string buf (escape s);
    Buffer.add_char buf '"'
  | List [] -> Buffer.add_string buf "[]"
  | List items ->
    Buffer.add_char buf '[';
    nl ();
    List.iteri
      (fun i item ->
        if i > 0 then begin
          Buffer.add_char buf ',';
          nl ()
        end;
        pad (level + 1);
        emit buf ~indent ~level:(level + 1) item)
      items;
    nl ();
    pad level;
    Buffer.add_char buf ']'
  | Obj [] -> Buffer.add_string buf "{}"
  | Obj fields ->
    Buffer.add_char buf '{';
    nl ();
    List.iteri
      (fun i (k, item) ->
        if i > 0 then begin
          Buffer.add_char buf ',';
          nl ()
        end;
        pad (level + 1);
        Buffer.add_char buf '"';
        Buffer.add_string buf (escape k);
        Buffer.add_string buf "\": ";
        emit buf ~indent ~level:(level + 1) item)
      fields;
    nl ();
    pad level;
    Buffer.add_char buf '}'

let to_string ?(indent = true) v =
  let buf = Buffer.create 1024 in
  emit buf ~indent ~level:0 v;
  if indent then Buffer.add_char buf '\n';
  Buffer.contents buf

let write_file ~path v =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string v))

let timed f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)
