type json =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of json list
  | Obj of (string * json) list

let escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let float_repr x =
  if Float.is_nan x then "null"
  else if Float.is_integer x && Float.abs x < 1e15 then Printf.sprintf "%.1f" x
  else if Float.abs x = Float.infinity then "null"
  else
    (* Shortest form that still parses back to the same double, so
       writer ∘ reader is the identity (qcheck'd in test_obs.ml). *)
    let s = Printf.sprintf "%.12g" x in
    if float_of_string s = x then s else Printf.sprintf "%.17g" x

let rec emit buf ~indent ~level v =
  let pad l = if indent then Buffer.add_string buf (String.make (2 * l) ' ') in
  let nl () = if indent then Buffer.add_char buf '\n' in
  match v with
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float x -> Buffer.add_string buf (float_repr x)
  | String s ->
    Buffer.add_char buf '"';
    Buffer.add_string buf (escape s);
    Buffer.add_char buf '"'
  | List [] -> Buffer.add_string buf "[]"
  | List items ->
    Buffer.add_char buf '[';
    nl ();
    List.iteri
      (fun i item ->
        if i > 0 then begin
          Buffer.add_char buf ',';
          nl ()
        end;
        pad (level + 1);
        emit buf ~indent ~level:(level + 1) item)
      items;
    nl ();
    pad level;
    Buffer.add_char buf ']'
  | Obj [] -> Buffer.add_string buf "{}"
  | Obj fields ->
    Buffer.add_char buf '{';
    nl ();
    List.iteri
      (fun i (k, item) ->
        if i > 0 then begin
          Buffer.add_char buf ',';
          nl ()
        end;
        pad (level + 1);
        Buffer.add_char buf '"';
        Buffer.add_string buf (escape k);
        Buffer.add_string buf "\": ";
        emit buf ~indent ~level:(level + 1) item)
      fields;
    nl ();
    pad level;
    Buffer.add_char buf '}'

let to_string ?(indent = true) v =
  let buf = Buffer.create 1024 in
  emit buf ~indent ~level:0 v;
  if indent then Buffer.add_char buf '\n';
  Buffer.contents buf

let write_file ~path v =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string v))

(* ------------------------------------------------------------------ *)
(* Parsing — the read half, so artifacts (incident reports) round-trip. *)
(* ------------------------------------------------------------------ *)

exception Parse_error of int * string

let of_string s =
  let len = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (!pos, msg)) in
  let peek () = if !pos < len then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while !pos < len && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false) do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %C" c)
  in
  let literal word v =
    if !pos + String.length word <= len && String.sub s !pos (String.length word) = word then begin
      pos := !pos + String.length word;
      v
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let hex c =
    match c with
    | '0' .. '9' -> Char.code c - Char.code '0'
    | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
    | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
    | _ -> fail "bad \\u escape"
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec loop () =
      if !pos >= len then fail "unterminated string";
      let c = s.[!pos] in
      advance ();
      match c with
      | '"' -> Buffer.contents buf
      | '\\' -> (
        if !pos >= len then fail "unterminated escape";
        let e = s.[!pos] in
        advance ();
        match e with
        | '"' | '\\' | '/' ->
          Buffer.add_char buf e;
          loop ()
        | 'n' ->
          Buffer.add_char buf '\n';
          loop ()
        | 't' ->
          Buffer.add_char buf '\t';
          loop ()
        | 'r' ->
          Buffer.add_char buf '\r';
          loop ()
        | 'b' ->
          Buffer.add_char buf '\b';
          loop ()
        | 'f' ->
          Buffer.add_char buf '\012';
          loop ()
        | 'u' ->
          if !pos + 4 > len then fail "truncated \\u escape";
          let code =
            (hex s.[!pos] lsl 12) lor (hex s.[!pos + 1] lsl 8) lor (hex s.[!pos + 2] lsl 4)
            lor hex s.[!pos + 3]
          in
          pos := !pos + 4;
          (* UTF-8 encode the code point (surrogate pairs not recombined —
             our own artifacts never contain them). *)
          if code < 0x80 then Buffer.add_char buf (Char.chr code)
          else if code < 0x800 then begin
            Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
            Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
          end
          else begin
            Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
            Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
            Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
          end;
          loop ()
        | _ -> fail "unknown escape")
      | c ->
        Buffer.add_char buf c;
        loop ()
    in
    loop ()
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true | _ -> false
    in
    while !pos < len && is_num_char s.[!pos] do
      advance ()
    done;
    let tok = String.sub s start (!pos - start) in
    match int_of_string_opt tok with
    | Some i -> Int i
    | None -> (
      match float_of_string_opt tok with
      | Some f -> Float f
      | None -> fail (Printf.sprintf "bad number %S" tok))
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some 'n' -> literal "null" Null
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some '"' -> String (parse_string ())
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        List []
      end
      else begin
        let items = ref [ parse_value () ] in
        let rec more () =
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            items := parse_value () :: !items;
            more ()
          | Some ']' -> advance ()
          | _ -> fail "expected ',' or ']'"
        in
        more ();
        List (List.rev !items)
      end
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let field () =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          (k, v)
        in
        let fields = ref [ field () ] in
        let rec more () =
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            fields := field () :: !fields;
            more ()
          | Some '}' -> advance ()
          | _ -> fail "expected ',' or '}'"
        in
        more ();
        Obj (List.rev !fields)
      end
    | Some c -> if is_number_start c then parse_number () else fail (Printf.sprintf "unexpected %C" c)
  and is_number_start c = match c with '0' .. '9' | '-' -> true | _ -> false in
  match parse_value () with
  | v ->
    skip_ws ();
    if !pos <> len then Error (Printf.sprintf "trailing garbage at offset %d" !pos) else Ok v
  | exception Parse_error (at, msg) -> Error (Printf.sprintf "at offset %d: %s" at msg)

let read_file ~path =
  let ic = open_in_bin path in
  let contents =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  of_string contents

(* Accessors: total functions returning options, so decoding code reads
   as a chain of binds. *)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_int = function
  | Int i -> Some i
  | Float f when Float.is_integer f -> Some (int_of_float f)
  | _ -> None

let to_float = function Float f -> Some f | Int i -> Some (float_of_int i) | _ -> None
let to_string_v = function String s -> Some s | _ -> None
let to_bool = function Bool b -> Some b | _ -> None
let to_list = function List l -> Some l | _ -> None

let timed f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)
