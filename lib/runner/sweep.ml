(* A bounded pool of domains pulling jobs off a shared counter.  Jobs are
   closures so the pool is oblivious to what a "job" is; results land in a
   slot-per-job array, which keeps the output order equal to the input
   order no matter which domain ran what. *)

let default_domains () = max 1 (min 8 (Domain.recommended_domain_count () - 1))

exception Job_failed of int * exn

let map ?domains f xs =
  let jobs = Array.of_list xs in
  let n = Array.length jobs in
  if n = 0 then []
  else begin
    let domains =
      match domains with
      | Some d ->
        if d < 1 then invalid_arg "Sweep.map: domains must be >= 1";
        d
      | None -> default_domains ()
    in
    let results = Array.make n None in
    let first_error = Atomic.make None in
    let next = Atomic.make 0 in
    let worker () =
      let continue = ref true in
      while !continue do
        let i = Atomic.fetch_and_add next 1 in
        if i >= n || Atomic.get first_error <> None then continue := false
        else
          match f jobs.(i) with
          | r -> results.(i) <- Some r
          | exception e ->
            (* Remember the first failure (by job index) and wind down;
               losing a later concurrent failure is fine. *)
            let rec record () =
              match Atomic.get first_error with
              | Some (j, _) when j <= i -> ()
              | old -> if not (Atomic.compare_and_set first_error old (Some (i, e))) then record ()
            in
            record ()
      done
    in
    let spawned = List.init (min domains n - 1) (fun _ -> Domain.spawn worker) in
    worker ();
    List.iter Domain.join spawned;
    (match Atomic.get first_error with
    | Some (i, e) -> raise (Job_failed (i, e))
    | None -> ());
    Array.to_list (Array.map Option.get results)
  end

let resolve_domains = function
  | Some d ->
    if d < 1 then invalid_arg "Sweep.map_results: domains must be >= 1";
    d
  | None -> default_domains ()

(* Non-abandoning variant: every job runs to a [result], so one failure
   cannot sink the rest of the batch (the service scheduler's contract). *)
let map_results ?domains f xs =
  let jobs = Array.of_list xs in
  let n = Array.length jobs in
  if n = 0 then []
  else begin
    let domains = resolve_domains domains in
    let results = Array.make n None in
    let next = Atomic.make 0 in
    let worker () =
      let continue = ref true in
      while !continue do
        let i = Atomic.fetch_and_add next 1 in
        if i >= n then continue := false
        else results.(i) <- Some (match f jobs.(i) with r -> Ok r | exception e -> Error e)
      done
    in
    let spawned = List.init (min domains n - 1) (fun _ -> Domain.spawn worker) in
    worker ();
    List.iter Domain.join spawned;
    Array.to_list (Array.map Option.get results)
  end

let run ?domains fs = map ?domains (fun f -> f ()) fs

let map_seeds ?domains ~seeds f = map ?domains f seeds
