(** Benchmark result serialization.

    A minimal JSON value type and printer (the toolchain has no JSON
    dependency), used to persist sweep results — e.g. the engine
    benchmark writes [BENCH_engine.json] with it. *)

type json =
  | Null
  | Bool of bool
  | Int of int
  | Float of float  (** NaN / infinities are emitted as [null] *)
  | String of string
  | List of json list
  | Obj of (string * json) list

val to_string : ?indent:bool -> json -> string
(** Serialize; [indent] (default [true]) pretty-prints with 2-space
    indentation and a trailing newline. *)

val write_file : path:string -> json -> unit

(** {2 Parsing}

    The read half of the layer, so artifacts written with {!write_file}
    (benchmark results, chaos incident reports) round-trip without an
    external JSON dependency. *)

val of_string : string -> (json, string) result
(** Parse a JSON document.  Numbers without a fractional part or
    exponent come back as [Int]; [\u] escapes are decoded to UTF-8
    (surrogate pairs are not recombined — our own artifacts never emit
    them). *)

val read_file : path:string -> (json, string) result

val member : string -> json -> json option
(** Field of an [Obj]; [None] on a missing key or a non-object. *)

val to_int : json -> int option
(** [Int], or a [Float] with integral value. *)

val to_float : json -> float option
(** [Float], or an [Int] widened. *)

val to_string_v : json -> string option
val to_bool : json -> bool option
val to_list : json -> json list option

val timed : (unit -> 'a) -> 'a * float
(** [timed f] runs [f] and returns its result with the wall-clock
    seconds it took. *)
