(** Benchmark result serialization.

    A minimal JSON value type and printer (the toolchain has no JSON
    dependency), used to persist sweep results — e.g. the engine
    benchmark writes [BENCH_engine.json] with it. *)

type json =
  | Null
  | Bool of bool
  | Int of int
  | Float of float  (** NaN / infinities are emitted as [null] *)
  | String of string
  | List of json list
  | Obj of (string * json) list

val to_string : ?indent:bool -> json -> string
(** Serialize; [indent] (default [true]) pretty-prints with 2-space
    indentation and a trailing newline. *)

val write_file : path:string -> json -> unit

val timed : (unit -> 'a) -> 'a * float
(** [timed f] runs [f] and returns its result with the wall-clock
    seconds it took. *)
