(** Multicore sweep runner.

    Fans independent jobs (typically one simulation per seed or per
    parameter point) across a bounded pool of domains.  Results always
    come back in input order, regardless of which domain ran which job,
    so a sweep is a drop-in replacement for [List.map].

    Jobs must be {e independent}: they run concurrently on separate
    domains, so each should build its own PRNG / mutable state from its
    input (the simulation entry points in [Run] already do — every run
    derives everything from its [seed]).  Nothing here synchronises
    access to shared mutable data. *)

exception Job_failed of int * exn
(** Raised by {!map} / {!run} when a job raises: the input index of the
    earliest failing job, paired with its exception.  Remaining jobs are
    abandoned (never started) once a failure is observed — the fail-fast
    contract benches and sweeps want.  Long-lived callers that must keep
    going (the service scheduler) use {!map_results} instead, which never
    raises and never abandons. *)

val default_domains : unit -> int
(** Pool size used when [?domains] is omitted:
    [Domain.recommended_domain_count () - 1] clamped to [1, 8]. *)

val map : ?domains:int -> ('a -> 'b) -> 'a list -> 'b list
(** [map ~domains f xs] is [List.map f xs] computed on up to [domains]
    domains (including the calling one).  Raises [Invalid_argument] if
    [domains < 1]. *)

val map_results : ?domains:int -> ('a -> 'b) -> 'a list -> ('b, exn) result list
(** [map_results ~domains f xs] runs every job to completion regardless
    of other jobs' failures: slot [i] holds [Ok (f x_i)] or [Error e] if
    that job raised.  Results in input order; never raises [Job_failed].
    Raises [Invalid_argument] if [domains < 1]. *)

val run : ?domains:int -> (unit -> 'a) list -> 'a list
(** [run thunks] forces each thunk, in parallel, results in order. *)

val map_seeds : ?domains:int -> seeds:int list -> (int -> 'a) -> 'a list
(** [map_seeds ~seeds f] — {!map} with the conventional argument order
    for per-seed simulation sweeps. *)
