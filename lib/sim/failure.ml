module Graph = Ftagg_graph.Graph
module Prng = Ftagg_util.Prng

let never = max_int

type t = int array (* crash round per node; [never] if it survives *)

let none ~n = Array.make n never

let of_list ~n entries =
  let t = Array.make n never in
  List.iter
    (fun (node, round) ->
      if node <= 0 || node >= n then
        invalid_arg "Failure.of_list: node out of range or root";
      if round < 1 then invalid_arg "Failure.of_list: round must be >= 1";
      t.(node) <- min t.(node) round)
    entries;
  t

let of_crash_rounds a =
  let t = Array.copy a in
  if Array.length t = 0 then invalid_arg "Failure.of_crash_rounds: empty";
  if t.(0) <> never then invalid_arg "Failure.of_crash_rounds: root must not crash";
  Array.iter (fun r -> if r < 1 then invalid_arg "Failure.of_crash_rounds: round must be >= 1") t;
  t

let crash_round t u = t.(u)

let to_list t =
  let acc = ref [] in
  for u = Array.length t - 1 downto 0 do
    if t.(u) <> never then acc := (u, t.(u)) :: !acc
  done;
  !acc

let crashed_by t ~round =
  let acc = ref [] in
  for u = Array.length t - 1 downto 0 do
    if t.(u) <= round then acc := u :: !acc
  done;
  !acc

let crashed_nodes t = crashed_by t ~round:(never - 1)

let is_alive t ~node ~round = t.(node) > round

let crash_rounds t = t

let shift t ~by =
  Array.map (fun r -> if r = never then never else max 1 (r - by)) t

let edge_failures g t =
  Graph.fold_edges
    (fun u v acc -> if t.(u) <> never || t.(v) <> never then acc + 1 else acc)
    g 0

let edge_failures_in_window g t ~first ~last =
  Graph.fold_edges
    (fun u v acc ->
      let r = min t.(u) t.(v) in
      if r >= first && r <= last then acc + 1 else acc)
    g 0

(* Incremental edge-failure cost of crashing [u] given [crashed]. *)
let marginal_cost g crashed u =
  List.length (List.filter (fun v -> not (Hashtbl.mem crashed v)) (Graph.neighbors g u))

let budgeted_crashes g ~rng ~budget ~pick_round =
  let n = Graph.n g in
  let t = Array.make n never in
  let crashed = Hashtbl.create 16 in
  let candidates = Array.init (n - 1) (fun i -> i + 1) in
  Prng.shuffle rng candidates;
  let spent = ref 0 in
  Array.iter
    (fun u ->
      let cost = marginal_cost g crashed u in
      if !spent + cost <= budget && cost > 0 then begin
        spent := !spent + cost;
        Hashtbl.replace crashed u ();
        t.(u) <- pick_round ()
      end)
    candidates;
  t

let random g ~rng ~budget ~max_round =
  budgeted_crashes g ~rng ~budget ~pick_round:(fun () -> Prng.in_range rng 1 (max max_round 1))

let burst g ~rng ~budget ~round = budgeted_crashes g ~rng ~budget ~pick_round:(fun () -> round)

let kill_nodes ~n ~nodes ~round = of_list ~n (List.map (fun u -> (u, round)) nodes)

let chain ~n ~first ~len ~round =
  if first <= 0 then invalid_arg "Failure.chain: must not include the root";
  let nodes = List.init len (fun i -> first + i) in
  kill_nodes ~n ~nodes ~round

let high_degree g ~budget ~round =
  let n = Graph.n g in
  let t = Array.make n never in
  let crashed = Hashtbl.create 8 in
  let by_degree =
    List.init (n - 1) (fun i -> i + 1)
    |> List.sort (fun u v -> compare (Graph.degree g v) (Graph.degree g u))
  in
  let spent = ref 0 in
  List.iter
    (fun u ->
      let cost = marginal_cost g crashed u in
      if !spent + cost <= budget && cost > 0 then begin
        spent := !spent + cost;
        Hashtbl.replace crashed u ();
        t.(u) <- round
      end)
    by_degree;
  t

let per_interval g ~rng ~budget ~interval_len ~intervals =
  if intervals < 1 || interval_len < 1 then
    invalid_arg "Failure.per_interval: need positive interval geometry";
  let n = Graph.n g in
  let t = Array.make n never in
  let crashed = Hashtbl.create 8 in
  let candidates = Array.init (n - 1) (fun i -> i + 1) in
  Prng.shuffle rng candidates;
  (* Round-robin crashes over the interval windows so every window gets
     hit before any gets a second crash, within the edge budget. *)
  let spent = ref 0 in
  let slot = ref 0 in
  Array.iter
    (fun u ->
      let cost = marginal_cost g crashed u in
      if cost > 0 && !spent + cost <= budget then begin
        spent := !spent + cost;
        Hashtbl.replace crashed u ();
        t.(u) <- (!slot * interval_len) + 1 + Prng.int rng interval_len;
        slot := (!slot + 1) mod intervals
      end)
    candidates;
  t

let neighborhood g ~center ~round =
  let nodes =
    center :: Graph.neighbors g center
    |> List.filter (fun u -> u <> Graph.root)
  in
  kill_nodes ~n:(Graph.n g) ~nodes ~round

let pp ppf t =
  Format.fprintf ppf "@[<h>";
  let first = ref true in
  Array.iteri
    (fun u r ->
      if r <> never then begin
        if not !first then Format.fprintf ppf ",@ ";
        first := false;
        Format.fprintf ppf "%d@@%d" u r
      end)
    t;
  if !first then Format.fprintf ppf "(none)";
  Format.fprintf ppf "@]"
