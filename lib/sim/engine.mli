(** Synchronous round-driven execution engine.

    Implements the paper's model (§2): protocols proceed in rounds; in each
    round a node first receives everything its neighbours broadcast in the
    previous round, computes locally, and may broadcast a single message,
    delivered to all live neighbours next round.

    A protocol is a per-node automaton over an abstract payload type.  The
    automaton may emit several logical payloads in one round; the engine
    combines them into the single physical broadcast the model allows and
    charges their summed bit widths to the sender (matching the pseudo-code
    comment in the paper's Algorithm 2). *)

type node_id = int

type ('state, 'msg) protocol = {
  name : string;
  init : node_id -> rng:Ftagg_util.Prng.t -> 'state;
      (** Initial state.  [rng] is a private-coin stream for this node,
          derived from the run seed. *)
  step :
    round:int ->
    me:node_id ->
    state:'state ->
    inbox:(node_id * 'msg) list ->
    'state * 'msg list;
      (** One round of local computation.  [inbox] holds the logical
          payloads received this round with their senders, in sender order.
          The returned payloads are broadcast together; an empty list means
          the node stays silent. *)
  msg_bits : 'msg -> int;
      (** Bit width charged per logical payload. *)
  root_done : 'state -> bool;
      (** Checked on the root after every round; a [true] halts the run
          (the paper's executions end when the root outputs). *)
}

val run :
  ?observer:(round:int -> node:int -> 'msg list -> unit) ->
  ?obs:Ftagg_obs.Obs.t ->
  ?loss:float ->
  graph:Ftagg_graph.Graph.t ->
  failures:Failure.t ->
  max_rounds:int ->
  seed:int ->
  ('state, 'msg) protocol ->
  'state array * Metrics.t
(** Execute the protocol.  Returns the final state of every node (crashed
    nodes keep the state they had when they crashed) and the metrics.
    Halts after [max_rounds] rounds or as soon as [root_done] holds.

    [observer] is invoked once per live node per round with the node's
    outgoing broadcast (possibly empty) — the hook behind {!Trace}.

    [obs] is the telemetry sink ({!Ftagg_obs.Obs}): the engine feeds it
    one event per round plus one per non-empty broadcast, and installs
    its span collector as the domain's ambient collector so instrumented
    protocols ([Agg]/[Veri]/[Tradeoff]) can annotate their phases via
    [Ftagg_obs.Span].  Telemetry never touches the PRNG streams: with
    [obs] present or absent, enabled or disabled, the run's states and
    metrics are identical (checked in [test/test_obs.ml]).

    [loss] (default 0) drops each per-edge delivery independently with the
    given probability.  {b This leaves the paper's model}: every guarantee
    in the library assumes reliable local broadcast; the knob exists so
    the bench harness can demonstrate (E16) that the crash-only guarantees
    do not survive lossy links.

    The delivery loop iterates a {!Ftagg_graph.Graph.Csr} snapshot of the
    adjacency taken once at run start, allocating nothing per round beyond
    the inbox cells the [step] API requires. *)

(** {2 Chaos instrumentation}

    A second engine entry point for resilience experiments: message-level
    fault injection beyond the paper's model, {e online} (adaptive)
    adversaries that watch the traffic before deciding whom to crash, and
    per-round invariant watchdogs.  All three features are opt-in; with
    every knob at its default, {!run_chaos} is observationally identical
    to {!run} (same states, metrics, and PRNG streams — checked
    differentially in [test/test_chaos.ml]). *)

type faults = {
  loss : float;  (** per-edge delivery drop probability, as {!run}'s [loss] *)
  dup : float;  (** probability a delivered per-edge message is duplicated *)
  delay : float;
      (** probability a delivered per-edge message arrives one round late
          (it then survives the sender's crash, like any in-flight
          message) *)
}
(** Per-edge, per-round fault probabilities, each drawn independently in
    [\[0, 1\]].  {b Everything here leaves the paper's model} — the
    guarantees assume reliable local broadcast; these knobs exist to map
    where the guarantees break (bench E16/E17). *)

val no_faults : faults
(** All probabilities zero: the paper's reliable local broadcast. *)

type round_report = {
  rr_round : int;  (** the round that just executed *)
  rr_broadcasters : int list;
      (** nodes that sent a non-empty broadcast this round, ascending *)
  rr_metrics : Metrics.t;
      (** live cumulative accounting — per-node bit totals so far *)
  rr_crash_rounds : int array;
      (** the schedule as materialized so far; treat as read-only *)
}
(** What an online adversary sees after each round: exactly the per-round
    traffic (who broadcast, per-node bit totals) plus the crash state. *)

type online = round_report -> int list
(** Called after every round; the returned nodes crash at the start of
    the next round (their current-round broadcast is still delivered —
    crash means stop, not message loss).  The root and already-crashed
    nodes are ignored.  Budget enforcement is the adversary's job (see
    [Ftagg_chaos.Adversary]). *)

type 'state view = {
  v_round : int;
  v_states : 'state array;
  v_metrics : Metrics.t;
  v_crash_rounds : int array;  (** treat as read-only *)
}
(** Snapshot handed to a watchdog after each round's steps. *)

type 'state watch = 'state view -> (string * string) option
(** Per-round invariant check: [Some (invariant, detail)] reports a
    violation of the named invariant. *)

type violation = {
  at_round : int;
  invariant : string;
  detail : string;
}

type 'state chaos_result = {
  c_states : 'state array;
  c_metrics : Metrics.t;
  c_schedule : Failure.t;
      (** the materialized schedule: the oblivious input plus every
          crash the online adversary decided — replaying it obliviously
          reproduces the run *)
  c_violation : violation option;
      (** the first watchdog violation, if any *)
}

val run_chaos :
  ?observer:(round:int -> node:int -> 'msg list -> unit) ->
  ?obs:Ftagg_obs.Obs.t ->
  ?faults:faults ->
  ?online:online ->
  ?watch:'state watch ->
  ?halt_on_violation:bool ->
  graph:Ftagg_graph.Graph.t ->
  failures:Failure.t ->
  max_rounds:int ->
  seed:int ->
  ('state, 'msg) protocol ->
  'state chaos_result
(** The instrumented engine.  [failures] is the oblivious part of the
    schedule; [online] (if any) extends it on the fly.  [watch] runs
    after every round; on its first violation the run stops (unless
    [halt_on_violation] is [false], default [true]) and the violation is
    reported in the result.  [obs] is as in {!run}; watchdog violations
    are additionally forwarded to it, so chaos incidents carry a
    telemetry tail.  Off the hot path: list-based like {!run_reference},
    roughly engine-reference speed. *)

(** {2 Hot-path building blocks}

    Exposed so [Scale.Executor] — the multi-domain partitioned executor —
    assembles inboxes and charges bits with {e exactly} the same code as
    {!run}, keeping the two byte-identical on identical inputs. *)

val deliver : int -> 'm list -> (int * 'm) list -> (int * 'm) list
(** [deliver v msgs acc] prepends [(v, m)] for every [m] of [msgs] onto
    [acc], preserving the order of [msgs]. *)

val sum_bits : ('m -> int) -> int -> 'm list -> int
(** [sum_bits msg_bits acc msgs] folds the per-payload bit widths. *)

val run_reference :
  ?observer:(round:int -> node:int -> 'msg list -> unit) ->
  ?loss:float ->
  graph:Ftagg_graph.Graph.t ->
  failures:Failure.t ->
  max_rounds:int ->
  seed:int ->
  ('state, 'msg) protocol ->
  'state array * Metrics.t
(** The original list-based engine, kept as the executable specification
    of {!run}: same final states, same metrics, same per-node and loss
    PRNG streams.  Used by the differential equivalence tests and as the
    baseline of the [perf] benchmark; {b not} a hot path. *)
