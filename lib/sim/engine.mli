(** Synchronous round-driven execution engine.

    Implements the paper's model (§2): protocols proceed in rounds; in each
    round a node first receives everything its neighbours broadcast in the
    previous round, computes locally, and may broadcast a single message,
    delivered to all live neighbours next round.

    A protocol is a per-node automaton over an abstract payload type.  The
    automaton may emit several logical payloads in one round; the engine
    combines them into the single physical broadcast the model allows and
    charges their summed bit widths to the sender (matching the pseudo-code
    comment in the paper's Algorithm 2). *)

type node_id = int

type ('state, 'msg) protocol = {
  name : string;
  init : node_id -> rng:Ftagg_util.Prng.t -> 'state;
      (** Initial state.  [rng] is a private-coin stream for this node,
          derived from the run seed. *)
  step :
    round:int ->
    me:node_id ->
    state:'state ->
    inbox:(node_id * 'msg) list ->
    'state * 'msg list;
      (** One round of local computation.  [inbox] holds the logical
          payloads received this round with their senders, in sender order.
          The returned payloads are broadcast together; an empty list means
          the node stays silent. *)
  msg_bits : 'msg -> int;
      (** Bit width charged per logical payload. *)
  root_done : 'state -> bool;
      (** Checked on the root after every round; a [true] halts the run
          (the paper's executions end when the root outputs). *)
}

val run :
  ?observer:(round:int -> node:int -> 'msg list -> unit) ->
  ?loss:float ->
  graph:Ftagg_graph.Graph.t ->
  failures:Failure.t ->
  max_rounds:int ->
  seed:int ->
  ('state, 'msg) protocol ->
  'state array * Metrics.t
(** Execute the protocol.  Returns the final state of every node (crashed
    nodes keep the state they had when they crashed) and the metrics.
    Halts after [max_rounds] rounds or as soon as [root_done] holds.

    [observer] is invoked once per live node per round with the node's
    outgoing broadcast (possibly empty) — the hook behind {!Trace}.

    [loss] (default 0) drops each per-edge delivery independently with the
    given probability.  {b This leaves the paper's model}: every guarantee
    in the library assumes reliable local broadcast; the knob exists so
    the bench harness can demonstrate (E16) that the crash-only guarantees
    do not survive lossy links.

    The delivery loop iterates a {!Ftagg_graph.Graph.Csr} snapshot of the
    adjacency taken once at run start, allocating nothing per round beyond
    the inbox cells the [step] API requires. *)

val run_reference :
  ?observer:(round:int -> node:int -> 'msg list -> unit) ->
  ?loss:float ->
  graph:Ftagg_graph.Graph.t ->
  failures:Failure.t ->
  max_rounds:int ->
  seed:int ->
  ('state, 'msg) protocol ->
  'state array * Metrics.t
(** The original list-based engine, kept as the executable specification
    of {!run}: same final states, same metrics, same per-node and loss
    PRNG streams.  Used by the differential equivalence tests and as the
    baseline of the [perf] benchmark; {b not} a hot path. *)
