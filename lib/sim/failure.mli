(** Crash-failure adversary schedules.

    The paper's adversary is *oblivious*: it fixes, before the protocol
    flips any coin, which nodes crash at which round.  A schedule maps each
    node to the first round in which it no longer acts ([never] for nodes
    that survive).  The root never crashes.

    An edge {e fails} iff at least one endpoint crashes; [f] bounds the
    number of edge failures. *)

type t
(** A fixed schedule: node [u] stops acting at round [crash_round u]
    (a message [u] broadcast in round [crash_round u - 1] is still
    delivered — crash means stop, not message loss). *)

val never : int
(** Sentinel round for nodes that never crash. *)

val none : n:int -> t
(** Failure-free schedule. *)

val of_list : n:int -> (int * int) list -> t
(** [of_list ~n [(node, round); ...]].  Crashing the root or a node id out
    of range raises [Invalid_argument]. *)

val of_crash_rounds : int array -> t
(** Wrap a raw crash-round array (index = node, value = crash round,
    [never] for survivors) as a schedule.  The array is copied.  Raises
    [Invalid_argument] if the root's slot is not [never] or any round is
    [< 1].  Inverse of {!crash_rounds} (up to copying); used to
    materialize the schedule an online adversary produced. *)

val to_list : t -> (int * int) list
(** The [(node, round)] pairs of every node that ever crashes, ascending
    by node id — the serializable form, inverse of {!of_list}. *)

val crash_round : t -> int -> int
val crashed_by : t -> round:int -> int list
(** Nodes whose crash round is [<= round]. *)

val crashed_nodes : t -> int list
(** All nodes that ever crash, sorted. *)

val is_alive : t -> node:int -> round:int -> bool
(** Whether the node still acts in the given round. *)

val crash_rounds : t -> int array
(** The schedule's backing array (index = node, value = crash round).
    Exposed for the engine's per-node-per-round liveness test; treat as
    read-only — mutating it changes the schedule. *)

val shift : t -> by:int -> t
(** [shift t ~by] is the schedule as seen by an execution starting [by]
    rounds into the original one: crash rounds are moved earlier by [by],
    clamping at round 1 (already-dead nodes stay dead).  Used to chain
    sequential protocol runs (e.g. SELECTION's repeated COUNTs) under one
    global adversary. *)

val edge_failures : Ftagg_graph.Graph.t -> t -> int
(** Number of edges of the topology incident to at least one crashed
    node — the paper's failure measure [f]. *)

val edge_failures_in_window : Ftagg_graph.Graph.t -> t -> first:int -> last:int -> int
(** Edges whose first incident crash happens in rounds
    [\[first, last\]].  Used to reason about per-interval failure counts in
    Algorithm 1. *)

val pp : Format.formatter -> t -> unit
(** Render as "node@round" pairs, ascending by node id. *)

(** {2 Generators}

    All generators are deterministic functions of their [Prng.t] and stay
    within the requested edge-failure budget. *)

val random : Ftagg_graph.Graph.t -> rng:Ftagg_util.Prng.t -> budget:int -> max_round:int -> t
(** Crash uniformly random non-root nodes at uniformly random rounds in
    [\[1, max_round\]], greedily, while the total edge-failure count stays
    [<= budget]. *)

val burst :
  Ftagg_graph.Graph.t -> rng:Ftagg_util.Prng.t -> budget:int -> round:int -> t
(** Like {!random} but all crashes happen at the same round — the
    concentrated-failure case that defeats a single AGG interval. *)

val kill_nodes : n:int -> nodes:int list -> round:int -> t
(** Crash exactly the given nodes at the given round. *)

val chain : n:int -> first:int -> len:int -> round:int -> t
(** Crash the id-contiguous chain [first, first+len)] at [round].  On path
    or caterpillar topologies (where ids follow the spine) this realises
    the paper's long-failure-chain construction. *)

val neighborhood :
  Ftagg_graph.Graph.t -> center:int -> round:int -> t
(** Crash [center] and its whole neighbourhood (minus the root) at
    [round] — the Figure 3 scenario where a node's flooding dies with it. *)

val high_degree : Ftagg_graph.Graph.t -> budget:int -> round:int -> t
(** Crash the highest-degree non-root nodes (greedily, within the
    edge-failure budget) at [round] — hub-targeted attack. *)

val per_interval :
  Ftagg_graph.Graph.t ->
  rng:Ftagg_util.Prng.t ->
  budget:int ->
  interval_len:int ->
  intervals:int ->
  t
(** Spread crashes so that {e every} interval of [interval_len] rounds
    receives roughly [budget / intervals] edge failures — the
    evenly-spread regime Algorithm 1's analysis assumes, and the
    schedule that stresses every sampled interval equally. *)
