module Graph = Ftagg_graph.Graph
module Csr = Ftagg_graph.Graph.Csr
module Prng = Ftagg_util.Prng
module Obs = Ftagg_obs.Obs
module Span = Ftagg_obs.Span

(* Run [body] with [obs]'s span collector ambient (so protocol [step]
   functions can open phase spans) and close all spans on the way out.
   [obs = None] must add nothing to the hot path: the caller's loop only
   touches obs behind a [match] that the branch predictor eats. *)
let with_obs obs body =
  match obs with
  | None -> body ()
  | Some o ->
    Span.with_ambient (Obs.spans o)
      (fun () ->
        let result = body () in
        Obs.finish o;
        result)

type node_id = int

type ('state, 'msg) protocol = {
  name : string;
  init : node_id -> rng:Prng.t -> 'state;
  step :
    round:int ->
    me:node_id ->
    state:'state ->
    inbox:(node_id * 'msg) list ->
    'state * 'msg list;
  msg_bits : 'msg -> int;
  root_done : 'state -> bool;
}

(* The original list-based engine, kept verbatim as the executable
   specification: [run] must be observationally identical to it (same
   final states, same metrics, same PRNG stream), which
   test_engine_perf.ml checks differentially and bench `perf` uses as
   the speedup baseline. *)
let run_reference ?observer ?(loss = 0.0) ~graph ~failures ~max_rounds ~seed proto =
  if loss < 0.0 || loss >= 1.0 then invalid_arg "Engine.run: loss must be in [0, 1)";
  let n = Graph.n graph in
  let rng = Prng.create seed in
  let loss_rng = Prng.split rng in
  let delivered () = loss = 0.0 || Prng.float loss_rng 1.0 >= loss in
  let states = Array.init n (fun u -> proto.init u ~rng:(Prng.split rng)) in
  let metrics = Metrics.create n in
  (* [in_flight.(u)] holds what [u] broadcast in the previous round (its
     logical payloads), to be delivered to u's neighbours this round. *)
  let in_flight : 'msg list array = Array.make n [] in
  let next_flight : 'msg list array = Array.make n [] in
  let round = ref 1 in
  let halted = ref false in
  while (not !halted) && !round <= max_rounds do
    let r = !round in
    Metrics.note_round metrics r;
    for u = 0 to n - 1 do
      if Failure.is_alive failures ~node:u ~round:r then begin
        let inbox =
          List.concat_map
            (fun v ->
              if in_flight.(v) = [] then []
              else if delivered () then List.map (fun m -> (v, m)) in_flight.(v)
              else [])
            (Graph.neighbors graph u)
        in
        let state', out = proto.step ~round:r ~me:u ~state:states.(u) ~inbox in
        states.(u) <- state';
        next_flight.(u) <- out;
        (match observer with Some f -> f ~round:r ~node:u out | None -> ());
        let bits = List.fold_left (fun acc m -> acc + proto.msg_bits m) 0 out in
        Metrics.charge metrics ~node:u ~bits
      end
      else next_flight.(u) <- []
    done;
    Array.blit next_flight 0 in_flight 0 n;
    Array.fill next_flight 0 n [];
    if proto.root_done states.(Graph.root) then halted := true;
    incr round
  done;
  (states, metrics)

(* ------------------------------------------------------------------ *)
(* Chaos instrumentation: message-level fault injection, online        *)
(* (adaptive) adversaries and per-round invariant watchdogs.           *)
(* ------------------------------------------------------------------ *)

type faults = {
  loss : float;
  dup : float;
  delay : float;
}

let no_faults = { loss = 0.0; dup = 0.0; delay = 0.0 }

type round_report = {
  rr_round : int;
  rr_broadcasters : int list;
  rr_metrics : Metrics.t;
  rr_crash_rounds : int array;
}

type online = round_report -> int list

type 'state view = {
  v_round : int;
  v_states : 'state array;
  v_metrics : Metrics.t;
  v_crash_rounds : int array;
}

type 'state watch = 'state view -> (string * string) option

type violation = {
  at_round : int;
  invariant : string;
  detail : string;
}

type 'state chaos_result = {
  c_states : 'state array;
  c_metrics : Metrics.t;
  c_schedule : Failure.t;
  c_violation : violation option;
}

(* The instrumented engine.  Structured like [run_reference] (lists, no
   CSR tricks) because clarity beats speed off the hot path, with three
   additions: per-edge duplication/one-round-delay faults, an online
   adversary consulted after every round, and a watchdog that can stop
   the run at the first violated invariant.

   With [faults = no_faults], no [online] and no [watch], the PRNG setup
   and draw order are exactly [run_reference]'s — the dup/delay draws are
   guarded by their probabilities being positive — so a chaos-off run is
   observably identical to [run]/[run_reference] (states, metrics, PRNG
   streams); test/test_chaos.ml checks this differentially. *)
let run_chaos ?observer ?obs ?(faults = no_faults) ?online ?watch ?(halt_on_violation = true)
    ~graph ~failures ~max_rounds ~seed proto =
  let { loss; dup; delay } = faults in
  if loss < 0.0 || loss > 1.0 then invalid_arg "Engine.run_chaos: loss must be in [0, 1]";
  if dup < 0.0 || dup > 1.0 then invalid_arg "Engine.run_chaos: dup must be in [0, 1]";
  if delay < 0.0 || delay > 1.0 then invalid_arg "Engine.run_chaos: delay must be in [0, 1]";
  let n = Graph.n graph in
  let rng = Prng.create seed in
  let loss_rng = Prng.split rng in
  let states = Array.init n (fun u -> proto.init u ~rng:(Prng.split rng)) in
  let metrics = Metrics.create n in
  (* A private copy: online crash decisions must not mutate the caller's
     oblivious schedule. *)
  let crash = Array.copy (Failure.crash_rounds failures) in
  let in_flight : 'msg list array = Array.make n [] in
  let next_flight : 'msg list array = Array.make n [] in
  (* [delayed.(u)] holds (sender, payload) pairs whose delivery to [u]
     was pushed one round; they arrive ahead of this round's traffic and
     survive the sender's crash (in flight = in flight). *)
  let delayed : (node_id * 'msg) list array = Array.make n [] in
  let next_delayed : (node_id * 'msg) list array = Array.make n [] in
  let draw p = p > 0.0 && Prng.float loss_rng 1.0 < p in
  let violation = ref None in
  let round = ref 1 in
  let halted = ref false in
  with_obs obs @@ fun () ->
  while (not !halted) && !round <= max_rounds do
    let r = !round in
    Metrics.note_round metrics r;
    (match obs with Some o -> Obs.on_round o r | None -> ());
    let rev_broadcasters = ref [] in
    for u = 0 to n - 1 do
      if crash.(u) > r then begin
        let held = delayed.(u) in
        delayed.(u) <- [];
        let fresh =
          List.concat_map
            (fun v ->
              if in_flight.(v) = [] then []
              else if loss = 0.0 || Prng.float loss_rng 1.0 >= loss then begin
                let msgs = List.map (fun m -> (v, m)) in_flight.(v) in
                let msgs = if draw dup then msgs @ msgs else msgs in
                if draw delay then begin
                  next_delayed.(u) <- next_delayed.(u) @ msgs;
                  []
                end
                else msgs
              end
              else [])
            (Graph.neighbors graph u)
        in
        let inbox = held @ fresh in
        let state', out = proto.step ~round:r ~me:u ~state:states.(u) ~inbox in
        states.(u) <- state';
        next_flight.(u) <- out;
        (match observer with Some f -> f ~round:r ~node:u out | None -> ());
        if out <> [] then rev_broadcasters := u :: !rev_broadcasters;
        let bits = List.fold_left (fun acc m -> acc + proto.msg_bits m) 0 out in
        Metrics.charge metrics ~node:u ~bits;
        (match (obs, out) with
        | Some o, _ :: _ -> Obs.on_broadcast o ~round:r ~node:u ~msgs:(List.length out) ~bits
        | _ -> ())
      end
      else begin
        next_flight.(u) <- [];
        delayed.(u) <- [];
        next_delayed.(u) <- []
      end
    done;
    Array.blit next_flight 0 in_flight 0 n;
    Array.fill next_flight 0 n [];
    Array.blit next_delayed 0 delayed 0 n;
    Array.fill next_delayed 0 n [];
    (match watch with
    | Some w when !violation = None -> (
      match
        w { v_round = r; v_states = states; v_metrics = metrics; v_crash_rounds = crash }
      with
      | Some (invariant, detail) ->
        violation := Some { at_round = r; invariant; detail };
        (match obs with
        | Some o -> Obs.on_violation o ~round:r ~invariant ~detail
        | None -> ());
        if halt_on_violation then halted := true
      | None -> ())
    | _ -> ());
    (match online with
    | Some adversary when not !halted ->
      let report =
        {
          rr_round = r;
          rr_broadcasters = List.rev !rev_broadcasters;
          rr_metrics = metrics;
          rr_crash_rounds = crash;
        }
      in
      List.iter
        (fun u -> if u > 0 && u < n && crash.(u) > r + 1 then crash.(u) <- r + 1)
        (adversary report)
    | _ -> ());
    if proto.root_done states.(Graph.root) then halted := true;
    incr round
  done;
  {
    c_states = states;
    c_metrics = metrics;
    c_schedule = Failure.of_crash_rounds crash;
    c_violation = !violation;
  }

(* Prepend [(v, m)] for every [m] of [msgs] onto [acc], preserving the
   order of [msgs].  Messages per broadcast are few, so the non-tail
   recursion is fine. *)
let rec deliver v msgs acc =
  match msgs with [] -> acc | m :: tl -> (v, m) :: deliver v tl acc

let rec sum_bits msg_bits acc = function
  | [] -> acc
  | m :: tl -> sum_bits msg_bits (acc + msg_bits m) tl

(* Fast path: identical observable behaviour to [run_reference], but the
   delivery loop walks a CSR snapshot of the adjacency with no per-round
   set filtering, no [List.concat_map] churn and no closure allocation —
   the only allocations left are the inbox cells the protocol API
   requires.  The per-edge loss draws happen in the same (ascending
   neighbour) order as the reference, so the loss PRNG stream matches. *)
let run ?observer ?obs ?(loss = 0.0) ~graph ~failures ~max_rounds ~seed proto =
  if loss < 0.0 || loss >= 1.0 then invalid_arg "Engine.run: loss must be in [0, 1)";
  let n = Graph.n graph in
  let csr = Graph.csr graph in
  let offsets = csr.Csr.offsets and targets = csr.Csr.targets in
  let crash = Failure.crash_rounds failures in
  let rng = Prng.create seed in
  let loss_rng = Prng.split rng in
  let states = Array.init n (fun u -> proto.init u ~rng:(Prng.split rng)) in
  let metrics = Metrics.create n in
  let in_flight : 'msg list array ref = ref (Array.make n []) in
  let next_flight : 'msg list array ref = ref (Array.make n []) in
  (* Reusable per-node delivery flags for the lossy path (one slot per
     incident edge of the busiest node). *)
  let flags = Array.make (max 1 (Csr.max_degree csr)) false in
  (* [traffic] = did anyone broadcast last round?  When false, every
     inbox is empty and no loss draw would happen (the reference only
     draws for neighbours with a non-empty in-flight slot), so the whole
     neighbour scan is skipped — most rounds of a typical protocol are
     globally silent. *)
  let traffic = ref false in
  let round = ref 1 in
  let halted = ref false in
  with_obs obs @@ fun () ->
  while (not !halted) && !round <= max_rounds do
    let r = !round in
    Metrics.note_round metrics r;
    (match obs with Some o -> Obs.on_round o r | None -> ());
    let inflight = !in_flight and nextflight = !next_flight in
    let had_traffic = !traffic in
    traffic := false;
    for u = 0 to n - 1 do
      if Array.unsafe_get crash u > r then begin
        let inbox =
          if not had_traffic then []
          else begin
            let lo = Array.unsafe_get offsets u in
            let hi = Array.unsafe_get offsets (u + 1) in
            if loss = 0.0 then begin
              (* Build front-to-back order by walking neighbours
                 backwards. *)
              let acc = ref [] in
              for i = hi - 1 downto lo do
                let v = Array.unsafe_get targets i in
                match Array.unsafe_get inflight v with
                | [] -> ()
                | msgs -> acc := deliver v msgs !acc
              done;
              !acc
            end
            else begin
              (* Loss draws must happen in ascending neighbour order (the
                 reference order), so flag deliveries forwards first. *)
              for i = lo to hi - 1 do
                let v = Array.unsafe_get targets i in
                flags.(i - lo) <-
                  (match Array.unsafe_get inflight v with
                  | [] -> false
                  | _ -> Prng.float loss_rng 1.0 >= loss)
              done;
              let acc = ref [] in
              for i = hi - 1 downto lo do
                if flags.(i - lo) then
                  acc :=
                    deliver (Array.unsafe_get targets i) inflight.(Array.unsafe_get targets i) !acc
              done;
              !acc
            end
          end
        in
        let state', out = proto.step ~round:r ~me:u ~state:states.(u) ~inbox in
        states.(u) <- state';
        nextflight.(u) <- out;
        (match observer with Some f -> f ~round:r ~node:u out | None -> ());
        (* An empty broadcast charges 0 bits and no message — skip the
           fold and the metrics write entirely. *)
        (match out with
        | [] -> ()
        | _ ->
          traffic := true;
          let bits = sum_bits proto.msg_bits 0 out in
          Metrics.charge metrics ~node:u ~bits;
          (match obs with
          | Some o -> Obs.on_broadcast o ~round:r ~node:u ~msgs:(List.length out) ~bits
          | None -> ()))
      end
      else nextflight.(u) <- []
    done;
    (* Every slot of [nextflight] was written above, so swapping the two
       arrays replaces the reference's blit + fill without copying. *)
    in_flight := nextflight;
    next_flight := inflight;
    if proto.root_done states.(Graph.root) then halted := true;
    incr round
  done;
  (states, metrics)
