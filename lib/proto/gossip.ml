module Graph = Ftagg_graph.Graph
module Engine = Ftagg_sim.Engine
module Metrics = Ftagg_sim.Metrics

let value_bits = 32

type state = {
  mutable s : float;
  mutable w : float;
  degree : int;  (* static degree; a real node learns it during discovery *)
}

type msg = Share of { s : float; w : float }

let push_sum_protocol ~graph ~inputs =
  let n = Graph.n graph in
  if Array.length inputs <> n then invalid_arg "Gossip.run: wrong inputs length";
  {
    Engine.name = "push-sum";
    init =
      (fun u ~rng:_ ->
        {
          s = float_of_int inputs.(u);
          w = (if u = Graph.root then 1.0 else 0.0);
          degree = Graph.degree graph u;
        });
    step =
      (fun ~round:_ ~me:_ ~state ~inbox ->
        List.iter
          (fun (_, Share { s; w }) ->
            state.s <- state.s +. s;
            state.w <- state.w +. w)
          inbox;
        (* Split the current mass over self + neighbours and broadcast
           one share; keep our own share. *)
        let parts = float_of_int (state.degree + 1) in
        let share_s = state.s /. parts and share_w = state.w /. parts in
        state.s <- share_s;
        state.w <- share_w;
        (state, [ Share { s = share_s; w = share_w } ]));
    msg_bits = (fun (Share _) -> 5 + (2 * value_bits));
    root_done = (fun _ -> false);
  }

(* The one engine run both entry points share: [run_legacy] must stay
   byte-identical to the pre-backend behaviour, so the unified [run] is
   packaging only. *)
let core ?loss ?obs ~graph ~failures ~inputs ~rounds ~seed () =
  Engine.run ?obs ?loss ~graph ~failures ~max_rounds:rounds ~seed
    (push_sum_protocol ~graph ~inputs)

let estimate_of_root (root : state) = if root.w > 0.0 then root.s /. root.w else Float.nan

let rel_error ~truth estimate =
  if truth = 0.0 then Float.abs estimate else Float.abs (estimate -. truth) /. truth

let package ~graph ~failures ~params ~states ~metrics =
  let root = states.(Graph.root) in
  let estimate = estimate_of_root root in
  let truth = float_of_int (Array.fold_left ( + ) 0 params.Params.inputs) in
  let relative_error = rel_error ~truth estimate in
  let correct =
    Float.is_finite estimate
    && Float.abs estimate < 1e15
    && Checker.result_correct ~graph ~failures ~end_round:(Metrics.rounds metrics) ~params
         (int_of_float (Float.round estimate))
  in
  {
    Backend.result = Backend.Estimate { value = estimate; relative_error };
    common = Backend.mk_common ~d:params.Params.d ~metrics ~correct;
    evidence =
      [
        ("estimate_root", Printf.sprintf "%.6g" estimate);
        ("w_root", Printf.sprintf "%.6g" root.w);
      ];
  }

let run ?loss ?obs ~graph ~failures ~params ~rounds ~seed () =
  let states, metrics =
    core ?loss ?obs ~graph ~failures ~inputs:params.Params.inputs ~rounds ~seed ()
  in
  package ~graph ~failures ~params ~states ~metrics

type legacy = {
  estimate : float;
  relative_error : float;
  cc : int;
  rounds : int;
}

let run_legacy ~graph ~failures ~inputs ~rounds ~seed =
  let states, metrics = core ~graph ~failures ~inputs ~rounds ~seed () in
  let root = states.(Graph.root) in
  let estimate = estimate_of_root root in
  let truth = float_of_int (Array.fold_left ( + ) 0 inputs) in
  {
    estimate;
    relative_error = rel_error ~truth estimate;
    cc = Metrics.cc metrics;
    rounds = Metrics.rounds metrics;
  }

let backend : Backend.t =
  (module struct
    type nonrec state = state
    type nonrec msg = msg

    let name = "pushsum"
    let exact = false

    let guarantee =
      "approximate; mass held by a crashed node is destroyed, so the estimate keeps a \
       permanent error after crashes"

    let protocol ~graph ~params ~b:_ ~f:_ =
      push_sum_protocol ~graph ~inputs:params.Params.inputs

    let max_rounds ~params ~b ~f:_ = b * params.Params.d

    let finish ~graph ~failures ~params ~b:_ ~f:_ ~states ~metrics =
      package ~graph ~failures ~params ~states ~metrics

    let watch ?bit_cap ~params:_ ~graph:_ () =
      Option.map (fun cap -> Backend.bits_watch ~bit_cap:cap) bit_cap
  end)
