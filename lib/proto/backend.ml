module Engine = Ftagg_sim.Engine
module Metrics = Ftagg_sim.Metrics
module Failure = Ftagg_sim.Failure
module Graph = Ftagg_graph.Graph

type common = {
  metrics : Metrics.t;
  rounds : int;
  flooding_rounds : int;
  correct : bool;
}

let mk_common ~d ~metrics ~correct =
  let rounds = Metrics.rounds metrics in
  { metrics; rounds; flooding_rounds = (rounds + d - 1) / d; correct }

type result =
  | Exact of Agg.result
  | Estimate of { value : float; relative_error : float }

type outcome = {
  result : result;
  common : common;
  evidence : (string * string) list;
}

let value_exn o =
  match o.result with
  | Exact (Agg.Value v) -> v
  | Exact Agg.Aborted -> invalid_arg "Backend.value_exn: protocol aborted"
  | Estimate _ -> invalid_arg "Backend.value_exn: approximate outcome"

let estimate_of o =
  match o.result with
  | Exact (Agg.Value v) -> float_of_int v
  | Exact Agg.Aborted -> invalid_arg "Backend.estimate_of: protocol aborted"
  | Estimate { value; _ } -> value

let relative_error o ~truth =
  let v = estimate_of o in
  if truth = 0.0 then Float.abs v else Float.abs (v -. truth) /. Float.abs truth

module type S = sig
  type state
  type msg

  val name : string
  val exact : bool
  val guarantee : string

  val protocol :
    graph:Graph.t -> params:Params.t -> b:int -> f:int -> (state, msg) Engine.protocol

  val max_rounds : params:Params.t -> b:int -> f:int -> int

  val finish :
    graph:Graph.t ->
    failures:Failure.t ->
    params:Params.t ->
    b:int ->
    f:int ->
    states:state array ->
    metrics:Metrics.t ->
    outcome

  val watch :
    ?bit_cap:int -> params:Params.t -> graph:Graph.t -> unit -> state Engine.watch option
end

type t = (module S)

let name (module B : S) = B.name
let exact (module B : S) = B.exact
let guarantee (module B : S) = B.guarantee

(* Protocol-agnostic per-node bit accounting — any backend's state type
   fits, so a planted cap plants the same invariant everywhere. *)
let bits_watch ~bit_cap view =
  let metrics = view.Engine.v_metrics in
  let n = Array.length view.Engine.v_states in
  let rec go u =
    if u >= n then None
    else begin
      let b = Metrics.bits_sent metrics u in
      if b > bit_cap then
        Some
          ( "bit_budget",
            Printf.sprintf "node %d has sent %d bits, over the %d-bit cap" u b bit_cap )
      else go (u + 1)
    end
  in
  go 0

let exec ?loss ?obs ~backend ~graph ~failures ~params ~b ~f ~seed () =
  let module B = (val backend : S) in
  let proto = B.protocol ~graph ~params ~b ~f in
  let states, metrics =
    Engine.run ?obs ?loss ~graph ~failures ~max_rounds:(B.max_rounds ~params ~b ~f) ~seed
      proto
  in
  B.finish ~graph ~failures ~params ~b ~f ~states ~metrics

type chaos = {
  c_outcome : outcome;
  c_schedule : Failure.t;
  c_violation : Engine.violation option;
  c_completed : bool;
}

let exec_chaos ?obs ?faults ?online ?bit_cap ~backend ~graph ~failures ~params ~b ~f ~seed ()
    =
  let module B = (val backend : S) in
  let proto = B.protocol ~graph ~params ~b ~f in
  let max_rounds = B.max_rounds ~params ~b ~f in
  let watch = B.watch ?bit_cap ~params ~graph () in
  let res =
    Engine.run_chaos ?obs ?faults ?online ?watch ~graph ~failures ~max_rounds ~seed proto
  in
  let metrics = res.Engine.c_metrics in
  let materialized = res.Engine.c_schedule in
  let outcome =
    B.finish ~graph ~failures:materialized ~params ~b ~f ~states:res.Engine.c_states ~metrics
  in
  {
    c_outcome = outcome;
    c_schedule = materialized;
    c_violation = res.Engine.c_violation;
    c_completed = res.Engine.c_violation = None;
  }
