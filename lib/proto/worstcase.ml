module Graph = Ftagg_graph.Graph
module Gen = Ftagg_graph.Gen
module Failure = Ftagg_sim.Failure
module Metrics = Ftagg_sim.Metrics
module Prng = Ftagg_util.Prng

type adversary =
  | Adv_none
  | Adv_random of int
  | Adv_burst of int
  | Adv_chain
  | Adv_high_degree
  | Adv_per_interval of int

let adversary_name = function
  | Adv_none -> "none"
  | Adv_random s -> Printf.sprintf "random(%d)" s
  | Adv_burst s -> Printf.sprintf "burst(%d)" s
  | Adv_chain -> "chain"
  | Adv_high_degree -> "high-degree"
  | Adv_per_interval s -> Printf.sprintf "per-interval(%d)" s

type cell = {
  family : string;
  adversary : string;
  cc : int;
  flooding_rounds : int;
  correct : bool;
}

type landscape = {
  cells : cell list;
  worst : cell;
}

let default_adversaries ~seed =
  [
    Adv_none;
    Adv_random seed;
    Adv_random (seed + 1);
    Adv_burst seed;
    Adv_chain;
    Adv_high_degree;
    Adv_per_interval seed;
  ]

let schedule_of graph ~params ~f ~b adversary =
  let n = Graph.n graph in
  let window = b * params.Params.d in
  match adversary with
  | Adv_none -> Failure.none ~n
  | Adv_random s -> Failure.random graph ~rng:(Prng.create s) ~budget:f ~max_round:window
  | Adv_burst s -> Failure.burst graph ~rng:(Prng.create s) ~budget:f ~round:(max 1 (window / 3))
  | Adv_chain ->
    Failure.chain ~n ~first:1
      ~len:(min (max 1 (f / 2)) (n - 2))
      ~round:(max 1 ((2 * Params.cd params) + 5))
  | Adv_high_degree -> Failure.high_degree graph ~budget:f ~round:(max 1 (window / 4))
  | Adv_per_interval s ->
    Failure.per_interval graph ~rng:(Prng.create s) ~budget:f
      ~interval_len:(19 * Params.cd params)
      ~intervals:(max 1 (Tradeoff.intervals params ~b))

let sweep_tradeoff ~n ~f ~b ~seed () =
  let cells =
    List.concat_map
      (fun (family, fam) ->
        let graph = Gen.build fam ~n ~seed in
        let inputs = Array.init n (fun i -> (i mod 7) + 1) in
        let params = Params.make ~c:2 ~graph ~inputs () in
        List.map
          (fun adversary ->
            let failures = schedule_of graph ~params ~f ~b adversary in
            let o = Run.tradeoff ~graph ~failures ~params ~b ~f ~seed () in
            {
              family;
              adversary = adversary_name adversary;
              cc = Metrics.cc o.Run.common.Run.metrics;
              flooding_rounds = o.Run.common.Run.flooding_rounds;
              correct = o.Run.common.Run.correct;
            })
          (default_adversaries ~seed))
      (Gen.all_families ~seed)
  in
  let worst =
    match cells with
    | [] -> invalid_arg "Worstcase.sweep_tradeoff: empty sweep"
    | first :: rest -> List.fold_left (fun acc c -> if c.cc > acc.cc then c else acc) first rest
  in
  { cells; worst }
