module Graph = Ftagg_graph.Graph
module Path = Ftagg_graph.Path
module Failure = Ftagg_sim.Failure

let correctness_sets ~graph ~failures ~end_round ~inputs =
  let crashed = Failure.crashed_by failures ~round:end_round in
  let surviving = Graph.remove_nodes graph crashed in
  let connected = Path.reachable_from_root surviving in
  let in_base = Array.make (Graph.n graph) false in
  List.iter (fun u -> in_base.(u) <- true) connected;
  let base = ref [] and optional = ref [] in
  for u = Graph.n graph - 1 downto 0 do
    if in_base.(u) then base := inputs.(u) :: !base else optional := inputs.(u) :: !optional
  done;
  (!base, !optional)

let result_correct ~graph ~failures ~end_round ~params result =
  let base, optional =
    correctness_sets ~graph ~failures ~end_round ~inputs:params.Params.inputs
  in
  Ftagg_caaf.Caaf.is_correct params.Params.caaf ~base ~optional result

let model_edge_failures ~graph ~failures ~round =
  let crashed = Failure.crashed_by failures ~round in
  let surviving = Graph.remove_nodes graph crashed in
  let connected = Path.reachable_from_root surviving in
  let ok = Array.make (Graph.n graph) false in
  List.iter (fun u -> ok.(u) <- true) connected;
  Graph.fold_edges (fun u v acc -> if ok.(u) && ok.(v) then acc else acc + 1) graph 0

type agg_trace = {
  agg_nodes : Agg.node array;
  agg_start : int;
  failures : Failure.t;
  params : Params.t;
  graph : Graph.t;
}

(* A node at level l receives its first tree_construct in phase round 2l
   (the phase-1 recurrence: ack in the receipt round, tree_construct one
   round later) and takes its aggregation action in phase round
   [3cd + 2 − l]; crashing strictly between the ack broadcast and the
   action is the paper's critical failure. *)
let critical_failures tr =
  let cd = Params.cd tr.params in
  let acc = ref [] in
  Array.iteri
    (fun u node ->
      if u <> Graph.root && Agg.activated node then begin
        let l = Agg.level node in
        let r = Failure.crash_round tr.failures u in
        let ack_global = tr.agg_start + (2 * l) - 1 in
        let action_global = tr.agg_start + (3 * cd) + 1 - l in
        if r > ack_global && r <= action_global then acc := u :: !acc
      end)
    tr.agg_nodes;
  !acc

(* "Failed" in the model's sense at a given round: crashed, or disconnected
   from the root by others' crashes (§2). *)
let failed_at tr ~round =
  let crashed = Failure.crashed_by tr.failures ~round in
  let surviving = Graph.remove_nodes tr.graph crashed in
  let connected = Path.reachable_from_root surviving in
  let ok = Array.make (Graph.n tr.graph) false in
  List.iter (fun u -> ok.(u) <- true) connected;
  fun u -> not ok.(u)

(* Global round of a node's aggregation action: phase 2 starts at
   agg_start + 2cd + 1; a level-l node acts in phase round cd − l + 1. *)
let action_global tr u =
  let cd = Params.cd tr.params in
  tr.agg_start + (2 * cd) + 1 + (cd - Agg.level tr.agg_nodes.(u) + 1) - 1

let included_inputs tr ~source =
  let rec collect u acc =
    let acc = u :: acc in
    List.fold_left
      (fun acc c ->
        if Failure.crash_round tr.failures c > action_global tr c then collect c acc
        else acc)
      acc
      (Agg.children tr.agg_nodes.(u))
  in
  List.sort compare (collect source [])

type representative_report = {
  disjoint : bool;
  covers_alive : bool;
  psums_match : bool;
}

let representative_set tr ~selected ~end_round =
  let n = Array.length tr.agg_nodes in
  let counted = Array.make n 0 in
  let caaf = tr.params.Params.caaf in
  let psums_match = ref true in
  List.iter
    (fun s ->
      let included = included_inputs tr ~source:s in
      List.iter (fun u -> counted.(u) <- counted.(u) + 1) included;
      let expect =
        Ftagg_caaf.Caaf.aggregate caaf
          (List.map (fun u -> tr.params.Params.inputs.(u)) included)
      in
      if expect <> Agg.psum tr.agg_nodes.(s) then psums_match := false)
    selected;
  let disjoint = Array.for_all (fun c -> c <= 1) counted in
  let failed_end = failed_at tr ~round:end_round in
  let covers_alive = ref true in
  for u = 0 to n - 1 do
    if (not (failed_end u)) && counted.(u) = 0 then covers_alive := false
  done;
  { disjoint; covers_alive = !covers_alive; psums_match = !psums_match }

let has_lfc tr ~veri_end =
  let n = Array.length tr.agg_nodes in
  let agg_end = tr.agg_start + Agg.duration tr.params - 1 in
  let failed_agg_end = failed_at tr ~round:agg_end in
  let failed_veri_end = failed_at tr ~round:veri_end in
  let failed u = failed_agg_end u in
  let alive_at_veri_end u = not (failed_veri_end u) in
  let visible = Hashtbl.create 8 in
  List.iter
    (fun v -> Hashtbl.replace visible v ())
    (Agg.crit_seen tr.agg_nodes.(Graph.root));
  let activated u = Agg.activated tr.agg_nodes.(u) in
  let parent u = Agg.parent tr.agg_nodes.(u) in
  let children = Array.make n [] in
  for u = 0 to n - 1 do
    if u <> Graph.root && activated u then begin
      let p = parent u in
      if p >= 0 then children.(p) <- u :: children.(p)
    end
  done;
  (* Longest all-failed chain ending at [u], cut at fragment boundaries
     (the tree edge above a root-visible critical failure is removed). *)
  let len = Array.make n (-1) in
  let rec chain_len u =
    if len.(u) >= 0 then len.(u)
    else begin
      let above =
        if Hashtbl.mem visible u then 0
        else
          let p = parent u in
          if p >= 0 && p <> Graph.root && failed p then chain_len p else 0
      in
      len.(u) <- 1 + above;
      len.(u)
    end
  in
  (* Whether [u] has a strict local descendant alive at [veri_end]. *)
  let rec live_below u =
    List.exists
      (fun w ->
        (not (Hashtbl.mem visible w))
        && (alive_at_veri_end w || live_below w))
      children.(u)
  in
  let threshold = max tr.params.Params.t 1 in
  let exists = ref false in
  for u = 0 to n - 1 do
    if
      (not !exists)
      && u <> Graph.root
      && activated u
      && failed u
      && chain_len u >= threshold
      && live_below u
    then exists := true
  done;
  !exists
