(** Broadcast push-sum gossip — the approximate-aggregation baseline the
    paper's related work contrasts against (Kempe, Dobra & Gehrke [8]).

    Each node holds a mass pair [(s, w)], initialised to [(input, 0)]
    ([w = 1] at the root).  Every round a node splits its mass evenly
    over itself and its neighbours and broadcasts the share; receivers
    accumulate.  Mass conservation gives [Σs = ΣInputs] and [Σw = 1]
    forever on a failure-free run, and every local ratio [s/w] converges
    to the true SUM.  The root reads off [s/w] after the round budget.

    Under crashes the mass held by (or in flight to) a dead node is
    destroyed, so the estimate degrades gracefully instead of staying in
    the correctness interval — exactly the zero-error-vs-approximate gap
    the paper's problem statement draws (§1), and the gap
    {!Flow_updating} closes by routing flows instead of moving mass.
    The benchmark harness quantifies both (experiments E12, E20).

    Message accounting: a share carries two fixed-point values quantised
    to {!value_bits} bits each (plus tag and sender id), mirroring how a
    real implementation would ship them. *)

val value_bits : int
(** Fixed-point width per transmitted mass value (32). *)

val run :
  ?loss:float ->
  ?obs:Ftagg_obs.Obs.t ->
  graph:Ftagg_graph.Graph.t ->
  failures:Ftagg_sim.Failure.t ->
  params:Params.t ->
  rounds:int ->
  seed:int ->
  unit ->
  Backend.outcome
(** Run broadcast push-sum for [rounds] rounds on [params.inputs] and
    package the root's [s/w] as a unified {!Backend.outcome} with
    [Estimate].  [common.correct] checks the rounded estimate against
    the {!Checker} correctness interval (an untouched-root run that has
    not mixed yet is simply incorrect, not an error).  Evidence:
    [estimate_root], [w_root].

    Same engine run as {!run_legacy} — identical states, metrics and
    PRNG streams on equal seeds (pinned in [test/test_backend.ml]). *)

(** {2 Deprecated pre-backend entry point}

    The bespoke outcome record, kept one release.  Migrate
    [Gossip.run_legacy ~inputs …] → [Gossip.run ~params …] and read the
    estimate from the outcome's [Backend.Estimate]. *)

type legacy = {
  estimate : float;  (** the root's [s/w] (NaN if the root's [w] is 0) *)
  relative_error : float;  (** |estimate − true sum| / true sum *)
  cc : int;  (** max bits broadcast by a single node *)
  rounds : int;
}

val run_legacy :
  graph:Ftagg_graph.Graph.t ->
  failures:Ftagg_sim.Failure.t ->
  inputs:int array ->
  rounds:int ->
  seed:int ->
  legacy
[@@ocaml.deprecated "use Gossip.run (unified Backend.outcome)"]

val backend : Backend.t
(** Push-sum as a backend ([Backend.name] = ["pushsum"]): round budget
    [b × d] (the TC budget Algorithm 1 gets), bit-cap watchdog via
    {!Backend.bits_watch} when planted. *)
