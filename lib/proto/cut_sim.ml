module Graph = Ftagg_graph.Graph
module Engine = Ftagg_sim.Engine
module Metrics = Ftagg_sim.Metrics

type cut = {
  alice : bool array;
  boundary_alice : int list;
  boundary_bob : int list;
  cut_edges : int;
}

let partition graph ~alice:side =
  let n = Graph.n graph in
  let alice = Array.init n side in
  if not alice.(Graph.root) then invalid_arg "Cut_sim.partition: root must be on Alice's side";
  let boundary_alice = ref [] and boundary_bob = ref [] and cut_edges = ref 0 in
  Graph.iter_edges graph (fun u v ->
      if alice.(u) <> alice.(v) then begin
        incr cut_edges;
        let a, b = if alice.(u) then (u, v) else (v, u) in
        if not (List.mem a !boundary_alice) then boundary_alice := a :: !boundary_alice;
        if not (List.mem b !boundary_bob) then boundary_bob := b :: !boundary_bob
      end);
  {
    alice;
    boundary_alice = List.sort compare !boundary_alice;
    boundary_bob = List.sort compare !boundary_bob;
    cut_edges = !cut_edges;
  }

let halves graph =
  let n = Graph.n graph in
  partition graph ~alice:(fun u -> u < (n + 1) / 2)

type transcript = {
  alice_to_bob_bits : int;
  bob_to_alice_bits : int;
  total_bits : int;
  protocol_cc : int;
}

let sum_transcript ~graph ~failures ~params ~b ~f ~seed ~cut =
  let a2b = ref 0 and b2a = ref 0 in
  let is_boundary_alice = Array.make (Graph.n graph) false in
  let is_boundary_bob = Array.make (Graph.n graph) false in
  List.iter (fun u -> is_boundary_alice.(u) <- true) cut.boundary_alice;
  List.iter (fun u -> is_boundary_bob.(u) <- true) cut.boundary_bob;
  let observer ~round:_ ~node out =
    let bits =
      List.fold_left (fun acc m -> acc + Message.msg_bits params m) 0 out
    in
    if is_boundary_alice.(node) then a2b := !a2b + bits
    else if is_boundary_bob.(node) then b2a := !b2a + bits
  in
  let proto =
    {
      Engine.name = "tradeoff-cut";
      init = (fun u ~rng -> Tradeoff.create params ~b ~f ~me:u ~rng);
      step =
        (fun ~round ~me:_ ~state ~inbox ->
          let out = Tradeoff.step state ~round ~inbox in
          (state, out));
      msg_bits = Message.msg_bits params;
      root_done = Tradeoff.root_done;
    }
  in
  let _, metrics =
    Engine.run ~observer ~graph ~failures ~max_rounds:(Tradeoff.max_rounds params ~b) ~seed
      proto
  in
  {
    alice_to_bob_bits = !a2b;
    bob_to_alice_bits = !b2a;
    total_bits = !a2b + !b2a;
    protocol_cc = Metrics.cc metrics;
  }
