(** The paper's flooding primitive.

    A node {e floods} a message by broadcasting it; every other node
    forwards it on first receipt and drops duplicates (same content ⇒ not
    forwarded again).  Each protocol execution keeps one {!t} per node: a
    seen-set plus an outbox of bodies to forward in the current round. *)

type 'body t

val create : unit -> 'body t

val receive : 'body t -> 'body -> bool
(** Process an incoming flooded body.  Returns [true] (and queues the body
    for forwarding) exactly on first receipt. *)

val originate : 'body t -> 'body -> bool
(** Start a flood from this node.  Returns [false] (and does nothing) if
    an identical body was already seen — matching the dedup rule. *)

val seen : 'body t -> 'body -> bool

val pending : 'body t -> bool
(** [true] iff the outbox holds bodies queued for forwarding. *)

val drain : 'body t -> 'body list
(** Bodies to broadcast this round (in queue order); empties the outbox. *)

val fold_seen : ('body -> 'acc -> 'acc) -> 'body t -> 'acc -> 'acc
