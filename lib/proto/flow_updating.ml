module Graph = Ftagg_graph.Graph
module Engine = Ftagg_sim.Engine
module Metrics = Ftagg_sim.Metrics
module Failure = Ftagg_sim.Failure

type mode =
  | Sum
  | Avg

let value_bits = 32

type state = {
  me : int;
  input : float;
  neighbors : int array;
  flows : float array;  (* F_me(j), aligned with [neighbors] *)
  alive : bool array;  (* neighbour believed alive, aligned *)
  mutable estimate : float;
  mutable dead : int;  (* slots declared dead (flows reset) *)
}

type msg = Flow of { dst : int; flow : float; est : float }

let node_estimate st = st.estimate
let node_net_flow st = Array.fold_left ( +. ) 0.0 st.flows
let dead_links st = st.dead

let broadcast st =
  let out = ref [] in
  for k = Array.length st.neighbors - 1 downto 0 do
    if st.alive.(k) then
      out := Flow { dst = st.neighbors.(k); flow = st.flows.(k); est = st.estimate } :: !out
  done;
  !out

let protocol ?(mode = Sum) ~graph ~params () =
  ignore mode;
  let msg_cost = 5 + Params.id_bits params + (2 * value_bits) in
  {
    Engine.name = "flow-updating";
    init =
      (fun u ~rng:_ ->
        let neighbors = Array.of_list (Graph.neighbors graph u) in
        let deg = Array.length neighbors in
        {
          me = u;
          input = float_of_int params.Params.inputs.(u);
          neighbors;
          flows = Array.make deg 0.0;
          alive = Array.make deg true;
          estimate = float_of_int params.Params.inputs.(u);
          dead = 0;
        });
    step =
      (fun ~round ~me ~state:st ~inbox ->
        if Ftagg_obs.Span.active () then
          Ftagg_obs.Span.phase ~node:me
            (if round = 1 then "flowupdating/seed" else "flowupdating/iterate");
        if round = 1 then (st, broadcast st)
        else begin
          let deg = Array.length st.neighbors in
          let heard = Array.make deg false in
          let recv_flow = Array.make deg 0.0 in
          let recv_est = Array.make deg 0.0 in
          let index_of sender =
            let rec go k = if k >= deg then -1 else if st.neighbors.(k) = sender then k else go (k + 1) in
            go 0
          in
          List.iter
            (fun (sender, Flow { dst; flow; est }) ->
              if dst = st.me then begin
                let k = index_of sender in
                if k >= 0 then begin
                  (* A silent neighbour was declared dead; a late (delayed)
                     message revives it.  Duplicates just overwrite. *)
                  if not st.alive.(k) then begin
                    st.alive.(k) <- true;
                    st.dead <- st.dead - 1
                  end;
                  heard.(k) <- true;
                  recv_flow.(k) <- flow;
                  recv_est.(k) <- est
                end
              end)
            inbox;
          (* Crash recovery: a believed-alive neighbour that went silent is
             dead; resetting its flow returns the routed mass to our side. *)
          for k = 0 to deg - 1 do
            if st.alive.(k) && not heard.(k) then begin
              st.alive.(k) <- false;
              st.flows.(k) <- 0.0;
              st.dead <- st.dead + 1
            end
          done;
          (* Adopt the neighbours' view of each shared flow. *)
          for k = 0 to deg - 1 do
            if heard.(k) then st.flows.(k) <- -.recv_flow.(k)
          done;
          let own = st.input -. Array.fold_left ( +. ) 0.0 st.flows in
          let live = ref 0 and est_sum = ref 0.0 in
          for k = 0 to deg - 1 do
            if heard.(k) then begin
              incr live;
              est_sum := !est_sum +. recv_est.(k)
            end
          done;
          let a = (own +. !est_sum) /. float_of_int (!live + 1) in
          for k = 0 to deg - 1 do
            if heard.(k) then st.flows.(k) <- st.flows.(k) +. (a -. recv_est.(k))
          done;
          st.estimate <- a;
          (st, broadcast st)
        end);
    msg_bits = (fun (Flow _) -> msg_cost);
    root_done = (fun _ -> false);
  }

let run_states ?mode ~graph ~failures ~params ~rounds ~seed () =
  Engine.run ~graph ~failures ~max_rounds:rounds ~seed (protocol ?mode ~graph ~params ())

(* Σ over intact edges of |F_u(v) + F_v(u)| — exactly 0 at the
   antisymmetric fixed point, so it doubles as a convergence witness. *)
let flow_skew ~failures states =
  let skew = ref 0.0 in
  let n = Array.length states in
  for u = 0 to n - 1 do
    if Failure.crash_round failures u = Failure.never then
      let su = states.(u) in
      Array.iteri
        (fun k v ->
          if v > u && Failure.crash_round failures v = Failure.never then begin
            let sv = states.(v) in
            let rec find i =
              if i >= Array.length sv.neighbors then 0.0
              else if sv.neighbors.(i) = u then sv.flows.(i)
              else find (i + 1)
            in
            skew := !skew +. Float.abs (su.flows.(k) +. find 0)
          end)
        su.neighbors
  done;
  !skew

let finish ~mode ~graph ~failures ~params ~states ~metrics =
  let root = states.(Graph.root) in
  let n = float_of_int params.Params.n in
  let avg = root.estimate in
  let sum_est = avg *. n in
  let value = match mode with Sum -> sum_est | Avg -> avg in
  let truth_sum = float_of_int (Array.fold_left ( + ) 0 params.Params.inputs) in
  let truth = match mode with Sum -> truth_sum | Avg -> truth_sum /. n in
  let relative_error =
    if truth = 0.0 then Float.abs value else Float.abs (value -. truth) /. Float.abs truth
  in
  let correct =
    Float.is_finite sum_est
    && Float.abs sum_est < 1e15
    && Checker.result_correct ~graph ~failures ~end_round:(Metrics.rounds metrics) ~params
         (int_of_float (Float.round sum_est))
  in
  let dead = Array.fold_left (fun acc st -> acc + st.dead) 0 states in
  {
    Backend.result = Backend.Estimate { value; relative_error };
    common = Backend.mk_common ~d:params.Params.d ~metrics ~correct;
    evidence =
      [
        ("estimate_root", Printf.sprintf "%.6g" value);
        ("dead_links", string_of_int dead);
        ("flow_skew", Printf.sprintf "%.6g" (flow_skew ~failures states));
      ];
  }

let run ?(mode = Sum) ?loss ?obs ~graph ~failures ~params ~rounds ~seed () =
  let states, metrics =
    Engine.run ?obs ?loss ~graph ~failures ~max_rounds:rounds ~seed
      (protocol ~mode ~graph ~params ())
  in
  finish ~mode ~graph ~failures ~params ~states ~metrics

let finite_watch (view : state Engine.view) =
  let states = view.Engine.v_states in
  let n = Array.length states in
  let rec go u =
    if u >= n then None
    else if not (Float.is_finite states.(u).estimate) then
      Some
        ( "flow_estimate_finite",
          Printf.sprintf "node %d's estimate is %h" u states.(u).estimate )
    else go (u + 1)
  in
  go 0

let make_backend bname mode : Backend.t =
  (module struct
    type nonrec state = state
    type nonrec msg = msg

    let name = bname
    let exact = false

    let guarantee =
      "approximate; mass-conserving: crash-reset flows return routed mass, estimates \
       re-converge to the survivors' average"

    let protocol ~graph ~params ~b:_ ~f:_ = protocol ~mode ~graph ~params ()
    let max_rounds ~params ~b ~f:_ = b * params.Params.d

    let finish ~graph ~failures ~params ~b:_ ~f:_ ~states ~metrics =
      finish ~mode ~graph ~failures ~params ~states ~metrics

    let watch ?bit_cap ~params:_ ~graph:_ () =
      Some
        (fun view ->
          match bit_cap with
          | Some cap -> (
            match Backend.bits_watch ~bit_cap:cap view with
            | Some v -> Some v
            | None -> finite_watch view)
          | None -> finite_watch view)
  end)

let backend = make_backend "flowupdating" Sum
let avg_backend = make_backend "flowupdating-avg" Avg
