(* Phase layout in execution-relative rounds:
     failed-parent detection : 1      .. 2cd+1
     failed-child  detection : 2cd+2  .. 4cd+2
     LFC detection           : 4cd+3  .. 5cd+3   (root outputs last round) *)

type node = {
  p : Params.t;
  me : int;
  flood : Message.body Flood.t;
  activated : bool;
  level : int;
  parent : int;
  children : int list;
  ancestors : int array;
  max_level : int;
  crit : (int, unit) Hashtbl.t;  (* critical failures, carried over from AGG *)
  failed_parents : (int, int) Hashtbl.t;  (* claimed node -> max depth claimed *)
  failed_children : (int, unit) Hashtbl.t;
  lfc_tails : (int, unit) Hashtbl.t;
  not_lfc_tails : (int, unit) Hashtbl.t;
  mutable overflow : bool;
  mutable sent_bits : int;
  mutable verdict : bool option;
}

let duration p = (5 * Params.cd p) + 3

let create (p : Params.t) ~me ~from_agg =
  let crit = Hashtbl.create 4 in
  List.iter (fun v -> Hashtbl.replace crit v ()) (Agg.crit_seen from_agg);
  {
    p;
    me;
    flood = Flood.create ();
    activated = Agg.activated from_agg;
    level = Agg.level from_agg;
    parent = Agg.parent from_agg;
    children = Agg.children from_agg;
    ancestors = Agg.ancestors from_agg;
    max_level = Agg.max_level from_agg;
    crit;
    failed_parents = Hashtbl.create 4;
    failed_children = Hashtbl.create 4;
    lfc_tails = Hashtbl.create 4;
    not_lfc_tails = Hashtbl.create 4;
    overflow = false;
    sent_bits = 0;
    verdict = None;
  }

let note_flood node = function
  | Message.Failed_parent { node = v; depth } ->
    let prev = Option.value (Hashtbl.find_opt node.failed_parents v) ~default:min_int in
    Hashtbl.replace node.failed_parents v (max prev depth)
  | Message.Failed_child v -> Hashtbl.replace node.failed_children v ()
  | Message.Lfc_tail v -> Hashtbl.replace node.lfc_tails v ()
  | Message.Not_lfc_tail v -> Hashtbl.replace node.not_lfc_tails v ()
  | Message.Veri_overflow -> node.overflow <- true
  | _ -> ()

let originate node body = if Flood.originate node.flood body then note_flood node body

let ancestor_index node ~bound v =
  let rec go i =
    if i > bound then None
    else if node.ancestors.(i) = v then Some i
    else go (i + 1)
  in
  go 0

let boundary_index node =
  let t2 = 2 * node.p.Params.t in
  let rec go j =
    if j > t2 then None
    else
      let a = node.ancestors.(j) in
      if a = -1 then None
      else if a = Ftagg_graph.Graph.root || Hashtbl.mem node.crit a then Some j
      else go (j + 1)
  in
  go 0

(* LFC determinations by witnesses (Algorithm 3, lines 20–31). *)
let make_determinations node =
  let t = node.p.Params.t in
  let t2 = 2 * t in
  let j_opt = boundary_index node in
  let j_bound = match j_opt with Some j -> j | None -> t2 in
  let claims = Hashtbl.fold (fun v _ acc -> v :: acc) node.failed_parents [] in
  List.iter
    (fun v ->
      match ancestor_index node ~bound:t2 v with
      | Some i when i <= t && i <= j_bound ->
        (* I am a witness of [v]: find the nearest failed child / fragment
           boundary at or above it. *)
        let k_opt =
          let rec scan k =
            if k > t2 then None
            else
              let a = node.ancestors.(k) in
              if a = -1 then None
              else if
                Hashtbl.mem node.failed_children a
                || a = Ftagg_graph.Graph.root
                || Hashtbl.mem node.crit a
              then Some k
              else scan (k + 1)
          in
          scan i
        in
        let is_tail = match k_opt with None -> true | Some k -> k - i + 1 >= t in
        originate node (if is_tail then Message.Lfc_tail v else Message.Not_lfc_tail v)
      | _ -> ())
    claims

let compute_verdict node =
  if node.overflow then false
  else if Hashtbl.length node.lfc_tails > 0 then false
  else
    not
      (Hashtbl.fold
         (fun v depth bad ->
           bad
           || (depth >= node.p.Params.t && not (Hashtbl.mem node.not_lfc_tails v)))
         node.failed_parents false)

(* Telemetry phase marker; range-based for the same reason as
   [Agg.span_phase] (Pair hands us execution-relative rounds). *)
let span_phase node ~rr ~cd =
  if Ftagg_obs.Span.active () then begin
    let name =
      if rr <= (2 * cd) + 1 then "veri/failed_parent"
      else if rr <= (4 * cd) + 2 then "veri/challenge"
      else "veri/lfc"
    in
    Ftagg_obs.Span.phase ~node:node.me name
  end

let step node ~rr ~inbox =
  let p = node.p in
  let cd = Params.cd p in
  let is_root = node.me = Ftagg_graph.Graph.root in
  span_phase node ~rr ~cd;
  if node.overflow then begin
    List.iter
      (fun (_, body) ->
        if body = Message.Veri_overflow then ignore (Flood.receive node.flood body))
      inbox;
    let out = List.filter (fun b -> b = Message.Veri_overflow) (Flood.drain node.flood) in
    List.iter (fun b -> node.sent_bits <- node.sent_bits + Message.bits p b) out;
    if is_root && rr = duration p then node.verdict <- Some false;
    out
  end
  else begin
    (* 1. Flood intake. *)
    List.iter
      (fun (_, body) ->
        if Message.is_flood body then
          if Flood.receive node.flood body then note_flood node body)
      inbox;
    (* 2. Phase actions (only tree participants act; others just forward). *)
    if node.activated then begin
      (* Failed-parent detection. *)
      if is_root && rr = 1 then originate node Message.Detect_failed_parent;
      if (not is_root) && rr = node.level + 1 then begin
        let heard_parent = List.exists (fun (sender, _) -> sender = node.parent) inbox in
        if not heard_parent then
          originate node
            (Message.Failed_parent
               { node = node.parent; depth = node.max_level - node.level + 1 })
      end;
      (* Failed-child detection: everyone beats at phase round cd−level+1. *)
      let fc_action = (2 * cd) + 1 + (cd - node.level + 1) in
      if rr = fc_action then begin
        match node.children with
        | [] -> originate node Message.Detect_failed_child
        | children ->
          List.iter
            (fun v ->
              let heard = List.exists (fun (sender, _) -> sender = v) inbox in
              if not heard then originate node (Message.Failed_child v))
            children
      end;
      (* LFC determination. *)
      if rr = (4 * cd) + 3 then make_determinations node
    end;
    let outgoing = Flood.drain node.flood in
    (* Budget enforcement (§5.1). *)
    let cost = List.fold_left (fun acc b -> acc + Message.bits p b) 0 outgoing in
    let outgoing =
      if node.sent_bits + cost > Params.veri_bit_budget p then begin
        node.overflow <- true;
        ignore (Flood.originate node.flood Message.Veri_overflow);
        ignore (Flood.drain node.flood);
        let only = [ Message.Veri_overflow ] in
        node.sent_bits <-
          node.sent_bits + List.fold_left (fun a b -> a + Message.bits p b) 0 only;
        only
      end
      else begin
        node.sent_bits <- node.sent_bits + cost;
        outgoing
      end
    in
    if is_root && rr = duration p then node.verdict <- Some (compute_verdict node);
    outgoing
  end

let root_verdict node =
  match node.verdict with
  | Some v -> v
  | None -> invalid_arg "Veri.root_verdict: execution not finished"

let overflowed node = node.overflow
