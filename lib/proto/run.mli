(** End-to-end runners: instantiate a protocol on a topology, drive it
    through the engine under a failure schedule, and package the outcome
    together with metrics and ground-truth checks.

    Every entry point returns an outcome record with the same shape: a
    [result : Agg.result] (the root's answer, [Aborted] when the protocol
    gave up), a [common : common] with the run's metrics and checks, and
    protocol-specific evidence fields.

    Protocols are also packaged as first-class {!Backend}s ({!backends}
    is the registry): heterogeneous exact and approximate protocols run
    under one harness via {!exec} / {!exec_chaos}, which is how the CLI's
    [--backend], the chaos campaign and bench E20 dispatch.

    All entry points accept [?loss] (default [0.]): the per-edge delivery
    loss probability forwarded to {!Ftagg_sim.Engine.run}.  Non-zero loss
    leaves the paper's model — see the engine's documentation.

    All entry points also accept [?obs]: a telemetry sink
    ({!Ftagg_obs.Obs}) forwarded to the engine.  Instrumented runs see
    per-phase bit attribution (AGG/VERI/Tradeoff annotate their phases)
    at identical protocol behaviour — telemetry never touches the PRNG
    streams. *)

module Metrics = Ftagg_sim.Metrics
module Backend = Backend

type common = Backend.common = {
  metrics : Metrics.t;
  rounds : int;  (** rounds until the run halted *)
  flooding_rounds : int;  (** [ceil (rounds / d)] *)
  correct : bool;  (** result within the correctness interval (an abort /
                       no-clean-epoch outcome is reported as correct only
                       if the protocol is allowed to give up there) *)
}
(** Re-export of {!Backend.common} — the record every runner and backend
    outcome shares. *)

val value_exn : Agg.result -> int
(** The computed value; raises [Invalid_argument] on [Agg.Aborted]. *)

(** {2 Single AGG / AGG+VERI executions} *)

type pair_outcome = {
  result : Agg.result;  (** = [verdict.Pair.result] *)
  verdict : Pair.verdict;
  trace : Checker.agg_trace;  (** for structural ground truth *)
  veri_end : int;  (** global round of VERI's last round *)
  lfc : bool;  (** ground truth: did the run contain an LFC? *)
  edge_failures : int;
      (** ground truth: the model's edge-failure count at the end of the
          run — edges incident to crashed {e or disconnected} nodes (§2
          counts disconnection as failure) *)
  common : common;
}

val pair :
  ?ablation:Agg.ablation ->
  ?loss:float ->
  ?obs:Ftagg_obs.Obs.t ->
  graph:Ftagg_graph.Graph.t ->
  failures:Ftagg_sim.Failure.t ->
  params:Params.t ->
  seed:int ->
  unit ->
  pair_outcome
(** One AGG+VERI pair starting at round 1.  [common.correct] is [true]
    when AGG aborted (it gave up explicitly) or its value is in the
    correctness interval. *)

type agg_outcome = {
  result : Agg.result;
  trace : Checker.agg_trace;
  common : common;
}

val agg :
  ?ablation:Agg.ablation ->
  ?loss:float ->
  ?obs:Ftagg_obs.Obs.t ->
  graph:Ftagg_graph.Graph.t ->
  failures:Ftagg_sim.Failure.t ->
  params:Params.t ->
  seed:int ->
  unit ->
  agg_outcome

(** {2 Whole-protocol runs} *)

type value_outcome = {
  result : Agg.result;  (** always [Value] — brute force cannot abort *)
  common : common;
}

val brute_force :
  ?loss:float ->
  ?obs:Ftagg_obs.Obs.t ->
  graph:Ftagg_graph.Graph.t ->
  failures:Ftagg_sim.Failure.t ->
  params:Params.t ->
  seed:int ->
  unit ->
  value_outcome

type folklore_outcome = {
  result : Agg.result;  (** [Aborted] on [No_clean_epoch] *)
  f_result : Folklore.result;  (** the protocol-level detail *)
  epochs : int;
  common : common;
}

val folklore :
  ?loss:float ->
  ?obs:Ftagg_obs.Obs.t ->
  graph:Ftagg_graph.Graph.t ->
  failures:Ftagg_sim.Failure.t ->
  params:Params.t ->
  mode:Folklore.mode ->
  seed:int ->
  unit ->
  folklore_outcome
(** [common.correct] for [Naive] mode reports the actual interval check —
    the motivating baseline is {e expected} to fail it under failures. *)

type tradeoff_outcome = {
  result : Agg.result;  (** always [Value] — Algorithm 1 falls back to
                            brute force rather than aborting *)
  how : Tradeoff.how;
  common : common;
}

val tradeoff :
  ?loss:float ->
  ?obs:Ftagg_obs.Obs.t ->
  graph:Ftagg_graph.Graph.t ->
  failures:Ftagg_sim.Failure.t ->
  params:Params.t ->
  b:int ->
  f:int ->
  seed:int ->
  unit ->
  tradeoff_outcome
(** Algorithm 1 with the paper's sampled-interval strategy. *)

val tradeoff_with :
  ?loss:float ->
  ?obs:Ftagg_obs.Obs.t ->
  strategy:Tradeoff.strategy ->
  graph:Ftagg_graph.Graph.t ->
  failures:Ftagg_sim.Failure.t ->
  params:Params.t ->
  b:int ->
  f:int ->
  seed:int ->
  unit ->
  tradeoff_outcome
(** Same, with an explicit interval-selection strategy (the [Sequential]
    derandomized ablation of bench E15). *)

type unknown_f_outcome = {
  result : Agg.result;  (** always [Value] *)
  how : Unknown_f.how;
  common : common;
}

val unknown_f :
  ?loss:float ->
  ?obs:Ftagg_obs.Obs.t ->
  graph:Ftagg_graph.Graph.t ->
  failures:Ftagg_sim.Failure.t ->
  params:Params.t ->
  seed:int ->
  unit ->
  unknown_f_outcome

(** {2 Protocol backends}

    The registry of first-class {!Backend}s, and the generic drivers.
    Exact backends: ["agg"] (one AGG+VERI pair, fixed [Pair.duration]
    rounds), ["flood"] (brute force), ["folklore"] (retry with [f + 1]
    epochs).  Approximate backends: ["pushsum"] ({!Gossip.backend}) and
    ["flowupdating"] / ["flowupdating-avg"] ({!Flow_updating.backend}),
    each budgeted [b × d] rounds — the same TC budget Algorithm 1 gets,
    so cross-backend rows are comparable. *)

type backend = Backend.t

val agg_backend : backend
(** One AGG+VERI pair.  On a watchdog-truncated run the result is
    [Exact Aborted] with [("halted_early", "true")] evidence; otherwise
    evidence carries [veri_ok], [lfc] and [edge_failures]. *)

val flood_backend : backend
(** Brute force — tolerates any number of crashes. *)

val folklore_backend : backend
(** Folklore retry with [f + 1] epochs; evidence carries [epochs]. *)

val backends : (string * backend) list
(** Every registered backend, keyed by {!Backend.name}. *)

val backend_of_string : string -> backend option
(** Look up a backend by name (the CLI's [--backend] values). *)

val exec :
  ?loss:float ->
  ?obs:Ftagg_obs.Obs.t ->
  backend:backend ->
  graph:Ftagg_graph.Graph.t ->
  failures:Ftagg_sim.Failure.t ->
  params:Params.t ->
  b:int ->
  f:int ->
  seed:int ->
  unit ->
  Backend.outcome
(** {!Backend.exec} — run any backend under the plain engine. *)

val exec_chaos :
  ?obs:Ftagg_obs.Obs.t ->
  ?faults:Ftagg_sim.Engine.faults ->
  ?online:Ftagg_sim.Engine.online ->
  ?bit_cap:int ->
  backend:backend ->
  graph:Ftagg_graph.Graph.t ->
  failures:Ftagg_sim.Failure.t ->
  params:Params.t ->
  b:int ->
  f:int ->
  seed:int ->
  unit ->
  Backend.chaos
(** {!Backend.exec_chaos} — run any backend under the chaos engine with
    the backend's own watchdog. *)
