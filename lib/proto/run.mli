(** End-to-end runners: instantiate a protocol on a topology, drive it
    through the engine under a failure schedule, and package the outcome
    together with metrics and ground-truth checks.

    Every entry point returns an outcome record with the same shape: a
    [result : Agg.result] (the root's answer, [Aborted] when the protocol
    gave up), a [common : common] with the run's metrics and checks, and
    protocol-specific evidence fields.  The pre-overhaul names ([vc]/[tc]/
    [uc]/[pc]/[fc]/[ac], [t_value]/[u_value]/…) survive one release as
    deprecated accessor functions at the bottom of this interface.

    All entry points accept [?loss] (default [0.]): the per-edge delivery
    loss probability forwarded to {!Ftagg_sim.Engine.run}.  Non-zero loss
    leaves the paper's model — see the engine's documentation.

    All entry points also accept [?obs]: a telemetry sink
    ({!Ftagg_obs.Obs}) forwarded to the engine.  Instrumented runs see
    per-phase bit attribution (AGG/VERI/Tradeoff annotate their phases)
    at identical protocol behaviour — telemetry never touches the PRNG
    streams. *)

module Metrics = Ftagg_sim.Metrics

type common = {
  metrics : Metrics.t;
  rounds : int;  (** rounds until the run halted *)
  flooding_rounds : int;  (** [ceil (rounds / d)] *)
  correct : bool;  (** result within the correctness interval (an abort /
                       no-clean-epoch outcome is reported as correct only
                       if the protocol is allowed to give up there) *)
}

val value_exn : Agg.result -> int
(** The computed value; raises [Invalid_argument] on [Agg.Aborted]. *)

(** {2 Single AGG / AGG+VERI executions} *)

type pair_outcome = {
  result : Agg.result;  (** = [verdict.Pair.result] *)
  verdict : Pair.verdict;
  trace : Checker.agg_trace;  (** for structural ground truth *)
  veri_end : int;  (** global round of VERI's last round *)
  lfc : bool;  (** ground truth: did the run contain an LFC? *)
  edge_failures : int;
      (** ground truth: the model's edge-failure count at the end of the
          run — edges incident to crashed {e or disconnected} nodes (§2
          counts disconnection as failure) *)
  common : common;
}

val pair :
  ?ablation:Agg.ablation ->
  ?loss:float ->
  ?obs:Ftagg_obs.Obs.t ->
  graph:Ftagg_graph.Graph.t ->
  failures:Ftagg_sim.Failure.t ->
  params:Params.t ->
  seed:int ->
  unit ->
  pair_outcome
(** One AGG+VERI pair starting at round 1.  [common.correct] is [true]
    when AGG aborted (it gave up explicitly) or its value is in the
    correctness interval. *)

type agg_outcome = {
  result : Agg.result;
  trace : Checker.agg_trace;
  common : common;
}

val agg :
  ?ablation:Agg.ablation ->
  ?loss:float ->
  ?obs:Ftagg_obs.Obs.t ->
  graph:Ftagg_graph.Graph.t ->
  failures:Ftagg_sim.Failure.t ->
  params:Params.t ->
  seed:int ->
  unit ->
  agg_outcome

(** {2 Whole-protocol runs} *)

type value_outcome = {
  result : Agg.result;  (** always [Value] — brute force cannot abort *)
  common : common;
}

val brute_force :
  ?loss:float ->
  ?obs:Ftagg_obs.Obs.t ->
  graph:Ftagg_graph.Graph.t ->
  failures:Ftagg_sim.Failure.t ->
  params:Params.t ->
  seed:int ->
  unit ->
  value_outcome

type folklore_outcome = {
  result : Agg.result;  (** [Aborted] on [No_clean_epoch] *)
  f_result : Folklore.result;  (** the protocol-level detail *)
  epochs : int;
  common : common;
}

val folklore :
  ?loss:float ->
  ?obs:Ftagg_obs.Obs.t ->
  graph:Ftagg_graph.Graph.t ->
  failures:Ftagg_sim.Failure.t ->
  params:Params.t ->
  mode:Folklore.mode ->
  seed:int ->
  unit ->
  folklore_outcome
(** [common.correct] for [Naive] mode reports the actual interval check —
    the motivating baseline is {e expected} to fail it under failures. *)

type tradeoff_outcome = {
  result : Agg.result;  (** always [Value] — Algorithm 1 falls back to
                            brute force rather than aborting *)
  how : Tradeoff.how;
  common : common;
}

val tradeoff :
  ?loss:float ->
  ?obs:Ftagg_obs.Obs.t ->
  graph:Ftagg_graph.Graph.t ->
  failures:Ftagg_sim.Failure.t ->
  params:Params.t ->
  b:int ->
  f:int ->
  seed:int ->
  unit ->
  tradeoff_outcome
(** Algorithm 1 with the paper's sampled-interval strategy. *)

val tradeoff_with :
  ?loss:float ->
  ?obs:Ftagg_obs.Obs.t ->
  strategy:Tradeoff.strategy ->
  graph:Ftagg_graph.Graph.t ->
  failures:Ftagg_sim.Failure.t ->
  params:Params.t ->
  b:int ->
  f:int ->
  seed:int ->
  unit ->
  tradeoff_outcome
(** Same, with an explicit interval-selection strategy (the [Sequential]
    derandomized ablation of bench E15). *)

type unknown_f_outcome = {
  result : Agg.result;  (** always [Value] *)
  how : Unknown_f.how;
  common : common;
}

val unknown_f :
  ?loss:float ->
  ?obs:Ftagg_obs.Obs.t ->
  graph:Ftagg_graph.Graph.t ->
  failures:Ftagg_sim.Failure.t ->
  params:Params.t ->
  seed:int ->
  unit ->
  unknown_f_outcome

(** {2 Deprecated aliases}

    The pre-overhaul outcome fields, kept for one release as accessor
    functions.  Migrate [o.Run.tc] → [o.Run.common], [o.Run.t_value] →
    [Run.value_exn o.Run.result], and so on. *)

val pc : pair_outcome -> common
[@@ocaml.deprecated "use o.common"]

val ac : agg_outcome -> common
[@@ocaml.deprecated "use o.common"]

val agg_result : agg_outcome -> Agg.result
[@@ocaml.deprecated "use o.result"]

val agg_trace : agg_outcome -> Checker.agg_trace
[@@ocaml.deprecated "use o.trace"]

val vc : value_outcome -> common
[@@ocaml.deprecated "use o.common"]

val value : value_outcome -> int
[@@ocaml.deprecated "use Run.value_exn o.result"]

val fc : folklore_outcome -> common
[@@ocaml.deprecated "use o.common"]

val tc : tradeoff_outcome -> common
[@@ocaml.deprecated "use o.common"]

val t_value : tradeoff_outcome -> int
[@@ocaml.deprecated "use Run.value_exn o.result"]

val uc : unknown_f_outcome -> common
[@@ocaml.deprecated "use o.common"]

val u_value : unknown_f_outcome -> int
[@@ocaml.deprecated "use Run.value_exn o.result"]

val u_how : unknown_f_outcome -> Unknown_f.how
[@@ocaml.deprecated "use o.how"]
