module Bits = Ftagg_util.Bits
module Prng = Ftagg_util.Prng

let bf_exec = -1  (* execution tag of the brute-force fallback *)

type how = Via_pair of int | Via_brute_force

type strategy = Sampled | Sequential

type exec = { y : int; start : int; pair : Pair.node }

type node = {
  p : Params.t;  (* pair-parameterised: [t] already set to ⌊2f/x⌋ *)
  b : int;
  me : int;
  x : int;
  selected : int list;  (* root only; ascending distinct interval indices *)
  mutable current : exec option;
  mutable bf : Brute_force.node option;
  mutable bf_start : int;
  mutable output : (int * how) option;
}

let intervals (p : Params.t) ~b =
  if b < 21 * p.Params.c then invalid_arg "Tradeoff: need b >= 21c";
  (b - (2 * p.Params.c)) / (19 * p.Params.c)

let pair_t p ~b ~f =
  if f < 0 then invalid_arg "Tradeoff: f must be >= 0";
  2 * f / intervals p ~b

let max_rounds (p : Params.t) ~b = b * p.Params.d

let interval_len p = 19 * Params.cd p

let create ?(strategy = Sampled) (p : Params.t) ~b ~f ~me ~rng =
  let x = intervals p ~b in
  let t = pair_t p ~b ~f in
  let p = { p with Params.t = t } in
  let selected =
    if me <> Ftagg_graph.Graph.root then []
    else
      match strategy with
      | Sequential -> List.init x (fun i -> i + 1)
      | Sampled ->
        (* log N integers drawn with replacement from [1, x]; duplicates
           collapse (Algorithm 1 runs each distinct interval once). *)
        let draws = max 1 (Bits.bits_for p.Params.n) in
        let module IS = Set.Make (Int) in
        let s = ref IS.empty in
        for _ = 1 to draws do
          s := IS.add (Prng.in_range rng 1 x) !s
        done;
        IS.elements !s
  in
  {
    p;
    b;
    me;
    x;
    selected;
    current = None;
    bf = None;
    bf_start = (b * p.Params.d) - (2 * Params.cd p);
    output = None;
  }

let root_done node = node.output <> None

(* Telemetry: each interval execution is a [tradeoff/interval#y] span
   wrapping the Pair phase spans opened by Agg/Veri; the brute-force
   fallback is a phase of its own.  All calls are ambient no-ops when the
   engine was given no [?obs] sink. *)
let span_name y = "tradeoff/interval#" ^ string_of_int y

let step node ~round ~inbox =
  let p = node.p in
  let is_root = node.me = Ftagg_graph.Graph.root in
  if node.output <> None then []
  else begin
    let pair_inbox y =
      List.filter_map
        (fun (sender, Message.{ exec; body }) ->
          if exec = y then Some (sender, body) else None)
        inbox
    in
    (* Expire a finished execution. *)
    (match node.current with
    | Some { y; start; _ } when round - start + 1 > Pair.duration p ->
      Ftagg_obs.Span.exit_named ~node:node.me (span_name y);
      node.current <- None
    | _ -> ());
    let out = ref [] in
    (* Root: start a pair at the head of each selected interval. *)
    (if is_root then
       match
         List.find_opt (fun y -> ((y - 1) * interval_len p) + 1 = round) node.selected
       with
       | Some y ->
         node.current <- Some { y; start = round; pair = Pair.create p ~me:node.me };
         Ftagg_obs.Span.enter ~node:node.me (span_name y)
       | None -> ());
    (* Non-root: activation by a tree_construct of a new execution. *)
    (if (not is_root) && node.current = None then
       match
         List.find_opt
           (fun (_, Message.{ exec; body }) ->
             exec >= 1 && match body with Message.Tree_construct _ -> true | _ -> false)
           inbox
       with
       | Some (_, Message.{ exec = y; body = Message.Tree_construct { level; _ } }) ->
         (* A level-(s+1) node receives its first tree_construct in round
            2s+2 of the execution: the phase-1 recurrence is recv = 2·level
            (ack in the receipt round, tree_construct one round later). *)
         let rr = (2 * level) + 2 in
         node.current <- Some { y; start = round - rr + 1; pair = Pair.create p ~me:node.me };
         Ftagg_obs.Span.enter ~node:node.me (span_name y)
       | _ -> ());
    (* Advance the current pair. *)
    (match node.current with
    | Some { y; start; pair } ->
      let rr = round - start + 1 in
      let bodies = Pair.step pair ~rr ~inbox:(pair_inbox y) in
      out := List.map (fun body -> Message.{ exec = y; body }) bodies;
      if is_root && rr = Pair.duration p then begin
        let v = Pair.root_verdict pair in
        (match v.Pair.result with
        | Agg.Value value when v.Pair.veri_ok -> node.output <- Some (value, Via_pair y)
        | Agg.Value _ | Agg.Aborted -> ());
        Ftagg_obs.Span.exit_named ~node:node.me (span_name y);
        node.current <- None
      end
    | None -> ());
    (* Brute-force fallback in the last 2c flooding rounds. *)
    if node.output = None then begin
      (if is_root && round = node.bf_start then node.bf <- Some (Brute_force.create p ~me:node.me));
      (if (not is_root) && node.bf = None
       && List.exists (fun (_, Message.{ exec; _ }) -> exec = bf_exec) inbox
      then node.bf <- Some (Brute_force.create p ~me:node.me));
      match node.bf with
      | Some bf ->
        if node.current = None then Ftagg_obs.Span.phase ~node:node.me "tradeoff/brute_force";
        let rr = round - node.bf_start + 1 in
        let bodies = Brute_force.step bf ~rr ~inbox:(pair_inbox bf_exec) in
        out := !out @ List.map (fun body -> Message.{ exec = bf_exec; body }) bodies;
        if is_root && round = node.bf_start + Brute_force.duration p - 1 then
          node.output <- Some (Brute_force.root_result bf, Via_brute_force)
      | None -> ()
    end;
    !out
  end

let root_result node =
  match node.output with
  | Some (v, _) -> v
  | None -> invalid_arg "Tradeoff.root_result: execution not finished"

let root_how node =
  match node.output with
  | Some (_, how) -> how
  | None -> invalid_arg "Tradeoff.root_how: execution not finished"

let selected_intervals node = node.selected
