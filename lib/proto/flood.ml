type 'body t = {
  table : ('body, unit) Hashtbl.t;
  mutable outbox : 'body list;  (* reversed *)
}

let create () = { table = Hashtbl.create 32; outbox = [] }

let seen t body = Hashtbl.mem t.table body

let receive t body =
  if seen t body then false
  else begin
    Hashtbl.replace t.table body ();
    t.outbox <- body :: t.outbox;
    true
  end

let originate = receive

let pending t = t.outbox <> []

let drain t =
  let out = List.rev t.outbox in
  t.outbox <- [];
  out

let fold_seen f t init = Hashtbl.fold (fun body () acc -> f body acc) t.table init
