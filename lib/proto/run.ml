module Engine = Ftagg_sim.Engine
module Metrics = Ftagg_sim.Metrics
module Failure = Ftagg_sim.Failure
module Graph = Ftagg_graph.Graph

type common = {
  metrics : Metrics.t;
  rounds : int;
  flooding_rounds : int;
  correct : bool;
}

let mk_common ~params ~metrics ~correct =
  let rounds = Metrics.rounds metrics in
  let d = params.Params.d in
  { metrics; rounds; flooding_rounds = (rounds + d - 1) / d; correct }

let check_value ~graph ~failures ~params ~metrics value =
  Checker.result_correct ~graph ~failures ~end_round:(Metrics.rounds metrics) ~params value

let value_exn = function
  | Agg.Value v -> v
  | Agg.Aborted -> invalid_arg "Run.value_exn: protocol aborted"

(* Wrap a body-level single-execution automaton as an engine protocol.
   Single-execution runs never need the exec tag, so the wire messages are
   raw bodies: the pre-overhaul [{ exec = 0; body }] boxing cost a
   filter_map + map + per-message reallocation for every node every round
   on the hot path.  [Message.bits] charges exactly what [Message.msg_bits]
   charged for the exec-0 wrapping, so the accounting is unchanged. *)
let single_exec_protocol ~name ~params ~create ~step ~is_done =
  {
    Engine.name;
    init = (fun u ~rng:_ -> create u);
    step = (fun ~round ~me:_ ~state ~inbox -> (state, step state ~rr:round ~inbox));
    msg_bits = Message.bits params;
    root_done = is_done;
  }

type pair_outcome = {
  result : Agg.result;
  verdict : Pair.verdict;
  trace : Checker.agg_trace;
  veri_end : int;
  lfc : bool;
  edge_failures : int;
  common : common;
}

let pair ?ablation ?loss ?obs ~graph ~failures ~params ~seed () =
  let duration = Pair.duration params in
  let proto =
    single_exec_protocol ~name:"pair" ~params
      ~create:(fun u -> Pair.create ?ablation params ~me:u)
      ~step:Pair.step
      ~is_done:(fun _ -> false)
  in
  let states, metrics = Engine.run ?obs ?loss ~graph ~failures ~max_rounds:duration ~seed proto in
  let verdict = Pair.root_verdict states.(Graph.root) in
  let trace =
    {
      Checker.agg_nodes = Array.map Pair.agg states;
      agg_start = 1;
      failures;
      params;
      graph;
    }
  in
  let veri_end = duration in
  let lfc = Checker.has_lfc trace ~veri_end in
  let edge_failures = Checker.model_edge_failures ~graph ~failures ~round:duration in
  let correct =
    match verdict.Pair.result with
    | Agg.Aborted -> true
    | Agg.Value v -> check_value ~graph ~failures ~params ~metrics v
  in
  {
    result = verdict.Pair.result;
    verdict;
    trace;
    veri_end;
    lfc;
    edge_failures;
    common = mk_common ~params ~metrics ~correct;
  }

type agg_outcome = {
  result : Agg.result;
  trace : Checker.agg_trace;
  common : common;
}

let agg ?ablation ?loss ?obs ~graph ~failures ~params ~seed () =
  let duration = Agg.duration params in
  let proto =
    single_exec_protocol ~name:"agg" ~params
      ~create:(fun u -> Agg.create ?ablation params ~me:u)
      ~step:Agg.step
      ~is_done:(fun _ -> false)
  in
  let states, metrics = Engine.run ?obs ?loss ~graph ~failures ~max_rounds:duration ~seed proto in
  let result = Agg.root_result states.(Graph.root) in
  let trace = { Checker.agg_nodes = states; agg_start = 1; failures; params; graph } in
  let correct =
    match result with
    | Agg.Aborted -> true
    | Agg.Value v -> check_value ~graph ~failures ~params ~metrics v
  in
  { result; trace; common = mk_common ~params ~metrics ~correct }

type value_outcome = {
  result : Agg.result;
  common : common;
}

let brute_force ?loss ?obs ~graph ~failures ~params ~seed () =
  let duration = Brute_force.duration params in
  let proto =
    single_exec_protocol ~name:"brute_force" ~params
      ~create:(fun u -> Brute_force.create params ~me:u)
      ~step:Brute_force.step
      ~is_done:(fun _ -> false)
  in
  let states, metrics = Engine.run ?obs ?loss ~graph ~failures ~max_rounds:duration ~seed proto in
  let v = Brute_force.root_result states.(Graph.root) in
  let correct = check_value ~graph ~failures ~params ~metrics v in
  { result = Agg.Value v; common = mk_common ~params ~metrics ~correct }

type folklore_outcome = {
  result : Agg.result;
  f_result : Folklore.result;
  epochs : int;
  common : common;
}

let folklore ?loss ?obs ~graph ~failures ~params ~mode ~seed () =
  let duration = Folklore.duration params mode in
  let proto =
    {
      Engine.name = "folklore";
      init = (fun u ~rng:_ -> Folklore.create params ~mode ~me:u);
      step =
        (fun ~round ~me:_ ~state ~inbox ->
          let out = Folklore.step state ~rr:round ~inbox in
          (state, out));
      msg_bits = Message.msg_bits params;
      root_done = Folklore.root_done;
    }
  in
  let states, metrics = Engine.run ?obs ?loss ~graph ~failures ~max_rounds:duration ~seed proto in
  let root = states.(Graph.root) in
  let f_result = Folklore.root_result root in
  let result =
    match f_result with
    | Folklore.No_clean_epoch -> Agg.Aborted
    | Folklore.Value v -> Agg.Value v
  in
  let correct =
    match f_result with
    | Folklore.No_clean_epoch -> true
    | Folklore.Value v -> check_value ~graph ~failures ~params ~metrics v
  in
  {
    result;
    f_result;
    epochs = Folklore.epochs_used root;
    common = mk_common ~params ~metrics ~correct;
  }

type tradeoff_outcome = {
  result : Agg.result;
  how : Tradeoff.how;
  common : common;
}

let tradeoff_with ?loss ?obs ~strategy ~graph ~failures ~params ~b ~f ~seed () =
  let proto =
    {
      Engine.name = "tradeoff";
      init = (fun u ~rng -> Tradeoff.create ~strategy params ~b ~f ~me:u ~rng);
      step =
        (fun ~round ~me:_ ~state ~inbox ->
          let out = Tradeoff.step state ~round ~inbox in
          (state, out));
      msg_bits = Message.msg_bits params;
      root_done = Tradeoff.root_done;
    }
  in
  let max_rounds = Tradeoff.max_rounds params ~b in
  let states, metrics = Engine.run ?obs ?loss ~graph ~failures ~max_rounds ~seed proto in
  let root = states.(Graph.root) in
  let v = Tradeoff.root_result root in
  let correct = check_value ~graph ~failures ~params ~metrics v in
  {
    result = Agg.Value v;
    how = Tradeoff.root_how root;
    common = mk_common ~params ~metrics ~correct;
  }

let tradeoff ?loss ?obs ~graph ~failures ~params ~b ~f ~seed () =
  tradeoff_with ?loss ?obs ~strategy:Tradeoff.Sampled ~graph ~failures ~params ~b ~f ~seed ()

type unknown_f_outcome = {
  result : Agg.result;
  how : Unknown_f.how;
  common : common;
}

let unknown_f ?loss ?obs ~graph ~failures ~params ~seed () =
  let proto =
    {
      Engine.name = "unknown_f";
      init = (fun u ~rng:_ -> Unknown_f.create params ~me:u);
      step =
        (fun ~round ~me:_ ~state ~inbox ->
          let out = Unknown_f.step state ~round ~inbox in
          (state, out));
      msg_bits = Message.msg_bits params;
      root_done = Unknown_f.root_done;
    }
  in
  let max_rounds = Unknown_f.max_rounds params in
  let states, metrics = Engine.run ?obs ?loss ~graph ~failures ~max_rounds ~seed proto in
  let root = states.(Graph.root) in
  let v = Unknown_f.root_result root in
  let correct = check_value ~graph ~failures ~params ~metrics v in
  {
    result = Agg.Value v;
    how = Unknown_f.root_how root;
    common = mk_common ~params ~metrics ~correct;
  }

(* ------------------------------------------------------------------ *)
(* Deprecated aliases for the pre-overhaul field names (one release).  *)
(* ------------------------------------------------------------------ *)

let pc (o : pair_outcome) = o.common
let ac (o : agg_outcome) = o.common
let agg_result (o : agg_outcome) = o.result
let agg_trace (o : agg_outcome) = o.trace
let vc (o : value_outcome) = o.common
let value (o : value_outcome) = value_exn o.result
let fc (o : folklore_outcome) = o.common
let tc (o : tradeoff_outcome) = o.common
let t_value (o : tradeoff_outcome) = value_exn o.result
let uc (o : unknown_f_outcome) = o.common
let u_value (o : unknown_f_outcome) = value_exn o.result
let u_how (o : unknown_f_outcome) = o.how
