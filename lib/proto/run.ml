module Engine = Ftagg_sim.Engine
module Metrics = Ftagg_sim.Metrics
module Failure = Ftagg_sim.Failure
module Graph = Ftagg_graph.Graph

module Backend = Backend

type common = Backend.common = {
  metrics : Metrics.t;
  rounds : int;
  flooding_rounds : int;
  correct : bool;
}

let mk_common ~params ~metrics ~correct =
  Backend.mk_common ~d:params.Params.d ~metrics ~correct

let check_value ~graph ~failures ~params ~metrics value =
  Checker.result_correct ~graph ~failures ~end_round:(Metrics.rounds metrics) ~params value

let value_exn = function
  | Agg.Value v -> v
  | Agg.Aborted -> invalid_arg "Run.value_exn: protocol aborted"

(* Wrap a body-level single-execution automaton as an engine protocol.
   Single-execution runs never need the exec tag, so the wire messages are
   raw bodies: the pre-overhaul [{ exec = 0; body }] boxing cost a
   filter_map + map + per-message reallocation for every node every round
   on the hot path.  [Message.bits] charges exactly what [Message.msg_bits]
   charged for the exec-0 wrapping, so the accounting is unchanged. *)
let single_exec_protocol ~name ~params ~create ~step ~is_done =
  {
    Engine.name;
    init = (fun u ~rng:_ -> create u);
    step = (fun ~round ~me:_ ~state ~inbox -> (state, step state ~rr:round ~inbox));
    msg_bits = Message.bits params;
    root_done = is_done;
  }

type pair_outcome = {
  result : Agg.result;
  verdict : Pair.verdict;
  trace : Checker.agg_trace;
  veri_end : int;
  lfc : bool;
  edge_failures : int;
  common : common;
}

let pair ?ablation ?loss ?obs ~graph ~failures ~params ~seed () =
  let duration = Pair.duration params in
  let proto =
    single_exec_protocol ~name:"pair" ~params
      ~create:(fun u -> Pair.create ?ablation params ~me:u)
      ~step:Pair.step
      ~is_done:(fun _ -> false)
  in
  let states, metrics = Engine.run ?obs ?loss ~graph ~failures ~max_rounds:duration ~seed proto in
  let verdict = Pair.root_verdict states.(Graph.root) in
  let trace =
    {
      Checker.agg_nodes = Array.map Pair.agg states;
      agg_start = 1;
      failures;
      params;
      graph;
    }
  in
  let veri_end = duration in
  let lfc = Checker.has_lfc trace ~veri_end in
  let edge_failures = Checker.model_edge_failures ~graph ~failures ~round:duration in
  let correct =
    match verdict.Pair.result with
    | Agg.Aborted -> true
    | Agg.Value v -> check_value ~graph ~failures ~params ~metrics v
  in
  {
    result = verdict.Pair.result;
    verdict;
    trace;
    veri_end;
    lfc;
    edge_failures;
    common = mk_common ~params ~metrics ~correct;
  }

type agg_outcome = {
  result : Agg.result;
  trace : Checker.agg_trace;
  common : common;
}

let agg ?ablation ?loss ?obs ~graph ~failures ~params ~seed () =
  let duration = Agg.duration params in
  let proto =
    single_exec_protocol ~name:"agg" ~params
      ~create:(fun u -> Agg.create ?ablation params ~me:u)
      ~step:Agg.step
      ~is_done:(fun _ -> false)
  in
  let states, metrics = Engine.run ?obs ?loss ~graph ~failures ~max_rounds:duration ~seed proto in
  let result = Agg.root_result states.(Graph.root) in
  let trace = { Checker.agg_nodes = states; agg_start = 1; failures; params; graph } in
  let correct =
    match result with
    | Agg.Aborted -> true
    | Agg.Value v -> check_value ~graph ~failures ~params ~metrics v
  in
  { result; trace; common = mk_common ~params ~metrics ~correct }

type value_outcome = {
  result : Agg.result;
  common : common;
}

let brute_force ?loss ?obs ~graph ~failures ~params ~seed () =
  let duration = Brute_force.duration params in
  let proto =
    single_exec_protocol ~name:"brute_force" ~params
      ~create:(fun u -> Brute_force.create params ~me:u)
      ~step:Brute_force.step
      ~is_done:(fun _ -> false)
  in
  let states, metrics = Engine.run ?obs ?loss ~graph ~failures ~max_rounds:duration ~seed proto in
  let v = Brute_force.root_result states.(Graph.root) in
  let correct = check_value ~graph ~failures ~params ~metrics v in
  { result = Agg.Value v; common = mk_common ~params ~metrics ~correct }

type folklore_outcome = {
  result : Agg.result;
  f_result : Folklore.result;
  epochs : int;
  common : common;
}

let folklore ?loss ?obs ~graph ~failures ~params ~mode ~seed () =
  let duration = Folklore.duration params mode in
  let proto =
    {
      Engine.name = "folklore";
      init = (fun u ~rng:_ -> Folklore.create params ~mode ~me:u);
      step =
        (fun ~round ~me:_ ~state ~inbox ->
          let out = Folklore.step state ~rr:round ~inbox in
          (state, out));
      msg_bits = Message.msg_bits params;
      root_done = Folklore.root_done;
    }
  in
  let states, metrics = Engine.run ?obs ?loss ~graph ~failures ~max_rounds:duration ~seed proto in
  let root = states.(Graph.root) in
  let f_result = Folklore.root_result root in
  let result =
    match f_result with
    | Folklore.No_clean_epoch -> Agg.Aborted
    | Folklore.Value v -> Agg.Value v
  in
  let correct =
    match f_result with
    | Folklore.No_clean_epoch -> true
    | Folklore.Value v -> check_value ~graph ~failures ~params ~metrics v
  in
  {
    result;
    f_result;
    epochs = Folklore.epochs_used root;
    common = mk_common ~params ~metrics ~correct;
  }

type tradeoff_outcome = {
  result : Agg.result;
  how : Tradeoff.how;
  common : common;
}

let tradeoff_with ?loss ?obs ~strategy ~graph ~failures ~params ~b ~f ~seed () =
  let proto =
    {
      Engine.name = "tradeoff";
      init = (fun u ~rng -> Tradeoff.create ~strategy params ~b ~f ~me:u ~rng);
      step =
        (fun ~round ~me:_ ~state ~inbox ->
          let out = Tradeoff.step state ~round ~inbox in
          (state, out));
      msg_bits = Message.msg_bits params;
      root_done = Tradeoff.root_done;
    }
  in
  let max_rounds = Tradeoff.max_rounds params ~b in
  let states, metrics = Engine.run ?obs ?loss ~graph ~failures ~max_rounds ~seed proto in
  let root = states.(Graph.root) in
  let v = Tradeoff.root_result root in
  let correct = check_value ~graph ~failures ~params ~metrics v in
  {
    result = Agg.Value v;
    how = Tradeoff.root_how root;
    common = mk_common ~params ~metrics ~correct;
  }

let tradeoff ?loss ?obs ~graph ~failures ~params ~b ~f ~seed () =
  tradeoff_with ?loss ?obs ~strategy:Tradeoff.Sampled ~graph ~failures ~params ~b ~f ~seed ()

type unknown_f_outcome = {
  result : Agg.result;
  how : Unknown_f.how;
  common : common;
}

let unknown_f ?loss ?obs ~graph ~failures ~params ~seed () =
  let proto =
    {
      Engine.name = "unknown_f";
      init = (fun u ~rng:_ -> Unknown_f.create params ~me:u);
      step =
        (fun ~round ~me:_ ~state ~inbox ->
          let out = Unknown_f.step state ~round ~inbox in
          (state, out));
      msg_bits = Message.msg_bits params;
      root_done = Unknown_f.root_done;
    }
  in
  let max_rounds = Unknown_f.max_rounds params in
  let states, metrics = Engine.run ?obs ?loss ~graph ~failures ~max_rounds ~seed proto in
  let root = states.(Graph.root) in
  let v = Unknown_f.root_result root in
  let correct = check_value ~graph ~failures ~params ~metrics v in
  {
    result = Agg.Value v;
    how = Unknown_f.root_how root;
    common = mk_common ~params ~metrics ~correct;
  }

(* ------------------------------------------------------------------ *)
(* Protocol backends: the exact protocols above packaged behind the    *)
(* first-class Backend interface, plus the registry.                   *)
(* ------------------------------------------------------------------ *)

type backend = Backend.t

(* Generic chaos watch for the exact backends: honour a planted bit cap,
   nothing else — the full AGG+VERI invariant watchdog lives in
   Ftagg_chaos.Watchdog (it needs the Checker machinery the campaign
   already wires in for "agg" scenarios). *)
let cap_only_watch ?bit_cap ~params:_ ~graph:_ () =
  Option.map (fun cap -> Backend.bits_watch ~bit_cap:cap) bit_cap

let agg_backend : backend =
  (module struct
    type state = Pair.node
    type msg = Message.body

    let name = "agg"
    let exact = true

    let guarantee =
      "zero-error or abort; with <= t edge failures: correct value, VERI accepts (Table 2)"

    let protocol ~graph:_ ~params ~b:_ ~f:_ =
      single_exec_protocol ~name:"pair" ~params
        ~create:(fun u -> Pair.create params ~me:u)
        ~step:Pair.step
        ~is_done:(fun _ -> false)

    let max_rounds ~params ~b:_ ~f:_ = Pair.duration params

    let finish ~graph ~failures ~params ~b:_ ~f:_ ~states ~metrics =
      let duration = Pair.duration params in
      let rounds = Metrics.rounds metrics in
      if rounds < duration then
        (* Watchdog-truncated chaos run: the pair never output — the
           violation on the chaos record is the authoritative verdict. *)
        {
          Backend.result = Backend.Exact Agg.Aborted;
          common = mk_common ~params ~metrics ~correct:true;
          evidence = [ ("halted_early", "true") ];
        }
      else begin
        let verdict = Pair.root_verdict states.(Graph.root) in
        let trace =
          {
            Checker.agg_nodes = Array.map Pair.agg states;
            agg_start = 1;
            failures;
            params;
            graph;
          }
        in
        let lfc = Checker.has_lfc trace ~veri_end:duration in
        let edge_failures = Checker.model_edge_failures ~graph ~failures ~round:duration in
        let correct =
          match verdict.Pair.result with
          | Agg.Aborted -> true
          | Agg.Value v -> check_value ~graph ~failures ~params ~metrics v
        in
        {
          Backend.result = Backend.Exact verdict.Pair.result;
          common = mk_common ~params ~metrics ~correct;
          evidence =
            [
              ("veri_ok", string_of_bool verdict.Pair.veri_ok);
              ("lfc", string_of_bool lfc);
              ("edge_failures", string_of_int edge_failures);
            ];
        }
      end

    let watch = cap_only_watch
  end)

let flood_backend : backend =
  (module struct
    type state = Brute_force.node
    type msg = Message.body

    let name = "flood"
    let exact = true
    let guarantee = "zero-error under any number of crashes; CC O(N log N)"

    let protocol ~graph:_ ~params ~b:_ ~f:_ =
      single_exec_protocol ~name:"brute_force" ~params
        ~create:(fun u -> Brute_force.create params ~me:u)
        ~step:Brute_force.step
        ~is_done:(fun _ -> false)

    let max_rounds ~params ~b:_ ~f:_ = Brute_force.duration params

    let finish ~graph ~failures ~params ~b:_ ~f:_ ~states ~metrics =
      (* A watchdog-truncated run never produced the root's fold — report
         it as an abort; the violation is the authoritative verdict. *)
      if Metrics.rounds metrics < Brute_force.duration params then
        {
          Backend.result = Backend.Exact Agg.Aborted;
          common = mk_common ~params ~metrics ~correct:true;
          evidence = [ ("halted_early", "true") ];
        }
      else begin
        let v = Brute_force.root_result states.(Graph.root) in
        let correct = check_value ~graph ~failures ~params ~metrics v in
        {
          Backend.result = Backend.Exact (Agg.Value v);
          common = mk_common ~params ~metrics ~correct;
          evidence = [];
        }
      end

    let watch = cap_only_watch
  end)

let folklore_backend : backend =
  (module struct
    type state = Folklore.node
    type msg = Message.t

    let name = "folklore"
    let exact = true

    let guarantee =
      "zero-error with f + 1 retry epochs under <= f edge failures; aborts otherwise"

    let protocol ~graph:_ ~params ~b:_ ~f =
      let mode = Folklore.Retry (f + 1) in
      {
        Engine.name = "folklore";
        init = (fun u ~rng:_ -> Folklore.create params ~mode ~me:u);
        step =
          (fun ~round ~me:_ ~state ~inbox ->
            let out = Folklore.step state ~rr:round ~inbox in
            (state, out));
        msg_bits = Message.msg_bits params;
        root_done = Folklore.root_done;
      }

    let max_rounds ~params ~b:_ ~f = Folklore.duration params (Folklore.Retry (f + 1))

    let finish ~graph ~failures ~params ~b:_ ~f:_ ~states ~metrics =
      let root = states.(Graph.root) in
      (* [root_result] raises on a watchdog-truncated run (no verdict
         yet): report an abort, the violation is authoritative. *)
      match Folklore.root_result root with
      | exception Invalid_argument _ ->
        {
          Backend.result = Backend.Exact Agg.Aborted;
          common = mk_common ~params ~metrics ~correct:true;
          evidence = [ ("halted_early", "true") ];
        }
      | f_result ->
        let result, correct =
          match f_result with
          | Folklore.No_clean_epoch -> (Agg.Aborted, true)
          | Folklore.Value v -> (Agg.Value v, check_value ~graph ~failures ~params ~metrics v)
        in
        {
          Backend.result = Backend.Exact result;
          common = mk_common ~params ~metrics ~correct;
          evidence = [ ("epochs", string_of_int (Folklore.epochs_used root)) ];
        }

    let watch = cap_only_watch
  end)

let backends =
  [
    ("agg", agg_backend);
    ("flood", flood_backend);
    ("folklore", folklore_backend);
    ("pushsum", Gossip.backend);
    ("flowupdating", Flow_updating.backend);
    ("flowupdating-avg", Flow_updating.avg_backend);
  ]

let backend_of_string name = List.assoc_opt (String.lowercase_ascii name) backends
let exec = Backend.exec
let exec_chaos = Backend.exec_chaos
