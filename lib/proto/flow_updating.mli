(** Flow updating — approximate averaging that {e conserves mass under
    crashes} (Jesus, Baquero & Almeida; see also Flow-Updating Meets
    Mass-Distribution, OPODIS 2011).

    Where push-sum ({!Gossip}) moves mass itself between nodes — so the
    mass held by a node when it crashes is destroyed forever — flow
    updating keeps every input where it was born and instead maintains,
    per node [i] and neighbour [j], a {e flow} variable [F_i(j)]: the
    net value [i] has decided to route towards [j].  The local estimate
    is [e_i = v_i − Σ_j F_i(j)]; at the antisymmetric fixed point
    ([F_i(j) = −F_j(i)]) the estimates sum to exactly [Σ v] and each
    equals the true average.  Each round a node adopts the negated
    flows its neighbours report, averages the received estimates with
    its own, and adjusts its flows to move everyone towards that
    average.

    Crash recovery is the point: a neighbour that goes silent is
    declared dead and its flow is {e reset to 0}, which atomically
    returns the routed mass to the surviving side.  Estimates then
    re-converge to the average over the survivors — with uniform inputs
    the SUM estimate returns to the exact total, where push-sum keeps a
    permanent hole.  Bench E20 and [test/test_backend.ml] quantify the
    contrast under identical schedules.

    Message accounting mirrors {!Gossip}: each per-neighbour payload
    carries a destination id plus two fixed-point values of
    {!value_bits} bits (plus tag).

    Detection assumes the paper's crash model (silence = death); under
    {!Ftagg_sim.Engine.faults} message loss the reset can misfire —
    that leaves the model, exactly as documented for the engine. *)

type state
type msg

type mode =
  | Sum  (** estimate [n ×] the converged average — comparable to the
             zero-error SUM backends *)
  | Avg  (** report the converged average itself *)

val value_bits : int
(** Fixed-point width per transmitted flow/estimate value (32). *)

val node_estimate : state -> float
(** The node's current local estimate of the average. *)

val node_net_flow : state -> float
(** [Σ_j F_i(j)] — the net mass the node has routed away; its estimate
    is [input − net_flow]. *)

val dead_links : state -> int
(** Neighbour slots this node has declared dead (and whose flow it has
    reset). *)

val protocol :
  ?mode:mode ->
  graph:Ftagg_graph.Graph.t ->
  params:Params.t ->
  unit ->
  (state, msg) Ftagg_sim.Engine.protocol
(** The engine automaton ([mode] only affects packaging, not the wire
    behaviour; it defaults to [Sum]). *)

val run :
  ?mode:mode ->
  ?loss:float ->
  ?obs:Ftagg_obs.Obs.t ->
  graph:Ftagg_graph.Graph.t ->
  failures:Ftagg_sim.Failure.t ->
  params:Params.t ->
  rounds:int ->
  seed:int ->
  unit ->
  Backend.outcome
(** Run flow updating for [rounds] rounds and package the root's
    estimate as a unified {!Backend.outcome}.  [common.correct] checks
    the rounded SUM estimate against the {!Checker} correctness
    interval.  Evidence: [estimate_root], [dead_links] (total reset
    flows), [flow_skew] (Σ over intact edges of |F_i(j) + F_j(i)| — 0
    at the fixed point). *)

val run_states :
  ?mode:mode ->
  graph:Ftagg_graph.Graph.t ->
  failures:Ftagg_sim.Failure.t ->
  params:Params.t ->
  rounds:int ->
  seed:int ->
  unit ->
  state array * Ftagg_sim.Metrics.t
(** Like {!run} but returning the raw per-node states — the
    mass-conservation tests read every node's estimate, not just the
    root's. *)

val backend : Backend.t
(** [Sum]-mode backend ([Backend.name] = ["flowupdating"]).  Its round
    budget is [b × d], the same TC budget Algorithm 1 gets, and its
    watchdog checks every estimate stays finite (plus the generic bit
    cap when planted). *)

val avg_backend : Backend.t
(** [Avg]-mode sibling ([Backend.name] = ["flowupdating-avg"]). *)
