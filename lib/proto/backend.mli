(** First-class protocol backends.

    A backend packages one aggregation protocol behind a uniform
    interface: instantiate on a topology, drive through
    {!Ftagg_sim.Engine}, and report a uniform {!outcome} — an exact
    value or an estimate with its relative error, the {!common} run
    record every runner shares, and per-backend evidence.  Packaging is
    by first-class module ({!t} = [(module S)]) so heterogeneous
    protocols (zero-error AGG+VERI next to approximate push-sum and
    flow-updating) ride the same harness: {!exec} for plain runs,
    {!exec_chaos} for watched chaos runs, {!Run.backends} for the
    registry the CLI and the chaos campaign dispatch on.

    The exact backends answer with {!Exact} (possibly [Agg.Aborted]);
    the gossip backends answer with {!Estimate}.  [common.correct] is
    uniform across both: an estimate is "correct" when its rounding
    lands in the {!Checker} correctness interval — the cross-protocol
    matrix (bench E20) reads this column directly. *)

module Metrics = Ftagg_sim.Metrics

type common = {
  metrics : Metrics.t;
  rounds : int;  (** rounds until the run halted *)
  flooding_rounds : int;  (** [ceil (rounds / d)] *)
  correct : bool;  (** result within the correctness interval (an abort
                       is reported as correct only if the protocol is
                       allowed to give up there) *)
}
(** The outcome record every runner shares ({!Run.common} re-exports
    this type — accessors written against either name interoperate). *)

val mk_common : d:int -> metrics:Metrics.t -> correct:bool -> common

type result =
  | Exact of Agg.result
      (** a zero-error backend's answer ([Aborted] when it gave up) *)
  | Estimate of { value : float; relative_error : float }
      (** an approximate backend's answer with its measured relative
          error against the ground-truth aggregate *)

type outcome = {
  result : result;
  common : common;
  evidence : (string * string) list;
      (** per-backend detail (epochs used, recovered flows, root mass
          weight, …) as printable key/value pairs *)
}

val value_exn : outcome -> int
(** The exact value; raises [Invalid_argument] on [Estimate] or
    [Exact Aborted] outcomes. *)

val estimate_of : outcome -> float
(** The answer as a float: the exact value, or the estimate.  Raises
    [Invalid_argument] on [Exact Aborted]. *)

val relative_error : outcome -> truth:float -> float
(** |answer − truth| / |truth| (0 for an exact correct answer by
    construction; |answer| when truth = 0).  Raises on [Exact Aborted]. *)

(** The backend signature: everything the harness needs to run one
    protocol.  [b] is the TC budget in flooding rounds and [f] the
    edge-failure budget; backends that take neither (the fixed-duration
    AGG+VERI pair, flood, folklore) ignore them. *)
module type S = sig
  type state
  type msg

  val name : string
  val exact : bool
  (** [true] for zero-error backends; {!finish} answers {!Exact}. *)

  val guarantee : string
  (** One-line statement of the correctness guarantee, for reports
      (e.g. ["zero-error or abort; abort only under > t failures"]). *)

  val protocol :
    graph:Ftagg_graph.Graph.t ->
    params:Params.t ->
    b:int ->
    f:int ->
    (state, msg) Ftagg_sim.Engine.protocol

  val max_rounds : params:Params.t -> b:int -> f:int -> int
  (** The round budget {!exec} drives the protocol for (protocols with
      [root_done] may halt earlier).  [b]/[f] as in {!protocol} — the
      folklore backend's duration scales with [f], the gossip backends'
      with [b]. *)

  val finish :
    graph:Ftagg_graph.Graph.t ->
    failures:Ftagg_sim.Failure.t ->
    params:Params.t ->
    b:int ->
    f:int ->
    states:state array ->
    metrics:Metrics.t ->
    outcome
  (** Package a finished (or watchdog-truncated) run.  [failures] is the
      materialized schedule — under an online adversary it differs from
      the oblivious input. *)

  val watch :
    ?bit_cap:int ->
    params:Params.t ->
    graph:Ftagg_graph.Graph.t ->
    unit ->
    state Ftagg_sim.Engine.watch option
  (** The backend's chaos watchdog, if it has one.  Every backend must
      honour [bit_cap] (the planted-violation knob): when set, the
      returned watch must report ["bit_budget"] the first round any
      node's cumulative bits cross it — {!bits_watch} is the generic
      implementation.  [None] only when no cap is given and the backend
      has no invariants of its own.  Stateful watches must be fresh per
      run (hence the [unit] step). *)
end

type t = (module S)

val name : t -> string
val exact : t -> bool
val guarantee : t -> string

val bits_watch : bit_cap:int -> 'state Ftagg_sim.Engine.watch
(** Generic per-node bit accounting: fires ["bit_budget"] on the first
    round any node's cumulative broadcast bits exceed the cap.  The
    protocol-agnostic half of {!Watchdog.pair_watch}'s budget check,
    usable with any backend state. *)

val exec :
  ?loss:float ->
  ?obs:Ftagg_obs.Obs.t ->
  backend:t ->
  graph:Ftagg_graph.Graph.t ->
  failures:Ftagg_sim.Failure.t ->
  params:Params.t ->
  b:int ->
  f:int ->
  seed:int ->
  unit ->
  outcome
(** Drive the backend through {!Ftagg_sim.Engine.run}.  Exactly the
    backend's own [protocol]/[max_rounds]/[finish] — a backend run
    through [exec] and run by hand produce identical outcomes and
    metrics (pinned differentially in [test/test_backend.ml]). *)

type chaos = {
  c_outcome : outcome;
      (** packaged from whatever states the run reached — on a watchdog
          halt the protocol did not finish and [c_violation] is the
          authoritative verdict *)
  c_schedule : Ftagg_sim.Failure.t;
      (** the materialized schedule (oblivious input plus online
          decisions), replayable *)
  c_violation : Ftagg_sim.Engine.violation option;
  c_completed : bool;  (** the run reached the backend's round budget
                           (or halted itself via [root_done]) without a
                           watchdog halt *)
}

val exec_chaos :
  ?obs:Ftagg_obs.Obs.t ->
  ?faults:Ftagg_sim.Engine.faults ->
  ?online:Ftagg_sim.Engine.online ->
  ?bit_cap:int ->
  backend:t ->
  graph:Ftagg_graph.Graph.t ->
  failures:Ftagg_sim.Failure.t ->
  params:Params.t ->
  b:int ->
  f:int ->
  seed:int ->
  unit ->
  chaos
(** Drive the backend through {!Ftagg_sim.Engine.run_chaos} under the
    backend's own watchdog ([S.watch], which must honour [bit_cap]).
    With every knob at its default this is observationally identical to
    {!exec}. *)
