module Caaf = Ftagg_caaf.Caaf

type result = Value of int | Aborted

type ablation = Full | No_speculation | No_witnesses

(* Phase layout in execution-relative rounds (cd = c·d):
     tree construction : 1            .. 2cd+1
     tree aggregation  : 2cd+2        .. 4cd+2
     speculative flood : 4cd+3        .. 6cd+3
     selection         : 6cd+4        .. 7cd+4   (root outputs in the last round) *)

type node = {
  p : Params.t;
  me : int;
  ablation : ablation;
  flood : Message.body Flood.t;
  mutable activated : bool;
  mutable level : int;
  mutable parent : int;
  mutable children : int list;
  ancestors : int array;  (* length 2t+1, index 0 = me, -1 = undefined *)
  mutable tc_send_round : int;  (* when to send our own tree_construct; -1 = never *)
  mutable psum : int;
  mutable max_level : int;
  child_psums : (int, int * int) Hashtbl.t;  (* child -> (psum, max_level) *)
  crit : (int, unit) Hashtbl.t;  (* critical-failure ids seen *)
  psum_sources : (int, int) Hashtbl.t;  (* flooded source -> its partial sum *)
  compulsory : (int, unit) Hashtbl.t;  (* sources with a ⟨compulsory‖optional⟩ *)
  mutable parent_flood_ever : bool;  (* used by the No_speculation ablation *)
  mutable sent_bits : int;
  mutable abort_seen : bool;
  mutable selected : int list;  (* root: sources included in the output *)
  mutable output : result option;
  (* Cached action rounds, fixed once the node's level is known (at
     creation for the root, at activation otherwise); -1 = not scheduled.
     [step] runs for every node every round, so these turn the phase
     arithmetic into plain comparisons and let quiescent rounds return
     immediately. *)
  mutable agg_action : int;  (* execution round of our aggregation send *)
  mutable spec_action : int;  (* execution round of our speculative flood *)
  sel_round : int;  (* 6cd + 4: witnesses flood determinations *)
  final_round : int;  (* root only: the round it outputs; -1 elsewhere *)
}

let duration p = (7 * Params.cd p) + 4

(* Aggregation happens in round cd − level + 1 of its phase (which starts
   at 2cd + 2); speculative flooding in phase round level + 1 (pushed a
   full flooding round later for non-root nodes under [No_speculation]). *)
let agg_action_round p ~level = (3 * Params.cd p) + 2 - level

let spec_action_round p ~ablation ~is_root ~level =
  let spec_base = (4 * Params.cd p) + 2 in
  match ablation with
  | Full | No_witnesses -> spec_base + level + 1
  | No_speculation -> if is_root then spec_base + 1 else spec_base + level + 1 + Params.cd p

let create ?(ablation = Full) (p : Params.t) ~me =
  let is_root = me = Ftagg_graph.Graph.root in
  let ancestors = Array.make ((2 * p.Params.t) + 1) (-1) in
  ancestors.(0) <- me;
  {
    p;
    me;
    ablation;
    flood = Flood.create ();
    activated = is_root;
    level = (if is_root then 0 else -1);
    parent = -1;
    children = [];
    ancestors;
    tc_send_round = (if is_root then 1 else -1);
    psum = p.Params.inputs.(me);
    max_level = (if is_root then 0 else -1);
    child_psums = Hashtbl.create 4;
    crit = Hashtbl.create 4;
    psum_sources = Hashtbl.create 8;
    compulsory = Hashtbl.create 8;
    parent_flood_ever = false;
    sent_bits = 0;
    abort_seen = false;
    selected = [];
    output = None;
    agg_action = (if is_root then agg_action_round p ~level:0 else -1);
    spec_action = (if is_root then spec_action_round p ~ablation ~is_root ~level:0 else -1);
    sel_round = (6 * Params.cd p) + 4;
    final_round = (if is_root then duration p else -1);
  }

(* Record the protocol-level consequences of a flood body the node now
   knows (whether received or self-originated). *)
let note_flood node = function
  | Message.Critical_failure v -> Hashtbl.replace node.crit v ()
  | Message.Flooded_psum { source; psum } -> Hashtbl.replace node.psum_sources source psum
  | Message.Compulsory source -> Hashtbl.replace node.compulsory source ()
  | Message.Agg_abort -> node.abort_seen <- true
  | _ -> ()

let originate node body = if Flood.originate node.flood body then note_flood node body

(* The defined ancestor ids, nearest first, for our tree_construct. *)
let defined_ancestors node =
  let t2 = 2 * node.p.Params.t in
  let rec collect i acc =
    if i > t2 || i > node.level || node.ancestors.(i) = -1 then List.rev acc
    else collect (i + 1) (node.ancestors.(i) :: acc)
  in
  collect 1 []

(* Index of [v] in the ancestor array within [0, bound], or None. *)
let ancestor_index node ~bound v =
  let rec go i =
    if i > bound then None
    else if node.ancestors.(i) = v then Some i
    else go (i + 1)
  in
  go 0

(* Smallest index whose ancestor is the root or a seen critical failure
   (the fragment boundary), within [0, 2t]. *)
let boundary_index node =
  let t2 = 2 * node.p.Params.t in
  let rec go j =
    if j > t2 then None
    else
      let a = node.ancestors.(j) in
      if a = -1 then None
      else if a = Ftagg_graph.Graph.root || Hashtbl.mem node.crit a then Some j
      else go (j + 1)
  in
  go 0

let handle_activation node ~rr ~inbox ~out =
  match
    List.find_opt (function _, Message.Tree_construct _ -> true | _ -> false) inbox
  with
  | Some (sender, Message.Tree_construct { level = sender_level; ancestors = sanc })
    when sender_level + 1 <= Params.cd node.p ->
    (* The model guarantees post-failure diameter <= cd, so levels beyond
       cd cannot arise; the guard keeps adversarial tests from driving the
       phase arithmetic out of range. *)
    node.activated <- true;
    node.level <- sender_level + 1;
    node.max_level <- node.level;
    node.parent <- sender;
    let t2 = 2 * node.p.Params.t in
    if t2 >= 1 then begin
      node.ancestors.(1) <- sender;
      List.iteri (fun k a -> if k + 2 <= t2 then node.ancestors.(k + 2) <- a) sanc
    end;
    node.tc_send_round <- rr + 1;
    node.agg_action <- agg_action_round node.p ~level:node.level;
    node.spec_action <-
      spec_action_round node.p ~ablation:node.ablation ~is_root:false ~level:node.level;
    out := Message.Ack { parent = sender } :: !out
  | _ -> ()

(* Witness determinations (§4.3 / Algorithm 2, selection phase). *)
let make_determinations node =
  let t = node.p.Params.t in
  let t2 = 2 * t in
  let j_opt = boundary_index node in
  let j_bound = match j_opt with Some j -> j | None -> t2 in
  Hashtbl.iter
    (fun source _ ->
      match ancestor_index node ~bound:t2 source with
      | Some i when i <= t && i <= j_bound ->
        (* I am a witness of [source]. *)
        let upper = j_bound in
        let dominated_by_k =
          let rec scan k =
            if k > upper then false
            else if node.ancestors.(k) <> -1 && Hashtbl.mem node.psum_sources node.ancestors.(k)
            then true
            else scan (k + 1)
          in
          scan (i + 1)
        in
        let determination =
          match j_opt with
          | None -> Message.Dominated source
          | Some _ -> if dominated_by_k then Message.Dominated source else Message.Compulsory source
        in
        originate node determination
      | _ -> ())
    node.psum_sources

let compute_output node =
  if node.abort_seen then Aborted
  else begin
    let caaf = node.p.Params.caaf in
    let acc = ref caaf.Caaf.identity in
    let selected = ref [] in
    Hashtbl.iter
      (fun source psum ->
        let keep =
          match node.ablation with
          | No_witnesses -> true
          | Full | No_speculation -> Hashtbl.mem node.compulsory source
        in
        if keep then begin
          acc := caaf.Caaf.combine !acc psum;
          selected := source :: !selected
        end)
      node.psum_sources;
    node.selected <- !selected;
    Value !acc
  end

(* Hot-path helpers: [step] runs for every node every round, so the
   per-round intake loops and bit folds are top-level recursive functions
   rather than closures (a closure here is one allocation per node per
   round). *)
let rec flood_intake node = function
  | [] -> ()
  | (_, body) :: tl ->
    if Message.is_flood body then
      if Flood.receive node.flood body then note_flood node body;
    flood_intake node tl

let rec p2p_intake node = function
  | [] -> ()
  | (sender, body) :: tl ->
    (match body with
    | Message.Ack { parent } when parent = node.me ->
      node.children <- sender :: node.children
    | Message.Aggregation { psum; max_level } when List.mem sender node.children ->
      Hashtbl.replace node.child_psums sender (psum, max_level)
    | Message.Flooded_psum _ when sender = node.parent -> node.parent_flood_ever <- true
    | _ -> ());
    p2p_intake node tl

let rec bits_of p acc = function
  | [] -> acc
  | b :: tl -> bits_of p (acc + Message.bits p b) tl

(* Telemetry: mark which phase window this execution round falls in.
   [Span.phase] is range-based (switch-on-change), not enter-on-round-1:
   Tradeoff activates non-root executions mid-window, so the first [rr]
   a node sees here can be any round of any phase. *)
let span_phase node ~rr =
  if Ftagg_obs.Span.active () then begin
    let cd = Params.cd node.p in
    let name =
      if rr <= (2 * cd) + 1 then "agg/tree"
      else if rr <= (4 * cd) + 2 then "agg/aggregate"
      else if rr <= (6 * cd) + 3 then "agg/flood"
      else "agg/witness"
    in
    Ftagg_obs.Span.phase ~node:node.me name
  end

let step node ~rr ~inbox =
  let p = node.p in
  let is_root = node.me = Ftagg_graph.Graph.root in
  span_phase node ~rr;
  if node.abort_seen then begin
    (* Aborted: keep forwarding only the abort symbol. *)
    let saw_new_abort =
      List.exists
        (fun (_, body) -> body = Message.Agg_abort && Flood.receive node.flood body)
        inbox
    in
    ignore saw_new_abort;
    let out = Flood.drain node.flood in
    let out = List.filter (fun b -> b = Message.Agg_abort) out in
    List.iter (fun b -> node.sent_bits <- node.sent_bits + Message.bits p b) out;
    if rr = node.final_round then node.output <- Some Aborted;
    out
  end
  else if
    (* Quiescent round: nothing arrived, nothing queued, and none of this
       node's scheduled action rounds (all cached, -1 when unscheduled) is
       due.  Everything below is then a no-op producing [], so return
       immediately — this is the common case for most nodes most rounds. *)
    inbox == []
    && rr <> node.tc_send_round
    && rr <> node.agg_action
    && rr <> node.spec_action
    && rr <> node.sel_round
    && rr <> node.final_round
    && not (Flood.pending node.flood)
  then []
  else begin
    let cd = Params.cd p in
    let out = ref [] in
    (* 1. Flood intake: forward first receipts, record side information. *)
    flood_intake node inbox;
    (* 2. Point-to-point intake. *)
    p2p_intake node inbox;
    (* 3. Phase actions. *)
    if (not node.activated) && rr <= (2 * cd) + 1 then handle_activation node ~rr ~inbox ~out;
    if node.activated then begin
      (* Tree construction: send our tree_construct one round after ack. *)
      if rr = node.tc_send_round then
        out :=
          Message.Tree_construct { level = node.level; ancestors = defined_ancestors node }
          :: !out;
      (* Aggregation: act in round cd − level + 1 of the phase. *)
      if rr = node.agg_action then begin
        List.iter
          (fun child ->
            match Hashtbl.find_opt node.child_psums child with
            | Some (cpsum, cmax) ->
              node.psum <- p.Params.caaf.Caaf.combine node.psum cpsum;
              node.max_level <- max node.max_level cmax
            | None -> originate node (Message.Critical_failure child))
          node.children;
        out := Message.Aggregation { psum = node.psum; max_level = node.max_level } :: !out
      end;
      (* Speculative flooding: root in phase round 1; level l in phase
         round l+1 iff nothing flooded arrived from the parent this round
         (the No_speculation ablation holds non-root nodes back a full
         flooding round to be sure the parent's flood is really absent). *)
      if rr = node.spec_action then begin
        let parent_flooded =
          match node.ablation with
          | No_speculation -> node.parent_flood_ever
          | Full | No_witnesses ->
            (* The paper's "in that round" check.  Sound because a flood
               from any source reaches a level-l node no earlier than phase
               round l+1, so a live parent necessarily broadcast a flooded
               partial sum in phase round l — either its own or its first
               receipt. *)
            List.exists
              (fun (sender, body) ->
                sender = node.parent
                && match body with Message.Flooded_psum _ -> true | _ -> false)
              inbox
        in
        if is_root || not parent_flooded then
          originate node (Message.Flooded_psum { source = node.me; psum = node.psum })
      end;
      (* Selection: witnesses flood determinations in phase round 1. *)
      if rr = node.sel_round && node.ablation <> No_witnesses then make_determinations node
    end;
    (* 4. Drain floods queued this round. *)
    let outgoing = !out @ Flood.drain node.flood in
    (* 5. Budget enforcement (§4): flood the abort symbol at the threshold. *)
    let cost = bits_of p 0 outgoing in
    let outgoing =
      if node.sent_bits + cost > Params.agg_bit_budget p then begin
        node.abort_seen <- true;
        ignore (Flood.originate node.flood Message.Agg_abort);
        ignore (Flood.drain node.flood);
        let abort_only = [ Message.Agg_abort ] in
        node.sent_bits <-
          node.sent_bits + List.fold_left (fun a b -> a + Message.bits p b) 0 abort_only;
        abort_only
      end
      else begin
        node.sent_bits <- node.sent_bits + cost;
        outgoing
      end
    in
    if rr = node.final_round then node.output <- Some (compute_output node);
    outgoing
  end

let root_result node =
  match node.output with
  | Some r -> r
  | None -> invalid_arg "Agg.root_result: execution not finished"

let activated node = node.activated
let level node = node.level
let parent node = node.parent
let children node = node.children
let ancestors node = Array.copy node.ancestors
let max_level node = node.max_level
let psum node = node.psum
let crit_seen node = Hashtbl.fold (fun v () acc -> v :: acc) node.crit []
let selected_sources node = node.selected
let aborted node = node.abort_seen
