module IS = Set.Make (Int)

type t = {
  n : int;
  adj : IS.t array;  (* adjacency sets; removed nodes have no entry in [present] *)
  present : bool array;
}

let root = 0

let of_iter ~n iter =
  if n <= 0 then invalid_arg "Graph.of_iter: n must be positive";
  let adj = Array.make n IS.empty in
  iter (fun u v ->
      if u < 0 || u >= n || v < 0 || v >= n then
        invalid_arg "Graph.of_iter: endpoint out of range";
      if u = v then invalid_arg "Graph.of_iter: self-loop";
      adj.(u) <- IS.add v adj.(u);
      adj.(v) <- IS.add u adj.(v));
  { n; adj; present = Array.make n true }

let of_edges ~n edges =
  if n <= 0 then invalid_arg "Graph.of_edges: n must be positive";
  let adj = Array.make n IS.empty in
  List.iter
    (fun (u, v) ->
      if u < 0 || u >= n || v < 0 || v >= n then
        invalid_arg "Graph.of_edges: endpoint out of range";
      if u = v then invalid_arg "Graph.of_edges: self-loop";
      adj.(u) <- IS.add v adj.(u);
      adj.(v) <- IS.add u adj.(v))
    edges;
  { n; adj; present = Array.make n true }

let n g = g.n

let mem g u = u >= 0 && u < g.n && g.present.(u)

let neighbors g u =
  if not (mem g u) then []
  else IS.elements (IS.filter (fun v -> g.present.(v)) g.adj.(u))

let degree g u = List.length (neighbors g u)

let has_edge g u v = mem g u && mem g v && IS.mem v g.adj.(u)

let iter_edges g f =
  for u = 0 to g.n - 1 do
    if g.present.(u) then
      IS.iter (fun v -> if v > u && g.present.(v) then f u v) g.adj.(u)
  done

let fold_edges f g init =
  let acc = ref init in
  iter_edges g (fun u v -> acc := f u v !acc);
  !acc

let edges g =
  let acc = ref [] in
  for u = g.n - 1 downto 0 do
    if g.present.(u) then
      IS.iter (fun v -> if v > u && g.present.(v) then acc := (u, v) :: !acc) g.adj.(u)
  done;
  !acc

let num_edges g = fold_edges (fun _ _ acc -> acc + 1) g 0

let fold_nodes f g init =
  let acc = ref init in
  for u = 0 to g.n - 1 do
    if g.present.(u) then acc := f u !acc
  done;
  !acc

let remove_nodes g nodes =
  let present = Array.copy g.present in
  List.iter
    (fun u ->
      if u >= 0 && u < g.n then present.(u) <- false)
    nodes;
  { g with present }

module Csr = struct
  type t = {
    nodes : int;
    offsets : int array;
    targets : int array;
  }

  (* Rows follow [neighbors] exactly: absent nodes get empty rows, absent
     neighbours are dropped, and each row is sorted ascending (the order
     [IS.elements] produces).  The engine's per-round iteration order — and
     hence its PRNG stream under lossy delivery — is therefore identical to
     what the list-based view gives. *)
  let of_graph g =
    let n = g.n in
    let offsets = Array.make (n + 1) 0 in
    for u = 0 to n - 1 do
      let deg =
        if not g.present.(u) then 0
        else IS.fold (fun v acc -> if g.present.(v) then acc + 1 else acc) g.adj.(u) 0
      in
      offsets.(u + 1) <- offsets.(u) + deg
    done;
    let targets = Array.make offsets.(n) 0 in
    let pos = ref 0 in
    for u = 0 to n - 1 do
      if g.present.(u) then
        IS.iter
          (fun v ->
            if g.present.(v) then begin
              targets.(!pos) <- v;
              incr pos
            end)
          g.adj.(u)
    done;
    { nodes = n; offsets; targets }

  let nodes c = c.nodes
  let degree c u = c.offsets.(u + 1) - c.offsets.(u)
  let max_degree c =
    let m = ref 0 in
    for u = 0 to c.nodes - 1 do
      if degree c u > !m then m := degree c u
    done;
    !m

  let iter_neighbors c u f =
    for i = c.offsets.(u) to c.offsets.(u + 1) - 1 do
      f c.targets.(i)
    done

  let fold_neighbors c u f init =
    let acc = ref init in
    for i = c.offsets.(u) to c.offsets.(u + 1) - 1 do
      acc := f !acc c.targets.(i)
    done;
    !acc

  let neighbors_list c u =
    List.init (degree c u) (fun i -> c.targets.(c.offsets.(u) + i))
end

let csr = Csr.of_graph

let pp ppf g =
  Format.fprintf ppf "@[<v>graph n=%d m=%d@," g.n (num_edges g);
  List.iter (fun (u, v) -> Format.fprintf ppf "%d -- %d@," u v) (edges g);
  Format.fprintf ppf "@]"

let to_dot ?(name = "g") g =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "graph %s {\n" name);
  Buffer.add_string buf "  0 [shape=doublecircle];\n";
  List.iter (fun (u, v) -> Buffer.add_string buf (Printf.sprintf "  %d -- %d;\n" u v)) (edges g);
  Buffer.add_string buf "}\n";
  Buffer.contents buf
