(** Immutable undirected graphs over integer node ids [0 .. n-1].

    Node [0] is, by convention throughout the library, the aggregation
    root (the base station / gateway of the paper's motivating systems). *)

type t

val root : int
(** The distinguished root id (always [0]). *)

val of_edges : n:int -> (int * int) list -> t
(** [of_edges ~n edges] builds a graph on [n] nodes.  Self-loops are
    rejected; duplicate edges are collapsed.  Raises [Invalid_argument]
    on out-of-range endpoints. *)

val of_iter : n:int -> ((int -> int -> unit) -> unit) -> t
(** [of_iter ~n iter] builds a graph from a streamed edge emission:
    [iter emit] must call [emit u v] once per edge.  Same validation and
    dedup as {!of_edges} with no intermediate list — the shared edge
    source of [Gen.iter_edges] and [Scale.Bigraph]. *)

val n : t -> int
(** Number of nodes. *)

val num_edges : t -> int

val neighbors : t -> int -> int list
(** Sorted adjacency list. *)

val degree : t -> int -> int

val has_edge : t -> int -> int -> bool

val iter_edges : t -> (int -> int -> unit) -> unit
(** [iter_edges g f] calls [f u v] once per present edge, [u < v],
    ascending by [u] then [v].  Allocation-free replacement for the
    deprecated {!edges}. *)

val fold_edges : (int -> int -> 'a -> 'a) -> t -> 'a -> 'a
(** Fold over present edges in {!iter_edges} order. *)

val edges : t -> (int * int) list
[@@ocaml.deprecated "use Graph.iter_edges / Graph.fold_edges (the list path materialises every edge)"]
(** Every edge once, as [(u, v)] with [u < v]. *)

val fold_nodes : (int -> 'a -> 'a) -> t -> 'a -> 'a

val remove_nodes : t -> int list -> t
(** Graph with the given nodes (and their incident edges) deleted.  Ids
    are preserved; removed nodes become isolated and are excluded from
    [neighbors]/[edges].  Used to model crashed nodes. *)

val mem : t -> int -> bool
(** Whether the node is present (not removed). *)

(** {2 Flat adjacency (CSR) view}

    The simulation hot path iterates adjacency once per node per round;
    the set-backed {!neighbors} allocates a filtered set plus a list on
    every call.  {!Csr} is a compressed-sparse-row snapshot — two flat
    [int array]s — taken once per run and read with zero allocation. *)

module Csr : sig
  type graph := t

  type t = {
    nodes : int;
    offsets : int array;
        (** [nodes + 1] entries; node [u]'s neighbours live at indices
            [offsets.(u) .. offsets.(u+1) - 1] of [targets]. *)
    targets : int array;
  }
  (** The arrays are exposed so hot loops can index them directly; treat
      them as read-only. *)

  val of_graph : graph -> t
  (** Snapshot the present subgraph.  Row [u] lists exactly
      [neighbors g u] in the same (ascending) order; removed nodes get
      empty rows. *)

  val nodes : t -> int
  val degree : t -> int -> int
  val max_degree : t -> int
  val iter_neighbors : t -> int -> (int -> unit) -> unit
  val fold_neighbors : t -> int -> ('a -> int -> 'a) -> 'a -> 'a

  val neighbors_list : t -> int -> int list
  (** Same list [neighbors] returns; for tests and slow paths. *)
end

val csr : t -> Csr.t
(** Alias for {!Csr.of_graph}. *)

val pp : Format.formatter -> t -> unit

val to_dot : ?name:string -> t -> string
(** Graphviz rendering of the present subgraph; the root is drawn as a
    double circle. *)
