(** Topology generators.

    The paper's [FT₀] takes a maximum over all connected topologies; the
    benchmark harness instead sweeps representative families.  All
    generators return connected graphs with {!Graph.root} (node 0) placed
    at a natural "base station" position (end of a path, corner of a grid,
    hub of a star, root of a tree). *)

type family =
  | Path
  | Ring
  | Grid  (** near-square 2-D grid *)
  | Star
  | Binary_tree
  | Complete
  | Random of float
      (** Erdős–Rényi with the given edge probability, plus a random
          spanning tree to guarantee connectivity *)
  | Caterpillar
      (** a spine path with a leaf hanging off every spine node — a
          worst-case-ish tree for blocked partial sums *)
  | Lollipop
      (** a clique on ~n/2 nodes attached to a path of ~n/2 nodes, root at
          the far end of the path *)
  | Torus  (** near-square 2-D torus (wrap-around grid) *)
  | Random_regular of int
      (** random [k]-regular-ish multigraph simplified and patched to
          connectivity — an expander-like topology ([k >= 3]) *)

val build : family -> n:int -> seed:int -> Graph.t
(** Generate a member of the family with [n] nodes.  [seed] only matters
    for [Random] and [Random_regular].  Raises [Invalid_argument] for [n]
    too small for the family (all families need [n >= 2]). *)

val iter_edges : family -> n:int -> seed:int -> (int -> int -> unit) -> unit
(** [iter_edges family ~n ~seed emit] streams the family's edges, calling
    [emit u v] once per generated edge (duplicates possible for the random
    families; sinks must dedupe, as {!Graph.of_iter} and [Scale.Bigraph]
    both do).  This is the {e single} edge source: [build family ~n ~seed]
    is exactly [Graph.of_iter ~n (iter_edges family ~n ~seed)], so a
    streamed CSR built from the same emission is identical to the
    materialised graph's adjacency.  Never allocates an edge list. *)

val family_name : family -> string

val all_families : seed:int -> (string * family) list
(** The deterministic sweep used by tests and benches. *)

val path : int -> Graph.t
val ring : int -> Graph.t
val grid : int -> Graph.t
val star : int -> Graph.t
val binary_tree : int -> Graph.t
val complete : int -> Graph.t
val caterpillar : int -> Graph.t
val lollipop : int -> Graph.t
val torus : int -> Graph.t
val random_connected : n:int -> p:float -> seed:int -> Graph.t

val random_regular : n:int -> degree:int -> seed:int -> Graph.t
(** Pairing-model random regular graph, simplified (self-loops and
    multi-edges dropped) and patched with a ring to guarantee
    connectivity; degrees are therefore approximately [degree].
    Requires [n > degree >= 3]. *)

val hypercube : int -> Graph.t
(** [hypercube dims] is the [2^dims]-node boolean hypercube
    ([1 <= dims <= 16]); node 0 (the root) is the all-zero corner. *)

val two_tier : clusters:int -> cluster_size:int -> Graph.t
(** A WSN-style hierarchy: the root connects to [clusters] cluster heads;
    each head owns [cluster_size] member leaves and heads are chained so
    that head failures still leave detours.  [n = 1 + clusters·(1 +
    cluster_size)]. *)
