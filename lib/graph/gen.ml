type family =
  | Path
  | Ring
  | Grid
  | Star
  | Binary_tree
  | Complete
  | Random of float
  | Caterpillar
  | Lollipop
  | Torus
  | Random_regular of int

let check_n name n min_n =
  if n < min_n then invalid_arg (Printf.sprintf "Gen.%s: need n >= %d" name min_n)

(* Every family is defined as an edge *emitter*: a function that calls
   [emit u v] once per edge.  [Graph.of_iter] consumes the emission for
   the small-graph constructors below, and [Scale.Bigraph] streams the
   very same emission into a packed CSR — one edge source, two sinks,
   and no intermediate [(int * int) list] is ever materialised. *)

let iter_path n emit =
  check_n "path" n 2;
  for i = 0 to n - 2 do
    emit i (i + 1)
  done

let iter_ring n emit =
  check_n "ring" n 3;
  emit (n - 1) 0;
  for i = 0 to n - 2 do
    emit i (i + 1)
  done

let iter_grid n emit =
  check_n "grid" n 2;
  (* Near-square: w columns, enough full/partial rows to reach n nodes.
     Node k sits at (row = k / w, col = k mod w); root 0 is the corner. *)
  let w = max 1 (int_of_float (sqrt (float_of_int n))) in
  for k = 0 to n - 1 do
    let row = k / w and col = k mod w in
    if col + 1 < w && k + 1 < n then emit k (k + 1);
    if row >= 1 then emit (k - w) k
  done

let iter_star n emit =
  check_n "star" n 2;
  for i = 1 to n - 1 do
    emit 0 i
  done

let iter_binary_tree n emit =
  check_n "binary_tree" n 2;
  for i = 1 to n - 1 do
    emit ((i - 1) / 2) i
  done

let iter_complete n emit =
  check_n "complete" n 2;
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      emit u v
    done
  done

let iter_caterpillar n emit =
  check_n "caterpillar" n 2;
  (* Spine nodes 0 .. s-1, leaves s .. n-1; leaf j hangs off spine node
     (j - s) when that spine node exists. *)
  let s = (n + 1) / 2 in
  for i = 0 to s - 2 do
    emit i (i + 1)
  done;
  for j = 0 to n - s - 1 do
    emit (j mod s) (s + j)
  done

let iter_lollipop n emit =
  check_n "lollipop" n 4;
  let k = n / 2 in
  (* Path part: 0 .. n-k-1 (root at 0); clique part: n-k .. n-1, attached
     to the path's far end. *)
  for i = 0 to n - k - 2 do
    emit i (i + 1)
  done;
  emit (n - k - 1) (n - k);
  for u = n - k to n - 1 do
    for v = u + 1 to n - 1 do
      emit u v
    done
  done

let iter_torus n emit =
  check_n "torus" n 9;
  (* Near-square w x h torus with a possibly short last row; wrap edges
     are added only across full rows/columns so the graph stays simple. *)
  let w = max 3 (int_of_float (sqrt (float_of_int n))) in
  let h = (n + w - 1) / w in
  let id r c = (r * w) + c in
  for k = 0 to n - 1 do
    let r = k / w and c = k mod w in
    let right = if c + 1 < w then id r ((c + 1) mod w) else id r 0 in
    if right < n && right <> k then emit k right;
    if c = w - 1 && id r 0 < n then emit k (id r 0);
    let down = id ((r + 1) mod h) c in
    if r + 1 < h && down < n then emit k down;
    if r = h - 1 && id 0 c < n && h > 2 then emit k (id 0 c)
  done

let iter_hypercube dims emit =
  if dims < 1 || dims > 16 then invalid_arg "Gen.hypercube: need 1 <= dims <= 16";
  let n = 1 lsl dims in
  for u = 0 to n - 1 do
    for b = 0 to dims - 1 do
      let v = u lxor (1 lsl b) in
      if v > u then emit u v
    done
  done

let iter_two_tier ~clusters ~cluster_size emit =
  if clusters < 1 || cluster_size < 1 then
    invalid_arg "Gen.two_tier: need clusters >= 1 and cluster_size >= 1";
  let head k = 1 + (k * (1 + cluster_size)) in
  let member k j = head k + 1 + j in
  for k = 0 to clusters - 1 do
    emit Graph.root (head k);
    if k + 1 < clusters then emit (head k) (head (k + 1));
    for j = 0 to cluster_size - 1 do
      emit (head k) (member k j);
      (* a member-level detour so a dead head does not orphan its whole
         cluster *)
      if j = 0 && k + 1 < clusters then emit (member k 0) (head (k + 1))
    done
  done

let iter_random_regular ~n ~degree ~seed emit =
  if degree < 3 then invalid_arg "Gen.random_regular: need degree >= 3";
  if n <= degree then invalid_arg "Gen.random_regular: need n > degree";
  let g = Ftagg_util.Prng.create seed in
  (* Pairing model: [degree] stubs per node, random perfect matching,
     simplified.  A ring is overlaid to guarantee connectivity. *)
  let stubs = Array.concat (List.init degree (fun _ -> Array.init n (fun i -> i))) in
  Ftagg_util.Prng.shuffle g stubs;
  emit (n - 1) 0;
  for k = 0 to n - 2 do
    emit k (k + 1)
  done;
  let m = Array.length stubs in
  let i = ref 0 in
  while !i + 1 < m do
    let u = stubs.(!i) and v = stubs.(!i + 1) in
    if u <> v then emit (min u v) (max u v);
    i := !i + 2
  done

let iter_random_connected ~n ~p ~seed emit =
  check_n "random_connected" n 2;
  if p < 0.0 || p > 1.0 then invalid_arg "Gen.random_connected: p out of [0,1]";
  let g = Ftagg_util.Prng.create seed in
  (* Random spanning tree (uniform attachment order) guarantees
     connectivity; ER edges are overlaid on top. *)
  let order = Array.init n (fun i -> i) in
  (* Keep the root first so it stays a "natural" position. *)
  let tail = Array.sub order 1 (n - 1) in
  Ftagg_util.Prng.shuffle g tail;
  Array.blit tail 0 order 1 (n - 1);
  for i = 1 to n - 1 do
    let parent = order.(Ftagg_util.Prng.int g i) in
    emit parent order.(i)
  done;
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      if Ftagg_util.Prng.float g 1.0 < p then emit u v
    done
  done

let iter_edges family ~n ~seed emit =
  match family with
  | Path -> iter_path n emit
  | Ring -> iter_ring n emit
  | Grid -> iter_grid n emit
  | Star -> iter_star n emit
  | Binary_tree -> iter_binary_tree n emit
  | Complete -> iter_complete n emit
  | Random p -> iter_random_connected ~n ~p ~seed emit
  | Caterpillar -> iter_caterpillar n emit
  | Lollipop -> iter_lollipop n emit
  | Torus -> iter_torus n emit
  | Random_regular k -> iter_random_regular ~n ~degree:k ~seed emit

let build family ~n ~seed = Graph.of_iter ~n (iter_edges family ~n ~seed)

let path n = Graph.of_iter ~n (iter_path n)
let ring n = Graph.of_iter ~n (iter_ring n)
let grid n = Graph.of_iter ~n (iter_grid n)
let star n = Graph.of_iter ~n (iter_star n)
let binary_tree n = Graph.of_iter ~n (iter_binary_tree n)
let complete n = Graph.of_iter ~n (iter_complete n)
let caterpillar n = Graph.of_iter ~n (iter_caterpillar n)
let lollipop n = Graph.of_iter ~n (iter_lollipop n)
let torus n = Graph.of_iter ~n (iter_torus n)

let hypercube dims =
  if dims < 1 || dims > 16 then invalid_arg "Gen.hypercube: need 1 <= dims <= 16";
  Graph.of_iter ~n:(1 lsl dims) (iter_hypercube dims)

let two_tier ~clusters ~cluster_size =
  if clusters < 1 || cluster_size < 1 then
    invalid_arg "Gen.two_tier: need clusters >= 1 and cluster_size >= 1";
  let n = 1 + (clusters * (1 + cluster_size)) in
  Graph.of_iter ~n (iter_two_tier ~clusters ~cluster_size)

let random_regular ~n ~degree ~seed =
  if degree < 3 then invalid_arg "Gen.random_regular: need degree >= 3";
  if n <= degree then invalid_arg "Gen.random_regular: need n > degree";
  Graph.of_iter ~n (iter_random_regular ~n ~degree ~seed)

let random_connected ~n ~p ~seed = Graph.of_iter ~n (iter_random_connected ~n ~p ~seed)

let family_name = function
  | Path -> "path"
  | Ring -> "ring"
  | Grid -> "grid"
  | Star -> "star"
  | Binary_tree -> "binary_tree"
  | Complete -> "complete"
  | Random p -> Printf.sprintf "random(p=%.2f)" p
  | Caterpillar -> "caterpillar"
  | Lollipop -> "lollipop"
  | Torus -> "torus"
  | Random_regular k -> Printf.sprintf "random_regular(%d)" k

let all_families ~seed:_ =
  let fams =
    [
      Path; Ring; Grid; Star; Binary_tree; Complete; Random 0.05; Caterpillar;
      Lollipop; Torus; Random_regular 4;
    ]
  in
  List.map (fun f -> (family_name f, f)) fams
