(* The reproduction harness: one experiment per figure/table of the paper
   (see DESIGN.md's per-experiment index), plus bechamel wall-clock
   micro-benchmarks.

     dune exec bench/main.exe            # run everything
     dune exec bench/main.exe -- e1 e8   # run selected experiments

   Measured numbers come from the simulator under the paper's bit
   accounting; "bound" columns evaluate the theorem formulas with all
   constants set to 1, so shapes and ratios (not absolute values) are the
   comparison targets.  EXPERIMENTS.md records paper-vs-measured. *)

open Ftagg

let header title =
  Printf.printf "\n================================================================\n";
  Printf.printf "%s\n" title;
  Printf.printf "================================================================\n\n"

let mean xs = List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let seeds = [ 1; 2; 3; 4; 5; 6; 7; 8 ]

(* ------------------------------------------------------------------ *)
(* E1 — Figure 1: CC vs TC for the three protocols and the two bounds  *)
(* ------------------------------------------------------------------ *)

let e1 () =
  header
    "E1 | Figure 1 — communication-time tradeoff for SUM\n\
     brute-force (TC=O(1)), folklore (TC=O(f)), Algorithm 1 (tunable b)";
  let n = 64 in
  let g = Gen.grid n in
  let inputs = Array.make n 3 in
  let params = Params.make ~c:2 ~graph:g ~inputs () in
  let d = params.Params.d in
  let f = 16 in
  let avg run = mean (Sweep.map (fun s -> float_of_int (run s)) seeds) in
  let brute_cc =
    avg (fun s ->
        let failures =
          Failure.random g ~rng:(Prng.create s) ~budget:f ~max_round:(4 * d)
        in
        Metrics.cc (Run.brute_force ~graph:g ~failures ~params ~seed:s ()).Run.common.Run.metrics)
  in
  let folklore_cc, folklore_fl =
    let ccs, fls =
      List.split
        (Sweep.map
           (fun s ->
             let mode = Folklore.Retry (f + 1) in
             let failures =
               Failure.random g ~rng:(Prng.create s) ~budget:f
                 ~max_round:(Folklore.duration params mode)
             in
             let o = Run.folklore ~graph:g ~failures ~params ~mode ~seed:s () in
             ( float_of_int (Metrics.cc o.Run.common.Run.metrics),
               float_of_int o.Run.common.Run.flooding_rounds ))
           seeds)
    in
    (mean ccs, mean fls)
  in
  Printf.printf "N = %d (grid, d = %d), f = %d, CC = bits at the busiest node\n\n" n d f;
  Printf.printf "baseline        measured CC   TC (flooding rounds)   paper bound (x const)\n";
  Printf.printf "brute-force     %11.0f   %20s   N*logN = %.0f\n" brute_cc "O(1) ~ 4"
    (Bounds.brute_force_cc ~n);
  Printf.printf "folklore        %11.0f   %20.0f   f*logN = %.0f\n\n" folklore_cc folklore_fl
    (Bounds.folklore_cc ~n ~f);
  let table =
    Table.create ~title:"Algorithm 1 (this paper): CC decreases as b grows"
      [
        ("b", Table.Right);
        ("measured CC", Table.Right);
        ("measured TC", Table.Right);
        ("Thm1 upper", Table.Right);
        ("Thm2 lower", Table.Right);
        ("meas/upper", Table.Right);
      ]
  in
  List.iter
    (fun b ->
      let ccs, fls =
        List.split
          (Sweep.map
             (fun s ->
               let failures =
                 Failure.random g ~rng:(Prng.create s) ~budget:f ~max_round:(b * d)
               in
               let o = Run.tradeoff ~graph:g ~failures ~params ~b ~f ~seed:s () in
               ( float_of_int (Metrics.cc o.Run.common.Run.metrics),
                 float_of_int o.Run.common.Run.flooding_rounds ))
             seeds)
      in
      let cc = mean ccs in
      let up = Bounds.sum_upper_bound ~n ~f ~b in
      Table.add_row table
        [
          string_of_int b;
          Printf.sprintf "%.0f" cc;
          Printf.sprintf "%.0f" (mean fls);
          Printf.sprintf "%.0f" up;
          Printf.sprintf "%.1f" (Bounds.sum_lower_bound ~n ~f ~b);
          Printf.sprintf "%.1f" (cc /. up);
        ])
    [ 42; 63; 84; 126; 168; 252; 336 ];
  Table.print table;
  Printf.printf
    "Shape check (paper): brute-force CC >> folklore CC at its own TC; Algorithm 1's\n\
     CC falls roughly like f/b*log^2(N) as b grows and undercuts brute force everywhere.\n"

(* ------------------------------------------------------------------ *)
(* E2 — Table 2: the AGG/VERI guarantee matrix                         *)
(* ------------------------------------------------------------------ *)

let e2 () =
  header "E2 | Table 2 — guarantees of AGG and VERI in the three scenarios";
  let t = 4 in
  let trials = 25 in
  let tally name runs =
    let correct = ref 0
    and abort = ref 0
    and veri_true = ref 0
    and veri_false = ref 0
    and used = ref 0
    and violations = ref 0 in
    List.iter
      (fun ((o : Run.pair_outcome), expected) ->
        if expected o then begin
          incr used;
          (match o.Run.verdict.Pair.result with
          | Agg.Aborted -> incr abort
          | Agg.Value _ -> if o.Run.common.Run.correct then incr correct);
          if o.Run.verdict.Pair.veri_ok then incr veri_true else incr veri_false;
          let ok =
            if o.Run.edge_failures <= t then
              o.Run.common.Run.correct && o.Run.verdict.Pair.veri_ok
              && o.Run.verdict.Pair.result <> Agg.Aborted
            else if not o.Run.lfc then o.Run.common.Run.correct
            else not o.Run.verdict.Pair.veri_ok
          in
          if not ok then incr violations
        end)
      runs;
    (name, !used, !correct, !abort, !veri_true, !veri_false, !violations)
  in
  let scenario1 =
    Sweep.map_seeds ~seeds:(List.init trials Fun.id) (fun s ->
        let g = Gen.grid 36 in
        let params = Params.make ~c:2 ~t ~graph:g ~inputs:(Array.make 36 2) () in
        let failures = Failure.random g ~rng:(Prng.create s) ~budget:t ~max_round:400 in
        ( Run.pair ~graph:g ~failures ~params ~seed:s (),
          fun (o : Run.pair_outcome) -> o.Run.edge_failures <= t ))
  in
  let scenario2 =
    Sweep.map_seeds ~seeds:(List.init trials Fun.id) (fun s ->
        let g = Gen.grid 36 in
        let params = Params.make ~c:2 ~t ~graph:g ~inputs:(Array.make 36 2) () in
        let failures = Failure.burst g ~rng:(Prng.create (s + 50)) ~budget:(4 * t) ~round:60 in
        ( Run.pair ~graph:g ~failures ~params ~seed:s (),
          fun (o : Run.pair_outcome) -> o.Run.edge_failures > t && not o.Run.lfc ))
  in
  let scenario3 =
    Sweep.map_seeds ~seeds:(List.init trials Fun.id) (fun s ->
        let g = Gen.ring 36 in
        let params = Params.make ~c:2 ~t ~graph:g ~inputs:(Array.make 36 2) () in
        let len = t + (s mod (t + 3)) in
        let failures = Failure.chain ~n:36 ~first:1 ~len ~round:(60 + (s * 3)) in
        ( Run.pair ~graph:g ~failures ~params ~seed:s (),
          fun (o : Run.pair_outcome) -> o.Run.lfc ))
  in
  let table =
    Table.create
      ~title:(Printf.sprintf "AGG+VERI pairs with t = %d, %d trials per scenario" t trials)
      [
        ("scenario", Table.Left);
        ("runs", Table.Right);
        ("AGG correct", Table.Right);
        ("AGG abort", Table.Right);
        ("VERI true", Table.Right);
        ("VERI false", Table.Right);
        ("violations", Table.Right);
      ]
  in
  List.iter
    (fun (name, used, correct, abort, vt, vf, viol) ->
      Table.add_row table
        [
          name;
          string_of_int used;
          string_of_int correct;
          string_of_int abort;
          string_of_int vt;
          string_of_int vf;
          string_of_int viol;
        ])
    [
      tally "1: <= t failures (no LFC)" scenario1;
      tally "2: > t failures, no LFC" scenario2;
      tally "3: > t failures, LFC" scenario3;
    ];
  Table.print table;
  Printf.printf
    "Paper guarantees: scenario 1 -> AGG correct + VERI true; scenario 2 -> AGG correct\n\
     or abort (VERI unconstrained); scenario 3 -> VERI false.  'violations' must be 0.\n"

(* ------------------------------------------------------------------ *)
(* E3 / E4 — Theorems 3 and 6: AGG and VERI cost envelopes             *)
(* ------------------------------------------------------------------ *)

let agg_veri_costs ~which () =
  let n = 64 in
  let g = Gen.grid n in
  let inputs = Array.make n 5 in
  let title, budget_of =
    match which with
    | `Agg ->
      ( "E3 | Theorem 3 — AGG: TC <= 11c flooding rounds, CC <= (11t+14)(logN+5)",
        Params.agg_bit_budget )
    | `Veri ->
      ( "E4 | Theorem 6 — VERI: TC <= 8c flooding rounds, CC <= (5t+7)(3logN+10)",
        Params.veri_bit_budget )
  in
  header title;
  let table =
    Table.create
      [
        ("t", Table.Right);
        ("measured CC", Table.Right);
        ("theorem threshold", Table.Right);
        ("CC/threshold", Table.Right);
        ("rounds used", Table.Right);
        ("round bound", Table.Right);
      ]
  in
  List.iter
    (fun t ->
      let params = Params.make ~c:2 ~t ~graph:g ~inputs () in
      let cc =
        mean
          (Sweep.map
             (fun s ->
               let failures =
                 Failure.random g ~rng:(Prng.create (s * 7)) ~budget:t ~max_round:300
               in
               match which with
               | `Agg ->
                 let oa = Run.agg ~graph:g ~failures ~params ~seed:s () in
                 float_of_int (Metrics.cc oa.Run.common.Run.metrics)
               | `Veri ->
                 (* VERI-only cost = pair cost minus the same run's AGG *)
                 let op = Run.pair ~graph:g ~failures ~params ~seed:s () in
                 let oa = Run.agg ~graph:g ~failures ~params ~seed:s () in
                 float_of_int
                   (max 0
                      (Metrics.cc op.Run.common.Run.metrics - Metrics.cc oa.Run.common.Run.metrics)))
             seeds)
      in
      let budget = budget_of params in
      let rounds, round_bound =
        match which with
        | `Agg -> ((7 * Params.cd params) + 4, (7 * Params.cd params) + 4)
        | `Veri -> ((5 * Params.cd params) + 3, (5 * Params.cd params) + 3)
      in
      Table.add_row table
        [
          string_of_int t;
          Printf.sprintf "%.0f" cc;
          string_of_int budget;
          Printf.sprintf "%.2f" (cc /. float_of_int budget);
          string_of_int rounds;
          string_of_int round_bound;
        ])
    [ 0; 2; 4; 8; 16 ];
  Table.print table;
  Printf.printf
    "CC grows linearly in t and never exceeds the threshold (the protocols abort /\n\
     overflow at it by construction); the round count is fixed by the phase layout.\n"

let e3 () = agg_veri_costs ~which:`Agg ()
let e4 () = agg_veri_costs ~which:`Veri ()

(* ------------------------------------------------------------------ *)
(* E5 — Theorem 1: Algorithm 1's CC envelope in f and N                *)
(* ------------------------------------------------------------------ *)

let e5 () =
  header "E5 | Theorem 1 — Algorithm 1 CC = O(f/b*log^2 N + log^2 N), TC <= b";
  let b = 126 in
  let run_one ~n ~f ~s =
    let g = Gen.grid n in
    let params = Params.make ~c:2 ~graph:g ~inputs:(Array.make n 3) () in
    let failures =
      Failure.random g ~rng:(Prng.create s) ~budget:f ~max_round:(b * params.Params.d)
    in
    let o = Run.tradeoff ~graph:g ~failures ~params ~b ~f ~seed:s () in
    (float_of_int (Metrics.cc o.Run.common.Run.metrics), o.Run.common.Run.correct)
  in
  let sweep title rows run bound =
    let table =
      Table.create ~title
        [
          ("param", Table.Right);
          ("measured CC", Table.Right);
          ("Thm1 bound", Table.Right);
          ("ratio", Table.Right);
          ("all correct", Table.Right);
        ]
    in
    List.iter
      (fun v ->
        let ccs, oks = List.split (Sweep.map (fun s -> run v s) seeds) in
        let cc = mean ccs in
        let bd = bound v in
        Table.add_row table
          [
            string_of_int v;
            Printf.sprintf "%.0f" cc;
            Printf.sprintf "%.0f" bd;
            Printf.sprintf "%.1f" (cc /. bd);
            string_of_bool (List.for_all Fun.id oks);
          ])
      rows;
    Table.print table
  in
  sweep
    (Printf.sprintf "sweep f at N = 64, b = %d" b)
    [ 0; 4; 8; 16; 32 ]
    (fun f s -> run_one ~n:64 ~f ~s)
    (fun f -> Bounds.sum_upper_bound ~n:64 ~f ~b);
  sweep
    (Printf.sprintf "sweep N at f = 8, b = %d" b)
    [ 25; 49; 100; 196 ]
    (fun n s -> run_one ~n ~f:8 ~s)
    (fun n -> Bounds.sum_upper_bound ~n ~f:8 ~b);
  Printf.printf
    "The measured/bound ratio stays roughly flat across both sweeps (the implied\n\
     constant), confirming the f/b*log^2 N + log^2 N envelope; every run is correct.\n"

(* ------------------------------------------------------------------ *)
(* E6 / E7 — §7: UNIONSIZECP and the EQUALITYCP reduction              *)
(* ------------------------------------------------------------------ *)

let e6 () =
  header "E6 | Theorem 12 & [4] — UNIONSIZECP: measured CC between the two bounds";
  let table =
    Table.create
      [
        ("n", Table.Right);
        ("q", Table.Right);
        ("measured bits", Table.Right);
        ("upper n/q*logn+logq", Table.Right);
        ("lower n/q-logn", Table.Right);
        ("answers ok", Table.Right);
      ]
  in
  List.iter
    (fun (n, q) ->
      let rng = Prng.create (n + (17 * q)) in
      let runs =
        List.init 5 (fun _ ->
            let inst = Cycle_promise.random ~rng ~n ~q () in
            let o = Unionsize.solve inst in
            ( float_of_int o.Unionsize.total_bits,
              o.Unionsize.answer = Cycle_promise.union_size inst ))
      in
      let bits, oks = List.split runs in
      Table.add_row table
        [
          string_of_int n;
          string_of_int q;
          Printf.sprintf "%.0f" (mean bits);
          Printf.sprintf "%.0f" (Bounds.unionsize_upper ~n ~q);
          Printf.sprintf "%.0f" (Bounds.unionsize_lower ~n ~q);
          string_of_bool (List.for_all Fun.id oks);
        ])
    [
      (1000, 2); (1000, 8); (1000, 32); (10000, 8); (10000, 64); (10000, 512);
      (100000, 32); (100000, 1024);
    ];
  Table.print table;
  Printf.printf
    "Measured bits track the n/q*logn upper curve and sit above the n/q-logn lower\n\
     bound — the near-tight regime Theorem 12 establishes.\n"

let e7 () =
  header "E7 | Theorem 8 — EQUALITYCP <= UNIONSIZECP + O(log q) + O(log n)";
  let table =
    Table.create
      [
        ("n", Table.Right);
        ("q", Table.Right);
        ("oracle bits", Table.Right);
        ("overhead bits", Table.Right);
        ("logn+logq", Table.Right);
        ("trivial baseline", Table.Right);
        ("verdicts ok", Table.Right);
      ]
  in
  List.iter
    (fun (n, q) ->
      let rng = Prng.create (3 * (n + q)) in
      let runs =
        List.init 6 (fun i ->
            let inst =
              if i mod 2 = 0 then Cycle_promise.random ~rng ~n ~q ~force_equal:true ()
              else Cycle_promise.random ~rng ~n ~q ()
            in
            let o = Equality.solve inst in
            let triv = Equality.solve_trivial inst in
            ((o, triv), o.Equality.equal = Cycle_promise.equal inst
                        && triv.Equality.equal = Cycle_promise.equal inst))
      in
      let ok = List.for_all snd runs in
      let oracle = mean (List.map (fun ((o, _), _) -> float_of_int o.Equality.oracle_bits) runs) in
      let over = mean (List.map (fun ((o, _), _) -> float_of_int o.Equality.overhead_bits) runs) in
      let triv = mean (List.map (fun ((_, t), _) -> float_of_int t.Equality.total_bits) runs) in
      Table.add_row table
        [
          string_of_int n;
          string_of_int q;
          Printf.sprintf "%.0f" oracle;
          Printf.sprintf "%.0f" over;
          Printf.sprintf "%.0f" (Bounds.log2 (float_of_int n) +. Bounds.log2 (float_of_int q));
          Printf.sprintf "%.0f" triv;
          string_of_bool ok;
        ])
    [ (1000, 8); (10000, 16); (10000, 256); (100000, 64) ];
  Table.print table;
  Printf.printf "The reduction's own cost stays within a few log factors — Theorem 8's form.\n"

(* ------------------------------------------------------------------ *)
(* E8 — Lemma 11: rank(M) = q−1 and the implied lower bound            *)
(* ------------------------------------------------------------------ *)

let e8 () =
  header "E8 | Lemma 11 / Theorem 9 — Sperner rank certificate";
  let table =
    Table.create
      [
        ("q", Table.Right);
        ("rank(M)", Table.Right);
        ("q-1", Table.Right);
        ("rows sum 0", Table.Right);
        ("R0 >= n*log2(q/(q-1)): per-n bits", Table.Right);
      ]
  in
  List.iter
    (fun q ->
      let rank = Sperner.lemma11_rank q in
      Table.add_row table
        [
          string_of_int q;
          string_of_int rank;
          string_of_int (q - 1);
          string_of_bool (Sperner.rows_sum_to_zero (Sperner.lemma11_matrix q));
          Printf.sprintf "%.5f" (Sperner.equality_lower_bound ~n:1 ~q);
        ])
    [ 3; 4; 5; 8; 16; 32; 64; 128 ];
  Table.print table;
  Printf.printf
    "rank(M) = q-1 exactly (certified over Q by the modular rank + zero row sum),\n\
     giving R0^pri(EQUALITYCP) >= n/(q-1) — the engine of the new f/(b*log b) term.\n"

(* ------------------------------------------------------------------ *)
(* E9 — unknown f: early termination of the doubling protocol          *)
(* ------------------------------------------------------------------ *)

let e9 () =
  header "E9 | Unknown-f doubling trick — CC tracks the actual failure count";
  let n = 64 in
  let g = Gen.grid n in
  let params = Params.make ~c:2 ~graph:g ~inputs:(Array.make n 3) () in
  let table =
    Table.create
      [
        ("injected edge failures", Table.Right);
        ("accepting slot (t=2^g)", Table.Right);
        ("measured CC", Table.Right);
        ("rounds", Table.Right);
        ("all correct", Table.Right);
      ]
  in
  List.iter
    (fun budget ->
      let runs =
        Sweep.map
          (fun s ->
            let failures =
              Failure.random g ~rng:(Prng.create (s + budget)) ~budget ~max_round:400
            in
            Run.unknown_f ~graph:g ~failures ~params ~seed:s ())
          seeds
      in
      let slot o =
        match o.Run.how with
        | Unknown_f.Via_slot gx -> float_of_int gx
        | Unknown_f.Via_brute_force -> nan
      in
      Table.add_row table
        [
          string_of_int budget;
          Printf.sprintf "%.1f" (mean (List.map slot runs));
          Printf.sprintf "%.0f"
            (mean (List.map (fun o -> float_of_int (Metrics.cc o.Run.common.Run.metrics)) runs));
          Printf.sprintf "%.0f"
            (mean (List.map (fun o -> float_of_int o.Run.common.Run.rounds) runs));
          string_of_bool (List.for_all (fun o -> o.Run.common.Run.correct) runs);
        ])
    [ 0; 1; 2; 4; 8; 16 ];
  Table.print table;
  Printf.printf
    "With few actual failures the protocol accepts in an early slot: cost rises with\n\
     what actually happened, not with a worst-case f — the early-termination property.\n"

(* ------------------------------------------------------------------ *)
(* E10 — CAAF generality (§2)                                          *)
(* ------------------------------------------------------------------ *)

let e10 () =
  header "E10 | §2 — the same Algorithm 1 computes any CAAF";
  let n = 49 in
  let g = Gen.grid n in
  let rng = Prng.create 77 in
  let table =
    Table.create
      [
        ("CAAF", Table.Left);
        ("failure-free value", Table.Right);
        ("reference fold", Table.Right);
        ("under failures correct", Table.Right);
        ("CC", Table.Right);
      ]
  in
  List.iter
    (fun (caaf : Caaf.t) ->
      let inputs =
        match caaf.Caaf.name with
        | "or" | "and" -> Array.init n (fun i -> i mod 2)
        | name when String.length name >= 6 && String.sub name 0 6 = "modsum" ->
          Array.init n (fun i -> i * 13 mod 97)
        | _ -> Array.init n (fun i -> (i * 7 mod 50) + 1)
      in
      let params = Params.make ~c:2 ~caaf ~graph:g ~inputs () in
      let clean =
        Run.tradeoff ~graph:g ~failures:(Failure.none ~n) ~params ~b:63 ~f:4 ~seed:1 ()
      in
      let faulty =
        let failures = Failure.random g ~rng ~budget:4 ~max_round:500 in
        Run.tradeoff ~graph:g ~failures ~params ~b:63 ~f:4 ~seed:2 ()
      in
      Table.add_row table
        [
          caaf.Caaf.name;
          string_of_int (Run.value_exn clean.Run.result);
          string_of_int (Caaf.aggregate caaf (Array.to_list inputs));
          string_of_bool faulty.Run.common.Run.correct;
          string_of_int (Metrics.cc faulty.Run.common.Run.metrics);
        ])
    Instances.all;
  Table.print table;
  Printf.printf
    "Generalising needed no protocol change: only the operator was swapped (§2).\n"

(* ------------------------------------------------------------------ *)
(* E11 — ablations: why speculation and witnesses are necessary        *)
(* ------------------------------------------------------------------ *)

let e11 () =
  header "E11 | Ablations — removing §4.2 speculation or §4.3 witnesses breaks AGG";
  let n = 20 in
  let g = Gen.ring n in
  let inputs = Array.init n (fun i -> i + 1) in
  let params = Params.make ~c:2 ~t:4 ~graph:g ~inputs () in
  let cd = Params.cd params in
  let spec_base = (4 * cd) + 2 in
  let schedules =
    [
      ( "overlap (kill 1 @ spec start)",
        Failure.kill_nodes ~n ~nodes:[ 1 ] ~round:(spec_base + 1) );
      ( "cascade (kill 1 mid-agg, 2 pre-flood)",
        Failure.of_list ~n [ (1, (2 * cd) + 10); (2, spec_base + 2 + cd) ] );
      ("clean", Failure.none ~n);
    ]
  in
  let table =
    Table.create
      [
        ("schedule", Table.Left);
        ("variant", Table.Left);
        ("result", Table.Right);
        ("correct", Table.Right);
        ("CC", Table.Right);
      ]
  in
  let first = ref true in
  List.iter
    (fun (sname, failures) ->
      if not !first then Table.add_rule table;
      first := false;
      List.iter
        (fun (vname, ablation) ->
          let o = Run.agg ?ablation ~graph:g ~failures ~params ~seed:3 () in
          let result =
            match o.Run.result with
            | Agg.Value v -> string_of_int v
            | Agg.Aborted -> "abort"
          in
          Table.add_row table
            [
              sname;
              vname;
              result;
              string_of_bool o.Run.common.Run.correct;
              string_of_int (Metrics.cc o.Run.common.Run.metrics);
            ])
        [
          ("full protocol", None);
          ("no speculation", Some Agg.No_speculation);
          ("no witnesses", Some Agg.No_witnesses);
        ])
    schedules;
  Table.print table;
  Printf.printf
    "Reference total = %d.  'no witnesses' double-counts on the overlap schedule;\n\
     'no speculation' loses live inputs on the cascade schedule; the full protocol\n\
     stays correct on all of them.\n"
    (Array.fold_left ( + ) 0 inputs)

(* ------------------------------------------------------------------ *)
(* E12 — zero-error vs approximate aggregation (related work [8],[14]) *)
(* ------------------------------------------------------------------ *)

let e12 () =
  header
    "E12 | Zero-error vs approximate aggregation\n\
     Algorithm 1 (this paper) vs push-sum gossip [8] and synopsis diffusion [14]";
  let n = 64 in
  let g = Gen.grid n in
  let inputs = Array.make n 10 in
  let truth = Array.fold_left ( + ) 0 inputs in
  let params = Params.make ~c:2 ~graph:g ~inputs () in
  let d = params.Params.d in
  let b = 63 in
  let table =
    Table.create
      ~title:(Printf.sprintf "SUM of %d on an 8x8 grid; adversary = 8 edge failures mid-run" truth)
      [
        ("protocol", Table.Left);
        ("guarantee", Table.Left);
        ("estimate", Table.Right);
        ("rel. error", Table.Right);
        ("CC (bits)", Table.Right);
        ("rounds", Table.Right);
      ]
  in
  let failures s = Failure.random g ~rng:(Prng.create s) ~budget:8 ~max_round:(b * d) in
  (* zero-error: Algorithm 1 *)
  let tr_cc, tr_rounds, tr_vals =
    let runs = Sweep.map (fun s -> Run.tradeoff ~graph:g ~failures:(failures s) ~params ~b ~f:8 ~seed:s ()) seeds in
    ( mean (List.map (fun (o : Run.tradeoff_outcome) -> float_of_int (Metrics.cc o.Run.common.Run.metrics)) runs),
      mean (List.map (fun (o : Run.tradeoff_outcome) -> float_of_int o.Run.common.Run.rounds) runs),
      mean (List.map (fun (o : Run.tradeoff_outcome) -> float_of_int (Run.value_exn o.Run.result)) runs) )
  in
  Table.add_row table
    [
      "Algorithm 1";
      "zero-error interval";
      Printf.sprintf "%.0f" tr_vals;
      Printf.sprintf "%.4f" (Float.abs (tr_vals -. float_of_int truth) /. float_of_int truth);
      Printf.sprintf "%.0f" tr_cc;
      Printf.sprintf "%.0f" tr_rounds;
    ];
  (* push-sum gossip with the same round budget *)
  let go_runs =
    Sweep.map
      (fun s -> Gossip.run ~graph:g ~failures:(failures s) ~params ~rounds:(b * d) ~seed:s ())
      seeds
  in
  let est o = match o.Backend.result with
    | Backend.Estimate { value; _ } -> value
    | Backend.Exact _ -> nan
  in
  let rel o = match o.Backend.result with
    | Backend.Estimate { relative_error; _ } -> relative_error
    | Backend.Exact _ -> nan
  in
  Table.add_row table
    [
      "push-sum gossip [8]";
      "approximate, degrades";
      Printf.sprintf "%.1f" (mean (List.map est go_runs));
      Printf.sprintf "%.4f" (mean (List.map rel go_runs));
      Printf.sprintf "%.0f"
        (mean (List.map (fun o -> float_of_int (Metrics.cc o.Backend.common.Backend.metrics)) go_runs));
      string_of_int (b * d);
    ];
  (* synopsis diffusion, d+2 rounds *)
  let sy_runs =
    Sweep.map (fun s -> Synopsis.run_sum ~graph:g ~failures:(failures s) ~inputs ~k:32 ~rounds:(d + 2) ~seed:s) seeds
  in
  Table.add_row table
    [
      "synopsis diffusion [14]";
      "(1 +/- eps), multipath-robust";
      Printf.sprintf "%.1f" (mean (List.map (fun o -> o.Synopsis.estimate) sy_runs));
      Printf.sprintf "%.4f" (mean (List.map (fun o -> o.Synopsis.relative_error) sy_runs));
      Printf.sprintf "%.0f" (mean (List.map (fun o -> float_of_int o.Synopsis.cc) sy_runs));
      string_of_int (d + 2);
    ];
  Table.print table;
  Printf.printf
    "Only the zero-error protocol is guaranteed inside the correctness interval; the\n\
     approximate schemes trade that guarantee for simplicity (and, for synopsis, CC\n\
     independence from f) — the contrast the paper's problem statement draws (section 1).\n"

(* ------------------------------------------------------------------ *)
(* E13 — the cut-simulation transcript (lower-bound structure)         *)
(* ------------------------------------------------------------------ *)

let e13 () =
  header
    "E13 | Partition argument — two-party transcripts of Algorithm 1 across cuts";
  let table =
    Table.create
      [
        ("topology", Table.Left);
        ("cut", Table.Left);
        ("cut edges", Table.Right);
        ("transcript bits", Table.Right);
        ("protocol CC", Table.Right);
        ("transcript/CC", Table.Right);
      ]
  in
  let cases =
    [
      ("path n=40", Gen.path 40, `Halves);
      ("ring n=40", Gen.ring 40, `Halves);
      ("grid n=64", Gen.grid 64, `Halves);
      ("grid n=64", Gen.grid 64, `Last);
    ]
  in
  List.iter
    (fun (name, g, which) ->
      let n = Graph.n g in
      let params = Params.make ~c:2 ~graph:g ~inputs:(Array.make n 3) () in
      let cut =
        match which with
        | `Halves -> Cut_sim.halves g
        | `Last -> Cut_sim.partition g ~alice:(fun u -> u < n - 1)
      in
      let tr =
        Cut_sim.sum_transcript ~graph:g ~failures:(Failure.none ~n) ~params ~b:63 ~f:4
          ~seed:1 ~cut
      in
      Table.add_row table
        [
          name;
          (match which with `Halves -> "half/half" | `Last -> "single node");
          string_of_int cut.Cut_sim.cut_edges;
          string_of_int tr.Cut_sim.total_bits;
          string_of_int tr.Cut_sim.protocol_cc;
          Printf.sprintf "%.1f" (float_of_int tr.Cut_sim.total_bits /. float_of_int tr.Cut_sim.protocol_cc);
        ])
    cases;
  Table.print table;
  Printf.printf
    "Any two-party problem embeddable across a cut costs at most the transcript —\n\
     narrow cuts squeeze it toward a small multiple of one node's CC, which is what\n\
     the paper's lower-bound topologies exploit (section 7).\n"

(* ------------------------------------------------------------------ *)
(* E14 — the FT0 landscape: worst case over topology x adversary       *)
(* ------------------------------------------------------------------ *)

let e14 () =
  header
    "E14 | FT0 landscape — Algorithm 1's worst measured CC over\n\
     topology families x adversary schedules (N = 48, f = 10, b = 63)";
  let land_ = Worstcase.sweep_tradeoff ~n:48 ~f:10 ~b:63 ~seed:3 () in
  (* per-family maxima as a bar chart *)
  let families =
    List.sort_uniq compare (List.map (fun c -> c.Worstcase.family) land_.Worstcase.cells)
  in
  let series =
    List.map
      (fun fam ->
        let cc =
          List.fold_left
            (fun acc c -> if c.Worstcase.family = fam then max acc c.Worstcase.cc else acc)
            0 land_.Worstcase.cells
        in
        (fam, float_of_int cc))
      families
  in
  print_string (Chart.bars ~title:"worst CC per topology family (bits)" series);
  let all_correct = List.for_all (fun c -> c.Worstcase.correct) land_.Worstcase.cells in
  Printf.printf
    "\nglobal worst cell: %s x %s -> CC %d bits in %d flooding rounds\n\
     every cell correct: %b (Theorem 1 holds across the whole landscape)\n"
    land_.Worstcase.worst.Worstcase.family land_.Worstcase.worst.Worstcase.adversary
    land_.Worstcase.worst.Worstcase.cc land_.Worstcase.worst.Worstcase.flooding_rounds
    all_correct

(* ------------------------------------------------------------------ *)
(* E15 — what the private coins buy: sampled vs sequential intervals   *)
(* ------------------------------------------------------------------ *)

let e15 () =
  header
    "E15 | Derandomization ablation — Algorithm 1's sampled intervals vs a\n\
     sequential scan, under per-interval LFC chains";
  (* 8x8 grid; the BFS tree hangs columns from the top row, so killing a
     vertical run of t nodes in a fresh column during interval j's
     aggregation phase plants an LFC (live descendants below, reattached
     through the neighbouring columns) that makes that interval's pair
     fail.  The sequential scan must pay for every dirty interval; the
     sampled strategy skips most of them. *)
  let n = 64 in
  let w = 8 in
  let g = Gen.grid n in
  let params = Params.make ~c:2 ~graph:g ~inputs:(Array.make n 3) () in
  let b = 764 in
  let x = Tradeoff.intervals params ~b in
  let interval_len = 19 * Params.cd params in
  let t_pair f = Tradeoff.pair_t params ~b ~f in
  let table =
    Table.create
      ~title:
        (Printf.sprintf "N = %d, b = %d (x = %d intervals), one LFC chain per dirty interval"
           n b x)
      [
        ("dirty intervals", Table.Right);
        ("f", Table.Right);
        ("sampled CC", Table.Right);
        ("sequential CC", Table.Right);
        ("seq/sampled", Table.Right);
        ("both correct", Table.Right);
      ]
  in
  List.iter
    (fun dirty ->
      let f = 50 in
      let t = t_pair f in
      let chain_kills =
        List.concat_map
          (fun j ->
            (* interval j (1-based): kill rows 1..t of column j *)
            let round = ((j - 1) * interval_len) + (2 * Params.cd params) + 5 in
            List.init t (fun r -> (((r + 1) * w) + j, round)))
          (List.init dirty (fun j -> j + 1))
      in
      let failures = Failure.of_list ~n chain_kills in
      let run strategy s = Run.tradeoff_with ~strategy ~graph:g ~failures ~params ~b ~f ~seed:s () in
      let sampled = Sweep.map (run Tradeoff.Sampled) seeds in
      let sequential = [ run Tradeoff.Sequential 1 ] in
      let cc runs = mean (List.map (fun (o : Run.tradeoff_outcome) -> float_of_int (Metrics.cc o.Run.common.Run.metrics)) runs) in
      let ok runs = List.for_all (fun (o : Run.tradeoff_outcome) -> o.Run.common.Run.correct) runs in
      let cs = cc sampled and cq = cc sequential in
      Table.add_row table
        [
          string_of_int dirty;
          string_of_int f;
          Printf.sprintf "%.0f" cs;
          Printf.sprintf "%.0f" cq;
          Printf.sprintf "%.2f" (cq /. cs);
          string_of_bool (ok sampled && ok sequential);
        ])
    [ 1; 2; 3; 4 ];
  Table.print table;
  Printf.printf
    "Each dirty interval costs the sequential scan a full rejected AGG+VERI pair;\n\
     the sampled strategy lands on a clean interval after ~1 extra try regardless —\n\
     the gap the paper's private-coin interval selection creates.\n"

(* ------------------------------------------------------------------ *)
(* E16 — out-of-model exploration: lossy links break the guarantees    *)
(* ------------------------------------------------------------------ *)

let e16 () =
  header
    "E16 | Out-of-model exploration — the crash-only guarantees do not\n\
     survive lossy links (the paper's model assumes reliable broadcast)";
  let n = 36 in
  let g = Gen.grid n in
  let params = Params.make ~c:2 ~t:3 ~graph:g ~inputs:(Array.init n (fun i -> i + 1)) () in
  let truth = n * (n + 1) / 2 in
  let run_pair ~loss ~seed =
    let proto =
      {
        Engine.name = "pair-lossy";
        init = (fun u ~rng:_ -> Pair.create params ~me:u);
        step =
          (fun ~round ~me:_ ~state ~inbox ->
            let inbox =
              List.filter_map
                (fun (s, m) -> if m.Message.exec = 0 then Some (s, m.Message.body) else None)
                inbox
            in
            let out = Pair.step state ~rr:round ~inbox in
            (state, List.map (fun body -> Message.{ exec = 0; body }) out));
        msg_bits = Message.msg_bits params;
        root_done = (fun _ -> false);
      }
    in
    let states, _ =
      Engine.run ~loss ~graph:g ~failures:(Failure.none ~n)
        ~max_rounds:(Pair.duration params) ~seed proto
    in
    Pair.root_verdict states.(Graph.root)
  in
  let trials = 10 in
  let table =
    Table.create
      ~title:
        (Printf.sprintf "AGG+VERI pairs, no crashes, per-edge delivery loss; truth = %d" truth)
      [
        ("loss prob", Table.Right);
        ("exact results", Table.Right);
        ("in-interval", Table.Right);
        ("aborts", Table.Right);
        ("VERI accepts a wrong value", Table.Right);
      ]
  in
  List.iter
    (fun loss ->
      let exact = ref 0 and ok = ref 0 and aborts = ref 0 and bad_accept = ref 0 in
      for seed = 1 to trials do
        match run_pair ~loss ~seed with
        | { Pair.result = Agg.Aborted; _ } -> incr aborts
        | { Pair.result = Agg.Value v; veri_ok } ->
          if v = truth then incr exact;
          (* with no crashes the only correct value is the exact total *)
          if v = truth then incr ok
          else if veri_ok then incr bad_accept
      done;
      Table.add_row table
        [
          Printf.sprintf "%.3f" loss;
          Printf.sprintf "%d/%d" !exact trials;
          Printf.sprintf "%d/%d" !ok trials;
          string_of_int !aborts;
          string_of_int !bad_accept;
        ])
    [ 0.0; 0.002; 0.01; 0.05 ];
  Table.print table;
  Printf.printf
    "With reliable links every run is exact.  Even small per-edge loss lets VERI\n\
     accept under-counted results: the §4/§5 machinery is sound for crash failures\n\
     only, exactly as the paper's model states — loss needs different techniques.\n"

let e17 () =
  header
    "E17 | Chaos campaign — adaptive (traffic-aware) adversaries vs the paper's\n\
     oblivious schedules at the same edge-failure budget, plus the\n\
     duplication/delay fault boundary (extending E16's loss boundary)";
  let n = 30 and t = 3 in
  let fams =
    [ ("grid", Gen.Grid); ("caterpillar", Gen.Caterpillar); ("regular4", Gen.Random_regular 4) ]
  in
  let advs =
    [
      Adversary.random;
      Adversary.high_degree;
      Adversary.Adaptive Adversary.Top_talkers;
      Adversary.Adaptive Adversary.First_speakers;
      Adversary.Adaptive Adversary.Random_online;
    ]
  in
  let scenario fam seed =
    {
      Incident.family = fam;
      n;
      topo_seed = 11;
      run_seed = seed;
      c = 2;
      t;
      inputs = Array.init n (fun k -> (k mod 10) + 1);
      schedule = [];
      faults = Engine.no_faults;
      kind = Incident.Pair_run;
      bit_cap = None;
    }
  in
  (* --- Table 2 cells: same budget, oblivious vs adaptive placement --- *)
  List.iter
    (fun budget ->
      let table =
        Table.create
          ~title:
            (Printf.sprintf
               "AGG+VERI pairs, n=%d, t=%d, edge-failure budget %d, %d seeds — Table 2 cell \
                outcomes under a live watchdog"
               n t budget (List.length seeds))
          [
            ("family", Table.Left);
            ("adversary", Table.Left);
            ("s1/s2/s3", Table.Right);
            ("accepted", Table.Right);
            ("aborted", Table.Right);
            ("VERI rejects", Table.Right);
            ("violations", Table.Right);
          ]
      in
      List.iter
        (fun (fname, fam) ->
          List.iter
            (fun adv ->
              let s1 = ref 0 and s2 = ref 0 and s3 = ref 0 in
              let accept = ref 0 and abort = ref 0 and reject = ref 0 and viol = ref 0 in
              List.iter
                (fun seed ->
                  let sc = scenario fam seed in
                  let graph = Campaign.graph_of sc in
                  let params = Campaign.params_of sc graph in
                  let base, online =
                    Adversary.instantiate adv graph
                      ~rng:(Prng.create ((seed * 97) + budget))
                      ~budget ~window:(Pair.duration params)
                  in
                  let sc = { sc with Incident.schedule = Failure.to_list base } in
                  let r = Campaign.run_pair ?online sc in
                  if r.Campaign.edge_failures <= t then incr s1
                  else if not r.Campaign.lfc then incr s2
                  else incr s3;
                  (match r.Campaign.verdict with
                  | Some { Pair.result = Agg.Value _; veri_ok = true } -> incr accept
                  | Some { Pair.result = Agg.Value _; veri_ok = false } -> incr reject
                  | Some { Pair.result = Agg.Aborted; _ } -> incr abort
                  | None -> ());
                  if r.Campaign.violation <> None then incr viol)
                seeds;
              Table.add_row table
                [
                  fname;
                  Adversary.name adv;
                  Printf.sprintf "%d/%d/%d" !s1 !s2 !s3;
                  string_of_int !accept;
                  string_of_int !abort;
                  string_of_int !reject;
                  string_of_int !viol;
                ])
            advs)
        fams;
      Table.print table)
    [ 3; 10 ];
  Printf.printf
    "Every cell lands where Table 2 says it must and the watchdog stays silent:\n\
     AGG/VERI are deterministic, so an adaptive crash placement is just some\n\
     oblivious schedule the theorems already cover — watching the traffic buys\n\
     the adversary nothing beyond concentrating failures (more scenario 2/3\n\
     runs per budget than random placement).\n\n";
  (* --- the dup/delay boundary, no crashes (cf. E16's loss boundary) --- *)
  let truth = Array.fold_left ( + ) 0 (scenario Gen.Grid 1).Incident.inputs in
  let table =
    Table.create
      ~title:
        (Printf.sprintf
           "grid n=%d, no crashes, per-edge duplication / one-round delay; truth = %d, %d seeds"
           n truth (List.length seeds))
      [
        ("fault", Table.Left);
        ("p", Table.Right);
        ("exact accepts", Table.Right);
        ("aborts", Table.Right);
        ("VERI rejects", Table.Right);
        ("watchdog violations", Table.Right);
        ("first violated invariant", Table.Left);
      ]
  in
  List.iter
    (fun (fault_name, mk_faults) ->
      List.iter
        (fun p ->
          let exact = ref 0 and abort = ref 0 and reject = ref 0 and viol = ref 0 in
          let first_invariant = ref "-" in
          List.iter
            (fun seed ->
              let sc = { (scenario Gen.Grid seed) with Incident.faults = mk_faults p } in
              let r = Campaign.run_pair sc in
              (match r.Campaign.verdict with
              | Some { Pair.result = Agg.Value v; veri_ok = true } when v = truth -> incr exact
              | Some { Pair.result = Agg.Value _; veri_ok = false } -> incr reject
              | Some { Pair.result = Agg.Aborted; _ } -> incr abort
              | _ -> ());
              match r.Campaign.violation with
              | Some v ->
                incr viol;
                if !first_invariant = "-" then first_invariant := v.Engine.invariant
              | None -> ())
            seeds;
          Table.add_row table
            [
              fault_name;
              Printf.sprintf "%.2f" p;
              Printf.sprintf "%d/%d" !exact (List.length seeds);
              string_of_int !abort;
              string_of_int !reject;
              string_of_int !viol;
              !first_invariant;
            ])
        [ 0.0; 0.01; 0.05; 0.2 ])
    [
      ("dup", fun p -> { Engine.loss = 0.0; dup = p; delay = 0.0 });
      ("delay", fun p -> { Engine.loss = 0.0; dup = 0.0; delay = p });
    ];
  Table.print table;
  Printf.printf
    "Like E16's loss boundary, this maps where the model's assumptions end:\n\
     duplicated or delayed deliveries leave the §2 model, and the watchdog\n\
     reports the first invariant each fault class actually breaks.\n"

(* ------------------------------------------------------------------ *)
(* timing — bechamel wall-clock micro-benchmarks                       *)
(* ------------------------------------------------------------------ *)

let timing () =
  header "timing | bechamel wall-clock micro-benchmarks";
  let open Bechamel in
  let open Toolkit in
  let g36 = Gen.grid 36 in
  let params36 = Params.make ~c:2 ~t:3 ~graph:g36 ~inputs:(Array.make 36 2) () in
  let g100 = Gen.grid 100 in
  let params100 = Params.make ~c:2 ~graph:g100 ~inputs:(Array.make 100 2) () in
  let mk name f = Test.make ~name (Staged.stage f) in
  let tests =
    Test.make_grouped ~name:"ftagg"
      [
        mk "pair: AGG+VERI, N=36 grid" (fun () ->
            ignore
              (Run.pair ~graph:g36 ~failures:(Failure.none ~n:36) ~params:params36 ~seed:1 ()));
        mk "tradeoff: Algorithm 1, N=100 grid, b=63" (fun () ->
            ignore
              (Run.tradeoff ~graph:g100
                 ~failures:(Failure.none ~n:100)
                 ~params:params100 ~b:63 ~f:8 ~seed:1 ()));
        mk "brute force: N=100 grid" (fun () ->
            ignore
              (Run.brute_force ~graph:g100
                 ~failures:(Failure.none ~n:100)
                 ~params:params100 ~seed:1 ()));
        mk "unionsize: n=10000, q=64" (fun () ->
            let rng = Prng.create 1 in
            let inst = Cycle_promise.random ~rng ~n:10000 ~q:64 () in
            ignore (Unionsize.solve inst));
        mk "sperner rank: q=64" (fun () -> ignore (Sperner.lemma11_rank 64));
      ]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:500 ~quota:(Time.second 0.5) ~kde:(Some 500) () in
  let raw = Benchmark.all cfg instances tests in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let table = Table.create [ ("benchmark", Table.Left); ("time/run", Table.Right) ] in
  let rows = ref [] in
  Hashtbl.iter
    (fun name ols_result ->
      let est =
        match Analyze.OLS.estimates ols_result with
        | Some [ e ] -> Printf.sprintf "%.3f ms" (e /. 1e6)
        | _ -> "n/a"
      in
      rows := (name, est) :: !rows)
    results;
  List.iter
    (fun (name, est) -> Table.add_row table [ name; est ])
    (List.sort compare !rows);
  Table.print table

(* ------------------------------------------------------------------ *)
(* perf — engine hot-path benchmark: seed pipeline vs the CSR engine    *)
(* ------------------------------------------------------------------ *)

(* The seed hot path, reconstructed exactly: the list-based reference
   engine driving AGG through the exec-tagged message boxing the
   pre-overhaul Run used (filter_map on intake, map on emit, exec-aware
   bit accounting). *)
let perf_seed_proto params =
  {
    Engine.name = "agg-seed-pipeline";
    init = (fun u ~rng:_ -> Agg.create params ~me:u);
    step =
      (fun ~round ~me:_ ~state ~inbox ->
        let inbox =
          List.filter_map
            (fun (s, m) -> if m.Message.exec = 0 then Some (s, m.Message.body) else None)
            inbox
        in
        let out = Agg.step state ~rr:round ~inbox in
        (state, List.map (fun body -> Message.{ exec = 0; body }) out));
    msg_bits = Message.msg_bits params;
    root_done = (fun _ -> false);
  }

(* What Run.agg now feeds the engine: raw bodies, no boxing. *)
let perf_fast_proto params =
  {
    Engine.name = "agg-fast-pipeline";
    init = (fun u ~rng:_ -> Agg.create params ~me:u);
    step = (fun ~round ~me:_ ~state ~inbox -> (state, Agg.step state ~rr:round ~inbox));
    msg_bits = Message.bits params;
    root_done = (fun _ -> false);
  }

(* ------------------------------------------------------------------ *)
(* E18 — telemetry: phase-level bit breakdown of Algorithm 1 across b   *)
(* ------------------------------------------------------------------ *)

let e18 () =
  header
    "E18 | Telemetry — where Algorithm 1's bits go, by protocol phase\n\
     256-node grid, f=16, b swept; spans attribute every broadcast to the\n\
     AGG/VERI phase (or tradeoff fallback) active at the sender";
  let n = 256 in
  let g = Gen.grid n in
  let inputs = Array.init n (fun k -> (k mod 10) + 1) in
  let params = Params.make ~c:2 ~graph:g ~inputs () in
  let f = 16 in
  let bs = [ 42; 63; 126; 252 ] in
  let runs =
    List.map
      (fun b ->
        let obs = Obs.create ~name:(Printf.sprintf "e18-b%d" b) () in
        let failures =
          Failure.random g ~rng:(Prng.create 5) ~budget:f ~max_round:(b * params.Params.d)
        in
        let o = Run.tradeoff ~obs ~graph:g ~failures ~params ~b ~f ~seed:1 () in
        (b, obs, o))
      bs
  in
  let phases =
    List.sort_uniq compare
      (List.concat_map (fun (_, obs, _) -> List.map fst (Obs.phase_bits obs)) runs)
  in
  let table =
    Table.create
      ~title:(Printf.sprintf "bits per phase, grid n=%d, f=%d (SUM, seed 1)" n f)
      (("phase", Table.Left) :: List.map (fun b -> (Printf.sprintf "b=%d" b, Table.Right)) bs)
  in
  List.iter
    (fun phase ->
      Table.add_row table
        (phase
        :: List.map
             (fun (_, obs, _) ->
               match List.assoc_opt phase (Obs.phase_bits obs) with
               | Some bits -> string_of_int bits
               | None -> "-")
             runs))
    phases;
  Table.add_rule table;
  (* The phase column must account for every bit the engine charged:
     sum-over-phases = Metrics.total_bits (test_obs.ml locks this in). *)
  Table.add_row table
    ("sum over phases"
    :: List.map
         (fun (_, obs, _) ->
           string_of_int (List.fold_left (fun acc (_, b) -> acc + b) 0 (Obs.phase_bits obs)))
         runs);
  Table.add_row table
    ("engine total_bits"
    :: List.map
         (fun (_, _, (o : Run.tradeoff_outcome)) ->
           string_of_int (Metrics.total_bits o.Run.common.Run.metrics))
         runs);
  Table.print table;
  List.iter
    (fun (b, _, (o : Run.tradeoff_outcome)) ->
      Printf.printf "b=%-4d CC %6d bits, %5d rounds, correct %b\n" b
        (Metrics.cc o.Run.common.Run.metrics) o.Run.common.Run.rounds o.Run.common.Run.correct)
    runs

(* Round benchmark floats before serialising: sub-tenth-of-a-permille
   wall-clock jitter used to churn every digit of BENCH_engine.json on
   each regeneration. *)
let q4 x = Float.round (x *. 1e4) /. 1e4
let q2 x = Float.round (x *. 1e2) /. 1e2

(* BENCH_engine.json is shared by [perf] (the top-level engine fields),
   [e19] ("service_throughput"), [e20] ("cross_protocol"), [e21]
   ("update_lag"), [e22] ("fleet") and [e23] ("scale"): each regenerates
   only its own keys and preserves the others'. *)
let bench_engine_others keys =
  match Bench_io.read_file ~path:"BENCH_engine.json" with
  | Ok (Bench_io.Obj old) -> List.filter (fun (k, _) -> not (List.mem k keys)) old
  | _ -> []

let perf () =
  header
    "PERF | engine hot path — reference (seed) pipeline vs CSR engine\n\
     256-node grid, AGG, identical metrics required; JSON to BENCH_engine.json";
  let n = 256 in
  let g = Gen.grid n in
  let inputs = Array.make n 3 in
  let params = Params.make ~c:2 ~graph:g ~inputs () in
  let failures = Failure.none ~n in
  let dur = Agg.duration params in
  let run_seed s =
    Engine.run_reference ~graph:g ~failures ~max_rounds:dur ~seed:s (perf_seed_proto params)
  in
  let run_fast s =
    Engine.run ~graph:g ~failures ~max_rounds:dur ~seed:s (perf_fast_proto params)
  in
  (* Equivalence gate: identical CC and rounds on every seed before any
     timing is reported (test_engine_perf.ml checks states too). *)
  let identical =
    List.for_all
      (fun s ->
        let _, m_ref = run_seed s and _, m_new = run_fast s in
        Metrics.cc m_ref = Metrics.cc m_new && Metrics.rounds m_ref = Metrics.rounds m_new)
      seeds
  in
  if not identical then failwith "perf: CSR engine diverged from the reference pipeline";
  let reps = List.concat_map (fun s -> [ s; s + 100; s + 200 ]) seeds in
  let total_rounds = float_of_int (List.length reps * dur) in
  ignore (run_seed 0);
  ignore (run_fast 0);
  let (), seed_wall = Bench_io.timed (fun () -> List.iter (fun s -> ignore (run_seed s)) reps) in
  let (), fast_wall = Bench_io.timed (fun () -> List.iter (fun s -> ignore (run_fast s)) reps) in
  let seed_rps = total_rounds /. seed_wall in
  let fast_rps = total_rounds /. fast_wall in
  let speedup = fast_rps /. seed_rps in
  (* Multicore scaling: the same fast-engine sweep fanned over domains. *)
  let domains = Sweep.default_domains () in
  let (), sweep_wall =
    Bench_io.timed (fun () -> ignore (Sweep.map ~domains (fun s -> run_fast s) reps))
  in
  Printf.printf "%-34s %8.3f s  %9.0f rounds/sec\n" "seed pipeline (reference engine)" seed_wall
    seed_rps;
  Printf.printf "%-34s %8.3f s  %9.0f rounds/sec\n" "overhauled pipeline (CSR engine)" fast_wall
    fast_rps;
  Printf.printf "%-34s %8.2fx\n" "speedup" speedup;
  Printf.printf "%-34s %8.3f s  (%d domains, %.2fx vs serial)\n" "fast pipeline via Sweep"
    sweep_wall domains (fast_wall /. sweep_wall);
  Printf.printf "metrics identical across %d seeds: %b\n" (List.length seeds) identical;
  let json =
    Bench_io.(
      Obj
        [
          ("benchmark", String "engine-hot-path");
          ("graph", String "grid");
          ("n", Int n);
          ("protocol", String "AGG");
          ("rounds_per_run", Int dur);
          ("runs_timed", Int (List.length reps));
          ("metrics_identical", Bool identical);
          ( "seed_pipeline",
            Obj
              [
                ("engine", String "reference (list-based), exec-tagged messages");
                ("wall_s", Float (q4 seed_wall));
                ("rounds_per_sec", Int (int_of_float (Float.round seed_rps)));
              ] );
          ( "overhauled_pipeline",
            Obj
              [
                ("engine", String "CSR delivery loop, raw message bodies");
                ("wall_s", Float (q4 fast_wall));
                ("rounds_per_sec", Int (int_of_float (Float.round fast_rps)));
              ] );
          ("speedup", Float (q2 speedup));
          ( "sweep",
            Obj
              [
                ("domains", Int domains);
                ("wall_s", Float (q4 sweep_wall));
                ("speedup_vs_serial", Float (q2 (fast_wall /. sweep_wall)));
              ] );
        ])
  in
  let fields = match json with Bench_io.Obj f -> f | _ -> assert false in
  Bench_io.write_file ~path:"BENCH_engine.json"
    (Bench_io.Obj (fields @ bench_engine_others (List.map fst fields)));
  Printf.printf "wrote BENCH_engine.json\n";
  if speedup < 3.0 then
    Printf.printf "WARNING: speedup %.2fx is below the 3x target for this benchmark\n" speedup

(* ------------------------------------------------------------------ *)
(* E19 — service throughput: jobs/sec and cache hit rate vs queue      *)
(* depth and domain count (lib/service end to end, no process layer)   *)
(* ------------------------------------------------------------------ *)

let e19 () =
  header
    "E19 | service throughput — jobs/sec and cache hit rate\n\
     60 jobs (20 distinct x 3 tenants) through the scheduler, swept over\n\
     queue capacity and domain count; JSON to BENCH_engine.json";
  let module S = Service.Scheduler in
  let module R = Service.Reconfig in
  let n = 36 in
  let distinct = 20 and copies = 3 in
  let job ~tenant ~seed =
    {
      Service.Job.tenant;
      family = Gen.Grid;
      n;
      topo_seed = seed;
      inputs = Array.init n (fun i -> (i + seed) mod 50);
      c = 2;
      t = 2;
      caaf = "sum";
      protocol = Service.Job.Tradeoff { b = 63; f = 1 };
      failures = Service.Job.Generated { mode = "none"; budget = 0 };
      seed;
      generation = 0;
      deadline = None;
      priority = Service.Job.Normal;
    }
  in
  (* Interleave tenants so duplicates of a spec land apart in the feed:
     every distinct question is asked once per tenant. *)
  let jobs =
    List.concat_map
      (fun k -> List.init copies (fun t -> job ~tenant:(Printf.sprintf "t%d" t) ~seed:k))
      (List.init distinct (fun k -> k + 1))
  in
  let total = List.length jobs in
  let run ~queue ~domains =
    let settings =
      {
        R.default with
        R.queue_capacity = queue;
        cache_capacity = 64;
        tick_batch = queue;
        checkpoint_every = 0;
        domains;
      }
    in
    let sched = S.create ~settings () in
    let (), wall =
      Bench_io.timed (fun () ->
          (* Feed with backpressure: a rejected submission ticks the
             scheduler (draining a batch) and retries — the shape of any
             real producer loop against a bounded queue. *)
          List.iter
            (fun spec ->
              let rec admit () =
                match S.submit sched spec with
                | Ok _ -> ()
                | Error _ ->
                  ignore (S.tick sched ());
                  admit ()
              in
              admit ())
            jobs;
          ignore (S.drain sched))
    in
    let stats = S.cache_stats sched in
    let lookups = stats.Service.Cache.hits + stats.Service.Cache.misses in
    let hit_rate = float_of_int stats.Service.Cache.hits /. float_of_int (max 1 lookups) in
    (wall, float_of_int total /. wall, hit_rate, S.completed_count sched)
  in
  let domain_counts = List.sort_uniq compare [ 1; Sweep.default_domains () ] in
  let queues = [ 4; 16; 64 ] in
  let cells =
    List.concat_map
      (fun domains ->
        List.map
          (fun queue ->
            let wall, jps, hit_rate, completed = run ~queue ~domains in
            Printf.printf
              "queue %-3d domains %-2d  %6.3f s  %7.1f jobs/sec  hit rate %.2f  (%d completed)\n"
              queue domains wall jps hit_rate completed;
            assert (completed = total);
            Bench_io.(
              Obj
                [
                  ("queue_capacity", Int queue);
                  ("domains", Int domains);
                  ("wall_s", Float (q4 wall));
                  ("jobs_per_sec", Float (q2 jps));
                  ("cache_hit_rate", Float (q4 hit_rate));
                ]))
          queues)
      domain_counts
  in
  let payload =
    Bench_io.(
      Obj
        [
          ("jobs", Int total);
          ("distinct_specs", Int distinct);
          ("tenants", Int copies);
          ("graph", String "grid");
          ("n", Int n);
          ("cells", List cells);
        ])
  in
  Bench_io.write_file ~path:"BENCH_engine.json"
    (Bench_io.Obj (bench_engine_others [ "service_throughput" ] @ [ ("service_throughput", payload) ]));
  Printf.printf "wrote BENCH_engine.json (service_throughput)\n"

(* ------------------------------------------------------------------ *)
(* E20 — cross-protocol matrix over the backend registry               *)
(* ------------------------------------------------------------------ *)

let q6 x = Float.round (x *. 1e6) /. 1e6

(* Every registered backend on the same topology, inputs, budget and
   crash schedule: correctness guarantee x CC x TC in one table.  The
   headline contrast is the crash rows — flow-updating's crash-reset
   flows recover the routed mass, so its error re-converges toward zero,
   while push-sum's destroyed mass leaves a permanent bias.  That strict
   inequality is asserted here and re-checked by [guard] against the
   committed BENCH_engine.json. *)
let e20 () =
  header
    "E20 | Cross-protocol matrix — correctness guarantee x CC x TC per backend\n\
     same topology, inputs, budget and crash schedule for every backend;\n\
     JSON to BENCH_engine.json (cross_protocol)";
  let n = 36 in
  let g = Gen.grid n in
  let inputs = Array.make n 10 in
  let truth = float_of_int (Array.fold_left ( + ) 0 inputs) in
  let params = Params.make ~c:2 ~graph:g ~inputs () in
  let d = params.Params.d in
  let b = 40 and f = 4 in
  let scenarios =
    [
      ("none", Failure.none ~n, false);
      ("crash-early", Failure.kill_nodes ~n ~nodes:[ 5; 6; 7 ] ~round:5, true);
      ("crash-mid", Failure.kill_nodes ~n ~nodes:[ 11; 17; 23 ] ~round:30, true);
    ]
  in
  let backend_names = [ "agg"; "flood"; "folklore"; "pushsum"; "flowupdating" ] in
  let table =
    Table.create
      ~title:
        (Printf.sprintf "SUM of %.0f on a 6x6 grid; b = %d flooding rounds (d = %d), f = %d"
           truth b d f)
      [
        ("scenario", Table.Left);
        ("backend", Table.Left);
        ("result", Table.Right);
        ("rel. error", Table.Right);
        ("correct", Table.Left);
        ("CC (bits)", Table.Right);
        ("TC (rounds)", Table.Right);
      ]
  in
  let rows =
    List.concat_map
      (fun (sname, failures, crashy) ->
        List.map
          (fun bname ->
            let backend = Option.get (Run.backend_of_string bname) in
            let o = Run.exec ~backend ~graph:g ~failures ~params ~b ~f ~seed:1 () in
            let shown, rel =
              match o.Backend.result with
              | Backend.Exact (Agg.Value v) ->
                (string_of_int v, Float.abs (float_of_int v -. truth) /. truth)
              | Backend.Exact Agg.Aborted -> ("<aborted>", nan)
              | Backend.Estimate { value; relative_error } ->
                (Printf.sprintf "%.1f" value, relative_error)
            in
            Table.add_row table
              [
                sname;
                bname;
                shown;
                (if Float.is_finite rel then Printf.sprintf "%.6f" rel else "-");
                string_of_bool o.Backend.common.Backend.correct;
                string_of_int (Metrics.cc o.Backend.common.Backend.metrics);
                string_of_int o.Backend.common.Backend.rounds;
              ];
            (sname, bname, crashy, o, rel))
          backend_names)
      scenarios
  in
  Table.print table;
  (* The mass-conservation contrast, asserted: under crashes the
     flow-updating estimate must beat push-sum's strictly. *)
  let err sname bname =
    let _, _, _, _, rel =
      List.find (fun (s, bk, _, _, _) -> s = sname && bk = bname) rows
    in
    rel
  in
  List.iter
    (fun (sname, _, crashy) ->
      if crashy then begin
        let fu = err sname "flowupdating" and ps = err sname "pushsum" in
        Printf.printf "%-12s flow-updating rel err %.3g vs push-sum %.3g\n" sname fu ps;
        assert (fu < ps)
      end)
    scenarios;
  Printf.printf
    "Under crashes, push-sum's destroyed (s, w) mass leaves a permanent bias while\n\
     flow-updating's crash-reset flows recover the routed mass — only the zero-error\n\
     backends keep the paper's interval guarantee, at the CC the theorems charge for it.\n";
  let payload =
    Bench_io.(
      Obj
        [
          ("graph", String "grid");
          ("n", Int n);
          ("b", Int b);
          ("f", Int f);
          ( "rows",
            List
              (List.map
                 (fun (sname, bname, crashy, (o : Backend.outcome), rel) ->
                   Obj
                     [
                       ("scenario", String sname);
                       ("backend", String bname);
                       ("crash", Bool crashy);
                       ("correct", Bool o.Backend.common.Backend.correct);
                       ("relative_error", if Float.is_finite rel then Float (q6 rel) else Null);
                       ("cc", Int (Metrics.cc o.Backend.common.Backend.metrics));
                       ("rounds", Int o.Backend.common.Backend.rounds);
                     ])
                 rows) );
        ])
  in
  Bench_io.write_file ~path:"BENCH_engine.json"
    (Bench_io.Obj (bench_engine_others [ "cross_protocol" ] @ [ ("cross_protocol", payload) ]));
  Printf.printf "wrote BENCH_engine.json (cross_protocol)\n"

(* ------------------------------------------------------------------ *)
(* E21 — update lag: client-observed latency through a live handoff    *)
(* ------------------------------------------------------------------ *)

(* Sustained request load from a resilient client session while the
   server hands off to a successor mid-stream, both legs of the
   mechanism: fd-pass over a unix socket and unlink-and-rebind over TCP.
   Everything runs in-process on one thread (the session's [pump] drives
   the listeners' poll loops), so the percentiles measure the transport
   and handoff machinery, not process scheduling.  The headline numbers
   are the client-observed per-request latencies — the handoff shows up
   as the tail (the request that rides retry/backoff across the gap) and
   [failed_requests] must stay 0: zero downtime as the client sees it. *)
let e21 () =
  header
    "E21 | update lag — client-observed latency through a live handoff\n\
     sustained load, takeover mid-stream (fd-pass and rebind legs);\n\
     per-request percentiles to BENCH_engine.json (update_lag)";
  let module L = Transport.Listener in
  let module C = Transport.Client in
  let module H = Transport.Handoff in
  let module Srv = Service.Server in
  let settings =
    {
      Service.Reconfig.default with
      Service.Reconfig.queue_capacity = 64;
      cache_capacity = 128;
      tick_batch = 8;
      checkpoint_every = 0;
    }
  in
  let mk_server ckpt =
    Srv.create { Srv.settings; checkpoint_path = Some ckpt; store_dir = None; name = "bench-e21" }
  in
  let submit seed =
    Printf.sprintf
      {|{"op":"submit","job":{"family":"grid","n":16,"seed":%d,"failures":"none"}}|} seed
  in
  let requests_per_leg = 300 in
  let handoff_at = requests_per_leg / 3 in
  let percentile sorted p =
    let n = Array.length sorted in
    sorted.(min (n - 1) (max 0 (int_of_float (ceil (p /. 100. *. float_of_int n)) - 1)))
  in
  let fresh_path suffix =
    let p = Filename.temp_file "ftagg-e21" suffix in
    Sys.remove p;
    p
  in
  let leg ~name ~address ~ctl ~mode =
    let ckpt = fresh_path ".ckpt.json" in
    let t1 =
      match L.create (L.config ~ctl address) (mk_server ckpt) with
      | Ok t -> t
      | Error e -> failwith e
    in
    let live = ref [ t1 ] in
    let pump () = List.iter (fun l -> ignore (L.poll l)) !live in
    (* resolve an ephemeral TCP port to what the kernel assigned *)
    let address =
      match address with
      | L.Tcp (h, 0) -> L.Tcp (h, Option.get (L.port t1))
      | a -> a
    in
    let retry = C.retry ~attempts:12 ~backoff_ms:2 ~max_backoff_ms:16 ~timeout_ms:8000 () in
    let s = C.session ~retry ~pump address in
    let lat = Array.make requests_per_leg 0. in
    let failed = ref 0 in
    let handoff_wall = ref 0. in
    let bounded msg pred =
      let budget = ref 1_000_000 in
      while not (pred ()) do
        decr budget;
        if !budget <= 0 then failwith ("e21: " ^ msg);
        pump ()
      done
    in
    let do_handoff () =
      let (), wall =
        Bench_io.timed (fun () ->
            let tk =
              match H.Takeover.start ~mode ~ctl () with Ok tk -> tk | Error e -> failwith e
            in
            let outcome = ref None in
            bounded "takeover stuck" (fun () ->
                match H.Takeover.step tk with
                | `Ready o ->
                  outcome := Some o;
                  true
                | `Failed msg -> failwith ("e21: takeover failed: " ^ msg)
                | `Pending -> false);
            let outcome = Option.get !outcome in
            let t2 =
              match
                L.create ?adopted_fd:outcome.H.Takeover.fd (L.config ~ctl address)
                  (mk_server ckpt)
              with
              | Ok t -> t
              | Error e -> failwith e
            in
            live := [ t1; t2 ];
            H.Takeover.confirm tk;
            bounded "incumbent never saw the ack" (fun () -> L.handed_off t1);
            L.drain t1;
            live := [ t2 ])
      in
      handoff_wall := wall
    in
    for k = 0 to requests_per_leg - 1 do
      if k = handoff_at then do_handoff ();
      (* mostly submits (seeds recycle, so the warm cache matters), with
         a periodic drain so the queue never backpressures the feed *)
      let line = if k mod 10 = 9 then {|{"op":"drain"}|} else submit (k mod 40) in
      let (), wall =
        Bench_io.timed (fun () ->
            match C.srequest s line with Ok _ -> () | Error _ -> incr failed)
      in
      lat.(k) <- wall *. 1000.
    done;
    let reconnects = C.reconnects s in
    C.sclose s;
    List.iter L.drain !live;
    List.iter (fun p -> if Sys.file_exists p then Sys.remove p) [ ckpt; ctl ];
    (match address with
    | L.Unix_sock p when Sys.file_exists p -> Sys.remove p
    | _ -> ());
    let sorted = Array.copy lat in
    Array.sort compare sorted;
    let p50 = percentile sorted 50.
    and p95 = percentile sorted 95.
    and p99 = percentile sorted 99.
    and mx = sorted.(requests_per_leg - 1) in
    Printf.printf
      "%-12s  %d requests, %d failed, %d reconnect(s)  p50 %6.3f ms  p95 %6.3f ms  p99 %6.3f \
       ms  max %7.3f ms  (handoff %.1f ms)\n"
      name requests_per_leg !failed reconnects p50 p95 p99 mx (!handoff_wall *. 1000.);
    Bench_io.(
      Obj
        [
          ("leg", String name);
          ("requests", Int requests_per_leg);
          ("failed_requests", Int !failed);
          ("reconnects", Int reconnects);
          ("p50_ms", Float (q4 p50));
          ("p95_ms", Float (q4 p95));
          ("p99_ms", Float (q4 p99));
          ("max_ms", Float (q4 mx));
          ("handoff_ms", Float (q2 (!handoff_wall *. 1000.)));
        ])
  in
  let sock = fresh_path ".sock" in
  let legs =
    [
      leg ~name:"unix_fd_pass" ~address:(L.Unix_sock sock) ~ctl:(sock ^ ".ctl") ~mode:H.Fd_pass;
      leg ~name:"tcp_rebind" ~address:(L.Tcp ("127.0.0.1", 0)) ~ctl:(fresh_path ".ctl")
        ~mode:H.Rebind;
    ]
  in
  let payload =
    Bench_io.(
      Obj
        [
          ("requests_per_leg", Int requests_per_leg);
          ("handoff_at", Int handoff_at);
          ("legs", List legs);
        ])
  in
  Bench_io.write_file ~path:"BENCH_engine.json"
    (Bench_io.Obj (bench_engine_others [ "update_lag" ] @ [ ("update_lag", payload) ]));
  Printf.printf "wrote BENCH_engine.json (update_lag)\n"

(* ------------------------------------------------------------------ *)
(* E22 — fleet scaling: jobs/sec vs server process count, cold vs      *)
(* warm, over real forked servers sharing one on-disk outcome store    *)
(* ------------------------------------------------------------------ *)

let e22 () =
  header
    "E22 | fleet scaling — jobs/sec vs process count, cold vs warm\n\
     forked server processes on unix sockets sharing one outcome store,\n\
     driven by the consistent-hash fan-out client; JSON to BENCH_engine.json (fleet)";
  let module L = Transport.Listener in
  let module C = Transport.Client in
  let module Srv = Service.Server in
  let n_jobs = 96 in
  let jobs =
    List.init n_jobs (fun i ->
        match
          Bench_io.of_string
            (Printf.sprintf
               {|{"family":"grid","n":100,"seed":%d,"tenant":"bench","failures":"none"}|}
               (1000 + i))
        with
        | Ok j -> j
        | Error e -> failwith ("e22: bad job json: " ^ e))
  in
  let settings =
    {
      Service.Reconfig.default with
      Service.Reconfig.queue_capacity = 256;
      cache_capacity = 256;
      tick_batch = 16;
      checkpoint_every = 0;
      domains = 1;
    }
  in
  let fresh_path suffix =
    let p = Filename.temp_file "ftagg-e22" suffix in
    Sys.remove p;
    p
  in
  let rm_rf d =
    if Sys.file_exists d then begin
      Array.iter (fun f -> Sys.remove (Filename.concat d f)) (Sys.readdir d);
      Unix.rmdir d
    end
  in
  (* one forked server process: serve on [path] until SIGTERM, then
     drain and exit.  The child prints nothing and leaves through
     [_exit] so the parent's buffered output is not flushed twice. *)
  let spawn_member ~store_dir path =
    match Unix.fork () with
    | 0 ->
      let code =
        let server =
          Srv.create
            { Srv.settings; checkpoint_path = None; store_dir = Some store_dir; name = "bench-e22" }
        in
        match L.create (L.config (L.Unix_sock path)) server with
        | Ok l -> L.run l
        | Error _ -> 1
      in
      Unix._exit code
    | pid -> pid
  in
  (* [Unix.fork] is illegal once any domain has been spawned, and
     [Fleet.run] drives each endpoint from its own domain — so every
     fleet (one per process count, each with its own store) is forked
     up front, before the first drive.  Undriven fleets just idle. *)
  let setup processes =
    let store_dir = fresh_path ".store" in
    let socks = List.init processes (fun _ -> fresh_path ".sock") in
    let pids = List.map (spawn_member ~store_dir) socks in
    (processes, store_dir, socks, pids)
  in
  let fleets = List.map setup [ 1; 2; 4 ] in
  List.iter
    (fun (_, _, socks, _) ->
      List.iter
        (fun p ->
          let budget = ref 2000 in
          while not (C.probe (L.Unix_sock p)) do
            decr budget;
            if !budget <= 0 then failwith "e22: a fleet member never came up";
            Unix.sleepf 0.005
          done)
        socks)
    fleets;
  let row (processes, store_dir, socks, pids) =
    let endpoints = List.map (fun p -> "unix:" ^ p) socks in
    let drive label =
      let result = ref None in
      let (), wall =
        Bench_io.timed (fun () -> result := Some (Fleet.run ~endpoints ~jobs ()))
      in
      match !result with
      | Some (Ok report) ->
        if report.Fleet.r_failed > 0 then
          failwith (Printf.sprintf "e22: %s pass lost %d job(s)" label report.Fleet.r_failed);
        (report, wall)
      | Some (Error e) -> failwith ("e22: " ^ e)
      | None -> assert false
    in
    let cold, cold_wall = drive "cold" in
    let warm, warm_wall = drive "warm" in
    List.iter (fun pid -> Unix.kill pid Sys.sigterm) pids;
    List.iter (fun pid -> ignore (Unix.waitpid [] pid)) pids;
    List.iter (fun p -> if Sys.file_exists p then Sys.remove p) socks;
    rm_rf store_dir;
    let cold_jps = float_of_int n_jobs /. cold_wall in
    let warm_jps = float_of_int n_jobs /. warm_wall in
    Printf.printf
      "%d process(es)  cold %7.3f s (%6.1f jobs/s)  warm %7.3f s (%6.1f jobs/s)  warm cached \
       %d/%d\n\
       %!"
      processes cold_wall cold_jps warm_wall warm_jps warm.Fleet.r_cached n_jobs;
    Bench_io.(
      Obj
        [
          ("processes", Int processes);
          ("cold_wall_s", Float (q4 cold_wall));
          ("cold_jobs_per_sec", Float (q2 cold_jps));
          ("warm_wall_s", Float (q4 warm_wall));
          ("warm_jobs_per_sec", Float (q2 warm_jps));
          ("cold_failed", Int cold.Fleet.r_failed);
          ("warm_failed", Int warm.Fleet.r_failed);
          ("warm_cached", Int warm.Fleet.r_cached);
        ])
  in
  let rows = List.map row fleets in
  let payload =
    Bench_io.(Obj [ ("jobs", Int n_jobs); ("distinct", Int n_jobs); ("rows", List rows) ])
  in
  Bench_io.write_file ~path:"BENCH_engine.json"
    (Bench_io.Obj (bench_engine_others [ "fleet" ] @ [ ("fleet", payload) ]));
  Printf.printf "wrote BENCH_engine.json (fleet)\n"

(* ------------------------------------------------------------------ *)
(* E23 — N-scaling: AGG through the massive-scale executor             *)
(* ------------------------------------------------------------------ *)

(* AGG on streamed random-regular(4) CSR graphs at N = 1k..1M through
   lib/scale: rounds/sec, live bytes/node and peak RSS per size, a
   domain sweep at the largest mid-size N, and a differential pin at
   N = 1k (byte-identical to Engine.run).  FTAGG_E23_MAX_N caps the
   sweep for constrained environments (CI smoke).  JSON under the
   "scale" key of BENCH_engine.json; [guard_scale] re-checks it. *)
let e23 () =
  header
    "E23 | N-scaling — AGG on streamed graphs through the scale executor\n\
     random-regular(4) at N = 1k / 10k / 100k / 1M, rounds/sec and\n\
     bytes/node per size; domain sweep at 100k; pin at 1k; JSON to\n\
     BENCH_engine.json";
  let seed = 7 in
  let max_n =
    match Option.bind (Sys.getenv_opt "FTAGG_E23_MAX_N") int_of_string_opt with
    | Some cap -> cap
    | None -> 1_000_000
  in
  let ns = List.filter (fun n -> n <= max_n) [ 1_000; 10_000; 100_000; 1_000_000 ] in
  if List.length ns < 4 then
    Printf.printf "NOTE: FTAGG_E23_MAX_N=%d drops %d of 4 sizes from the sweep\n" max_n
      (4 - List.length ns);
  let spec = Bigraph.Random_regular 4 in
  let exec ?(domains = 1) bg params =
    let n = Ftagg.Params.(params.n) in
    let registry = Registry.create () in
    let meter = Scale_mem.create ~registry ~n () in
    let o, wall =
      Bench_io.timed (fun () ->
          Scale_run.agg ~domains ~meter ~registry ~graph:bg ~failures:(Failure.none ~n) ~params
            ~seed ())
    in
    (o, wall, registry)
  in
  let row n =
    let bg, build_s = Bench_io.timed (fun () -> Bigraph.build spec ~n ~seed) in
    (match Bigraph.validate ~spec bg with
    | Ok () -> ()
    | Error e -> failwith (Printf.sprintf "e23: generated graph invalid at n=%d: %s" n e));
    (* Unit inputs keep the message width flat across sizes, so the sweep
       measures the executor, not int-width growth. *)
    let params = Scale_run.params ~graph:bg ~inputs:(Array.make n 1) () in
    let o, wall, registry = exec bg params in
    let correct = o.Scale_run.result = Agg.Value (Scale_run.expected_sum params) in
    if not correct then failwith (Printf.sprintf "e23: wrong AGG result at n=%d" n);
    let gauge name = Option.value (Registry.gauge registry name) ~default:0.0 in
    let rps = float_of_int o.Scale_run.rounds /. Float.max wall 1e-9 in
    let bytes_per_node = gauge "scale_bytes_per_node" in
    let peak_rss_kb = int_of_float (gauge "scale_peak_rss_kb") in
    Printf.printf
      "N=%-9d d=%-3d build %6.2f s  %4d rounds in %7.2f s (%8.1f rounds/s)  %8.1f bytes/node  \
       RSS %6.1f MiB\n\
       %!"
      n Ftagg.Params.(params.d) build_s o.Scale_run.rounds wall rps bytes_per_node
      (float_of_int peak_rss_kb /. 1024.0);
    ( (n, rps),
      Bench_io.(
        Obj
          [
            ("n", Int n);
            ("pseudo_diameter", Int Ftagg.Params.(params.d));
            ("build_s", Float (q4 build_s));
            ("rounds", Int o.Scale_run.rounds);
            ("wall_s", Float (q4 wall));
            ("rounds_per_sec", Float (q2 rps));
            ("bytes_per_node", Float (q2 bytes_per_node));
            ("peak_live_mib", Float (q2 (gauge "scale_peak_live_bytes" /. (1024.0 *. 1024.0))));
            ("peak_rss_kb", Int peak_rss_kb);
            ("correct", Bool correct);
          ]) )
  in
  let rows = List.map row ns in
  (* Domain sweep at the largest size <= 100k in the sweep. *)
  let sweep_n = List.fold_left (fun acc n -> if n <= 100_000 then n else acc) (List.hd ns) ns in
  let bg = Bigraph.build spec ~n:sweep_n ~seed in
  let params = Scale_run.params ~graph:bg ~inputs:(Array.make sweep_n 1) () in
  let base_rps = ref 0.0 in
  let sweep_rows =
    List.map
      (fun domains ->
        let o, wall, _ = exec ~domains bg params in
        let rps = float_of_int o.Scale_run.rounds /. Float.max wall 1e-9 in
        if domains = 1 then base_rps := rps;
        let speedup = rps /. Float.max !base_rps 1e-9 in
        Printf.printf "domains=%d at N=%d: %8.1f rounds/s (%.2fx vs 1 domain)\n%!" domains sweep_n
          rps speedup;
        Bench_io.(
          Obj
            [
              ("domains", Int domains);
              ("rounds_per_sec", Float (q2 rps));
              ("speedup", Float (q2 speedup));
            ]))
      [ 1; 2; 4 ]
  in
  (* Differential pin at N = 1k: materialise the same topology and compare
     against the reference engine, bit for bit. *)
  let pin_n = 1_000 in
  let pin_bg = Bigraph.build spec ~n:pin_n ~seed in
  let pin_params = Scale_run.params ~graph:pin_bg ~inputs:(Array.make pin_n 1) () in
  let pin_o, _, _ = exec pin_bg pin_params in
  let ref_o =
    Run.agg ~graph:(Bigraph.to_graph pin_bg) ~failures:(Failure.none ~n:pin_n) ~params:pin_params
      ~seed ()
  in
  let pin_ok =
    ref_o.Run.result = pin_o.Scale_run.result
    && ref_o.Run.common.Run.rounds = pin_o.Scale_run.rounds
    && Metrics.cc ref_o.Run.common.Run.metrics = Metrics.cc pin_o.Scale_run.metrics
    && Metrics.total_bits ref_o.Run.common.Run.metrics = Metrics.total_bits pin_o.Scale_run.metrics
  in
  if not pin_ok then failwith "e23: executor diverged from Engine.run at N=1000";
  let cores = Domain.recommended_domain_count () in
  Printf.printf "pin at N=%d: OK (byte-identical to Engine.run); %d core(s) available\n" pin_n cores;
  let payload =
    Bench_io.(
      Obj
        [
          ("graph", String (Bigraph.spec_name spec));
          ("cores", Int cores);
          ("pin_ok", Bool pin_ok);
          ("sweep_n", Int sweep_n);
          ("rows", List (List.map snd rows));
          ("domain_sweep", List sweep_rows);
        ])
  in
  Bench_io.write_file ~path:"BENCH_engine.json"
    (Bench_io.Obj (bench_engine_others [ "scale" ] @ [ ("scale", payload) ]));
  Printf.printf "wrote BENCH_engine.json (scale)\n"

(* ------------------------------------------------------------------ *)
(* E24 — churn & elasticity: the scenario matrix                       *)
(* ------------------------------------------------------------------ *)

(* Every churn schedule x {agg, flowupdating} on an evolving grid:
   latency-to-90/95/99/100% completion and p95 per-node bandwidth from
   the lib/obs histograms.  Deterministic from the seed (equal seeds →
   identical join/crash schedules and identical percentile tables), so
   the JSON payload is a stable committed baseline; [guard_scenarios]
   re-checks it. *)
let e24 () =
  header
    "E24 | churn & elasticity — scenario matrix over topology generations\n\
     4 schedules x {agg, flowupdating}, 5 generations x 3 runs on an evolving grid;\n\
     percentile completion + p95 per-node bandwidth; JSON to BENCH_engine.json";
  let spec = Scenario.default in
  let reports = Scenario.run spec in
  Table.print (Scenario.table reports);
  let expected_runs = spec.Scenario.generations * spec.Scenario.runs_per_generation in
  List.iter
    (fun (r : Scenario.report) ->
      if r.Scenario.r_runs <> expected_runs then
        failwith
          (Printf.sprintf "e24: %s/%s ran %d of %d runs" r.Scenario.r_schedule
             r.Scenario.r_backend r.Scenario.r_runs expected_runs);
      if r.Scenario.r_schedule = "clear_skies" && r.Scenario.r_completed <> r.Scenario.r_runs then
        failwith
          (Printf.sprintf "e24: clear skies yet %s completed only %d/%d" r.Scenario.r_backend
             r.Scenario.r_completed r.Scenario.r_runs))
    reports;
  let payload =
    Bench_io.Obj
      [
        ("family", Bench_io.String "grid");
        ("n", Bench_io.Int spec.Scenario.n);
        ("generations", Bench_io.Int spec.Scenario.generations);
        ("runs_per_generation", Bench_io.Int spec.Scenario.runs_per_generation);
        ("budget", Bench_io.Int spec.Scenario.budget);
        ("b", Bench_io.Int spec.Scenario.b);
        ("f", Bench_io.Int spec.Scenario.f);
        ("seed", Bench_io.Int spec.Scenario.seed);
        ("rows", Bench_io.List (List.map Scenario.report_to_json reports));
      ]
  in
  Bench_io.write_file ~path:"BENCH_engine.json"
    (Bench_io.Obj (bench_engine_others [ "scenarios" ] @ [ ("scenarios", payload) ]));
  Printf.printf "\nwrote scenario matrix (%d rows) to BENCH_engine.json\n" (List.length reports)

(* ------------------------------------------------------------------ *)
(* guard — CI regression gate on the engine hot path                   *)
(* ------------------------------------------------------------------ *)

(* The committed E20 matrix must exist, cover the registry, and keep the
   mass-conservation contrast: on every crash row set, flow-updating's
   relative error strictly below push-sum's. *)
let guard_cross_protocol () =
  let fail msg =
    Printf.eprintf "guard: cross_protocol — %s\n" msg;
    exit 1
  in
  match Bench_io.read_file ~path:"BENCH_engine.json" with
  | exception Sys_error e -> fail e
  | Error e -> fail e
  | Ok json -> (
    match Bench_io.member "cross_protocol" json with
    | None -> fail "no cross_protocol object in BENCH_engine.json (run bench e20)"
    | Some sub -> (
      match Bench_io.member "rows" sub with
      | Some (Bench_io.List rows) ->
        let get_str k j =
          match Bench_io.member k j with Some (Bench_io.String s) -> s | _ -> fail ("row without " ^ k)
        in
        let get_err j =
          match Bench_io.member "relative_error" j with
          | Some (Bench_io.Float x) -> Some x
          | Some (Bench_io.Int x) -> Some (float_of_int x)
          | _ -> None
        in
        let expected = [ "agg"; "flood"; "folklore"; "pushsum"; "flowupdating" ] in
        List.iter
          (fun bk ->
            if not (List.exists (fun r -> get_str "backend" r = bk) rows) then
              fail (Printf.sprintf "backend %S missing from the matrix" bk))
          expected;
        let crash_scenarios =
          List.sort_uniq compare
            (List.filter_map
               (fun r ->
                 match Bench_io.member "crash" r with
                 | Some (Bench_io.Bool true) -> Some (get_str "scenario" r)
                 | _ -> None)
               rows)
        in
        if crash_scenarios = [] then fail "no crash scenarios in the matrix";
        List.iter
          (fun sname ->
            let err bk =
              match
                List.find_opt (fun r -> get_str "scenario" r = sname && get_str "backend" r = bk) rows
              with
              | Some r -> get_err r
              | None -> fail (Printf.sprintf "%s: no %s row" sname bk)
            in
            match (err "flowupdating", err "pushsum") with
            | Some fu, Some ps when fu < ps ->
              Printf.printf "cross_protocol %-12s flowupdating %.3g < pushsum %.3g  OK\n" sname fu ps
            | Some fu, Some ps ->
              fail
                (Printf.sprintf "%s: flow-updating (%.3g) no longer beats push-sum (%.3g)" sname fu
                   ps)
            | _ -> fail (Printf.sprintf "%s: missing relative_error" sname))
          crash_scenarios
      | _ -> fail "cross_protocol.rows missing"))

(* The committed E21 update-lag table must exist, cover both handoff
   legs, and keep the zero-downtime contract: no failed requests, sane
   (ordered) percentiles, and at least one client reconnect per leg —
   proof a handoff actually happened mid-stream.  Machine-dependent
   absolute timings are deliberately not gated. *)
let guard_update_lag () =
  let fail msg =
    Printf.eprintf "guard: update_lag — %s\n" msg;
    exit 1
  in
  match Bench_io.read_file ~path:"BENCH_engine.json" with
  | exception Sys_error e -> fail e
  | Error e -> fail e
  | Ok json -> (
    match Bench_io.member "update_lag" json with
    | None -> fail "no update_lag object in BENCH_engine.json (run bench e21)"
    | Some sub -> (
      match Bench_io.member "legs" sub with
      | Some (Bench_io.List legs) ->
        let get_int k j =
          match Option.bind (Bench_io.member k j) Bench_io.to_int with
          | Some i -> i
          | None -> fail ("leg without integer " ^ k)
        in
        let get_float k j =
          match Bench_io.member k j with
          | Some (Bench_io.Float x) -> x
          | Some (Bench_io.Int x) -> float_of_int x
          | _ -> fail ("leg without number " ^ k)
        in
        let get_leg name =
          match
            List.find_opt (fun l -> Bench_io.member "leg" l = Some (Bench_io.String name)) legs
          with
          | Some l -> l
          | None -> fail (Printf.sprintf "leg %S missing (run bench e21)" name)
        in
        List.iter
          (fun name ->
            let l = get_leg name in
            if get_int "requests" l < 100 then fail (name ^ ": too few requests to mean anything");
            if get_int "failed_requests" l <> 0 then
              fail (name ^ ": failed requests through the handoff — downtime is visible");
            if get_int "reconnects" l < 1 then
              fail (name ^ ": no reconnect recorded — did the handoff happen?");
            let p50 = get_float "p50_ms" l
            and p95 = get_float "p95_ms" l
            and p99 = get_float "p99_ms" l
            and mx = get_float "max_ms" l in
            if not (p50 <= p95 && p95 <= p99 && p99 <= mx) then
              fail (name ^ ": percentiles out of order");
            if get_float "handoff_ms" l <= 0. then fail (name ^ ": non-positive handoff wall time");
            Printf.printf
              "update_lag %-12s 0 failed, p50 %.3f <= p95 %.3f <= p99 %.3f <= max %.3f ms  OK\n"
              name p50 p95 p99 mx)
          [ "unix_fd_pass"; "tcp_rebind" ]
      | _ -> fail "update_lag.legs missing"))

let guard_fleet () =
  let fail msg =
    Printf.eprintf "guard: fleet — %s\n" msg;
    exit 1
  in
  match Bench_io.read_file ~path:"BENCH_engine.json" with
  | exception Sys_error e -> fail e
  | Error e -> fail e
  | Ok json -> (
    match Bench_io.member "fleet" json with
    | None -> fail "no fleet object in BENCH_engine.json (run bench e22)"
    | Some sub -> (
      let jobs =
        match Option.bind (Bench_io.member "jobs" sub) Bench_io.to_int with
        | Some j -> j
        | None -> fail "fleet.jobs missing"
      in
      match Bench_io.member "rows" sub with
      | Some (Bench_io.List rows) ->
        let get_int k j =
          match Option.bind (Bench_io.member k j) Bench_io.to_int with
          | Some i -> i
          | None -> fail ("row without integer " ^ k)
        in
        let get_float k j =
          match Bench_io.member k j with
          | Some (Bench_io.Float x) -> x
          | Some (Bench_io.Int x) -> float_of_int x
          | _ -> fail ("row without number " ^ k)
        in
        let get_row p =
          match List.find_opt (fun r -> get_int "processes" r = p) rows with
          | Some r -> r
          | None -> fail (Printf.sprintf "no row for %d process(es) (run bench e22)" p)
        in
        let prev_cold = ref 0. in
        List.iter
          (fun p ->
            let r = get_row p in
            if get_int "cold_failed" r <> 0 || get_int "warm_failed" r <> 0 then
              fail (Printf.sprintf "%d process(es): failed jobs recorded" p);
            if get_int "warm_cached" r <> jobs then
              fail (Printf.sprintf "%d process(es): warm pass was not fully cache-served" p);
            let cold = get_float "cold_jobs_per_sec" r in
            if cold <= !prev_cold then
              fail
                (Printf.sprintf
                   "cold jobs/sec does not increase with process count (%d procs: %.2f <= %.2f)" p
                   cold !prev_cold);
            prev_cold := cold)
          [ 1; 2; 4 ];
        let warm1 = get_float "warm_jobs_per_sec" (get_row 1) in
        let warm4 = get_float "warm_jobs_per_sec" (get_row 4) in
        if warm4 < 1.5 *. warm1 then
          fail
            (Printf.sprintf "warm fleet %.2f jobs/s is not >= 1.5x warm single-process %.2f" warm4
               warm1);
        Printf.printf
          "fleet        cold scales with process count, warm 4-proc %.0f >= 1.5x single %.0f \
           jobs/s  OK\n"
          warm4 warm1
      | _ -> fail "fleet.rows missing"))

(* Re-checks the committed E23 scale matrix: every size present and
   correct, rounds/sec strictly decreasing with N (bigger graphs must
   not mysteriously get faster — that means the sweep was truncated or
   the workload changed), the 1M footprint under the 4 GiB ceiling, the
   1k differential pin green, and — only when the committed run had >= 4
   cores — the 4-domain sweep at least 2x the single-domain rate. *)
let guard_scale () =
  let fail msg =
    Printf.eprintf "guard: scale — %s\n" msg;
    exit 1
  in
  match Bench_io.read_file ~path:"BENCH_engine.json" with
  | exception Sys_error e -> fail e
  | Error e -> fail e
  | Ok json -> (
    match Bench_io.member "scale" json with
    | None -> fail "no scale object in BENCH_engine.json (run bench e23)"
    | Some sub -> (
      let get_int k j =
        match Option.bind (Bench_io.member k j) Bench_io.to_int with
        | Some i -> i
        | None -> fail ("missing integer " ^ k)
      in
      let get_float k j =
        match Bench_io.member k j with
        | Some (Bench_io.Float x) -> x
        | Some (Bench_io.Int x) -> float_of_int x
        | _ -> fail ("missing number " ^ k)
      in
      (match Bench_io.member "pin_ok" sub with
      | Some (Bench_io.Bool true) -> ()
      | _ -> fail "pin_ok is not true (executor diverged from Engine.run)");
      match Bench_io.member "rows" sub with
      | Some (Bench_io.List rows) ->
        let row_for n =
          match List.find_opt (fun r -> get_int "n" r = n) rows with
          | Some r -> r
          | None -> fail (Printf.sprintf "no row for N=%d (run bench e23 uncapped)" n)
        in
        let prev_rps = ref infinity in
        List.iter
          (fun n ->
            let r = row_for n in
            (match Bench_io.member "correct" r with
            | Some (Bench_io.Bool true) -> ()
            | _ -> fail (Printf.sprintf "N=%d: AGG result not correct" n));
            let rps = get_float "rounds_per_sec" r in
            if rps >= !prev_rps then
              fail
                (Printf.sprintf "rounds/sec does not decrease with N (N=%d: %.1f >= %.1f)" n rps
                   !prev_rps);
            prev_rps := rps)
          [ 1_000; 10_000; 100_000; 1_000_000 ];
        let m = row_for 1_000_000 in
        let footprint_mib =
          Float.max
            (get_float "bytes_per_node" m *. 1e6 /. (1024.0 *. 1024.0))
            (float_of_int (get_int "peak_rss_kb" m) /. 1024.0)
        in
        if footprint_mib >= 4096.0 then
          fail (Printf.sprintf "1M-node footprint %.0f MiB breaches the 4 GiB ceiling" footprint_mib);
        let cores = get_int "cores" sub in
        (match Bench_io.member "domain_sweep" sub with
        | Some (Bench_io.List sweep) when cores >= 4 ->
          let rps_at d =
            match List.find_opt (fun r -> get_int "domains" r = d) sweep with
            | Some r -> get_float "rounds_per_sec" r
            | None -> fail (Printf.sprintf "domain sweep has no row for %d domains" d)
          in
          let r1 = rps_at 1 and r4 = rps_at 4 in
          if r4 < 2.0 *. r1 then
            fail
              (Printf.sprintf "4 domains %.1f rounds/s is not >= 2x single-domain %.1f (%d cores)"
                 r4 r1 cores)
        | Some (Bench_io.List _) ->
          Printf.printf
            "scale        domain-speedup gate skipped (baseline committed with %d core(s))\n" cores
        | _ -> fail "scale.domain_sweep missing");
        Printf.printf
          "scale        rounds/sec monotone over 1k..1M, 1M footprint %.0f MiB < 4 GiB, pin OK\n"
          footprint_mib
      | _ -> fail "scale.rows missing"))

(* The committed E24 scenario matrix must exist, cover every
   schedule x backend cell, keep clear skies at 100% completion with
   ordered latency percentiles everywhere, and keep flow-updating's
   worst relative error under churn bounded. *)
let guard_scenarios () =
  let fail msg =
    Printf.eprintf "guard: scenarios — %s\n" msg;
    exit 1
  in
  match Bench_io.read_file ~path:"BENCH_engine.json" with
  | exception Sys_error e -> fail e
  | Error e -> fail e
  | Ok json -> (
    match Bench_io.member "scenarios" json with
    | None -> fail "no scenarios object in BENCH_engine.json (run bench e24)"
    | Some sub -> (
      match Bench_io.member "rows" sub with
      | Some (Bench_io.List rows) ->
        let get_str k j =
          match Bench_io.member k j with
          | Some (Bench_io.String s) -> s
          | _ -> fail ("row without " ^ k)
        in
        let get_int k j =
          match Option.bind (Bench_io.member k j) Bench_io.to_int with
          | Some i -> i
          | None -> fail ("row without integer " ^ k)
        in
        let get_float k j =
          match Bench_io.member k j with
          | Some (Bench_io.Float x) -> x
          | Some (Bench_io.Int x) -> float_of_int x
          | _ -> fail (Printf.sprintf "row without number %s (no completed run?)" k)
        in
        let schedules = [ "clear_skies"; "steady_churn"; "burst_failure"; "adversarial" ] in
        let backends = [ "agg"; "flowupdating" ] in
        let row s bk =
          match
            List.find_opt
              (fun r -> get_str "schedule" r = s && get_str "backend" r = bk)
              rows
          with
          | Some r -> r
          | None -> fail (Printf.sprintf "no row for %s/%s (run bench e24)" s bk)
        in
        List.iter
          (fun s ->
            List.iter
              (fun bk ->
                let r = row s bk in
                let runs = get_int "runs" r and completed = get_int "completed" r in
                if runs <= 0 then fail (Printf.sprintf "%s/%s: empty cell" s bk);
                if s = "clear_skies" && completed <> runs then
                  fail
                    (Printf.sprintf "%s/%s: clear skies completed only %d/%d" s bk completed runs);
                if completed > 0 then begin
                  let p90 = get_float "latency_p90" r
                  and p95 = get_float "latency_p95" r
                  and p99 = get_float "latency_p99" r
                  and p100 = get_float "latency_p100" r in
                  if not (p90 <= p95 && p95 <= p99 && p99 <= p100) then
                    fail (Printf.sprintf "%s/%s: latency percentiles out of order" s bk);
                  let rel = get_float "max_rel_err" r in
                  if bk = "agg" && s = "clear_skies" && rel <> 0.0 then
                    fail (Printf.sprintf "%s/%s: exact backend with rel err %.3g" s bk rel);
                  if bk = "flowupdating" && rel > 0.25 then
                    fail
                      (Printf.sprintf
                         "%s/%s: flow-updating rel err %.3g under churn exceeds the 0.25 bound" s
                         bk rel)
                end)
              backends)
          schedules;
        Printf.printf
          "scenarios    %d cells: clear skies 100%%, percentiles ordered, flow-updating rel err \
           bounded  OK\n"
          (List.length rows)
      | _ -> fail "scenarios.rows missing"))

(* Re-times the fast engine on [perf]'s exact config and compares
   rounds/sec against the committed BENCH_engine.json.  More than a 30%
   drop fails the process (exit 1) — the CI gate for accidental
   de-optimisation of the CSR delivery loop.  Also re-validates the
   committed E20 cross-protocol matrix ([guard_cross_protocol]).  Unlike
   [perf]/[e20] it never rewrites the baseline, and it is not part of the
   default experiment list: run it explicitly as `bench/main.exe -- guard`. *)
let guard () =
  header
    "GUARD | bench regression gate — fast engine vs committed BENCH_engine.json\n\
     fails (exit 1) if rounds/sec drops more than 30% below the baseline";
  let baseline =
    match Bench_io.read_file ~path:"BENCH_engine.json" with
    | exception Sys_error e -> Error e
    | Error e -> Error e
    | Ok json -> (
      match Bench_io.member "overhauled_pipeline" json with
      | None -> Error "no overhauled_pipeline object in baseline"
      | Some sub -> (
        match Bench_io.member "rounds_per_sec" sub with
        | Some (Bench_io.Int r) -> Ok (float_of_int r)
        | Some (Bench_io.Float r) -> Ok r
        | _ -> Error "overhauled_pipeline.rounds_per_sec missing from baseline"))
  in
  match baseline with
  | Error e ->
    Printf.eprintf "guard: cannot read the committed baseline: %s\n" e;
    exit 3
  | Ok baseline_rps ->
    let n = 256 in
    let g = Gen.grid n in
    let params = Params.make ~c:2 ~graph:g ~inputs:(Array.make n 3) () in
    let failures = Failure.none ~n in
    let dur = Agg.duration params in
    let run_fast s =
      Engine.run ~graph:g ~failures ~max_rounds:dur ~seed:s (perf_fast_proto params)
    in
    let reps = List.concat_map (fun s -> [ s; s + 100; s + 200 ]) seeds in
    ignore (run_fast 0);
    (* warm-up *)
    let (), wall = Bench_io.timed (fun () -> List.iter (fun s -> ignore (run_fast s)) reps) in
    let rps = float_of_int (List.length reps * dur) /. wall in
    let ratio = rps /. baseline_rps in
    Printf.printf "baseline  %9.0f rounds/sec (BENCH_engine.json)\n" baseline_rps;
    Printf.printf "measured  %9.0f rounds/sec (%.3f s, %d runs)\n" rps wall (List.length reps);
    Printf.printf "ratio     %9.2fx (gate: >= 0.70)\n" ratio;
    if ratio < 0.7 then begin
      Printf.printf "guard: FAIL — hot path regressed more than 30%% vs the committed baseline\n";
      exit 1
    end
    else begin
      (* Sub-guards fail with a printed reason and exit 1 on every
         expected shape mismatch; this wrapper turns anything they did
         not anticipate (a malformed or pre-upgrade committed baseline)
         into the same clear failure instead of a raw backtrace. *)
      let subguard name f =
        try f ()
        with e ->
          Printf.eprintf
            "guard: %s — unexpected error re-checking the committed baseline: %s\n\
             (BENCH_engine.json stale or malformed? regenerate it with bench/main.exe)\n"
            name (Printexc.to_string e);
          exit 1
      in
      subguard "cross_protocol" guard_cross_protocol;
      subguard "update_lag" guard_update_lag;
      subguard "fleet" guard_fleet;
      subguard "scale" guard_scale;
      subguard "scenarios" guard_scenarios;
      Printf.printf "guard: OK\n"
    end

let all_experiments =
  [
    ("e1", e1); ("e2", e2); ("e3", e3); ("e4", e4); ("e5", e5); ("e6", e6);
    ("e7", e7); ("e8", e8); ("e9", e9); ("e10", e10); ("e11", e11);
    ("e12", e12); ("e13", e13); ("e14", e14); ("e15", e15); ("e16", e16);
    ("e17", e17); ("e18", e18); ("e19", e19); ("e20", e20); ("e21", e21);
    ("e22", e22); ("e23", e23); ("e24", e24); ("timing", timing); ("perf", perf);
  ]

(* Runnable only by name — never part of the no-args "run everything"
   sweep (guard exits nonzero by design, and must not overwrite
   timings). *)
let on_request_only = [ ("guard", guard) ]

let () =
  let requested =
    match Array.to_list Sys.argv with
    | _ :: (_ :: _ as picks) -> picks
    | _ -> List.map fst all_experiments
  in
  List.iter
    (fun pick ->
      let pick = String.lowercase_ascii pick in
      match List.assoc_opt pick (all_experiments @ on_request_only) with
      | Some f -> f ()
      | None ->
        Printf.eprintf "unknown experiment %S (known: %s)\n" pick
          (String.concat ", " (List.map fst (all_experiments @ on_request_only))))
    requested
