examples/sensor_network.ml: Array Failure Ftagg Gen Instances List Network Printf Prng String
