examples/tradeoff_explorer.ml: Array Bounds Folklore Ftagg Gen List Metrics Network Printf Run Table
