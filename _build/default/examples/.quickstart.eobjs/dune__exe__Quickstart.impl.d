examples/quickstart.ml: Array Failure Ftagg Gen Instances List Network Printf String
