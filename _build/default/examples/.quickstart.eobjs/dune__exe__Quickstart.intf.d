examples/quickstart.mli:
