examples/cluster_monitor.ml: Array Derived Failure Format Ftagg Gen Graph Metrics Params Path Printf Prng
