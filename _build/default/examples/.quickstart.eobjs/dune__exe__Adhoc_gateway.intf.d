examples/adhoc_gateway.mli:
