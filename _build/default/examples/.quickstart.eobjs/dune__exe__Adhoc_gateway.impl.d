examples/adhoc_gateway.ml: Array Failure Ftagg Gen Graph Instances List Network Path Printf Prng Selection
