examples/cluster_monitor.mli:
