(* Cluster monitor: fleet statistics over a two-tier WSN hierarchy.

   A data-centre-style deployment: a gateway (root), cluster heads, and
   member sensors per cluster — the topology `Gen.two_tier` builds, with
   member-level detours so a dead head does not orphan its cluster.  The
   gateway computes a full statistical summary (average, variance, range,
   population) with `Derived.summary`, which chains five Algorithm 1 runs
   under one global adversary.  A hub-targeted attack then kills the
   busiest head mid-collection.

     dune exec examples/cluster_monitor.exe
*)

open Ftagg

let () =
  let clusters = 6 and cluster_size = 8 in
  let g = Gen.two_tier ~clusters ~cluster_size in
  let n = Graph.n g in
  Printf.printf "two-tier fleet: %d clusters x %d sensors + heads + gateway = %d nodes\n"
    clusters cluster_size n;
  Printf.printf "diameter %s\n\n"
    (match Path.diameter g with Some d -> string_of_int d | None -> "?");

  (* CPU load percentages per node. *)
  let rng = Prng.create 2026 in
  let loads = Array.init n (fun _ -> 20 + Prng.int rng 61) in
  let params = Params.make ~c:2 ~graph:g ~inputs:loads () in

  let b = 63 and f = 12 in

  (* Clean run. *)
  let clean =
    Derived.summary ~graph:g ~failures:(Failure.none ~n) ~params ~b ~f ~seed:1
  in
  Printf.printf "clean run    : avg %.2f%%  stddev %.2f  range %d  population %d\n"
    clean.Derived.average (sqrt clean.Derived.variance) clean.Derived.range
    clean.Derived.population;

  (* Hub-targeted attack: the adversary takes out the highest-degree
     nodes (cluster heads) early in the collection. *)
  let failures = Failure.high_degree g ~budget:f ~round:(5 * params.Params.d) in
  Printf.printf "attack       : %s\n" (Format.asprintf "%a" Failure.pp failures);
  let under_attack = Derived.summary ~graph:g ~failures ~params ~b ~f ~seed:2 in
  Printf.printf "under attack : avg %.2f%%  stddev %.2f  range %d  population %d\n"
    under_attack.Derived.average
    (sqrt under_attack.Derived.variance)
    under_attack.Derived.range under_attack.Derived.population;

  (* Reference over all nodes. *)
  let fn = float_of_int n in
  let mean = float_of_int (Array.fold_left ( + ) 0 loads) /. fn in
  let var =
    Array.fold_left (fun acc x -> acc +. ((float_of_int x -. mean) ** 2.0)) 0.0 loads /. fn
  in
  Printf.printf "reference    : avg %.2f%%  stddev %.2f  (all %d nodes)\n\n" mean (sqrt var) n;

  Printf.printf "cost         : clean CC %d bits, attacked CC %d bits (busiest node, all 5 runs)\n"
    (Metrics.cc clean.Derived.metrics)
    (Metrics.cc under_attack.Derived.metrics)
