(* Unit tests for the protocol substrate: Params, Message bit accounting,
   Flood dedup. *)

open Ftagg
open Helpers

let sample_params ?(n = 16) ?(t = 2) () =
  let graph = Gen.grid n in
  params_of ~t graph ~inputs:(default_inputs n)

let test_params_derivation () =
  let p = sample_params () in
  check_int "n" 16 p.Params.n;
  check_int "d of 4x4 grid" 6 p.Params.d;
  check_int "cd" 12 (Params.cd p);
  check_int "id bits" 4 (Params.id_bits p);
  check_true "level bits cover cd" (1 lsl Params.level_bits p > Params.cd p);
  check_int "max input" 16 p.Params.max_input

let test_params_validation () =
  let graph = Gen.path 4 in
  Alcotest.check_raises "wrong input length"
    (Invalid_argument "Params.make: wrong inputs length") (fun () ->
      ignore (Params.make ~graph ~inputs:[| 1; 2 |] ()));
  Alcotest.check_raises "negative input"
    (Invalid_argument "Params.make: negative input") (fun () ->
      ignore (Params.make ~graph ~inputs:[| 1; -1; 2; 3 |] ()));
  let disconnected = Graph.of_edges ~n:4 [ (0, 1); (2, 3) ] in
  Alcotest.check_raises "disconnected"
    (Invalid_argument "Params.make: graph is disconnected") (fun () ->
      ignore (Params.make ~graph:disconnected ~inputs:(default_inputs 4) ()))

let test_budgets_match_paper () =
  let p = sample_params ~n:64 ~t:5 () in
  let logn = 6 in
  check_int "AGG budget (11t+14)(logN+5)" ((11 * 5 + 14) * (logn + 5)) (Params.agg_bit_budget p);
  check_int "VERI budget (5t+7)(3logN+10)"
    ((5 * 5 + 7) * (3 * logn + 10))
    (Params.veri_bit_budget p)

let test_message_bits_scale () =
  let p = sample_params ~n:64 ~t:3 () in
  let small = Message.bits p Message.Bf_init in
  let psum = Message.bits p (Message.Flooded_psum { source = 1; psum = 100 }) in
  let tc =
    Message.bits p (Message.Tree_construct { level = 2; ancestors = [ 1; 2; 3; 4; 5; 6 ] })
  in
  check_true "flooded psum wider than a bare tag" (psum > small);
  check_true "tree_construct carries 2t ids" (tc > psum);
  (* tree_construct with k ancestors costs k * id_bits more than with none *)
  let tc0 = Message.bits p (Message.Tree_construct { level = 2; ancestors = [] }) in
  check_int "ancestor cost" (6 * Params.id_bits p) (tc - tc0)

let test_message_bits_positive () =
  let p = sample_params () in
  List.iter
    (fun body -> check_true "positive width" (Message.bits p body > 0))
    [
      Message.Tree_construct { level = 0; ancestors = [] };
      Message.Ack { parent = 0 };
      Message.Aggregation { psum = 3; max_level = 2 };
      Message.Critical_failure 3;
      Message.Flooded_psum { source = 2; psum = 9 };
      Message.Dominated 1;
      Message.Compulsory 1;
      Message.Agg_abort;
      Message.Detect_failed_parent;
      Message.Failed_parent { node = 1; depth = 2 };
      Message.Detect_failed_child;
      Message.Failed_child 1;
      Message.Lfc_tail 1;
      Message.Not_lfc_tail 1;
      Message.Veri_overflow;
      Message.Bf_init;
      Message.Bf_value { source = 1; value = 5 };
    ]

let test_flood_dedup () =
  let f = Flood.create () in
  check_true "first receipt forwards" (Flood.receive f Message.Bf_init);
  check_true "duplicate dropped" (not (Flood.receive f Message.Bf_init));
  check_true "drain returns once" (Flood.drain f = [ Message.Bf_init ]);
  check_true "drain empties" (Flood.drain f = [])

let test_flood_originate_respects_seen () =
  let f = Flood.create () in
  check_true "originate new" (Flood.originate f (Message.Dominated 5));
  check_true "re-originate blocked" (not (Flood.originate f (Message.Dominated 5)));
  check_true "different content ok" (Flood.originate f (Message.Dominated 6));
  check_int "both queued once" 2 (List.length (Flood.drain f))

let test_flood_order_preserved () =
  let f = Flood.create () in
  ignore (Flood.receive f (Message.Critical_failure 1));
  ignore (Flood.receive f (Message.Critical_failure 2));
  ignore (Flood.receive f (Message.Critical_failure 3));
  check_true "fifo order"
    (Flood.drain f
    = [ Message.Critical_failure 1; Message.Critical_failure 2; Message.Critical_failure 3 ])

let test_flood_seen_query () =
  let f = Flood.create () in
  ignore (Flood.receive f (Message.Lfc_tail 4));
  check_true "seen" (Flood.seen f (Message.Lfc_tail 4));
  check_true "not seen" (not (Flood.seen f (Message.Lfc_tail 5)));
  check_int "fold_seen" 1 (Flood.fold_seen (fun _ acc -> acc + 1) f 0)

let test_flood_propagation_bound () =
  (* A flood started at the root must reach every node within diameter
     rounds — measured through the engine with a pure flooding protocol. *)
  List.iter
    (fun (name, g) ->
      let n = Graph.n g in
      let d = match Path.diameter g with Some d -> d | None -> assert false in
      let proto =
        {
          Engine.name = "flood";
          init = (fun u ~rng:_ -> (Flood.create (), ref (if u = 0 then 0 else -1)));
          step =
            (fun ~round ~me ~state:((f, got) as state) ~inbox ->
              List.iter
                (fun (_, body) ->
                  if Flood.receive f body && !got = -1 then got := round)
                inbox;
              if me = 0 && round = 1 then ignore (Flood.originate f Message.Bf_init);
              (state, Flood.drain f));
          msg_bits = (fun _ -> 1);
          root_done = (fun _ -> false);
        }
      in
      let states, _ =
        Engine.run ~graph:g ~failures:(Failure.none ~n) ~max_rounds:(d + 1) ~seed:0 proto
      in
      Array.iteri
        (fun u (_, got) ->
          if u <> 0 then
            check_true
              (Printf.sprintf "%s: node %d reached within d+1 rounds" name u)
              (!got >= 2 && !got <= d + 1))
        states)
    (Lazy.force sweep_graphs)

let test_budget_monotone_in_t () =
  let g = Gen.grid 64 in
  let widths t =
    let p = params_of ~t g ~inputs:(default_inputs 64) in
    (Params.agg_bit_budget p, Params.veri_bit_budget p,
     Message.bits p (Message.Tree_construct { level = 1; ancestors = List.init (2 * t) Fun.id }))
  in
  let rec check prev = function
    | [] -> ()
    | t :: rest ->
      let (a, v, tc) = widths t in
      (match prev with
      | Some (a0, v0, tc0) ->
        check_true "agg budget grows" (a > a0);
        check_true "veri budget grows" (v > v0);
        check_true "tree_construct grows" (tc > tc0)
      | None -> ());
      check (Some (a, v, tc)) rest
  in
  check None [ 0; 1; 2; 5; 10; 20 ]

let suite =
  List.map
    (fun (n, f) -> Alcotest.test_case n `Quick f)
    [
      ("params: derivation", test_params_derivation);
      ("params: validation", test_params_validation);
      ("params: paper budgets", test_budgets_match_paper);
      ("message: widths scale", test_message_bits_scale);
      ("message: widths positive", test_message_bits_positive);
      ("flood: dedup", test_flood_dedup);
      ("flood: originate", test_flood_originate_respects_seen);
      ("flood: fifo", test_flood_order_preserved);
      ("flood: seen", test_flood_seen_query);
      ("flood: network propagation within diameter", test_flood_propagation_bound);
      ("params: budgets monotone in t", test_budget_monotone_in_t);
    ]
